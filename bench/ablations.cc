/**
 * @file
 * The design-choice ablations (§3.2/§3.3/§4/§6: oracle future bits,
 * critique filtering, filter tag width, checkpoint repair,
 * speculative history update) as a thin wrapper over the figure
 * registry (src/report/figures.cc; also `pcbp_repro run --figures
 * ablations`). The oracle and tag-width panels ride the sweep
 * layer's `oracle` and `filter_tag_bits` axes. Accepts
 * --workloads/--suite (incl. trace:<path>), --branches, --jobs,
 * --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("ablations", argc, argv);
}
