/**
 * @file
 * Ablation benches for the design choices the paper motivates:
 *
 *  (i)   wrong-path vs oracle future bits (§6): the paper argues a
 *        trace-driven simulator that feeds correct-path outcomes as
 *        future bits gives the critic oracle information. We measure
 *        both and report the inflation.
 *  (ii)  filtering (§4): unfiltered perceptron critic vs filtered
 *        perceptron critic at the same budget and future bits.
 *  (iii) filter tag width (§4): the paper reports 8-10 tag bits are
 *        enough to identify contexts; we sweep 4-14.
 *  (iv)  checkpoint repair (§3.3): BHR/BOR repair on mispredict
 *        versus leaving polluted speculative history in place.
 *  (v)   speculative history update (§3.2): predictions enter the
 *        registers at predict time versus only at commit.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "core/tagged_gshare.hh"
#include "sim/driver.hh"

using namespace pcbp;

namespace
{

/** A compact subset of the AVG basket keeps the ablations fast. */
std::vector<const Workload *>
ablationSet()
{
    return {&workloadByName("int.crafty"), &workloadByName("mm.mpeg"),
            &workloadByName("web.jbb"), &workloadByName("ws.cad")};
}

double
meanMispPerKuops(const std::vector<const Workload *> &set,
                 const HybridSpec &spec)
{
    return runSetAggregated(set, spec).mispPerKuops;
}

void
oracleAblation(const std::vector<const Workload *> &set)
{
    std::cout << "--- (i) wrong-path vs oracle future bits (Sec. 6) "
                 "---\n";
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    TablePrinter t({"workload", "real wrong-path", "oracle trace",
                    "oracle inflation"});
    for (const Workload *w : set) {
        EngineConfig real_cfg = engineConfigFor(*w);
        EngineConfig oracle_cfg = real_cfg;
        oracle_cfg.oracleFutureBits = true;
        const double real =
            runAccuracy(*w, spec, real_cfg).mispPerKuops();
        const double oracle =
            runAccuracy(*w, spec, oracle_cfg).mispPerKuops();
        t.addRow({w->name, fmtDouble(real, 3), fmtDouble(oracle, 3),
                  fmtDouble(pctReduction(real, oracle), 1) + "%"});
    }
    std::cout << t.str()
              << "oracle bits make the critic look better than a real "
                 "machine could be —\nwhich is why the engine walks "
                 "real wrong paths\n\n";
}

void
filterAblation(const std::vector<const Workload *> &set)
{
    std::cout << "--- (ii) filtered vs unfiltered critic (Sec. 4) "
                 "---\n";
    TablePrinter t({"future bits", "unfiltered perceptron",
                    "filtered perceptron", "filter benefit"});
    for (unsigned fb : {1u, 8u, 12u}) {
        const double unf = meanMispPerKuops(
            set, hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                            CriticKind::UnfilteredPerceptron,
                            Budget::B8KB, fb));
        const double fil = meanMispPerKuops(
            set, hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                            CriticKind::FilteredPerceptron,
                            Budget::B8KB, fb));
        t.addRow({std::to_string(fb), fmtDouble(unf, 3),
                  fmtDouble(fil, 3),
                  fmtDouble(pctReduction(unf, fil), 1) + "%"});
    }
    std::cout << t.str() << "\n";
}

void
tagWidthAblation(const std::vector<const Workload *> &set)
{
    std::cout << "--- (iii) filter tag width sweep (Sec. 4 says 8-10 "
                 "bits suffice) ---\n";
    TablePrinter t({"tag bits", "misp/Kuops"});
    for (unsigned tag_bits : {4u, 6u, 8u, 10u, 12u, 14u}) {
        // Build the hybrid by hand: Table 3's 8KB tagged gshare
        // geometry with a custom tag width.
        std::vector<EngineStats> runs;
        for (const Workload *w : set) {
            HybridConfig hc;
            hc.numFutureBits = 8;
            ProphetCriticHybrid hybrid(
                makeProphet(ProphetKind::Perceptron, Budget::B8KB),
                std::make_unique<TaggedGshare>(1024, 6, tag_bits, 18),
                hc);
            Program prog = buildProgram(*w);
            Engine engine(prog, hybrid, engineConfigFor(*w));
            runs.push_back(engine.run());
        }
        t.addRow({std::to_string(tag_bits),
                  fmtDouble(aggregate(runs).mispPerKuops, 3)});
    }
    std::cout << t.str() << "\n";
}

void
repairAblation(const std::vector<const Workload *> &set)
{
    std::cout << "--- (iv) checkpoint repair of BHR/BOR (Sec. 3.3) "
                 "---\n";
    auto spec = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                           CriticKind::TaggedGshare, Budget::B8KB, 8);
    const double with_repair = meanMispPerKuops(set, spec);
    spec.repairHistory = false;
    const double without = meanMispPerKuops(set, spec);
    TablePrinter t({"configuration", "misp/Kuops"});
    t.addRow({"repair on (paper design)", fmtDouble(with_repair, 3)});
    t.addRow({"repair off (polluted history)", fmtDouble(without, 3)});
    std::cout << t.str() << "\n";
}

void
speculativeHistoryAblation(const std::vector<const Workload *> &set)
{
    std::cout << "--- (v) speculative vs retired history update "
                 "(Sec. 3.2) ---\n";
    TablePrinter t({"configuration", "misp/Kuops"});
    for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::Perceptron}) {
        auto spec = prophetAlone(p, Budget::B16KB);
        const double spec_on = meanMispPerKuops(set, spec);
        spec.speculativeHistory = false;
        const double spec_off = meanMispPerKuops(set, spec);
        t.addRow({prophetKindName(p) + ", speculative update",
                  fmtDouble(spec_on, 3)});
        t.addRow({prophetKindName(p) + ", retired-only update",
                  fmtDouble(spec_off, 3)});
    }
    std::cout << t.str() << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Ablations of the paper's design choices ===\n\n";
    const auto set = ablationSet();
    oracleAblation(set);
    filterAblation(set);
    tagWidthAblation(set);
    repairAblation(set);
    speculativeHistoryAblation(set);
    return 0;
}
