/**
 * @file
 * Reproduces Figure 10: per-suite uPC for the 8KB 2Bc-gskew prophet
 * + 8KB tagged gshare critic hybrid at 4/8/12 future bits, against
 * the 16KB 2Bc-gskew alone.
 *
 * Paper shapes: the hybrid wins on every suite; FP00 gains least
 * (0.6% at 4 fb, 1.7% at 12), INT00 most (4.2% at 4 fb, 10.7% at
 * 12), WEB in between.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main()
{
    std::cout << "=== Figure 10: per-suite uPC (prophet: 8KB "
                 "2Bc-gskew; critic: 8KB tagged gshare) ===\n\n";

    TablePrinter table({"suite", "16KB alone", "4 fb", "8 fb", "12 fb",
                        "speedup @12fb"});

    for (const auto &suite : allSuites()) {
        const auto set = suiteWorkloads(suite);
        const double alone = meanUpc(
            runTimingSet(set, prophetAlone(ProphetKind::GSkew,
                                           Budget::B16KB)));
        std::vector<std::string> row = {suite, fmtDouble(alone, 3)};
        double at12 = 0;
        for (unsigned fb : {4u, 8u, 12u}) {
            const double upc = meanUpc(runTimingSet(
                set, hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                                CriticKind::TaggedGshare, Budget::B8KB,
                                fb)));
            row.push_back(fmtDouble(upc, 3));
            at12 = upc;
        }
        row.push_back(fmtDouble(100.0 * (at12 / alone - 1.0), 1) + "%");
        table.addRow(row);
    }

    std::cout << table.str()
              << "\npaper: FP00 smallest gain (~1.7% @12fb), INT00 "
                 "largest (~10.7% @12fb)\n";
    return 0;
}
