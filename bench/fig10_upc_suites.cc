/**
 * @file
 * Figure 10 (per-suite uPC under the 2Bc-gskew + tagged gshare
 * hybrid) as a thin wrapper over the figure registry
 * (src/report/figures.cc; also `pcbp_repro run --figures fig10`).
 * Accepts --workloads/--suite (incl. trace:<path>) — each selector
 * becomes a row — plus --branches, --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("fig10", argc, argv);
}
