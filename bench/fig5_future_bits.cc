/**
 * @file
 * Figure 5 (mispredict rate vs. number of future bits) as a thin
 * wrapper over the figure registry — the grid, the claim, and the
 * rendering live in src/report/figures.cc; `pcbp_repro run
 * --figures fig5` produces the same tables as file artifacts.
 * Accepts --workloads/--suite (incl. trace:<path>), --branches,
 * --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("fig5", argc, argv);
}
