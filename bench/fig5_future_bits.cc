/**
 * @file
 * Reproduces Figure 5: mispredict rate (misp/Kuops) as the number of
 * future bits used by the critic varies from 0 to 12, for the six
 * individually-plotted benchmarks plus their average.
 *
 * Paper configuration: prophet = 8KB perceptron, critic = 8KB tagged
 * gshare. Paper shapes: adding 1 future bit always helps (~15% on
 * average); beyond that, unzip keeps improving to 12, premiere is
 * front-loaded, msvc7 peaks near 8, flash peaks near 4, facerec is
 * insensitive, and tpcc never benefits past 1.
 *
 * The grid (1 config family x 5 future-bit settings x 6 workloads)
 * runs on the sweep subsystem: cells are sharded across cores by the
 * work-stealing pool and the table is assembled from the store.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sweep/runner.hh"

using namespace pcbp;

int
main()
{
    const std::vector<unsigned> future_bits = {0, 1, 4, 8, 12};
    const auto set = fig5Set();

    SweepSpec sweep;
    sweep.name = "fig5";
    sweep.axes.prophets = {ProphetKind::Perceptron};
    sweep.axes.prophetBudgets = {Budget::B8KB};
    sweep.axes.critics = {CriticKind::TaggedGshare};
    sweep.axes.criticBudgets = {Budget::B8KB};
    sweep.axes.futureBits = future_bits;
    sweep.workloads = {"FIG5"};

    ResultStore store;
    runSweep(sweep, store);
    const auto cells = sweep.cells();

    auto misp = [&](const Workload *w, unsigned fb) {
        for (const auto &cell : cells)
            if (cell.workload == w && cell.spec.futureBits == fb)
                return store.statsFor(cell).mispPerKuops();
        pcbp_fatal("fig5: no cell for ", w->name, " @", fb, "fb");
    };

    std::cout << "=== Figure 5: effect of the number of future bits ===\n"
              << "prophet: 8KB perceptron; critic: 8KB tagged gshare\n"
              << "metric: misp/Kuops (final mispredicts per 1000 "
                 "committed uops)\n\n";

    std::vector<std::string> headers = {"benchmark"};
    for (unsigned fb : future_bits)
        headers.push_back(std::to_string(fb) + " fb");
    headers.push_back("paper-shape");
    TablePrinter table(headers);

    const std::vector<std::string> shapes = {
        "keeps improving to 12",
        "front-loaded at 1",
        "peaks near 8",
        "peaks near 4",
        "insensitive",
        "only 1 helps",
    };

    std::vector<std::vector<double>> per_bench(set.size());
    for (std::size_t wi = 0; wi < set.size(); ++wi) {
        std::vector<std::string> row = {set[wi]->name};
        for (unsigned fb : future_bits) {
            const double m = misp(set[wi], fb);
            per_bench[wi].push_back(m);
            row.push_back(fmtDouble(m, 3));
        }
        row.push_back(shapes[wi]);
        table.addRow(row);
    }

    // AVG over the six benchmarks (paper's "AVG" line).
    std::vector<std::string> avg_row = {"AVG"};
    for (std::size_t f = 0; f < future_bits.size(); ++f) {
        double sum = 0;
        for (const auto &v : per_bench)
            sum += v[f];
        avg_row.push_back(fmtDouble(sum / double(per_bench.size()), 3));
    }
    avg_row.push_back("1 fb cuts ~15%");
    table.addRow(avg_row);

    std::cout << table.str() << "\n";
    return 0;
}
