/**
 * @file
 * Reproduces Figure 6: average mispredict rates for three
 * prophet/critic combinations across prophet sizes (4KB, 16KB),
 * critic sizes (2KB, 8KB, 32KB), and future-bit counts
 * (none / 1 / 4 / 8 / 12), averaged over the AVG workload basket.
 *
 *  (a) 2Bc-gskew prophet + unfiltered perceptron critic — the
 *      unfiltered critic stops improving (and regresses) at high
 *      future-bit counts because future bits displace the history
 *      its critiques of easy branches depend on;
 *  (b) gshare prophet + filtered perceptron critic;
 *  (c) perceptron prophet + tagged gshare critic.
 *
 * Paper shapes: adding any critic beats the prophet alone; larger
 * critics help; filtering keeps high-future-bit configurations from
 * regressing as hard as the unfiltered critic.
 *
 * Each panel is one declarative sweep (2 prophet budgets x
 * {baseline, 3 critic budgets x 4 future-bit counts} x 14 AVG
 * workloads = 364 cells) run on the sweep subsystem.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sweep/runner.hh"

using namespace pcbp;

namespace
{

void
runPanel(const char *title, ProphetKind prophet, CriticKind critic)
{
    std::cout << "--- " << title << " ---\n";
    const std::vector<Budget> prophet_sizes = {Budget::B4KB,
                                               Budget::B16KB};
    const std::vector<Budget> critic_sizes = {Budget::B2KB, Budget::B8KB,
                                              Budget::B32KB};
    const std::vector<unsigned> future_bits = {1, 4, 8, 12};

    SweepSpec sweep;
    sweep.name = "fig6";
    sweep.axes.prophets = {prophet};
    sweep.axes.prophetBudgets = prophet_sizes;
    sweep.axes.critics = {std::nullopt, critic};
    sweep.axes.criticBudgets = critic_sizes;
    sweep.axes.futureBits = future_bits;
    sweep.workloads = {"AVG"};

    ResultStore store;
    runSweep(sweep, store);
    const auto cells = sweep.cells();

    TablePrinter table({"configuration", "no critic", "1 fb", "4 fb",
                        "8 fb", "12 fb"});
    for (Budget pb : prophet_sizes) {
        const double alone =
            aggregateCells(store, cells, [&](const SweepCell &c) {
                return c.spec.prophetBudget == pb && !c.spec.critic;
            }).mispPerKuops;
        for (Budget cb : critic_sizes) {
            std::vector<std::string> row = {
                budgetName(pb) + " prophet + " + budgetName(cb) +
                " critic",
                fmtDouble(alone, 3)};
            for (unsigned fb : future_bits) {
                const double m =
                    aggregateCells(store, cells,
                                   [&](const SweepCell &c) {
                                       return c.spec.prophetBudget ==
                                                  pb &&
                                              c.spec.critic &&
                                              c.spec.criticBudget ==
                                                  cb &&
                                              c.spec.futureBits == fb;
                                   })
                        .mispPerKuops;
                row.push_back(fmtDouble(m, 3));
            }
            table.addRow(row);
        }
    }
    std::cout << table.str() << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 6: prophet/critic combinations and sizes "
                 "===\n"
              << "metric: misp/Kuops averaged over the AVG set ("
              << avgSet().size() << " workloads)\n\n";

    runPanel("(a) prophet: 2Bc-gskew; critic: perceptron (unfiltered)",
             ProphetKind::GSkew, CriticKind::UnfilteredPerceptron);
    runPanel("(b) prophet: gshare; critic: filtered perceptron",
             ProphetKind::Gshare, CriticKind::FilteredPerceptron);
    runPanel("(c) prophet: perceptron; critic: tagged gshare",
             ProphetKind::Perceptron, CriticKind::TaggedGshare);
    return 0;
}
