/**
 * @file
 * Figure 6 (prophet/critic combinations and sizes) as a thin wrapper
 * over the figure registry (src/report/figures.cc; also `pcbp_repro
 * run --figures fig6`). Accepts --workloads/--suite (incl.
 * trace:<path>), --branches, --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("fig6", argc, argv);
}
