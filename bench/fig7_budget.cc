/**
 * @file
 * Figure 7 (conventional vs prophet/critic at matched hardware
 * budgets) as a thin wrapper over the figure registry
 * (src/report/figures.cc; also `pcbp_repro run --figures fig7`).
 * Accepts --workloads/--suite (incl. trace:<path>), --branches,
 * --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("fig7", argc, argv);
}
