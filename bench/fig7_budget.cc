/**
 * @file
 * Reproduces Figure 7: conventional predictors versus prophet/critic
 * hybrids at matched total hardware budgets (16KB and 32KB), using 8
 * future bits. The prophet gets half the budget; the other half goes
 * to a filtered perceptron or tagged gshare critic.
 *
 * Paper numbers: hybrids reduce the mispredict rate by 15-31%
 * relative to the conventional predictor of the same total size,
 * with the tagged gshare critic reaching 25-31%.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

namespace
{

void
runBudget(Budget total, Budget half)
{
    const auto set = avgSet();
    const unsigned fb = 8;

    std::cout << "--- " << budgetName(total) << " total budget ---\n";
    TablePrinter table({"predictor", "misp/Kuops", "reduction"});

    for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron}) {
        const double conv =
            runSetAggregated(set, prophetAlone(p, total)).mispPerKuops;
        table.addRow({budgetName(total) + " " + prophetKindName(p),
                      fmtDouble(conv, 3), "(baseline)"});

        for (CriticKind c : {CriticKind::FilteredPerceptron,
                             CriticKind::TaggedGshare}) {
            const double hyb =
                runSetAggregated(set, hybridSpec(p, half, c, half, fb))
                    .mispPerKuops;
            table.addRow({budgetName(half) + " " + prophetKindName(p) +
                              " + " + budgetName(half) + " " +
                              criticKindName(c),
                          fmtDouble(hyb, 3),
                          fmtDouble(pctReduction(conv, hyb), 1) + "%"});
        }
    }
    std::cout << table.str() << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 7: conventional vs prophet/critic at "
                 "matched budgets (8 future bits) ===\n"
              << "metric: misp/Kuops averaged over the AVG set; paper "
                 "reductions: 15-31%\n\n";
    runBudget(Budget::B16KB, Budget::B8KB);
    runBudget(Budget::B32KB, Budget::B16KB);
    return 0;
}
