/**
 * @file
 * Reproduces Figure 7: conventional predictors versus prophet/critic
 * hybrids at matched total hardware budgets (16KB and 32KB), using 8
 * future bits. The prophet gets half the budget; the other half goes
 * to a filtered perceptron or tagged gshare critic.
 *
 * Paper numbers: hybrids reduce the mispredict rate by 15-31%
 * relative to the conventional predictor of the same total size,
 * with the tagged gshare critic reaching 25-31%.
 *
 * Each budget point composes two declarative sweeps against one
 * store — baselines (3 prophets at the full budget, no critic) and
 * hybrids (3 prophets x 2 critics at half/half) — since a single
 * cartesian grid would also generate full-budget hybrids and
 * half-budget baselines the figure never reads.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sweep/runner.hh"

using namespace pcbp;

namespace
{

void
runBudget(Budget total, Budget half)
{
    const unsigned fb = 8;
    const std::vector<ProphetKind> prophets = {
        ProphetKind::Gshare, ProphetKind::GSkew,
        ProphetKind::Perceptron};

    SweepSpec base;
    base.name = "fig7-" + budgetName(total) + "-baseline";
    base.axes.prophets = prophets;
    base.axes.prophetBudgets = {total};
    base.axes.critics = {std::nullopt};
    base.workloads = {"AVG"};

    SweepSpec hyb;
    hyb.name = "fig7-" + budgetName(total) + "-hybrid";
    hyb.axes.prophets = prophets;
    hyb.axes.prophetBudgets = {half};
    hyb.axes.critics = {CriticKind::FilteredPerceptron,
                        CriticKind::TaggedGshare};
    hyb.axes.criticBudgets = {half};
    hyb.axes.futureBits = {fb};
    hyb.workloads = {"AVG"};

    ResultStore store;
    runSweep(base, store);
    runSweep(hyb, store);
    auto cells = base.cells();
    const auto hyb_cells = hyb.cells();
    cells.insert(cells.end(), hyb_cells.begin(), hyb_cells.end());

    std::cout << "--- " << budgetName(total) << " total budget ---\n";
    TablePrinter table({"predictor", "misp/Kuops", "reduction"});

    for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron}) {
        const double conv =
            aggregateCells(store, cells, [&](const SweepCell &c) {
                return c.spec.prophet == p &&
                       c.spec.prophetBudget == total && !c.spec.critic;
            }).mispPerKuops;
        table.addRow({budgetName(total) + " " + prophetKindName(p),
                      fmtDouble(conv, 3), "(baseline)"});

        for (CriticKind c : {CriticKind::FilteredPerceptron,
                             CriticKind::TaggedGshare}) {
            const double hyb =
                aggregateCells(store, cells, [&](const SweepCell &k) {
                    return k.spec.prophet == p &&
                           k.spec.prophetBudget == half &&
                           k.spec.critic && *k.spec.critic == c;
                }).mispPerKuops;
            table.addRow({budgetName(half) + " " + prophetKindName(p) +
                              " + " + budgetName(half) + " " +
                              criticKindName(c),
                          fmtDouble(hyb, 3),
                          fmtDouble(pctReduction(conv, hyb), 1) + "%"});
        }
    }
    std::cout << table.str() << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 7: conventional vs prophet/critic at "
                 "matched budgets (8 future bits) ===\n"
              << "metric: misp/Kuops averaged over the AVG set; paper "
                 "reductions: 15-31%\n\n";
    runBudget(Budget::B16KB, Budget::B8KB);
    runBudget(Budget::B32KB, Budget::B16KB);
    return 0;
}
