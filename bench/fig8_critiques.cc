/**
 * @file
 * Reproduces Figure 8: the distribution of explicit critiques
 * (filter hits) for a 4KB perceptron prophet with an 8KB tagged
 * gshare critic, as the future-bit count varies over 1/4/8/12.
 *
 * Paper shapes: incorrect_disagree (the goal) outnumbers
 * correct_disagree (the worst case); from 1 to 12 future bits
 * incorrect_disagree grows (~+20%), correct_disagree shrinks
 * (~-40%), incorrect_agree shrinks (~-43%), and the total number of
 * explicit critiques falls (the filter grows more selective).
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main()
{
    const auto set = avgSet();
    const std::vector<unsigned> future_bits = {1, 4, 8, 12};

    std::cout << "=== Figure 8: distribution of critiques ===\n"
              << "prophet: 4KB perceptron; critic: 8KB tagged gshare\n"
              << "counts are summed over the AVG set ("
              << set.size() << " workloads); filter misses (implicit "
                 "agrees) are excluded, as in the paper\n\n";

    TablePrinter table({"critique class", "1 fb", "4 fb", "8 fb",
                        "12 fb", "paper trend 1->12"});

    std::vector<CritiqueCounts> dist;
    std::vector<std::uint64_t> totals;
    for (unsigned fb : future_bits) {
        const auto agg = runSetAggregated(
            set, hybridSpec(ProphetKind::Perceptron, Budget::B4KB,
                            CriticKind::TaggedGshare, Budget::B8KB, fb));
        dist.push_back(agg.critiques);
        totals.push_back(agg.critiques.explicitTotal());
    }

    const struct
    {
        CritiqueClass cls;
        const char *trend;
    } rows[] = {
        {CritiqueClass::CorrectAgree, "majority, falls with total"},
        {CritiqueClass::IncorrectDisagree, "grows (~+20%)"},
        {CritiqueClass::IncorrectAgree, "shrinks (~-43%)"},
        {CritiqueClass::CorrectDisagree, "shrinks (~-40%)"},
    };
    for (const auto &r : rows) {
        std::vector<std::string> row = {critiqueClassName(r.cls)};
        for (const auto &d : dist)
            row.push_back(std::to_string(d.get(r.cls)));
        row.push_back(r.trend);
        table.addRow(row);
    }
    std::vector<std::string> total_row = {"total explicit critiques"};
    for (auto t : totals)
        total_row.push_back(std::to_string(t));
    total_row.push_back("falls as fb grows");
    table.addRow(total_row);

    std::cout << table.str() << "\n";
    return 0;
}
