/**
 * @file
 * Figure 8 (distribution of explicit critiques) as a thin wrapper
 * over the figure registry (src/report/figures.cc; also `pcbp_repro
 * run --figures fig8`). Accepts --workloads/--suite (incl.
 * trace:<path>), --branches, --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("fig8", argc, argv);
}
