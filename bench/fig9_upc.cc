/**
 * @file
 * Reproduces Figure 9: average uPC of 16KB conventional predictors
 * versus 8KB+8KB prophet/critic hybrids (tagged gshare critic) at
 * 4, 8, and 12 future bits, on the cycle-level decoupled front-end
 * timing model.
 *
 * Paper numbers (on their Pentium-4-derived simulator): speedups
 * over the 16KB prophet alone of 4.7/3.4/2.7% at 4 future bits
 * (gshare/2Bc-gskew/perceptron) growing to 8/7/5.2% at 12. Our
 * absolute uPC is higher (ideal caches, no data-dependence stalls —
 * see DESIGN.md), but the ordering and growth with future bits are
 * the reproduction targets.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main()
{
    // One workload per suite (the first), like the paper's one LIT
    // per benchmark for performance runs.
    std::vector<const Workload *> set;
    for (const auto &suite : allSuites())
        set.push_back(suiteWorkloads(suite).front());

    std::cout << "=== Figure 9: uPC of conventional predictors vs "
                 "8KB+8KB prophet/critic hybrids ===\n"
              << "critic: tagged gshare; timing model: decoupled "
                 "front-end, 6-uop machine, 30-cycle resolve\n\n";

    TablePrinter table({"prophet", "16KB alone", "4 fb", "8 fb",
                        "12 fb", "speedup @12fb"});

    for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron}) {
        const double alone =
            meanUpc(runTimingSet(set, prophetAlone(p, Budget::B16KB)));
        std::vector<std::string> row = {prophetKindName(p),
                                        fmtDouble(alone, 3)};
        double at12 = 0;
        for (unsigned fb : {4u, 8u, 12u}) {
            const double upc = meanUpc(runTimingSet(
                set, hybridSpec(p, Budget::B8KB,
                                CriticKind::TaggedGshare, Budget::B8KB,
                                fb)));
            row.push_back(fmtDouble(upc, 3));
            at12 = upc;
        }
        row.push_back(fmtDouble(100.0 * (at12 / alone - 1.0), 1) + "%");
        table.addRow(row);
    }

    std::cout << table.str()
              << "\npaper speedups @12fb: gshare 8%, 2Bc-gskew 7%, "
                 "perceptron 5.2%\n";
    return 0;
}
