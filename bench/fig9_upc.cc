/**
 * @file
 * Figure 9 (uPC of conventional predictors vs hybrids, cycle-level
 * timing model) as a thin wrapper over the figure registry
 * (src/report/figures.cc; also `pcbp_repro run --figures fig9`).
 * Accepts --workloads/--suite (incl. trace:<path>), --branches,
 * --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("fig9", argc, argv);
}
