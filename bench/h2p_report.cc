/**
 * @file
 * Hard-to-predict (H2P) branch report: the Lin & Tarsa observation —
 * remaining misses concentrate in a few static branches — measured
 * against this repro's predictor zoo, including the TAGE prophet.
 *
 * Two layers per suite (INT00 and SERV, the easy and hard ends of
 * the registry):
 *
 * - an aggregate grid (declarative sweep over prophets x critic) of
 *   mispredict rates, the usual pcbp_sweep machinery;
 * - per-branch commit-path profiles (H2PProfiler) for every
 *   (workload, config), summarized Bullseye-style: how many static
 *   branches are H2P, what share of dynamic branches and of misses
 *   they account for, and the top offender.
 *
 * The point of the pairing: a critic that helps a weak prophet may
 * not help TAGE — and if it does not, this table shows whether the
 * misses it failed to fix live in the same H2P branches.
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "common/stats.hh"
#include "sweep/runner.hh"

using namespace pcbp;

namespace
{

std::vector<HybridSpec>
contenders()
{
    return {
        prophetAlone(ProphetKind::Gshare, Budget::B8KB),
        prophetAlone(ProphetKind::Perceptron, Budget::B8KB),
        prophetAlone(ProphetKind::Tage, Budget::B8KB),
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        hybridSpec(ProphetKind::Tage, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
    };
}

void
runSuite(const std::string &suite)
{
    std::cout << "--- suite " << suite << " ---\n";

    // Aggregate layer: one declarative grid over the suite, shared
    // with the sweep tooling (resumable if pointed at a file store).
    SweepSpec grid;
    grid.name = "h2p-" + suite;
    grid.axes.prophets = {ProphetKind::Gshare, ProphetKind::Perceptron,
                          ProphetKind::Tage};
    grid.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    grid.axes.futureBits = {8};
    grid.workloads = {suite};

    ResultStore store;
    runSweep(grid, store);
    const auto cells = grid.cells();

    TablePrinter agg({"config", "misp/Kuops", "misp rate"});
    for (ProphetKind p : grid.axes.prophets) {
        for (const auto &c : grid.axes.critics) {
            const AggregateResult a =
                aggregateCells(store, cells, [&](const SweepCell &k) {
                    return k.spec.prophet == p && k.spec.critic == c;
                });
            const std::string label =
                std::string("8KB ") + prophetKindName(p) +
                (c ? " + 8KB " + criticKindName(*c) : "");
            agg.addRow({label, fmtDouble(a.mispPerKuops, 3),
                        fmtPercent(a.mispRate, 2)});
        }
    }
    std::cout << agg.str() << "\n";

    // Per-branch layer: profile each (workload, config) through the
    // commit tap and summarize the miss concentration.
    TablePrinter conc({"workload", "config", "H2P static", "exec share",
                       "miss share", "top-miss branch", "top share"});
    for (const Workload *w : suiteWorkloads(suite)) {
        for (const HybridSpec &spec : contenders()) {
            const H2PReport r = runH2P(*w, spec);
            std::string top_pc = "-", top_share = "-";
            if (!r.top.empty() && r.top[0].profile.finalWrong > 0) {
                std::ostringstream os;
                os << "0x" << std::hex << r.top[0].profile.pc;
                top_pc = os.str();
                top_share = fmtPercent(r.top[0].missShare, 1);
            }
            conc.addRow({w->name, spec.label(),
                         std::to_string(r.h2pStatic),
                         fmtPercent(r.h2pExecShare, 1),
                         fmtPercent(r.h2pMissShare, 1), top_pc,
                         top_share});
        }
    }
    std::cout << conc.str() << "\n";

    // The detailed top-miss table for the strongest prophet-alone
    // config — the Bullseye targeting view.
    const Workload *first = suiteWorkloads(suite)[0];
    const H2PReport detail =
        runH2P(*first, prophetAlone(ProphetKind::Tage, Budget::B8KB));
    std::cout << detail.render() << "\n";
}

} // namespace

int
main()
{
    const H2PConfig cfg;
    std::cout << "=== H2P branch analytics: miss concentration across "
                 "the predictor zoo ===\n"
              << "H2P = static branch with >= " << cfg.minExecs
              << " execs and final accuracy < "
              << fmtPercent(cfg.accuracyBelow, 0) << "\n\n";
    runSuite("INT00");
    runSuite("SERV");
    return 0;
}
