/**
 * @file
 * The paper's abstract/headline claims (accuracy, flush distance,
 * per-workload mispredict percentage, uPC, fetch volume) as a thin
 * wrapper over the figure registry (src/report/figures.cc; also
 * `pcbp_repro run --figures headline`). Accepts --workloads/--suite
 * (incl. trace:<path>), --branches, --jobs, --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("headline", argc, argv);
}
