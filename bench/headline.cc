/**
 * @file
 * Reproduces the paper's abstract/headline claims:
 *
 *  - an 8KB+8KB prophet/critic hybrid (2Bc-gskew + tagged gshare, 8
 *    future bits) has ~39% fewer mispredicts than a 16KB 2Bc-gskew
 *    (the EV8-style predictor);
 *  - the distance between pipeline flushes grows from one per 418
 *    uops to one per 680;
 *  - for gcc, the percentage of mispredicted branches drops from
 *    3.11% to 1.23%;
 *  - uPC improves by 7.8% and the number of uops fetched (correct +
 *    wrong path) drops by 8.6%.
 */

#include <iostream>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main()
{
    const auto set = avgSet();
    const auto conv = prophetAlone(ProphetKind::GSkew, Budget::B16KB);
    const auto hyb =
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    std::cout << "=== Headline claims: 16KB 2Bc-gskew vs 8KB+8KB "
                 "2Bc-gskew + tagged gshare (8 fb) ===\n\n";

    // Context for the reader: on this synthetic substrate the
    // relay-compression channel needs a long-history prophet, so the
    // perceptron pairing shows the paper's direction most clearly
    // and the 2Bc-gskew pairing peaks at ~4 future bits (see
    // EXPERIMENTS.md). Both are reported.

    // --- accuracy / flush distance over the AVG set -------------
    const auto conv_agg = runSetAggregated(set, conv);
    const auto hyb_agg = runSetAggregated(set, hyb);

    TablePrinter acc({"metric", "16KB 2Bc-gskew", "8KB+8KB hybrid",
                      "change", "paper"});
    acc.addRow({"misp/Kuops (AVG)", fmtDouble(conv_agg.mispPerKuops, 3),
                fmtDouble(hyb_agg.mispPerKuops, 3),
                fmtDouble(pctReduction(conv_agg.mispPerKuops,
                                       hyb_agg.mispPerKuops),
                          1) +
                    "% fewer",
                "39% fewer"});
    acc.addRow({"uops per flush", fmtDouble(conv_agg.uopsPerFlush(), 0),
                fmtDouble(hyb_agg.uopsPerFlush(), 0),
                "x" + fmtDouble(hyb_agg.uopsPerFlush() /
                                    conv_agg.uopsPerFlush(),
                                2),
                "418 -> 680 (x1.63)"});
    std::cout << acc.str() << "\n";

    // Substrate-strong pairings at the same total budget.
    {
        TablePrinter alt({"pairing (16KB total)", "misp/Kuops",
                          "vs 16KB same-prophet alone"});
        const auto gskew4 =
            runSetAggregated(set, hybridSpec(ProphetKind::GSkew,
                                             Budget::B8KB,
                                             CriticKind::TaggedGshare,
                                             Budget::B8KB, 4));
        alt.addRow({"2Bc-gskew + t.gshare @4fb",
                    fmtDouble(gskew4.mispPerKuops, 3),
                    fmtDouble(pctReduction(conv_agg.mispPerKuops,
                                           gskew4.mispPerKuops),
                              1) +
                        "%"});
        const double perc_alone =
            runSetAggregated(set, prophetAlone(ProphetKind::Perceptron,
                                               Budget::B16KB))
                .mispPerKuops;
        const auto perc8 = runSetAggregated(
            set, hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                            CriticKind::TaggedGshare, Budget::B8KB, 8));
        alt.addRow({"perceptron + t.gshare @8fb",
                    fmtDouble(perc8.mispPerKuops, 3),
                    fmtDouble(pctReduction(perc_alone,
                                           perc8.mispPerKuops),
                              1) +
                        "%"});
        std::cout << alt.str() << "\n";
    }

    // --- gcc branch mispredict percentage ------------------------
    const Workload &gcc = workloadByName("gcc");
    const EngineStats gcc_conv = runAccuracy(gcc, conv);
    const EngineStats gcc_hyb = runAccuracy(gcc, hyb);
    TablePrinter gtab({"gcc metric", "16KB 2Bc-gskew", "8KB+8KB hybrid",
                       "paper"});
    gtab.addRow({"% branches mispredicted",
                 fmtPercent(gcc_conv.mispRate(), 2),
                 fmtPercent(gcc_hyb.mispRate(), 2), "3.11% -> 1.23%"});
    std::cout << gtab.str() << "\n";

    // --- timing: uPC and fetched uops ----------------------------
    std::vector<const Workload *> perf_set;
    for (const auto &suite : allSuites())
        perf_set.push_back(suiteWorkloads(suite).front());

    const auto conv_t = runTimingSet(perf_set, conv);
    const auto hyb_t = runTimingSet(perf_set, hyb);

    double conv_upc = meanUpc(conv_t), hyb_upc = meanUpc(hyb_t);
    double conv_fetch = 0, hyb_fetch = 0, conv_commit = 0,
           hyb_commit = 0;
    for (std::size_t i = 0; i < conv_t.size(); ++i) {
        conv_fetch += double(conv_t[i].fetchedUops);
        hyb_fetch += double(hyb_t[i].fetchedUops);
        conv_commit += double(conv_t[i].committedUops);
        hyb_commit += double(hyb_t[i].committedUops);
    }
    // Normalize fetched uops per committed uop so the comparison is
    // independent of run length.
    const double conv_fpc = conv_fetch / conv_commit;
    const double hyb_fpc = hyb_fetch / hyb_commit;

    TablePrinter perf({"timing metric", "16KB 2Bc-gskew",
                       "8KB+8KB hybrid", "change", "paper"});
    perf.addRow({"uPC", fmtDouble(conv_upc, 3), fmtDouble(hyb_upc, 3),
                 "+" + fmtDouble(100.0 * (hyb_upc / conv_upc - 1.0), 1) +
                     "%",
                 "+7.8%"});
    perf.addRow({"fetched uops / committed uop", fmtDouble(conv_fpc, 3),
                 fmtDouble(hyb_fpc, 3),
                 fmtDouble(pctReduction(conv_fpc, hyb_fpc), 1) +
                     "% fewer",
                 "8.6% fewer"});
    std::cout << perf.str() << "\n";
    return 0;
}
