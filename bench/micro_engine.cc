/**
 * @file
 * Whole-engine hot-path micro-benchmark — now a thin wrapper over
 * the perf registry's engine.* benchmarks (src/perf/bench.hh), the
 * same definitions `pcbp_bench run` measures and persists. Kept as a
 * standalone binary for muscle memory; for trackable numbers use:
 *
 *   pcbp_bench run --filter engine --name mylabel
 *
 * which emits the comparable BENCH_<label>.json artifact
 * (docs/PERFORMANCE.md).
 */

#include <cstdio>

#include "perf/bench_report.hh"

using namespace pcbp;

int
main()
{
    BenchContext ctx;
    const BenchRun run = BenchRun::fromResults(
        "micro_engine", ctx, runBenches(benchesMatching("engine."), ctx));
    std::fputs(benchRunTable(run).toMarkdown().c_str(), stdout);
    return 0;
}
