/**
 * @file
 * Whole-engine hot-path micro-benchmark: committed branches per
 * second through the accuracy engine, prophet-alone and full hybrid.
 * The hybrid row exercises the critique path (future-bit gather +
 * BOR reconstruction) once per committed branch, which is where the
 * per-critique std::vector<bool> allocations used to live — compare
 * this number across revisions to see hot-path regressions. Plain
 * chrono, no Google Benchmark dependency.
 */

#include <chrono>
#include <cstdio>

#include "sim/driver.hh"

using namespace pcbp;

namespace
{

void
bench(const char *label, const HybridSpec &spec)
{
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg;
    cfg.warmupBranches = 50000;
    cfg.measureBranches = static_cast<std::uint64_t>(
        1500000 * benchScale());

    Program p = buildProgram(w);
    auto h = spec.build();
    Engine engine(p, *h, cfg);

    const auto t0 = std::chrono::steady_clock::now();
    const EngineStats st = engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    const double total =
        double(cfg.warmupBranches + cfg.measureBranches);
    std::printf("%-28s %8.2f Mbranch/s  (%.0f branches, %.3f s, "
                "misp/Ku %.3f)\n",
                label, total / secs / 1e6, total, secs,
                st.mispPerKuops());
}

} // namespace

int
main()
{
    bench("prophet-alone gshare 8KB",
          prophetAlone(ProphetKind::Gshare, Budget::B8KB));
    bench("prophet-alone perceptron",
          prophetAlone(ProphetKind::Perceptron, Budget::B8KB));
    bench("hybrid t.gshare fb=8",
          hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                     CriticKind::TaggedGshare, Budget::B8KB, 8));
    bench("hybrid perceptron+t.gshare",
          hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                     CriticKind::TaggedGshare, Budget::B8KB, 8));
    return 0;
}
