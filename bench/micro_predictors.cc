/**
 * @file
 * Predictor/critic/hybrid micro-benchmarks — now a thin wrapper over
 * the perf registry's predictor.*, critic.*, and hybrid.* benchmarks
 * (src/perf/bench.hh). The Google Benchmark dependency is gone: the
 * same repeat/warmup/median measurement core (src/perf/measure.hh)
 * that backs `pcbp_bench` times these, so the numbers printed here
 * are the numbers the BENCH_*.json artifacts track. For trackable
 * runs use:
 *
 *   pcbp_bench run --filter pred. --name mylabel
 */

#include <cstdio>

#include "perf/bench_report.hh"

using namespace pcbp;

int
main()
{
    BenchContext ctx;
    const BenchRun run = BenchRun::fromResults(
        "micro_predictors", ctx,
        runBenches(benchesMatching("pred.,critic.,hybrid."), ctx));
    std::fputs(benchRunTable(run).toMarkdown().c_str(), stdout);
    return 0;
}
