/**
 * @file
 * google-benchmark microbenchmarks: lookup + update throughput of
 * every predictor in the zoo, the critic structures, and the full
 * prophet/critic hybrid event path. These measure simulator
 * performance (host ns/prediction), not prediction accuracy.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/filtered_perceptron.hh"
#include "core/presets.hh"
#include "core/tagged_gshare.hh"
#include "predictors/factory.hh"

using namespace pcbp;

namespace
{

/** Deterministic stream of (pc, outcome, history) stimuli. */
struct Stimulus
{
    explicit Stimulus(std::uint64_t seed) : rng(seed) {}

    void
    step()
    {
        pc = 0x400000 + (rng.nextBelow(4096) << 4);
        outcome = rng.nextBool(0.6);
        hist.shiftIn(outcome);
    }

    Rng rng;
    Addr pc = 0x400000;
    bool outcome = false;
    HistoryRegister hist;
};

void
benchProphet(benchmark::State &state, ProphetKind kind)
{
    auto pred = makeProphet(kind, Budget::B8KB);
    Stimulus s(42);
    for (auto _ : state) {
        s.step();
        const bool taken = pred->predict(s.pc, s.hist);
        benchmark::DoNotOptimize(taken);
        pred->update(s.pc, s.hist, s.outcome);
    }
    state.SetItemsProcessed(state.iterations());
}

void
benchCritic(benchmark::State &state, CriticKind kind)
{
    auto critic = makeCritic(kind, Budget::B8KB);
    Stimulus s(43);
    for (auto _ : state) {
        s.step();
        const CritiqueResult r = critic->critique(s.pc, s.hist);
        benchmark::DoNotOptimize(r);
        critic->train(s.pc, s.hist, s.outcome, !r.provided);
    }
    state.SetItemsProcessed(state.iterations());
}

void
benchHybridPath(benchmark::State &state)
{
    auto hybrid =
        makeHybrid(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    Stimulus s(44);
    FutureBits fb;
    for (auto _ : state) {
        s.step();
        BranchContext ctx;
        const bool pred = hybrid->predictBranch(s.pc, ctx);
        fb.clear();
        for (std::size_t i = 0; i < 8; ++i)
            fb.push(i == 0 ? pred : s.rng.nextBool(0.5));
        const CritiqueDecision d =
            hybrid->critiqueBranch(s.pc, ctx, pred, fb);
        benchmark::DoNotOptimize(d.finalPrediction);
        hybrid->commitBranch(s.pc, ctx, d, s.outcome);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(benchProphet, gshare, ProphetKind::Gshare);
BENCHMARK_CAPTURE(benchProphet, gskew, ProphetKind::GSkew);
BENCHMARK_CAPTURE(benchProphet, perceptron, ProphetKind::Perceptron);
BENCHMARK_CAPTURE(benchProphet, bimodal, ProphetKind::Bimodal);
BENCHMARK_CAPTURE(benchProphet, yags, ProphetKind::Yags);
BENCHMARK_CAPTURE(benchProphet, local, ProphetKind::Local);
BENCHMARK_CAPTURE(benchProphet, tournament, ProphetKind::Tournament);
BENCHMARK_CAPTURE(benchProphet, two_level, ProphetKind::TwoLevel);

BENCHMARK_CAPTURE(benchCritic, tagged_gshare, CriticKind::TaggedGshare);
BENCHMARK_CAPTURE(benchCritic, filtered_perceptron,
                  CriticKind::FilteredPerceptron);
BENCHMARK_CAPTURE(benchCritic, unfiltered_perceptron,
                  CriticKind::UnfilteredPerceptron);

BENCHMARK(benchHybridPath);

BENCHMARK_MAIN();
