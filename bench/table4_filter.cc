/**
 * @file
 * Reproduces Table 4: the percentage of prophet predictions that are
 * filtered (no explicit critique — a tag miss in the critic's
 * filter), split by whether the prophet's prediction was correct,
 * for a 4KB perceptron prophet with tagged gshare critics of 2KB,
 * 8KB, and 32KB, at 1/4/12 future bits.
 *
 * Paper shapes: roughly 2/3 to 3/4 of predictions are filtered —
 * i.e.\ the critic critiques about 1 of every 3 branches at 1 future
 * bit and 1 of every 4 at 12 (the filter grows more selective with
 * more future bits); the filtered-but-incorrect share stays around
 * a percent, falling slightly with critic size.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main()
{
    const auto set = avgSet();
    const std::vector<Budget> critic_sizes = {Budget::B2KB, Budget::B8KB,
                                              Budget::B32KB};
    const std::vector<unsigned> future_bits = {1, 4, 12};

    std::cout << "=== Table 4: percentage of prophet predictions "
                 "filtered by the critic ===\n"
              << "prophet: 4KB perceptron; critic: tagged gshare; "
                 "averaged over the AVG set\n\n";

    std::vector<std::string> headers = {"row"};
    for (Budget cb : critic_sizes)
        for (unsigned fb : future_bits)
            headers.push_back(budgetName(cb) + "/" +
                              std::to_string(fb) + "fb");
    TablePrinter table(headers);

    std::vector<std::string> row_cn = {"% correct_none"};
    std::vector<std::string> row_in = {"% incorrect_none"};
    std::vector<std::string> row_tot = {"% none (total)"};

    for (Budget cb : critic_sizes) {
        for (unsigned fb : future_bits) {
            const auto agg = runSetAggregated(
                set, hybridSpec(ProphetKind::Perceptron, Budget::B4KB,
                                CriticKind::TaggedGshare, cb, fb));
            const double total =
                static_cast<double>(agg.critiques.total());
            const double cn = 100.0 *
                double(agg.critiques.get(CritiqueClass::CorrectNone)) /
                total;
            const double in = 100.0 *
                double(agg.critiques.get(
                    CritiqueClass::IncorrectNone)) /
                total;
            row_cn.push_back(fmtDouble(cn, 1));
            row_in.push_back(fmtDouble(in, 1));
            row_tot.push_back(fmtDouble(cn + in, 1));
        }
    }
    table.addRow(row_cn);
    table.addRow(row_in);
    table.addRow(row_tot);

    std::cout << table.str()
              << "\npaper: total %none is ~66-78 and generally rises "
                 "with future bits;\nincorrect_none stays ~0.4-1.3 and "
                 "falls with critic size\n";
    return 0;
}
