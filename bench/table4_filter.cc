/**
 * @file
 * Table 4 (percentage of prophet predictions filtered by the critic)
 * as a thin wrapper over the figure registry (src/report/figures.cc;
 * also `pcbp_repro run --figures table4`). Accepts
 * --workloads/--suite (incl. trace:<path>), --branches, --jobs,
 * --quick.
 */

#include "report/repro.hh"

int
main(int argc, char **argv)
{
    return pcbp::figureMain("table4", argc, argv);
}
