/**
 * @file
 * Front-end demo: run the cycle-level decoupled front-end timing
 * model (Fig. 4 of the paper) and print what the pipeline did —
 * uPC, fetch traffic, FTQ behavior, critic overrides.
 *
 *   ./frontend_demo [workload] [future_bits]
 */

#include <iostream>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "int.crafty";
    const unsigned fb =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
    const Workload &w = workloadByName(workload_name);

    std::cout << "=== decoupled front-end on " << w.name
              << " (Fig. 4 architecture) ===\n"
              << "FTQ 32 entries; prophet 2 pred/cycle; critic 1 "
                 "critique/cycle; fetch/retire 6 uops/cycle;\n"
              << "branches resolve 30 cycles after fetch\n\n";

    const auto baseline = prophetAlone(ProphetKind::GSkew, Budget::B16KB);
    const auto hybrid = hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                                   CriticKind::TaggedGshare,
                                   Budget::B8KB, fb);

    const TimingStats base = runTiming(w, baseline);
    const TimingStats hyb = runTiming(w, hybrid);

    TablePrinter t({"metric", "16KB 2Bc-gskew",
                    "8KB+8KB hybrid @" + std::to_string(fb) + "fb"});
    t.addRow({"uPC", fmtDouble(base.upc(), 3), fmtDouble(hyb.upc(), 3)});
    t.addRow({"cycles", std::to_string(base.cycles),
              std::to_string(hyb.cycles)});
    t.addRow({"committed uops", std::to_string(base.committedUops),
              std::to_string(hyb.committedUops)});
    t.addRow({"fetched uops", std::to_string(base.fetchedUops),
              std::to_string(hyb.fetchedUops)});
    t.addRow({"wrong-path fetched uops",
              std::to_string(base.wrongPathFetchedUops),
              std::to_string(hyb.wrongPathFetchedUops)});
    t.addRow({"pipeline flushes", std::to_string(base.finalMispredicts),
              std::to_string(hyb.finalMispredicts)});
    t.addRow({"uops per flush", fmtDouble(base.uopsPerFlush(), 0),
              fmtDouble(hyb.uopsPerFlush(), 0)});
    t.addRow({"critic overrides", "-",
              std::to_string(hyb.criticOverrides)});
    t.addRow({"FTQ entries flushed by critic", "-",
              std::to_string(hyb.ftqEntriesFlushedByCritic)});
    t.addRow({"partial critiques", "-",
              std::to_string(hyb.partialCritiques)});
    t.addRow({"FTQ-empty cycles", std::to_string(base.ftqEmptyCycles),
              std::to_string(hyb.ftqEmptyCycles)});
    std::cout << t.str();

    std::cout << "\nspeedup: "
              << fmtDouble(100.0 * (hyb.upc() / base.upc() - 1.0), 2)
              << "%\n"
              << "(the paper's Sec. 5 note holds here too: the "
                 "critic's FTQ flushes are almost free\nbecause the "
                 "queue stays full — compare the FTQ-empty cycle "
                 "counts)\n";
    return 0;
}
