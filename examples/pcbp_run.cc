/**
 * @file
 * pcbp_run — the command-line experiment driver.
 *
 * Runs any prophet/critic configuration on any registered workload
 * through the accuracy engine or the cycle-level timing model, and
 * prints the full statistics. This is the tool a downstream user
 * reaches for before writing code against the library.
 *
 *   pcbp_run [options]
 *     --workload NAME        workload (default int.crafty); LIST lists
 *     --prophet KIND:BUDGET  e.g. perceptron:8KB (default)
 *     --critic KIND:BUDGET   e.g. t.gshare:8KB; "none" for baseline
 *     --fb N                 future bits (default 8)
 *     --branches N           measured branches (default: workload's)
 *     --timing               run the timing model instead
 *     --oracle               oracle future bits (Sec. 6 ablation)
 *     --no-btb               disable the BTB
 *     --per-branch N         print the top-N mispredicting branches
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --workload NAME | LIST   (default int.crafty)\n"
        << "  --prophet KIND:BUDGET    (default perceptron:8KB)\n"
        << "  --critic KIND:BUDGET|none (default t.gshare:8KB)\n"
        << "  --fb N                   future bits (default 8)\n"
        << "  --branches N             measured branches\n"
        << "  --timing                 cycle-level timing model\n"
        << "  --oracle                 oracle future bits (ablation)\n"
        << "  --no-btb                 disable the BTB\n"
        << "  --per-branch N           top-N mispredicting branches\n";
    std::exit(2);
}

/** Split "kind:budget" (budget optional, default 8KB). */
std::pair<std::string, Budget>
splitSpec(const std::string &s)
{
    const auto colon = s.find(':');
    if (colon == std::string::npos)
        return {s, Budget::B8KB};
    return {s.substr(0, colon), parseBudget(s.substr(colon + 1))};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "int.crafty";
    std::string prophet = "perceptron:8KB";
    std::string critic = "t.gshare:8KB";
    unsigned fb = 8;
    std::uint64_t branches = 0;
    bool timing = false, oracle = false, no_btb = false;
    unsigned per_branch = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next();
        else if (arg == "--prophet")
            prophet = next();
        else if (arg == "--critic")
            critic = next();
        else if (arg == "--fb")
            fb = static_cast<unsigned>(std::atoi(next().c_str()));
        else if (arg == "--branches")
            branches = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--timing")
            timing = true;
        else if (arg == "--oracle")
            oracle = true;
        else if (arg == "--no-btb")
            no_btb = true;
        else if (arg == "--per-branch")
            per_branch =
                static_cast<unsigned>(std::atoi(next().c_str()));
        else
            usage(argv[0]);
    }

    if (workload == "LIST") {
        TablePrinter t({"workload", "suite", "static branches",
                        "sim branches"});
        for (const auto &w : allWorkloads())
            t.addRow({w.name, w.suite,
                      std::to_string(w.recipe.targetBlocks),
                      std::to_string(w.simBranches)});
        std::cout << t.str();
        return 0;
    }

    const Workload &w = workloadByName(workload);

    HybridSpec spec;
    {
        const auto [pk, pb] = splitSpec(prophet);
        spec.prophet = parseProphetKind(pk);
        spec.prophetBudget = pb;
    }
    if (critic != "none") {
        const auto [ck, cb] = splitSpec(critic);
        spec.critic = parseCriticKind(ck);
        spec.criticBudget = cb;
        spec.futureBits = fb;
    }

    std::cout << "workload: " << w.name << " (suite " << w.suite
              << "); predictor: " << spec.label()
              << (spec.critic ? " @" + std::to_string(fb) + "fb" : "")
              << "\n\n";

    if (timing) {
        TimingConfig cfg = timingConfigFor(w);
        if (branches) {
            cfg.measureBranches = branches;
            cfg.warmupBranches = branches / 10;
        }
        cfg.useBtb = !no_btb;
        Program prog = buildProgram(w);
        auto hybrid = spec.build();
        TimingSim sim(prog, *hybrid, cfg);
        const TimingStats st = sim.run();
        TablePrinter t({"metric", "value"});
        t.addRow({"uPC", fmtDouble(st.upc(), 3)});
        t.addRow({"cycles", std::to_string(st.cycles)});
        t.addRow({"committed uops", std::to_string(st.committedUops)});
        t.addRow({"fetched uops", std::to_string(st.fetchedUops)});
        t.addRow({"wrong-path fetched uops",
                  std::to_string(st.wrongPathFetchedUops)});
        t.addRow({"pipeline flushes",
                  std::to_string(st.finalMispredicts)});
        t.addRow({"uops per flush", fmtDouble(st.uopsPerFlush(), 0)});
        t.addRow({"critic overrides",
                  std::to_string(st.criticOverrides)});
        t.addRow({"partial critiques",
                  std::to_string(st.partialCritiques)});
        std::cout << t.str();
        return 0;
    }

    EngineConfig cfg = engineConfigFor(w);
    if (branches) {
        cfg.measureBranches = branches;
        cfg.warmupBranches = branches / 10;
    }
    cfg.oracleFutureBits = oracle;
    cfg.useBtb = !no_btb;
    cfg.collectPerBranch = per_branch > 0;

    const EngineStats st = runAccuracy(w, spec, cfg);

    TablePrinter t({"metric", "value"});
    t.addRow({"committed branches",
              std::to_string(st.committedBranches)});
    t.addRow({"committed uops", std::to_string(st.committedUops)});
    t.addRow({"misp/Kuops", fmtDouble(st.mispPerKuops(), 3)});
    t.addRow({"mispredict rate", fmtPercent(st.mispRate(), 2)});
    t.addRow({"prophet mispredict rate",
              fmtPercent(st.prophetMispRate(), 2)});
    t.addRow({"uops per flush", fmtDouble(st.uopsPerFlush(), 0)});
    t.addRow({"BTB misses", std::to_string(st.btbMisses)});
    t.addRow({"critic overrides", std::to_string(st.criticOverrides)});
    t.addRow({"squashed FTQ predictions",
              std::to_string(st.squashedPredictions)});
    t.addRow({"wrong-path uops", std::to_string(st.wrongPathUops)});
    t.addRow({"partial critiques",
              std::to_string(st.partialCritiques)});
    std::cout << t.str();

    if (spec.critic) {
        std::cout << "\ncritique distribution:\n";
        TablePrinter ct({"class", "count"});
        for (std::size_t c = 0; c < numCritiqueClasses; ++c) {
            const auto cls = static_cast<CritiqueClass>(c);
            ct.addRow({critiqueClassName(cls),
                       std::to_string(st.critiques.get(cls))});
        }
        std::cout << ct.str();
    }

    if (per_branch > 0) {
        std::cout << "\ntop mispredicting branches:\n";
        TablePrinter pt({"pc", "execs", "prophet wrong", "final wrong"});
        unsigned shown = 0;
        for (const auto &pb : st.perBranch) {
            if (shown++ >= per_branch)
                break;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(pb.pc));
            pt.addRow({buf, std::to_string(pb.execs),
                       std::to_string(pb.prophetWrong),
                       std::to_string(pb.finalWrong)});
        }
        std::cout << pt.str();
    }
    return 0;
}
