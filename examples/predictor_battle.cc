/**
 * @file
 * Predictor battle: run the whole zoo — conventional predictors and
 * prophet/critic hybrids — on one workload and print a leaderboard.
 *
 *   ./predictor_battle [workload]
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "int.crafty";
    const Workload &w = workloadByName(workload_name);

    std::cout << "=== predictor battle on " << w.name << " (suite "
              << w.suite << ") ===\n\n";

    std::vector<HybridSpec> contenders;
    for (ProphetKind p : allProphetKinds()) {
        // The static predictors are floors, not contenders.
        if (p == ProphetKind::AlwaysTaken ||
            p == ProphetKind::AlwaysNotTaken) {
            continue;
        }
        contenders.push_back(prophetAlone(p, Budget::B16KB));
    }
    for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron, ProphetKind::Tage}) {
        contenders.push_back(hybridSpec(p, Budget::B8KB,
                                        CriticKind::TaggedGshare,
                                        Budget::B8KB, 8));
        contenders.push_back(hybridSpec(p, Budget::B8KB,
                                        CriticKind::FilteredPerceptron,
                                        Budget::B8KB, 8));
    }

    struct Row
    {
        std::string name;
        double mpku;
        double rate;
        std::size_t bytes;
    };
    std::vector<Row> rows;
    for (const auto &spec : contenders) {
        const EngineStats st = runAccuracy(w, spec);
        auto hybrid = spec.build();
        rows.push_back({spec.label() + (spec.critic ? " @8fb" : ""),
                        st.mispPerKuops(), st.mispRate(),
                        hybrid->sizeBytes()});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.mpku < b.mpku; });

    TablePrinter table({"rank", "predictor", "misp/Kuops", "misp rate",
                        "bytes"});
    int rank = 1;
    for (const auto &r : rows) {
        table.addRow({std::to_string(rank++), r.name,
                      fmtDouble(r.mpku, 3), fmtPercent(r.rate, 2),
                      std::to_string(r.bytes)});
    }
    std::cout << table.str();
    return 0;
}
