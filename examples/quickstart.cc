/**
 * @file
 * Quickstart: build a prophet/critic hybrid from the paper's Table 3
 * presets, run it on a synthetic workload through the wrong-path
 * engine, and compare it with the prophet scaled to the same total
 * budget — the paper's core comparison.
 *
 *   ./quickstart [workload] [future_bits]
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.hh"
#include "sim/driver.hh"

using namespace pcbp;

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "int.crafty";
    const unsigned future_bits =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;

    const Workload &w = workloadByName(workload_name);
    std::cout << "workload: " << w.name << " (suite " << w.suite
              << ", ~" << w.recipe.targetBlocks << " static branches)\n";

    // Baseline: a conventional 16KB perceptron predictor.
    const HybridSpec baseline =
        prophetAlone(ProphetKind::Perceptron, Budget::B16KB);

    // Contender: 8KB perceptron prophet + 8KB tagged gshare critic —
    // same total budget, plus future bits.
    const HybridSpec contender =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, future_bits);

    const EngineStats base = runAccuracy(w, baseline);
    const EngineStats hyb = runAccuracy(w, contender);

    TablePrinter t({"predictor", "misp/Kuops", "misp rate",
                    "uops/flush"});
    t.addRow({baseline.label(), fmtDouble(base.mispPerKuops(), 3),
              fmtPercent(base.mispRate(), 2),
              fmtDouble(base.uopsPerFlush(), 0)});
    t.addRow({contender.label() + " @" + std::to_string(future_bits) +
                  "fb",
              fmtDouble(hyb.mispPerKuops(), 3),
              fmtPercent(hyb.mispRate(), 2),
              fmtDouble(hyb.uopsPerFlush(), 0)});
    std::cout << t.str();

    std::cout << "mispredict reduction: "
              << fmtDouble(pctReduction(base.mispPerKuops(),
                                        hyb.mispPerKuops()),
                           1)
              << "%\n";
    return 0;
}
