/**
 * @file
 * sweep_demo — the sweep subsystem in ~40 lines.
 *
 * Builds a grid programmatically (future bits x two workloads),
 * runs it twice against one on-disk store to show that the second
 * run is a resume (every cell skipped), and prints a table from the
 * stored results. Delete the store file to recompute.
 */

#include <iostream>

#include "common/stats.hh"
#include "sweep/runner.hh"

using namespace pcbp;

int
main()
{
    SweepSpec sweep;
    sweep.name = "demo";
    sweep.axes.futureBits = {0, 4, 8};
    sweep.branches = 50000;
    sweep.workloads = {"mm.mpeg", "int.crafty"};

    ResultStore store("sweep_demo.jsonl");
    const SweepRunSummary first = runSweep(sweep, store);
    const SweepRunSummary second = runSweep(sweep, store);
    std::cout << "first run executed " << first.executedCells
              << " of " << first.totalCells << " cells; second run "
              << "resumed and executed " << second.executedCells
              << "\n\n";

    TablePrinter table({"workload", "future bits", "misp/Kuops"});
    for (const auto &cell : sweep.cells())
        table.addRow({cell.workload->name,
                      std::to_string(cell.spec.futureBits),
                      fmtDouble(store.statsFor(cell).mispPerKuops(),
                                3)});
    std::cout << table.str()
              << "\n(results persisted in sweep_demo.jsonl; export "
                 "with: pcbp_sweep export --store sweep_demo.jsonl)\n";
    return 0;
}
