/**
 * @file
 * The taxicab demo: a step-by-step walkthrough of the paper's
 * Figure 2 example on a hand-built control flow graph, printing the
 * BHR/BOR states and the critic's learning process.
 *
 * The front-seat driver (prophet) keeps taking the wrong turn at
 * intersection A; the back-seat driver (critic) watches the next few
 * turns, learns the signature of being lost, and starts speaking up.
 */

#include <iostream>

#include "core/presets.hh"
#include "sim/engine.hh"
#include "workload/cfg.hh"

using namespace pcbp;

namespace
{

/**
 * A CFG in the spirit of the paper's Figure 2: branch A is hard (it
 * XORs two committed bits from the previous lap), the paths after A
 * diverge through differently-biased blocks, and relay branches
 * re-expose the bits A depends on.
 */
Program
figure2Program()
{
    Program p("figure-2");
    auto add = [&](Addr pc, BranchBehaviorPtr beh, BlockId taken,
                   BlockId fall) {
        BasicBlock b;
        b.branchPc = pc;
        b.numUops = 8;
        b.takenTarget = taken;
        b.fallthroughTarget = fall;
        b.behavior = std::move(beh);
        p.addBlock(std::move(b));
    };

    // Blocks 0..3: W X Y Z — the "past branches" of the figure.
    // Two of them are coin flips (the entropy A depends on).
    add(0x100, std::make_unique<BiasedBehavior>(0.9, 1), 1, 1);   // W
    add(0x110, std::make_unique<BiasedBehavior>(0.5, 2), 2, 2);   // X
    add(0x120, std::make_unique<BiasedBehavior>(0.5, 3), 3, 3);   // Y
    add(0x130, std::make_unique<BiasedBehavior>(0.1, 4), 4, 4);   // Z
    // Spacer blocks so X and Y sit deeper than the critic's history
    // window at branch A (lags 18 and 19 with the layout below).
    for (int i = 0; i < 16; ++i) {
        add(0x140 + 16 * i, std::make_unique<BiasedBehavior>(0.95, 5 + i),
            static_cast<BlockId>(5 + i), static_cast<BlockId>(5 + i));
    }
    // Block 20: branch A = Y xor X from this lap. Per lap the
    // commits are W X Y Z, 16 spacers, A, one arm, two relays (24
    // total); at A, Y sits at lag 17 and X at lag 18.
    add(0x240, std::make_unique<GlobalXorBehavior>(17, 18, false, 0.0, 30),
        21, 22);
    // Blocks 21/22: the diverging arms (B vs C in the figure).
    add(0x250, std::make_unique<BiasedBehavior>(0.97, 31), 23, 23); // B
    add(0x260, std::make_unique<BiasedBehavior>(0.03, 32), 23, 23); // C
    // Blocks 23/24: relays re-exposing X and Y (E/H vs G/J). Each
    // relay is one commit later and targets a bit one older, so both
    // use lag 20.
    add(0x270, std::make_unique<GlobalEchoBehavior>(20, false, 0.0, 33),
        24, 24);
    add(0x280, std::make_unique<GlobalEchoBehavior>(20, false, 0.0, 34),
        0, 0);
    p.validate();
    return p;
}

} // namespace

int
main()
{
    std::cout <<
        "The taxi has two drivers. The front-seat driver (the\n"
        "prophet) makes every turn from experience; the back-seat\n"
        "driver (the critic) watches the next few turns before\n"
        "deciding they are lost (Sec. 1 of the paper).\n\n";

    Program prog = figure2Program();

    // Warm the hybrid up on the program, then replay a few laps and
    // narrate what happens at branch A.
    auto hybrid = makeHybrid(ProphetKind::Perceptron, Budget::B8KB,
                             CriticKind::TaggedGshare, Budget::B8KB, 8);

    EngineConfig cfg;
    cfg.warmupBranches = 40000;
    cfg.measureBranches = 10000;
    cfg.collectPerBranch = true;
    Engine engine(prog, *hybrid, cfg);
    EngineStats st = engine.run();

    std::cout << "After " << (cfg.warmupBranches + cfg.measureBranches)
              << " branches on the Figure-2 course:\n\n";
    for (const auto &pb : st.perBranch) {
        if (pb.pc != 0x240)
            continue;
        std::cout << "intersection A (pc 0x240):\n"
                  << "  times visited (measured): " << pb.execs << "\n"
                  << "  front-seat driver wrong:  " << pb.prophetWrong
                  << " (" << fmtPercent(double(pb.prophetWrong) /
                                        double(pb.execs), 1)
                  << ")\n"
                  << "  after the back-seat driver: " << pb.finalWrong
                  << " (" << fmtPercent(double(pb.finalWrong) /
                                        double(pb.execs), 1)
                  << ")\n\n";
    }

    std::cout << "critique distribution on the course:\n";
    for (std::size_t c = 0; c < numCritiqueClasses; ++c) {
        const auto cls = static_cast<CritiqueClass>(c);
        std::cout << "  " << critiqueClassName(cls) << ": "
                  << st.critiques.get(cls) << "\n";
    }
    std::cout << "\noverall: " << fmtDouble(st.mispPerKuops(), 3)
              << " misp/Kuops; one flush every "
              << fmtDouble(st.uopsPerFlush(), 0) << " uops\n";

    // Show the live registers for flavor.
    std::cout << "\nfinal BHR (youngest last): "
              << hybrid->bhr().toString(24) << "\n"
              << "final BOR (youngest last): "
              << hybrid->bor().toString(24) << "\n";
    return 0;
}
