/**
 * @file
 * Trace explorer: generate a workload, record its committed branch
 * trace to a file, reload it, summarize it, and show the top
 * mispredicting static branches before and after adding a critic.
 *
 *   ./trace_explorer [workload] [trace-file]
 */

#include <iostream>
#include <map>

#include "common/stats.hh"
#include "sim/driver.hh"
#include "workload/trace.hh"

using namespace pcbp;

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "msvc7";
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/pcbp_" + workload_name + ".trace";
    const Workload &w = workloadByName(workload_name);

    // ---- record and reload the committed trace ------------------
    Program prog = buildProgram(w);
    const auto trace = walkProgram(prog, 100000);
    saveTrace(path, trace);
    const auto loaded = loadTrace(path);
    const TraceSummary sum = summarizeTrace(loaded);

    std::cout << "=== trace of " << w.name << " -> " << path
              << " ===\n"
              << "branches: " << sum.branches
              << ", uops: " << sum.uops << " ("
              << fmtDouble(sum.uopsPerBranch(), 1) << " uops/branch)\n"
              << "taken rate: " << fmtPercent(sum.takenRate(), 1)
              << ", static branches: " << sum.staticBranches << "\n\n";
    std::cout << "note (Sec. 6 of the paper): this linear trace cannot "
                 "drive a prophet/critic\nhybrid faithfully — future "
                 "bits must come from walking the wrong path through\n"
                 "the CFG, which is what the engine below does.\n\n";

    // ---- per-branch before/after ---------------------------------
    const auto alone = prophetAlone(ProphetKind::Perceptron,
                                    Budget::B8KB);
    const auto hybrid =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    EngineConfig cfg = engineConfigFor(w);
    cfg.collectPerBranch = true;

    const EngineStats before = runAccuracy(w, alone, cfg);
    const EngineStats after = runAccuracy(w, hybrid, cfg);

    std::map<Addr, const PerBranchStat *> after_by_pc;
    for (const auto &pb : after.perBranch)
        after_by_pc[pb.pc] = &pb;

    std::cout << "top mispredicting branches, prophet alone vs "
                 "prophet/critic @8fb:\n";
    TablePrinter table({"pc", "execs", "alone wrong", "hybrid wrong",
                        "change"});
    int shown = 0;
    for (const auto &pb : before.perBranch) {
        if (shown++ >= 10)
            break;
        const auto it = after_by_pc.find(pb.pc);
        const std::uint64_t hw =
            it != after_by_pc.end() ? it->second->finalWrong : 0;
        char pc_buf[32];
        std::snprintf(pc_buf, sizeof(pc_buf), "0x%llx",
                      static_cast<unsigned long long>(pb.pc));
        table.addRow({pc_buf, std::to_string(pb.execs),
                      std::to_string(pb.finalWrong), std::to_string(hw),
                      fmtDouble(pctReduction(double(pb.finalWrong),
                                             double(hw)),
                                1) +
                          "%"});
    }
    std::cout << table.str() << "\n"
              << "totals: " << fmtDouble(before.mispPerKuops(), 3)
              << " -> " << fmtDouble(after.mispPerKuops(), 3)
              << " misp/Kuops ("
              << fmtDouble(pctReduction(before.mispPerKuops(),
                                        after.mispPerKuops()),
                           1)
              << "% reduction)\n";
    return 0;
}
