/**
 * @file
 * Small bit-manipulation helpers used by predictor index/tag hashing.
 */

#ifndef PCBP_COMMON_BIT_UTILS_HH
#define PCBP_COMMON_BIT_UTILS_HH

#include <cstdint>

#include "common/logging.hh"

namespace pcbp
{

/** Return a mask with the low @p n bits set (n in [0, 64]). */
constexpr std::uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << n) - 1);
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Base-2 logarithm of a power of two. */
constexpr unsigned
log2Floor(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/**
 * Fold a wide value down to @p bits bits by XORing successive
 * @p bits -wide chunks. Used to hash long histories into table
 * indices without discarding any input bits.
 */
constexpr std::uint64_t
foldBits(std::uint64_t v, unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return v;
    std::uint64_t folded = 0;
    while (v != 0) {
        folded ^= v & maskBits(bits);
        v >>= bits;
    }
    return folded;
}

/** Reverse the bit order of a 64-bit value (bit 0 <-> bit 63). */
constexpr std::uint64_t
bitReverse64(std::uint64_t v)
{
    v = ((v >> 1) & 0x5555555555555555ULL) |
        ((v & 0x5555555555555555ULL) << 1);
    v = ((v >> 2) & 0x3333333333333333ULL) |
        ((v & 0x3333333333333333ULL) << 2);
    v = ((v >> 4) & 0x0f0f0f0f0f0f0f0fULL) |
        ((v & 0x0f0f0f0f0f0f0f0fULL) << 4);
    return __builtin_bswap64(v);
}

/**
 * foldBits for values known to populate most of the 64-bit range
 * (e.g.\ mix64 output): identical result, but the chunk count is
 * computed from the width instead of testing v against zero each
 * iteration, so the loop has a fixed trip count the compiler can
 * unroll and the fold runs branch-free on the hash hot path.
 */
constexpr std::uint64_t
foldBitsFixed(std::uint64_t v, unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return v;
    std::uint64_t folded = 0;
    for (unsigned s = 0; s < 64; s += bits)
        folded ^= v >> s;
    return folded & maskBits(bits);
}

/**
 * Mix a 64-bit value (splitmix64 finalizer). Cheap, high-quality
 * avalanche used to decorrelate tag hashes from index hashes.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Seznec-style skewing function for gskew banks: one step of an
 * n-bit Galois LFSR (shift right, feed the LSB back into taps at
 * bits n-1 and n-2). Bijective over the low @p n bits; the three
 * bank indices of gskew combine skewH and skewHInv so that two
 * inputs colliding in one bank are spread apart in the others.
 */
constexpr std::uint64_t
skewH(std::uint64_t v, unsigned n)
{
    pcbp_assert(n >= 2 && n <= 63);
    const std::uint64_t mask = maskBits(n);
    v &= mask;
    const std::uint64_t fb = v & 1;
    std::uint64_t r = v >> 1;
    if (fb)
        r ^= (std::uint64_t(1) << (n - 1)) | (std::uint64_t(1) << (n - 2));
    return r & mask;
}

/** Inverse of skewH over the low @p n bits. */
constexpr std::uint64_t
skewHInv(std::uint64_t v, unsigned n)
{
    pcbp_assert(n >= 2 && n <= 63);
    const std::uint64_t mask = maskBits(n);
    v &= mask;
    // The shifted-out feedback bit is visible at bit n-1: v >> 1 has a
    // zero there, so after the conditional tap XOR it equals fb.
    const std::uint64_t fb = (v >> (n - 1)) & 1;
    std::uint64_t r = v;
    if (fb)
        r ^= (std::uint64_t(1) << (n - 1)) | (std::uint64_t(1) << (n - 2));
    return ((r << 1) | fb) & mask;
}

} // namespace pcbp

#endif // PCBP_COMMON_BIT_UTILS_HH
