/**
 * @file
 * Fixed-capacity future-bit buffer.
 *
 * A critique consumes a handful of future bits — the prophet's
 * predictions for the critiqued branch and the branches fetched
 * after it. Gathering them into a heap-allocated std::vector<bool>
 * per critique dominated the spec-core hot path, so the bits travel
 * in this 64-bit mask instead: construction, push and indexing are
 * all branch-free register arithmetic, and the buffer lives in a
 * reusable scratch slot inside SpecCore.
 */

#ifndef PCBP_COMMON_FUTURE_BITS_HH
#define PCBP_COMMON_FUTURE_BITS_HH

#include <cstdint>
#include <initializer_list>

#include "common/logging.hh"

namespace pcbp
{

/** Up to 64 future bits, oldest first (bit 0 = oldest pushed). */
class FutureBits
{
  public:
    /** Maximum number of bits the buffer can hold. */
    static constexpr unsigned capacity = 64;

    FutureBits() = default;

    FutureBits(std::initializer_list<bool> bits)
    {
        for (bool b : bits)
            push(b);
    }

    void
    clear()
    {
        mask = 0;
        n = 0;
    }

    /** Append a bit (younger than every bit already present). */
    void
    push(bool b)
    {
        pcbp_dassert(n < capacity, "future-bit buffer overflow");
        mask |= std::uint64_t(b) << n;
        ++n;
    }

    unsigned size() const { return n; }
    bool empty() const { return n == 0; }

    /** Raw bit mask (bit i = i-th oldest pushed bit; bits >= size()
     *  are zero). Lets bulk consumers (buildCritiqueBor, the hit-bit
     *  ring gather) move all bits in one word operation. */
    std::uint64_t rawMask() const { return mask; }

    /**
     * Replace the contents with the low @p count bits of @p m at
     * once — the bulk equivalent of count push() calls with bit i of
     * @p m as the i-th (oldest-first) bit.
     */
    void
    assign(std::uint64_t m, unsigned count)
    {
        pcbp_dassert(count <= capacity);
        mask = count >= 64 ? m : (m & ((std::uint64_t(1) << count) - 1));
        n = count;
    }

    /** The i-th oldest bit (0 = oldest). */
    bool
    operator[](unsigned i) const
    {
        pcbp_dassert(i < n);
        return (mask >> i) & 1;
    }

  private:
    std::uint64_t mask = 0;
    unsigned n = 0;
};

} // namespace pcbp

#endif // PCBP_COMMON_FUTURE_BITS_HH
