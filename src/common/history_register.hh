/**
 * @file
 * Fixed-capacity branch history shift register. Used both for the
 * prophet's branch history register (BHR) and as the storage backing
 * the critic's branch outcome register (BOR).
 */

#ifndef PCBP_COMMON_HISTORY_REGISTER_HH
#define PCBP_COMMON_HISTORY_REGISTER_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

/**
 * A shift register of branch outcomes with capacity for 128 bits.
 *
 * Bit 0 is the most recently inserted outcome; higher bit positions
 * are older. Copying the register is cheap (two 64-bit words), which
 * is how per-branch checkpoints are implemented.
 */
class HistoryRegister
{
  public:
    /** Maximum number of bits the register can hold. */
    static constexpr unsigned capacity = 128;

    HistoryRegister() : words{0, 0} {}

    /** Shift in a new outcome as the youngest bit. */
    void
    shiftIn(bool taken)
    {
        words[1] = (words[1] << 1) | (words[0] >> 63);
        words[0] = (words[0] << 1) | static_cast<std::uint64_t>(taken);
    }

    /**
     * Shift in @p n bits at once (n <= 64), equivalent to n
     * successive shiftIn() calls. Bit 0 of @p youngest_first is the
     * youngest inserted bit — the one the LAST of those shiftIn()
     * calls would have inserted. The bulk form exists for the
     * critique path: reconstructing a BOR view appends a whole
     * future-bit window per critique, and a two-word funnel shift is
     * several times cheaper than the bit-at-a-time loop.
     */
    void
    shiftInMany(std::uint64_t youngest_first, unsigned n)
    {
        pcbp_dassert(n <= 64);
        if (n == 0)
            return;
        if (n == 64) {
            words[1] = words[0];
            words[0] = youngest_first;
            return;
        }
        words[1] = (words[1] << n) | (words[0] >> (64 - n));
        words[0] = (words[0] << n) | (youngest_first & maskBits(n));
    }

    /** Raw storage words (bit i of word w = bit 64w + i): the SIMD
     *  perceptron kernels consume history as two lane masks. */
    std::uint64_t word0() const { return words[0]; }
    std::uint64_t word1() const { return words[1]; }

    /** Remove the youngest bit (used by repair paths in tests). */
    void
    shiftOut()
    {
        words[0] = (words[0] >> 1) | (words[1] << 63);
        words[1] >>= 1;
    }

    /** Outcome of the i-th most recent branch (0 = youngest). */
    bool
    bit(unsigned i) const
    {
        pcbp_dassert(i < capacity);
        return (words[i / 64] >> (i % 64)) & 1;
    }

    /** Set the i-th most recent bit (0 = youngest). */
    void
    setBit(unsigned i, bool v)
    {
        pcbp_dassert(i < capacity);
        const std::uint64_t m = std::uint64_t(1) << (i % 64);
        if (v)
            words[i / 64] |= m;
        else
            words[i / 64] &= ~m;
    }

    /**
     * The youngest @p n bits as an integer (n <= 64). Bit 0 of the
     * result is the youngest outcome.
     */
    std::uint64_t
    low(unsigned n) const
    {
        pcbp_dassert(n <= 64);
        return words[0] & maskBits(n);
    }

    /**
     * Bits [first, first+n) (0 = youngest) as an integer, n <= 64.
     * Used to read a window of history that skips future bits.
     */
    std::uint64_t
    window(unsigned first, unsigned n) const
    {
        pcbp_dassert(n <= 64 && first + n <= capacity);
        if (first == 0)
            return low(n);
        std::uint64_t v = 0;
        if (first < 64) {
            v = words[0] >> first;
            v |= words[1] << (64 - first);
        } else {
            v = words[1] >> (first - 64);
        }
        return v & maskBits(n);
    }

    /** Fold the youngest @p n bits down to @p bits index bits. */
    std::uint64_t
    foldedLow(unsigned n, unsigned bits) const
    {
        if (n <= 64)
            return foldBits(low(n), bits);
        std::uint64_t f = foldBits(low(64), bits);
        f ^= foldBits(window(64, n - 64), bits);
        return f & maskBits(bits);
    }

    /** Clear all bits. */
    void reset() { words = {0, 0}; }

    bool operator==(const HistoryRegister &o) const
    {
        return words == o.words;
    }

    bool operator!=(const HistoryRegister &o) const { return !(*this == o); }

    /**
     * Render the youngest @p n bits as a string, youngest bit last
     * (so it reads left-to-right in program order), 'T'/'N'.
     */
    std::string
    toString(unsigned n) const
    {
        pcbp_assert(n <= capacity);
        std::string s;
        s.reserve(n);
        for (unsigned i = n; i-- > 0;)
            s.push_back(bit(i) ? 'T' : 'N');
        return s;
    }

  private:
    std::array<std::uint64_t, 2> words;
};

} // namespace pcbp

#endif // PCBP_COMMON_HISTORY_REGISTER_HH
