#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace pcbp
{

namespace
{

/**
 * The one stderr gate. pcbp_warn/pcbp_inform used to write std::cerr
 * directly, and ThreadPool workers warning concurrently (e.g. two
 * sweep cells hitting torn-store recovery) interleaved fragments of
 * each other's lines; every diagnostic line now goes out under this
 * mutex, whole or not at all.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

/** Capture buffer for ScopedLogCapture; null = write stderr. */
std::vector<std::string> *captureBuf = nullptr;

void
emitLine(const std::string &line)
{
    std::lock_guard<std::mutex> lk(sinkMutex());
    if (captureBuf) {
        captureBuf->push_back(line);
        return;
    }
    std::cerr << line << "\n" << std::flush;
}

} // namespace

LogLevel
logLevel()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("PCBP_LOG_LEVEL");
        if (!env)
            return LogLevel::Info;
        const std::string v(env);
        if (v == "quiet" || v == "error" || v == "0")
            return LogLevel::Error;
        if (v == "warn" || v == "1")
            return LogLevel::Warn;
        if (v == "info" || v == "2")
            return LogLevel::Info;
        // Unrecognized: keep the default and say so (once).
        std::cerr << "warn: ignoring PCBP_LOG_LEVEL='" << v
                  << "' (want quiet|warn|info)\n";
        return LogLevel::Info;
    }();
    return level;
}

void
logRawLine(const std::string &line)
{
    emitLine(line);
}

ScopedLogCapture::ScopedLogCapture()
{
    static std::vector<std::string> buf;
    std::lock_guard<std::mutex> lk(sinkMutex());
    buf.clear();
    captureBuf = &buf;
}

ScopedLogCapture::~ScopedLogCapture()
{
    std::lock_guard<std::mutex> lk(sinkMutex());
    captureBuf = nullptr;
}

std::vector<std::string>
ScopedLogCapture::lines() const
{
    std::lock_guard<std::mutex> lk(sinkMutex());
    // captureBuf is set for the lifetime of this object.
    return captureBuf ? *captureBuf : std::vector<std::string>{};
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine("panic: " + msg + "\n  at " + file + ":" +
             std::to_string(line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine("fatal: " + msg + "\n  at " + file + ":" +
             std::to_string(line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    emitLine("warn: " + msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    emitLine("info: " + msg);
}

} // namespace pcbp
