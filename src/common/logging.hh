/**
 * @file
 * gem5-style status/error reporting: panic for internal invariant
 * violations, fatal for user/configuration errors, warn/inform for
 * non-fatal conditions.
 */

#ifndef PCBP_COMMON_LOGGING_HH
#define PCBP_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace pcbp
{

/** Print "panic: <msg>" and abort(). Use for internal bugs only. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print "fatal: <msg>" and exit(1). Use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print "warn: <msg>" to stderr and continue. */
void warnImpl(const std::string &msg);

/** Print "info: <msg>" to stderr and continue. */
void informImpl(const std::string &msg);

namespace detail
{

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace pcbp

#define pcbp_panic(...) \
    ::pcbp::panicImpl(__FILE__, __LINE__, ::pcbp::detail::concat(__VA_ARGS__))

#define pcbp_fatal(...) \
    ::pcbp::fatalImpl(__FILE__, __LINE__, ::pcbp::detail::concat(__VA_ARGS__))

#define pcbp_warn(...) \
    ::pcbp::warnImpl(::pcbp::detail::concat(__VA_ARGS__))

#define pcbp_inform(...) \
    ::pcbp::informImpl(::pcbp::detail::concat(__VA_ARGS__))

/** Panic when an internal invariant does not hold. */
#define pcbp_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pcbp::panicImpl(__FILE__, __LINE__,                           \
                ::pcbp::detail::concat("assertion '", #cond, "' failed ",   \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif // PCBP_COMMON_LOGGING_HH
