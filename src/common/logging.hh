/**
 * @file
 * gem5-style status/error reporting: panic for internal invariant
 * violations, fatal for user/configuration errors, warn/inform for
 * non-fatal conditions.
 */

#ifndef PCBP_COMMON_LOGGING_HH
#define PCBP_COMMON_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace pcbp
{

/** Print "panic: <msg>" and abort(). Use for internal bugs only. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print "fatal: <msg>" and exit(1). Use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print "warn: <msg>" to stderr and continue. */
void warnImpl(const std::string &msg);

/** Print "info: <msg>" to stderr and continue. */
void informImpl(const std::string &msg);

/** Log verbosity, selected by the PCBP_LOG_LEVEL environment variable
 *  ("quiet"/"error", "warn", "info"; default info = everything). */
enum class LogLevel
{
    Error = 0, //!< only panic/fatal reach stderr
    Warn = 1,  //!< + pcbp_warn
    Info = 2   //!< + pcbp_inform and progress lines (default)
};

/** The effective level (PCBP_LOG_LEVEL, read once). */
LogLevel logLevel();

/**
 * Emit one complete line through the process-wide mutex-guarded log
 * sink. Every diagnostic writer — warn/inform, panic/fatal preambles,
 * the progress heartbeat — funnels through here, so lines from
 * concurrent ThreadPool workers never interleave mid-message.
 * Bypasses the level filter: callers filter before formatting.
 */
void logRawLine(const std::string &line);

/**
 * Test seam: while alive, logRawLine() appends lines here instead of
 * writing stderr. Not reentrant — one capture at a time.
 */
class ScopedLogCapture
{
  public:
    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    /** Captured lines, in emission order (copied under the sink lock). */
    std::vector<std::string> lines() const;
};

namespace detail
{

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace pcbp

#define pcbp_panic(...) \
    ::pcbp::panicImpl(__FILE__, __LINE__, ::pcbp::detail::concat(__VA_ARGS__))

#define pcbp_fatal(...) \
    ::pcbp::fatalImpl(__FILE__, __LINE__, ::pcbp::detail::concat(__VA_ARGS__))

#define pcbp_warn(...) \
    ::pcbp::warnImpl(::pcbp::detail::concat(__VA_ARGS__))

#define pcbp_inform(...) \
    ::pcbp::informImpl(::pcbp::detail::concat(__VA_ARGS__))

/** Panic when an internal invariant does not hold. */
#define pcbp_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pcbp::panicImpl(__FILE__, __LINE__,                           \
                ::pcbp::detail::concat("assertion '", #cond, "' failed ",   \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

/**
 * Hot-path invariant check: pcbp_assert in debug builds, compiled
 * out in optimized (NDEBUG) builds. Per-branch simulation loops run
 * these checks millions of times per second, where even an untaken
 * compare-and-branch costs measurable throughput and blocks
 * vectorization; the invariants still hold — they are just verified
 * by the debug and sanitizer configurations instead of every Release
 * run. The sanitizer CI build defines PCBP_FORCE_DASSERT so its
 * RelWithDebInfo binaries keep checking them. Cold-path and
 * construction-time checks stay pcbp_assert.
 */
#if !defined(NDEBUG) || defined(PCBP_FORCE_DASSERT)
#define pcbp_dassert(cond, ...) pcbp_assert(cond, ##__VA_ARGS__)
#else
#define pcbp_dassert(cond, ...) ((void)0)
#endif

#endif // PCBP_COMMON_LOGGING_HH
