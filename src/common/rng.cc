#include "common/rng.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // splitmix64 expansion of the seed into the xoshiro state; a
    // state of all zeros is impossible because mix64 is a bijection
    // applied to four distinct inputs.
    std::uint64_t x = seed;
    for (auto &word : s) {
        x += 0x9e3779b97f4a7c15ULL;
        word = mix64(x);
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    pcbp_assert(bound > 0);
    // Rejection-free multiply-shift; bias is negligible for the
    // bounds used here (all far below 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    pcbp_assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
        nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace pcbp
