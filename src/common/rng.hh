/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic
 * element of the workload substrate draws from an explicitly seeded
 * Rng so that simulations are bit-reproducible; there is no global
 * RNG state anywhere in the library.
 */

#ifndef PCBP_COMMON_RNG_HH
#define PCBP_COMMON_RNG_HH

#include <cstdint>

namespace pcbp
{

/**
 * xoshiro256** generator seeded via splitmix64. Small, fast, and
 * high-quality; decoupled streams are obtained by seeding with
 * distinct values.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability p. */
    bool nextBool(double p);

    /** Derive an independent child stream. */
    Rng fork();

  private:
    std::uint64_t s[4];
};

} // namespace pcbp

#endif // PCBP_COMMON_RNG_HH
