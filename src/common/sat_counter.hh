/**
 * @file
 * Saturating up/down counter, the basic prediction unit of most
 * table-based branch predictors.
 */

#ifndef PCBP_COMMON_SAT_COUNTER_HH
#define PCBP_COMMON_SAT_COUNTER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace pcbp
{

/**
 * An n-bit saturating counter. The counter predicts taken when it is
 * in the upper half of its range (for the canonical 2-bit counter:
 * states 2 and 3 predict taken).
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Width of the counter in bits (1..8).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal((1u << bits) - 1), val(initial)
    {
        pcbp_assert(bits >= 1 && bits <= 8);
        pcbp_assert(initial <= maxVal);
    }

    /** Increment, saturating at the maximum value. */
    void
    increment()
    {
        if (val < maxVal)
            ++val;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (val > 0)
            --val;
    }

    /** Move the counter toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Direction prediction: true = taken. */
    bool taken() const { return val > maxVal / 2; }

    /** True when the counter is at either extreme (high confidence). */
    bool saturated() const { return val == 0 || val == maxVal; }

    /** Raw counter value. */
    unsigned value() const { return val; }

    /** Force the counter to a specific value (used by filters). */
    void
    set(unsigned v)
    {
        pcbp_assert(v <= maxVal);
        val = v;
    }

    /** Initialize weakly toward a direction (e.g.\ on allocation). */
    void
    setWeak(bool taken_dir)
    {
        val = taken_dir ? maxVal / 2 + 1 : maxVal / 2;
    }

    /** Maximum representable value. */
    unsigned maxValue() const { return maxVal; }

  private:
    std::uint8_t maxVal = 3;
    std::uint8_t val = 0;
};

/**
 * A table of same-width saturating counters in structure-of-arrays
 * form: one byte per counter plus a single shared width, instead of
 * a vector<SatCounter> that stores the (identical) maxVal alongside
 * every value. Halves the table footprint — the difference between
 * fitting a 8K-entry pattern table in L1 or not — and gives the
 * batched engine contiguous byte arrays to prefetch. Semantics per
 * counter are exactly SatCounter's.
 */
class SatCounterTable
{
  public:
    SatCounterTable() = default;

    /**
     * @param n Number of counters.
     * @param bits Width of every counter in bits (1..8).
     * @param initial Initial value of every counter.
     */
    SatCounterTable(std::size_t n, unsigned bits, unsigned initial = 0)
        : vals(n, static_cast<std::uint8_t>(initial)),
          maxVal(static_cast<std::uint8_t>((1u << bits) - 1)),
          ctrBits(static_cast<std::uint8_t>(bits))
    {
        pcbp_assert(bits >= 1 && bits <= 8);
        pcbp_assert(initial <= maxVal);
    }

    std::size_t size() const { return vals.size(); }

    /** Shared counter width in bits. */
    unsigned bits() const { return ctrBits; }

    /** Direction prediction of counter @p i: true = taken. */
    bool
    taken(std::size_t i) const
    {
        pcbp_dassert(i < vals.size());
        return vals[i] > maxVal / 2;
    }

    /** Move counter @p i toward taken/not-taken, saturating. */
    void
    update(std::size_t i, bool taken_dir)
    {
        pcbp_dassert(i < vals.size());
        std::uint8_t &v = vals[i];
        if (taken_dir) {
            if (v < maxVal)
                ++v;
        } else {
            if (v > 0)
                --v;
        }
    }

    void
    increment(std::size_t i)
    {
        update(i, true);
    }

    void
    decrement(std::size_t i)
    {
        update(i, false);
    }

    /** Raw value of counter @p i. */
    unsigned
    value(std::size_t i) const
    {
        pcbp_dassert(i < vals.size());
        return vals[i];
    }

    /** Force counter @p i to a specific value. */
    void
    set(std::size_t i, unsigned v)
    {
        pcbp_dassert(i < vals.size());
        pcbp_assert(v <= maxVal);
        vals[i] = static_cast<std::uint8_t>(v);
    }

    /** Initialize counter @p i weakly toward a direction. */
    void
    setWeak(std::size_t i, bool taken_dir)
    {
        pcbp_dassert(i < vals.size());
        vals[i] = static_cast<std::uint8_t>(taken_dir ? maxVal / 2 + 1
                                                      : maxVal / 2);
    }

    /** True when counter @p i is at either extreme. */
    bool
    saturated(std::size_t i) const
    {
        pcbp_dassert(i < vals.size());
        return vals[i] == 0 || vals[i] == maxVal;
    }

    /** Set every counter to @p v (reset paths). */
    void
    fill(unsigned v)
    {
        pcbp_assert(v <= maxVal);
        std::fill(vals.begin(), vals.end(),
                  static_cast<std::uint8_t>(v));
    }

    /** Maximum representable value (shared by all counters). */
    unsigned maxValue() const { return maxVal; }

  private:
    std::vector<std::uint8_t> vals;
    std::uint8_t maxVal = 3;
    std::uint8_t ctrBits = 2;
};

} // namespace pcbp

#endif // PCBP_COMMON_SAT_COUNTER_HH
