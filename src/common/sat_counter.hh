/**
 * @file
 * Saturating up/down counter, the basic prediction unit of most
 * table-based branch predictors.
 */

#ifndef PCBP_COMMON_SAT_COUNTER_HH
#define PCBP_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace pcbp
{

/**
 * An n-bit saturating counter. The counter predicts taken when it is
 * in the upper half of its range (for the canonical 2-bit counter:
 * states 2 and 3 predict taken).
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Width of the counter in bits (1..8).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal((1u << bits) - 1), val(initial)
    {
        pcbp_assert(bits >= 1 && bits <= 8);
        pcbp_assert(initial <= maxVal);
    }

    /** Increment, saturating at the maximum value. */
    void
    increment()
    {
        if (val < maxVal)
            ++val;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (val > 0)
            --val;
    }

    /** Move the counter toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Direction prediction: true = taken. */
    bool taken() const { return val > maxVal / 2; }

    /** True when the counter is at either extreme (high confidence). */
    bool saturated() const { return val == 0 || val == maxVal; }

    /** Raw counter value. */
    unsigned value() const { return val; }

    /** Force the counter to a specific value (used by filters). */
    void
    set(unsigned v)
    {
        pcbp_assert(v <= maxVal);
        val = v;
    }

    /** Initialize weakly toward a direction (e.g.\ on allocation). */
    void
    setWeak(bool taken_dir)
    {
        val = taken_dir ? maxVal / 2 + 1 : maxVal / 2;
    }

    /** Maximum representable value. */
    unsigned maxValue() const { return maxVal; }

  private:
    std::uint8_t maxVal = 3;
    std::uint8_t val = 0;
};

} // namespace pcbp

#endif // PCBP_COMMON_SAT_COUNTER_HH
