#include "common/stats.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace pcbp
{

Histogram::Histogram(std::uint64_t bucket_width, unsigned num_buckets)
    : width(bucket_width), bins(num_buckets + 1, 0)
{
    pcbp_assert(bucket_width > 0 && num_buckets > 0);
}

void
Histogram::sample(std::uint64_t value)
{
    const std::size_t idx =
        std::min<std::size_t>(value / width, bins.size() - 1);
    ++bins[idx];
    ++total;
    sum += static_cast<double>(value);
}

double
Histogram::mean() const
{
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double
Histogram::percentile(double p) const
{
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (static_cast<double>(seen) >= target) {
            // Midpoint of the bucket as the estimate.
            return (static_cast<double>(i) + 0.5) *
                   static_cast<double>(width);
        }
    }
    return static_cast<double>(bins.size()) * static_cast<double>(width);
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    total = 0;
    sum = 0.0;
}

void
StatSet::set(const std::string &name, double value)
{
    auto it = index.find(name);
    if (it == index.end()) {
        index.emplace(name, ordered.size());
        ordered.push_back({name, value});
    } else {
        ordered[it->second].value = value;
    }
}

void
StatSet::add(const std::string &name, double delta)
{
    auto it = index.find(name);
    if (it == index.end())
        set(name, delta);
    else
        ordered[it->second].value += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        pcbp_fatal("unknown stat '", name, "'");
    return ordered[it->second].value;
}

bool
StatSet::has(const std::string &name) const
{
    return index.count(name) != 0;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : head(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    pcbp_assert(cells.size() == head.size(),
                "row width ", cells.size(), " vs header ", head.size());
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::str() const
{
    std::vector<std::size_t> w(head.size(), 0);
    for (std::size_t c = 0; c < head.size(); ++c)
        w[c] = head[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            w[c] = std::max(w[c], r[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &r) {
        os << "|";
        for (std::size_t c = 0; c < r.size(); ++c) {
            os << ' ' << r[c];
            os << std::string(w[c] - r[c].size(), ' ') << " |";
        }
        os << '\n';
    };
    emit_row(head);
    os << "|";
    for (std::size_t c = 0; c < head.size(); ++c)
        os << std::string(w[c] + 2, '-') << "|";
    os << '\n';
    for (const auto &r : rows)
        emit_row(r);
    return os.str();
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double frac, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, frac * 100.0);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace pcbp
