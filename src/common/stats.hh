/**
 * @file
 * Lightweight statistics: scalar counters, ratios, and histograms,
 * with pretty-printing helpers shared by the bench harness.
 */

#ifndef PCBP_COMMON_STATS_HH
#define PCBP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcbp
{

/** A named scalar statistic. */
struct Scalar
{
    std::string name;
    double value = 0.0;
};

/**
 * Simple fixed-bucket histogram for distances/latencies, e.g.\ the
 * distribution of uops between pipeline flushes.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket.
     * @param num_buckets Number of buckets; values past the last
     *        bucket accumulate in the overflow bucket.
     */
    explicit Histogram(std::uint64_t bucket_width = 64,
                       unsigned num_buckets = 64);

    /** Record one sample. */
    void sample(std::uint64_t value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return total; }

    /** Mean of all samples. */
    double mean() const;

    /** Approximate p-th percentile (p in [0, 100]). */
    double percentile(double p) const;

    /** Bucket counts (last entry is the overflow bucket). */
    const std::vector<std::uint64_t> &buckets() const { return bins; }

    std::uint64_t bucketWidth() const { return width; }

    void reset();

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/**
 * Accumulates named scalars in insertion order; used by the driver
 * to assemble result tables.
 */
class StatSet
{
  public:
    /** Add (or overwrite) a named value. */
    void set(const std::string &name, double value);

    /** Add to a named value, creating it at zero if absent. */
    void add(const std::string &name, double delta);

    /** Fetch a value; fatal if missing. */
    double get(const std::string &name) const;

    /** True if the stat exists. */
    bool has(const std::string &name) const;

    const std::vector<Scalar> &all() const { return ordered; }

  private:
    std::vector<Scalar> ordered;
    std::map<std::string, std::size_t> index;
};

/**
 * Render a fixed-column ASCII table (used by bench binaries to print
 * paper-style tables).
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format the whole table, markdown-style. */
    std::string str() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits decimal places. */
std::string fmtDouble(double v, int digits = 3);

/** Format a percentage (0.1234 -> "12.3%"). */
std::string fmtPercent(double frac, int digits = 1);

/**
 * Escape a string for embedding in a JSON string literal (quotes,
 * backslashes, newlines, tabs) — shared by the result store's JSONL
 * and the report renderers.
 */
std::string jsonEscape(const std::string &s);

} // namespace pcbp

#endif // PCBP_COMMON_STATS_HH
