#include "common/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    queues.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues.push_back(std::make_unique<WorkQueue>());
    counters.resize(workers);
    threads.reserve(workers - 1);
    for (unsigned i = 1; i < workers; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(batchMutex);
        shutdown = true;
    }
    workCv.notify_all();
    for (auto &t : threads)
        t.join();
}

bool
ThreadPool::popOwn(unsigned self, std::size_t &idx)
{
    WorkQueue &q = *queues[self];
    std::lock_guard<std::mutex> lk(q.m);
    if (q.d.empty())
        return false;
    idx = q.d.front();
    q.d.pop_front();
    return true;
}

bool
ThreadPool::stealOther(unsigned self, std::size_t &idx)
{
    const unsigned n = numWorkers();
    for (unsigned off = 1; off < n; ++off) {
        WorkQueue &q = *queues[(self + off) % n];
        std::lock_guard<std::mutex> lk(q.m);
        if (q.d.empty())
            continue;
        idx = q.d.back();
        q.d.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::drain(unsigned self)
{
    std::size_t done = 0;
    std::size_t idx;
    while (true) {
        const bool own = popOwn(self, idx);
        if (!own && !stealOther(self, idx))
            break;
        ++counters[self].tasks;
        if (!own)
            ++counters[self].steals;
        // `job` is only read once a task is held: tasks imply
        // `remaining > 0`, which keeps the batch's job published.
        (*job)(idx, self);
        ++done;
    }
    if (done == 0)
        return;
    std::lock_guard<std::mutex> lk(batchMutex);
    remaining -= done;
    if (remaining == 0)
        doneCv.notify_all();
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::uint64_t idleFrom = obsNanos();
        {
            std::unique_lock<std::mutex> lk(batchMutex);
            workCv.wait(lk,
                        [&] { return shutdown || epoch != seen; });
            if (shutdown)
                return;
            seen = epoch;
        }
        counters[self].idleNs += obsNanos() - idleFrom;
        drain(self);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelFor(n, std::function<void(std::size_t, unsigned)>(
                       [&fn](std::size_t i, unsigned) { fn(i); }));
}

void
ThreadPool::parallelFor(
    std::size_t n, const std::function<void(std::size_t, unsigned)> &fn)
{
    if (n == 0)
        return;
    std::lock_guard<std::mutex> call(callMutex);
    ++batches;

    // Publish the batch BEFORE queueing any index: a straggler from
    // the previous batch still scanning the deques may pop a new
    // task the instant it appears, and must find `job`/`remaining`
    // already valid (the deque mutex orders these writes for it).
    {
        std::lock_guard<std::mutex> lk(batchMutex);
        job = &fn;
        remaining = n;
        ++epoch;
    }

    // Round-robin the index space across the worker deques; stealing
    // rebalances whatever this initial split gets wrong.
    const unsigned w = numWorkers();
    for (std::size_t i = 0; i < n; ++i) {
        WorkQueue &q = *queues[i % w];
        std::lock_guard<std::mutex> lk(q.m);
        q.d.push_back(i);
    }
    workCv.notify_all();

    drain(0);

    std::unique_lock<std::mutex> lk(batchMutex);
    doneCv.wait(lk, [&] { return remaining == 0; });
    job = nullptr;
}

void
ThreadPool::exportStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    std::uint64_t tasks = 0, steals = 0, idle = 0;
    for (unsigned i = 0; i < counters.size(); ++i) {
        const WorkerCounters &c = counters[i];
        tasks += c.tasks;
        steals += c.steals;
        idle += c.idleNs;
        const std::string w = prefix + ".worker" + std::to_string(i);
        reg.addHost(w + ".tasks", c.tasks);
        reg.addHost(w + ".steals", c.steals);
        reg.addHost(w + ".idle_ns", c.idleNs);
    }
    // add (not set): sequential pools — one per sweep in a repro
    // run — accumulate into a single run-wide registry.
    reg.setHostMax(prefix + ".workers", numWorkers());
    reg.addHost(prefix + ".batches", batches);
    reg.addHost(prefix + ".tasks", tasks);
    reg.addHost(prefix + ".steals", steals);
    reg.addHost(prefix + ".idle_ns", idle);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace pcbp
