/**
 * @file
 * Work-stealing thread pool.
 *
 * The sweep runner shards individual (config, workload) cells across
 * cores; cell costs vary by orders of magnitude (a 32KB SERV cell is
 * far slower than a 2KB FP00 cell), so static partitioning would let
 * one expensive cell serialize a whole sweep. Each worker owns a
 * deque: it pops work from the front of its own deque and, when that
 * runs dry, steals from the back of a victim's — opposite ends, so
 * owner and thief rarely contend, and all cores stay busy without a
 * single shared queue. Owners draining front-first keeps global
 * execution roughly in index order, which the sweep runner's ordered
 * flush depends on to persist completed cells promptly rather than
 * buffering a whole sweep.
 *
 * The calling thread participates as worker 0, so a pool built with
 * `workers == 1` spawns no threads and runs strictly serially —
 * `--jobs 1` really is sequential execution, which the determinism
 * tests rely on.
 */

#ifndef PCBP_COMMON_THREAD_POOL_HH
#define PCBP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pcbp
{

class StatRegistry;

class ThreadPool
{
  public:
    /**
     * @param workers Total workers including the calling thread;
     *        0 means one per hardware thread. `workers - 1` threads
     *        are spawned and persist until destruction.
     */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread. */
    unsigned numWorkers() const { return unsigned(queues.size()); }

    /**
     * Run `fn(i)` for every i in [0, n) across all workers; returns
     * once every call has finished. The caller executes work too.
     * Not reentrant: `fn` must not call parallelFor on this pool.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Worker-aware variant: `fn(i, worker)` also receives the id of
     * the worker executing index i (0 = the calling thread). Lets
     * callers keep per-worker scratch state or tag trace spans with
     * the thread that really ran the work — worker identity is
     * nondeterministic under stealing, so it must never influence
     * results, only observability.
     */
    void parallelFor(
        std::size_t n,
        const std::function<void(std::size_t, unsigned)> &fn);

    /**
     * Export lifetime pool counters (tasks run, steals, sleep time
     * per worker) into @p reg's host section under `prefix.*`. Call
     * only while no batch is in flight.
     */
    void exportStats(StatRegistry &reg,
                     const std::string &prefix = "pool") const;

    /** Process-wide pool sized to the hardware (lazily created). */
    static ThreadPool &shared();

  private:
    /** One worker's deque; owner pops the front, thieves the back. */
    struct WorkQueue
    {
        std::mutex m;
        std::deque<std::size_t> d;
    };

    /**
     * Lifetime counters, one slab per worker. Each slab is written
     * only by its owning worker (drain/workerLoop index by `self`),
     * so increments need no synchronization; exportStats reads them
     * between batches, when all workers are quiescent.
     */
    struct WorkerCounters
    {
        std::uint64_t tasks = 0;  //!< indices executed
        std::uint64_t steals = 0; //!< of which taken from a victim
        std::uint64_t idleNs = 0; //!< time asleep waiting for work
    };

    bool popOwn(unsigned self, std::size_t &idx);
    bool stealOther(unsigned self, std::size_t &idx);
    void drain(unsigned self);
    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<WorkQueue>> queues;
    std::vector<std::thread> threads;
    std::vector<WorkerCounters> counters;
    std::uint64_t batches = 0; // parallelFor calls; under callMutex

    // Batch state: a monotonically increasing epoch publishes each
    // parallelFor call to the sleeping workers.
    std::mutex batchMutex;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    const std::function<void(std::size_t, unsigned)> *job = nullptr;
    std::uint64_t epoch = 0;
    std::size_t remaining = 0;
    bool shutdown = false;

    std::mutex callMutex; // serializes concurrent parallelFor calls
};

} // namespace pcbp

#endif // PCBP_COMMON_THREAD_POOL_HH
