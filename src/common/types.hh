/**
 * @file
 * Fundamental scalar types shared by every pcbp module.
 */

#ifndef PCBP_COMMON_TYPES_HH
#define PCBP_COMMON_TYPES_HH

#include <cstdint>

namespace pcbp
{

/** Byte address of an instruction (branch PC). */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Count of micro-operations. */
using UopCount = std::uint64_t;

/** Identifier of a static branch / basic block inside a Program. */
using BlockId = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = static_cast<BlockId>(-1);

} // namespace pcbp

#endif // PCBP_COMMON_TYPES_HH
