#include "core/bor.hh"

#include "common/bit_utils.hh"

namespace pcbp
{

HistoryRegister
buildCritiqueBor(const HistoryRegister &bor_before,
                 const FutureBits &future_bits)
{
    HistoryRegister bor = bor_before;
    const unsigned n = future_bits.size();
    if (n == 0)
        return bor;
    // future_bits is oldest-first (bit 0 = first bit shifted in);
    // shiftInMany wants youngest-first, so reverse the window. One
    // two-word funnel shift replaces the n-iteration shiftIn loop on
    // the per-critique hot path.
    const std::uint64_t youngest_first =
        bitReverse64(future_bits.rawMask()) >> (64 - n);
    bor.shiftInMany(youngest_first, n);
    return bor;
}

} // namespace pcbp
