#include "core/bor.hh"

namespace pcbp
{

HistoryRegister
buildCritiqueBor(const HistoryRegister &bor_before,
                 const std::vector<bool> &future_bits)
{
    HistoryRegister bor = bor_before;
    for (bool b : future_bits)
        bor.shiftIn(b);
    return bor;
}

} // namespace pcbp
