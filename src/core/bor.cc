#include "core/bor.hh"

namespace pcbp
{

HistoryRegister
buildCritiqueBor(const HistoryRegister &bor_before,
                 const FutureBits &future_bits)
{
    HistoryRegister bor = bor_before;
    for (unsigned i = 0; i < future_bits.size(); ++i)
        bor.shiftIn(future_bits[i]);
    return bor;
}

} // namespace pcbp
