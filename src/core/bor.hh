/**
 * @file
 * Branch Outcome Register (BOR) support.
 *
 * The BOR is the critic's history input: a shift register that the
 * prophet fills with its predictions as it makes them. When a branch
 * is critiqued with n future bits, the youngest n bits of the BOR
 * are the prophet's predictions for the branch itself and the n-1
 * branches that followed it; the older bits are (speculative)
 * history (§3.1, Fig. 1).
 *
 * Storage-wise the BOR is just a HistoryRegister; this header adds
 * the per-branch checkpoint record and the helper that reconstructs
 * the BOR view a critique sees.
 */

#ifndef PCBP_CORE_BOR_HH
#define PCBP_CORE_BOR_HH

#include "common/future_bits.hh"
#include "common/history_register.hh"
#include "common/types.hh"

namespace pcbp
{

/**
 * Checkpoint taken when the prophet predicts a branch: the BHR and
 * BOR contents from just before the branch's own prediction was
 * shifted in. Restoring these and inserting the resolved outcome is
 * the repair mechanism of §3.3.
 */
struct BranchContext
{
    HistoryRegister bhrBefore;
    HistoryRegister borBefore;
};

/**
 * Reconstruct the BOR as seen by the critique of a branch.
 *
 * @param bor_before BOR checkpoint from the branch's prediction.
 * @param future_bits The prophet's predictions for the branch and
 *        the ones after it, oldest first (so future_bits[0] is the
 *        prediction for the branch being critiqued).
 * @return BOR with future_bits shifted in youngest-last.
 */
HistoryRegister buildCritiqueBor(const HistoryRegister &bor_before,
                                 const FutureBits &future_bits);

} // namespace pcbp

#endif // PCBP_CORE_BOR_HH
