#include "core/confidence.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

JrsConfidence::JrsConfidence(std::size_t num_entries,
                             unsigned counter_bits,
                             unsigned history_bits, bool use_future_bit,
                             unsigned threshold)
    : table(num_entries, SatCounter(counter_bits, 0)),
      ctrBits(counter_bits),
      histBits(history_bits),
      indexBits(log2Floor(num_entries)),
      useFuture(use_future_bit),
      thresh(threshold)
{
    pcbp_assert(isPowerOfTwo(num_entries),
                "confidence table must be 2^n");
    pcbp_assert(threshold > 0 &&
                threshold <= maskBits(counter_bits));
}

std::size_t
JrsConfidence::index(Addr pc, const HistoryRegister &hist,
                     bool pred) const
{
    std::uint64_t key = foldBits(pc >> 2, indexBits) ^
                        hist.foldedLow(histBits, indexBits);
    if (useFuture) {
        // The Grunwald enhancement: the prediction is one future
        // bit of context.
        key = (key << 1) | static_cast<std::uint64_t>(pred);
    }
    return key & maskBits(indexBits);
}

bool
JrsConfidence::highConfidence(Addr pc, const HistoryRegister &hist,
                              bool pred) const
{
    return table[index(pc, hist, pred)].value() >= thresh;
}

void
JrsConfidence::update(Addr pc, const HistoryRegister &hist, bool pred,
                      bool correct)
{
    SatCounter &c = table[index(pc, hist, pred)];
    if (correct)
        c.increment();
    else
        c.set(0); // resetting counter: one miss clears confidence
}

void
JrsConfidence::reset()
{
    for (auto &c : table)
        c.set(0);
}

std::size_t
JrsConfidence::sizeBits() const
{
    return table.size() * ctrBits;
}

} // namespace pcbp
