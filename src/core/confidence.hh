/**
 * @file
 * JRS confidence estimator (Jacobsen, Rotenberg & Smith, MICRO'96)
 * with the Grunwald et al.\ enhancement the paper's §2 describes as
 * the one-future-bit special case of prophet/critic operation:
 * including the current prediction in the estimator's context
 * improves speculation control.
 *
 * A table of resetting miss counters is indexed by a hash of branch
 * address and history (optionally extended with the prediction
 * itself). A counter above the threshold marks the prediction as
 * high-confidence.
 */

#ifndef PCBP_CORE_CONFIDENCE_HH
#define PCBP_CORE_CONFIDENCE_HH

#include <vector>

#include "common/history_register.hh"
#include "common/sat_counter.hh"
#include "common/types.hh"

namespace pcbp
{

class JrsConfidence
{
  public:
    /**
     * @param num_entries Counter-table entries (power of two).
     * @param counter_bits Width of the resetting counters.
     * @param history_bits History bits hashed into the index.
     * @param use_future_bit Include the prediction itself in the
     *        index (the Grunwald enhancement — one future bit).
     * @param threshold Counter value at or above which a prediction
     *        is deemed high-confidence.
     */
    JrsConfidence(std::size_t num_entries, unsigned counter_bits,
                  unsigned history_bits, bool use_future_bit,
                  unsigned threshold);

    /** Is the prediction @p pred for @p pc high-confidence? */
    bool highConfidence(Addr pc, const HistoryRegister &hist,
                        bool pred) const;

    /**
     * Commit-time update: reset the counter on a mispredict,
     * increment it (saturating) on a correct prediction.
     */
    void update(Addr pc, const HistoryRegister &hist, bool pred,
                bool correct);

    void reset();

    std::size_t sizeBits() const;
    bool usesFutureBit() const { return useFuture; }

  private:
    std::size_t index(Addr pc, const HistoryRegister &hist,
                      bool pred) const;

    std::vector<SatCounter> table;
    unsigned ctrBits;
    unsigned histBits;
    unsigned indexBits;
    bool useFuture;
    unsigned thresh;
};

} // namespace pcbp

#endif // PCBP_CORE_CONFIDENCE_HH
