#include "core/critic.hh"

#include "common/logging.hh"

namespace pcbp
{

UnfilteredCritic::UnfilteredCritic(DirectionPredictorPtr predictor)
    : inner(std::move(predictor))
{
    pcbp_assert(inner != nullptr);
}

CritiqueResult
UnfilteredCritic::critique(Addr pc, const HistoryRegister &bor)
{
    return {true, inner->predict(pc, bor)};
}

void
UnfilteredCritic::train(Addr pc, const HistoryRegister &bor, bool taken,
                        bool)
{
    // An unfiltered critic trains on every committed branch,
    // mispredicted or not.
    inner->update(pc, bor, taken);
}

void
UnfilteredCritic::reset()
{
    inner->reset();
}

FilteredPredictorPtr
UnfilteredCritic::clone() const
{
    return std::make_unique<UnfilteredCritic>(inner->clone());
}

std::size_t
UnfilteredCritic::sizeBits() const
{
    return inner->sizeBits();
}

unsigned
UnfilteredCritic::borBits() const
{
    return inner->historyLength();
}

std::string
UnfilteredCritic::name() const
{
    return "unfiltered(" + inner->name() + ")";
}

} // namespace pcbp
