/**
 * @file
 * Adapter that lets any conventional DirectionPredictor play the
 * critic role without a filter: it critiques every branch (Fig. 6a's
 * unfiltered perceptron critic) and is trained on every commit.
 */

#ifndef PCBP_CORE_CRITIC_HH
#define PCBP_CORE_CRITIC_HH

#include "predictors/predictor.hh"

namespace pcbp
{

class UnfilteredCritic final : public FilteredPredictor
{
  public:
    explicit UnfilteredCritic(DirectionPredictorPtr predictor);

    CritiqueResult critique(Addr pc, const HistoryRegister &bor) override;
    void train(Addr pc, const HistoryRegister &bor, bool taken,
               bool mispredicted) override;
    void reset() override;
    FilteredPredictorPtr clone() const override;
    std::size_t sizeBits() const override;
    unsigned borBits() const override;
    std::string name() const override;

  private:
    DirectionPredictorPtr inner;
};

} // namespace pcbp

#endif // PCBP_CORE_CRITIC_HH
