#include "core/critique.hh"

#include "common/logging.hh"

namespace pcbp
{

CritiqueClass
classifyCritique(bool prophet_correct, bool provided, bool agreed)
{
    if (!provided) {
        return prophet_correct ? CritiqueClass::CorrectNone
                               : CritiqueClass::IncorrectNone;
    }
    if (prophet_correct) {
        return agreed ? CritiqueClass::CorrectAgree
                      : CritiqueClass::CorrectDisagree;
    }
    return agreed ? CritiqueClass::IncorrectAgree
                  : CritiqueClass::IncorrectDisagree;
}

std::string
critiqueClassName(CritiqueClass c)
{
    switch (c) {
      case CritiqueClass::CorrectAgree: return "correct_agree";
      case CritiqueClass::CorrectDisagree: return "correct_disagree";
      case CritiqueClass::IncorrectAgree: return "incorrect_agree";
      case CritiqueClass::IncorrectDisagree: return "incorrect_disagree";
      case CritiqueClass::CorrectNone: return "correct_none";
      case CritiqueClass::IncorrectNone: return "incorrect_none";
      default: break;
    }
    pcbp_panic("bad CritiqueClass");
}

std::uint64_t
CritiqueCounts::explicitTotal() const
{
    return get(CritiqueClass::CorrectAgree) +
           get(CritiqueClass::CorrectDisagree) +
           get(CritiqueClass::IncorrectAgree) +
           get(CritiqueClass::IncorrectDisagree);
}

std::uint64_t
CritiqueCounts::noneTotal() const
{
    return get(CritiqueClass::CorrectNone) +
           get(CritiqueClass::IncorrectNone);
}

} // namespace pcbp
