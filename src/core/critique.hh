/**
 * @file
 * Critique classification (§7.3): every final critique is classified
 * by the prophet's prediction (correct/incorrect) crossed with the
 * critic's critique (agree/disagree), plus the two implicit classes
 * from filter misses (correct_none / incorrect_none).
 */

#ifndef PCBP_CORE_CRITIQUE_HH
#define PCBP_CORE_CRITIQUE_HH

#include <array>
#include <cstdint>
#include <string>

namespace pcbp
{

enum class CritiqueClass : std::uint8_t
{
    CorrectAgree,      // prophet right, critic agrees (neutral)
    CorrectDisagree,   // prophet right, critic overrides (the worst case)
    IncorrectAgree,    // prophet wrong, critic misses the chance
    IncorrectDisagree, // prophet wrong, critic fixes it (the goal)
    CorrectNone,       // filter miss, prophet right
    IncorrectNone,     // filter miss, prophet wrong
    NumClasses,
};

/** Number of distinct critique classes. */
constexpr std::size_t numCritiqueClasses =
    static_cast<std::size_t>(CritiqueClass::NumClasses);

/**
 * Classify a committed branch's critique.
 *
 * @param prophet_correct The prophet's prediction matched the
 *        resolved outcome.
 * @param provided The critic provided a critique (filter hit, or
 *        unfiltered critic).
 * @param agreed Critic direction == prophet direction (only
 *        meaningful when provided).
 */
CritiqueClass classifyCritique(bool prophet_correct, bool provided,
                               bool agreed);

/** Stable display name, e.g.\ "correct_agree". */
std::string critiqueClassName(CritiqueClass c);

/** Per-class counters. */
struct CritiqueCounts
{
    std::array<std::uint64_t, numCritiqueClasses> counts{};

    void
    record(CritiqueClass c)
    {
        ++counts[static_cast<std::size_t>(c)];
    }

    std::uint64_t
    get(CritiqueClass c) const
    {
        return counts[static_cast<std::size_t>(c)];
    }

    /** Critiques where the filter hit (explicit agree/disagree). */
    std::uint64_t explicitTotal() const;

    /** Filter misses (implicit agreement). */
    std::uint64_t noneTotal() const;

    std::uint64_t total() const { return explicitTotal() + noneTotal(); }
};

} // namespace pcbp

#endif // PCBP_CORE_CRITIQUE_HH
