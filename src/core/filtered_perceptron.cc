#include "core/filtered_perceptron.hh"

#include <algorithm>

namespace pcbp
{

FilteredPerceptron::FilteredPerceptron(std::size_t num_perceptrons,
                                       unsigned perceptron_bits,
                                       std::size_t filter_sets,
                                       unsigned filter_ways,
                                       unsigned tag_bits,
                                       unsigned filter_bor_bits)
    : perceptron(num_perceptrons, perceptron_bits),
      filter(filter_sets, filter_ways, tag_bits, filter_bor_bits)
{
}

CritiqueResult
FilteredPerceptron::critique(Addr pc, const HistoryRegister &bor)
{
    const auto r = filter.probe(pc, bor);
    if (!r.hit)
        return {false, false};
    return {true, perceptron.predict(pc, bor)};
}

void
FilteredPerceptron::train(Addr pc, const HistoryRegister &bor, bool taken,
                          bool mispredicted)
{
    const auto r = filter.probe(pc, bor);
    if (r.hit) {
        perceptron.update(pc, bor, taken);
        filter.touch(r.entry);
    } else if (mispredicted) {
        filter.allocate(pc, bor);
        // Initialize the prediction structures toward the branch's
        // outcome (§4). The perceptron pool is shared, so
        // initialization is one training step.
        perceptron.update(pc, bor, taken);
    }
}

void
FilteredPerceptron::reset()
{
    perceptron.reset();
    filter.reset();
}

std::size_t
FilteredPerceptron::sizeBits() const
{
    return perceptron.sizeBits() + filter.sizeBits();
}

unsigned
FilteredPerceptron::borBits() const
{
    return std::max(perceptron.historyLength(), filter.borBits());
}

std::string
FilteredPerceptron::name() const
{
    return "f.perceptron-" + std::to_string(sizeBytes() / 1024) + "KB";
}

} // namespace pcbp
