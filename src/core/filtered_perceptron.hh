/**
 * @file
 * Filtered perceptron critic (Table 3): an ordinary perceptron
 * predictor plus an N-way associative table of tags. The perceptron
 * lookup and the tag lookup run in parallel (Fig. 3); the critic's
 * prediction is used only on a tag hit, a miss implies implicit
 * agreement with the prophet.
 */

#ifndef PCBP_CORE_FILTERED_PERCEPTRON_HH
#define PCBP_CORE_FILTERED_PERCEPTRON_HH

#include "core/tag_filter.hh"
#include "predictors/perceptron.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class FilteredPerceptron final : public FilteredPredictor
{
  public:
    /**
     * @param num_perceptrons Perceptron pool size.
     * @param perceptron_bits BOR bits read by the perceptron (the
     *        most recently inserted bits).
     * @param filter_sets Filter sets (power of two).
     * @param filter_ways Filter associativity (3 in Table 3).
     * @param tag_bits Filter tag width.
     * @param filter_bor_bits BOR bits hashed by the filter (18 in
     *        Table 3).
     */
    FilteredPerceptron(std::size_t num_perceptrons,
                       unsigned perceptron_bits, std::size_t filter_sets,
                       unsigned filter_ways, unsigned tag_bits,
                       unsigned filter_bor_bits);

    CritiqueResult critique(Addr pc, const HistoryRegister &bor) override;
    void train(Addr pc, const HistoryRegister &bor, bool taken,
               bool mispredicted) override;
    void reset() override;

    FilteredPredictorPtr clone() const override
    {
        return std::make_unique<FilteredPerceptron>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned borBits() const override;
    std::string name() const override;

  private:
    Perceptron perceptron;
    TagFilter filter;
};

} // namespace pcbp

#endif // PCBP_CORE_FILTERED_PERCEPTRON_HH
