#include "core/presets.hh"

#include <array>

#include "common/logging.hh"
#include "core/critic.hh"
#include "core/filtered_perceptron.hh"
#include "core/tagged_gshare.hh"
#include "predictors/gshare.hh"
#include "predictors/perceptron.hh"

namespace pcbp
{

namespace
{

// Table 3: tagged gshare row — sets x 6-way, BOR size 18.
constexpr std::array<std::size_t, 5> tgshareSets = {
    256, 512, 1024, 2048, 4096,
};
constexpr unsigned tgshareWays = 6;
constexpr unsigned tgshareTagBits = 10;
constexpr unsigned tgshareBorBits = 18;

// Table 3: filtered perceptron rows.
constexpr std::array<std::size_t, 5> fpercCount = {73, 113, 163, 282, 348};
constexpr std::array<unsigned, 5> fpercHistory = {13, 17, 24, 28, 47};
constexpr std::array<std::size_t, 5> fpercFilterSets = {
    128, 256, 512, 1024, 2048,
};
constexpr unsigned fpercFilterWays = 3;
constexpr unsigned fpercTagBits = 10;
constexpr unsigned fpercFilterBorBits = 18;

// Unfiltered perceptron critic reuses the Table 3 perceptron row.
constexpr std::array<std::size_t, 5> upercCount = {113, 163, 282, 348, 565};
constexpr std::array<unsigned, 5> upercHistory = {17, 24, 28, 47, 57};

// Unfiltered gshare critic reuses the Table 3 gshare row.
constexpr std::array<std::size_t, 5> ugshareEntries = {
    8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024,
};
constexpr std::array<unsigned, 5> ugshareHistory = {13, 14, 15, 16, 17};

} // namespace

std::string
criticKindName(CriticKind k)
{
    switch (k) {
      case CriticKind::TaggedGshare: return "t.gshare";
      case CriticKind::FilteredPerceptron: return "f.perceptron";
      case CriticKind::UnfilteredPerceptron: return "u.perceptron";
      case CriticKind::UnfilteredGshare: return "u.gshare";
    }
    pcbp_panic("bad CriticKind");
}

const std::vector<CriticKind> &
allCriticKinds()
{
    static const std::vector<CriticKind> kinds = {
        CriticKind::TaggedGshare,
        CriticKind::FilteredPerceptron,
        CriticKind::UnfilteredPerceptron,
        CriticKind::UnfilteredGshare,
    };
    return kinds;
}

CriticKind
parseCriticKind(const std::string &s)
{
    for (CriticKind k : allCriticKinds()) {
        if (criticKindName(k) == s)
            return k;
    }
    pcbp_fatal("unknown critic kind '", s, "'");
}

FilteredPredictorPtr
makeCritic(CriticKind kind, Budget b, unsigned filter_tag_bits)
{
    const std::size_t i = static_cast<std::size_t>(b);
    switch (kind) {
      case CriticKind::TaggedGshare:
        return std::make_unique<TaggedGshare>(
            tgshareSets[i], tgshareWays,
            filter_tag_bits ? filter_tag_bits : tgshareTagBits,
            tgshareBorBits);
      case CriticKind::FilteredPerceptron:
        return std::make_unique<FilteredPerceptron>(
            fpercCount[i], fpercHistory[i], fpercFilterSets[i],
            fpercFilterWays,
            filter_tag_bits ? filter_tag_bits : fpercTagBits,
            fpercFilterBorBits);
      case CriticKind::UnfilteredPerceptron:
        if (filter_tag_bits)
            pcbp_fatal("u.perceptron has no filter tags to override");
        return std::make_unique<UnfilteredCritic>(
            std::make_unique<Perceptron>(upercCount[i], upercHistory[i]));
      case CriticKind::UnfilteredGshare:
        if (filter_tag_bits)
            pcbp_fatal("u.gshare has no filter tags to override");
        return std::make_unique<UnfilteredCritic>(
            std::make_unique<Gshare>(ugshareEntries[i],
                                     ugshareHistory[i]));
    }
    pcbp_panic("bad CriticKind");
}

std::unique_ptr<ProphetCriticHybrid>
makeHybrid(ProphetKind prophet_kind, Budget prophet_budget,
           CriticKind critic_kind, Budget critic_budget,
           unsigned future_bits)
{
    HybridConfig cfg;
    cfg.numFutureBits = future_bits;
    return std::make_unique<ProphetCriticHybrid>(
        makeProphet(prophet_kind, prophet_budget),
        makeCritic(critic_kind, critic_budget), cfg);
}

std::unique_ptr<ProphetCriticHybrid>
makeProphetOnly(ProphetKind kind, Budget budget)
{
    HybridConfig cfg;
    cfg.numFutureBits = 0;
    return std::make_unique<ProphetCriticHybrid>(makeProphet(kind, budget),
                                                 nullptr, cfg);
}

} // namespace pcbp
