/**
 * @file
 * Critic configurations from Table 3 and convenience builders for
 * whole prophet/critic hybrids.
 */

#ifndef PCBP_CORE_PRESETS_HH
#define PCBP_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "core/prophet_critic.hh"
#include "predictors/factory.hh"

namespace pcbp
{

/** Critic kinds evaluated in the paper. */
enum class CriticKind
{
    TaggedGshare,         // "t.gshare" in Figure 7
    FilteredPerceptron,   // "f.perceptron" in Figure 7
    UnfilteredPerceptron, // Figure 6(a)
    UnfilteredGshare,     // extra ablation point
};

/** Every registered critic kind, in declaration order. */
const std::vector<CriticKind> &allCriticKinds();

/** Kind as a string ("t.gshare", "f.perceptron", ...). */
std::string criticKindName(CriticKind k);

/** Parse a critic kind name (fatal on unknown). */
CriticKind parseCriticKind(const std::string &s);

/**
 * Build a critic configured per Table 3 for the given budget. The
 * returned critic is fully owned and freshly initialized (no shared
 * tables between instances). @p filter_tag_bits overrides the filter
 * tag width for the §4 ablation; 0 keeps the Table-3 default, and
 * the override is fatal for unfiltered critics (they have no tags).
 */
FilteredPredictorPtr makeCritic(CriticKind kind, Budget b,
                                unsigned filter_tag_bits = 0);

/**
 * Build a full prophet/critic hybrid:
 * prophet of @p prophet_kind at @p prophet_budget, critic of
 * @p critic_kind at @p critic_budget, using @p future_bits.
 */
std::unique_ptr<ProphetCriticHybrid>
makeHybrid(ProphetKind prophet_kind, Budget prophet_budget,
           CriticKind critic_kind, Budget critic_budget,
           unsigned future_bits);

/** Build a prophet-only "hybrid" (no critic), for baselines. */
std::unique_ptr<ProphetCriticHybrid>
makeProphetOnly(ProphetKind kind, Budget budget);

} // namespace pcbp

#endif // PCBP_CORE_PRESETS_HH
