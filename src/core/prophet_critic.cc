#include "core/prophet_critic.hh"

#include "common/logging.hh"

namespace pcbp
{

ProphetCriticHybrid::ProphetCriticHybrid(DirectionPredictorPtr prophet_,
                                         FilteredPredictorPtr critic_,
                                         HybridConfig config)
    : prophet(std::move(prophet_)),
      critic(std::move(critic_)),
      cfg(config)
{
    pcbp_assert(prophet != nullptr, "a hybrid needs a prophet");
    pcbp_assert(cfg.numFutureBits <= FutureBits::capacity,
                "future-bit count exceeds the FutureBits capacity");
}

bool
ProphetCriticHybrid::predictBranch(Addr pc, BranchContext &ctx)
{
    ctx.bhrBefore = liveBhr;
    ctx.borBefore = liveBor;
    const bool pred = prophet->predict(pc, liveBhr);
    // Speculative history update (§3.2): the prophet's prediction
    // enters its own BHR and the critic's BOR immediately.
    if (cfg.speculativeHistoryUpdate) {
        liveBhr.shiftIn(pred);
        liveBor.shiftIn(pred);
    }
    return pred;
}

CritiqueDecision
ProphetCriticHybrid::critiqueBranch(Addr pc, const BranchContext &ctx,
                                    bool prophet_pred,
                                    const FutureBits &future_bits)
{
    pcbp_assert(future_bits.size() <= std::max(cfg.numFutureBits, 1u),
                "more future bits than configured");
    pcbp_assert(cfg.numFutureBits == 0 || !future_bits.empty(),
                "the first future bit is the branch's own prediction");

    CritiqueDecision d;

    if (!critic) {
        d.provided = false;
        d.finalPrediction = prophet_pred;
        d.borAtCritique = ctx.borBefore;
        return d;
    }

    // With numFutureBits == 0 the critic operates like a
    // conventional overriding component: same history as the
    // prophet, no future information.
    if (cfg.numFutureBits == 0) {
        d.borAtCritique = ctx.borBefore;
    } else {
        d.borAtCritique = buildCritiqueBor(ctx.borBefore, future_bits);
    }

    const CritiqueResult r = critic->critique(pc, d.borAtCritique);
    d.provided = r.provided;
    d.finalPrediction = r.provided ? r.taken : prophet_pred;
    d.overrode = r.provided && (d.finalPrediction != prophet_pred);
    return d;
}

void
ProphetCriticHybrid::overrideRedirect(const BranchContext &ctx,
                                      bool final_prediction)
{
    if (!cfg.speculativeHistoryUpdate)
        return; // registers were never advanced speculatively
    liveBhr = ctx.bhrBefore;
    liveBor = ctx.borBefore;
    liveBhr.shiftIn(final_prediction);
    liveBor.shiftIn(final_prediction);
}

void
ProphetCriticHybrid::recoverMispredict(const BranchContext &ctx,
                                       bool outcome)
{
    if (!cfg.speculativeHistoryUpdate)
        return;
    if (!cfg.repairHistory) {
        // Ablation: leave the polluted speculative bits in place.
        return;
    }
    // §3.3: restore from the checkpoint and insert the mispredicted
    // branch's correct outcome.
    liveBhr = ctx.bhrBefore;
    liveBor = ctx.borBefore;
    liveBhr.shiftIn(outcome);
    liveBor.shiftIn(outcome);
}

void
ProphetCriticHybrid::commitBranch(
    Addr pc, const BranchContext &ctx,
    const std::optional<CritiqueDecision> &decision, bool outcome)
{
    // Pattern tables update non-speculatively at commit (§3.2), with
    // the same history context used at prediction time.
    prophet->update(pc, ctx.bhrBefore, outcome);

    if (!cfg.speculativeHistoryUpdate) {
        // Retired-history ablation: outcomes enter the registers
        // only now.
        liveBhr.shiftIn(outcome);
        liveBor.shiftIn(outcome);
    }

    if (critic && decision) {
        const bool mispredicted = decision->finalPrediction != outcome;
        // §3.3: train with the BOR value used to generate the
        // critique — it contains the wrong-path future bits when the
        // prophet went down the wrong path.
        critic->train(pc, decision->borAtCritique, outcome, mispredicted);
    }
}

void
ProphetCriticHybrid::reset()
{
    prophet->reset();
    if (critic)
        critic->reset();
    liveBhr.reset();
    liveBor.reset();
}

std::unique_ptr<ProphetCriticHybrid>
ProphetCriticHybrid::clone() const
{
    auto out = std::make_unique<ProphetCriticHybrid>(
        prophet->clone(), critic ? critic->clone() : nullptr, cfg);
    out->liveBhr = liveBhr;
    out->liveBor = liveBor;
    return out;
}

std::size_t
ProphetCriticHybrid::sizeBits() const
{
    return prophet->sizeBits() + (critic ? critic->sizeBits() : 0);
}

std::string
ProphetCriticHybrid::name() const
{
    if (!critic)
        return prophet->name();
    return prophet->name() + "+" + critic->name() + "@" +
           std::to_string(cfg.numFutureBits) + "fb";
}

void
ProphetCriticHybrid::exportStats(StatRegistry &reg,
                                 const std::string &prefix) const
{
    prophet->exportStats(reg, prefix + ".prophet");
    if (critic)
        critic->exportStats(reg, prefix + ".critic");
}

} // namespace pcbp
