/**
 * @file
 * The prophet/critic hybrid conditional branch predictor — the
 * paper's primary contribution.
 *
 * The hybrid owns the live (speculative) BHR and BOR and exposes the
 * hardware events of §3 and §5:
 *
 * - predictBranch(): the prophet predicts a branch; its prediction
 *   is speculatively shifted into the BHR and into the critic's BOR
 *   (§3.2), and the caller receives a checkpoint (§3.3).
 * - critiqueBranch(): once the caller has gathered the required
 *   future bits (the prophet's predictions for the branch and those
 *   after it), the critic produces its critique from the
 *   reconstructed BOR view.
 * - overrideRedirect(): on a disagree critique, the speculative
 *   registers are repaired to the checkpoint and the critic's final
 *   prediction is inserted; the caller redirects the prophet down
 *   the other path.
 * - recoverMispredict(): on a resolved mispredict, same repair but
 *   with the architectural outcome.
 * - commitBranch(): non-speculative pattern-table update for the
 *   prophet and critic training with the critique-time BOR value —
 *   including its wrong-path future bits (§3.3).
 */

#ifndef PCBP_CORE_PROPHET_CRITIC_HH
#define PCBP_CORE_PROPHET_CRITIC_HH

#include <optional>
#include <string>

#include "common/future_bits.hh"
#include "core/bor.hh"
#include "core/critique.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

/** Configuration of the hybrid's critique stage. */
struct HybridConfig
{
    /**
     * Future bits per critique, counting the branch's own prophet
     * prediction as the first bit (Fig. 4). Zero reduces the hybrid
     * to a conventional overriding predictor: the critic sees only
     * history.
     */
    unsigned numFutureBits = 8;

    /**
     * §3.2: update the BHR/BOR speculatively at prediction time
     * (the paper's design, and what prior work shows is needed).
     * When false — an ablation — the registers advance only at
     * commit, so predictions see stale history.
     */
    bool speculativeHistoryUpdate = true;

    /**
     * §3.3: repair the BHR/BOR from the checkpoint on a mispredict.
     * When false — an ablation — recovery only redirects fetch and
     * the polluted history bits stay.
     */
    bool repairHistory = true;
};

/** What the critic said about one prophet prediction. */
struct CritiqueDecision
{
    /** The critic provided an explicit critique (filter hit). */
    bool provided = false;
    /** Final prediction for the branch. */
    bool finalPrediction = false;
    /** provided && final != prophet's prediction. */
    bool overrode = false;
    /** The BOR value the critique read; needed for commit training. */
    HistoryRegister borAtCritique;
};

class ProphetCriticHybrid
{
  public:
    /**
     * @param prophet Conventional predictor playing the prophet.
     * @param critic Critic-side predictor (filtered or wrapped
     *        unfiltered); may be null for a prophet-only predictor.
     * @param config Critique-stage configuration.
     */
    ProphetCriticHybrid(DirectionPredictorPtr prophet,
                        FilteredPredictorPtr critic, HybridConfig config);

    /**
     * The prophet predicts the branch at @p pc. Checkpoints the
     * speculative registers into @p ctx, then shifts the prediction
     * into both BHR and BOR.
     *
     * @return The prophet's prediction.
     */
    bool predictBranch(Addr pc, BranchContext &ctx);

    /**
     * Produce the critique for a branch previously predicted with
     * context @p ctx.
     *
     * @param pc Branch address.
     * @param ctx Checkpoint returned by predictBranch.
     * @param prophet_pred The prophet's prediction for this branch
     *        (the fallback final prediction on a filter miss).
     * @param future_bits The future bits gathered for the branch,
     *        oldest first — normally the prophet's predictions for
     *        this branch and the ones after it (so future_bits[0] ==
     *        prophet_pred), but ablations may feed other bit
     *        streams. The caller supplies however many it has
     *        gathered (§5 allows critiquing with fewer bits when the
     *        cache is waiting); empty when numFutureBits == 0.
     * @return The critique decision; when no critic is configured,
     *         the final prediction is the prophet's.
     */
    CritiqueDecision critiqueBranch(Addr pc, const BranchContext &ctx,
                                    bool prophet_pred,
                                    const FutureBits &future_bits);

    /**
     * Critic override (§5): repair BHR/BOR to the checkpoint and
     * insert the critic's final prediction. The caller must squash
     * every younger prediction.
     */
    void overrideRedirect(const BranchContext &ctx, bool final_prediction);

    /**
     * Mispredict recovery (§3.3): repair BHR/BOR to the checkpoint
     * and insert the resolved outcome.
     */
    void recoverMispredict(const BranchContext &ctx, bool outcome);

    /**
     * Commit-time, non-speculative update (§3.2, §3.3).
     *
     * @param pc Branch address.
     * @param ctx The branch's checkpoint (prophet updates with its
     *        prediction-time history).
     * @param decision The critique decision, if the branch was
     *        critiqued before it resolved.
     * @param outcome Architectural direction of the branch.
     */
    void commitBranch(Addr pc, const BranchContext &ctx,
                      const std::optional<CritiqueDecision> &decision,
                      bool outcome);

    /** Reset all predictor and register state. */
    void reset();

    /**
     * Deep copy: prophet and critic cloned (trained state included),
     * live BHR/BOR values copied. The clone's future event sequence
     * behaves exactly as this hybrid's would — the snapshot seam of
     * fork-based sweep execution (DESIGN.md §11).
     */
    std::unique_ptr<ProphetCriticHybrid> clone() const;

    /** Combined storage of prophet + critic. */
    std::size_t sizeBits() const;
    std::size_t sizeBytes() const { return (sizeBits() + 7) / 8; }

    std::string name() const;

    const DirectionPredictor &prophetRef() const { return *prophet; }
    bool hasCritic() const { return critic != nullptr; }
    unsigned numFutureBits() const { return cfg.numFutureBits; }

    /**
     * Export component stats into @p reg's sim section: the
     * prophet's under `prefix.prophet.*` and, when a critic is
     * configured, the critic's under `prefix.critic.*`.
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    /** Live speculative registers (exposed for tests/examples). */
    const HistoryRegister &bhr() const { return liveBhr; }
    const HistoryRegister &bor() const { return liveBor; }

  private:
    DirectionPredictorPtr prophet;
    FilteredPredictorPtr critic;
    HybridConfig cfg;
    HistoryRegister liveBhr;
    HistoryRegister liveBor;
};

} // namespace pcbp

#endif // PCBP_CORE_PROPHET_CRITIC_HH
