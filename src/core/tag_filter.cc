#include "core/tag_filter.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

TagFilter::TagFilter(std::size_t num_sets, unsigned num_ways,
                     unsigned tag_bits, unsigned bor_bits)
    : table(num_sets * num_ways),
      numSets(num_sets),
      numWays(num_ways),
      numTagBits(tag_bits),
      numBorBits(bor_bits),
      indexBits(log2Floor(num_sets))
{
    pcbp_assert(isPowerOfTwo(num_sets), "filter sets must be 2^n");
    pcbp_assert(num_ways >= 1 && num_ways <= 16);
    pcbp_assert(tag_bits >= 4 && tag_bits <= 16);
    pcbp_assert(bor_bits <= 64);
}

std::size_t
TagFilter::indexOf(Addr pc, const HistoryRegister &bor) const
{
    // First hash: XOR of folded address and folded BOR value.
    const std::uint64_t b = bor.low(numBorBits);
    return (foldBits(pc >> 2, indexBits) ^ foldBits(b, indexBits)) &
           maskBits(indexBits);
}

std::uint16_t
TagFilter::tagOf(Addr pc, const HistoryRegister &bor) const
{
    // Second, decorrelated hash: mix the combination so that two
    // (pc, BOR) pairs landing in the same set rarely share a tag.
    const std::uint64_t b = bor.low(numBorBits);
    const std::uint64_t h = mix64((pc >> 2) * 0x9e3779b97f4a7c15ULL ^
                                  (b << 1));
    return static_cast<std::uint16_t>(foldBits(h, numTagBits));
}

TagFilter::Result
TagFilter::probe(Addr pc, const HistoryRegister &bor) const
{
    const std::size_t set = indexOf(pc, bor);
    const std::uint16_t tag = tagOf(pc, bor);
    for (unsigned w = 0; w < numWays; ++w) {
        const std::size_t e = set * numWays + w;
        if (table[e].valid && table[e].tag == tag)
            return {true, e};
    }
    return {false, 0};
}

void
TagFilter::touch(std::size_t entry)
{
    pcbp_assert(entry < table.size());
    table[entry].lastUse = ++tick;
}

std::size_t
TagFilter::allocate(Addr pc, const HistoryRegister &bor)
{
    const std::size_t set = indexOf(pc, bor);
    const std::uint16_t tag = tagOf(pc, bor);

    std::size_t victim = set * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        const std::size_t e = set * numWays + w;
        if (!table[e].valid) {
            victim = e;
            break;
        }
        if (table[e].lastUse < table[victim].lastUse)
            victim = e;
    }
    table[victim].valid = true;
    table[victim].tag = tag;
    table[victim].lastUse = ++tick;
    return victim;
}

std::size_t
TagFilter::sizeBits() const
{
    unsigned lru_bits = 0;
    while ((1u << lru_bits) < numWays)
        ++lru_bits;
    return table.size() * (1 + numTagBits + lru_bits);
}

void
TagFilter::reset()
{
    for (auto &e : table)
        e = Entry{};
    tick = 0;
}

} // namespace pcbp
