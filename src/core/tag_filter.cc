#include "core/tag_filter.hh"

#include <algorithm>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

TagFilter::TagFilter(std::size_t num_sets, unsigned num_ways,
                     unsigned tag_bits, unsigned bor_bits)
    : tags(num_sets * num_ways, 0),
      valids(num_sets * num_ways, 0),
      lastUse(num_sets * num_ways, 0),
      numSets(num_sets),
      numWays(num_ways),
      numTagBits(tag_bits),
      numBorBits(bor_bits),
      indexBits(log2Floor(num_sets))
{
    pcbp_assert(isPowerOfTwo(num_sets), "filter sets must be 2^n");
    pcbp_assert(num_ways >= 1 && num_ways <= 16);
    pcbp_assert(tag_bits >= 4 && tag_bits <= 16);
    pcbp_assert(bor_bits <= 64);
}

TagFilter::Hashes
TagFilter::hashesOf(Addr pc, const HistoryRegister &bor) const
{
    const std::uint64_t b = bor.low(numBorBits);
    // First hash: XOR of folded address and folded BOR value.
    const std::size_t set =
        (foldBits(pc >> 2, indexBits) ^ foldBits(b, indexBits)) &
        maskBits(indexBits);
    // Second, decorrelated hash: mix the combination so that two
    // (pc, BOR) pairs landing in the same set rarely share a tag.
    // mix64 output populates all 64 bits, so the fixed-trip fold
    // (identical result) beats the test-against-zero loop here.
    const std::uint64_t h = mix64((pc >> 2) * 0x9e3779b97f4a7c15ULL ^
                                  (b << 1));
    return {set,
            static_cast<std::uint16_t>(foldBitsFixed(h, numTagBits))};
}

std::size_t
TagFilter::indexOf(Addr pc, const HistoryRegister &bor) const
{
    return hashesOf(pc, bor).set;
}

std::uint16_t
TagFilter::tagOf(Addr pc, const HistoryRegister &bor) const
{
    return hashesOf(pc, bor).tag;
}

TagFilter::Result
TagFilter::probe(Addr pc, const HistoryRegister &bor) const
{
    const Hashes h = hashesOf(pc, bor);
    const std::size_t base = h.set * numWays;
    const std::uint16_t *t = &tags[base];
    const std::uint8_t *v = &valids[base];
    for (unsigned w = 0; w < numWays; ++w) {
        if (v[w] && t[w] == h.tag)
            return {true, base + w};
    }
    return {false, 0};
}

void
TagFilter::touch(std::size_t entry)
{
    pcbp_dassert(entry < lastUse.size());
    lastUse[entry] = ++tick;
}

std::size_t
TagFilter::allocate(Addr pc, const HistoryRegister &bor)
{
    const Hashes h = hashesOf(pc, bor);
    const std::size_t base = h.set * numWays;

    std::size_t victim = base;
    for (unsigned w = 0; w < numWays; ++w) {
        const std::size_t e = base + w;
        if (!valids[e]) {
            victim = e;
            break;
        }
        if (lastUse[e] < lastUse[victim])
            victim = e;
    }
    valids[victim] = 1;
    tags[victim] = h.tag;
    lastUse[victim] = ++tick;
    return victim;
}

std::size_t
TagFilter::sizeBits() const
{
    unsigned lru_bits = 0;
    while ((1u << lru_bits) < numWays)
        ++lru_bits;
    return tags.size() * (1 + numTagBits + lru_bits);
}

void
TagFilter::reset()
{
    std::fill(tags.begin(), tags.end(), 0);
    std::fill(valids.begin(), valids.end(), 0);
    std::fill(lastUse.begin(), lastUse.end(), 0);
    tick = 0;
}

} // namespace pcbp
