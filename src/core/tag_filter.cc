#include "core/tag_filter.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

TagFilter::TagFilter(std::size_t num_sets, unsigned num_ways,
                     unsigned tag_bits, unsigned bor_bits)
    : table(num_sets * num_ways),
      numSets(num_sets),
      numWays(num_ways),
      numTagBits(tag_bits),
      numBorBits(bor_bits),
      indexBits(log2Floor(num_sets))
{
    pcbp_assert(isPowerOfTwo(num_sets), "filter sets must be 2^n");
    pcbp_assert(num_ways >= 1 && num_ways <= 16);
    pcbp_assert(tag_bits >= 4 && tag_bits <= 16);
    pcbp_assert(bor_bits <= 64);
}

TagFilter::Hashes
TagFilter::hashesOf(Addr pc, const HistoryRegister &bor) const
{
    const std::uint64_t b = bor.low(numBorBits);
    // First hash: XOR of folded address and folded BOR value.
    const std::size_t set =
        (foldBits(pc >> 2, indexBits) ^ foldBits(b, indexBits)) &
        maskBits(indexBits);
    // Second, decorrelated hash: mix the combination so that two
    // (pc, BOR) pairs landing in the same set rarely share a tag.
    const std::uint64_t h = mix64((pc >> 2) * 0x9e3779b97f4a7c15ULL ^
                                  (b << 1));
    return {set, static_cast<std::uint16_t>(foldBits(h, numTagBits))};
}

std::size_t
TagFilter::indexOf(Addr pc, const HistoryRegister &bor) const
{
    return hashesOf(pc, bor).set;
}

std::uint16_t
TagFilter::tagOf(Addr pc, const HistoryRegister &bor) const
{
    return hashesOf(pc, bor).tag;
}

TagFilter::Result
TagFilter::probe(Addr pc, const HistoryRegister &bor) const
{
    const Hashes h = hashesOf(pc, bor);
    const Entry *set = &table[h.set * numWays];
    for (unsigned w = 0; w < numWays; ++w) {
        if (set[w].valid && set[w].tag == h.tag)
            return {true, h.set * numWays + w};
    }
    return {false, 0};
}

void
TagFilter::touch(std::size_t entry)
{
    pcbp_dassert(entry < table.size());
    table[entry].lastUse = ++tick;
}

std::size_t
TagFilter::allocate(Addr pc, const HistoryRegister &bor)
{
    const Hashes h = hashesOf(pc, bor);
    const std::size_t set = h.set;
    const std::uint16_t tag = h.tag;

    std::size_t victim = set * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        const std::size_t e = set * numWays + w;
        if (!table[e].valid) {
            victim = e;
            break;
        }
        if (table[e].lastUse < table[victim].lastUse)
            victim = e;
    }
    table[victim].valid = true;
    table[victim].tag = tag;
    table[victim].lastUse = ++tick;
    return victim;
}

std::size_t
TagFilter::sizeBits() const
{
    unsigned lru_bits = 0;
    while ((1u << lru_bits) < numWays)
        ++lru_bits;
    return table.size() * (1 + numTagBits + lru_bits);
}

void
TagFilter::reset()
{
    for (auto &e : table)
        e = Entry{};
    tick = 0;
}

} // namespace pcbp
