/**
 * @file
 * The critic filter of §4: a set-associative table of tags, indexed
 * and tagged by two different XOR hashes of the branch address and
 * the BOR value, with LRU replacement. A miss means the critic
 * implicitly agrees with the prophet; entries are allocated when a
 * branch misses the filter and was mispredicted.
 */

#ifndef PCBP_CORE_TAG_FILTER_HH
#define PCBP_CORE_TAG_FILTER_HH

#include <cstdint>
#include <vector>

#include "common/history_register.hh"
#include "common/types.hh"

namespace pcbp
{

class TagFilter
{
  public:
    /**
     * @param num_sets Number of sets (power of two).
     * @param num_ways Associativity.
     * @param tag_bits Tag width (the paper finds 8-10 sufficient).
     * @param bor_bits BOR bits hashed into index and tag.
     */
    TagFilter(std::size_t num_sets, unsigned num_ways, unsigned tag_bits,
              unsigned bor_bits);

    /** Result of probing the filter. */
    struct Result
    {
        bool hit = false;
        /** Flat entry id (set * ways + way); valid only on hit. */
        std::size_t entry = 0;
    };

    /** Probe without changing any state. */
    Result probe(Addr pc, const HistoryRegister &bor) const;

    /** Mark an entry most-recently used (training-time hit). */
    void touch(std::size_t entry);

    /**
     * Allocate an entry for (pc, bor), evicting the LRU way of the
     * set. Returns the flat entry id.
     */
    std::size_t allocate(Addr pc, const HistoryRegister &bor);

    /** Total entries (sets * ways). */
    std::size_t entries() const { return tags.size(); }

    unsigned ways() const { return numWays; }
    unsigned tagBits() const { return numTagBits; }
    unsigned borBits() const { return numBorBits; }

    /**
     * Storage cost: valid + tag per entry, plus ceil(log2(ways))
     * LRU-rank bits per entry.
     */
    std::size_t sizeBits() const;

    void reset();

  private:
    /**
     * Both hashes of one (pc, BOR) access, computed in a single pass
     * so the BOR slice is extracted once: probe and train each need
     * index and tag together, and these run once per critique and
     * once per commit on the hybrid hot path.
     */
    struct Hashes
    {
        std::size_t set;
        std::uint16_t tag;
    };
    Hashes hashesOf(Addr pc, const HistoryRegister &bor) const;

    std::size_t indexOf(Addr pc, const HistoryRegister &bor) const;
    std::uint16_t tagOf(Addr pc, const HistoryRegister &bor) const;

    /**
     * Structure-of-arrays entry storage (DESIGN.md §12): the probe
     * loop compares ways against tags/valids only, so a w-way set
     * costs 3w contiguous bytes instead of w 16-byte structs; the
     * lastUse timestamps are touched only by LRU maintenance.
     */
    std::vector<std::uint16_t> tags;
    std::vector<std::uint8_t> valids;
    std::vector<std::uint64_t> lastUse;
    std::size_t numSets;
    unsigned numWays;
    unsigned numTagBits;
    unsigned numBorBits;
    unsigned indexBits;
    std::uint64_t tick = 0;
};

} // namespace pcbp

#endif // PCBP_CORE_TAG_FILTER_HH
