#include "core/tagged_gshare.hh"

namespace pcbp
{

TaggedGshare::TaggedGshare(std::size_t num_sets, unsigned num_ways,
                           unsigned tag_bits, unsigned bor_bits)
    : filter(num_sets, num_ways, tag_bits, bor_bits),
      counters(filter.entries(), 2, 1)
{
}

CritiqueResult
TaggedGshare::critique(Addr pc, const HistoryRegister &bor)
{
    const auto r = filter.probe(pc, bor);
    if (!r.hit)
        return {false, false};
    return {true, counters.taken(r.entry)};
}

void
TaggedGshare::train(Addr pc, const HistoryRegister &bor, bool taken,
                    bool mispredicted)
{
    const auto r = filter.probe(pc, bor);
    if (r.hit) {
        counters.update(r.entry, taken);
        filter.touch(r.entry);
    } else if (mispredicted) {
        // Insert the (branch address, BOR value) context so the next
        // time it recurs the critic's prediction is used, and
        // initialize the counter toward the resolved outcome (§4).
        const std::size_t e = filter.allocate(pc, bor);
        counters.setWeak(e, taken);
    }
}

void
TaggedGshare::reset()
{
    filter.reset();
    counters.fill(1);
}

std::size_t
TaggedGshare::sizeBits() const
{
    return filter.sizeBits() + counters.size() * 2;
}

std::string
TaggedGshare::name() const
{
    return "t.gshare-" + std::to_string(sizeBytes() / 1024) + "KB";
}

} // namespace pcbp
