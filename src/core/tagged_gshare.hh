/**
 * @file
 * Tagged gshare critic (Table 3): a gshare variant organized like an
 * N-way associative cache where each data item is a 2-bit counter
 * guarded by a tag. The tag table is the filter of §4: a miss is an
 * implicit agreement with the prophet; entries are allocated when a
 * mispredicted branch misses.
 */

#ifndef PCBP_CORE_TAGGED_GSHARE_HH
#define PCBP_CORE_TAGGED_GSHARE_HH

#include <vector>

#include "common/sat_counter.hh"
#include "core/tag_filter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class TaggedGshare final : public FilteredPredictor
{
  public:
    /**
     * @param num_sets Sets in the tagged table (power of two).
     * @param num_ways Associativity (6 in Table 3).
     * @param tag_bits Tag width (8-10 per §4).
     * @param bor_bits BOR bits used for hashing (18 in Table 3).
     */
    TaggedGshare(std::size_t num_sets, unsigned num_ways,
                 unsigned tag_bits, unsigned bor_bits);

    CritiqueResult critique(Addr pc, const HistoryRegister &bor) override;
    void train(Addr pc, const HistoryRegister &bor, bool taken,
               bool mispredicted) override;
    void reset() override;

    FilteredPredictorPtr clone() const override
    {
        return std::make_unique<TaggedGshare>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned borBits() const override { return filter.borBits(); }
    std::string name() const override;

  private:
    TagFilter filter;
    SatCounterTable counters;
};

} // namespace pcbp

#endif // PCBP_CORE_TAGGED_GSHARE_HH
