/**
 * @file
 * Hot-path observability probe gating.
 *
 * Probes on per-branch paths (SpecCore fetch/critique, predictor
 * update) follow the pcbp_dassert philosophy (common/logging.hh):
 * the *default* build compiles them in behind a runtime null check —
 * a single predictable untaken branch when observability is off, so
 * `pcbp_bench compare` stays within the ≤1% overhead budget — and a
 * build that defines PCBP_OBS=0 strips them entirely for the cases
 * where even that branch matters (SIMD experiments, kernel-ish
 * loops). Cold-path counters (store replay, pool batches) are
 * unconditional plain members and do not use these macros.
 */

#ifndef PCBP_OBS_PROBES_HH
#define PCBP_OBS_PROBES_HH

/** Probes compiled in by default; -DPCBP_OBS=0 strips them. */
#ifndef PCBP_OBS
#define PCBP_OBS 1
#endif

#if PCBP_OBS
/** Run @p stmt only in probe-enabled builds. */
#define pcbp_obs(stmt) \
    do {               \
        stmt;          \
    } while (0)
/** ++counters->field when a counter block is attached. */
#define pcbp_obs_inc(counters, field) \
    do {                              \
        if (counters)                 \
            ++(counters)->field;      \
    } while (0)
/** counters->field += delta when a counter block is attached. */
#define pcbp_obs_add(counters, field, delta) \
    do {                                     \
        if (counters)                        \
            (counters)->field += (delta);    \
    } while (0)
/** counters->field = max(counters->field, v) when attached. */
#define pcbp_obs_max(counters, field, v)         \
    do {                                         \
        if (counters && (counters)->field < (v)) \
            (counters)->field = (v);             \
    } while (0)
#else
#define pcbp_obs(stmt) ((void)0)
#define pcbp_obs_inc(counters, field) ((void)0)
#define pcbp_obs_add(counters, field, delta) ((void)0)
#define pcbp_obs_max(counters, field, v) ((void)0)
#endif

#endif // PCBP_OBS_PROBES_HH
