#include "obs/progress.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "obs/span_trace.hh"

namespace pcbp
{

namespace
{

/** "3.4M", "12.1k", "845" — compact rate formatting. */
std::string
fmtCount(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
fmtEta(double seconds)
{
    char buf[32];
    if (seconds >= 3600.0)
        std::snprintf(buf, sizeof(buf), "%.0fh%02.0fm",
                      seconds / 3600.0,
                      (seconds - 3600.0 * int(seconds / 3600.0)) / 60.0);
    else if (seconds >= 60.0)
        std::snprintf(buf, sizeof(buf), "%.0fm%02.0fs",
                      seconds / 60.0,
                      seconds - 60.0 * int(seconds / 60.0));
    else
        std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
    return buf;
}

} // namespace

ProgressMeter::ProgressMeter(std::uint64_t total_units,
                             std::string unit_name,
                             std::uint64_t min_interval_ms)
    : total(total_units), unit(std::move(unit_name)),
      intervalNs(min_interval_ms * 1000000ull), startNs(obsNanos())
{
}

void
ProgressMeter::setResumed(std::uint64_t units)
{
    std::lock_guard<std::mutex> lk(m);
    resumed = units;
}

std::string
ProgressMeter::line() const
{
    const std::uint64_t done_units = resumed + completed;
    const double elapsed =
        double(obsNanos() - startNs) / 1e9;
    const double pct =
        total ? 100.0 * double(done_units) / double(total) : 0.0;

    std::string s = "progress: " + std::to_string(done_units) + "/" +
                    std::to_string(total) + " " + unit;
    char pctbuf[16];
    std::snprintf(pctbuf, sizeof(pctbuf), " (%.0f%%)", pct);
    s += pctbuf;
    if (elapsed > 0.0 && branches > 0)
        s += " | " + fmtCount(double(branches) / elapsed) +
             " branches/s";
    if (completed > 0 && done_units < total) {
        const double per_unit = elapsed / double(completed);
        s += " | ETA " +
             fmtEta(per_unit * double(total - done_units));
    }
    return s;
}

void
ProgressMeter::tick(std::uint64_t cell_branches)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::string out;
    {
        std::lock_guard<std::mutex> lk(m);
        ++completed;
        branches += cell_branches;
        const std::uint64_t now = obsNanos();
        // Always emit the first tick and the grid-completing one.
        if (lastEmitNs != 0 && now < lastEmitNs + intervalNs &&
            resumed + completed < total)
            return;
        lastEmitNs = now;
        out = line();
    }
    logRawLine(out);
}

void
ProgressMeter::finish()
{
    if (logLevel() < LogLevel::Info)
        return;
    std::string out;
    {
        std::lock_guard<std::mutex> lk(m);
        if (completed == 0)
            return; // nothing ran (fully resumed or empty grid)
        out = line() + " | done";
    }
    logRawLine(out);
}

std::uint64_t
ProgressMeter::done() const
{
    std::lock_guard<std::mutex> lk(m);
    return resumed + completed;
}

} // namespace pcbp
