/**
 * @file
 * Throttled live-progress heartbeat for long grid runs.
 *
 * `pcbp_sweep run` / `pcbp_repro run` over a big grid used to print
 * nothing (or one line per cell) until they finished. A
 * ProgressMeter turns cell completions into a rate-limited stderr
 * heartbeat — cells done/total, simulated branches per second, ETA —
 * emitted through the mutex-guarded log sink (common/logging.hh), so
 * heartbeat lines never interleave with worker diagnostics.
 *
 * Throttling is wall-clock based (default: at most one line per
 * second, plus a final line); tests pass interval 0 to see every
 * tick. Progress output is presentation only — it must never feed
 * back into results, which stay byte-identical with or without it.
 */

#ifndef PCBP_OBS_PROGRESS_HH
#define PCBP_OBS_PROGRESS_HH

#include <cstdint>
#include <mutex>
#include <string>

namespace pcbp
{

class ProgressMeter
{
  public:
    /**
     * @param total_units Units (cells) expected overall.
     * @param unit_name Unit label for the line ("cells").
     * @param min_interval_ms Minimum ms between heartbeat lines
     *        (0 = every tick; tests).
     */
    ProgressMeter(std::uint64_t total_units, std::string unit_name,
                  std::uint64_t min_interval_ms = 1000);

    /**
     * Account units already complete before this run (resumed store
     * cells); they count toward done/total but not the rate/ETA.
     */
    void setResumed(std::uint64_t units);

    /**
     * One unit finished, carrying @p branches of simulated work.
     * Thread-safe; emits a heartbeat line if the throttle allows.
     */
    void tick(std::uint64_t branches);

    /** Emit the final summary line (rate over the whole run). */
    void finish();

    std::uint64_t done() const;

  private:
    std::string line() const; // caller holds m

    mutable std::mutex m;
    const std::uint64_t total;
    const std::string unit;
    const std::uint64_t intervalNs;
    const std::uint64_t startNs;
    std::uint64_t resumed = 0;
    std::uint64_t completed = 0;
    std::uint64_t branches = 0;
    std::uint64_t lastEmitNs = 0;
};

} // namespace pcbp

#endif // PCBP_OBS_PROGRESS_HH
