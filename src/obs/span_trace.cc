#include "obs/span_trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace pcbp
{

std::uint64_t
obsNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

SpanTracer::SpanTracer() : epochNs(obsNanos()) {}

std::uint64_t
SpanTracer::now() const
{
    return obsNanos() - epochNs;
}

void
SpanTracer::record(const std::string &name, const std::string &cat,
                   std::uint32_t tid, std::uint64_t start_ns,
                   std::uint64_t end_ns)
{
    TraceSpan s;
    s.name = name;
    s.cat = cat;
    s.tid = tid;
    s.startNs = start_ns;
    // At least 1 ns wide: a zero-width span's E would sort before
    // its own B (ends break ties first), un-nesting the stream.
    s.endNs = std::max(start_ns + 1, end_ns);
    std::lock_guard<std::mutex> lk(m);
    spans.push_back(std::move(s));
}

void
SpanTracer::nameThread(std::uint32_t tid, const std::string &name)
{
    std::lock_guard<std::mutex> lk(m);
    for (auto &tn : threadNames) {
        if (tn.first == tid) {
            tn.second = name; // renaming, not duplicate M events
            return;
        }
    }
    threadNames.emplace_back(tid, name);
}

std::size_t
SpanTracer::size() const
{
    std::lock_guard<std::mutex> lk(m);
    return spans.size();
}

namespace
{

struct Event
{
    const TraceSpan *span = nullptr;
    bool begin = false;

    std::uint64_t ts() const
    {
        return begin ? span->startNs : span->endNs;
    }

    std::uint64_t
    duration() const
    {
        return span->endNs - span->startNs;
    }
};

/**
 * Nest-preserving event order: by timestamp; at a tie, ends before
 * begins (sequential spans sharing a boundary close first), longer
 * spans open first (outer B precedes inner B), and later-started
 * spans close first (inner E precedes outer E).
 */
bool
eventBefore(const Event &a, const Event &b)
{
    if (a.ts() != b.ts())
        return a.ts() < b.ts();
    if (a.begin != b.begin)
        return !a.begin; // E before B
    if (a.begin)
        return a.duration() > b.duration();
    return a.span->startNs > b.span->startNs;
}

std::string
fmtMicros(std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

} // namespace

std::string
SpanTracer::toJson() const
{
    std::vector<TraceSpan> local;
    std::vector<std::pair<std::uint32_t, std::string>> names;
    {
        std::lock_guard<std::mutex> lk(m);
        local = spans;
        names = threadNames;
    }

    std::vector<Event> events;
    events.reserve(local.size() * 2);
    for (const TraceSpan &s : local) {
        events.push_back({&s, true});
        events.push_back({&s, false});
    }
    std::stable_sort(events.begin(), events.end(), eventBefore);

    std::ostringstream os;
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &tn : names) {
        os << (first ? "" : ",\n")
           << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
              "\"tid\":"
           << tn.first << ",\"args\":{\"name\":\""
           << jsonEscape(tn.second) << "\"}}";
        first = false;
    }
    for (const Event &e : events) {
        os << (first ? "" : ",\n") << "{\"ph\":\""
           << (e.begin ? 'B' : 'E') << "\",\"name\":\""
           << jsonEscape(e.span->name) << "\",\"cat\":\""
           << jsonEscape(e.span->cat) << "\",\"pid\":1,\"tid\":"
           << e.span->tid << ",\"ts\":" << fmtMicros(e.ts()) << "}";
        first = false;
    }
    os << "\n],\"displayTimeUnit\":\"ms\","
          "\"otherData\":{\"schema\":\"pcbp-trace-1\"}}\n";
    return os.str();
}

void
SpanTracer::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        pcbp_fatal("trace: cannot write '", path, "'");
    out << toJson();
    if (!out.flush())
        pcbp_fatal("trace: short write to '", path, "'");
}

} // namespace pcbp
