/**
 * @file
 * Chrome/Perfetto trace-event span tracer.
 *
 * Spans are coarse wall-clock intervals — a sweep cell on a worker,
 * a figure's grids, a bench warmup or timed repetition — recorded as
 * (name, category, tid, start, end) and emitted as the Trace Event
 * JSON format's B/E pairs, so a whole `pcbp_repro run` can be opened
 * in ui.perfetto.dev (or chrome://tracing) and read like a flame
 * graph per worker.
 *
 * Threading: record() takes a mutex — spans are per-cell/per-phase,
 * orders of magnitude rarer than branches, so contention is nil and
 * nothing touches the simulators' hot paths. Timestamps come from
 * obsNanos() (steady_clock), offset to the tracer's construction so
 * traces start near t=0.
 *
 * Emission sorts events by timestamp; ties are ordered so B/E pairs
 * nest (E before B between sequential spans; outer B before inner B;
 * inner E before outer E), which tests/test_obs.cc checks with a
 * per-tid stack walk.
 */

#ifndef PCBP_OBS_SPAN_TRACE_HH
#define PCBP_OBS_SPAN_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pcbp
{

/** Monotonic nanoseconds (steady_clock) for span timestamps. */
std::uint64_t obsNanos();

/** One recorded interval on one (virtual) thread track. */
struct TraceSpan
{
    std::string name;
    std::string cat;
    std::uint32_t tid = 0;
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
};

class SpanTracer
{
  public:
    SpanTracer();

    /** Nanoseconds since tracer construction (span timestamps). */
    std::uint64_t now() const;

    /**
     * Record a completed span; @p start_ns/@p end_ns are now()
     * values. Thread-safe; end is clamped to > start (spans are at
     * least 1 ns wide so every emitted B/E pair nests).
     */
    void record(const std::string &name, const std::string &cat,
                std::uint32_t tid, std::uint64_t start_ns,
                std::uint64_t end_ns);

    /** Optional human name for a tid's track ("worker 3"). */
    void nameThread(std::uint32_t tid, const std::string &name);

    std::size_t size() const;

    /**
     * The Trace Event JSON document (`pcbp-trace-1`): thread-name
     * metadata events, then every span's B/E pair sorted as the file
     * comment describes, ts/dur in microseconds.
     */
    std::string toJson() const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void writeFile(const std::string &path) const;

  private:
    mutable std::mutex m;
    std::uint64_t epochNs;
    std::vector<TraceSpan> spans;
    std::vector<std::pair<std::uint32_t, std::string>> threadNames;
};

/**
 * RAII span: records [construction, destruction) on @p tracer when
 * it is non-null, so call sites stay one line and tracer-optional.
 */
class ScopedSpan
{
  public:
    ScopedSpan(SpanTracer *tracer, std::string name, std::string cat,
               std::uint32_t tid = 0)
        : tracer(tracer), name(std::move(name)), cat(std::move(cat)),
          tid(tid), startNs(tracer ? tracer->now() : 0)
    {
    }

    ~ScopedSpan()
    {
        if (tracer)
            tracer->record(name, cat, tid, startNs, tracer->now());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanTracer *tracer;
    std::string name;
    std::string cat;
    std::uint32_t tid;
    std::uint64_t startNs;
};

} // namespace pcbp

#endif // PCBP_OBS_SPAN_TRACE_HH
