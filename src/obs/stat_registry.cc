#include "obs/stat_registry.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace pcbp
{

void
StatRegistry::add(const std::string &path, std::uint64_t delta)
{
    Entry &e = sim[path];
    e.kind = StatKind::Sum;
    e.value += delta;
}

void
StatRegistry::set(const std::string &path, std::uint64_t value)
{
    Entry &e = sim[path];
    e.kind = StatKind::Sum;
    e.value = value;
}

void
StatRegistry::setMax(const std::string &path, std::uint64_t value)
{
    Entry &e = sim[path];
    e.kind = StatKind::Max;
    if (e.value < value)
        e.value = value;
}

void
StatRegistry::hist(const std::string &path, const Histogram &h)
{
    HistEntry &e = hists[path];
    if (e.buckets.empty()) {
        e.bucketWidth = h.bucketWidth();
        e.buckets = h.buckets();
        e.samples = h.count();
        return;
    }
    pcbp_assert(e.bucketWidth == h.bucketWidth() &&
                    e.buckets.size() == h.buckets().size(),
                "histogram geometry mismatch for stat ", path);
    for (std::size_t i = 0; i < e.buckets.size(); ++i)
        e.buckets[i] += h.buckets()[i];
    e.samples += h.count();
}

void
StatRegistry::addHost(const std::string &path, std::uint64_t delta)
{
    Entry &e = host[path];
    e.kind = StatKind::Sum;
    e.value += delta;
}

void
StatRegistry::setHost(const std::string &path, std::uint64_t value)
{
    Entry &e = host[path];
    e.kind = StatKind::Sum;
    e.value = value;
}

void
StatRegistry::setHostMax(const std::string &path, std::uint64_t value)
{
    Entry &e = host[path];
    e.kind = StatKind::Max;
    if (e.value < value)
        e.value = value;
}

void
StatRegistry::mergeScalars(std::map<std::string, Entry> &into,
                           const std::map<std::string, Entry> &from)
{
    for (const auto &kv : from) {
        Entry &e = into[kv.first];
        e.kind = kv.second.kind;
        if (kv.second.kind == StatKind::Max)
            e.value = std::max(e.value, kv.second.value);
        else
            e.value += kv.second.value;
    }
}

void
StatRegistry::merge(const StatRegistry &other)
{
    mergeScalars(sim, other.sim);
    mergeScalars(host, other.host);
    for (const auto &kv : other.hists) {
        HistEntry &e = hists[kv.first];
        if (e.buckets.empty()) {
            e = kv.second;
            continue;
        }
        pcbp_assert(e.bucketWidth == kv.second.bucketWidth &&
                        e.buckets.size() == kv.second.buckets.size(),
                    "histogram geometry mismatch for stat ", kv.first);
        for (std::size_t i = 0; i < e.buckets.size(); ++i)
            e.buckets[i] += kv.second.buckets[i];
        e.samples += kv.second.samples;
    }
}

bool
StatRegistry::empty() const
{
    return sim.empty() && host.empty() && hists.empty();
}

namespace
{

template <typename Map>
void
emitScalars(std::ostringstream &os, const char *name, const Map &m)
{
    os << "\"" << name << "\":{";
    bool first = true;
    for (const auto &kv : m) {
        os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
           << "\":" << kv.second.value;
        first = false;
    }
    os << "}";
}

} // namespace

std::string
StatRegistry::simJson() const
{
    std::ostringstream os;
    os << "{";
    emitScalars(os, "sim", sim);
    os << ",\"hist\":{";
    bool first = true;
    for (const auto &kv : hists) {
        os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
           << "\":{\"bucket_width\":" << kv.second.bucketWidth
           << ",\"samples\":" << kv.second.samples << ",\"buckets\":[";
        for (std::size_t i = 0; i < kv.second.buckets.size(); ++i)
            os << (i ? "," : "") << kv.second.buckets[i];
        os << "]}";
        first = false;
    }
    os << "}}";
    return os.str();
}

std::string
StatRegistry::toJson() const
{
    // The sim/hist sections are re-emitted rather than spliced from
    // simJson() so the document stays one flat, readable object.
    std::ostringstream os;
    os << "{\"schema\":\"pcbp-stats-1\",";
    const std::string inner = simJson();
    // simJson() == "{" + sections + "}"; keep the sections.
    os << inner.substr(1, inner.size() - 2) << ",";
    emitScalars(os, "host", host);
    os << "}";
    return os.str();
}

ReportTable
StatRegistry::toTable() const
{
    ReportTable t("stats", "Run statistics",
                  {"section", "stat", "value"});
    for (const auto &kv : sim)
        t.addRow({"sim", kv.first, std::to_string(kv.second.value)});
    for (const auto &kv : hists)
        t.addRow({"sim", kv.first + " (samples)",
                  std::to_string(kv.second.samples)});
    for (const auto &kv : host)
        t.addRow({"host", kv.first, std::to_string(kv.second.value)});
    t.addNote("sim: deterministic for fixed options (any --jobs); "
              "host: this execution only.");
    return t;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::simScalars() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(sim.size());
    for (const auto &kv : sim)
        out.emplace_back(kv.first, kv.second.value);
    return out;
}

std::uint64_t
StatRegistry::simValue(const std::string &path) const
{
    const auto it = sim.find(path);
    return it == sim.end() ? 0 : it->second.value;
}

void
StatRegistry::writeFiles(const std::string &path) const
{
    auto write = [](const std::string &p, const std::string &text) {
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        if (!out)
            pcbp_fatal("stats: cannot write '", p, "'");
        out << text;
        if (!out.flush())
            pcbp_fatal("stats: short write to '", p, "'");
    };
    write(path, toJson() + "\n");
    write(path + ".md", toTable().toMarkdown());
}

} // namespace pcbp
