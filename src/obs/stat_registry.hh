/**
 * @file
 * Hierarchical run statistics registry (gem5-style).
 *
 * Components register named integer scalars and histograms under
 * dotted paths ("core.fetches", "tage.bank3.provider", ...). The
 * registry is split into two sections with different guarantees:
 *
 *  - **sim**: statistics that are pure functions of the simulated
 *    work — predictor counters, engine commits, BTB allocations.
 *    Sums and maxima of per-cell sim stats commute, so a run-wide
 *    dump merged from cells finishing in any order is byte-identical
 *    for any `--jobs` value (pinned by tests/test_obs.cc).
 *  - **host**: statistics about *this* execution — wall clock,
 *    thread-pool tasks/steals/idle, bench timings. Reproducible runs
 *    produce different host sections; nothing downstream may depend
 *    on their values.
 *
 * Collection stays off the hot path: simulators and predictors
 * accumulate plain member counters (see obs/probes.hh) and export
 * them here once, at end of run; per-cell registries are merged into
 * the run-wide one at flush time (merge is sum for Sum-kind entries,
 * max for Max-kind, bucket-wise sum for histograms).
 *
 * Dump formats: toJson() is the deterministic-ordered (std::map)
 * `pcbp-stats-1` schema written by `--stats-out`; toTable() is the
 * human Markdown summary; simScalars() is the flattened view the
 * result store persists as a per-cell `stats` block.
 */

#ifndef PCBP_OBS_STAT_REGISTRY_HH
#define PCBP_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "report/table.hh"

namespace pcbp
{

/** How two registries combine a scalar during merge(). */
enum class StatKind
{
    Sum, //!< counters: values add
    Max  //!< peaks/capacities: larger value wins
};

class StatRegistry
{
  public:
    /** @name Deterministic (sim) section. */
    /// @{
    /** Add @p delta to a Sum-kind sim scalar (created at zero). */
    void add(const std::string &path, std::uint64_t delta);

    /** Set a Sum-kind sim scalar (overwrites). */
    void set(const std::string &path, std::uint64_t value);

    /** Raise a Max-kind sim scalar to at least @p value. */
    void setMax(const std::string &path, std::uint64_t value);

    /** Export a histogram's buckets under a sim path. */
    void hist(const std::string &path, const Histogram &h);
    /// @}

    /** @name Nondeterministic (host) section. */
    /// @{
    void addHost(const std::string &path, std::uint64_t delta);
    void setHost(const std::string &path, std::uint64_t value);
    void setHostMax(const std::string &path, std::uint64_t value);
    /// @}

    /**
     * Fold @p other into this registry: Sum entries add, Max entries
     * take the maximum, histograms add bucket-wise (fatal on
     * mismatched geometry). Commutative and associative, which is
     * what makes run-wide dumps `--jobs`-independent.
     */
    void merge(const StatRegistry &other);

    bool empty() const;

    /**
     * The full `pcbp-stats-1` document:
     * `{"schema":"pcbp-stats-1","sim":{...},"hist":{...},"host":{...}}`
     * with every object in lexicographic key order and every value an
     * integer — deterministic byte-for-byte given equal content.
     */
    std::string toJson() const;

    /** Just the sim+hist sections (the determinism-test view). */
    std::string simJson() const;

    /** Markdown summary table (section, stat, value). */
    ReportTable toTable() const;

    /** Flattened sim scalars in path order (per-cell stats block). */
    std::vector<std::pair<std::string, std::uint64_t>> simScalars() const;

    /** Sim scalar by exact path; 0 when absent (tests/reporting). */
    std::uint64_t simValue(const std::string &path) const;

    /**
     * Write toJson() to @p path and the Markdown summary next to it
     * at @p path + ".md" (fatal on I/O failure).
     */
    void writeFiles(const std::string &path) const;

  private:
    struct Entry
    {
        std::uint64_t value = 0;
        StatKind kind = StatKind::Sum;
    };

    struct HistEntry
    {
        std::uint64_t bucketWidth = 0;
        std::uint64_t samples = 0;
        std::vector<std::uint64_t> buckets;
    };

    static void mergeScalars(std::map<std::string, Entry> &into,
                             const std::map<std::string, Entry> &from);

    std::map<std::string, Entry> sim;
    std::map<std::string, Entry> host;
    std::map<std::string, HistEntry> hists;
};

} // namespace pcbp

#endif // PCBP_OBS_STAT_REGISTRY_HH
