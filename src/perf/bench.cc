#include "perf/bench.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/presets.hh"
#include "predictors/factory.hh"
#include "report/figure.hh"
#include "sim/driver.hh"
#include "sweep/runner.hh"

namespace pcbp
{

MeasureOptions
BenchContext::measureOptions() const
{
    MeasureOptions opt;
    opt.repeats = repeats ? repeats : (quick ? 3u : 5u);
    opt.warmupReps = 1;
    return opt;
}

namespace
{

/** Micro-bench iteration count (quick mode and PCBP_BENCH_SCALE). */
std::uint64_t
microIters(const BenchContext &ctx)
{
    const double base = ctx.quick ? 200000.0 : 2000000.0;
    return std::max<std::uint64_t>(
        static_cast<std::uint64_t>(base * benchScale()), 10000);
}

/**
 * Deterministic (pc, outcome, history) stimulus for the micro
 * benches — the same mix micro_predictors always used: 4096 static
 * branches, 60% taken, history fed with the outcomes.
 */
struct Stimulus
{
    explicit Stimulus(std::uint64_t seed) : rng(seed) {}

    void
    step()
    {
        pc = 0x400000 + (rng.nextBelow(4096) << 4);
        outcome = rng.nextBool(0.6);
        hist.shiftIn(outcome);
    }

    Rng rng;
    Addr pc = 0x400000;
    bool outcome = false;
    HistoryRegister hist;
};

std::uint64_t
prophetBody(ProphetKind kind, const BenchContext &ctx)
{
    auto pred = makeProphet(kind, Budget::B8KB);
    Stimulus s(42);
    const std::uint64_t iters = microIters(ctx);
    for (std::uint64_t i = 0; i < iters; ++i) {
        s.step();
        // The lookup cannot be dead-code-eliminated: predictors
        // are reached through the factory's opaque vtable.
        (void)pred->predict(s.pc, s.hist);
        pred->update(s.pc, s.hist, s.outcome);
    }
    return iters;
}

std::uint64_t
criticBody(CriticKind kind, const BenchContext &ctx)
{
    auto critic = makeCritic(kind, Budget::B8KB);
    Stimulus s(43);
    const std::uint64_t iters = microIters(ctx);
    for (std::uint64_t i = 0; i < iters; ++i) {
        s.step();
        const CritiqueResult r = critic->critique(s.pc, s.hist);
        critic->train(s.pc, s.hist, s.outcome, !r.provided);
    }
    return iters;
}

std::uint64_t
hybridEventBody(const BenchContext &ctx)
{
    auto hybrid = makeHybrid(ProphetKind::Perceptron, Budget::B8KB,
                             CriticKind::TaggedGshare, Budget::B8KB, 8);
    Stimulus s(44);
    FutureBits fb;
    const std::uint64_t iters = microIters(ctx);
    for (std::uint64_t i = 0; i < iters; ++i) {
        s.step();
        BranchContext bctx;
        const bool pred = hybrid->predictBranch(s.pc, bctx);
        fb.clear();
        for (unsigned b = 0; b < 8; ++b)
            fb.push(b == 0 ? pred : s.rng.nextBool(0.5));
        const CritiqueDecision d =
            hybrid->critiqueBranch(s.pc, bctx, pred, fb);
        hybrid->commitBranch(s.pc, bctx, d, s.outcome);
    }
    return iters;
}

const Workload &
benchWorkload(const BenchContext &ctx)
{
    return workloadByName(ctx.workload.empty() ? "mm.mpeg"
                                               : ctx.workload);
}

/**
 * One accuracy-engine repetition: fresh program + predictor + engine,
 * run to the branch budget. Returns total committed branches (warmup
 * included — the engine loop runs them all), capped by the stream
 * for trace workloads.
 */
std::uint64_t
engineBody(const HybridSpec &spec, const BenchContext &ctx)
{
    const Workload &w = benchWorkload(ctx);
    EngineConfig cfg;
    cfg.warmupBranches = static_cast<std::uint64_t>(
        (ctx.quick ? 5000.0 : 50000.0) * benchScale());
    cfg.measureBranches = static_cast<std::uint64_t>(
        (ctx.quick ? 60000.0 : 1500000.0) * benchScale());
    cfg.warmupBranches = std::max<std::uint64_t>(cfg.warmupBranches, 100);
    cfg.measureBranches =
        std::max<std::uint64_t>(cfg.measureBranches, 1000);

    Program program = buildProgram(w);
    auto hybrid = spec.build();
    Engine engine(program, *hybrid, cfg);

    std::uint64_t total = cfg.warmupBranches + cfg.measureBranches;
    if (!w.tracePath.empty()) {
        auto stream = openTraceStream(w.tracePath);
        total = std::min(total, stream->length());
        engine.run(*stream);
    } else {
        engine.run();
    }
    return total;
}

/** One timing-model repetition; returns total committed branches. */
std::uint64_t
timingBody(const HybridSpec &spec, const BenchContext &ctx)
{
    const Workload &w = benchWorkload(ctx);
    TimingConfig cfg = timingConfigFor(w);
    cfg.warmupBranches = static_cast<std::uint64_t>(
        (ctx.quick ? 3000.0 : 20000.0) * benchScale());
    cfg.measureBranches = static_cast<std::uint64_t>(
        (ctx.quick ? 30000.0 : 400000.0) * benchScale());
    cfg.warmupBranches = std::max<std::uint64_t>(cfg.warmupBranches, 100);
    cfg.measureBranches =
        std::max<std::uint64_t>(cfg.measureBranches, 1000);

    Program program = buildProgram(w);
    auto hybrid = spec.build();
    TimingSim sim(program, *hybrid, cfg);

    std::uint64_t total = cfg.warmupBranches + cfg.measureBranches;
    if (!w.tracePath.empty()) {
        auto stream = openTraceStream(w.tracePath);
        total = std::min(total, stream->length());
        sim.run(*stream);
    } else {
        sim.run();
    }
    return total;
}

/** One sweep-grid repetition through the real runner (in-memory). */
std::uint64_t
sweepBody(const BenchContext &ctx)
{
    SweepSpec spec;
    spec.name = "perf-grid";
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.workloads = {benchWorkload(ctx).name};
    spec.branches = ctx.quick ? 10000 : 100000;

    ResultStore store; // in-memory: each repetition recomputes
    SweepRunOptions opt;
    opt.jobs = 1;
    const SweepRunSummary s = runSweep(spec, store, opt);
    return s.executedCells;
}

/**
 * The shared-warmup ladder grid both fork benches run: one
 * configuration, ten warmup budgets, a small fixed measured window —
 * the grid shape fork-based execution optimizes (DESIGN.md §11).
 * Work items are the grid's total branches Σ(wb+mb), identical for
 * both benches, so the fork/replay throughput ratio is exactly the
 * wall-clock ratio.
 */
SweepSpec
forkLadderSpec(const BenchContext &ctx)
{
    SweepSpec spec;
    spec.name = "perf-fork-ladder";
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {CriticKind::TaggedGshare};
    spec.workloads = {benchWorkload(ctx).name};
    spec.branches = 1000;
    const std::uint64_t unit = ctx.quick ? 5000 : 50000;
    for (std::uint64_t i = 1; i <= 10; ++i)
        spec.warmups.push_back(i * unit);
    return spec;
}

std::uint64_t
forkLadderBody(const BenchContext &ctx, bool fork, bool batch = false)
{
    const SweepSpec spec = forkLadderSpec(ctx);
    ResultStore store; // in-memory: each repetition recomputes
    SweepRunOptions opt;
    opt.jobs = 1;
    opt.fork = fork;
    opt.batch = batch;
    runSweep(spec, store, opt);
    std::uint64_t branches = 0;
    for (const SweepCell &cell : spec.cells())
        branches += cell.warmupBranches + cell.measureBranches;
    return branches;
}

/**
 * The lane pool of the engine.lanes_* pair: a representative
 * grid-column mix of prophet-alone and hybrid cells, all on one
 * workload. Both benches run exactly these cells with identical
 * budgets, so their throughput ratio is the pure win of multiplexing
 * the cells through one shared-stream lockstep pass (DESIGN.md §12)
 * over running them back-to-back.
 */
std::vector<HybridSpec>
lanePoolSpecs()
{
    std::vector<HybridSpec> specs;
    specs.push_back(prophetAlone(ProphetKind::Gshare, Budget::B8KB));
    specs.push_back(
        prophetAlone(ProphetKind::Perceptron, Budget::B8KB));
    specs.push_back(prophetAlone(ProphetKind::Bimodal, Budget::B8KB));
    specs.push_back(prophetAlone(ProphetKind::Tage, Budget::B8KB));
    specs.push_back(hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                               CriticKind::TaggedGshare, Budget::B8KB,
                               8));
    specs.push_back(hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                               CriticKind::TaggedGshare, Budget::B8KB,
                               8));
    specs.push_back(hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                               CriticKind::FilteredPerceptron,
                               Budget::B8KB, 8));
    specs.push_back(hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                               CriticKind::UnfilteredGshare,
                               Budget::B8KB, 8));
    return specs;
}

EngineConfig
laneConfig(const BenchContext &ctx)
{
    EngineConfig cfg;
    cfg.warmupBranches = static_cast<std::uint64_t>(
        (ctx.quick ? 2000.0 : 20000.0) * benchScale());
    cfg.measureBranches = static_cast<std::uint64_t>(
        (ctx.quick ? 20000.0 : 300000.0) * benchScale());
    cfg.warmupBranches =
        std::max<std::uint64_t>(cfg.warmupBranches, 100);
    cfg.measureBranches =
        std::max<std::uint64_t>(cfg.measureBranches, 1000);
    return cfg;
}

std::uint64_t
laneSerialBody(const BenchContext &ctx)
{
    const Workload &w = benchWorkload(ctx);
    const EngineConfig cfg = laneConfig(ctx);
    const std::vector<HybridSpec> specs = lanePoolSpecs();
    for (const HybridSpec &spec : specs)
        (void)runAccuracy(w, spec, cfg);
    return specs.size() * (cfg.warmupBranches + cfg.measureBranches);
}

std::uint64_t
laneBatchBody(const BenchContext &ctx)
{
    const Workload &w = benchWorkload(ctx);
    const EngineConfig cfg = laneConfig(ctx);
    const std::vector<HybridSpec> specs = lanePoolSpecs();
    const std::vector<std::vector<EngineConfig>> groups(specs.size(),
                                                        {cfg});
    (void)runAccuracyBatch(w, specs, groups);
    return specs.size() * (cfg.warmupBranches + cfg.measureBranches);
}

/** One quick-scale repro-figure repetition: sweeps + render. */
std::uint64_t
reproBody(const BenchContext &ctx)
{
    const FigureDef &fig = figureById("fig5");
    FigureOptions fo;
    fo.branches = ctx.quick ? 1000 : 4000;

    ResultStore store;
    SweepRunOptions opt;
    opt.jobs = 1;
    std::uint64_t cells = 0;
    for (const SweepSpec &spec : fig.sweeps(fo)) {
        const SweepRunSummary s = runSweep(spec, store, opt);
        cells += s.executedCells;
    }
    for (const ReportTable &t : fig.render(fo, store))
        (void)t.toMarkdown();
    return cells;
}

std::vector<BenchDef>
buildRegistry()
{
    std::vector<BenchDef> defs;

    for (ProphetKind kind : allProphetKinds()) {
        defs.push_back(
            {"pred." + prophetKindName(kind), "predictor",
             "lookup+update of " + prophetKindName(kind) +
                 " (8KB) on the 4096-branch stimulus mix",
             "pred", [kind](const BenchContext &ctx) {
                 return prophetBody(kind, ctx);
             }});
    }
    for (CriticKind kind : allCriticKinds()) {
        defs.push_back(
            {"critic." + criticKindName(kind), "critic",
             "critique+train of " + criticKindName(kind) +
                 " (8KB) on the 4096-branch stimulus mix",
             "critique", [kind](const BenchContext &ctx) {
                 return criticBody(kind, ctx);
             }});
    }

    defs.push_back({"hybrid.event_path", "hybrid",
                    "full predict/critique/commit-train event path of "
                    "the 8KB perceptron + t.gshare hybrid (fb=8)",
                    "event", hybridEventBody});

    defs.push_back({"engine.gshare", "engine",
                    "Engine committed-branch throughput, prophet-alone "
                    "8KB gshare",
                    "branch", [](const BenchContext &ctx) {
                        return engineBody(
                            prophetAlone(ProphetKind::Gshare,
                                         Budget::B8KB),
                            ctx);
                    }});
    defs.push_back({"engine.perceptron", "engine",
                    "Engine committed-branch throughput, prophet-alone "
                    "8KB perceptron",
                    "branch", [](const BenchContext &ctx) {
                        return engineBody(
                            prophetAlone(ProphetKind::Perceptron,
                                         Budget::B8KB),
                            ctx);
                    }});
    defs.push_back(
        {"engine.hybrid_tgshare", "engine",
         "Engine committed-branch throughput, 8KB gshare + 8KB "
         "t.gshare hybrid (fb=8) — the headline hot-path number",
         "branch", [](const BenchContext &ctx) {
             return engineBody(
                 hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                            CriticKind::TaggedGshare, Budget::B8KB, 8),
                 ctx);
         }});
    defs.push_back(
        {"engine.hybrid_perceptron", "engine",
         "Engine committed-branch throughput, 8KB perceptron + 8KB "
         "t.gshare hybrid (fb=8)",
         "branch", [](const BenchContext &ctx) {
             return engineBody(
                 hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                            CriticKind::TaggedGshare, Budget::B8KB, 8),
                 ctx);
         }});

    defs.push_back(
        {"timing.hybrid_tgshare", "timing",
         "TimingSim committed-branch throughput, 8KB gshare + 8KB "
         "t.gshare hybrid (fb=8)",
         "branch", [](const BenchContext &ctx) {
             return timingBody(
                 hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                            CriticKind::TaggedGshare, Budget::B8KB, 8),
                 ctx);
         }});

    defs.push_back({"sweep.grid", "sweep",
                    "wall-clock of a 2-cell sweep grid through the "
                    "work-stealing runner (jobs=1, in-memory store)",
                    "cell", sweepBody});
    defs.push_back({"sweep.replay_grid", "sweep",
                    "10-cell shared-warmup ladder grid with forking "
                    "disabled: every cell replays its full warmup "
                    "(jobs=1, in-memory store)",
                    "branch", [](const BenchContext &ctx) {
                        return forkLadderBody(ctx, false);
                    }});
    defs.push_back({"sweep.fork_grid", "sweep",
                    "the same ladder grid with fork-based execution "
                    "(DESIGN.md §11): one canonical simulation per "
                    "config, cloned at each snapshot; items match "
                    "replay_grid, so the throughput ratio is the "
                    "wall-clock ratio",
                    "branch", [](const BenchContext &ctx) {
                        return forkLadderBody(ctx, true);
                    }});
    defs.push_back({"sweep.batch_grid", "sweep",
                    "the same ladder grid as one lockstep batched "
                    "pass (DESIGN.md §12): shared committed stream, "
                    "fork groups peeling inside it; items match "
                    "replay_grid, so the throughput ratio is the "
                    "wall-clock ratio",
                    "branch", [](const BenchContext &ctx) {
                        return forkLadderBody(ctx, true, true);
                    }});

    defs.push_back(
        {"engine.lanes_serial", "engine",
         "8-cell grid-column mix (prophet-alone + hybrids, one "
         "workload) run back-to-back, each cell walking its own "
         "committed stream",
         "branch", laneSerialBody});
    defs.push_back(
        {"engine.lanes_batch", "engine",
         "the same 8 cells multiplexed through one cache-resident "
         "pass over a shared committed stream (DESIGN.md §12); items "
         "match lanes_serial, so the throughput ratio is the "
         "wall-clock ratio",
         "branch", laneBatchBody});
    defs.push_back({"repro.fig5", "repro",
                    "wall-clock of the fig5 reproduction at quick "
                    "scale: sweeps + render (jobs=1, in-memory store)",
                    "cell", reproBody});

    return defs;
}

} // namespace

const std::vector<BenchDef> &
allBenches()
{
    static const std::vector<BenchDef> defs = buildRegistry();
    return defs;
}

const BenchDef &
benchByName(const std::string &name)
{
    for (const BenchDef &d : allBenches())
        if (d.name == name)
            return d;
    std::string known;
    for (const BenchDef &d : allBenches())
        known += (known.empty() ? "" : ", ") + d.name;
    pcbp_fatal("unknown benchmark '", name, "'; known: ", known);
}

std::vector<const BenchDef *>
benchesMatching(const std::string &filter)
{
    // Comma-separated substrings, any-match ("engine.,timing.").
    std::vector<std::string> needles;
    std::size_t pos = 0;
    while (pos <= filter.size()) {
        const std::size_t comma = filter.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? filter.size() : comma;
        if (end > pos)
            needles.push_back(filter.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }

    std::vector<const BenchDef *> out;
    for (const BenchDef &d : allBenches()) {
        bool match = needles.empty();
        for (const std::string &n : needles)
            match = match || d.name.find(n) != std::string::npos;
        if (match)
            out.push_back(&d);
    }
    return out;
}

BenchResult
runBench(const BenchDef &def, const BenchContext &ctx)
{
    BenchResult r;
    r.name = def.name;
    r.group = def.group;
    r.unit = def.unit;
    MeasureOptions opt = ctx.measureOptions();
    opt.tracer = ctx.tracer;
    opt.spanName = def.name;
    r.m = measureRepeated([&] { return def.body(ctx); }, opt);
    return r;
}

std::vector<BenchResult>
runBenches(const std::vector<const BenchDef *> &defs,
           const BenchContext &ctx)
{
    std::vector<BenchResult> out;
    out.reserve(defs.size());
    for (const BenchDef *d : defs) {
        std::fprintf(stderr, "running %s...\n", d->name.c_str());
        out.push_back(runBench(*d, ctx));
    }
    return out;
}

} // namespace pcbp
