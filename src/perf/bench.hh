/**
 * @file
 * The benchmark registry: every performance-relevant path of the
 * simulator as a named, runnable benchmark.
 *
 * The registry is the perf analogue of the figure registry
 * (report/figure.hh): instead of N bespoke main()-with-chrono bench
 * binaries, each hot path is declared once — a name, a group, what
 * one repetition does, and what a work item is — and every consumer
 * (the `pcbp_bench` CLI, the migrated `bench/micro_*` wrappers, the
 * CI smoke job) runs the same definitions through the same
 * measurement core (perf/measure.hh), emitting the same
 * `BENCH_<name>.json` schema (perf/bench_report.hh). That is what
 * makes throughput numbers comparable across revisions: the
 * benchmark identity is the registry name, not which binary happened
 * to print it.
 *
 * Groups:
 *  - predictor.* / critic.*: lookup+update microbenches over the
 *    whole factory registry (every ProphetKind / CriticKind);
 *  - hybrid.*: the full prophet/critic event path
 *    (predict / critique / commit-train), no simulator around it;
 *  - engine.* / timing.*: end-to-end committed-branch throughput of
 *    the accuracy Engine and the cycle-level TimingSim on a named
 *    workload (overridable, including trace:<path>);
 *  - sweep.* / repro.*: wall-clock of sweep grids (including the
 *    fork_grid/replay_grid shared-warmup ladder pair, which prices
 *    fork-based execution — DESIGN.md §11) and one quick-scale repro
 *    figure through the real orchestration layers.
 *
 * Benchmark bodies rebuild all predictor/simulator state every
 * repetition, so repetitions are independent and the median is
 * meaningful; the simulated work per repetition is deterministic
 * (fixed seeds), so two runs of one benchmark time exactly the same
 * instruction stream.
 */

#ifndef PCBP_PERF_BENCH_HH
#define PCBP_PERF_BENCH_HH

#include <functional>
#include <string>
#include <vector>

#include "perf/measure.hh"

namespace pcbp
{

/** Options shared by every benchmark in one `pcbp_bench run`. */
struct BenchContext
{
    /**
     * Quick mode: a fraction of the work per repetition and fewer
     * repetitions — seconds instead of minutes, for CI smoke and
     * local sanity checks. Quick numbers are only comparable with
     * other quick numbers (the JSON artifact records the mode).
     */
    bool quick = false;

    /**
     * Workload-name override for the engine.* / timing.* benchmarks
     * (any registry name or trace:<path>); empty keeps the default
     * (mm.mpeg, the bench workload micro_engine always used).
     */
    std::string workload;

    /** Timed repetitions; 0 = default (5, or 3 in quick mode). */
    unsigned repeats = 0;

    /**
     * Span tracer: each benchmark records "<name>.warmup" and
     * "<name>.repN" spans (see MeasureOptions::tracer). Not owned;
     * null = off.
     */
    SpanTracer *tracer = nullptr;

    /** Effective repeat/warmup policy for these options. */
    MeasureOptions measureOptions() const;
};

/** One registered benchmark. */
struct BenchDef
{
    /** Registry id, e.g. "engine.hybrid_tgshare". */
    std::string name;

    /** Group prefix, e.g. "engine" (see the file comment). */
    std::string group;

    /** What the benchmark measures (one line, for `list` and docs). */
    std::string description;

    /** Work-item name, e.g. "branch" (throughput = items/s). */
    std::string unit;

    /**
     * One repetition: do the work from scratch and return the items
     * processed (must be identical for every call with equal ctx).
     */
    std::function<std::uint64_t(const BenchContext &)> body;
};

/** One benchmark's result. */
struct BenchResult
{
    std::string name;
    std::string group;
    std::string unit;
    Measurement m;
};

/** Every registered benchmark, in registry order. */
const std::vector<BenchDef> &allBenches();

/** Find by exact name (fatal on unknown, listing the names). */
const BenchDef &benchByName(const std::string &name);

/**
 * Registry entries whose name contains @p filter (all when empty),
 * in registry order.
 */
std::vector<const BenchDef *> benchesMatching(const std::string &filter);

/** Measure one benchmark under @p ctx. */
BenchResult runBench(const BenchDef &def, const BenchContext &ctx);

/**
 * Measure a selection in order, announcing each benchmark on stderr
 * — the shared run loop of the CLI and the micro_* wrappers.
 */
std::vector<BenchResult> runBenches(
    const std::vector<const BenchDef *> &defs, const BenchContext &ctx);

} // namespace pcbp

#endif // PCBP_PERF_BENCH_HH
