#include "perf/bench_report.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/driver.hh"

namespace pcbp
{

namespace
{

constexpr const char *kSchema = "pcbp-bench-1";

/**
 * Minimal field extraction for the fixed pcbp-bench-1 schema (same
 * spirit as the sweep store's reader: not a general JSON parser).
 * Keys are unique within the region searched, so a plain scan for
 * `"key":` is unambiguous.
 */
std::string
rawField(const std::string &obj, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        pcbp_fatal("bench JSON: missing field '", key, "'");
    std::size_t i = pos + needle.size();
    while (i < obj.size() && (obj[i] == ' ' || obj[i] == '\n'))
        ++i;
    std::size_t end = i;
    if (i < obj.size() && obj[i] == '"') {
        // Honor backslash escapes: the writer's jsonEscape emits \"
        // and \\ inside strings.
        end = i + 1;
        while (end < obj.size() && obj[end] != '"') {
            end += obj[end] == '\\' ? 2 : 1;
        }
        if (end >= obj.size())
            pcbp_fatal("bench JSON: unterminated string for '", key, "'");
        return obj.substr(i, end - i + 1);
    }
    while (end < obj.size() &&
           (std::isdigit(static_cast<unsigned char>(obj[end])) ||
            obj[end] == '-' || obj[end] == '+' || obj[end] == '.' ||
            obj[end] == 'e' || obj[end] == 'E' || obj[end] == 'a' ||
            obj[end] == 'l' || obj[end] == 'r' || obj[end] == 't' ||
            obj[end] == 'u' || obj[end] == 'f' || obj[end] == 's')) {
        ++end; // numbers plus the literals true/false
    }
    if (end == i)
        pcbp_fatal("bench JSON: empty value for '", key, "'");
    return obj.substr(i, end - i);
}

std::string
stringField(const std::string &obj, const std::string &key)
{
    const std::string raw = rawField(obj, key);
    if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"')
        pcbp_fatal("bench JSON: expected string for '", key, "'");
    std::string out;
    for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
        if (raw[i] == '\\' && i + 2 < raw.size())
            ++i;
        out += raw[i];
    }
    return out;
}

double
numberField(const std::string &obj, const std::string &key)
{
    return std::atof(rawField(obj, key).c_str());
}

bool
boolField(const std::string &obj, const std::string &key)
{
    const std::string raw = rawField(obj, key);
    if (raw == "true")
        return true;
    if (raw == "false")
        return false;
    pcbp_fatal("bench JSON: expected bool for '", key, "'");
}

} // namespace

BenchRun
BenchRun::fromResults(const std::string &name, const BenchContext &ctx,
                      std::vector<BenchResult> results_)
{
    BenchRun run;
    run.name = name;
    run.quick = ctx.quick;
    run.scale = benchScale();
    run.repeats = ctx.measureOptions().repeats;
    run.workload = ctx.workload;
    run.results = std::move(results_);
    return run;
}

std::string
benchRunToJson(const BenchRun &run)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": \"" << kSchema << "\",\n"
       << "  \"name\": \"" << jsonEscape(run.name) << "\",\n"
       << "  \"quick\": " << (run.quick ? "true" : "false") << ",\n"
       << "  \"scale\": " << fmtDouble(run.scale, 4) << ",\n"
       << "  \"repeats\": " << run.repeats << ",\n"
       << "  \"workload\": \"" << jsonEscape(run.workload) << "\",\n"
       << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        const BenchResult &r = run.results[i];
        os << "    {\"name\": \"" << jsonEscape(r.name) << "\""
           << ", \"group\": \"" << jsonEscape(r.group) << "\""
           << ", \"unit\": \"" << jsonEscape(r.unit) << "\""
           << ", \"items_per_rep\": " << r.m.itemsPerRep
           << ", \"ns_median\": " << fmtDouble(r.m.nsMedian, 0)
           << ", \"ns_min\": " << fmtDouble(r.m.nsMin, 0)
           << ", \"ns_max\": " << fmtDouble(r.m.nsMax, 0)
           << ", \"cycles_median\": " << fmtDouble(r.m.cyclesMedian, 0)
           << ", \"throughput\": " << fmtDouble(r.m.throughput(), 3)
           << "}" << (i + 1 < run.results.size() ? "," : "") << "\n";
    }
    os << "  ]\n"
       << "}\n";
    return os.str();
}

BenchRun
benchRunFromJson(const std::string &text)
{
    const std::size_t list = text.find("\"benchmarks\":");
    if (list == std::string::npos)
        pcbp_fatal("bench JSON: missing 'benchmarks' array");
    const std::string head = text.substr(0, list);

    if (stringField(head, "schema") != kSchema) {
        pcbp_fatal("bench JSON: unsupported schema '",
                   stringField(head, "schema"), "' (want ", kSchema,
                   ")");
    }

    BenchRun run;
    run.name = stringField(head, "name");
    run.quick = boolField(head, "quick");
    run.scale = numberField(head, "scale");
    run.repeats = static_cast<unsigned>(numberField(head, "repeats"));
    run.workload = stringField(head, "workload");

    // One flat object per benchmark: scan brace pairs in the array.
    std::size_t pos = text.find('[', list);
    const std::size_t endList = text.rfind(']');
    if (pos == std::string::npos || endList == std::string::npos)
        pcbp_fatal("bench JSON: malformed 'benchmarks' array");
    while (true) {
        const std::size_t open = text.find('{', pos);
        if (open == std::string::npos || open > endList)
            break;
        const std::size_t close = text.find('}', open);
        if (close == std::string::npos)
            pcbp_fatal("bench JSON: unterminated benchmark object");
        const std::string obj = text.substr(open, close - open + 1);

        BenchResult r;
        r.name = stringField(obj, "name");
        r.group = stringField(obj, "group");
        r.unit = stringField(obj, "unit");
        r.m.itemsPerRep = static_cast<std::uint64_t>(
            numberField(obj, "items_per_rep"));
        r.m.nsMedian = numberField(obj, "ns_median");
        r.m.nsMin = numberField(obj, "ns_min");
        r.m.nsMax = numberField(obj, "ns_max");
        r.m.cyclesMedian = numberField(obj, "cycles_median");
        r.m.repeats = run.repeats;
        run.results.push_back(std::move(r));
        pos = close + 1;
    }
    return run;
}

BenchRun
loadBenchRun(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        pcbp_fatal("cannot read bench artifact '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return benchRunFromJson(os.str());
}

ReportTable
benchRunTable(const BenchRun &run)
{
    ReportTable t("bench_" + run.name,
                  "pcbp_bench results (" + run.name + ")",
                  {"benchmark", "group", "items/rep", "median ms",
                   "min ms", "max ms", "Mitems/s"});
    t.addNote("median of " + std::to_string(run.repeats) +
              " repetitions, 1 warmup; " +
              (run.quick ? "quick" : "full") + " mode, scale " +
              fmtDouble(run.scale, 2) +
              (run.workload.empty() ? ""
                                    : ", workload " + run.workload));
    for (const BenchResult &r : run.results) {
        t.addRow({r.name, r.group, std::to_string(r.m.itemsPerRep),
                  fmtDouble(r.m.nsMedian / 1e6, 2),
                  fmtDouble(r.m.nsMin / 1e6, 2),
                  fmtDouble(r.m.nsMax / 1e6, 2),
                  fmtDouble(r.m.throughput() / 1e6, 3)});
    }
    return t;
}

BenchComparison
compareBenchRuns(const BenchRun &baseline, const BenchRun &current,
                 double threshold)
{
    BenchComparison cmp;
    cmp.incomparable = baseline.quick != current.quick ||
                       baseline.scale != current.scale ||
                       baseline.workload != current.workload;

    for (const BenchResult &cur : current.results) {
        BenchDelta d;
        d.name = cur.name;
        d.current = cur.m.throughput();
        const BenchResult *base = nullptr;
        for (const BenchResult &b : baseline.results)
            if (b.name == cur.name)
                base = &b;
        if (!base) {
            d.missingBaseline = true;
        } else {
            d.baseline = base->m.throughput();
            if (d.baseline > 0.0) {
                d.delta = d.current / d.baseline - 1.0;
                d.regression = d.delta < -threshold;
            }
        }
        cmp.deltas.push_back(d);
    }
    for (const BenchResult &b : baseline.results) {
        bool found = false;
        for (const BenchResult &c : current.results)
            found = found || c.name == b.name;
        if (!found) {
            BenchDelta d;
            d.name = b.name;
            d.baseline = b.m.throughput();
            d.missingCurrent = true;
            cmp.deltas.push_back(d);
        }
    }

    for (const BenchDelta &d : cmp.deltas)
        cmp.regressed = cmp.regressed || d.regression;
    return cmp;
}

ReportTable
benchComparisonTable(const BenchComparison &cmp, double threshold)
{
    ReportTable t("bench_compare", "pcbp_bench compare",
                  {"benchmark", "baseline Mitems/s", "current Mitems/s",
                   "delta", "verdict"});
    t.addNote("regression threshold: " +
              fmtDouble(threshold * 100.0, 1) + "% throughput drop");
    if (cmp.incomparable) {
        t.addNote("WARNING: quick/scale/workload differ between runs "
                  "— numbers are not comparable");
    }
    for (const BenchDelta &d : cmp.deltas) {
        std::string delta = "-";
        std::string verdict = "ok";
        if (d.missingBaseline) {
            verdict = "new (no baseline)";
        } else if (d.missingCurrent) {
            verdict = "missing in current";
        } else {
            delta = fmtDouble(d.delta * 100.0, 1) + "%";
            if (d.regression)
                verdict = "REGRESSION";
            else if (d.delta > threshold)
                verdict = "improved";
        }
        t.addRow({d.name,
                  d.missingBaseline ? "-" : fmtDouble(d.baseline / 1e6, 3),
                  d.missingCurrent ? "-" : fmtDouble(d.current / 1e6, 3),
                  delta, verdict});
    }
    return t;
}

std::string
benchComparisonToJson(const BenchComparison &cmp, double threshold)
{
    std::size_t mismatched = 0;
    for (const BenchDelta &d : cmp.deltas)
        mismatched += (d.missingBaseline || d.missingCurrent) ? 1 : 0;

    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": \"pcbp-bench-compare-1\",\n"
       << "  \"threshold\": " << fmtDouble(threshold, 4) << ",\n"
       << "  \"incomparable\": "
       << (cmp.incomparable ? "true" : "false") << ",\n"
       << "  \"regressed\": " << (cmp.regressed ? "true" : "false")
       << ",\n"
       << "  \"mismatched\": " << mismatched << ",\n"
       << "  \"deltas\": [\n";
    for (std::size_t i = 0; i < cmp.deltas.size(); ++i) {
        const BenchDelta &d = cmp.deltas[i];
        os << "    {\"name\": \"" << jsonEscape(d.name) << "\""
           << ", \"baseline\": " << fmtDouble(d.baseline, 3)
           << ", \"current\": " << fmtDouble(d.current, 3)
           << ", \"delta\": " << fmtDouble(d.delta, 6)
           << ", \"missing_baseline\": "
           << (d.missingBaseline ? "true" : "false")
           << ", \"missing_current\": "
           << (d.missingCurrent ? "true" : "false")
           << ", \"regression\": "
           << (d.regression ? "true" : "false") << "}"
           << (i + 1 < cmp.deltas.size() ? "," : "") << "\n";
    }
    os << "  ]\n"
       << "}\n";
    return os.str();
}

} // namespace pcbp
