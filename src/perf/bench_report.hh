/**
 * @file
 * Benchmark artifacts: the `BENCH_<name>.json` format, the Markdown
 * summary table, and baseline comparison.
 *
 * The JSON schema is deterministic: a fixed `"schema"` tag
 * ("pcbp-bench-1"), a fixed key set emitted in a fixed order, and
 * fixed-precision number formatting — only the measured values vary
 * between runs. That is what lets tests pin the schema with a golden
 * (numbers normalized), lets `compare` parse any artifact any
 * revision of the tool wrote, and keeps diffs between committed
 * before/after artifacts readable. Like the sweep store's reader,
 * the parser here reads exactly this schema — it is not a general
 * JSON parser.
 *
 * Comparison semantics: benchmarks are joined by name; a benchmark
 * regresses when its current throughput drops more than `threshold`
 * (a fraction) below the baseline's. Benchmarks present on only one
 * side are reported but never gate, and runs with different
 * quick/scale settings are flagged as incomparable (gating on them
 * would be noise, not signal).
 */

#ifndef PCBP_PERF_BENCH_REPORT_HH
#define PCBP_PERF_BENCH_REPORT_HH

#include <string>
#include <vector>

#include "perf/bench.hh"
#include "report/table.hh"

namespace pcbp
{

/** One benchmark run as persisted in a BENCH_<name>.json. */
struct BenchRun
{
    /** Run label (the <name> of the artifact filename). */
    std::string name;

    bool quick = false;

    /** PCBP_BENCH_SCALE in effect. */
    double scale = 1.0;

    /** Timed repetitions per benchmark. */
    unsigned repeats = 0;

    /** Workload override for engine/timing benches ("" = default). */
    std::string workload;

    std::vector<BenchResult> results;

    /** Assemble from a finished `run` invocation. */
    static BenchRun fromResults(const std::string &name,
                                const BenchContext &ctx,
                                std::vector<BenchResult> results);
};

/** Serialize per the pcbp-bench-1 schema (see the file comment). */
std::string benchRunToJson(const BenchRun &run);

/**
 * Parse a pcbp-bench-1 document (fatal with the offending detail on
 * anything else — including a future schema tag).
 */
BenchRun benchRunFromJson(const std::string &text);

/** Read and parse an artifact file (fatal if unreadable). */
BenchRun loadBenchRun(const std::string &path);

/** The Markdown summary table for one run (reusing ReportTable). */
ReportTable benchRunTable(const BenchRun &run);

/** One benchmark's baseline/current comparison. */
struct BenchDelta
{
    std::string name;

    /** Throughputs in items/s; 0 when missing on that side. */
    double baseline = 0.0;
    double current = 0.0;

    /** current/baseline - 1; 0 when either side is missing. */
    double delta = 0.0;

    bool missingBaseline = false;
    bool missingCurrent = false;

    /** delta < -threshold (never set for missing sides). */
    bool regression = false;
};

/** Comparison of a current run against a baseline. */
struct BenchComparison
{
    std::vector<BenchDelta> deltas;

    /** quick/scale/workload differ — numbers are not comparable. */
    bool incomparable = false;

    /** Any per-benchmark regression beyond the threshold. */
    bool regressed = false;
};

/**
 * Join @p current against @p baseline by benchmark name and flag
 * regressions beyond @p threshold (fraction, e.g. 0.10 = 10%).
 */
BenchComparison compareBenchRuns(const BenchRun &baseline,
                                 const BenchRun &current,
                                 double threshold);

/** The Markdown comparison table (reusing ReportTable). */
ReportTable benchComparisonTable(const BenchComparison &cmp,
                                 double threshold);

/**
 * Serialize a comparison as a machine-readable summary (schema
 * "pcbp-bench-compare-1"). Every delta appears — including
 * benchmarks present on only one side, carrying their
 * `missing_baseline` / `missing_current` flags — so a CI artifact of
 * the comparison is self-describing: the stderr "benchmark sets
 * differ" lines have an in-band counterpart (`mismatched` plus the
 * flagged rows), and the gate verdicts (`regressed`, per-row
 * `regression`) are recorded next to the threshold that produced
 * them. Same determinism rules as the run schema: fixed key set,
 * fixed order, fixed-precision numbers.
 */
std::string benchComparisonToJson(const BenchComparison &cmp,
                                  double threshold);

} // namespace pcbp

#endif // PCBP_PERF_BENCH_REPORT_HH
