#include "perf/measure.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/logging.hh"
#include "obs/span_trace.hh"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace pcbp
{

std::uint64_t
readCycleCounter()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return 0;
#endif
}

std::uint64_t
readNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

Measurement
measureRepeated(const std::function<std::uint64_t()> &body,
                const MeasureOptions &opt)
{
    pcbp_assert(opt.repeats >= 1, "a measurement needs a repetition");

    if (opt.warmupReps > 0) {
        const std::uint64_t w0 =
            opt.tracer ? opt.tracer->now() : 0;
        for (unsigned i = 0; i < opt.warmupReps; ++i)
            body();
        if (opt.tracer) {
            opt.tracer->record(opt.spanName + ".warmup", "bench", 0,
                               w0, opt.tracer->now());
        }
    }

    std::vector<double> ns;
    std::vector<double> cycles;
    ns.reserve(opt.repeats);
    cycles.reserve(opt.repeats);

    Measurement m;
    m.repeats = opt.repeats;
    for (unsigned i = 0; i < opt.repeats; ++i) {
        const std::uint64_t s0 =
            opt.tracer ? opt.tracer->now() : 0;
        const std::uint64_t c0 = readCycleCounter();
        const std::uint64_t t0 = readNanos();
        const std::uint64_t items = body();
        const std::uint64_t t1 = readNanos();
        const std::uint64_t c1 = readCycleCounter();
        if (opt.tracer) {
            opt.tracer->record(opt.spanName + ".rep" +
                                   std::to_string(i),
                               "bench", 0, s0, opt.tracer->now());
        }
        ns.push_back(double(t1 - t0));
        cycles.push_back(double(c1 - c0));
        if (i == 0) {
            m.itemsPerRep = items;
        } else {
            pcbp_assert(items == m.itemsPerRep,
                        "benchmark body must do identical work every "
                        "repetition");
        }
    }

    m.nsMedian = medianOf(ns);
    m.nsMin = *std::min_element(ns.begin(), ns.end());
    m.nsMax = *std::max_element(ns.begin(), ns.end());
    m.cyclesMedian = medianOf(cycles); // all-zero samples => no TSC
    return m;
}

} // namespace pcbp
