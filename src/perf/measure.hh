/**
 * @file
 * The benchmark measurement core: warmup / repeat / median timing
 * with both a wall-clock (nanosecond) and a cycle (TSC) timer.
 *
 * Methodology (docs/PERFORMANCE.md): a benchmark body is executed
 * `warmupReps` times untimed — first-touch page faults, predictor
 * table cold misses, and i-cache warmup land there — then `repeats`
 * timed times. The reported figure is the *median* repetition, which
 * is robust against one-sided noise (scheduler preemption, frequency
 * ramps) without assuming a distribution; min and max are retained
 * so a noisy run is visible in the artifact. Every repetition runs
 * the body from scratch (fresh predictor/simulator state), so
 * repeats are identically distributed and the median is meaningful.
 *
 * The cycle timer reads the TSC on x86-64 and reports 0 elsewhere —
 * consumers must treat 0 as "no cycle counter", not "free". No
 * serializing instruction is issued: benchmark bodies are
 * milliseconds long, so out-of-order skew at the edges is noise well
 * below the repeat-to-repeat variance the median already absorbs.
 */

#ifndef PCBP_PERF_MEASURE_HH
#define PCBP_PERF_MEASURE_HH

#include <cstdint>
#include <functional>
#include <string>

namespace pcbp
{

class SpanTracer;

/** Read the cycle counter (TSC); 0 where unavailable. */
std::uint64_t readCycleCounter();

/** Monotonic nanoseconds (steady_clock). */
std::uint64_t readNanos();

/** Repeat/warmup policy for one measurement. */
struct MeasureOptions
{
    /** Timed repetitions; the median is the reported figure. */
    unsigned repeats = 5;

    /** Untimed warmup repetitions before the timed ones. */
    unsigned warmupReps = 1;

    /**
     * Span tracer: one "warmup" span covering the untimed reps and
     * one "repN" span per timed repetition, named
     * "<spanName>.warmup" / "<spanName>.repN". Tracing reads the
     * same steady clock just outside the timed window, so it does
     * not perturb the measurement. Not owned; null = off.
     */
    SpanTracer *tracer = nullptr;

    /** Span name stem (the benchmark's name). */
    std::string spanName;
};

/** One benchmark's timing summary, over all timed repetitions. */
struct Measurement
{
    unsigned repeats = 0;

    /** Work items processed per repetition (identical across reps). */
    std::uint64_t itemsPerRep = 0;

    double nsMedian = 0.0;
    double nsMin = 0.0;
    double nsMax = 0.0;

    /** Median TSC delta per repetition; 0 = no cycle counter. */
    double cyclesMedian = 0.0;

    /** Items per second at the median repetition. */
    double
    throughput() const
    {
        return nsMedian <= 0.0 ? 0.0
                               : double(itemsPerRep) * 1e9 / nsMedian;
    }
};

/**
 * Run @p body under the repeat/warmup policy and summarize. The body
 * performs one full repetition and returns the number of work items
 * it processed (which must not depend on the repetition index —
 * bodies rebuild their state every call).
 */
Measurement measureRepeated(const std::function<std::uint64_t()> &body,
                            const MeasureOptions &opt = {});

} // namespace pcbp

#endif // PCBP_PERF_MEASURE_HH
