#include "predictors/bimodal.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

Bimodal::Bimodal(std::size_t num_entries, unsigned counter_bits)
    : table(num_entries, counter_bits, 0),
      ctrBits(counter_bits),
      indexBits(log2Floor(num_entries))
{
    pcbp_assert(isPowerOfTwo(num_entries), "bimodal size must be 2^n");
}

std::size_t
Bimodal::index(Addr pc) const
{
    // Drop the low bits that are constant across instructions.
    return (pc >> 2) & maskBits(indexBits);
}

bool
Bimodal::predict(Addr pc, const HistoryRegister &)
{
    return table.taken(index(pc));
}

void
Bimodal::update(Addr pc, const HistoryRegister &, bool taken)
{
    table.update(index(pc), taken);
}

void
Bimodal::reset()
{
    table.fill(0);
}

std::size_t
Bimodal::sizeBits() const
{
    return table.size() * ctrBits;
}

std::string
Bimodal::name() const
{
    return "bimodal-" + std::to_string(table.size());
}

} // namespace pcbp
