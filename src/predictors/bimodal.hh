/**
 * @file
 * Bimodal predictor: a table of 2-bit counters indexed by branch
 * address. The simplest dynamic predictor; also the BIM bank of
 * 2Bc-gskew and the choice table of YAGS/tournament predictors.
 */

#ifndef PCBP_PREDICTORS_BIMODAL_HH
#define PCBP_PREDICTORS_BIMODAL_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class Bimodal final : public DirectionPredictor
{
  public:
    /**
     * @param num_entries Table size; must be a power of two.
     * @param counter_bits Width of each saturating counter.
     */
    explicit Bimodal(std::size_t num_entries, unsigned counter_bits = 2);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<Bimodal>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return 0; }
    std::string name() const override;

  private:
    std::size_t index(Addr pc) const;

    SatCounterTable table;
    unsigned ctrBits;
    unsigned indexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_BIMODAL_HH
