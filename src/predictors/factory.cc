#include "predictors/factory.hh"

#include <array>

#include "common/logging.hh"
#include "predictors/bimodal.hh"
#include "predictors/fusion.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/local_predictor.hh"
#include "predictors/perceptron.hh"
#include "predictors/skewed_perceptron.hh"
#include "predictors/static_pred.hh"
#include "predictors/tage.hh"
#include "predictors/tournament.hh"
#include "predictors/two_level.hh"
#include "predictors/yags.hh"

namespace pcbp
{

namespace
{

constexpr std::array<std::size_t, 5> budgetBytesTable = {
    2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
};

// Table 3: gshare row.
constexpr std::array<std::size_t, 5> gshareEntries = {
    8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024,
};
constexpr std::array<unsigned, 5> gshareHistory = {13, 14, 15, 16, 17};

// Table 3: perceptron row.
constexpr std::array<std::size_t, 5> perceptronCount = {
    113, 163, 282, 348, 565,
};
constexpr std::array<unsigned, 5> perceptronHistory = {17, 24, 28, 47, 57};

// Table 3: 2Bc-gskew row (entries per table).
constexpr std::array<std::size_t, 5> gskewEntries = {
    2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
};
constexpr std::array<unsigned, 5> gskewHistory = {11, 12, 13, 14, 15};

// TAGE rows (budget-matched, not from the paper): bimodal base
// entries, tagged tables x entries, tag bits, and the geometric
// history series per budget class.
struct TageRow
{
    std::size_t baseEntries;
    std::size_t tableEntries;
    unsigned numTables;
    unsigned tagBits;
    std::array<unsigned, 6> histories; // first numTables used
};

constexpr std::array<TageRow, 5> tageRows = {{
    {1024, 256, 4, 7, {4, 9, 20, 45, 0, 0}},       // 2KB
    {2048, 512, 4, 8, {5, 11, 25, 56, 0, 0}},      // 4KB
    {4096, 1024, 4, 8, {6, 14, 32, 72, 0, 0}},     // 8KB
    {8192, 1024, 5, 10, {5, 11, 24, 52, 112, 0}},  // 16KB
    {16384, 2048, 6, 10, {4, 9, 19, 40, 84, 128}}, // 32KB
}};

TageConfig
tageConfigFor(Budget b)
{
    const TageRow &row = tageRows[static_cast<std::size_t>(b)];
    TageConfig cfg;
    cfg.baseEntries = row.baseEntries;
    for (unsigned i = 0; i < row.numTables; ++i) {
        TageTableConfig tc;
        tc.entries = row.tableEntries;
        tc.tagBits = row.tagBits;
        tc.historyLength = row.histories[i];
        cfg.tables.push_back(tc);
    }
    return cfg;
}

std::size_t
budgetIndex(Budget b)
{
    return static_cast<std::size_t>(b);
}

} // namespace

std::size_t
budgetBytes(Budget b)
{
    return budgetBytesTable[budgetIndex(b)];
}

std::string
budgetName(Budget b)
{
    return std::to_string(budgetBytes(b) / 1024) + "KB";
}

Budget
parseBudget(const std::string &s)
{
    for (Budget b : {Budget::B2KB, Budget::B4KB, Budget::B8KB,
                     Budget::B16KB, Budget::B32KB}) {
        if (budgetName(b) == s)
            return b;
    }
    pcbp_fatal("unknown budget '", s, "' (expected 2KB..32KB)");
}

std::string
prophetKindName(ProphetKind k)
{
    switch (k) {
      case ProphetKind::Gshare: return "gshare";
      case ProphetKind::GSkew: return "2Bc-gskew";
      case ProphetKind::Perceptron: return "perceptron";
      case ProphetKind::Bimodal: return "bimodal";
      case ProphetKind::TwoLevel: return "GAs";
      case ProphetKind::Yags: return "yags";
      case ProphetKind::Local: return "local";
      case ProphetKind::Tournament: return "tournament";
      case ProphetKind::SkewedPerceptron: return "skewed-perceptron";
      case ProphetKind::Fusion: return "fusion";
      case ProphetKind::Tage: return "tage";
      case ProphetKind::AlwaysTaken: return "always-taken";
      case ProphetKind::AlwaysNotTaken: return "always-not-taken";
    }
    pcbp_panic("bad ProphetKind");
}

const std::vector<ProphetKind> &
allProphetKinds()
{
    static const std::vector<ProphetKind> kinds = {
        ProphetKind::Gshare,           ProphetKind::GSkew,
        ProphetKind::Perceptron,       ProphetKind::Bimodal,
        ProphetKind::TwoLevel,         ProphetKind::Yags,
        ProphetKind::Local,            ProphetKind::Tournament,
        ProphetKind::SkewedPerceptron, ProphetKind::Fusion,
        ProphetKind::Tage,             ProphetKind::AlwaysTaken,
        ProphetKind::AlwaysNotTaken,
    };
    return kinds;
}

ProphetKind
parseProphetKind(const std::string &s)
{
    for (ProphetKind k : allProphetKinds()) {
        if (prophetKindName(k) == s)
            return k;
    }
    pcbp_fatal("unknown predictor kind '", s, "'");
}

DirectionPredictorPtr
makeProphet(ProphetKind kind, Budget b)
{
    const std::size_t i = budgetIndex(b);
    switch (kind) {
      case ProphetKind::Gshare:
        return std::make_unique<Gshare>(gshareEntries[i],
                                        gshareHistory[i]);
      case ProphetKind::GSkew:
        return std::make_unique<GSkew>(gskewEntries[i], gskewHistory[i]);
      case ProphetKind::Perceptron:
        return std::make_unique<Perceptron>(perceptronCount[i],
                                            perceptronHistory[i]);
      case ProphetKind::Bimodal:
        // budget / 2 bits per entry.
        return std::make_unique<Bimodal>(budgetBytes(b) * 4);
      case ProphetKind::TwoLevel: {
        // Same PHT size as gshare at this budget, split addr/hist.
        const unsigned total = log2Floor(gshareEntries[i]);
        const unsigned hist = gshareHistory[i] < total
                                  ? gshareHistory[i] - 4
                                  : total / 2;
        return std::make_unique<TwoLevel>(total - hist, hist);
      }
      case ProphetKind::Yags: {
        // Roughly: 1/4 budget on choice, rest split across the two
        // direction caches (11 bits/entry with 8-bit tags).
        const std::size_t bits = budgetBytes(b) * 8;
        const std::size_t choice_entries =
            std::size_t(1) << log2Floor(bits / 4 / 2);
        const std::size_t cache_entries =
            std::size_t(1) << log2Floor((bits - choice_entries * 2) /
                                        (2 * 11));
        return std::make_unique<Yags>(choice_entries, cache_entries, 8,
                                      gshareHistory[i]);
      }
      case ProphetKind::Local: {
        // Half the budget on 12-bit local histories, half on the PHT.
        const std::size_t bits = budgetBytes(b) * 8;
        const std::size_t nhist =
            std::size_t(1) << log2Floor(bits / 2 / 12);
        return std::make_unique<LocalPredictor>(nhist, 12);
      }
      case ProphetKind::Tournament: {
        // Classic bimodal + gshare pair: half the bit budget on the
        // gshare PHT, a quarter each on the bimodal and the chooser.
        const std::size_t bytes = budgetBytes(b);
        auto c0 = std::make_unique<Bimodal>(bytes); // bytes entries
        const std::size_t gshare_entries = bytes * 2;
        const unsigned hist =
            std::min<unsigned>(log2Floor(gshare_entries), 17);
        auto c1 = std::make_unique<Gshare>(gshare_entries, hist);
        return std::make_unique<Tournament>(std::move(c0), std::move(c1),
                                            bytes);
      }
      case ProphetKind::SkewedPerceptron: {
        // Three banks sharing the budget at the Table 3 perceptron
        // history length for this budget class.
        const unsigned hist = perceptronHistory[i];
        const std::size_t rows =
            std::max<std::size_t>(1, budgetBytes(b) / (3 * (hist + 1)));
        return std::make_unique<SkewedPerceptron>(rows, hist);
      }
      case ProphetKind::Fusion: {
        // Bimodal + gshare components with a fusion table: half the
        // budget on the bimodal, a quarter each on gshare and the
        // fusion counters.
        const std::size_t bytes = budgetBytes(b);
        std::vector<DirectionPredictorPtr> comps;
        comps.push_back(std::make_unique<Bimodal>(bytes * 2));
        comps.push_back(std::make_unique<Gshare>(
            bytes, std::min<unsigned>(log2Floor(bytes), 17)));
        return std::make_unique<FusionHybrid>(std::move(comps), bytes);
      }
      case ProphetKind::Tage:
        return std::make_unique<Tage>(tageConfigFor(b));
      case ProphetKind::AlwaysTaken:
        return std::make_unique<StaticPredictor>(true);
      case ProphetKind::AlwaysNotTaken:
        return std::make_unique<StaticPredictor>(false);
    }
    pcbp_panic("bad ProphetKind");
}

DirectionPredictorPtr
makeProphet(const std::string &spec)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos)
        return makeProphet(parseProphetKind(spec), Budget::B8KB);
    return makeProphet(parseProphetKind(spec.substr(0, colon)),
                       parseBudget(spec.substr(colon + 1)));
}

} // namespace pcbp
