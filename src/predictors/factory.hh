/**
 * @file
 * Factory for prophet-capable predictors, encoding the paper's
 * Table 3 configurations for hardware budgets from 2KB to 32KB.
 */

#ifndef PCBP_PREDICTORS_FACTORY_HH
#define PCBP_PREDICTORS_FACTORY_HH

#include <string>
#include <vector>

#include "predictors/predictor.hh"

namespace pcbp
{

/** Hardware budgets from Table 3. */
enum class Budget { B2KB, B4KB, B8KB, B16KB, B32KB };

/** Budget in bytes. */
std::size_t budgetBytes(Budget b);

/** Budget as a short string, e.g.\ "8KB". */
std::string budgetName(Budget b);

/** Parse "2KB".."32KB" (fatal on anything else). */
Budget parseBudget(const std::string &s);

/** Prophet-capable predictor kinds. */
enum class ProphetKind
{
    Gshare,
    GSkew,
    Perceptron,
    Bimodal,        // extension baselines below
    TwoLevel,
    Yags,
    Local,
    Tournament,
    SkewedPerceptron, // Seznec redundant-history (paper Sec. 9)
    Fusion,           // Loh-Henry fusion hybrid (paper Sec. 2)
    Tage,             // geometric-history tagged tables (post-paper)
    AlwaysTaken,
    AlwaysNotTaken,
};

/**
 * Every registered prophet kind, in declaration order — the registry
 * the differential tests and zoo examples iterate.
 */
const std::vector<ProphetKind> &allProphetKinds();

/** Kind as a string ("gshare", "2Bc-gskew", "perceptron", ...). */
std::string prophetKindName(ProphetKind k);

/** Parse a kind name (fatal on unknown). */
ProphetKind parseProphetKind(const std::string &s);

/**
 * Build a predictor of @p kind configured per Table 3 for budget
 * @p b. Non-paper kinds get budget-matched configurations.
 */
DirectionPredictorPtr makeProphet(ProphetKind kind, Budget b);

/** Build from a spec string like "gshare:8KB". */
DirectionPredictorPtr makeProphet(const std::string &spec);

} // namespace pcbp

#endif // PCBP_PREDICTORS_FACTORY_HH
