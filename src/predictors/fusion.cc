#include "predictors/fusion.hh"

#include <algorithm>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

FusionHybrid::FusionHybrid(std::vector<DirectionPredictorPtr> components,
                           std::size_t fusion_entries)
    : comps(std::move(components)),
      fusion(fusion_entries, SatCounter(2, 1)),
      indexBits(log2Floor(fusion_entries))
{
    pcbp_assert(comps.size() >= 2 && comps.size() <= 4,
                "fusion wants 2-4 components");
    pcbp_assert(isPowerOfTwo(fusion_entries));
    pcbp_assert(indexBits > comps.size(),
                "fusion table too small for the prediction vector");
}

unsigned
FusionHybrid::predVector(Addr pc, const HistoryRegister &hist)
{
    unsigned v = 0;
    for (std::size_t i = 0; i < comps.size(); ++i)
        v |= static_cast<unsigned>(comps[i]->predict(pc, hist)) << i;
    return v;
}

std::size_t
FusionHybrid::fusionIndex(Addr pc, unsigned pred_vector) const
{
    // Prediction vector in the low bits; address bits above it.
    const unsigned n = static_cast<unsigned>(comps.size());
    const std::uint64_t a = foldBits(pc >> 2, indexBits - n);
    return ((a << n) | pred_vector) & maskBits(indexBits);
}

bool
FusionHybrid::predict(Addr pc, const HistoryRegister &hist)
{
    return fusion[fusionIndex(pc, predVector(pc, hist))].taken();
}

void
FusionHybrid::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    // The fusion table trains on the mapping seen at prediction
    // time; components train as usual.
    fusion[fusionIndex(pc, predVector(pc, hist))].update(taken);
    for (auto &c : comps)
        c->update(pc, hist, taken);
}

void
FusionHybrid::reset()
{
    for (auto &c : comps)
        c->reset();
    for (auto &f : fusion)
        f.set(1);
}

DirectionPredictorPtr
FusionHybrid::clone() const
{
    std::vector<DirectionPredictorPtr> comps_copy;
    comps_copy.reserve(comps.size());
    for (const auto &c : comps)
        comps_copy.push_back(c->clone());
    auto out = std::make_unique<FusionHybrid>(std::move(comps_copy),
                                              fusion.size());
    out->fusion = fusion;
    return out;
}

std::size_t
FusionHybrid::sizeBits() const
{
    std::size_t bits = fusion.size() * 2;
    for (const auto &c : comps)
        bits += c->sizeBits();
    return bits;
}

unsigned
FusionHybrid::historyLength() const
{
    unsigned h = 0;
    for (const auto &c : comps)
        h = std::max(h, c->historyLength());
    return h;
}

std::string
FusionHybrid::name() const
{
    std::string s = "fusion(";
    for (std::size_t i = 0; i < comps.size(); ++i) {
        if (i)
            s += ",";
        s += comps[i]->name();
    }
    return s + ")";
}

} // namespace pcbp
