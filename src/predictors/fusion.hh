/**
 * @file
 * Fusion hybrid (Loh & Henry, PACT'02) — the related-work design §2
 * of the paper contrasts with selection hybrids and with
 * prophet/critic operation. Instead of *picking* one component, the
 * fusion table maps the vector of all component predictions (plus
 * address bits) to a final prediction, so every component contributes
 * to every prediction.
 */

#ifndef PCBP_PREDICTORS_FUSION_HH
#define PCBP_PREDICTORS_FUSION_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class FusionHybrid final : public DirectionPredictor
{
  public:
    /**
     * @param components Component predictors (2-4).
     * @param fusion_entries Fusion-table entries (power of two; each
     *        entry is a 2-bit counter indexed by component
     *        predictions + address bits).
     */
    FusionHybrid(std::vector<DirectionPredictorPtr> components,
                 std::size_t fusion_entries);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;
    DirectionPredictorPtr clone() const override;
    std::size_t sizeBits() const override;
    unsigned historyLength() const override;
    std::string name() const override;

  private:
    std::size_t fusionIndex(Addr pc, unsigned pred_vector) const;
    unsigned predVector(Addr pc, const HistoryRegister &hist);

    std::vector<DirectionPredictorPtr> comps;
    std::vector<SatCounter> fusion;
    unsigned indexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_FUSION_HH
