#include "predictors/gshare.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

Gshare::Gshare(std::size_t num_entries, unsigned history_bits)
    : table(num_entries, 2, 1),
      histBits(history_bits),
      indexBits(log2Floor(num_entries))
{
    pcbp_assert(isPowerOfTwo(num_entries), "gshare size must be 2^n");
    pcbp_assert(history_bits <= HistoryRegister::capacity);
}

std::size_t
Gshare::index(Addr pc, const HistoryRegister &hist) const
{
    const std::uint64_t h = hist.foldedLow(histBits, indexBits);
    return (foldBits(pc >> 2, indexBits) ^ h) & maskBits(indexBits);
}

bool
Gshare::predict(Addr pc, const HistoryRegister &hist)
{
    return table.taken(index(pc, hist));
}

void
Gshare::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    table.update(index(pc, hist), taken);
}

void
Gshare::reset()
{
    table.fill(1);
}

std::size_t
Gshare::sizeBits() const
{
    return table.size() * 2;
}

std::string
Gshare::name() const
{
    return "gshare-" + std::to_string(sizeBytes() / 1024) + "KB";
}

} // namespace pcbp
