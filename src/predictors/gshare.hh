/**
 * @file
 * Gshare predictor (McFarling): a table of 2-bit counters indexed by
 * the XOR of the branch address and the global branch history, which
 * spreads branches across the pattern table to reduce aliasing.
 */

#ifndef PCBP_PREDICTORS_GSHARE_HH
#define PCBP_PREDICTORS_GSHARE_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class Gshare final : public DirectionPredictor
{
  public:
    /**
     * @param num_entries Pattern table size; power of two.
     * @param history_bits Number of global history bits XORed into
     *        the index.
     */
    Gshare(std::size_t num_entries, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<Gshare>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

  private:
    std::size_t index(Addr pc, const HistoryRegister &hist) const;

    SatCounterTable table;
    unsigned histBits;
    unsigned indexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_GSHARE_HH
