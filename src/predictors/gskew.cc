#include "predictors/gskew.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

GSkew::GSkew(std::size_t entries_per_bank, unsigned history_bits)
    : bim(entries_per_bank, SatCounter(2, 1)),
      g0(entries_per_bank, SatCounter(2, 1)),
      g1(entries_per_bank, SatCounter(2, 1)),
      meta(entries_per_bank, SatCounter(2, 2)),
      histBits(history_bits),
      indexBits(log2Floor(entries_per_bank))
{
    pcbp_assert(isPowerOfTwo(entries_per_bank),
                "gskew bank size must be 2^n");
    pcbp_assert(indexBits >= 2, "gskew banks need at least 4 entries");
}

std::size_t
GSkew::idxBim(Addr pc) const
{
    return foldBits(pc >> 2, indexBits);
}

std::size_t
GSkew::idxG0(Addr pc, const HistoryRegister &hist) const
{
    const std::uint64_t a = foldBits(pc >> 2, indexBits);
    const std::uint64_t h = hist.foldedLow(histBits, indexBits);
    // Skewing: two bijections of the two components so that a pair
    // (a, h) colliding here maps elsewhere in G1.
    return (skewH(a, indexBits) ^ skewHInv(h, indexBits) ^ h) &
           maskBits(indexBits);
}

std::size_t
GSkew::idxG1(Addr pc, const HistoryRegister &hist) const
{
    const std::uint64_t a = foldBits(pc >> 2, indexBits);
    const std::uint64_t h = hist.foldedLow(histBits, indexBits);
    return (skewHInv(a, indexBits) ^ skewH(h, indexBits) ^ a) &
           maskBits(indexBits);
}

std::size_t
GSkew::idxMeta(Addr pc, const HistoryRegister &hist) const
{
    const std::uint64_t a = foldBits(pc >> 2, indexBits);
    const std::uint64_t h = hist.foldedLow(histBits, indexBits);
    return (a ^ skewH(h, indexBits)) & maskBits(indexBits);
}

GSkew::BankView
GSkew::banks(Addr pc, const HistoryRegister &hist) const
{
    BankView v;
    v.bim = bim[idxBim(pc)].taken();
    v.g0 = g0[idxG0(pc, hist)].taken();
    v.g1 = g1[idxG1(pc, hist)].taken();
    const int votes = int(v.bim) + int(v.g0) + int(v.g1);
    v.majority = votes >= 2;
    v.useMajority = meta[idxMeta(pc, hist)].taken();
    v.final_ = v.useMajority ? v.majority : v.bim;
    return v;
}

bool
GSkew::predict(Addr pc, const HistoryRegister &hist)
{
    return banks(pc, hist).final_;
}

void
GSkew::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const BankView v = banks(pc, hist);

    // META learns which side to trust whenever the two sides differ.
    if (v.bim != v.majority)
        meta[idxMeta(pc, hist)].update(v.majority == taken);

    if (v.final_ == taken) {
        // Partial update: strengthen only the banks that took part in
        // the correct prediction and agreed with the outcome.
        if (v.useMajority) {
            if (v.bim == taken)
                bim[idxBim(pc)].update(taken);
            if (v.g0 == taken)
                g0[idxG0(pc, hist)].update(taken);
            if (v.g1 == taken)
                g1[idxG1(pc, hist)].update(taken);
        } else {
            bim[idxBim(pc)].update(taken);
        }
    } else {
        // Mispredict: re-educate all direction banks.
        bim[idxBim(pc)].update(taken);
        g0[idxG0(pc, hist)].update(taken);
        g1[idxG1(pc, hist)].update(taken);
    }
}

void
GSkew::reset()
{
    for (auto *bank : {&bim, &g0, &g1})
        for (auto &c : *bank)
            c.set(1);
    for (auto &c : meta)
        c.set(2);
}

std::size_t
GSkew::sizeBits() const
{
    return (bim.size() + g0.size() + g1.size() + meta.size()) * 2;
}

std::string
GSkew::name() const
{
    return "2Bc-gskew-" + std::to_string(sizeBytes() / 1024) + "KB";
}

} // namespace pcbp
