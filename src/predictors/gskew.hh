/**
 * @file
 * 2Bc-gskew predictor (Seznec & Michaud), the de-aliased hybrid used
 * by the Compaq Alpha EV8. Four banks of 2-bit counters:
 *
 * - BIM: a bimodal bank indexed by branch address;
 * - G0, G1: gshare-like banks indexed by skewed hashes of
 *   (address, global history);
 * - META: a meta-predictor bank choosing between BIM and the
 *   majority vote of {BIM, G0, G1} (the e-gskew prediction).
 *
 * The partial update policy follows the original: on a correct
 * prediction only the participating, agreeing banks are
 * strengthened; on a mispredict all direction banks are re-educated;
 * META is updated whenever BIM and the majority vote disagree.
 */

#ifndef PCBP_PREDICTORS_GSKEW_HH
#define PCBP_PREDICTORS_GSKEW_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class GSkew final : public DirectionPredictor
{
  public:
    /**
     * @param entries_per_bank Entries in each of the 4 banks
     *        (power of two).
     * @param history_bits Global-history bits hashed into G0/G1/META.
     */
    GSkew(std::size_t entries_per_bank, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<GSkew>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

    /** Per-bank predictions, exposed for tests. */
    struct BankView
    {
        bool bim, g0, g1, majority, useMajority, final_;
    };
    BankView banks(Addr pc, const HistoryRegister &hist) const;

  private:
    std::size_t idxBim(Addr pc) const;
    std::size_t idxG0(Addr pc, const HistoryRegister &hist) const;
    std::size_t idxG1(Addr pc, const HistoryRegister &hist) const;
    std::size_t idxMeta(Addr pc, const HistoryRegister &hist) const;

    std::vector<SatCounter> bim, g0, g1, meta;
    unsigned histBits;
    unsigned indexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_GSKEW_HH
