#include "predictors/local_predictor.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

LocalPredictor::LocalPredictor(std::size_t num_histories,
                               unsigned local_bits)
    : localHist(num_histories, 0),
      pht(std::size_t(1) << local_bits, SatCounter(2, 1)),
      localBits(local_bits),
      histIndexBits(log2Floor(num_histories))
{
    pcbp_assert(isPowerOfTwo(num_histories));
    pcbp_assert(local_bits >= 1 && local_bits <= 20);
}

std::size_t
LocalPredictor::histIndex(Addr pc) const
{
    return foldBits(pc >> 2, histIndexBits);
}

bool
LocalPredictor::predict(Addr pc, const HistoryRegister &)
{
    const std::uint32_t lh =
        localHist[histIndex(pc)] & maskBits(localBits);
    return pht[lh].taken();
}

void
LocalPredictor::update(Addr pc, const HistoryRegister &, bool taken)
{
    std::uint32_t &lh = localHist[histIndex(pc)];
    pht[lh & maskBits(localBits)].update(taken);
    lh = ((lh << 1) | (taken ? 1 : 0)) & maskBits(localBits);
}

void
LocalPredictor::reset()
{
    std::fill(localHist.begin(), localHist.end(), 0);
    for (auto &c : pht)
        c.set(1);
}

std::size_t
LocalPredictor::sizeBits() const
{
    return localHist.size() * localBits + pht.size() * 2;
}

std::string
LocalPredictor::name() const
{
    return "local-" + std::to_string(localHist.size()) + "x" +
           std::to_string(localBits);
}

} // namespace pcbp
