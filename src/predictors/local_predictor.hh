/**
 * @file
 * Local two-level predictor (PAg style, as in the Alpha 21264 local
 * component): a table of per-branch local histories indexes a shared
 * pattern table of 2-bit counters.
 *
 * Local history is updated at training time (commit), so it needs no
 * checkpoint/repair; this models a retired-local-history design and
 * is documented as such (the paper's components are all global-
 * history predictors, this one is an extension prophet).
 */

#ifndef PCBP_PREDICTORS_LOCAL_PREDICTOR_HH
#define PCBP_PREDICTORS_LOCAL_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class LocalPredictor final : public DirectionPredictor
{
  public:
    /**
     * @param num_histories Local-history table entries (2^n).
     * @param local_bits Bits of local history per branch.
     */
    LocalPredictor(std::size_t num_histories, unsigned local_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<LocalPredictor>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return 0; }
    std::string name() const override;

  private:
    std::size_t histIndex(Addr pc) const;

    std::vector<std::uint32_t> localHist;
    std::vector<SatCounter> pht;
    unsigned localBits;
    unsigned histIndexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_LOCAL_PREDICTOR_HH
