#include "predictors/perceptron.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace pcbp
{

namespace
{

/** Row stride in weights: history weights padded to a 64-byte
 *  multiple so the SIMD kernels never need a masked tail. */
std::size_t
strideFor(unsigned history_bits)
{
    return (static_cast<std::size_t>(history_bits) + 63) / 64 * 64;
}

} // namespace

Perceptron::Perceptron(std::size_t num_perceptrons, unsigned history_bits)
    : weights(num_perceptrons * strideFor(history_bits), 0),
      biases(num_perceptrons, 0),
      numPerceptrons(num_perceptrons),
      histBits(history_bits),
      rowStride(strideFor(history_bits)),
      theta(static_cast<int>(1.93 * history_bits + 14)),
      modMul(UINT64_MAX / num_perceptrons + 1),
      dot(simd::dotKernel()),
      train(simd::trainKernel())
{
    pcbp_assert(num_perceptrons > 0);
    pcbp_assert(history_bits >= 1 &&
                history_bits <= HistoryRegister::capacity);
}

std::size_t
Perceptron::select(Addr pc) const
{
    const std::uint64_t x = pc >> 2;
    // Lemire fast-mod is exact for 32-bit dividends; branch
    // predictors index with low PC bits so the fallback never fires
    // in practice, but keep the semantics identical regardless.
    if (x >> 32)
        return x % numPerceptrons;
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(modMul * x) * numPerceptrons) >>
        64);
}

int
Perceptron::output(Addr pc, const HistoryRegister &hist) const
{
    const std::size_t row = select(pc);
    return biases[row] + dot(&weights[row * rowStride], histBits,
                             hist.word0(), hist.word1());
}

bool
Perceptron::predict(Addr pc, const HistoryRegister &hist)
{
    return output(pc, hist) >= 0;
}

void
Perceptron::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const std::size_t row = select(pc);
    std::int8_t *w = &weights[row * rowStride];
    const int out =
        biases[row] + dot(w, histBits, hist.word0(), hist.word1());
    const bool pred = out >= 0;
    // Train on mispredict or low confidence (|out| <= theta).
    if (pred == taken && std::abs(out) > theta)
        return;

    std::int8_t &bias = biases[row];
    if (taken) {
        if (bias < 127)
            ++bias;
    } else {
        if (bias > -127)
            --bias;
    }
    train(w, histBits, hist.word0(), hist.word1(), taken);
}

void
Perceptron::predictBatch(const PredictQuery *queries, std::size_t n,
                         bool *out)
{
    // Same arithmetic as n predict() calls; the win is issuing the
    // row prefetch a few queries ahead so the dot products don't
    // serialize on table misses.
    constexpr std::size_t kAhead = 4;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kAhead < n) {
            const std::size_t r = select(queries[i + kAhead].pc);
            __builtin_prefetch(&weights[r * rowStride]);
        }
        out[i] = predict(queries[i].pc, queries[i].hist);
    }
}

void
Perceptron::trainBatch(const TrainItem *items, std::size_t n)
{
    // Training is order-sensitive (item i sees the weights left by
    // 0..i-1), so this stays a sequential loop; prefetching the
    // upcoming rows is safe because it has no architectural effect.
    constexpr std::size_t kAhead = 4;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kAhead < n) {
            const std::size_t r = select(items[i + kAhead].pc);
            __builtin_prefetch(&weights[r * rowStride], 1);
        }
        update(items[i].pc, items[i].hist, items[i].taken);
    }
}

void
Perceptron::reset()
{
    std::fill(weights.begin(), weights.end(), 0);
    std::fill(biases.begin(), biases.end(), 0);
}

std::size_t
Perceptron::sizeBits() const
{
    // Logical cost: (history + bias) int8 weights per perceptron.
    // The 64-byte row padding is an implementation artifact and is
    // not charged.
    return numPerceptrons * (histBits + 1) * 8;
}

std::string
Perceptron::name() const
{
    return "perceptron-" + std::to_string(numPerceptrons) + "x" +
           std::to_string(histBits);
}

} // namespace pcbp
