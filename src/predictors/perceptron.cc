#include "predictors/perceptron.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace pcbp
{

Perceptron::Perceptron(std::size_t num_perceptrons, unsigned history_bits)
    : weights(num_perceptrons * (history_bits + 1), 0),
      numPerceptrons(num_perceptrons),
      histBits(history_bits),
      theta(static_cast<int>(1.93 * history_bits + 14))
{
    pcbp_assert(num_perceptrons > 0);
    pcbp_assert(history_bits >= 1 &&
                history_bits <= HistoryRegister::capacity);
}

std::size_t
Perceptron::select(Addr pc) const
{
    return (pc >> 2) % numPerceptrons;
}

int
Perceptron::output(Addr pc, const HistoryRegister &hist) const
{
    const std::int8_t *w = &weights[select(pc) * (histBits + 1)];
    int sum = w[0]; // bias weight, input fixed at +1
    // Hoist the history bits into registers once instead of
    // extracting them from the register object one call at a time —
    // this dot product dominates the perceptron rows of the engine
    // benchmarks. Same arithmetic, so outputs are bit-identical.
    unsigned i = 0;
    for (unsigned first = 0; first < histBits; first += 64) {
        const unsigned n = std::min(histBits - first, 64u);
        const std::uint64_t bits = hist.window(first, n);
        for (unsigned j = 0; j < n; ++j, ++i) {
            const int wv = w[i + 1];
            sum += ((bits >> j) & 1) ? wv : -wv;
        }
    }
    return sum;
}

bool
Perceptron::predict(Addr pc, const HistoryRegister &hist)
{
    return output(pc, hist) >= 0;
}

void
Perceptron::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const int out = output(pc, hist);
    const bool pred = out >= 0;
    // Train on mispredict or low confidence (|out| <= theta).
    if (pred == taken && std::abs(out) > theta)
        return;

    std::int8_t *w = &weights[select(pc) * (histBits + 1)];
    auto bump = [](std::int8_t &weight, bool up) {
        if (up) {
            if (weight < 127)
                ++weight;
        } else {
            if (weight > -127)
                --weight;
        }
    };
    bump(w[0], taken);
    unsigned i = 0;
    for (unsigned first = 0; first < histBits; first += 64) {
        const unsigned n = std::min(histBits - first, 64u);
        const std::uint64_t bits = hist.window(first, n);
        for (unsigned j = 0; j < n; ++j, ++i)
            bump(w[i + 1], bool((bits >> j) & 1) == taken);
    }
}

void
Perceptron::reset()
{
    std::fill(weights.begin(), weights.end(), 0);
}

std::size_t
Perceptron::sizeBits() const
{
    return weights.size() * 8;
}

std::string
Perceptron::name() const
{
    return "perceptron-" + std::to_string(numPerceptrons) + "x" +
           std::to_string(histBits);
}

} // namespace pcbp
