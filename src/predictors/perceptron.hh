/**
 * @file
 * Perceptron predictor (Jiménez & Lin). A pool of perceptrons is
 * selected by branch address; the chosen perceptron computes a dot
 * product between its signed weights and the (bipolar) history bits.
 * Its key property — and the reason the paper favors it as a critic
 * component — is that it scales to much longer histories than
 * counter-table schemes, so future bits can be added to its input
 * without sacrificing as much history.
 *
 * Storage is structure-of-arrays (DESIGN.md §12): the bias weights
 * live in their own array and each perceptron's history weights
 * occupy a row padded to a 64-byte multiple, so the SIMD dot-product
 * and train kernels (predictors/simd.hh) run full-width vector
 * operations with no tails — pad lanes hold weight 0 and contribute
 * nothing. The reported sizeBits() stays the logical cost
 * (perceptrons x (history + bias) x 8), not the padded footprint.
 */

#ifndef PCBP_PREDICTORS_PERCEPTRON_HH
#define PCBP_PREDICTORS_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"
#include "predictors/simd.hh"

namespace pcbp
{

class Perceptron final : public DirectionPredictor
{
  public:
    /**
     * @param num_perceptrons Pool size (any positive value; selection
     *        is modulo, as in the original paper).
     * @param history_bits Number of history bits (weights per
     *        perceptron is history_bits + 1 for the bias weight).
     */
    Perceptron(std::size_t num_perceptrons, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void predictBatch(const PredictQuery *queries, std::size_t n,
                      bool *out) override;
    void trainBatch(const TrainItem *items, std::size_t n) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<Perceptron>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

    /**
     * Dot-product output for the branch; the prediction is
     * output >= 0. Exposed so tests and confidence-style clients can
     * inspect the margin.
     */
    int output(Addr pc, const HistoryRegister &hist) const;

    /** Training threshold theta = floor(1.93 * h + 14). */
    int threshold() const { return theta; }

  private:
    std::size_t select(Addr pc) const;

    /**
     * History weights [w1 .. wh], one padded row per perceptron
     * (rowStride bytes; pad weights are always 0).
     */
    std::vector<std::int8_t> weights;
    /** Bias weights, one per perceptron (input fixed at +1). */
    std::vector<std::int8_t> biases;
    std::size_t numPerceptrons;
    unsigned histBits;
    std::size_t rowStride;
    int theta;
    /** Lemire fast-mod constant for select() (exact for 32-bit pc). */
    std::uint64_t modMul;
    /** SIMD kernels, resolved once at construction. */
    simd::DotFn dot;
    simd::TrainFn train;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_PERCEPTRON_HH
