/**
 * @file
 * Perceptron predictor (Jiménez & Lin). A pool of perceptrons is
 * selected by branch address; the chosen perceptron computes a dot
 * product between its signed weights and the (bipolar) history bits.
 * Its key property — and the reason the paper favors it as a critic
 * component — is that it scales to much longer histories than
 * counter-table schemes, so future bits can be added to its input
 * without sacrificing as much history.
 */

#ifndef PCBP_PREDICTORS_PERCEPTRON_HH
#define PCBP_PREDICTORS_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"

namespace pcbp
{

class Perceptron final : public DirectionPredictor
{
  public:
    /**
     * @param num_perceptrons Pool size (any positive value; selection
     *        is modulo, as in the original paper).
     * @param history_bits Number of history bits (weights per
     *        perceptron is history_bits + 1 for the bias weight).
     */
    Perceptron(std::size_t num_perceptrons, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<Perceptron>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

    /**
     * Dot-product output for the branch; the prediction is
     * output >= 0. Exposed so tests and confidence-style clients can
     * inspect the margin.
     */
    int output(Addr pc, const HistoryRegister &hist) const;

    /** Training threshold theta = floor(1.93 * h + 14). */
    int threshold() const { return theta; }

  private:
    std::size_t select(Addr pc) const;

    /** Weights, laid out per perceptron: [bias, w1 .. wh]. */
    std::vector<std::int8_t> weights;
    std::size_t numPerceptrons;
    unsigned histBits;
    int theta;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_PERCEPTRON_HH
