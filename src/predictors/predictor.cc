#include "predictors/predictor.hh"

#include "obs/stat_registry.hh"

namespace pcbp
{

// Geometry is config-derived and identical every run; setMax keeps
// it stable when per-cell registries covering different configs are
// merged into one run-wide dump (the largest config wins).

void
DirectionPredictor::exportStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    reg.setMax(prefix + ".size_bits", sizeBits());
    reg.setMax(prefix + ".history_bits", historyLength());
}

void
FilteredPredictor::exportStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.setMax(prefix + ".size_bits", sizeBits());
    reg.setMax(prefix + ".bor_bits", borBits());
}

} // namespace pcbp
