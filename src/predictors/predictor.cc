#include "predictors/predictor.hh"

#include "obs/stat_registry.hh"

namespace pcbp
{

void
DirectionPredictor::predictBatch(const PredictQuery *queries,
                                 std::size_t n, bool *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = predict(queries[i].pc, queries[i].hist);
}

void
DirectionPredictor::trainBatch(const TrainItem *items, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        update(items[i].pc, items[i].hist, items[i].taken);
}

// Geometry is config-derived and identical every run; setMax keeps
// it stable when per-cell registries covering different configs are
// merged into one run-wide dump (the largest config wins).

void
DirectionPredictor::exportStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    reg.setMax(prefix + ".size_bits", sizeBits());
    reg.setMax(prefix + ".history_bits", historyLength());
}

void
FilteredPredictor::exportStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.setMax(prefix + ".size_bits", sizeBits());
    reg.setMax(prefix + ".bor_bits", borBits());
}

} // namespace pcbp
