/**
 * @file
 * Abstract interfaces for branch direction predictors.
 *
 * Two kinds of components exist in a prophet/critic hybrid:
 *
 * - DirectionPredictor: a conventional history-based predictor. It
 *   is stateless with respect to history: the caller (the hybrid or
 *   the simulator driver) owns the branch history register and
 *   passes it in, which centralizes speculative update and
 *   checkpoint/repair exactly as the paper describes (§3.2, §3.3).
 *
 * - FilteredPredictor: a critic-side predictor that may decline to
 *   provide a critique (tag miss in its filter, §4). Its history
 *   input is the branch outcome register (BOR), which contains both
 *   history and future bits.
 *
 * Ownership and lifetime: predictors are built by the factories
 * (makeProphet / makeCritic) as unique_ptrs and owned by exactly one
 * ProphetCriticHybrid (or test); they hold no references to the
 * caller's state — the HistoryRegister is passed into every call and
 * never retained. Instances are not thread-safe and are never
 * shared: parallel layers (driver sets, the sweep runner) build one
 * predictor per run from the spec instead.
 *
 * Determinism contract: predict/update/critique/train are pure
 * functions of (construction parameters, call sequence). No
 * predictor may read clocks, RNGs, or global state, which is what
 * lets golden tests pin exact counts and the sweep/report layers
 * promise byte-identical results for any execution order.
 */

#ifndef PCBP_PREDICTORS_PREDICTOR_HH
#define PCBP_PREDICTORS_PREDICTOR_HH

#include <cstddef>
#include <memory>
#include <string>

#include "common/history_register.hh"
#include "common/types.hh"

namespace pcbp
{

class StatRegistry;

class DirectionPredictor;
class FilteredPredictor;
using DirectionPredictorPtr = std::unique_ptr<DirectionPredictor>;
using FilteredPredictorPtr = std::unique_ptr<FilteredPredictor>;

/** One prediction request of a batched lookup. */
struct PredictQuery
{
    Addr pc = 0;
    HistoryRegister hist;
};

/** One training item of a batched update. */
struct TrainItem
{
    Addr pc = 0;
    HistoryRegister hist;
    bool taken = false;
};

/**
 * Interface for conventional direction predictors (prophets and
 * unfiltered critics).
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /**
     * Predict the direction of the branch at @p pc.
     *
     * @param pc Branch address.
     * @param hist History context (BHR for prophets; BOR for
     *        unfiltered critics).
     * @return true for taken.
     */
    virtual bool predict(Addr pc, const HistoryRegister &hist) = 0;

    /**
     * Train the pattern tables with the resolved outcome. Called
     * non-speculatively at commit with the same history context that
     * produced the prediction (§3.2).
     */
    virtual void update(Addr pc, const HistoryRegister &hist,
                        bool taken) = 0;

    /**
     * Batched lookup: fill @p out[i] with predict(queries[i]) for
     * every i < n. Semantically identical to calling predict() n
     * times in order — the base implementation does exactly that, so
     * every registry kind keeps working — but predictors with SIMD
     * kernels (the perceptron family) override it to amortize
     * dispatch and pipeline their table accesses. Like predict(),
     * this may touch speculative-state-free internals only; the
     * determinism contract applies unchanged.
     */
    virtual void predictBatch(const PredictQuery *queries,
                              std::size_t n, bool *out);

    /**
     * Batched training: apply update(items[i]) for every i < n, in
     * order. Training is stateful, so overrides must preserve the
     * sequential semantics exactly (item i trains against the state
     * left by items 0..i-1); the base implementation is the
     * sequential loop itself.
     */
    virtual void trainBatch(const TrainItem *items, std::size_t n);

    /** Clear all prediction state. */
    virtual void reset() = 0;

    /**
     * Deep copy, trained state included: the clone's future
     * predict/update sequence behaves exactly as this predictor's
     * would, with no aliasing between the two. This is the snapshot
     * seam behind fork-based sweep execution (DESIGN.md §11); the
     * determinism contract above is what makes a clone equivalent to
     * replaying the call sequence.
     */
    virtual DirectionPredictorPtr clone() const = 0;

    /** Storage cost in bits (counts counters, weights, tags, LRU). */
    virtual std::size_t sizeBits() const = 0;

    /** Number of history bits this predictor reads. */
    virtual unsigned historyLength() const = 0;

    /** Human-readable name, e.g.\ "gshare-8KB". */
    virtual std::string name() const = 0;

    /**
     * Export predictor statistics into @p reg's sim section under
     * `prefix.*`. The base implementation reports geometry
     * (size_bits, history_bits); predictors with interesting
     * internal counters (TAGE allocation churn, say) extend it.
     * Exported values must stay pure functions of the call sequence
     * — no clocks — so dumps remain deterministic.
     */
    virtual void exportStats(StatRegistry &reg,
                             const std::string &prefix) const;

    /** Storage cost in bytes, rounded up. */
    std::size_t sizeBytes() const { return (sizeBits() + 7) / 8; }
};

/** Result of asking a filtered critic for a critique. */
struct CritiqueResult
{
    /** False on a filter (tag) miss: implicit agreement. */
    bool provided = false;
    /** Direction prediction; meaningful only when provided. */
    bool taken = false;
};

/**
 * Interface for critic-side predictors with a built-in filter.
 */
class FilteredPredictor
{
  public:
    virtual ~FilteredPredictor() = default;

    /**
     * Query the critic. A tag miss yields provided = false, meaning
     * the critic implicitly agrees with the prophet.
     */
    virtual CritiqueResult critique(Addr pc,
                                    const HistoryRegister &bor) = 0;

    /**
     * Commit-time training (§3.2, §4). Trains the prediction
     * structures on a filter hit; allocates a new filter entry when
     * the branch missed the filter and the final prediction was
     * wrong.
     *
     * @param pc Branch address.
     * @param bor The BOR value used when the critique was made.
     * @param taken Resolved direction of the branch.
     * @param mispredicted True when the final prediction was wrong.
     */
    virtual void train(Addr pc, const HistoryRegister &bor, bool taken,
                       bool mispredicted) = 0;

    /** Clear all state. */
    virtual void reset() = 0;

    /** As DirectionPredictor::clone(): deep copy, trained state
     *  and filter entries included. */
    virtual FilteredPredictorPtr clone() const = 0;

    /** Storage cost in bits. */
    virtual std::size_t sizeBits() const = 0;

    /** Number of BOR bits this critic reads (history + future). */
    virtual unsigned borBits() const = 0;

    /** Human-readable name. */
    virtual std::string name() const = 0;

    /** As DirectionPredictor::exportStats (size_bits, bor_bits). */
    virtual void exportStats(StatRegistry &reg,
                             const std::string &prefix) const;

    std::size_t sizeBytes() const { return (sizeBits() + 7) / 8; }
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_PREDICTOR_HH
