#include "predictors/simd.hh"

#include <immintrin.h>

#include <cstdlib>
#include <cstring>

namespace pcbp
{
namespace simd
{

namespace
{

/** Bits [64b, 64b+64) of the (lo, hi) pair, for block b in {0, 1}. */
inline std::uint64_t
blockBits(std::uint64_t lo, std::uint64_t hi, unsigned b)
{
    return b == 0 ? lo : hi;
}

} // namespace

int
dotBipolarScalar(const std::int8_t *w, unsigned n, std::uint64_t bits_lo,
                 std::uint64_t bits_hi)
{
    int sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        const bool bit =
            ((i < 64 ? bits_lo >> i : bits_hi >> (i - 64)) & 1) != 0;
        const int wv = w[i];
        sum += bit ? wv : -wv;
    }
    return sum;
}

void
trainBipolarScalar(std::int8_t *w, unsigned n, std::uint64_t bits_lo,
                   std::uint64_t bits_hi, bool taken)
{
    for (unsigned i = 0; i < n; ++i) {
        const bool bit =
            ((i < 64 ? bits_lo >> i : bits_hi >> (i - 64)) & 1) != 0;
        std::int8_t &weight = w[i];
        if (bit == taken) {
            if (weight < 127)
                ++weight;
        } else {
            if (weight > -127)
                --weight;
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 path. 32 int8 lanes per step; the history bits are expanded to
// byte masks with the classic shuffle+testbit idiom. All sums are
// widened to int16 then int32 before accumulation, so the arithmetic
// is exact (integers, order-independent) — bit-identical to scalar.
// ---------------------------------------------------------------------

namespace
{

__attribute__((target("avx2"))) inline __m256i
expandBits32(std::uint32_t bits)
{
    // Byte i of the result is 0xFF iff bit i of `bits` is set.
    const __m256i v = _mm256_set1_epi32(static_cast<int>(bits));
    const __m256i shuf = _mm256_setr_epi8(
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2,
        2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
    const __m256i rep = _mm256_shuffle_epi8(v, shuf);
    const __m256i sel = _mm256_setr_epi8(
        1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128, 1,
        2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
    return _mm256_cmpeq_epi8(_mm256_and_si256(rep, sel), sel);
}

__attribute__((target("avx2"))) int
dotBipolarAvx2(const std::int8_t *w, unsigned n, std::uint64_t bits_lo,
               std::uint64_t bits_hi)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    const unsigned blocks = (n + 63) / 64;
    for (unsigned b = 0; b < blocks; ++b) {
        const std::uint64_t bits = blockBits(bits_lo, bits_hi, b);
        for (unsigned half = 0; half < 2; ++half) {
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w + b * 64 +
                                                  half * 32));
            const __m256i m = expandBits32(
                static_cast<std::uint32_t>(bits >> (half * 32)));
            // bit set -> +w, clear -> -w. Pad lanes hold weight 0, so
            // they contribute nothing either way.
            const __m256i sel = _mm256_blendv_epi8(
                _mm256_sub_epi8(zero, wv), wv, m);
            const __m256i lo16 =
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(sel));
            const __m256i hi16 = _mm256_cvtepi8_epi16(
                _mm256_extracti128_si256(sel, 1));
            const __m256i s16 = _mm256_add_epi16(lo16, hi16);
            acc = _mm256_add_epi32(
                acc, _mm256_madd_epi16(s16, _mm256_set1_epi16(1)));
        }
    }
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
    return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) void
trainBipolarAvx2(std::int8_t *w, unsigned n, std::uint64_t bits_lo,
                 std::uint64_t bits_hi, bool taken)
{
    const __m256i plus1 = _mm256_set1_epi8(1);
    const __m256i minus1 = _mm256_set1_epi8(-1);
    const __m256i floor_ = _mm256_set1_epi8(-127);
    const unsigned blocks = (n + 63) / 64;
    for (unsigned b = 0; b < blocks; ++b) {
        const std::uint64_t bits = blockBits(bits_lo, bits_hi, b);
        const unsigned base = b * 64;
        const std::uint64_t valid =
            n - base >= 64
                ? ~std::uint64_t(0)
                : ((std::uint64_t(1) << (n - base)) - 1);
        for (unsigned half = 0; half < 2; ++half) {
            __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<__m256i *>(w + base + half * 32));
            const __m256i m = expandBits32(
                static_cast<std::uint32_t>(bits >> (half * 32)));
            // agree lanes (bit == taken) move +1, the rest -1.
            const __m256i agree =
                taken ? m
                      : _mm256_xor_si256(m, _mm256_set1_epi8(-1));
            __m256i delta = _mm256_blendv_epi8(minus1, plus1, agree);
            // Zero the delta on pad lanes so a full-width store
            // leaves the padding untouched (weights there stay 0).
            const __m256i vm = expandBits32(
                static_cast<std::uint32_t>(valid >> (half * 32)));
            delta = _mm256_and_si256(delta, vm);
            // Saturating add clamps 127+1 at 127; the max() pulls the
            // -128 saturation back up to the scalar clamp of -127.
            wv = _mm256_max_epi8(_mm256_adds_epi8(wv, delta), floor_);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(w + base + half * 32), wv);
        }
    }
}

// ---------------------------------------------------------------------
// AVX-512BW path: 64 int8 lanes per step, the 64 history bits ARE the
// lane mask, no byte expansion needed.
// ---------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw"))) int
dotBipolarAvx512(const std::int8_t *w, unsigned n, std::uint64_t bits_lo,
                 std::uint64_t bits_hi)
{
    const __m512i zero = _mm512_setzero_si512();
    __m512i acc = zero;
    const unsigned blocks = (n + 63) / 64;
    for (unsigned b = 0; b < blocks; ++b) {
        const __mmask64 m =
            static_cast<__mmask64>(blockBits(bits_lo, bits_hi, b));
        const __m512i wv = _mm512_loadu_si512(w + b * 64);
        const __m512i sel =
            _mm512_mask_blend_epi8(m, _mm512_sub_epi8(zero, wv), wv);
        const __m512i lo16 =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(sel));
        const __m512i hi16 =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(sel, 1));
        const __m512i s16 = _mm512_add_epi16(lo16, hi16);
        acc = _mm512_add_epi32(
            acc, _mm512_madd_epi16(s16, _mm512_set1_epi16(1)));
    }
    return _mm512_reduce_add_epi32(acc);
}

__attribute__((target("avx512f,avx512bw"))) void
trainBipolarAvx512(std::int8_t *w, unsigned n, std::uint64_t bits_lo,
                   std::uint64_t bits_hi, bool taken)
{
    const __m512i plus1 = _mm512_set1_epi8(1);
    const __m512i minus1 = _mm512_set1_epi8(-1);
    const __m512i floor_ = _mm512_set1_epi8(-127);
    const unsigned blocks = (n + 63) / 64;
    for (unsigned b = 0; b < blocks; ++b) {
        const std::uint64_t bits = blockBits(bits_lo, bits_hi, b);
        const unsigned base = b * 64;
        const std::uint64_t valid =
            n - base >= 64
                ? ~std::uint64_t(0)
                : ((std::uint64_t(1) << (n - base)) - 1);
        // agree lanes (bit == taken) move +1, the rest -1; pad lanes
        // get delta 0 via the zero-masked move so the full-width
        // store leaves the padding weights at 0.
        const __mmask64 agree = static_cast<__mmask64>(
            taken ? bits : ~bits);
        __m512i delta = _mm512_mask_blend_epi8(agree, minus1, plus1);
        delta = _mm512_maskz_mov_epi8(static_cast<__mmask64>(valid),
                                      delta);
        __m512i wv = _mm512_loadu_si512(w + base);
        wv = _mm512_max_epi8(_mm512_adds_epi8(wv, delta), floor_);
        _mm512_storeu_si512(w + base, wv);
    }
}

enum class Level
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

Level
resolveLevel()
{
    Level cpu = Level::Scalar;
    if (__builtin_cpu_supports("avx2"))
        cpu = Level::Avx2;
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw")) {
        cpu = Level::Avx512;
    }
    // PCBP_SIMD caps (never raises) the level: forcing a path the CPU
    // lacks would fault.
    if (const char *env = std::getenv("PCBP_SIMD")) {
        Level cap = cpu;
        if (std::strcmp(env, "scalar") == 0)
            cap = Level::Scalar;
        else if (std::strcmp(env, "avx2") == 0)
            cap = Level::Avx2;
        else if (std::strcmp(env, "avx512") == 0)
            cap = Level::Avx512;
        if (static_cast<int>(cap) < static_cast<int>(cpu))
            cpu = cap;
    }
    return cpu;
}

Level
activeLevel()
{
    static const Level level = resolveLevel();
    return level;
}

} // namespace

DotFn
dotKernel()
{
    static const DotFn fn = [] {
        switch (activeLevel()) {
          case Level::Avx512:
            return &dotBipolarAvx512;
          case Level::Avx2:
            return &dotBipolarAvx2;
          default:
            return &dotBipolarScalar;
        }
    }();
    return fn;
}

TrainFn
trainKernel()
{
    static const TrainFn fn = [] {
        switch (activeLevel()) {
          case Level::Avx512:
            return &trainBipolarAvx512;
          case Level::Avx2:
            return &trainBipolarAvx2;
          default:
            return &trainBipolarScalar;
        }
    }();
    return fn;
}

const char *
levelName()
{
    switch (activeLevel()) {
      case Level::Avx512:
        return "avx512";
      case Level::Avx2:
        return "avx2";
      default:
        return "scalar";
    }
}

} // namespace simd
} // namespace pcbp
