/**
 * @file
 * Runtime-dispatched SIMD kernels for the bipolar dot products and
 * weight updates at the heart of the perceptron family.
 *
 * The repository builds without -march flags so one binary runs on
 * any x86-64 host; the vector paths are compiled per-function with
 * target attributes and selected once at startup from CPUID (an
 * AVX-512BW path, an AVX2 path, and the scalar reference). All three
 * paths perform the same integer arithmetic — int8 weights widened
 * to int16/int32 before any addition — so their results are
 * bit-identical to the scalar reference on every input; the
 * differential and property tests pin exactly that (DESIGN.md §12).
 *
 * Kernel semantics (n <= 128; `bits` bit i = direction of the i-th
 * input, 1 = taken):
 *
 *   dotBipolar:   sum over i < n of (bits[i] ? w[i] : -w[i])
 *   trainBipolar: w[i] += (bits[i] == taken) ? +1 : -1, saturated to
 *                 the symmetric range [-127, 127] (the classic
 *                 perceptron clamp; never reaches -128)
 *
 * The weight span may be read up to a 64-byte granularity: callers
 * pad each weight row to a multiple of 64 bytes (the SoA layout of
 * Perceptron), which keeps every vector access in-bounds without
 * per-call masked tails.
 *
 * `PCBP_SIMD` (env: "scalar", "avx2", "avx512") caps the dispatch
 * level below what CPUID reports — the equivalence tests use it to
 * exercise every path on one machine. It is read once, at first use.
 */

#ifndef PCBP_PREDICTORS_SIMD_HH
#define PCBP_PREDICTORS_SIMD_HH

#include <cstdint>

namespace pcbp
{
namespace simd
{

/** Signature of the bipolar dot-product kernel. */
using DotFn = int (*)(const std::int8_t *w, unsigned n,
                      std::uint64_t bits_lo, std::uint64_t bits_hi);

/** Signature of the bipolar train kernel. */
using TrainFn = void (*)(std::int8_t *w, unsigned n,
                         std::uint64_t bits_lo, std::uint64_t bits_hi,
                         bool taken);

/** Scalar reference implementations (always available; the property
 *  tests compare the dispatched kernels against these). */
int dotBipolarScalar(const std::int8_t *w, unsigned n,
                     std::uint64_t bits_lo, std::uint64_t bits_hi);
void trainBipolarScalar(std::int8_t *w, unsigned n,
                        std::uint64_t bits_lo, std::uint64_t bits_hi,
                        bool taken);

/** The dispatched kernels (resolved once from CPUID + PCBP_SIMD). */
DotFn dotKernel();
TrainFn trainKernel();

/** Active dispatch level: "avx512", "avx2", or "scalar". */
const char *levelName();

/** Bipolar dot product via the dispatched kernel. */
inline int
dotBipolar(const std::int8_t *w, unsigned n, std::uint64_t bits_lo,
           std::uint64_t bits_hi)
{
    return dotKernel()(w, n, bits_lo, bits_hi);
}

/** Bipolar weight update via the dispatched kernel. */
inline void
trainBipolar(std::int8_t *w, unsigned n, std::uint64_t bits_lo,
             std::uint64_t bits_hi, bool taken)
{
    trainKernel()(w, n, bits_lo, bits_hi, taken);
}

} // namespace simd
} // namespace pcbp

#endif // PCBP_PREDICTORS_SIMD_HH
