#include "predictors/skewed_perceptron.hh"

#include <cstdlib>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

SkewedPerceptron::SkewedPerceptron(std::size_t rows_per_bank,
                                   unsigned history_bits)
    : weights(numBanks * rows_per_bank * (history_bits + 1), 0),
      rowsPerBank(rows_per_bank),
      histBits(history_bits),
      theta(static_cast<int>(1.93 * history_bits + 14))
{
    pcbp_assert(rows_per_bank > 0);
    pcbp_assert(history_bits >= 1 &&
                history_bits <= HistoryRegister::capacity);
}

std::size_t
SkewedPerceptron::rowOf(unsigned bank, Addr pc,
                        const HistoryRegister &hist) const
{
    // Bank 0: address only. Banks 1 and 2: decorrelated hashes of
    // the address plus a short history slice, so two branches that
    // alias in one bank are spread apart in the others. mix64 with
    // per-bank multipliers gives full-avalanche decorrelation (a
    // single LFSR skew step preserves power-of-two address strides).
    const std::uint64_t a = pc >> 2;
    std::uint64_t key;
    switch (bank) {
      case 0:
        key = a;
        break;
      case 1:
        key = mix64(a * 0x9e3779b97f4a7c15ULL) ^ hist.low(8);
        break;
      default:
        key = mix64(a * 0xc2b2ae3d27d4eb4fULL) ^ (hist.low(16) >> 8);
        break;
    }
    return key % rowsPerBank;
}

int
SkewedPerceptron::output(Addr pc, const HistoryRegister &hist) const
{
    int sum = 0;
    for (unsigned b = 0; b < numBanks; ++b) {
        const std::int8_t *w =
            &weights[(b * rowsPerBank + rowOf(b, pc, hist)) *
                     (histBits + 1)];
        sum += w[0];
        for (unsigned i = 0; i < histBits; ++i)
            sum += hist.bit(i) ? w[i + 1] : -w[i + 1];
    }
    return sum;
}

bool
SkewedPerceptron::predict(Addr pc, const HistoryRegister &hist)
{
    return output(pc, hist) >= 0;
}

void
SkewedPerceptron::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const int out = output(pc, hist);
    const bool pred = out >= 0;
    if (pred == taken && std::abs(out) > theta)
        return;

    auto bump = [](std::int8_t &weight, bool up) {
        if (up) {
            if (weight < 127)
                ++weight;
        } else {
            if (weight > -127)
                --weight;
        }
    };
    for (unsigned b = 0; b < numBanks; ++b) {
        std::int8_t *w =
            &weights[(b * rowsPerBank + rowOf(b, pc, hist)) *
                     (histBits + 1)];
        bump(w[0], taken);
        for (unsigned i = 0; i < histBits; ++i)
            bump(w[i + 1], hist.bit(i) == taken);
    }
}

void
SkewedPerceptron::reset()
{
    std::fill(weights.begin(), weights.end(), 0);
}

std::size_t
SkewedPerceptron::sizeBits() const
{
    return weights.size() * 8;
}

std::string
SkewedPerceptron::name() const
{
    return "skewed-perceptron-" + std::to_string(numBanks) + "x" +
           std::to_string(rowsPerBank) + "x" + std::to_string(histBits);
}

} // namespace pcbp
