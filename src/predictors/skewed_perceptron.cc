#include "predictors/skewed_perceptron.hh"

#include <algorithm>
#include <cstdlib>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

namespace
{

std::size_t
strideFor(unsigned history_bits)
{
    return (static_cast<std::size_t>(history_bits) + 63) / 64 * 64;
}

} // namespace

SkewedPerceptron::SkewedPerceptron(std::size_t rows_per_bank,
                                   unsigned history_bits)
    : weights(numBanks * rows_per_bank * strideFor(history_bits), 0),
      biases(numBanks * rows_per_bank, 0),
      rowsPerBank(rows_per_bank),
      histBits(history_bits),
      rowStride(strideFor(history_bits)),
      theta(static_cast<int>(1.93 * history_bits + 14)),
      dot(simd::dotKernel()),
      train(simd::trainKernel())
{
    pcbp_assert(rows_per_bank > 0);
    pcbp_assert(history_bits >= 1 &&
                history_bits <= HistoryRegister::capacity);
}

std::size_t
SkewedPerceptron::rowOf(unsigned bank, Addr pc,
                        const HistoryRegister &hist) const
{
    // Bank 0: address only. Banks 1 and 2: decorrelated hashes of
    // the address plus a short history slice, so two branches that
    // alias in one bank are spread apart in the others. mix64 with
    // per-bank multipliers gives full-avalanche decorrelation (a
    // single LFSR skew step preserves power-of-two address strides).
    const std::uint64_t a = pc >> 2;
    std::uint64_t key;
    switch (bank) {
      case 0:
        key = a;
        break;
      case 1:
        key = mix64(a * 0x9e3779b97f4a7c15ULL) ^ hist.low(8);
        break;
      default:
        key = mix64(a * 0xc2b2ae3d27d4eb4fULL) ^ (hist.low(16) >> 8);
        break;
    }
    return key % rowsPerBank;
}

int
SkewedPerceptron::output(Addr pc, const HistoryRegister &hist) const
{
    int sum = 0;
    for (unsigned b = 0; b < numBanks; ++b) {
        const std::size_t row = b * rowsPerBank + rowOf(b, pc, hist);
        sum += biases[row] + dot(&weights[row * rowStride], histBits,
                                 hist.word0(), hist.word1());
    }
    return sum;
}

bool
SkewedPerceptron::predict(Addr pc, const HistoryRegister &hist)
{
    return output(pc, hist) >= 0;
}

void
SkewedPerceptron::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const int out = output(pc, hist);
    const bool pred = out >= 0;
    if (pred == taken && std::abs(out) > theta)
        return;

    for (unsigned b = 0; b < numBanks; ++b) {
        const std::size_t row = b * rowsPerBank + rowOf(b, pc, hist);
        std::int8_t &bias = biases[row];
        if (taken) {
            if (bias < 127)
                ++bias;
        } else {
            if (bias > -127)
                --bias;
        }
        train(&weights[row * rowStride], histBits, hist.word0(),
              hist.word1(), taken);
    }
}

void
SkewedPerceptron::reset()
{
    std::fill(weights.begin(), weights.end(), 0);
    std::fill(biases.begin(), biases.end(), 0);
}

std::size_t
SkewedPerceptron::sizeBits() const
{
    // Logical cost: (history + bias) int8 weights per row per bank;
    // the 64-byte SoA row padding is not charged.
    return numBanks * rowsPerBank * (histBits + 1) * 8;
}

std::string
SkewedPerceptron::name() const
{
    return "skewed-perceptron-" + std::to_string(numBanks) + "x" +
           std::to_string(rowsPerBank) + "x" + std::to_string(histBits);
}

} // namespace pcbp
