/**
 * @file
 * Redundant-history skewed perceptron (Seznec, IRISA TR-1554) — one
 * of the predictors §9 of the paper suggests trying as a prophet or
 * critic. Several small perceptron banks are selected by *different*
 * hashes of the branch address (and, for the skewed banks, of a slice
 * of the history); their outputs are summed. Redundancy de-aliases
 * the weight storage the same way gskew de-aliases counter tables.
 */

#ifndef PCBP_PREDICTORS_SKEWED_PERCEPTRON_HH
#define PCBP_PREDICTORS_SKEWED_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"
#include "predictors/simd.hh"

namespace pcbp
{

class SkewedPerceptron final : public DirectionPredictor
{
  public:
    /**
     * @param rows_per_bank Weight rows in each of the 3 banks.
     * @param history_bits History bits (split across banks; each
     *        bank sees the full history but owns a third of the
     *        weight budget).
     */
    SkewedPerceptron(std::size_t rows_per_bank, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<SkewedPerceptron>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

    /** Summed dot-product output (prediction = output >= 0). */
    int output(Addr pc, const HistoryRegister &hist) const;

  private:
    std::size_t rowOf(unsigned bank, Addr pc,
                      const HistoryRegister &hist) const;

    static constexpr unsigned numBanks = 3;

    /**
     * Per-bank history weights, one padded row per (bank, row) pair
     * (rowStride bytes, pad weights 0 — see perceptron.hh for the
     * SoA layout this shares).
     */
    std::vector<std::int8_t> weights;
    /** Bias weights, one per (bank, row) pair. */
    std::vector<std::int8_t> biases;
    std::size_t rowsPerBank;
    unsigned histBits;
    std::size_t rowStride;
    int theta;
    simd::DotFn dot;
    simd::TrainFn train;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_SKEWED_PERCEPTRON_HH
