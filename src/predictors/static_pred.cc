// StaticPredictor is header-only; this translation unit exists to keep
// one .cc per module and to anchor the vtable.
#include "predictors/static_pred.hh"
