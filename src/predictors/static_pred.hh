/**
 * @file
 * Static baselines: always-taken and always-not-taken. Useful as
 * floors in comparisons and as trivial components in tests.
 */

#ifndef PCBP_PREDICTORS_STATIC_PRED_HH
#define PCBP_PREDICTORS_STATIC_PRED_HH

#include "predictors/predictor.hh"

namespace pcbp
{

class StaticPredictor final : public DirectionPredictor
{
  public:
    explicit StaticPredictor(bool predict_taken)
        : predTaken(predict_taken)
    {
    }

    bool predict(Addr, const HistoryRegister &) override
    {
        return predTaken;
    }

    void update(Addr, const HistoryRegister &, bool) override {}
    void reset() override {}

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<StaticPredictor>(*this);
    }

    std::size_t sizeBits() const override { return 0; }
    unsigned historyLength() const override { return 0; }

    std::string
    name() const override
    {
        return predTaken ? "always-taken" : "always-not-taken";
    }

  private:
    bool predTaken;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_STATIC_PRED_HH
