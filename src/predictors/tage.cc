#include "predictors/tage.hh"

#include <algorithm>

#include "common/bit_utils.hh"
#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

Tage::Tage(const TageConfig &config)
    : cfg(config), baseIndexBits(log2Floor(config.baseEntries))
{
    pcbp_assert(isPowerOfTwo(cfg.baseEntries),
                "tage base size must be 2^n");
    pcbp_assert(!cfg.tables.empty(), "tage needs tagged tables");
    pcbp_assert(cfg.counterBits >= 2 && cfg.usefulBits >= 1);

    base = SatCounterTable(cfg.baseEntries, 2, 1);

    unsigned prev_hist = 0;
    for (const TageTableConfig &tc : cfg.tables) {
        pcbp_assert(isPowerOfTwo(tc.entries),
                    "tage table size must be 2^n");
        pcbp_assert(tc.historyLength > prev_hist,
                    "tage histories must strictly increase");
        pcbp_assert(tc.historyLength <= HistoryRegister::capacity);
        pcbp_assert(tc.tagBits >= 4 && tc.tagBits <= 16);
        prev_hist = tc.historyLength;

        Table t;
        t.cfg = tc;
        t.indexBits = log2Floor(tc.entries);
        t.ctrs = SatCounterTable(tc.entries, cfg.counterBits,
                                 (1u << (cfg.counterBits - 1)) - 1);
        t.tags.assign(tc.entries, 0);
        t.useful = SatCounterTable(tc.entries, cfg.usefulBits, 0);
        tables.push_back(std::move(t));
    }
    maxHistory = cfg.tables.back().historyLength;
    providerCommits.assign(tables.size(), 0);
}

std::size_t
Tage::baseIndex(Addr pc) const
{
    return foldBits(pc >> 2, baseIndexBits) & maskBits(baseIndexBits);
}

std::size_t
Tage::tableIndex(const Table &t, Addr pc,
                 const HistoryRegister &hist) const
{
    // Decorrelate banks by mixing the table's history length into the
    // address hash; the folded history does the rest.
    const std::uint64_t addr =
        foldBits(mix64(pc >> 2) ^ (t.cfg.historyLength * 0x9e3779b9ull),
                 t.indexBits);
    const std::uint64_t h =
        hist.foldedLow(t.cfg.historyLength, t.indexBits);
    return (addr ^ h) & maskBits(t.indexBits);
}

std::uint32_t
Tage::tableTag(const Table &t, Addr pc, const HistoryRegister &hist) const
{
    // Two different-width folds of the same history decorrelate the
    // tag from the index (Seznec's CSR1/CSR2 pair).
    const unsigned bits = t.cfg.tagBits;
    std::uint64_t tag = foldBits(mix64(pc >> 2), bits);
    tag ^= hist.foldedLow(t.cfg.historyLength, bits);
    tag ^= hist.foldedLow(t.cfg.historyLength, bits - 1) << 1;
    return static_cast<std::uint32_t>(tag & maskBits(bits));
}

Tage::Match
Tage::lookup(Addr pc, const HistoryRegister &hist) const
{
    Match m;
    m.alternatePred = base.taken(baseIndex(pc));
    m.providerPred = m.alternatePred;
    for (int i = int(tables.size()) - 1; i >= 0; --i) {
        const Table &t = tables[i];
        const std::size_t idx = tableIndex(t, pc, hist);
        if (t.tags[idx] !=
            static_cast<std::uint16_t>(tableTag(t, pc, hist))) {
            continue;
        }
        if (m.provider < 0) {
            m.provider = i;
            m.providerPred = t.ctrs.taken(idx);
            // "Newly allocated" signature: weak counter, no proven
            // usefulness yet.
            const unsigned mid = t.ctrs.maxValue() / 2;
            m.providerWeak = t.useful.value(idx) == 0 &&
                             (t.ctrs.value(idx) == mid ||
                              t.ctrs.value(idx) == mid + 1);
        } else {
            m.alternate = i;
            m.alternatePred = t.ctrs.taken(idx);
            break;
        }
    }
    m.prediction = (m.provider >= 0 && m.providerWeak &&
                    useAltOnWeak.taken())
                       ? m.alternatePred
                       : m.providerPred;
    return m;
}

bool
Tage::predict(Addr pc, const HistoryRegister &hist)
{
    return lookup(pc, hist).prediction;
}

void
Tage::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const Match m = lookup(pc, hist);

    if (m.provider >= 0)
        ++providerCommits[std::size_t(m.provider)];
    else
        ++baseCommits;
    if (m.provider >= 0 && m.providerWeak && useAltOnWeak.taken())
        ++altOnWeakUses;

    if (m.provider >= 0) {
        Table &t = tables[m.provider];
        const std::size_t idx = tableIndex(t, pc, hist);

        // Track whether the alternate would have done better on weak
        // providers (drives the use-alt-on-weak policy).
        if (m.providerWeak && m.providerPred != m.alternatePred)
            useAltOnWeak.update(m.alternatePred == taken);

        // Usefulness rewards the provider only where it beats the
        // alternate; a provider the alternate matches is replaceable.
        if (m.providerPred != m.alternatePred)
            t.useful.update(idx, m.providerPred == taken);

        t.ctrs.update(idx, taken);

        // The base keeps learning when it was (or backs) the
        // alternate, so freshly allocated entries fall back well.
        if (m.alternate < 0)
            base.update(baseIndex(pc), taken);
    } else {
        base.update(baseIndex(pc), taken);
    }

    // Allocate into a longer-history table when the final prediction
    // missed: first not-useful entry wins; if every candidate is
    // useful, decay them all so the next miss can allocate (Seznec).
    if (m.prediction != taken &&
        m.provider + 1 < int(tables.size())) {
        bool allocated = false;
        for (std::size_t i = std::size_t(m.provider + 1);
             i < tables.size(); ++i) {
            Table &t = tables[i];
            const std::size_t idx = tableIndex(t, pc, hist);
            if (t.useful.value(idx) != 0)
                continue;
            t.tags[idx] =
                static_cast<std::uint16_t>(tableTag(t, pc, hist));
            t.ctrs.setWeak(idx, taken);
            t.useful.set(idx, 0);
            allocated = true;
            break;
        }
        if (allocated) {
            ++allocations;
        } else {
            ++allocFailures;
            for (std::size_t i = std::size_t(m.provider + 1);
                 i < tables.size(); ++i) {
                Table &t = tables[i];
                t.useful.decrement(tableIndex(t, pc, hist));
            }
        }
    }

    ++updates;
    agePeriodically();
}

void
Tage::agePeriodically()
{
    if (cfg.usefulResetPeriod == 0 ||
        updates % cfg.usefulResetPeriod != 0) {
        return;
    }
    ++agings;
    for (Table &t : tables)
        for (std::size_t i = 0; i < t.useful.size(); ++i)
            t.useful.set(i, t.useful.value(i) >> 1);
}

void
Tage::reset()
{
    base.fill(1);
    for (Table &t : tables) {
        t.ctrs.fill((1u << (cfg.counterBits - 1)) - 1);
        std::fill(t.tags.begin(), t.tags.end(), 0);
        t.useful.fill(0);
    }
    useAltOnWeak.set(8);
    updates = 0;
    providerCommits.assign(tables.size(), 0);
    baseCommits = 0;
    altOnWeakUses = 0;
    allocations = 0;
    allocFailures = 0;
    agings = 0;
}

std::size_t
Tage::sizeBits() const
{
    std::size_t bits = base.size() * 2;
    for (const Table &t : tables)
        bits += t.tags.size() *
                (cfg.counterBits + cfg.usefulBits + t.cfg.tagBits);
    return bits;
}

std::string
Tage::name() const
{
    return "tage" + std::to_string(tables.size()) + "-" +
           std::to_string(sizeBytes() / 1024) + "KB";
}

void
Tage::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    DirectionPredictor::exportStats(reg, prefix);
    reg.add(prefix + ".updates", updates);
    reg.add(prefix + ".base_commits", baseCommits);
    reg.add(prefix + ".alt_on_weak_uses", altOnWeakUses);
    reg.add(prefix + ".allocations", allocations);
    reg.add(prefix + ".alloc_failures", allocFailures);
    reg.add(prefix + ".agings", agings);
    for (std::size_t i = 0; i < tables.size(); ++i) {
        reg.add(prefix + ".bank" + std::to_string(i) +
                    ".provider_commits",
                providerCommits[i]);
    }
}

} // namespace pcbp
