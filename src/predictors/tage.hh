/**
 * @file
 * TAGE predictor (Seznec & Michaud, "A case for (partially) TAgged
 * GEometric history length branch predictors", JILP 2006): a bimodal
 * base predictor backed by several partially-tagged tables indexed
 * with geometrically increasing global history lengths.
 *
 * Prediction comes from the *provider* — the longest-history table
 * whose tag matches — with the next matching table (or the base) as
 * the *alternate*. Each tagged entry carries a signed prediction
 * counter, a tag, and a usefulness counter; allocation on a
 * mispredict claims a not-useful entry in a longer-history table,
 * and the usefulness counters age away periodically so the tables
 * keep adapting across program phases.
 *
 * This is the repro's "modern baseline" prophet ("Branch Prediction
 * Is Not a Solved Problem" measures H2P misses against exactly this
 * class of predictor); it plugs into the factory/budget machinery
 * like every other DirectionPredictor and can serve as the prophet
 * inside the prophet/critic hybrid unchanged.
 */

#ifndef PCBP_PREDICTORS_TAGE_HH
#define PCBP_PREDICTORS_TAGE_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

/** One tagged component table's geometry. */
struct TageTableConfig
{
    std::size_t entries = 1024; //!< power of two
    unsigned tagBits = 8;
    unsigned historyLength = 8; //!< global history bits folded in
};

/** Whole-predictor geometry. */
struct TageConfig
{
    /** Bimodal base table entries (2-bit counters); power of two. */
    std::size_t baseEntries = 4096;

    /** Tagged tables, shortest history first (strictly increasing). */
    std::vector<TageTableConfig> tables;

    /** Width of the tagged-entry prediction counters. */
    unsigned counterBits = 3;

    /** Width of the per-entry usefulness counters. */
    unsigned usefulBits = 2;

    /**
     * Updates between usefulness-aging events; every period the
     * usefulness counters are halved so stale entries become
     * reclaimable. 0 disables aging.
     */
    std::uint64_t usefulResetPeriod = 1u << 18;
};

class Tage final : public DirectionPredictor
{
  public:
    explicit Tage(const TageConfig &config);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<Tage>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return maxHistory; }
    std::string name() const override;

    /** Geometry plus per-bank provider mix and allocation churn. */
    void exportStats(StatRegistry &reg,
                     const std::string &prefix) const override;

    /** Number of tagged component tables (tests/reporting). */
    std::size_t numTables() const { return tables.size(); }

  private:
    /**
     * One tagged component in structure-of-arrays form (DESIGN.md
     * §12): the lookup walk touches tags only until a match, so a
     * row probe costs a 2-byte load instead of dragging the whole
     * {ctr, tag, useful} struct through the cache.
     */
    struct Table
    {
        TageTableConfig cfg;
        unsigned indexBits = 0;
        SatCounterTable ctrs;            //!< prediction counters
        std::vector<std::uint16_t> tags; //!< tagBits <= 16
        SatCounterTable useful;          //!< replacement victim filter
    };

    /** Provider/alternate lookup shared by predict() and update(). */
    struct Match
    {
        int provider = -1;  //!< table index, -1 = base
        int alternate = -1; //!< next-longest hit, -1 = base
        bool providerPred = false;
        bool alternatePred = false;
        bool prediction = false; //!< final (after use-alt-on-weak)
        /** Provider entry looked weakly/newly allocated. */
        bool providerWeak = false;
    };

    std::size_t baseIndex(Addr pc) const;
    std::size_t tableIndex(const Table &t, Addr pc,
                           const HistoryRegister &hist) const;
    std::uint32_t tableTag(const Table &t, Addr pc,
                           const HistoryRegister &hist) const;
    Match lookup(Addr pc, const HistoryRegister &hist) const;
    void agePeriodically();

    SatCounterTable base;
    std::vector<Table> tables;
    TageConfig cfg;
    unsigned baseIndexBits;
    unsigned maxHistory = 0;

    /**
     * USE_ALT_ON_NA (Seznec): when newly-allocated provider entries
     * have been less accurate than the alternate lately, trust the
     * alternate for weak providers. Single global 4-bit counter.
     */
    SatCounter useAltOnWeak{4, 8};

    std::uint64_t updates = 0;

    /**
     * Update-path bookkeeping (once per commit — cold next to the
     * predict path, so these stay on unconditionally). All pure
     * functions of the call sequence; exported by exportStats().
     */
    std::vector<std::uint64_t> providerCommits; //!< per tagged table
    std::uint64_t baseCommits = 0;   //!< base was the provider
    std::uint64_t altOnWeakUses = 0; //!< weak provider, alt trusted
    std::uint64_t allocations = 0;   //!< new tagged entries claimed
    std::uint64_t allocFailures = 0; //!< every candidate useful: decay
    std::uint64_t agings = 0;        //!< usefulness halving events
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_TAGE_HH
