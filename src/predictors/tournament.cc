#include "predictors/tournament.hh"

#include <algorithm>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

Tournament::Tournament(DirectionPredictorPtr c0, DirectionPredictorPtr c1,
                       std::size_t chooser_entries)
    : comp0(std::move(c0)),
      comp1(std::move(c1)),
      chooser(chooser_entries, SatCounter(2, 1)),
      chooserIndexBits(log2Floor(chooser_entries))
{
    pcbp_assert(comp0 && comp1);
    pcbp_assert(isPowerOfTwo(chooser_entries));
}

std::size_t
Tournament::chooseIndex(Addr pc) const
{
    return foldBits(pc >> 2, chooserIndexBits);
}

bool
Tournament::predict(Addr pc, const HistoryRegister &hist)
{
    const bool use1 = chooser[chooseIndex(pc)].taken();
    return use1 ? comp1->predict(pc, hist) : comp0->predict(pc, hist);
}

void
Tournament::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const bool p0 = comp0->predict(pc, hist);
    const bool p1 = comp1->predict(pc, hist);
    // Chooser trains toward the component that was right when they
    // disagree.
    if (p0 != p1)
        chooser[chooseIndex(pc)].update(p1 == taken);
    comp0->update(pc, hist, taken);
    comp1->update(pc, hist, taken);
}

void
Tournament::reset()
{
    comp0->reset();
    comp1->reset();
    for (auto &c : chooser)
        c.set(1);
}

DirectionPredictorPtr
Tournament::clone() const
{
    auto out = std::make_unique<Tournament>(
        comp0->clone(), comp1->clone(), chooser.size());
    out->chooser = chooser;
    return out;
}

std::size_t
Tournament::sizeBits() const
{
    return comp0->sizeBits() + comp1->sizeBits() + chooser.size() * 2;
}

unsigned
Tournament::historyLength() const
{
    return std::max(comp0->historyLength(), comp1->historyLength());
}

std::string
Tournament::name() const
{
    return "tournament(" + comp0->name() + "," + comp1->name() + ")";
}

} // namespace pcbp
