/**
 * @file
 * McFarling tournament hybrid: two component predictors and a
 * selector table of 2-bit counters that learns, per branch, which
 * component to trust. This is the conventional selection-based
 * hybrid the paper contrasts with prophet/critic operation (both
 * components are accessed in parallel with the same history).
 */

#ifndef PCBP_PREDICTORS_TOURNAMENT_HH
#define PCBP_PREDICTORS_TOURNAMENT_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class Tournament final : public DirectionPredictor
{
  public:
    /**
     * @param c0 First component (selected when the chooser counter
     *        is low).
     * @param c1 Second component (selected when high).
     * @param chooser_entries Selector table size (2^n).
     */
    Tournament(DirectionPredictorPtr c0, DirectionPredictorPtr c1,
               std::size_t chooser_entries);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;
    DirectionPredictorPtr clone() const override;
    std::size_t sizeBits() const override;
    unsigned historyLength() const override;
    std::string name() const override;

  private:
    std::size_t chooseIndex(Addr pc) const;

    DirectionPredictorPtr comp0, comp1;
    std::vector<SatCounter> chooser;
    unsigned chooserIndexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_TOURNAMENT_HH
