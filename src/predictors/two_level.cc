#include "predictors/two_level.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

TwoLevel::TwoLevel(unsigned addr_bits, unsigned history_bits)
    : table(std::size_t(1) << (addr_bits + history_bits),
            SatCounter(2, 1)),
      addrBits(addr_bits),
      histBits(history_bits)
{
    pcbp_assert(addr_bits + history_bits <= 28,
                "two-level PHT would exceed 64M entries");
}

std::size_t
TwoLevel::index(Addr pc, const HistoryRegister &hist) const
{
    const std::uint64_t a = foldBits(pc >> 2, addrBits);
    return (a << histBits) | hist.low(histBits);
}

bool
TwoLevel::predict(Addr pc, const HistoryRegister &hist)
{
    return table[index(pc, hist)].taken();
}

void
TwoLevel::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    table[index(pc, hist)].update(taken);
}

void
TwoLevel::reset()
{
    for (auto &c : table)
        c.set(1);
}

std::size_t
TwoLevel::sizeBits() const
{
    return table.size() * 2;
}

std::string
TwoLevel::name() const
{
    return "GAs-" + std::to_string(addrBits) + "+" +
           std::to_string(histBits);
}

} // namespace pcbp
