/**
 * @file
 * GAs-style two-level adaptive predictor (Yeh & Patt): a global
 * history register concatenated with branch-address bits selects a
 * 2-bit counter from the pattern history table.
 */

#ifndef PCBP_PREDICTORS_TWO_LEVEL_HH
#define PCBP_PREDICTORS_TWO_LEVEL_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class TwoLevel final : public DirectionPredictor
{
  public:
    /**
     * @param addr_bits Branch-address bits in the PHT index.
     * @param history_bits Global-history bits in the PHT index.
     *
     * The PHT has 2^(addr_bits + history_bits) 2-bit counters.
     */
    TwoLevel(unsigned addr_bits, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<TwoLevel>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

  private:
    std::size_t index(Addr pc, const HistoryRegister &hist) const;

    std::vector<SatCounter> table;
    unsigned addrBits;
    unsigned histBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_TWO_LEVEL_HH
