#include "predictors/yags.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

Yags::Yags(std::size_t choice_entries, std::size_t cache_entries,
           unsigned tag_bits, unsigned history_bits)
    : choice(choice_entries, SatCounter(2, 1)),
      takenCache(cache_entries),
      notTakenCache(cache_entries),
      tagBits(tag_bits),
      histBits(history_bits),
      choiceIndexBits(log2Floor(choice_entries)),
      cacheIndexBits(log2Floor(cache_entries))
{
    pcbp_assert(isPowerOfTwo(choice_entries) &&
                isPowerOfTwo(cache_entries));
    pcbp_assert(tag_bits >= 4 && tag_bits <= 16);
}

std::size_t
Yags::cacheIndex(Addr pc, const HistoryRegister &hist) const
{
    const std::uint64_t h = hist.foldedLow(histBits, cacheIndexBits);
    return (foldBits(pc >> 2, cacheIndexBits) ^ h) &
           maskBits(cacheIndexBits);
}

std::uint16_t
Yags::tagOf(Addr pc) const
{
    return static_cast<std::uint16_t>((pc >> 2) & maskBits(tagBits));
}

bool
Yags::predict(Addr pc, const HistoryRegister &hist)
{
    const bool choice_taken =
        choice[foldBits(pc >> 2, choiceIndexBits)].taken();
    const std::size_t ci = cacheIndex(pc, hist);
    const std::uint16_t tag = tagOf(pc);

    // When the choice table says taken, look for an exception in the
    // not-taken cache, and vice versa.
    const auto &cache = choice_taken ? notTakenCache : takenCache;
    const Entry &e = cache[ci];
    if (e.valid && e.tag == tag)
        return e.ctr.taken();
    return choice_taken;
}

void
Yags::update(Addr pc, const HistoryRegister &hist, bool taken)
{
    const std::size_t choice_idx = foldBits(pc >> 2, choiceIndexBits);
    const bool choice_taken = choice[choice_idx].taken();
    const std::size_t ci = cacheIndex(pc, hist);
    const std::uint16_t tag = tagOf(pc);

    auto &cache = choice_taken ? notTakenCache : takenCache;
    Entry &e = cache[ci];
    const bool hit = e.valid && e.tag == tag;

    if (hit) {
        e.ctr.update(taken);
    } else if (taken != choice_taken) {
        // Allocate an exception entry when the default was wrong.
        e.valid = true;
        e.tag = tag;
        e.ctr.setWeak(taken);
    }

    // The choice table is not updated when it disagrees with the
    // outcome but the exception cache covered it (standard YAGS
    // policy keeps the bias stable).
    if (!(hit && e.ctr.taken() == taken && choice_taken != taken))
        choice[choice_idx].update(taken);
}

void
Yags::reset()
{
    for (auto &c : choice)
        c.set(1);
    for (auto *cache : {&takenCache, &notTakenCache})
        for (auto &e : *cache)
            e = Entry{};
}

std::size_t
Yags::sizeBits() const
{
    const std::size_t entry_bits = 1 + tagBits + 2;
    return choice.size() * 2 +
           (takenCache.size() + notTakenCache.size()) * entry_bits;
}

std::string
Yags::name() const
{
    return "yags-" + std::to_string(sizeBytes() / 1024) + "KB";
}

} // namespace pcbp
