/**
 * @file
 * YAGS predictor (Eden & Mudge): a bimodal choice table provides the
 * default direction; two small tagged caches store only the
 * exceptions (taken-biased branches that are sometimes not taken,
 * and vice versa). Mentioned by the paper as a de-aliased design of
 * the same class as 2Bc-gskew; included as an extension prophet.
 */

#ifndef PCBP_PREDICTORS_YAGS_HH
#define PCBP_PREDICTORS_YAGS_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace pcbp
{

class Yags final : public DirectionPredictor
{
  public:
    /**
     * @param choice_entries Bimodal choice-table entries (2^n).
     * @param cache_entries Entries in each direction cache (2^n).
     * @param tag_bits Tag width of the direction caches.
     * @param history_bits History bits hashed into cache indices.
     */
    Yags(std::size_t choice_entries, std::size_t cache_entries,
         unsigned tag_bits, unsigned history_bits);

    bool predict(Addr pc, const HistoryRegister &hist) override;
    void update(Addr pc, const HistoryRegister &hist, bool taken) override;
    void reset() override;

    DirectionPredictorPtr clone() const override
    {
        return std::make_unique<Yags>(*this);
    }
    std::size_t sizeBits() const override;
    unsigned historyLength() const override { return histBits; }
    std::string name() const override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        SatCounter ctr{2, 1};
    };

    std::size_t cacheIndex(Addr pc, const HistoryRegister &hist) const;
    std::uint16_t tagOf(Addr pc) const;

    std::vector<SatCounter> choice;
    std::vector<Entry> takenCache;    // exceptions when choice says NT
    std::vector<Entry> notTakenCache; // exceptions when choice says T
    unsigned tagBits;
    unsigned histBits;
    unsigned choiceIndexBits;
    unsigned cacheIndexBits;
};

} // namespace pcbp

#endif // PCBP_PREDICTORS_YAGS_HH
