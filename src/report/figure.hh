/**
 * @file
 * The paper-figure registry: every reproduced figure/table of the
 * paper as a declarative definition instead of a bespoke
 * main()-with-printf bench binary.
 *
 * A FigureDef names the claim (what the paper says), the grids that
 * measure it (SweepSpecs over the sweep runner + ResultStore), and a
 * render function that slices the completed store into ReportTables.
 * The split matters for the reproduction contract:
 *
 *  - sweeps() is a pure function of the options, so the same options
 *    always name the same grid — which is what makes a run resumable
 *    (cell keys match across invocations) and byte-deterministic
 *    (the runner's any-`--jobs` contract applies unchanged);
 *  - render() reads only the store, so re-rendering a completed
 *    store reproduces the report without re-simulating anything.
 *
 * Figure definitions are stateless and registered for the life of
 * the process; FigureDef pointers returned by the registry never
 * dangle. Every figure accepts workload overrides (suites, workload
 * names, trace:<path> files), so a reproduction extends to any
 * workload the registry can name — the ROADMAP's scale goal.
 */

#ifndef PCBP_REPORT_FIGURE_HH
#define PCBP_REPORT_FIGURE_HH

#include <string>
#include <vector>

#include "report/table.hh"
#include "sweep/runner.hh"

namespace pcbp
{

/** What a figure runs over; shared by all figure definitions. */
struct FigureOptions
{
    /**
     * Workload selector override (suite names, workload names,
     * trace:<path>); empty keeps the figure's paper-default set.
     * Figures that report per-suite rows report per-selector rows
     * when overridden.
     */
    std::vector<std::string> workloads;

    /**
     * Measured branches per cell (warmup = a tenth); 0 keeps each
     * workload's default budget. PCBP_BENCH_SCALE applies either
     * way.
     */
    std::uint64_t branches = 0;

    /** True when the paper-default workload set is in effect. */
    bool defaultWorkloads() const { return workloads.empty(); }
};

/** One reproduced paper figure or table. */
struct FigureDef
{
    /** Registry id and filename stem, e.g. "fig5". */
    std::string id;

    /** Paper reference, e.g. "Figure 5" or "Table 4". */
    std::string paperRef;

    /** Short title, e.g. "effect of the number of future bits". */
    std::string title;

    /** The paper's claim this figure reproduces (for the report). */
    std::string claim;

    /** Expected qualitative result on the seed suites. */
    std::string expected;

    /** The declarative grids that measure the figure. */
    std::vector<SweepSpec> (*sweeps)(const FigureOptions &);

    /**
     * Slice a store holding every cell of sweeps(opts) into report
     * tables (fatal if a needed cell was never run).
     */
    std::vector<ReportTable> (*render)(const FigureOptions &,
                                       const ResultStore &);
};

/** Every registered figure, in paper order. */
const std::vector<FigureDef> &allFigures();

/** Find by id; fatal on unknown, listing the known ids. */
const FigureDef &figureById(const std::string &id);

/**
 * Resolve a comma-free id list ("all" or registry ids) into figure
 * definitions, preserving registry order and dropping duplicates.
 */
std::vector<const FigureDef *>
figuresByIds(const std::vector<std::string> &ids);

} // namespace pcbp

#endif // PCBP_REPORT_FIGURE_HH
