/**
 * @file
 * The figure definitions: Figures 5-10, Table 4, the headline
 * claims, and the design-choice ablations, each as declarative sweep
 * grids plus a store-to-tables render — the registry behind
 * pcbp_repro and the thin bench/fig* binaries.
 *
 * Porting notes versus the paper: each definition's `claim` states
 * the paper's numbers; the tables carry "paper" columns so REPRO.md
 * shows the reproduced value next to the reported one. Deviations of
 * the synthetic substrate are documented in docs/FIGURES.md and
 * DESIGN.md §2-§3.
 */

#include "report/figure.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace pcbp
{

namespace
{

/** The figure's default selectors unless the caller overrode them. */
std::vector<std::string>
sel(const FigureOptions &opts, std::vector<std::string> defaults)
{
    return opts.defaultWorkloads() ? std::move(defaults)
                                   : opts.workloads;
}

/** One workload selector per suite (paper: one LIT per benchmark). */
std::vector<std::string>
onePerSuite()
{
    std::vector<std::string> out;
    for (const auto &suite : allSuites())
        out.push_back(suiteWorkloads(suite).front()->name);
    return out;
}

/** Resolve one selector the way SweepSpec does. */
std::vector<const Workload *>
resolveSelector(const std::string &selector)
{
    SweepSpec probe;
    probe.workloads = {selector};
    return probe.resolveWorkloads();
}

bool
inSet(const std::vector<const Workload *> &set, const Workload *w)
{
    return std::find(set.begin(), set.end(), w) != set.end();
}

/** Start a sweep with one prophet/critic pair on every cell. */
SweepSpec
baseSpec(const std::string &name, const FigureOptions &opts,
         std::vector<std::string> default_workloads)
{
    SweepSpec s;
    s.name = name;
    s.workloads = sel(opts, std::move(default_workloads));
    s.branches = opts.branches;
    return s;
}

std::string
pct(double base, double now)
{
    return fmtDouble(pctReduction(base, now), 1) + "%";
}

// ------------------------------------------------------------- fig5

std::vector<SweepSpec>
fig5Sweeps(const FigureOptions &opts)
{
    SweepSpec s = baseSpec("fig5", opts, {"FIG5"});
    s.axes.prophets = {ProphetKind::Perceptron};
    s.axes.prophetBudgets = {Budget::B8KB};
    s.axes.critics = {CriticKind::TaggedGshare};
    s.axes.criticBudgets = {Budget::B8KB};
    s.axes.futureBits = {0, 1, 4, 8, 12};
    return {s};
}

std::vector<ReportTable>
fig5Render(const FigureOptions &opts, const ResultStore &store)
{
    const SweepSpec s = fig5Sweeps(opts)[0];
    const auto cells = s.cells();
    const auto set = s.resolveWorkloads();
    const std::vector<unsigned> future_bits = {0, 1, 4, 8, 12};

    auto misp = [&](const Workload *w, unsigned fb) {
        for (const auto &cell : cells)
            if (cell.workload == w && cell.spec.futureBits == fb)
                return store.statsFor(cell).mispPerKuops();
        pcbp_fatal("fig5: no cell for ", w->name, " @", fb, "fb");
    };

    // The per-benchmark shapes of the paper's Fig. 5 plot, in the
    // fig5Set order; only meaningful for the default set.
    const std::vector<std::string> shapes = {
        "keeps improving to 12", "front-loaded at 1", "peaks near 8",
        "peaks near 4",          "insensitive",       "only 1 helps",
    };
    const bool annotate =
        opts.defaultWorkloads() && set.size() == shapes.size();

    std::vector<std::string> headers = {"benchmark"};
    for (unsigned fb : future_bits)
        headers.push_back(std::to_string(fb) + " fb");
    if (annotate)
        headers.push_back("paper shape");
    ReportTable t("fig5", "mispredict rate vs. number of future bits",
                  headers);
    t.addNote("prophet: 8KB perceptron; critic: 8KB tagged gshare");
    t.addNote("metric: misp/Kuops (final mispredicts per 1000 "
              "committed uops)");

    std::vector<std::vector<double>> per_bench(set.size());
    for (std::size_t wi = 0; wi < set.size(); ++wi) {
        std::vector<std::string> row = {set[wi]->name};
        for (unsigned fb : future_bits) {
            const double m = misp(set[wi], fb);
            per_bench[wi].push_back(m);
            row.push_back(fmtDouble(m, 3));
        }
        if (annotate)
            row.push_back(shapes[wi]);
        t.addRow(row);
    }

    std::vector<std::string> avg_row = {"AVG"};
    for (std::size_t f = 0; f < future_bits.size(); ++f) {
        double sum = 0;
        for (const auto &v : per_bench)
            sum += v[f];
        avg_row.push_back(
            fmtDouble(sum / double(per_bench.size()), 3));
    }
    if (annotate)
        avg_row.push_back("1 fb cuts ~15%");
    t.addRow(avg_row);
    return {t};
}

// ------------------------------------------------------------- fig6

struct Fig6Panel
{
    const char *id;
    const char *title;
    ProphetKind prophet;
    CriticKind critic;
};

const Fig6Panel fig6Panels[] = {
    {"fig6a", "(a) prophet: 2Bc-gskew; critic: perceptron (unfiltered)",
     ProphetKind::GSkew, CriticKind::UnfilteredPerceptron},
    {"fig6b", "(b) prophet: gshare; critic: filtered perceptron",
     ProphetKind::Gshare, CriticKind::FilteredPerceptron},
    {"fig6c", "(c) prophet: perceptron; critic: tagged gshare",
     ProphetKind::Perceptron, CriticKind::TaggedGshare},
};

std::vector<SweepSpec>
fig6Sweeps(const FigureOptions &opts)
{
    std::vector<SweepSpec> out;
    for (const auto &p : fig6Panels) {
        SweepSpec s = baseSpec(std::string("fig6-") + p.id, opts,
                               {"AVG"});
        s.axes.prophets = {p.prophet};
        s.axes.prophetBudgets = {Budget::B4KB, Budget::B16KB};
        s.axes.critics = {std::nullopt, p.critic};
        s.axes.criticBudgets = {Budget::B2KB, Budget::B8KB,
                                Budget::B32KB};
        s.axes.futureBits = {1, 4, 8, 12};
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<ReportTable>
fig6Render(const FigureOptions &opts, const ResultStore &store)
{
    const auto sweeps = fig6Sweeps(opts);
    const std::vector<Budget> prophet_sizes = {Budget::B4KB,
                                               Budget::B16KB};
    const std::vector<Budget> critic_sizes = {Budget::B2KB,
                                              Budget::B8KB,
                                              Budget::B32KB};
    const std::vector<unsigned> future_bits = {1, 4, 8, 12};

    std::vector<ReportTable> out;
    for (std::size_t pi = 0; pi < sweeps.size(); ++pi) {
        const auto cells = sweeps[pi].cells();
        ReportTable t(fig6Panels[pi].id, fig6Panels[pi].title,
                      {"configuration", "no critic", "1 fb", "4 fb",
                       "8 fb", "12 fb"});
        t.addNote("metric: misp/Kuops averaged over the workload set");
        for (Budget pb : prophet_sizes) {
            const double alone =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.spec.prophetBudget == pb &&
                                          !c.spec.critic;
                               })
                    .mispPerKuops;
            for (Budget cb : critic_sizes) {
                std::vector<std::string> row = {
                    budgetName(pb) + " prophet + " + budgetName(cb) +
                        " critic",
                    fmtDouble(alone, 3)};
                for (unsigned fb : future_bits) {
                    const double m =
                        aggregateCells(
                            store, cells,
                            [&](const SweepCell &c) {
                                return c.spec.prophetBudget == pb &&
                                       c.spec.critic &&
                                       c.spec.criticBudget == cb &&
                                       c.spec.futureBits == fb;
                            })
                            .mispPerKuops;
                    row.push_back(fmtDouble(m, 3));
                }
                t.addRow(row);
            }
        }
        out.push_back(std::move(t));
    }
    return out;
}

// ------------------------------------------------------------- fig7

std::vector<SweepSpec>
fig7Sweeps(const FigureOptions &opts)
{
    const std::vector<ProphetKind> prophets = {
        ProphetKind::Gshare, ProphetKind::GSkew,
        ProphetKind::Perceptron};
    std::vector<SweepSpec> out;
    for (const auto &[total, half] :
         {std::pair{Budget::B16KB, Budget::B8KB},
          std::pair{Budget::B32KB, Budget::B16KB}}) {
        SweepSpec base = baseSpec("fig7-" + budgetName(total) +
                                      "-baseline",
                                  opts, {"AVG"});
        base.axes.prophets = prophets;
        base.axes.prophetBudgets = {total};
        base.axes.critics = {std::nullopt};
        out.push_back(base);

        SweepSpec hyb = baseSpec("fig7-" + budgetName(total) +
                                     "-hybrid",
                                 opts, {"AVG"});
        hyb.axes.prophets = prophets;
        hyb.axes.prophetBudgets = {half};
        hyb.axes.critics = {CriticKind::FilteredPerceptron,
                            CriticKind::TaggedGshare};
        hyb.axes.criticBudgets = {half};
        hyb.axes.futureBits = {8};
        out.push_back(hyb);
    }
    return out;
}

std::vector<ReportTable>
fig7Render(const FigureOptions &opts, const ResultStore &store)
{
    const auto sweeps = fig7Sweeps(opts);
    const std::pair<Budget, Budget> budgets[] = {
        {Budget::B16KB, Budget::B8KB}, {Budget::B32KB, Budget::B16KB}};

    std::vector<ReportTable> out;
    for (std::size_t bi = 0; bi < 2; ++bi) {
        const auto [total, half] = budgets[bi];
        auto cells = sweeps[2 * bi].cells();
        const auto hyb_cells = sweeps[2 * bi + 1].cells();
        cells.insert(cells.end(), hyb_cells.begin(), hyb_cells.end());

        ReportTable t("fig7-" + budgetName(total),
                      budgetName(total) + " total budget",
                      {"predictor", "misp/Kuops", "reduction"});
        t.addNote("metric: misp/Kuops averaged over the workload "
                  "set; paper reductions: 15-31%");
        for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::GSkew,
                              ProphetKind::Perceptron}) {
            const double conv =
                aggregateCells(store, cells,
                               [&, total = total](const SweepCell &c) {
                                   return c.spec.prophet == p &&
                                          c.spec.prophetBudget ==
                                              total &&
                                          !c.spec.critic;
                               })
                    .mispPerKuops;
            t.addRow({budgetName(total) + " " + prophetKindName(p),
                      fmtDouble(conv, 3), "(baseline)"});

            for (CriticKind c : {CriticKind::FilteredPerceptron,
                                 CriticKind::TaggedGshare}) {
                const double hyb =
                    aggregateCells(
                        store, cells,
                        [&, half = half](const SweepCell &k) {
                            return k.spec.prophet == p &&
                                   k.spec.prophetBudget == half &&
                                   k.spec.critic &&
                                   *k.spec.critic == c;
                        })
                        .mispPerKuops;
                t.addRow({budgetName(half) + " " +
                              prophetKindName(p) + " + " +
                              budgetName(half) + " " +
                              criticKindName(c),
                          fmtDouble(hyb, 3), pct(conv, hyb)});
            }
        }
        out.push_back(std::move(t));
    }
    return out;
}

// ------------------------------------------------------------- fig8

std::vector<SweepSpec>
fig8Sweeps(const FigureOptions &opts)
{
    SweepSpec s = baseSpec("fig8", opts, {"AVG"});
    s.axes.prophets = {ProphetKind::Perceptron};
    s.axes.prophetBudgets = {Budget::B4KB};
    s.axes.critics = {CriticKind::TaggedGshare};
    s.axes.criticBudgets = {Budget::B8KB};
    s.axes.futureBits = {1, 4, 8, 12};
    return {s};
}

std::vector<ReportTable>
fig8Render(const FigureOptions &opts, const ResultStore &store)
{
    const SweepSpec s = fig8Sweeps(opts)[0];
    const auto cells = s.cells();
    const std::vector<unsigned> future_bits = {1, 4, 8, 12};

    std::vector<CritiqueCounts> dist;
    std::vector<std::uint64_t> totals;
    for (unsigned fb : future_bits) {
        const auto agg =
            aggregateCells(store, cells, [&](const SweepCell &c) {
                return c.spec.futureBits == fb;
            });
        dist.push_back(agg.critiques);
        totals.push_back(agg.critiques.explicitTotal());
    }

    ReportTable t("fig8", "distribution of critiques",
                  {"critique class", "1 fb", "4 fb", "8 fb", "12 fb",
                   "paper trend 1->12"});
    t.addNote("prophet: 4KB perceptron; critic: 8KB tagged gshare");
    t.addNote("counts summed over the workload set; filter misses "
              "(implicit agrees) excluded, as in the paper");

    const struct
    {
        CritiqueClass cls;
        const char *trend;
    } rows[] = {
        {CritiqueClass::CorrectAgree, "majority, falls with total"},
        {CritiqueClass::IncorrectDisagree, "grows (~+20%)"},
        {CritiqueClass::IncorrectAgree, "shrinks (~-43%)"},
        {CritiqueClass::CorrectDisagree, "shrinks (~-40%)"},
    };
    for (const auto &r : rows) {
        std::vector<std::string> row = {critiqueClassName(r.cls)};
        for (const auto &d : dist)
            row.push_back(std::to_string(d.get(r.cls)));
        row.push_back(r.trend);
        t.addRow(row);
    }
    std::vector<std::string> total_row = {"total explicit critiques"};
    for (auto v : totals)
        total_row.push_back(std::to_string(v));
    total_row.push_back("falls as fb grows");
    t.addRow(total_row);
    return {t};
}

// ----------------------------------------------------------- table4

std::vector<SweepSpec>
table4Sweeps(const FigureOptions &opts)
{
    SweepSpec s = baseSpec("table4", opts, {"AVG"});
    s.axes.prophets = {ProphetKind::Perceptron};
    s.axes.prophetBudgets = {Budget::B4KB};
    s.axes.critics = {CriticKind::TaggedGshare};
    s.axes.criticBudgets = {Budget::B2KB, Budget::B8KB,
                            Budget::B32KB};
    s.axes.futureBits = {1, 4, 12};
    return {s};
}

std::vector<ReportTable>
table4Render(const FigureOptions &opts, const ResultStore &store)
{
    const SweepSpec s = table4Sweeps(opts)[0];
    const auto cells = s.cells();
    const std::vector<Budget> critic_sizes = {Budget::B2KB,
                                              Budget::B8KB,
                                              Budget::B32KB};
    const std::vector<unsigned> future_bits = {1, 4, 12};

    std::vector<std::string> headers = {"row"};
    for (Budget cb : critic_sizes)
        for (unsigned fb : future_bits)
            headers.push_back(budgetName(cb) + "/" +
                              std::to_string(fb) + "fb");
    ReportTable t("table4",
                  "percentage of prophet predictions filtered by the "
                  "critic",
                  headers);
    t.addNote("prophet: 4KB perceptron; critic: tagged gshare; "
              "averaged over the workload set");
    t.addNote("paper: total %none is ~66-78 and generally rises with "
              "future bits; incorrect_none stays ~0.4-1.3 and falls "
              "with critic size");

    std::vector<std::string> row_cn = {"% correct_none"};
    std::vector<std::string> row_in = {"% incorrect_none"};
    std::vector<std::string> row_tot = {"% none (total)"};
    for (Budget cb : critic_sizes) {
        for (unsigned fb : future_bits) {
            const auto agg =
                aggregateCells(store, cells, [&](const SweepCell &c) {
                    return c.spec.criticBudget == cb &&
                           c.spec.futureBits == fb;
                });
            const double total =
                static_cast<double>(agg.critiques.total());
            const double cn =
                100.0 *
                double(agg.critiques.get(CritiqueClass::CorrectNone)) /
                total;
            const double in =
                100.0 *
                double(
                    agg.critiques.get(CritiqueClass::IncorrectNone)) /
                total;
            row_cn.push_back(fmtDouble(cn, 1));
            row_in.push_back(fmtDouble(in, 1));
            row_tot.push_back(fmtDouble(cn + in, 1));
        }
    }
    t.addRow(row_cn);
    t.addRow(row_in);
    t.addRow(row_tot);
    return {t};
}

// ------------------------------------------------------------- fig9

std::vector<SweepSpec>
fig9Sweeps(const FigureOptions &opts)
{
    const std::vector<ProphetKind> prophets = {
        ProphetKind::Gshare, ProphetKind::GSkew,
        ProphetKind::Perceptron};

    SweepSpec base = baseSpec("fig9-baseline", opts, onePerSuite());
    base.timing = true;
    base.axes.prophets = prophets;
    base.axes.prophetBudgets = {Budget::B16KB};
    base.axes.critics = {std::nullopt};

    SweepSpec hyb = baseSpec("fig9-hybrid", opts, onePerSuite());
    hyb.timing = true;
    hyb.axes.prophets = prophets;
    hyb.axes.prophetBudgets = {Budget::B8KB};
    hyb.axes.critics = {CriticKind::TaggedGshare};
    hyb.axes.criticBudgets = {Budget::B8KB};
    hyb.axes.futureBits = {4, 8, 12};
    return {base, hyb};
}

std::vector<ReportTable>
fig9Render(const FigureOptions &opts, const ResultStore &store)
{
    const auto sweeps = fig9Sweeps(opts);
    auto cells = sweeps[0].cells();
    const auto hyb_cells = sweeps[1].cells();
    cells.insert(cells.end(), hyb_cells.begin(), hyb_cells.end());

    ReportTable t("fig9",
                  "uPC of conventional predictors vs 8KB+8KB "
                  "prophet/critic hybrids",
                  {"prophet", "16KB alone", "4 fb", "8 fb", "12 fb",
                   "speedup @12fb"});
    t.addNote("critic: tagged gshare; timing model: decoupled "
              "front-end, 6-uop machine, 30-cycle resolve");
    t.addNote("paper speedups @12fb: gshare 8%, 2Bc-gskew 7%, "
              "perceptron 5.2%");

    for (ProphetKind p : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron}) {
        const double alone =
            meanUpcCells(store, cells, [&](const SweepCell &c) {
                return c.spec.prophet == p && !c.spec.critic;
            });
        std::vector<std::string> row = {prophetKindName(p),
                                        fmtDouble(alone, 3)};
        double at12 = 0;
        for (unsigned fb : {4u, 8u, 12u}) {
            const double upc =
                meanUpcCells(store, cells, [&](const SweepCell &c) {
                    return c.spec.prophet == p && c.spec.critic &&
                           c.spec.futureBits == fb;
                });
            row.push_back(fmtDouble(upc, 3));
            at12 = upc;
        }
        row.push_back(fmtDouble(100.0 * (at12 / alone - 1.0), 1) +
                      "%");
        t.addRow(row);
    }
    return {t};
}

// ------------------------------------------------------------ fig10

std::vector<SweepSpec>
fig10Sweeps(const FigureOptions &opts)
{
    SweepSpec base = baseSpec("fig10-baseline", opts, allSuites());
    base.timing = true;
    base.axes.prophets = {ProphetKind::GSkew};
    base.axes.prophetBudgets = {Budget::B16KB};
    base.axes.critics = {std::nullopt};

    SweepSpec hyb = baseSpec("fig10-hybrid", opts, allSuites());
    hyb.timing = true;
    hyb.axes.prophets = {ProphetKind::GSkew};
    hyb.axes.prophetBudgets = {Budget::B8KB};
    hyb.axes.critics = {CriticKind::TaggedGshare};
    hyb.axes.criticBudgets = {Budget::B8KB};
    hyb.axes.futureBits = {4, 8, 12};
    return {base, hyb};
}

std::vector<ReportTable>
fig10Render(const FigureOptions &opts, const ResultStore &store)
{
    const auto sweeps = fig10Sweeps(opts);
    auto cells = sweeps[0].cells();
    const auto hyb_cells = sweeps[1].cells();
    cells.insert(cells.end(), hyb_cells.begin(), hyb_cells.end());

    // One row per selector: the paper's per-suite panels by default,
    // per-override-selector rows otherwise.
    const auto selectors = sel(opts, allSuites());

    ReportTable t("fig10",
                  "per-suite uPC (prophet: 8KB 2Bc-gskew; critic: "
                  "8KB tagged gshare)",
                  {"suite", "16KB alone", "4 fb", "8 fb", "12 fb",
                   "speedup @12fb"});
    t.addNote("paper: FP00 smallest gain (~1.7% @12fb), INT00 "
              "largest (~10.7% @12fb)");

    for (const auto &selector : selectors) {
        const auto group = resolveSelector(selector);
        const double alone =
            meanUpcCells(store, cells, [&](const SweepCell &c) {
                return !c.spec.critic && inSet(group, c.workload);
            });
        std::vector<std::string> row = {selector,
                                        fmtDouble(alone, 3)};
        double at12 = 0;
        for (unsigned fb : {4u, 8u, 12u}) {
            const double upc =
                meanUpcCells(store, cells, [&](const SweepCell &c) {
                    return c.spec.critic &&
                           c.spec.futureBits == fb &&
                           inSet(group, c.workload);
                });
            row.push_back(fmtDouble(upc, 3));
            at12 = upc;
        }
        row.push_back(fmtDouble(100.0 * (at12 / alone - 1.0), 1) +
                      "%");
        t.addRow(row);
    }
    return {t};
}

// --------------------------------------------------------- headline

std::vector<SweepSpec>
headlineSweeps(const FigureOptions &opts)
{
    SweepSpec base = baseSpec("headline-acc-baseline", opts, {"AVG"});
    base.axes.prophets = {ProphetKind::GSkew, ProphetKind::Perceptron};
    base.axes.prophetBudgets = {Budget::B16KB};
    base.axes.critics = {std::nullopt};

    SweepSpec hyb = baseSpec("headline-acc-hybrid", opts, {"AVG"});
    hyb.axes.prophets = {ProphetKind::GSkew, ProphetKind::Perceptron};
    hyb.axes.prophetBudgets = {Budget::B8KB};
    hyb.axes.critics = {CriticKind::TaggedGshare};
    hyb.axes.criticBudgets = {Budget::B8KB};
    hyb.axes.futureBits = {4, 8};

    SweepSpec gccb = baseSpec("headline-rate-baseline", opts, {"gcc"});
    gccb.axes.prophets = {ProphetKind::GSkew};
    gccb.axes.prophetBudgets = {Budget::B16KB};
    gccb.axes.critics = {std::nullopt};

    SweepSpec gcch = baseSpec("headline-rate-hybrid", opts, {"gcc"});
    gcch.axes.prophets = {ProphetKind::GSkew};
    gcch.axes.prophetBudgets = {Budget::B8KB};
    gcch.axes.critics = {CriticKind::TaggedGshare};
    gcch.axes.criticBudgets = {Budget::B8KB};
    gcch.axes.futureBits = {8};

    SweepSpec tb = baseSpec("headline-timing-baseline", opts,
                            onePerSuite());
    tb.timing = true;
    tb.axes.prophets = {ProphetKind::GSkew};
    tb.axes.prophetBudgets = {Budget::B16KB};
    tb.axes.critics = {std::nullopt};

    SweepSpec th = baseSpec("headline-timing-hybrid", opts,
                            onePerSuite());
    th.timing = true;
    th.axes.prophets = {ProphetKind::GSkew};
    th.axes.prophetBudgets = {Budget::B8KB};
    th.axes.critics = {CriticKind::TaggedGshare};
    th.axes.criticBudgets = {Budget::B8KB};
    th.axes.futureBits = {8};
    return {base, hyb, gccb, gcch, tb, th};
}

std::vector<ReportTable>
headlineRender(const FigureOptions &opts, const ResultStore &store)
{
    const auto sweeps = headlineSweeps(opts);
    auto acc_cells = sweeps[0].cells();
    {
        const auto h = sweeps[1].cells();
        acc_cells.insert(acc_cells.end(), h.begin(), h.end());
    }

    auto accuracy = [&](ProphetKind p, Budget pb,
                        std::optional<unsigned> fb) {
        return aggregateCells(
            store, acc_cells, [&](const SweepCell &c) {
                return c.spec.prophet == p &&
                       c.spec.prophetBudget == pb &&
                       (fb ? (c.spec.critic &&
                              c.spec.futureBits == *fb)
                           : !c.spec.critic);
            });
    };

    std::vector<ReportTable> out;

    // --- accuracy / flush distance over the workload set ---------
    const auto conv = accuracy(ProphetKind::GSkew, Budget::B16KB, {});
    const auto hyb = accuracy(ProphetKind::GSkew, Budget::B8KB, 8);
    {
        ReportTable t("headline-acc",
                      "16KB 2Bc-gskew vs 8KB+8KB 2Bc-gskew + tagged "
                      "gshare (8 fb)",
                      {"metric", "16KB 2Bc-gskew", "8KB+8KB hybrid",
                       "change", "paper"});
        t.addNote("on this synthetic substrate the relay-compression "
                  "channel needs a long-history prophet, so the "
                  "perceptron pairing (below) shows the paper's "
                  "direction most clearly and the 2Bc-gskew pairing "
                  "peaks at ~4 future bits");
        t.addRow({"misp/Kuops (set mean)",
                  fmtDouble(conv.mispPerKuops, 3),
                  fmtDouble(hyb.mispPerKuops, 3),
                  pct(conv.mispPerKuops, hyb.mispPerKuops) + " fewer",
                  "39% fewer"});
        t.addRow({"uops per flush", fmtDouble(conv.uopsPerFlush(), 0),
                  fmtDouble(hyb.uopsPerFlush(), 0),
                  "x" + fmtDouble(hyb.uopsPerFlush() /
                                      conv.uopsPerFlush(),
                                  2),
                  "418 -> 680 (x1.63)"});
        out.push_back(std::move(t));
    }

    // --- substrate-strong pairings at the same total budget ------
    {
        ReportTable t("headline-pairings",
                      "substrate-strong pairings at 16KB total",
                      {"pairing (16KB total)", "misp/Kuops",
                       "vs 16KB same-prophet alone"});
        const auto gskew4 =
            accuracy(ProphetKind::GSkew, Budget::B8KB, 4);
        t.addRow({"2Bc-gskew + t.gshare @4fb",
                  fmtDouble(gskew4.mispPerKuops, 3),
                  pct(conv.mispPerKuops, gskew4.mispPerKuops)});
        const auto perc_alone =
            accuracy(ProphetKind::Perceptron, Budget::B16KB, {});
        const auto perc8 =
            accuracy(ProphetKind::Perceptron, Budget::B8KB, 8);
        t.addRow({"perceptron + t.gshare @8fb",
                  fmtDouble(perc8.mispPerKuops, 3),
                  pct(perc_alone.mispPerKuops, perc8.mispPerKuops)});
        out.push_back(std::move(t));
    }

    // --- per-workload branch mispredict percentage ---------------
    {
        auto rate_cells = sweeps[2].cells();
        const auto h = sweeps[3].cells();
        rate_cells.insert(rate_cells.end(), h.begin(), h.end());
        ReportTable t("headline-rate",
                      "percentage of branches mispredicted",
                      {"workload", "16KB 2Bc-gskew", "8KB+8KB hybrid",
                       "paper"});
        t.addNote("paper reports gcc: 3.11% -> 1.23%");
        for (const Workload *w : sweeps[2].resolveWorkloads()) {
            const auto wconv =
                aggregateCells(store, rate_cells,
                               [&](const SweepCell &c) {
                                   return !c.spec.critic &&
                                          c.workload == w;
                               });
            const auto whyb =
                aggregateCells(store, rate_cells,
                               [&](const SweepCell &c) {
                                   return c.spec.critic &&
                                          c.workload == w;
                               });
            t.addRow({w->name, fmtPercent(wconv.mispRate, 2),
                      fmtPercent(whyb.mispRate, 2),
                      w->name == "gcc" ? "3.11% -> 1.23%" : "-"});
        }
        out.push_back(std::move(t));
    }

    // --- timing: uPC and fetched uops ----------------------------
    {
        auto t_cells = sweeps[4].cells();
        const auto h = sweeps[5].cells();
        t_cells.insert(t_cells.end(), h.begin(), h.end());

        double conv_fetch = 0, hyb_fetch = 0, conv_commit = 0,
               hyb_commit = 0;
        std::vector<TimingStats> conv_runs, hyb_runs;
        for (const auto &cell : t_cells) {
            const TimingStats st = store.timingStatsFor(cell);
            if (cell.spec.critic) {
                hyb_runs.push_back(st);
                hyb_fetch += double(st.fetchedUops);
                hyb_commit += double(st.committedUops);
            } else {
                conv_runs.push_back(st);
                conv_fetch += double(st.fetchedUops);
                conv_commit += double(st.committedUops);
            }
        }
        const double conv_upc = meanUpc(conv_runs);
        const double hyb_upc = meanUpc(hyb_runs);
        // Fetched uops normalized per committed uop, so the
        // comparison is independent of run length.
        const double conv_fpc = conv_fetch / conv_commit;
        const double hyb_fpc = hyb_fetch / hyb_commit;

        ReportTable t("headline-timing",
                      "timing: uPC and fetch volume (one workload "
                      "per suite)",
                      {"timing metric", "16KB 2Bc-gskew",
                       "8KB+8KB hybrid", "change", "paper"});
        t.addRow({"uPC", fmtDouble(conv_upc, 3),
                  fmtDouble(hyb_upc, 3),
                  "+" + fmtDouble(100.0 * (hyb_upc / conv_upc - 1.0),
                                  1) +
                      "%",
                  "+7.8%"});
        t.addRow({"fetched uops / committed uop",
                  fmtDouble(conv_fpc, 3), fmtDouble(hyb_fpc, 3),
                  pct(conv_fpc, hyb_fpc) + " fewer", "8.6% fewer"});
        out.push_back(std::move(t));
    }
    return out;
}

// -------------------------------------------------------- ablations

std::vector<std::string>
ablationDefaults()
{
    return {"int.crafty", "mm.mpeg", "web.jbb", "ws.cad"};
}

std::vector<SweepSpec>
ablationsSweeps(const FigureOptions &opts)
{
    const auto defaults = ablationDefaults();

    SweepSpec oracle = baseSpec("abl-oracle", opts, defaults);
    oracle.axes.prophets = {ProphetKind::Perceptron};
    oracle.axes.prophetBudgets = {Budget::B8KB};
    oracle.axes.critics = {CriticKind::TaggedGshare};
    oracle.axes.criticBudgets = {Budget::B8KB};
    oracle.axes.futureBits = {8};
    oracle.axes.oracleFutureBits = {false, true};

    SweepSpec filter = baseSpec("abl-filter", opts, defaults);
    filter.axes.prophets = {ProphetKind::GSkew};
    filter.axes.prophetBudgets = {Budget::B8KB};
    filter.axes.critics = {CriticKind::UnfilteredPerceptron,
                           CriticKind::FilteredPerceptron};
    filter.axes.criticBudgets = {Budget::B8KB};
    filter.axes.futureBits = {1, 8, 12};

    SweepSpec tag = baseSpec("abl-tagwidth", opts, defaults);
    tag.axes.prophets = {ProphetKind::Perceptron};
    tag.axes.prophetBudgets = {Budget::B8KB};
    tag.axes.critics = {CriticKind::TaggedGshare};
    tag.axes.criticBudgets = {Budget::B8KB};
    tag.axes.futureBits = {8};
    tag.axes.filterTagBits = {4, 6, 8, 10, 12, 14};

    SweepSpec repair = baseSpec("abl-repair", opts, defaults);
    repair.axes.prophets = {ProphetKind::Perceptron};
    repair.axes.prophetBudgets = {Budget::B8KB};
    repair.axes.critics = {CriticKind::TaggedGshare};
    repair.axes.criticBudgets = {Budget::B8KB};
    repair.axes.futureBits = {8};
    repair.axes.repairHistory = {true, false};

    SweepSpec spechist = baseSpec("abl-spechist", opts, defaults);
    spechist.axes.prophets = {ProphetKind::Gshare,
                              ProphetKind::Perceptron};
    spechist.axes.prophetBudgets = {Budget::B16KB};
    spechist.axes.critics = {std::nullopt};
    spechist.axes.speculativeHistory = {true, false};

    return {oracle, filter, tag, repair, spechist};
}

std::vector<ReportTable>
ablationsRender(const FigureOptions &opts, const ResultStore &store)
{
    const auto sweeps = ablationsSweeps(opts);
    std::vector<ReportTable> out;

    // (i) wrong-path vs oracle future bits (§6).
    {
        const auto cells = sweeps[0].cells();
        ReportTable t("abl-oracle",
                      "(i) wrong-path vs oracle future bits (Sec. 6)",
                      {"workload", "real wrong-path", "oracle trace",
                       "oracle inflation"});
        t.addNote("oracle bits make the critic look better than a "
                  "real machine could be, which is why the engine "
                  "walks real wrong paths");
        for (const Workload *w : sweeps[0].resolveWorkloads()) {
            const double real =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.workload == w &&
                                          !c.oracleFutureBits;
                               })
                    .mispPerKuops;
            const double oracle =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.workload == w &&
                                          c.oracleFutureBits;
                               })
                    .mispPerKuops;
            t.addRow({w->name, fmtDouble(real, 3),
                      fmtDouble(oracle, 3), pct(real, oracle)});
        }
        out.push_back(std::move(t));
    }

    // (ii) filtered vs unfiltered critic (§4).
    {
        const auto cells = sweeps[1].cells();
        ReportTable t("abl-filter",
                      "(ii) filtered vs unfiltered critic (Sec. 4)",
                      {"future bits", "unfiltered perceptron",
                       "filtered perceptron", "filter benefit"});
        for (unsigned fb : {1u, 8u, 12u}) {
            const double unf =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.spec.futureBits == fb &&
                                          *c.spec.critic ==
                                              CriticKind::
                                                  UnfilteredPerceptron;
                               })
                    .mispPerKuops;
            const double fil =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.spec.futureBits == fb &&
                                          *c.spec.critic ==
                                              CriticKind::
                                                  FilteredPerceptron;
                               })
                    .mispPerKuops;
            t.addRow({std::to_string(fb), fmtDouble(unf, 3),
                      fmtDouble(fil, 3), pct(unf, fil)});
        }
        out.push_back(std::move(t));
    }

    // (iii) filter tag width (§4).
    {
        const auto cells = sweeps[2].cells();
        ReportTable t("abl-tagwidth",
                      "(iii) filter tag width sweep (Sec. 4 says "
                      "8-10 bits suffice)",
                      {"tag bits", "misp/Kuops"});
        for (unsigned tag_bits : {4u, 6u, 8u, 10u, 12u, 14u}) {
            const double m =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.spec.filterTagBits ==
                                          tag_bits;
                               })
                    .mispPerKuops;
            t.addRow({std::to_string(tag_bits), fmtDouble(m, 3)});
        }
        out.push_back(std::move(t));
    }

    // (iv) checkpoint repair of BHR/BOR (§3.3).
    {
        const auto cells = sweeps[3].cells();
        ReportTable t("abl-repair",
                      "(iv) checkpoint repair of BHR/BOR (Sec. 3.3)",
                      {"configuration", "misp/Kuops"});
        for (const bool on : {true, false}) {
            const double m =
                aggregateCells(store, cells,
                               [&](const SweepCell &c) {
                                   return c.spec.repairHistory == on;
                               })
                    .mispPerKuops;
            t.addRow({on ? "repair on (paper design)"
                         : "repair off (polluted history)",
                      fmtDouble(m, 3)});
        }
        out.push_back(std::move(t));
    }

    // (v) speculative vs retired history update (§3.2).
    {
        const auto cells = sweeps[4].cells();
        ReportTable t("abl-spechist",
                      "(v) speculative vs retired history update "
                      "(Sec. 3.2)",
                      {"configuration", "misp/Kuops"});
        for (ProphetKind p :
             {ProphetKind::Gshare, ProphetKind::Perceptron}) {
            for (const bool on : {true, false}) {
                const double m =
                    aggregateCells(
                        store, cells,
                        [&](const SweepCell &c) {
                            return c.spec.prophet == p &&
                                   c.spec.speculativeHistory == on;
                        })
                        .mispPerKuops;
                t.addRow({prophetKindName(p) +
                              (on ? ", speculative update"
                                  : ", retired-only update"),
                          fmtDouble(m, 3)});
            }
        }
        out.push_back(std::move(t));
    }
    return out;
}

// ------------------------------------------------------------ warmup

std::vector<SweepSpec>
warmupSweeps(const FigureOptions &opts)
{
    SweepSpec s = baseSpec("warmup", opts,
                           {"int.crafty", "mm.mpeg"});
    s.axes.prophets = {ProphetKind::Perceptron};
    s.axes.prophetBudgets = {Budget::B8KB};
    s.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    s.axes.criticBudgets = {Budget::B8KB};
    s.axes.futureBits = {8};
    s.warmups = {5000, 10000, 20000, 40000, 80000};
    return {s};
}

std::vector<ReportTable>
warmupRender(const FigureOptions &opts, const ResultStore &store)
{
    const SweepSpec s = warmupSweeps(opts)[0];
    const auto cells = s.cells();
    const auto set = s.resolveWorkloads();

    // The ladder actually run: PCBP_BENCH_SCALE can flatten
    // neighbouring steps into one cell, so recover it from the cells
    // rather than restating the spec.
    std::vector<std::uint64_t> ladder;
    for (const auto &cell : cells)
        if (std::find(ladder.begin(), ladder.end(),
                      cell.warmupBranches) == ladder.end())
            ladder.push_back(cell.warmupBranches);
    std::sort(ladder.begin(), ladder.end());

    auto misp = [&](const Workload *w, bool hybrid,
                    std::uint64_t wb) {
        for (const auto &cell : cells)
            if (cell.workload == w &&
                bool(cell.spec.critic) == hybrid &&
                cell.warmupBranches == wb)
                return store.statsFor(cell).mispPerKuops();
        pcbp_fatal("warmup: no cell for ", w->name, " @", wb, "wb");
    };

    std::vector<std::string> headers = {"configuration"};
    for (const auto wb : ladder)
        headers.push_back(std::to_string(wb) + " wb");
    headers.push_back("drift, last step");
    ReportTable t("warmup",
                  "mispredict rate vs warmup budget (fixed measured "
                  "window)",
                  headers);
    t.addNote("prophet: 8KB perceptron; critic: 8KB tagged gshare "
              "@8fb; each row's cells differ only in warmup, so the "
              "row is one fork group — the runner simulates its "
              "longest warmup once and forks the rest (DESIGN.md "
              "§11)");
    t.addNote("metric: misp/Kuops over the same measured window; "
              "drift = reduction across the last warmup step");
    for (const Workload *w : set) {
        for (const bool hybrid : {false, true}) {
            std::vector<std::string> row = {
                w->name + (hybrid ? " + t.gshare" : " alone")};
            double prev = 0, last = 0;
            for (const auto wb : ladder) {
                prev = last;
                last = misp(w, hybrid, wb);
                row.push_back(fmtDouble(last, 3));
            }
            row.push_back(ladder.size() > 1 ? pct(prev, last) : "-");
            t.addRow(row);
        }
    }
    return {t};
}

} // namespace

// --------------------------------------------------------- registry

const std::vector<FigureDef> &
allFigures()
{
    static const std::vector<FigureDef> figures = {
        {"fig5", "Figure 5", "effect of the number of future bits",
         "With an 8KB perceptron prophet and an 8KB tagged gshare "
         "critic, adding one future bit cuts mispredicts ~15% on "
         "average; the per-benchmark response varies from 'keeps "
         "improving to 12 bits' (unzip) to 'only 1 bit helps' "
         "(tpcc).",
         "Every benchmark improves from 0 to 1 future bit; the "
         "per-benchmark shapes follow the paper-shape column.",
         fig5Sweeps, fig5Render},
        {"fig6", "Figure 6", "prophet/critic combinations and sizes",
         "Across three prophet/critic pairings, any critic beats the "
         "prophet alone, larger critics help, and the unfiltered "
         "critic regresses at high future-bit counts while filtering "
         "keeps the configurations from regressing as hard.",
         "Hybrid columns beat 'no critic'; larger critics improve "
         "each row; panel (a) worsens from 8 to 12 fb where the "
         "filtered panels hold.",
         fig6Sweeps, fig6Render},
        {"fig7", "Figure 7",
         "conventional vs prophet/critic at matched budgets",
         "At matched 16KB and 32KB total budgets (prophet gets half, "
         "critic half, 8 future bits), hybrids reduce the mispredict "
         "rate by 15-31% versus the conventional predictor of the "
         "same total size; the tagged gshare critic reaches 25-31%.",
         "Every hybrid row shows a positive reduction against its "
         "same-budget baseline, with t.gshare >= f.perceptron.",
         fig7Sweeps, fig7Render},
        {"fig8", "Figure 8", "distribution of critiques",
         "For a 4KB perceptron prophet with an 8KB tagged gshare "
         "critic, incorrect_disagree (the goal) outnumbers "
         "correct_disagree (the worst case); from 1 to 12 future "
         "bits incorrect_disagree grows (~+20%), correct_disagree "
         "shrinks (~-40%), and total explicit critiques fall.",
         "incorrect_disagree > correct_disagree in every column; "
         "the total-critiques row falls from 1 fb to 12 fb.",
         fig8Sweeps, fig8Render},
        {"fig9", "Figure 9", "uPC of conventional vs hybrids",
         "On the cycle-level timing model, 8KB+8KB hybrids with a "
         "tagged gshare critic speed up uPC over a 16KB prophet "
         "alone, growing with future bits to 8/7/5.2% at 12 bits "
         "(gshare/2Bc-gskew/perceptron).",
         "Speedup @12fb is positive for every prophet and grows "
         "with future bits (absolute uPC is higher than the paper's "
         "- see DESIGN.md §2).",
         fig9Sweeps, fig9Render},
        {"fig10", "Figure 10", "per-suite uPC",
         "The 8KB 2Bc-gskew + 8KB tagged gshare hybrid wins on every "
         "suite; FP00 gains least (1.7% at 12 fb), INT00 most "
         "(10.7%), WEB in between.",
         "Every suite row shows a positive speedup @12fb, with FP00 "
         "smallest and INT00 near the top.",
         fig10Sweeps, fig10Render},
        {"table4", "Table 4", "percentage of filtered predictions",
         "Roughly 2/3 to 3/4 of prophet predictions are filtered "
         "(no explicit critique); the share rises with future bits "
         "as the filter grows more selective, and the "
         "filtered-but-incorrect share stays around a percent, "
         "falling with critic size.",
         "'% none (total)' lands in the 60-80 band and rises from 1 "
         "to 12 fb; '% incorrect_none' stays in single digits and "
         "falls with critic size.",
         table4Sweeps, table4Render},
        {"headline", "Abstract", "headline claims",
         "An 8KB+8KB prophet/critic hybrid has ~39% fewer "
         "mispredicts than a 16KB 2Bc-gskew; flush distance grows "
         "from one per 418 uops to one per 680; gcc's mispredicted "
         "branches drop from 3.11% to 1.23%; uPC improves 7.8% and "
         "fetched uops drop 8.6%.",
         "All four metrics move in the paper's direction; the "
         "perceptron pairing shows the accuracy gain most clearly "
         "on this substrate (see the pairings table).",
         headlineSweeps, headlineRender},
        {"ablations", "Secs. 3-6", "design-choice ablations",
         "The paper's design choices each pay for themselves: real "
         "wrong-path future bits (vs oracle traces), critique "
         "filtering, 8-10 filter tag bits, checkpoint repair of "
         "BHR/BOR, and speculative history update.",
         "Oracle bits inflate accuracy; filtering wins at every "
         "future-bit count; accuracy is flat above ~8 tag bits; "
         "repair and speculative update each beat their ablated "
         "configurations.",
         ablationsSweeps, ablationsRender},
        {"warmup", "Methodology", "warmup sensitivity",
         "The paper measures each benchmark after warming the "
         "predictors on a prefix of the trace; the hybrid's "
         "advantage must therefore survive any reasonable warmup "
         "budget rather than being a cold-start artifact.",
         "Rates settle as the warmup budget doubles (the last-step "
         "drift column shrinks toward zero) and the hybrid row "
         "stays below its prophet-alone row at every warmup.",
         warmupSweeps, warmupRender},
    };
    return figures;
}

const FigureDef &
figureById(const std::string &id)
{
    for (const auto &f : allFigures())
        if (f.id == id)
            return f;
    std::string known;
    for (const auto &f : allFigures())
        known += (known.empty() ? "" : ", ") + f.id;
    pcbp_fatal("unknown figure '", id, "' (known: ", known, ")");
}

std::vector<const FigureDef *>
figuresByIds(const std::vector<std::string> &ids)
{
    std::vector<const FigureDef *> out;
    auto push = [&](const FigureDef &f) {
        for (const FigureDef *have : out)
            if (have == &f)
                return;
        out.push_back(&f);
    };
    for (const auto &id : ids) {
        if (id == "all") {
            for (const auto &f : allFigures())
                push(f);
            continue;
        }
        push(figureById(id));
    }
    if (out.empty())
        for (const auto &f : allFigures())
            out.push_back(&f);
    // Report in registry (paper) order regardless of request order.
    std::sort(out.begin(), out.end(),
              [](const FigureDef *a, const FigureDef *b) {
                  return a - b < 0;
              });
    return out;
}

} // namespace pcbp
