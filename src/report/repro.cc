#include "report/repro.hh"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/progress.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

namespace
{

/** The figure options in effect after quick-mode defaulting. */
FigureOptions
effectiveFigureOptions(const ReproOptions &opts)
{
    FigureOptions fo = opts.figure;
    if (opts.quick && fo.branches == 0)
        fo.branches = kQuickBranches;
    return fo;
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string s;
    for (const auto &i : items)
        s += (s.empty() ? "" : ",") + i;
    return s;
}

/**
 * The canonical `pcbp_repro run` invocation for these options —
 * embedded in the report so every REPRO.md says how to regenerate
 * itself. Deliberately omits --jobs (no effect on output) and the
 * actual out path (environment-specific).
 */
std::string
canonicalCommand(const std::vector<const FigureDef *> &figures,
                 const ReproOptions &opts)
{
    std::string cmd = "pcbp_repro run --figures ";
    std::vector<std::string> ids;
    for (const FigureDef *f : figures)
        ids.push_back(f->id);
    cmd += ids.size() == allFigures().size() ? "all" : joinList(ids);
    if (!opts.figure.workloads.empty())
        cmd += " --workloads " + joinList(opts.figure.workloads);
    if (opts.figure.branches)
        cmd += " --branches " + std::to_string(opts.figure.branches);
    else if (opts.quick)
        cmd += " --quick";
    cmd += " --out <dir>";
    return cmd;
}

/**
 * GitHub-style heading anchor: lowercase, alphanumerics kept,
 * spaces to dashes, everything else dropped. tools/check_docs.py
 * implements the same rule; keep them in sync.
 */
std::string
slugify(const std::string &heading)
{
    std::string out;
    for (const char c : heading) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += char(std::tolower(static_cast<unsigned char>(c)));
        else if (c == ' ')
            out += '-';
        else if (c == '-' || c == '_')
            out += c;
    }
    return out;
}

std::string
figureHeading(const FigureDef &f)
{
    return f.paperRef + ": " + f.title + " (" + f.id + ")";
}

} // namespace

std::string
renderReproMarkdown(const std::vector<const FigureDef *> &figures,
                    const std::vector<const ResultStore *> &stores,
                    const ReproOptions &opts)
{
    pcbp_assert(figures.size() == stores.size());
    const FigureOptions fo = effectiveFigureOptions(opts);

    std::ostringstream os;
    os << "# REPRO — Prophet/Critic Hybrid Branch Prediction\n\n"
       << "Reproduction report for *Prophet/Critic Hybrid Branch "
          "Prediction* (Falcón, Stark, Ramírez, Lai, Valero — ISCA "
          "2004) on this repository's synthetic workload analogues. "
          "Generated — do not edit; regenerate with the command "
          "below. Per-figure commentary and known deviations live in "
          "`docs/FIGURES.md`.\n\n"
       << "**Command.** `" << canonicalCommand(figures, opts)
       << "`\n\n";

    // ------------------------------------------------- provenance
    std::size_t cells = 0;
    for (std::size_t i = 0; i < figures.size(); ++i)
        for (const auto &spec : figures[i]->sweeps(fo))
            cells += spec.cells().size();

    os << "## Provenance\n\n"
       << "| field | value |\n| :--- | ---: |\n"
       << "| figures | " << figures.size() << " |\n"
       << "| grid cells | " << cells << " |\n"
       << "| workloads | "
       << (fo.defaultWorkloads() ? std::string("figure defaults")
                                 : joinList(fo.workloads))
       << " |\n"
       << "| branches per cell | "
       << (fo.branches ? std::to_string(fo.branches) +
                             (opts.quick ? " (quick)" : "")
                       : std::string("workload defaults"))
       << " |\n"
       << "| PCBP_BENCH_SCALE | " << fmtDouble(benchScale(), 2)
       << " |\n\n"
       << "Output is byte-identical for any `--jobs` value and "
          "across kill/resume boundaries (sweep-runner contract); "
          "deltas versus paper-reported numbers appear as `paper` "
          "columns in the tables.\n\n";

    // --------------------------------------------------- contents
    os << "## Contents\n\n";
    for (const FigureDef *f : figures)
        os << "- [" << figureHeading(*f) << "](#"
           << slugify(figureHeading(*f)) << ")\n";
    os << "\n";

    // ---------------------------------------------------- figures
    for (std::size_t i = 0; i < figures.size(); ++i) {
        const FigureDef &f = *figures[i];
        os << "## " << figureHeading(f) << "\n\n"
           << "**Claim (paper).** " << f.claim << "\n\n"
           << "**Expected on the seed suites.** " << f.expected
           << "\n\n"
           << "**Reproduce.** `pcbp_repro run --figures " << f.id
           << "` — artifacts: `" << f.id << ".csv`, `" << f.id
           << ".json`.\n\n";
        for (const auto &table : f.render(fo, *stores[i]))
            os << table.toMarkdown() << "\n";
    }
    return os.str();
}

ReproSummary
runRepro(const ReproOptions &opts)
{
    namespace fs = std::filesystem;
    const auto figures = figuresByIds(opts.figures);
    const FigureOptions fo = effectiveFigureOptions(opts);

    const fs::path out(opts.outDir);
    const fs::path storeDir = out / "store";
    std::error_code ec;
    fs::create_directories(storeDir, ec);
    if (ec)
        pcbp_fatal("repro: cannot create ", storeDir.string(), ": ",
                   ec.message());

    auto log = [&](const std::string &line) {
        if (opts.log)
            opts.log(line);
    };

    std::unique_ptr<ProgressMeter> meter;
    if (opts.progress && !opts.renderOnly) {
        std::size_t total = 0;
        for (const FigureDef *f : figures)
            for (const auto &spec : f->sweeps(fo))
                total += spec.cells().size();
        meter = std::make_unique<ProgressMeter>(total, "cells");
    }

    ReproSummary summary;
    std::vector<std::unique_ptr<ResultStore>> stores;
    for (const FigureDef *f : figures) {
        const std::string store_path =
            (storeDir / (f->id + ".jsonl")).string();
        auto store = std::make_unique<ResultStore>(store_path);
        const std::uint64_t figStart =
            opts.tracer ? opts.tracer->now() : 0;

        ReproFigureSummary fsum;
        fsum.id = f->id;
        for (const auto &spec : f->sweeps(fo)) {
            const bool budget_spent =
                opts.maxCells &&
                summary.executedCells + fsum.executedCells >=
                    opts.maxCells;
            if (opts.renderOnly || budget_spent) {
                // Count without executing anything.
                const auto cells = spec.cells();
                fsum.totalCells += cells.size();
                for (const auto &cell : cells)
                    if (store->has(cell.key()))
                        ++fsum.skippedCells;
                continue;
            }
            SweepRunOptions run;
            run.jobs = opts.jobs;
            if (opts.maxCells)
                run.maxCells = opts.maxCells - summary.executedCells -
                               fsum.executedCells;
            run.stats = opts.stats;
            run.tracer = opts.tracer;
            run.fork = opts.fork;
            run.batch = opts.batch;
            run.onCellDone = [&](const SweepCell &cell,
                                 const CellResult &result) {
                log(f->id + ": " + cell.key());
                if (meter)
                    meter->tick(result.committedBranches);
            };
            const SweepRunSummary s = runSweep(spec, *store, run);
            fsum.totalCells += s.totalCells;
            fsum.executedCells += s.executedCells;
            fsum.skippedCells += s.skippedCells;
            if (meter)
                meter->setResumed(summary.skippedCells +
                                  fsum.skippedCells);
        }
        log(f->id + ": " + std::to_string(fsum.totalCells) +
            " cells (" + std::to_string(fsum.executedCells) +
            " executed, " + std::to_string(fsum.skippedCells) +
            " resumed)");
        if (opts.tracer) {
            opts.tracer->record(f->id, "figure", 0, figStart,
                                opts.tracer->now());
        }
        if (opts.stats)
            store->exportStats(*opts.stats, "store." + f->id);

        summary.totalCells += fsum.totalCells;
        summary.executedCells += fsum.executedCells;
        summary.skippedCells += fsum.skippedCells;
        summary.figures.push_back(std::move(fsum));
        stores.push_back(std::move(store));
    }
    if (meter)
        meter->finish();

    summary.complete =
        summary.skippedCells + summary.executedCells ==
        summary.totalCells;
    if (!summary.complete)
        return summary;

    // ----------------------------------------- render the artifacts
    auto write = [&](const fs::path &path, const std::string &text) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (!f)
            pcbp_fatal("repro: cannot write ", path.string());
        f << text;
    };

    std::vector<const ResultStore *> store_ptrs;
    for (const auto &s : stores)
        store_ptrs.push_back(s.get());

    for (std::size_t i = 0; i < figures.size(); ++i) {
        const auto tables = figures[i]->render(fo, *store_ptrs[i]);
        write(out / (figures[i]->id + ".csv"), tablesToCsv(tables));
        write(out / (figures[i]->id + ".json"),
              tablesToJson(tables));
    }
    const fs::path report = out / "REPRO.md";
    write(report, renderReproMarkdown(figures, store_ptrs, opts));
    summary.reportPath = report.string();
    log("report: " + summary.reportPath);
    return summary;
}

int
figureMain(const std::string &figure_id, int argc, char **argv)
{
    const FigureDef &fig = figureById(figure_id);
    FigureOptions fo;
    unsigned jobs = 0;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                pcbp_fatal(a, " needs a value");
            return argv[++i];
        };
        if (a == "--workloads" || a == "-w" || a == "--suite") {
            std::istringstream is(next());
            std::string item;
            while (std::getline(is, item, ','))
                if (!item.empty())
                    fo.workloads.push_back(item);
        } else if (a == "--branches") {
            fo.branches = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--jobs") {
            jobs = unsigned(std::atoi(next().c_str()));
        } else if (a == "--quick") {
            quick = true;
        } else {
            std::cerr
                << "usage: " << argv[0]
                << " [--workloads LIST] [--suite LIST]"
                   " [--branches N] [--jobs N] [--quick]\n"
                << "reproduces " << fig.paperRef << " (" << fig.title
                << ") on the sweep subsystem; also available as"
                   " `pcbp_repro run --figures "
                << fig.id << "`\n";
            return 2;
        }
    }
    if (quick && fo.branches == 0)
        fo.branches = kQuickBranches;

    ResultStore store;
    for (const auto &spec : fig.sweeps(fo)) {
        SweepRunOptions run;
        run.jobs = jobs;
        runSweep(spec, store, run);
    }

    std::cout << "=== " << figureHeading(fig) << " ===\n"
              << fig.claim << "\n\n";
    for (const auto &table : fig.render(fo, store))
        std::cout << table.toMarkdown() << "\n";
    return 0;
}

} // namespace pcbp
