/**
 * @file
 * The reproduction pipeline: one call (or one `pcbp_repro run`) from
 * a set of paper figures to a rendered report.
 *
 * runRepro() executes every selected figure's sweep grids against a
 * per-figure persistent ResultStore under `<out>/store/`, then — once
 * every grid cell is present — renders `<out>/REPRO.md` plus
 * per-figure `<id>.csv` / `<id>.json` artifacts.
 *
 * Contracts, inherited from the sweep subsystem and the string-table
 * model (report/table.hh):
 *
 *  - **byte-determinism**: for fixed options (and PCBP_BENCH_SCALE),
 *    every emitted file is byte-identical for any `jobs` value — the
 *    report never embeds timestamps, host names, or job counts;
 *  - **resume**: killing a run mid-grid loses at most the in-flight
 *    cells; re-running computes only the delta and converges to the
 *    same bytes. `maxCells` bounds newly executed cells per call,
 *    which is also how tests exercise interruption deterministically;
 *  - **re-render**: a completed store reproduces the report without
 *    re-simulating.
 */

#ifndef PCBP_REPORT_REPRO_HH
#define PCBP_REPORT_REPRO_HH

#include <functional>
#include <string>
#include <vector>

#include "report/figure.hh"

namespace pcbp
{

class SpanTracer;
class StatRegistry;

struct ReproOptions
{
    /** Figure ids ("fig5", ..., or "all"); empty = every figure. */
    std::vector<std::string> figures;

    /** Workload/branch overrides applied to every figure. */
    FigureOptions figure;

    /**
     * Quick mode: when no explicit branch override is given, run
     * every cell at a short fixed budget (kQuickBranches) — minutes
     * of work become seconds, at reduced statistical weight.
     */
    bool quick = false;

    /** Output directory (created if missing). */
    std::string outDir = "repro-out";

    /** Worker threads (0 = one per hardware thread). */
    unsigned jobs = 0;

    /**
     * Stop after this many newly executed cells across the whole run
     * (0 = no limit). The report is only rendered once every grid is
     * complete; an interrupted run says what remains.
     */
    std::size_t maxCells = 0;

    /**
     * Never simulate: render from the existing stores if they are
     * complete, otherwise report what is missing (pcbp_repro render).
     */
    bool renderOnly = false;

    /** Optional progress line sink (cell completions, phases). */
    std::function<void(const std::string &)> log;

    /**
     * Run-wide stats registry: merged sim counters from every newly
     * executed cell plus host-side pool/store/sweep counters. Not
     * owned; null = no collection.
     */
    StatRegistry *stats = nullptr;

    /** Span tracer: one "figure" span per selected figure plus the
     *  per-cell spans from the sweeps. Not owned; null = off. */
    SpanTracer *tracer = nullptr;

    /**
     * Throttled stderr heartbeat (cells done/total, branches/s,
     * ETA). Quiet when the log level filters Info.
     */
    bool progress = false;

    /**
     * Fork-based sweep execution (DESIGN.md §11): grid cells that
     * differ only in run lengths share one simulation per
     * configuration. Every artifact is byte-identical with this on
     * or off; off (pcbp_repro --no-fork) forces one full simulation
     * per cell.
     */
    bool fork = true;

    /**
     * Batched sweep execution (DESIGN.md §12): all pending cells of
     * one (workload, mode) pair run as one lockstep pass over a
     * shared committed stream, fork groups peeling inside it. Every
     * artifact is byte-identical with this on or off
     * (pcbp_repro --batch).
     */
    bool batch = false;
};

/** The fixed per-cell budget of --quick runs. */
constexpr std::uint64_t kQuickBranches = 4000;

/** Per-figure completion accounting. */
struct ReproFigureSummary
{
    std::string id;
    std::size_t totalCells = 0;
    std::size_t executedCells = 0; ///< newly computed this run
    std::size_t skippedCells = 0;  ///< resumed from the store
};

struct ReproSummary
{
    std::vector<ReproFigureSummary> figures;
    std::size_t totalCells = 0;
    std::size_t executedCells = 0;
    std::size_t skippedCells = 0;

    /** Every selected grid is fully in its store. */
    bool complete = false;

    /** Path of the rendered report ("" unless complete). */
    std::string reportPath;
};

/** Run the pipeline; see the file comment for the contracts. */
ReproSummary runRepro(const ReproOptions &opts);

/**
 * Render the full report document for already-completed stores.
 * @p stores pairs each selected figure (registry order) with its
 * completed store. Exposed for tests; runRepro() calls it.
 */
std::string renderReproMarkdown(
    const std::vector<const FigureDef *> &figures,
    const std::vector<const ResultStore *> &stores,
    const ReproOptions &opts);

/**
 * Shared main() for the thin bench/fig* binaries: run one figure
 * with an in-memory store and print its report to stdout.
 * Flags: --workloads/-w LIST, --suite LIST (alias), --branches N,
 * --jobs N, --quick.
 */
int figureMain(const std::string &figure_id, int argc, char **argv);

} // namespace pcbp

#endif // PCBP_REPORT_REPRO_HH
