#include "report/table.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace pcbp
{

namespace
{

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
mdEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '|')
            out += "\\|";
        else
            out += c;
    }
    return out;
}

} // namespace

ReportTable::ReportTable(std::string id, std::string title,
                         std::vector<std::string> columns)
    : tableId(std::move(id)), tableTitle(std::move(title)),
      head(std::move(columns))
{
    pcbp_assert(!head.empty(), "report table needs columns");
}

void
ReportTable::addNote(std::string note)
{
    noteLines.push_back(std::move(note));
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != head.size())
        pcbp_fatal("report table '", tableId, "': row width ",
                   cells.size(), " != header width ", head.size());
    body.push_back(std::move(cells));
}

std::string
ReportTable::toMarkdown() const
{
    std::ostringstream os;
    os << "**" << tableTitle << "**\n";
    for (std::size_t i = 0; i < noteLines.size(); ++i)
        os << noteLines[i]
           << (i + 1 < noteLines.size() ? "\\\n" : "\n");
    os << "\n";

    os << "|";
    for (const auto &c : head)
        os << " " << mdEscape(c) << " |";
    os << "\n|";
    for (std::size_t i = 0; i < head.size(); ++i)
        os << (i == 0 ? " :--- |" : " ---: |");
    os << "\n";
    for (const auto &row : body) {
        os << "|";
        for (const auto &cell : row)
            os << " " << mdEscape(cell) << " |";
        os << "\n";
    }
    return os.str();
}

std::string
ReportTable::toCsv() const
{
    std::ostringstream os;
    os << "# " << tableId << ": " << tableTitle << "\n";
    for (std::size_t i = 0; i < head.size(); ++i)
        os << (i ? "," : "") << csvEscape(head[i]);
    os << "\n";
    for (const auto &row : body) {
        for (std::size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << csvEscape(row[i]);
        os << "\n";
    }
    return os.str();
}

std::string
ReportTable::toJson() const
{
    std::ostringstream os;
    os << "{\"id\":\"" << jsonEscape(tableId) << "\",\"title\":\""
       << jsonEscape(tableTitle) << "\",\"notes\":[";
    for (std::size_t i = 0; i < noteLines.size(); ++i)
        os << (i ? "," : "") << "\"" << jsonEscape(noteLines[i])
           << "\"";
    os << "],\"columns\":[";
    for (std::size_t i = 0; i < head.size(); ++i)
        os << (i ? "," : "") << "\"" << jsonEscape(head[i]) << "\"";
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < body.size(); ++r) {
        os << (r ? "," : "") << "[";
        for (std::size_t i = 0; i < body[r].size(); ++i)
            os << (i ? "," : "") << "\"" << jsonEscape(body[r][i])
               << "\"";
        os << "]";
    }
    os << "]}";
    return os.str();
}

std::string
tablesToCsv(const std::vector<ReportTable> &tables)
{
    std::string out;
    for (std::size_t i = 0; i < tables.size(); ++i) {
        if (i)
            out += "\n";
        out += tables[i].toCsv();
    }
    return out;
}

std::string
tablesToJson(const std::vector<ReportTable> &tables)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < tables.size(); ++i) {
        out += "  " + tables[i].toJson();
        out += i + 1 < tables.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

} // namespace pcbp
