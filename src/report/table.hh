/**
 * @file
 * The report table model: the one value type figure definitions
 * produce and every renderer consumes.
 *
 * A ReportTable is a rectangular grid of pre-formatted strings plus
 * presentation metadata (id, title, note lines). Keeping cells as
 * strings — formatted once, by the figure definition, with the
 * deterministic fmtDouble helpers — is what makes every rendering
 * byte-stable: Markdown, CSV, and JSON are pure functions of the
 * table value, so reports are identical across `--jobs`, across
 * resume boundaries, and across machines.
 *
 * Ownership: a ReportTable owns all of its strings; it holds no
 * references into stores or figures and can be freely copied,
 * returned, and cached.
 */

#ifndef PCBP_REPORT_TABLE_HH
#define PCBP_REPORT_TABLE_HH

#include <string>
#include <vector>

namespace pcbp
{

class ReportTable
{
  public:
    /**
     * @param id Filename/anchor-safe identifier, unique within the
     *        figure (e.g. "fig6a").
     * @param title Human-readable table title.
     * @param columns Header cells; every row must match this width.
     */
    ReportTable(std::string id, std::string title,
                std::vector<std::string> columns);

    /** Append a free-form caption line (metric, paper numbers). */
    void addNote(std::string note);

    /** Append a row (fatal if the width differs from the header). */
    void addRow(std::vector<std::string> cells);

    const std::string &id() const { return tableId; }
    const std::string &title() const { return tableTitle; }
    const std::vector<std::string> &notes() const { return noteLines; }
    const std::vector<std::string> &columns() const { return head; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return body;
    }

    /**
     * GitHub-flavored Markdown: bold title, note lines, then a pipe
     * table ('|' in cells is escaped).
     */
    std::string toMarkdown() const;

    /**
     * One CSV section: a `# id: title` comment line, the header, the
     * rows. Cells containing commas, quotes, or newlines are quoted
     * (RFC 4180 style).
     */
    std::string toCsv() const;

    /** JSON object: {"id","title","notes","columns","rows"}. */
    std::string toJson() const;

  private:
    std::string tableId;
    std::string tableTitle;
    std::vector<std::string> noteLines;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Render a figure's tables as one CSV document (sections in order). */
std::string tablesToCsv(const std::vector<ReportTable> &tables);

/** Render a figure's tables as one JSON array. */
std::string tablesToJson(const std::vector<ReportTable> &tables);

} // namespace pcbp

#endif // PCBP_REPORT_TABLE_HH
