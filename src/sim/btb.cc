#include "sim/btb.hh"

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace pcbp
{

Btb::Btb(std::size_t num_entries, unsigned num_ways)
    : table(num_entries),
      numSets(num_entries / num_ways),
      numWays(num_ways),
      indexBits(log2Floor(num_entries / num_ways))
{
    pcbp_assert(num_ways >= 1 && num_entries % num_ways == 0);
    pcbp_assert(isPowerOfTwo(numSets), "BTB sets must be 2^n");
}

std::size_t
Btb::setOf(Addr pc) const
{
    return (pc >> 2) & maskBits(indexBits);
}

std::uint64_t
Btb::tagOf(Addr pc) const
{
    return pc >> (2 + indexBits);
}

bool
Btb::lookup(Addr pc) const
{
    const std::size_t set = setOf(pc);
    const std::uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < numWays; ++w) {
        const Entry &e = table[set * numWays + w];
        if (e.valid && e.tag == tag)
            return true;
    }
    return false;
}

void
Btb::allocate(Addr pc)
{
    const std::size_t set = setOf(pc);
    const std::uint64_t tag = tagOf(pc);

    std::size_t victim = set * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        const std::size_t idx = set * numWays + w;
        Entry &e = table[idx];
        if (e.valid && e.tag == tag) {
            e.lastUse = ++tick;
            return;
        }
        if (!e.valid) {
            victim = idx;
        } else if (table[victim].valid &&
                   e.lastUse < table[victim].lastUse) {
            victim = idx;
        }
    }
    table[victim].valid = true;
    table[victim].tag = tag;
    table[victim].lastUse = ++tick;
}

void
Btb::reset()
{
    for (auto &e : table)
        e = Entry{};
    tick = 0;
}

} // namespace pcbp
