/**
 * @file
 * Branch target buffer used by the front end to identify branches
 * (§5): a set-associative tag array with LRU replacement. A branch
 * that misses the BTB is invisible to the hybrid — the front end
 * falls through — and an entry is allocated when the branch commits.
 */

#ifndef PCBP_SIM_BTB_HH
#define PCBP_SIM_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pcbp
{

class Btb
{
  public:
    /**
     * @param num_entries Total entries (power of two; Table 2 uses
     *        4096).
     * @param num_ways Associativity (4 in Table 2).
     */
    Btb(std::size_t num_entries, unsigned num_ways);

    /** True when the branch at @p pc is present. */
    bool lookup(Addr pc) const;

    /** Allocate (or refresh) the entry for @p pc; commit-time. */
    void allocate(Addr pc);

    void reset();

    std::size_t entries() const { return table.size(); }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t setOf(Addr pc) const;
    std::uint64_t tagOf(Addr pc) const;

    std::vector<Entry> table;
    std::size_t numSets;
    unsigned numWays;
    unsigned indexBits;
    std::uint64_t tick = 0;
};

} // namespace pcbp

#endif // PCBP_SIM_BTB_HH
