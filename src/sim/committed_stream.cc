#include "sim/committed_stream.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/stat_registry.hh"
#include "workload/trace.hh"

namespace pcbp
{

void
CommittedStream::growWindow()
{
    std::vector<CommittedBranch> bigger(window.size() * 2);
    for (std::size_t i = 0; i < count; ++i)
        bigger[i] = window[(head + i) & (window.size() - 1)];
    window = std::move(bigger);
    head = 0;
}

const CommittedBranch *
CommittedStream::atSlow(std::uint64_t idx)
{
    pcbp_assert(idx >= base, "reading a released committed record");
    while (!ended && base + count <= idx) {
        if (count == window.size())
            growWindow();
        CommittedBranch r;
        if (!produceNext(r)) {
            ended = true;
            break;
        }
        window[(head + count) & (window.size() - 1)] = r;
        ++count;
        peak = std::max(peak, count);
    }
    if (idx < base + count)
        return &window[(head + static_cast<std::size_t>(idx - base)) &
                       (window.size() - 1)];
    return nullptr;
}

ProgramWalkStream::ProgramWalkStream(Program &program_,
                                     std::uint64_t limit_)
    : program(program_), limit(limit_), cur(program_.entry())
{
    program.validate();
    program.resetWalk();
}

ProgramWalkStream::ProgramWalkStream(const ProgramWalkStream &other,
                                     Program &program_,
                                     std::uint64_t limit_)
    : CommittedStream(other), program(program_), limit(limit_),
      cur(other.cur), walked(other.walked)
{
    // The adopted window and walk cursor must lie inside this
    // stream's own budget, or the fork would hold records a fresh
    // stream of this limit could never have produced.
    pcbp_assert(walked <= limit,
                "stream fork past the forked stream's limit");
    pcbp_assert(program.commitCount() == other.program.commitCount(),
                "stream fork onto a program at a different position");
}

bool
ProgramWalkStream::produceNext(CommittedBranch &out)
{
    if (walked >= limit)
        return false;
    const BasicBlock &b = program.block(cur);
    const bool taken = program.evalOutcome(cur);
    out = {cur, b.branchPc, taken, b.numUops};
    cur = program.successor(cur, taken);
    ++walked;
    return true;
}

TraceFileStream::TraceFileStream(const std::string &path_,
                                 std::size_t chunk_records)
    : path(path_)
{
    pcbp_assert(chunk_records >= 1);
    // One open: the header read validates the magic and leaves the
    // file positioned at the first record.
    file = openTraceFile(path, count);
    buf.resize(chunk_records * tracefmt::recordBytes);
}

TraceFileStream::TraceFileStream(const std::string &path_,
                                 std::uint64_t start_ordinal,
                                 std::size_t chunk_records)
    : TraceFileStream(path_, chunk_records)
{
    pcbp_assert(start_ordinal <= count,
                "trace seek past the end of the file");
    if (std::fseek(file,
                   static_cast<long>(start_ordinal *
                                     tracefmt::recordBytes),
                   SEEK_CUR) != 0)
        pcbp_fatal("cannot seek '", path, "' to a start ordinal");
    decoded = start_ordinal;
    seekBase(start_ordinal);
}

TraceFileStream::TraceFileStream(const TraceFileStream &other)
    : TraceStream(other), path(other.path), count(other.count),
      decoded(other.decoded), buf(other.buf), bufPos(other.bufPos),
      bufLen(other.bufLen)
{
    std::uint64_t header_count = 0;
    file = openTraceFile(path, header_count);
    pcbp_assert(header_count == count,
                "trace file changed under a stream fork");
    // openTraceFile left us after the header; skip what the original
    // already pulled off the file (decoded records plus the unread
    // tail of its buffered chunk).
    const std::uint64_t consumed =
        decoded * tracefmt::recordBytes + (bufLen - bufPos);
    if (std::fseek(file, static_cast<long>(consumed), SEEK_CUR) != 0)
        pcbp_fatal("cannot seek '", path, "' for a stream fork");
}

TraceFileStream::~TraceFileStream()
{
    if (file)
        std::fclose(file);
}

bool
TraceFileStream::produceNext(CommittedBranch &out)
{
    if (decoded >= count)
        return false;
    if (bufPos >= bufLen) {
        const std::uint64_t remaining = count - decoded;
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining,
                                    buf.size() / tracefmt::recordBytes));
        if (std::fread(buf.data(), tracefmt::recordBytes, want, file) !=
            want) {
            pcbp_fatal("trace file truncated");
        }
        bufPos = 0;
        bufLen = want * tracefmt::recordBytes;
    }
    out = tracefmt::decodeRecord(buf.data() + bufPos);
    bufPos += tracefmt::recordBytes;
    ++decoded;
    return true;
}

CompressedTraceStream::CompressedTraceStream(const std::string &path)
    : reader(Trace2Reader::open(path))
{
}

CompressedTraceStream::CompressedTraceStream(const std::string &path,
                                             std::uint64_t start_ordinal)
    : reader(Trace2Reader::open(path))
{
    pcbp_assert(start_ordinal <= reader->recordCount(),
                "trace seek past the end of the file");
    decoded = start_ordinal;
    seekBase(start_ordinal);
    ++seekCount;
}

bool
CompressedTraceStream::produceNext(CommittedBranch &out)
{
    if (decoded >= reader->recordCount())
        return false;
    const std::uint64_t b = reader->blockOfOrdinal(decoded);
    if (b != blockIdx) {
        reader->decodeBlock(b, block);
        blockIdx = b;
        ++blockDecodes;
    }
    out = block[static_cast<std::size_t>(
        decoded - b * reader->recordsPerBlock())];
    ++decoded;
    return true;
}

void
CompressedTraceStream::exportHostStats(StatRegistry &reg) const
{
    reg.addHost("trace.store.blocks_decoded", blockDecodes);
    reg.addHost("trace.store.seeks", seekCount);
    reg.setHostMax("trace.store.bytes_mapped", reader->mappedBytes());
}

std::unique_ptr<TraceStream>
openTraceStream(const std::string &path)
{
    if (isTrace2File(path))
        return std::make_unique<CompressedTraceStream>(path);
    return std::make_unique<TraceFileStream>(path);
}

std::unique_ptr<TraceStream>
openTraceStreamAt(const std::string &path, std::uint64_t ordinal)
{
    if (isTrace2File(path))
        return std::make_unique<CompressedTraceStream>(path, ordinal);
    return std::make_unique<TraceFileStream>(path, ordinal, 4096);
}

bool
PrecomputedStream::produceNext(CommittedBranch &out)
{
    if (next >= trace.size())
        return false;
    out = trace[static_cast<std::size_t>(next++)];
    return true;
}

} // namespace pcbp
