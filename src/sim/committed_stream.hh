/**
 * @file
 * Streaming committed-branch sources.
 *
 * Both simulators consume the architectural (committed) branch
 * stream strictly at their commit/resolve pointers, plus a small
 * lookahead for the oracle-future-bit ablation. Precomputing the
 * whole stream into a std::vector<CommittedBranch> therefore wastes
 * O(run length) memory for O(pipeline) worth of liveness — and caps
 * how long a run can be. A CommittedStream produces records on
 * demand into a sliding window: the consumer reads records by
 * absolute index with at(), and releases everything older than its
 * commit pointer with release(), so resident memory is bounded by
 * pipeline depth + future-bit lookahead regardless of run length.
 *
 * Backends:
 *  - ProgramWalkStream: walks a Program's CFG architecturally on the
 *    fly (the default path; replaces walkProgram's eager vector).
 *  - TraceFileStream: chunked replay of a PCBPTRC1 binary trace file
 *    (see workload/trace.hh), making externally recorded committed
 *    streams a workload class of their own.
 *  - CompressedTraceStream: block-decoded replay of a PCBPTRC2
 *    compressed indexed trace (workload/trace2.hh), sharing one
 *    mmap-backed reader across forks and seeking to any ordinal by
 *    decoding at most one block.
 *  - PrecomputedStream: wraps an in-memory vector; used by the
 *    equivalence tests that pin the streaming path to the historical
 *    precomputed-vector behavior.
 *
 * Trace-file consumers should construct through openTraceStream(),
 * which sniffs the magic and picks the backend; both trace backends
 * share the TraceStream fork seam.
 *
 * See DESIGN.md §4 for how the streams plug into the spec core.
 */

#ifndef PCBP_SIM_COMMITTED_STREAM_HH
#define PCBP_SIM_COMMITTED_STREAM_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "workload/cfg.hh"
#include "workload/trace2.hh"

namespace pcbp
{

class StatRegistry;

/**
 * A monotone window over the committed branch stream.
 *
 * Usage contract: at(i) is valid for any i not yet released; records
 * below the release floor are gone for good (asserted). Streams are
 * single-use — construct a fresh one per run.
 *
 * The resident window is a power-of-two ring buffer and the
 * window-hit path of at()/release() is inline: both simulators call
 * them once per committed branch, so the common case — the record is
 * already resident — must cost an index mask, not an out-of-line
 * call into deque bookkeeping. Production (the virtual produceNext)
 * happens on the atSlow() refill path only.
 */
class CommittedStream
{
  public:
    virtual ~CommittedStream() = default;

    /**
     * Record at absolute index @p idx, producing records on demand.
     * Returns nullptr once @p idx is at or past the end of the
     * stream. The pointer is invalidated by the next at()/release().
     */
    const CommittedBranch *
    at(std::uint64_t idx)
    {
        pcbp_dassert(idx >= base, "reading a released committed record");
        if (idx - base < count) {
            return &window[static_cast<std::size_t>(head + (idx - base)) &
                           (window.size() - 1)];
        }
        ++refillCount; // cold path: counting here costs nothing hot
        return atSlow(idx);
    }

    /** Allow records at indices below @p idx to be discarded. */
    void
    release(std::uint64_t idx)
    {
        while (base < idx && count > 0) {
            head = (head + 1) & (window.size() - 1);
            ++base;
            --count;
        }
    }

    /** Total records this stream will produce. */
    virtual std::uint64_t length() const = 0;

    /** Records currently resident in the window. */
    std::size_t windowSize() const { return count; }

    /** High-water mark of the window — the memory bound under test. */
    std::size_t windowPeak() const { return peak; }

    /** Records produced so far (window base + window size). */
    std::uint64_t produced() const { return base + count; }

    /** Times at() fell off the window onto the refill path. */
    std::uint64_t refills() const { return refillCount; }

    /** Backend identifier for stats ("program_walk", ...). */
    virtual const char *backendName() const = 0;

    /**
     * Export backend-specific host counters (trace.store.* for the
     * compressed backend) into the *host* section of @p reg. Host
     * stats describe this execution, never the simulated work, so
     * backends may differ here without breaking any byte-identity
     * contract (see obs/stat_registry.hh). Default: nothing.
     */
    virtual void exportHostStats(StatRegistry &) const {}

  protected:
    CommittedStream() : window(kInitialWindow) {}

    /**
     * Fork support (DESIGN.md §11): copy the window, cursors, and
     * counters of @p other, so a derived-class fork constructor that
     * also duplicates its production state yields a stream whose
     * at()/release()/stats behavior is indistinguishable from one
     * that replayed @p other's call sequence from scratch. Protected:
     * only derived classes know how to duplicate production state.
     */
    CommittedStream(const CommittedStream &other) = default;

    /** Produce the next record; false once the stream is done. */
    virtual bool produceNext(CommittedBranch &out) = 0;

    /**
     * Pre-position an empty window at absolute index @p idx: the
     * stream's first produced record becomes ordinal @p idx, and
     * indices below it are treated as already released. For
     * seek-seeded trace streams (openTraceStreamAt); only valid
     * before any production.
     */
    void
    seekBase(std::uint64_t idx)
    {
        pcbp_assert(base == 0 && count == 0 && refillCount == 0,
                    "seekBase on a stream that already produced");
        base = idx;
    }

  private:
    static constexpr std::size_t kInitialWindow = 64;

    /** Refill the window up to @p idx (or the end of the stream). */
    const CommittedBranch *atSlow(std::uint64_t idx);

    /** Double the ring (record order preserved); stays 2^n. */
    void growWindow();

    std::vector<CommittedBranch> window; //!< 2^n ring buffer
    std::size_t head = 0;                //!< ring slot of `base`
    std::size_t count = 0;               //!< resident records
    std::uint64_t base = 0;              //!< absolute index of `head`
    std::size_t peak = 0;
    std::uint64_t refillCount = 0;
    bool ended = false;
};

/**
 * On-the-fly architectural CFG walker: exactly walkProgram(), one
 * branch at a time. Validates and resets the program's walk state on
 * construction; the committed path is independent of the predictor
 * (behaviors read only committed state), so lazy production yields
 * records identical to the eager walk.
 */
class ProgramWalkStream : public CommittedStream
{
  public:
    /** Walk @p program for up to @p limit branches. */
    ProgramWalkStream(Program &program, std::uint64_t limit);

    /**
     * Fork: continue @p other's walk mid-stream on @p program —
     * which must be a clone() of @p other's program — under this
     * stream's own @p limit. Requires that @p other has not walked
     * past @p limit yet; the forked stream then behaves exactly like
     * a fresh stream over @p program that replayed @p other's call
     * sequence. Neither validates nor resets the program.
     */
    ProgramWalkStream(const ProgramWalkStream &other, Program &program,
                      std::uint64_t limit);

    ProgramWalkStream(const ProgramWalkStream &) = delete;
    ProgramWalkStream &operator=(const ProgramWalkStream &) = delete;

    std::uint64_t length() const override { return limit; }
    const char *backendName() const override { return "program_walk"; }

  protected:
    bool produceNext(CommittedBranch &out) override;

  private:
    Program &program;
    std::uint64_t limit;
    BlockId cur;
    std::uint64_t walked = 0;
};

/**
 * A committed stream replaying a trace file of either format, with a
 * uniform fork seam: forkStream() yields an independent stream at the
 * same mid-trace position, exactly like the backend's copy
 * constructor (DESIGN.md §11) but without the caller naming the
 * concrete type. Construct through openTraceStream(), which sniffs
 * the magic.
 */
class TraceStream : public CommittedStream
{
  public:
    /** Independent fork at the same mid-trace position. */
    virtual std::unique_ptr<TraceStream> forkStream() const = 0;

  protected:
    TraceStream() = default;
    TraceStream(const TraceStream &) = default;
};

/**
 * Chunked replayer of a PCBPTRC1 trace file (workload/trace.hh):
 * reads @p chunk_records records worth of bytes per fread, so replay
 * of a billion-branch trace touches O(chunk) memory. Fatal on
 * malformed or truncated files.
 */
class TraceFileStream : public TraceStream
{
  public:
    explicit TraceFileStream(const std::string &path,
                             std::size_t chunk_records = 4096);

    /**
     * Open pre-positioned at branch ordinal @p start_ordinal (an
     * fseek past the earlier records): at(start_ordinal) is the
     * first readable index.
     */
    TraceFileStream(const std::string &path, std::uint64_t start_ordinal,
                    std::size_t chunk_records);

    ~TraceFileStream() override;

    /**
     * Fork: an independent stream at the same mid-trace position —
     * its own file handle seeked past the records @p other already
     * consumed, buffered chunk copied. Fatal if the file shrank
     * underneath the original.
     */
    TraceFileStream(const TraceFileStream &other);
    TraceFileStream &operator=(const TraceFileStream &) = delete;

    std::uint64_t length() const override { return count; }
    const char *backendName() const override { return "trace_file"; }

    std::unique_ptr<TraceStream>
    forkStream() const override
    {
        return std::unique_ptr<TraceStream>(new TraceFileStream(*this));
    }

  protected:
    bool produceNext(CommittedBranch &out) override;

  private:
    std::string path;
    std::FILE *file = nullptr;
    std::uint64_t count = 0;
    std::uint64_t decoded = 0;
    std::vector<unsigned char> buf;
    std::size_t bufPos = 0;
    std::size_t bufLen = 0;
};

/**
 * Block-decoded replayer of a PCBPTRC2 compressed trace
 * (workload/trace2.hh). The mmap-backed Trace2Reader is immutable
 * and shared: forks copy the shared_ptr (and the decoded-block
 * cache), so a ladder of N forks maps the file once. Seek-seeded
 * construction positions the stream at any ordinal by index lookup —
 * at most one block decode to produce the first record, the property
 * pinned by blocksDecoded() assertions in tests.
 */
class CompressedTraceStream : public TraceStream
{
  public:
    explicit CompressedTraceStream(const std::string &path);

    /** Open pre-positioned at branch ordinal @p start_ordinal via
     *  the footer index (counted as one seek). */
    CompressedTraceStream(const std::string &path,
                          std::uint64_t start_ordinal);

    /** Fork: same position, shared reader, own decode state. */
    CompressedTraceStream(const CompressedTraceStream &) = default;
    CompressedTraceStream &operator=(const CompressedTraceStream &) =
        delete;

    std::uint64_t length() const override { return reader->recordCount(); }
    const char *backendName() const override { return "trace2"; }

    std::unique_ptr<TraceStream>
    forkStream() const override
    {
        return std::unique_ptr<TraceStream>(
            new CompressedTraceStream(*this));
    }

    void exportHostStats(StatRegistry &reg) const override;

    /** Blocks this stream (not its forks) decoded so far. */
    std::uint64_t blocksDecoded() const { return blockDecodes; }

    /** Index seeks (seek-seeded constructions) performed. */
    std::uint64_t seeks() const { return seekCount; }

  protected:
    bool produceNext(CommittedBranch &out) override;

  private:
    std::shared_ptr<const Trace2Reader> reader;
    std::vector<CommittedBranch> block; //!< decoded-block cache
    std::uint64_t blockIdx = ~std::uint64_t(0); //!< cached block
    std::uint64_t decoded = 0; //!< next ordinal to produce
    std::uint64_t blockDecodes = 0;
    std::uint64_t seekCount = 0;
};

/**
 * Open a trace file of either format as a replay stream, sniffing
 * the magic: CompressedTraceStream for PCBPTRC2, TraceFileStream for
 * PCBPTRC1. Fatal on malformed files.
 */
std::unique_ptr<TraceStream> openTraceStream(const std::string &path);

/**
 * openTraceStream() pre-positioned at branch ordinal @p ordinal —
 * an index seek (at most one block decode) on PCBPTRC2, an fseek on
 * PCBPTRC1. at(ordinal) is the stream's first readable index.
 */
std::unique_ptr<TraceStream> openTraceStreamAt(const std::string &path,
                                               std::uint64_t ordinal);

/** In-memory stream over an already-materialized trace. Copyable:
 *  a copy is a mid-stream fork (DESIGN.md §11). */
class PrecomputedStream : public CommittedStream
{
  public:
    explicit PrecomputedStream(std::vector<CommittedBranch> trace)
        : trace(std::move(trace))
    {
    }

    PrecomputedStream(const PrecomputedStream &) = default;

    std::uint64_t length() const override { return trace.size(); }
    const char *backendName() const override { return "precomputed"; }

  protected:
    bool produceNext(CommittedBranch &out) override;

  private:
    std::vector<CommittedBranch> trace;
    std::uint64_t next = 0;
};

} // namespace pcbp

#endif // PCBP_SIM_COMMITTED_STREAM_HH
