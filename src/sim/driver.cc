#include "sim/driver.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace pcbp
{

std::string
HybridSpec::label() const
{
    std::string s = budgetName(prophetBudget) + " " +
                    prophetKindName(prophet);
    if (critic) {
        s += " + " + budgetName(criticBudget) + " " +
             criticKindName(*critic);
    }
    return s;
}

std::unique_ptr<ProphetCriticHybrid>
HybridSpec::build() const
{
    HybridConfig cfg;
    cfg.numFutureBits = critic ? futureBits : 0;
    cfg.speculativeHistoryUpdate = speculativeHistory;
    cfg.repairHistory = repairHistory;
    return std::make_unique<ProphetCriticHybrid>(
        makeProphet(prophet, prophetBudget),
        critic ? makeCritic(*critic, criticBudget, filterTagBits)
               : nullptr,
        cfg);
}

HybridSpec
prophetAlone(ProphetKind kind, Budget budget)
{
    HybridSpec s;
    s.prophet = kind;
    s.prophetBudget = budget;
    s.critic.reset();
    s.futureBits = 0;
    return s;
}

HybridSpec
hybridSpec(ProphetKind prophet, Budget prophet_budget, CriticKind critic,
           Budget critic_budget, unsigned future_bits)
{
    HybridSpec s;
    s.prophet = prophet;
    s.prophetBudget = prophet_budget;
    s.critic = critic;
    s.criticBudget = critic_budget;
    s.futureBits = future_bits;
    return s;
}

double
benchScale()
{
    static const double scale = [] {
        const char *env = std::getenv("PCBP_BENCH_SCALE");
        if (!env)
            return 1.0;
        const double v = std::atof(env);
        if (v <= 0.0) {
            pcbp_warn("ignoring PCBP_BENCH_SCALE='", env, "'");
            return 1.0;
        }
        return v;
    }();
    return scale;
}

EngineConfig
engineConfigFor(const Workload &w)
{
    EngineConfig cfg;
    cfg.measureBranches = static_cast<std::uint64_t>(
        double(w.simBranches) * benchScale());
    cfg.warmupBranches = static_cast<std::uint64_t>(
        double(w.warmupBranches) * benchScale());
    cfg.measureBranches = std::max<std::uint64_t>(cfg.measureBranches,
                                                  1000);
    cfg.warmupBranches = std::max<std::uint64_t>(cfg.warmupBranches, 100);
    return cfg;
}

EngineStats
runAccuracy(const Workload &w, const HybridSpec &spec)
{
    return runAccuracy(w, spec, engineConfigFor(w));
}

EngineStats
runAccuracy(const Workload &w, const HybridSpec &spec,
            const EngineConfig &config)
{
    Program program = buildProgram(w);
    auto hybrid = spec.build();
    Engine engine(program, *hybrid, config);
    if (!w.tracePath.empty()) {
        TraceFileStream stream(w.tracePath);
        return engine.run(stream);
    }
    return engine.run();
}

H2PReport
runH2P(const Workload &w, const HybridSpec &spec,
       const EngineConfig &config, const H2PConfig &h2p)
{
    pcbp_assert(config.commitSink == nullptr,
                "runH2P owns the commit tap; profile through your own "
                "sink instead of passing one here");
    H2PProfiler profiler(config.warmupBranches);
    EngineConfig cfg = config;
    cfg.commitSink = &profiler;
    runAccuracy(w, spec, cfg);
    H2PReport report = profiler.report(h2p);
    report.workload = w.name;
    report.config = spec.label();
    return report;
}

H2PReport
runH2P(const Workload &w, const HybridSpec &spec, const H2PConfig &h2p)
{
    return runH2P(w, spec, engineConfigFor(w), h2p);
}

std::vector<EngineStats>
runSet(const std::vector<const Workload *> &set, const HybridSpec &spec)
{
    std::vector<EngineStats> results(set.size());
    ThreadPool::shared().parallelFor(set.size(), [&](std::size_t i) {
        results[i] = runAccuracy(*set[i], spec);
    });
    return results;
}

AggregateResult
runSetAggregated(const std::vector<const Workload *> &set,
                 const HybridSpec &spec)
{
    return aggregate(runSet(set, spec));
}

TimingConfig
timingConfigFor(const Workload &w)
{
    TimingConfig cfg;
    // Timing runs are ~10x slower per branch than accuracy runs, so
    // use a third of the workload's accuracy budget.
    cfg.measureBranches = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(double(w.simBranches) / 3.0 *
                                   benchScale()),
        1000);
    cfg.warmupBranches =
        std::max<std::uint64_t>(cfg.measureBranches / 10, 100);
    return cfg;
}

TimingStats
runTiming(const Workload &w, const HybridSpec &spec)
{
    return runTiming(w, spec, timingConfigFor(w));
}

TimingStats
runTiming(const Workload &w, const HybridSpec &spec,
          const TimingConfig &config)
{
    Program program = buildProgram(w);
    auto hybrid = spec.build();
    TimingSim sim(program, *hybrid, config);
    if (!w.tracePath.empty()) {
        TraceFileStream stream(w.tracePath);
        return sim.run(stream);
    }
    return sim.run();
}

std::vector<TimingStats>
runTimingSet(const std::vector<const Workload *> &set,
             const HybridSpec &spec)
{
    std::vector<TimingStats> results(set.size());
    ThreadPool::shared().parallelFor(set.size(), [&](std::size_t i) {
        results[i] = runTiming(*set[i], spec);
    });
    return results;
}

double
meanUpc(const std::vector<TimingStats> &runs)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : runs)
        sum += r.upc();
    return sum / double(runs.size());
}

} // namespace pcbp
