#include "sim/driver.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/stream_fanout.hh"

namespace pcbp
{

std::string
HybridSpec::label() const
{
    std::string s = budgetName(prophetBudget) + " " +
                    prophetKindName(prophet);
    if (critic) {
        s += " + " + budgetName(criticBudget) + " " +
             criticKindName(*critic);
    }
    return s;
}

std::unique_ptr<ProphetCriticHybrid>
HybridSpec::build() const
{
    HybridConfig cfg;
    cfg.numFutureBits = critic ? futureBits : 0;
    cfg.speculativeHistoryUpdate = speculativeHistory;
    cfg.repairHistory = repairHistory;
    return std::make_unique<ProphetCriticHybrid>(
        makeProphet(prophet, prophetBudget),
        critic ? makeCritic(*critic, criticBudget, filterTagBits)
               : nullptr,
        cfg);
}

HybridSpec
prophetAlone(ProphetKind kind, Budget budget)
{
    HybridSpec s;
    s.prophet = kind;
    s.prophetBudget = budget;
    s.critic.reset();
    s.futureBits = 0;
    return s;
}

HybridSpec
hybridSpec(ProphetKind prophet, Budget prophet_budget, CriticKind critic,
           Budget critic_budget, unsigned future_bits)
{
    HybridSpec s;
    s.prophet = prophet;
    s.prophetBudget = prophet_budget;
    s.critic = critic;
    s.criticBudget = critic_budget;
    s.futureBits = future_bits;
    return s;
}

double
benchScale()
{
    static const double scale = [] {
        const char *env = std::getenv("PCBP_BENCH_SCALE");
        if (!env)
            return 1.0;
        const double v = std::atof(env);
        if (v <= 0.0) {
            pcbp_warn("ignoring PCBP_BENCH_SCALE='", env, "'");
            return 1.0;
        }
        return v;
    }();
    return scale;
}

EngineConfig
engineConfigFor(const Workload &w)
{
    EngineConfig cfg;
    cfg.measureBranches = static_cast<std::uint64_t>(
        double(w.simBranches) * benchScale());
    cfg.warmupBranches = static_cast<std::uint64_t>(
        double(w.warmupBranches) * benchScale());
    cfg.measureBranches = std::max<std::uint64_t>(cfg.measureBranches,
                                                  1000);
    cfg.warmupBranches = std::max<std::uint64_t>(cfg.warmupBranches, 100);
    return cfg;
}

EngineStats
runAccuracy(const Workload &w, const HybridSpec &spec)
{
    return runAccuracy(w, spec, engineConfigFor(w));
}

EngineStats
runAccuracy(const Workload &w, const HybridSpec &spec,
            const EngineConfig &config)
{
    Program program = buildProgram(w);
    auto hybrid = spec.build();
    Engine engine(program, *hybrid, config);
    if (!w.tracePath.empty()) {
        auto stream = openTraceStream(w.tracePath);
        return engine.run(*stream);
    }
    return engine.run();
}

H2PReport
runH2P(const Workload &w, const HybridSpec &spec,
       const EngineConfig &config, const H2PConfig &h2p)
{
    pcbp_assert(config.commitSink == nullptr,
                "runH2P owns the commit tap; profile through your own "
                "sink instead of passing one here");
    H2PProfiler profiler(config.warmupBranches);
    EngineConfig cfg = config;
    cfg.commitSink = &profiler;
    runAccuracy(w, spec, cfg);
    H2PReport report = profiler.report(h2p);
    report.workload = w.name;
    report.config = spec.label();
    return report;
}

H2PReport
runH2P(const Workload &w, const HybridSpec &spec, const H2PConfig &h2p)
{
    return runH2P(w, spec, engineConfigFor(w), h2p);
}

namespace
{

/**
 * Shared chain body (DESIGN.md §11): run the canonical (largest
 * budget) point, pausing at each earlier point's snapshot target to
 * fork cloned {program, predictor, stream, simulator} state; each
 * fork then runs only its own remainder. Sim is Engine or TimingSim
 * (same split-phase surface).
 */
template <typename Sim, typename Config, typename Stats>
std::vector<Stats>
chainImpl(const Workload &w, const HybridSpec &spec,
          const std::vector<Config> &configs,
          std::uint64_t (*snapshot_target)(const Config &),
          ChainObs *obs)
{
    pcbp_assert(!configs.empty());

    // Snapshot points must be visited oldest-first; the canonical is
    // the lexicographic-max (warmup, measure) point, so it is still
    // running when every earlier point forks.
    std::vector<std::size_t> order(configs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (configs[a].warmupBranches !=
                      configs[b].warmupBranches) {
                      return configs[a].warmupBranches <
                             configs[b].warmupBranches;
                  }
                  return configs[a].measureBranches <
                         configs[b].measureBranches;
              });

    Program program = buildProgram(w);
    auto hybrid = spec.build();
    const Config &canon = configs[order.back()];
    Sim sim(program, *hybrid, canon);

    std::vector<Stats> results(configs.size());

    const auto drive = [&](CommittedStream &stream,
                           const auto &make_fork) {
        sim.beginRun(stream);
        for (std::size_t k = 0; k + 1 < order.size(); ++k) {
            const Config &cfg = configs[order[k]];
            sim.stepUntil(snapshot_target(cfg), stream);
            Program fork_prog = program.clone();
            auto fork_hybrid = hybrid->clone();
            auto fork_stream = make_fork(
                fork_prog, cfg.warmupBranches + cfg.measureBranches);
            Sim fork_sim(sim, fork_prog, *fork_hybrid, cfg);
            results[order[k]] = fork_sim.resumeRun(*fork_stream);
            if (obs) {
                ++obs->snapshots;
                obs->warmupBranchesSaved += sim.committedSoFar();
            }
        }
        results[order.back()] = sim.finishRun(stream);
    };

    if (!w.tracePath.empty()) {
        auto stream = openTraceStream(w.tracePath);
        drive(*stream, [&](Program &, std::uint64_t) {
            return stream->forkStream();
        });
    } else {
        ProgramWalkStream stream(
            program, canon.warmupBranches + canon.measureBranches);
        drive(stream, [&](Program &fork_prog, std::uint64_t limit) {
            return std::make_unique<ProgramWalkStream>(stream, fork_prog,
                                                       limit);
        });
    }
    return results;
}

/**
 * Commits each lane advances per lockstep round. Bounds the spread
 * between the leading and lagging lanes — and with it the resident
 * shared window (spread + pipeline lookahead records) — while
 * keeping per-lane bursts long enough that a lane's tables stay hot
 * across a burst. Interleaving cannot affect results (lanes interact
 * only through shared record production), so this is a locality
 * knob, not a semantics knob.
 */
constexpr std::uint64_t kBatchChunk = 8192;

/**
 * Shared batch body (DESIGN.md §12): every lane consumes its own
 * fanout view of one shared committed stream, driven round-robin in
 * kBatchChunk bursts. Each multi-member group starts as a single
 * canonical lane; at a pending member's snapshot target the lane
 * peels a fork — chainImpl's clone, minus the program copy: all
 * lanes share the one program, since simulators only read the const
 * CFG and only the shared source's walk mutates behavior state —
 * and the fork joins the lockstep as a lane of its own.
 */
template <typename Sim, typename Config, typename Stats>
std::vector<std::vector<Stats>>
batchImpl(const Workload &w, const std::vector<HybridSpec> &specs,
          const std::vector<std::vector<Config>> &groups,
          std::uint64_t (*snapshot_target)(const Config &),
          BatchObs *obs)
{
    pcbp_assert(!groups.empty() && specs.size() == groups.size());

    Program program = buildProgram(w);

    std::size_t total_members = 0;
    std::uint64_t longest = 0;
    for (const std::vector<Config> &g : groups) {
        pcbp_assert(!g.empty());
        total_members += g.size();
        for (const Config &c : g) {
            longest = std::max(longest,
                               c.warmupBranches + c.measureBranches);
        }
    }

    std::unique_ptr<CommittedStream> source;
    if (!w.tracePath.empty())
        source = openTraceStream(w.tracePath);
    else
        source = std::make_unique<ProgramWalkStream>(program, longest);
    StreamFanout fan(*source);

    struct Lane
    {
        Sim *sim = nullptr;
        ProphetCriticHybrid *hybrid = nullptr;
        StreamFanout::View *view = nullptr;
        std::size_t group = 0;
        std::size_t member = 0;
        /** Group members still to peel, oldest snapshot first
         *  (canonical lanes only). */
        std::vector<std::size_t> pendingForks;
        std::size_t nextFork = 0;
        bool running = true;
    };

    // Reserve the exact lane count up front: forks append lanes
    // mid-drive, and reallocation would invalidate the owning
    // pointers the drive loop is standing on.
    std::vector<std::unique_ptr<ProphetCriticHybrid>> hybrids;
    std::vector<std::unique_ptr<Sim>> sims;
    std::vector<Lane> lanes;
    hybrids.reserve(total_members);
    sims.reserve(total_members);
    lanes.reserve(total_members);

    for (std::size_t g = 0; g < groups.size(); ++g) {
        // Same ordering as chainImpl: snapshots are visited
        // oldest-first and the canonical is the lexicographic-max
        // (warmup, measure) member.
        std::vector<std::size_t> order(groups[g].size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (groups[g][a].warmupBranches !=
                          groups[g][b].warmupBranches) {
                          return groups[g][a].warmupBranches <
                                 groups[g][b].warmupBranches;
                      }
                      return groups[g][a].measureBranches <
                             groups[g][b].measureBranches;
                  });

        Lane lane;
        lane.group = g;
        lane.member = order.back();
        lane.pendingForks.assign(order.begin(), order.end() - 1);
        hybrids.push_back(specs[g].build());
        lane.hybrid = hybrids.back().get();
        sims.push_back(std::make_unique<Sim>(program, *lane.hybrid,
                                             groups[g][lane.member]));
        lane.sim = sims.back().get();
        lane.view = &fan.addView();
        lane.sim->beginRun(*lane.view);
        lanes.push_back(std::move(lane));
    }
    if (obs) {
        obs->groups += groups.size();
        obs->members += total_members;
    }

    const auto forkTarget = [&](const Lane &ln) {
        return snapshot_target(
            groups[ln.group][ln.pendingForks[ln.nextFork]]);
    };

    const auto peelFork = [&](std::size_t i) {
        const std::size_t m =
            lanes[i].pendingForks[lanes[i].nextFork++];
        const Config &cfg = groups[lanes[i].group][m];
        hybrids.push_back(lanes[i].hybrid->clone());
        sims.push_back(std::make_unique<Sim>(
            *lanes[i].sim, program, *hybrids.back(), cfg));
        Lane fork;
        fork.sim = sims.back().get();
        fork.hybrid = hybrids.back().get();
        fork.view = &fan.forkView(*lanes[i].view);
        fork.group = lanes[i].group;
        fork.member = m;
        fork.sim->armResume(*fork.view);
        if (obs) {
            ++obs->snapshots;
            obs->warmupBranchesSaved += lanes[i].sim->committedSoFar();
        }
        lanes.push_back(std::move(fork));
    };

    std::uint64_t target = 0;
    for (bool any = true; any;) {
        any = false;
        target += kBatchChunk;
        // Index loop: peeled forks append to `lanes` and run in the
        // same round (their cursor is at the snapshot, behind the
        // chunk target).
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            while (lanes[i].running) {
                Lane &ln = lanes[i];
                const bool snap =
                    ln.nextFork < ln.pendingForks.size();
                const std::uint64_t stop =
                    snap ? std::min(target, forkTarget(ln)) : target;
                const bool more = ln.sim->stepUntil(stop, *ln.view);
                // Bounding every burst by the next snapshot target
                // keeps the peel boundary exactly where chainImpl's
                // single stepUntil(snapshot) would stop, so forked
                // state — and every downstream stat — is identical
                // to the chain path.
                if (snap && (!more || ln.sim->committedSoFar() >=
                                          forkTarget(ln))) {
                    peelFork(i);
                    continue;
                }
                if (!more) {
                    ln.running = false;
                    ln.view->retire();
                }
                break;
            }
            any = any || lanes[i].running;
        }
    }

    std::vector<std::vector<Stats>> results(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g)
        results[g].resize(groups[g].size());
    std::uint64_t member_demand = 0;
    for (Lane &ln : lanes) {
        results[ln.group][ln.member] = ln.sim->finishRun(*ln.view);
        member_demand += ln.view->produced();
    }
    if (obs) {
        obs->sourceProduced += fan.sharedProduced();
        obs->memberDemand += member_demand;
        obs->sourceWindowPeak = std::max<std::uint64_t>(
            obs->sourceWindowPeak, fan.sharedWindowPeak());
    }
    return results;
}

} // namespace

std::vector<std::vector<EngineStats>>
runAccuracyBatch(const Workload &w, const std::vector<HybridSpec> &specs,
                 const std::vector<std::vector<EngineConfig>> &groups,
                 BatchObs *obs)
{
    for (const std::vector<EngineConfig> &g : groups) {
        if (g.size() < 2)
            continue; // singleton lanes never fork: no restrictions
        for (const EngineConfig &c : g) {
            pcbp_assert(c.commitSink == nullptr && !c.oracleFutureBits &&
                            c.warmupBranches >= 1,
                        "multi-member batch groups fork; sink/oracle/"
                        "no-warmup cells must batch as singletons");
        }
    }
    return batchImpl<Engine, EngineConfig, EngineStats>(
        w, specs, groups,
        [](const EngineConfig &c) { return c.warmupBranches - 1; },
        obs);
}

std::vector<std::vector<TimingStats>>
runTimingBatch(const Workload &w, const std::vector<HybridSpec> &specs,
               const std::vector<std::vector<TimingConfig>> &groups,
               BatchObs *obs)
{
    for (const std::vector<TimingConfig> &g : groups) {
        if (g.size() < 2)
            continue;
        for (const TimingConfig &c : g) {
            pcbp_assert(c.commitSink == nullptr &&
                            c.warmupBranches >= 1 && timingForkable(c),
                        "multi-member timing batch groups fork; sink/"
                        "short-measure cells must batch as singletons");
        }
    }
    return batchImpl<TimingSim, TimingConfig, TimingStats>(
        w, specs, groups,
        [](const TimingConfig &c) {
            return c.warmupBranches > c.retireWidth
                       ? c.warmupBranches - c.retireWidth
                       : 0;
        },
        obs);
}

std::vector<EngineStats>
runAccuracyChain(const Workload &w, const HybridSpec &spec,
                 const std::vector<EngineConfig> &configs,
                 ChainObs *obs)
{
    for (const EngineConfig &c : configs) {
        pcbp_assert(c.commitSink == nullptr,
                    "a fork cannot replay a commit tap's prefix; sink "
                    "cells take the replay path");
        pcbp_assert(!c.oracleFutureBits,
                    "oracle cells take the replay path");
        pcbp_assert(c.warmupBranches >= 1,
                    "chaining a cell with no warmup saves nothing");
    }
    // Commit-side stats of branch N are recorded before the cursor
    // advances but flush-side stats after, so the latest in-warmup
    // loop-top is exactly warmup - 1 committed branches.
    return chainImpl<Engine, EngineConfig, EngineStats>(
        w, spec, configs,
        [](const EngineConfig &c) { return c.warmupBranches - 1; },
        obs);
}

std::vector<TimingStats>
runTimingChain(const Workload &w, const HybridSpec &spec,
               const std::vector<TimingConfig> &configs, ChainObs *obs)
{
    for (const TimingConfig &c : configs) {
        pcbp_assert(c.commitSink == nullptr,
                    "a fork cannot replay a commit tap's prefix; sink "
                    "cells take the replay path");
        pcbp_assert(c.warmupBranches >= 1,
                    "chaining a cell with no warmup saves nothing");
        pcbp_assert(timingForkable(c),
                    "short-measure timing cells take the replay path");
    }
    // Cycle-boundary stops overshoot by up to retireWidth - 1
    // commits, so aim a full retire burst short of the warmup edge.
    return chainImpl<TimingSim, TimingConfig, TimingStats>(
        w, spec, configs,
        [](const TimingConfig &c) {
            return c.warmupBranches > c.retireWidth
                       ? c.warmupBranches - c.retireWidth
                       : 0;
        },
        obs);
}

std::vector<EngineStats>
runSet(const std::vector<const Workload *> &set, const HybridSpec &spec)
{
    std::vector<EngineStats> results(set.size());
    ThreadPool::shared().parallelFor(set.size(), [&](std::size_t i) {
        results[i] = runAccuracy(*set[i], spec);
    });
    return results;
}

AggregateResult
runSetAggregated(const std::vector<const Workload *> &set,
                 const HybridSpec &spec)
{
    return aggregate(runSet(set, spec));
}

TimingConfig
timingConfigFor(const Workload &w)
{
    TimingConfig cfg;
    // Timing runs are ~10x slower per branch than accuracy runs, so
    // use a third of the workload's accuracy budget.
    cfg.measureBranches = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(double(w.simBranches) / 3.0 *
                                   benchScale()),
        1000);
    cfg.warmupBranches =
        std::max<std::uint64_t>(cfg.measureBranches / 10, 100);
    return cfg;
}

TimingStats
runTiming(const Workload &w, const HybridSpec &spec)
{
    return runTiming(w, spec, timingConfigFor(w));
}

TimingStats
runTiming(const Workload &w, const HybridSpec &spec,
          const TimingConfig &config)
{
    Program program = buildProgram(w);
    auto hybrid = spec.build();
    TimingSim sim(program, *hybrid, config);
    if (!w.tracePath.empty()) {
        auto stream = openTraceStream(w.tracePath);
        return sim.run(*stream);
    }
    return sim.run();
}

std::vector<TimingStats>
runTimingSet(const std::vector<const Workload *> &set,
             const HybridSpec &spec)
{
    std::vector<TimingStats> results(set.size());
    ThreadPool::shared().parallelFor(set.size(), [&](std::size_t i) {
        results[i] = runTiming(*set[i], spec);
    });
    return results;
}

double
meanUpc(const std::vector<TimingStats> &runs)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : runs)
        sum += r.upc();
    return sum / double(runs.size());
}

} // namespace pcbp
