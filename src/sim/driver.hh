/**
 * @file
 * Experiment driver: builds hybrids from specs, runs workloads
 * through the accuracy engine (in parallel across workloads), and
 * aggregates — the shared machinery of every bench binary.
 */

#ifndef PCBP_SIM_DRIVER_HH
#define PCBP_SIM_DRIVER_HH

#include <optional>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "sim/engine.hh"
#include "sim/metrics.hh"
#include "sim/timing.hh"
#include "workload/suites.hh"

namespace pcbp
{

/**
 * A full predictor configuration under test.
 *
 * A HybridSpec is a pure value: build() constructs a fresh, fully
 * owned predictor every time, so two runs of the same spec share no
 * state and a spec can be copied freely across threads (the sweep
 * runner depends on this for its any-`--jobs` determinism contract).
 */
struct HybridSpec
{
    ProphetKind prophet = ProphetKind::Perceptron;
    Budget prophetBudget = Budget::B8KB;

    /** No critic = prophet-alone baseline. */
    std::optional<CriticKind> critic;
    Budget criticBudget = Budget::B8KB;

    unsigned futureBits = 8;

    /** Ablation knobs (§3.2 / §3.3); both on in the paper's design. */
    bool speculativeHistory = true;
    bool repairHistory = true;

    /**
     * Ablation knob (§4): override the critic filter's tag width
     * (paper: 8-10 bits suffice). 0 keeps the Table-3 default; only
     * meaningful for filtered critics (t.gshare, f.perceptron).
     */
    unsigned filterTagBits = 0;

    /** Human-readable label, e.g.\ "8KB perceptron + 8KB t.gshare". */
    std::string label() const;

    /** Instantiate the predictor. */
    std::unique_ptr<ProphetCriticHybrid> build() const;
};

/** Prophet-alone spec helper. */
HybridSpec prophetAlone(ProphetKind kind, Budget budget);

/** Full hybrid spec helper. */
HybridSpec hybridSpec(ProphetKind prophet, Budget prophet_budget,
                      CriticKind critic, Budget critic_budget,
                      unsigned future_bits);

/**
 * Global bench scale factor from the PCBP_BENCH_SCALE environment
 * variable (default 1.0). Applied to simulated branch counts.
 */
double benchScale();

/** Engine configuration for a workload, with benchScale applied. */
EngineConfig engineConfigFor(const Workload &w);

/** Run one workload under one spec. */
EngineStats runAccuracy(const Workload &w, const HybridSpec &spec);

/** Run one workload with explicit engine configuration. */
EngineStats runAccuracy(const Workload &w, const HybridSpec &spec,
                        const EngineConfig &config);

/**
 * Run one workload with per-branch H2P profiling tapped into the
 * commit path (warmup commits excluded) and return the ranked
 * report, labeled with the workload and spec.
 */
H2PReport runH2P(const Workload &w, const HybridSpec &spec,
                 const EngineConfig &config, const H2PConfig &h2p = {});

/** runH2P with the workload's default engine configuration. */
H2PReport runH2P(const Workload &w, const HybridSpec &spec,
                 const H2PConfig &h2p = {});

/** Per-chain fork observability (the sweep.fork.* host stats). */
struct ChainObs
{
    /** Mid-run clones taken (one per non-canonical chain point). */
    std::uint64_t snapshots = 0;

    /** Warmup branches the forks did not have to re-simulate. */
    std::uint64_t warmupBranchesSaved = 0;
};

/**
 * Fork chain (DESIGN.md §11): run several (warmup, measure) budgets
 * of the *same* (workload, predictor recipe) as one simulation.
 * Warmup length gates only which events are counted — never the
 * simulated trajectory — so the runs are prefixes of one another:
 * the longest runs once (the canonical), and each shorter budget
 * forks cloned simulator state at a snapshot inside its own warmup,
 * then runs just its remainder. Stats are bit-identical to one
 * independent run per config; wall clock pays each shared warmup
 * prefix once. @p configs must agree on everything except run
 * lengths and stats plumbing, none may carry a commit sink (a fork
 * cannot replay the tap's prefix) or oracle future bits; results
 * come back in @p configs order.
 */
std::vector<EngineStats> runAccuracyChain(
    const Workload &w, const HybridSpec &spec,
    const std::vector<EngineConfig> &configs, ChainObs *obs = nullptr);

/**
 * runAccuracyChain for the timing model. Every config must satisfy
 * timingForkable() — the measured budget has to cover the window
 * lookahead, or a short run's end-of-run stall could diverge from
 * the canonical before its snapshot (timing.hh).
 */
std::vector<TimingStats> runTimingChain(
    const Workload &w, const HybridSpec &spec,
    const std::vector<TimingConfig> &configs, ChainObs *obs = nullptr);

/** Per-batch observability (the sweep.batch.* host stats). */
struct BatchObs
{
    /** Fork groups multiplexed through the shared pass. */
    std::uint64_t groups = 0;

    /** Cells executed by the batch (peeled forks included). */
    std::uint64_t members = 0;

    /** Mid-run clones peeled into lockstep lanes. */
    std::uint64_t snapshots = 0;

    /** Warmup branches the peeled forks did not re-simulate. */
    std::uint64_t warmupBranchesSaved = 0;

    /** Committed records the shared source produced — paid once for
     *  the whole batch. */
    std::uint64_t sourceProduced = 0;

    /** Sum of per-member stream reads; memberDemand - sourceProduced
     *  is the productions (CFG walk / trace decode) the fanout
     *  amortized away. */
    std::uint64_t memberDemand = 0;

    /** Peak resident shared window — the cache-residency bound of
     *  the lockstep pass. */
    std::uint64_t sourceWindowPeak = 0;
};

/**
 * Batched execution (DESIGN.md §12): run many cells of the *same
 * workload* as one lockstep pass over a shared committed stream.
 * @p groups partitions the cells into fork groups — the members of a
 * group must share @p specs[g] (its predictor recipe) and differ only
 * in run lengths; a group of two or more is executed as a fork chain
 * (canonical member runs as a lane, shorter members peel off as new
 * lanes at their snapshot points — the PR 7 seam), so such groups
 * carry the chain restrictions (no commit sink, no oracle bits,
 * warmup >= 1). Singleton groups have no restrictions: oracle and
 * commit-sink cells batch fine, each lane reads its own stream view.
 *
 * Every member's stats — the returned struct and its statsOut dump,
 * stream counters included — are bit-identical to an independent
 * runAccuracy/runAccuracyChain of that cell: members interact only
 * through the shared record production, which yields the records a
 * private stream would. Wall clock pays the stream's CFG walk or
 * trace decode once for the whole batch, and the lockstep keeps the
 * shared window cache-resident while every member crosses it.
 * Results come back indexed [group][member in @p groups order].
 */
std::vector<std::vector<EngineStats>> runAccuracyBatch(
    const Workload &w, const std::vector<HybridSpec> &specs,
    const std::vector<std::vector<EngineConfig>> &groups,
    BatchObs *obs = nullptr);

/**
 * runAccuracyBatch for the timing model. Multi-member groups must
 * satisfy timingForkable() (see runTimingChain).
 */
std::vector<std::vector<TimingStats>> runTimingBatch(
    const Workload &w, const std::vector<HybridSpec> &specs,
    const std::vector<std::vector<TimingConfig>> &groups,
    BatchObs *obs = nullptr);

/**
 * Run a workload set under one spec, in parallel across workloads,
 * and return per-workload stats in set order.
 */
std::vector<EngineStats> runSet(const std::vector<const Workload *> &set,
                                const HybridSpec &spec);

/** runSet + aggregate. */
AggregateResult runSetAggregated(
    const std::vector<const Workload *> &set, const HybridSpec &spec);

/** Timing configuration for a workload, with benchScale applied. */
TimingConfig timingConfigFor(const Workload &w);

/** Run one workload through the cycle-level timing model. */
TimingStats runTiming(const Workload &w, const HybridSpec &spec);

/** Run the timing model with explicit configuration (sweep cells). */
TimingStats runTiming(const Workload &w, const HybridSpec &spec,
                      const TimingConfig &config);

/**
 * Run a workload set through the timing model in parallel; returns
 * per-workload stats in set order.
 */
std::vector<TimingStats> runTimingSet(
    const std::vector<const Workload *> &set, const HybridSpec &spec);

/** Arithmetic mean of per-workload uPC. */
double meanUpc(const std::vector<TimingStats> &runs);

} // namespace pcbp

#endif // PCBP_SIM_DRIVER_HH
