#include "sim/engine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcbp
{

Engine::Engine(Program &program_, ProphetCriticHybrid &hybrid_,
               const EngineConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      btb(config.btbEntries, config.btbWays)
{
    pcbp_assert(cfg.pipelineDepth >= 2);
    pcbp_assert(cfg.pipelineDepth > hybrid.numFutureBits(),
                "pipeline depth must exceed the future-bit count");
}

void
Engine::fetchOne()
{
    const BasicBlock &b = program.block(fetchBlock);

    Inflight r;
    r.block = fetchBlock;
    r.pc = b.branchPc;
    r.numUops = b.numUops;
    r.traceIdx = specTraceIdx++;
    r.btbHit = !cfg.useBtb || btb.lookup(r.pc);

    if (r.btbHit) {
        r.prophetPred = hybrid.predictBranch(r.pc, r.ctx);
        r.finalPred = r.prophetPred;
    } else {
        // The front end does not see the branch: implicit
        // fall-through, no history insertion, no critique. Keep a
        // checkpoint of the (unmodified) registers for repair.
        r.prophetPred = false;
        r.finalPred = false;
        r.critiqued = true;
        r.ctx.bhrBefore = hybrid.bhr();
        r.ctx.borBefore = hybrid.bor();
    }

    fetchBlock = program.successor(fetchBlock, r.finalPred);
    inflight.push_back(std::move(r));
}

std::vector<bool>
Engine::futureBitsFor(std::size_t idx) const
{
    const unsigned want = hybrid.numFutureBits();
    std::vector<bool> fb;
    if (want == 0)
        return fb;
    fb.reserve(want);

    if (cfg.oracleFutureBits) {
        // Ablation (§6): correct-path outcomes as future bits. Only
        // meaningful for correct-path branches; wrong-path records
        // are squashed before their critique matters.
        for (std::uint64_t t = inflight[idx].traceIdx;
             fb.size() < want && t < trace.size(); ++t) {
            fb.push_back(trace[t].taken);
        }
        if (fb.empty())
            fb.push_back(inflight[idx].prophetPred);
        return fb;
    }

    // Real mode: the prophet's predictions for this branch and the
    // (BTB-identified) branches fetched after it, oldest first.
    fb.push_back(inflight[idx].prophetPred);
    for (std::size_t j = idx + 1; j < inflight.size() && fb.size() < want;
         ++j) {
        if (inflight[j].btbHit)
            fb.push_back(inflight[j].prophetPred);
    }
    return fb;
}

bool
Engine::critiqueAt(std::size_t idx)
{
    Inflight &r = inflight[idx];
    pcbp_assert(!r.critiqued && r.btbHit);

    const std::vector<bool> fb = futureBitsFor(idx);
    if (fb.size() < hybrid.numFutureBits() && measuring())
        ++stats.partialCritiques;

    CritiqueDecision d =
        hybrid.critiqueBranch(r.pc, r.ctx, r.prophetPred, fb);
    r.critiqued = true;
    r.finalPred = d.finalPrediction;

    const bool overrode = d.overrode;
    r.decision = std::move(d);

    if (overrode) {
        if (measuring()) {
            ++stats.criticOverrides;
            stats.squashedPredictions += inflight.size() - idx - 1;
        }
        // FTQ-only flush: every younger prediction is uncriticized
        // (critiques are issued oldest-first), so the flush is
        // confined to the queue (§5).
        for (std::size_t j = idx + 1; j < inflight.size(); ++j)
            pcbp_assert(!inflight[j].btbHit || !inflight[j].critiqued);
        inflight.resize(idx + 1);
        hybrid.overrideRedirect(r.ctx, r.finalPred);
        fetchBlock = program.successor(r.block, r.finalPred);
        specTraceIdx = r.traceIdx + 1;
    }
    return overrode;
}

void
Engine::critiqueReady()
{
    if (!hybrid.hasCritic())
        return;
    const unsigned want = std::max(1u, hybrid.numFutureBits());

    for (std::size_t i = 0; i < inflight.size(); ++i) {
        if (inflight[i].critiqued)
            continue;
        // Count the future bits available to this branch.
        unsigned avail = hybrid.numFutureBits() == 0 ? want : 1;
        for (std::size_t j = i + 1;
             j < inflight.size() && avail < want; ++j) {
            if (inflight[j].btbHit)
                ++avail;
        }
        if (avail < want)
            break; // younger branches have even fewer bits
        if (critiqueAt(i))
            break; // override squashed the younger entries
    }
}

void
Engine::resolveOldest()
{
    pcbp_assert(!inflight.empty());

    // §5: the consumer needs this prediction now; if the critique is
    // still pending, generate it from the future bits available.
    if (!inflight.front().critiqued && inflight.front().btbHit &&
        hybrid.hasCritic()) {
        critiqueAt(0);
    }

    Inflight r = std::move(inflight.front());
    inflight.pop_front();

    // Invariant: the oldest in-flight branch is on the correct path.
    pcbp_assert(r.traceIdx == commitIdx,
                "oldest branch not at the commit point");
    pcbp_assert(r.block == trace[commitIdx].block,
                "oldest branch diverged from the architectural path");

    const bool outcome = trace[commitIdx].taken;
    const bool prophet_correct =
        r.btbHit ? (r.prophetPred == outcome) : !outcome;

    // Non-speculative commit-time training (§3.2); for critiqued
    // branches this uses the critique-time BOR, wrong-path future
    // bits included (§3.3).
    hybrid.commitBranch(r.pc, r.ctx, r.decision, outcome);
    if (cfg.useBtb && !r.btbHit)
        btb.allocate(r.pc);

    const bool mispredicted = r.finalPred != outcome;

    if (measuring()) {
        ++stats.committedBranches;
        stats.committedUops += r.numUops;
        if (!r.btbHit)
            ++stats.btbMisses;
        if (r.btbHit && !prophet_correct)
            ++stats.prophetMispredicts;
        if (r.btbHit && hybrid.hasCritic() && r.decision) {
            const bool provided = r.decision->provided;
            const bool agreed =
                !provided || r.decision->finalPrediction == r.prophetPred;
            stats.critiques.record(
                classifyCritique(prophet_correct, provided, agreed));
        }
        if (cfg.collectPerBranch) {
            auto &pb = perBranchMap[r.pc];
            pb.pc = r.pc;
            ++pb.execs;
            if (r.btbHit && !prophet_correct)
                ++pb.prophetWrong;
            if (mispredicted)
                ++pb.finalWrong;
        }
    }

    ++commitIdx;

    if (mispredicted) {
        if (measuring()) {
            ++stats.finalMispredicts;
            stats.flushDistance.sample(uopsSinceFlush);
            stats.wrongPathBranches += inflight.size();
            for (const auto &w : inflight)
                stats.wrongPathUops += w.numUops;
        }
        uopsSinceFlush = 0;
        inflight.clear();
        hybrid.recoverMispredict(r.ctx, outcome);
        fetchBlock = program.successor(r.block, outcome);
        specTraceIdx = commitIdx;
    } else {
        uopsSinceFlush += r.numUops;
    }
}

EngineStats
Engine::run()
{
    const std::uint64_t total = cfg.warmupBranches + cfg.measureBranches;
    trace = walkProgram(program, total);

    fetchBlock = program.entry();
    specTraceIdx = 0;
    commitIdx = 0;
    uopsSinceFlush = 0;
    inflight.clear();
    stats = EngineStats{};
    perBranchMap.clear();

    while (commitIdx < total) {
        while (inflight.size() < cfg.pipelineDepth)
            fetchOne();
        critiqueReady();
        resolveOldest();
    }

    if (cfg.collectPerBranch) {
        stats.perBranch.reserve(perBranchMap.size());
        for (auto &kv : perBranchMap)
            stats.perBranch.push_back(kv.second);
        std::sort(stats.perBranch.begin(), stats.perBranch.end(),
                  [](const PerBranchStat &a, const PerBranchStat &b) {
                      if (a.finalWrong != b.finalWrong)
                          return a.finalWrong > b.finalWrong;
                      return a.pc < b.pc;
                  });
    }
    return stats;
}

} // namespace pcbp
