#include "sim/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

namespace
{

SpecCoreConfig
coreConfig(const EngineConfig &cfg)
{
    SpecCoreConfig c;
    c.useBtb = cfg.useBtb;
    c.btbEntries = cfg.btbEntries;
    c.btbWays = cfg.btbWays;
    c.oracleFutureBits = cfg.oracleFutureBits;
    c.commitSink = cfg.commitSink;
    return c;
}

} // namespace

Engine::Engine(Program &program_, ProphetCriticHybrid &hybrid_,
               const EngineConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      core(program_, hybrid_, coreConfig(config))
{
    pcbp_assert(cfg.pipelineDepth >= 2);
    pcbp_assert(cfg.pipelineDepth > hybrid.numFutureBits(),
                "pipeline depth must exceed the future-bit count");
}

Engine::Engine(const Engine &other, Program &program_,
               ProphetCriticHybrid &hybrid_, const EngineConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      core(other.core, program_, hybrid_, config.commitSink),
      coreObs(other.coreObs), commitIdx(other.commitIdx),
      uopsSinceFlush(other.uopsSinceFlush)
{
    // Differing warmup/measure budgets (and per-fork stats/sink
    // plumbing) are the point of forking; anything that shapes the
    // simulated state trajectory must match, or the fork would not
    // be equivalent to an uninterrupted run.
    pcbp_assert(cfg.pipelineDepth == other.cfg.pipelineDepth &&
                    cfg.useBtb == other.cfg.useBtb &&
                    cfg.btbEntries == other.cfg.btbEntries &&
                    cfg.btbWays == other.cfg.btbWays &&
                    !cfg.oracleFutureBits,
                "fork configuration changes simulated behavior");
    core.attachObs(cfg.statsOut ? &coreObs : nullptr);
}

bool
Engine::critiqueAt(std::size_t idx)
{
    const CritiqueOutcome out = core.critique(idx);
    if (out.bitsGathered < hybrid.numFutureBits() && measuring())
        ++stats.partialCritiques;
    if (out.overrode && measuring()) {
        ++stats.criticOverrides;
        stats.squashedPredictions += out.squashed;
    }
    return out.overrode;
}

void
Engine::critiqueReady()
{
    if (!hybrid.hasCritic())
        return;
    const unsigned want = std::max(1u, hybrid.numFutureBits());

    // Issue critiques oldest-first, resuming at the core's cached
    // oldest-uncritiqued cursor instead of rescanning the pipeline.
    for (std::optional<std::size_t> idx = core.oldestUncriticized();
         idx; idx = core.nextUncritiqued(*idx + 1)) {
        if (core.futureBitsAvailable(*idx) < want)
            break; // younger branches have even fewer bits
        if (critiqueAt(*idx))
            break; // override squashed the younger entries
    }
}

void
Engine::resolveOldest(CommittedStream &committed)
{
    pcbp_assert(!core.queueEmpty());

    // §5: the consumer needs this prediction now; if the critique is
    // still pending, generate it from the future bits available.
    if (!core.front().critiqued && core.front().btbHit &&
        hybrid.hasCritic()) {
        critiqueAt(0);
    }

    // Read the record in place and drop it: the pooled slot (and this
    // reference) stays valid until the next fetchNext(), and skipping
    // popFront()'s by-value copy saves a two-register checkpoint move
    // per commit.
    const Inflight &r = core.front();
    core.dropFront();

    const CommittedBranch *cb = committed.at(commitIdx);
    pcbp_assert(cb != nullptr, "committed stream ended mid-run");

    // Invariant: the oldest in-flight branch is on the correct path.
    pcbp_assert(r.traceIdx == commitIdx,
                "oldest branch not at the commit point");
    pcbp_assert(r.block == cb->block,
                "oldest branch diverged from the architectural path");

    const bool outcome = cb->taken;
    const bool prophet_correct =
        r.btbHit ? (r.prophetPred == outcome) : !outcome;

    // Non-speculative commit-time training (§3.2); for critiqued
    // branches this uses the critique-time BOR, wrong-path future
    // bits included (§3.3).
    core.commitTrain(r, outcome);

    const bool mispredicted = r.finalPred != outcome;

    if (measuring()) {
        ++stats.committedBranches;
        stats.committedUops += r.numUops;
        if (!r.btbHit)
            ++stats.btbMisses;
        if (r.btbHit && !prophet_correct)
            ++stats.prophetMispredicts;
        if (r.btbHit && hybrid.hasCritic() && r.decision) {
            const bool provided = r.decision->provided;
            const bool agreed =
                !provided || r.decision->finalPrediction == r.prophetPred;
            stats.critiques.record(
                classifyCritique(prophet_correct, provided, agreed));
        }
        if (cfg.collectPerBranch) {
            auto &pb = perBranchMap[r.pc];
            pb.pc = r.pc;
            ++pb.execs;
            if (r.btbHit && !prophet_correct)
                ++pb.prophetWrong;
            if (mispredicted)
                ++pb.finalWrong;
        }
    }

    ++commitIdx;

    if (mispredicted) {
        if (measuring()) {
            ++stats.finalMispredicts;
            stats.flushDistance.sample(uopsSinceFlush);
            stats.wrongPathBranches += core.queueSize();
            for (std::size_t i = 0; i < core.queueSize(); ++i)
                stats.wrongPathUops += core.at(i).numUops;
        }
        uopsSinceFlush = 0;
        core.clearQueue();
        core.recoverAndRedirect(r, outcome);
    } else {
        uopsSinceFlush += r.numUops;
    }

    // Everything at or above commitIdx may still be read (oracle
    // lookahead); older records are dead.
    committed.release(commitIdx);
}

EngineStats
Engine::run()
{
    ProgramWalkStream stream(program,
                             cfg.warmupBranches + cfg.measureBranches);
    return run(stream);
}

EngineStats
Engine::run(CommittedStream &committed)
{
    beginRun(committed);
    return finishRun(committed);
}

void
Engine::beginRun(CommittedStream &committed)
{
    totalBranches = std::min(cfg.warmupBranches + cfg.measureBranches,
                             committed.length());

    const CommittedBranch *first = committed.at(0);
    coreObs = SpecCoreObs{};
    core.attachObs(cfg.statsOut ? &coreObs : nullptr);
    core.beginRun(cfg.oracleFutureBits ? &committed : nullptr,
                  totalBranches,
                  first ? first->block : program.entry());
    commitIdx = 0;
    uopsSinceFlush = 0;
    stats = EngineStats{};
    perBranchMap.clear();
}

bool
Engine::stepUntil(std::uint64_t commit_target,
                  CommittedStream &committed)
{
    while (commitIdx < totalBranches && commitIdx < commit_target) {
        while (core.queueSize() < cfg.pipelineDepth)
            core.fetchNext();
        critiqueReady();
        resolveOldest(committed);
    }
    return commitIdx < totalBranches;
}

void
Engine::armResume(CommittedStream &committed)
{
    totalBranches = std::min(cfg.warmupBranches + cfg.measureBranches,
                             committed.length());
    // Landing inside this fork's warmup is what keeps its measured
    // stats identical to an uninterrupted run: commit-side stats of
    // branch N are recorded before the commit cursor advances, but
    // flush-side stats after, so the newest branch a fork may have
    // missed is warmupBranches - 1.
    pcbp_assert(commitIdx < cfg.warmupBranches,
                "fork past the start of its measured window");
    pcbp_assert(committed.produced() <= totalBranches,
                "forked stream ahead of this fork's budget");
}

EngineStats
Engine::resumeRun(CommittedStream &committed)
{
    armResume(committed);
    return finishRun(committed);
}

EngineStats
Engine::finishRun(CommittedStream &committed)
{
    stepUntil(totalBranches, committed);

    if (cfg.collectPerBranch) {
        stats.perBranch.reserve(perBranchMap.size());
        for (auto &kv : perBranchMap)
            stats.perBranch.push_back(kv.second);
        std::sort(stats.perBranch.begin(), stats.perBranch.end(),
                  [](const PerBranchStat &a, const PerBranchStat &b) {
                      if (a.finalWrong != b.finalWrong)
                          return a.finalWrong > b.finalWrong;
                      return a.pc < b.pc;
                  });
    }
    if (cfg.statsOut)
        exportStats(committed);
    return stats;
}

void
Engine::exportStats(CommittedStream &committed)
{
    StatRegistry &reg = *cfg.statsOut;

    reg.add("engine.committed_branches", stats.committedBranches);
    reg.add("engine.committed_uops", stats.committedUops);
    reg.add("engine.final_mispredicts", stats.finalMispredicts);
    reg.add("engine.prophet_mispredicts", stats.prophetMispredicts);
    reg.add("engine.btb_misses", stats.btbMisses);
    reg.add("engine.critic_overrides", stats.criticOverrides);
    reg.add("engine.squashed_predictions", stats.squashedPredictions);
    reg.add("engine.wrong_path_branches", stats.wrongPathBranches);
    reg.add("engine.wrong_path_uops", stats.wrongPathUops);
    reg.add("engine.partial_critiques", stats.partialCritiques);
    for (std::size_t c = 0; c < numCritiqueClasses; ++c) {
        reg.add("engine.critique." +
                    critiqueClassName(static_cast<CritiqueClass>(c)),
                stats.critiques.counts[c]);
    }
    reg.hist("engine.flush_distance_uops", stats.flushDistance);

    coreObs.exportTo(reg, "core");

    reg.add(std::string("stream.backend.") + committed.backendName(), 1);
    reg.add("stream.refills", committed.refills());
    reg.add("stream.produced", committed.produced());
    reg.setMax("stream.window_peak", committed.windowPeak());
    committed.exportHostStats(reg);

    hybrid.exportStats(reg, "predictor");
}

} // namespace pcbp
