/**
 * @file
 * The wrong-path-capable branch-prediction engine.
 *
 * This is the accuracy simulator (no timing): it models an in-order
 * speculative front end with a bounded number of in-flight branches.
 * The prophet runs ahead along its own predicted path through the
 * *CFG* — so, when the final prediction of a branch turns out wrong,
 * the future bits the critic consumed were genuinely produced on the
 * wrong path, exactly as §6 of the paper requires. Recovery restores
 * the checkpointed BHR/BOR and redirects fetch; the mispredicted
 * branch itself commits and trains the critic with its critique-time
 * BOR (§3.3).
 *
 * The speculative protocol itself — predict, gather, critique,
 * recover, commit-train — lives in the shared SpecCore
 * (sim/spec_core.hh); the engine layers the accuracy-run policy and
 * statistics on top. The committed (architectural) path arrives
 * through a CommittedStream (branch behaviors read only committed
 * state, so the correct path is provably independent of the
 * predictor, as in real hardware): by default an on-the-fly CFG
 * walk, optionally any other stream — and only a pipeline-deep
 * window of it is ever resident, so run length does not affect
 * memory.
 */

#ifndef PCBP_SIM_ENGINE_HH
#define PCBP_SIM_ENGINE_HH

#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "core/critique.hh"
#include "core/prophet_critic.hh"
#include "sim/committed_stream.hh"
#include "sim/spec_core.hh"
#include "workload/cfg.hh"

namespace pcbp
{

/** Accuracy-engine configuration. */
struct EngineConfig
{
    /** Maximum in-flight branches (models pipeline depth). */
    unsigned pipelineDepth = 24;

    /** Model the BTB of §5 (miss = fall-through, allocate at commit). */
    bool useBtb = true;
    std::size_t btbEntries = 4096;
    unsigned btbWays = 4;

    /**
     * Ablation: feed the critic correct-path outcomes as future bits
     * instead of the prophet's wrong-path predictions. §6 argues this
     * is oracle information a real machine does not have; the
     * ablation bench quantifies the inflation.
     */
    bool oracleFutureBits = false;

    /** Collect per-static-branch statistics (trace explorer). */
    bool collectPerBranch = false;

    /**
     * Optional commit-path tap (H2P analytics, differential tests):
     * receives every committed branch in commit order, warmup
     * included. Not owned; must outlive the engine.
     */
    CommitSink *commitSink = nullptr;

    /** Committed branches measured (after warmup). */
    std::uint64_t measureBranches = 250000;

    /** Committed branches of warmup before measuring. */
    std::uint64_t warmupBranches = 25000;

    /**
     * Optional stats registry: when set, the run exports its
     * counters — engine.*, core.* (spec-core protocol events),
     * stream.*, predictor.* — into it at end of run, and the spec
     * core counts protocol events as it goes (obs/probes.hh; off the
     * hot path either way). Not owned; null = no collection.
     */
    StatRegistry *statsOut = nullptr;
};

/** Per-static-branch accuracy record. */
struct PerBranchStat
{
    Addr pc = 0;
    std::uint64_t execs = 0;
    std::uint64_t prophetWrong = 0;
    std::uint64_t finalWrong = 0;
};

/** Counters produced by an engine run (measured window only). */
struct EngineStats
{
    std::uint64_t committedBranches = 0;
    std::uint64_t committedUops = 0;

    /** Final-prediction mispredicts == pipeline flushes. */
    std::uint64_t finalMispredicts = 0;

    /** Prophet-prediction mispredicts on committed branches. */
    std::uint64_t prophetMispredicts = 0;

    /** Committed branches that missed the BTB when fetched. */
    std::uint64_t btbMisses = 0;

    /** Explicit disagree critiques. */
    std::uint64_t criticOverrides = 0;

    /** Prophet predictions flushed from the FTQ by overrides. */
    std::uint64_t squashedPredictions = 0;

    /** Branches/uops squashed by pipeline flushes (wrong path). */
    std::uint64_t wrongPathBranches = 0;
    std::uint64_t wrongPathUops = 0;

    /** Critiques generated with fewer than the configured bits. */
    std::uint64_t partialCritiques = 0;

    /** §7.3 critique distribution. */
    CritiqueCounts critiques;

    /** Distribution of uops between pipeline flushes. */
    Histogram flushDistance{64, 512};

    /** Optional per-static-branch stats, sorted by finalWrong. */
    std::vector<PerBranchStat> perBranch;

    double
    mispPerKuops() const
    {
        return committedUops == 0
                   ? 0.0
                   : 1000.0 * double(finalMispredicts) /
                         double(committedUops);
    }

    double
    mispRate() const
    {
        return committedBranches == 0
                   ? 0.0
                   : double(finalMispredicts) / double(committedBranches);
    }

    double
    prophetMispRate() const
    {
        return committedBranches == 0
                   ? 0.0
                   : double(prophetMispredicts) /
                         double(committedBranches);
    }

    double
    uopsPerFlush() const
    {
        return finalMispredicts == 0
                   ? double(committedUops)
                   : double(committedUops) / double(finalMispredicts);
    }
};

class Engine
{
  public:
    /**
     * @param program The CFG speculation runs through.
     * @param hybrid The predictor under test (prophet-only or full
     *        prophet/critic).
     * @param config Engine configuration.
     */
    Engine(Program &program, ProphetCriticHybrid &hybrid,
           const EngineConfig &config);

    /**
     * Fork (DESIGN.md §11): duplicate @p other's mid-run state —
     * spec core (queue, BTB, fetch pointer), commit cursor, flush
     * distance, protocol counters — onto @p program and @p hybrid,
     * which must be clone()s of @p other's at the same point.
     * @p config supplies this fork's own warmup/measure budget, stats
     * registry, and commit sink; it must agree with @p other's
     * configuration on everything that shapes simulated behavior
     * (pipeline depth, BTB geometry; oracle mode cannot fork).
     * Continue with resumeRun().
     */
    Engine(const Engine &other, Program &program,
           ProphetCriticHybrid &hybrid, const EngineConfig &config);

    /**
     * Run the configured number of branches over the program's own
     * committed walk (streamed, O(pipeline) memory) and return stats.
     */
    EngineStats run();

    /**
     * Run against an explicit committed stream (trace replay, tests,
     * equivalence checks). @p committed must agree with the CFG:
     * successor(block, outcome) is the next committed block. The run
     * length is the configured branch budget capped by the stream.
     */
    EngineStats run(CommittedStream &committed);

    /** @name Split-phase execution (fork-based sweeps, DESIGN.md §11)
     *
     * run(committed) == beginRun(); stepUntil(...); finishRun();.
     * The split exists so a chain runner can pause a canonical run at
     * a loop boundary (every state transition complete, commit cursor
     * exact), fork clones, and resume.
     */
    /// @{

    /** Arm a run over @p committed (resets cursors and stats). */
    void beginRun(CommittedStream &committed);

    /**
     * Advance until @p commit_target branches have committed (or the
     * run ends). Stops at the top of the commit loop: exactly
     * @p commit_target commits have happened, nothing of commit
     * @p commit_target itself has. @return false once the run ended.
     */
    bool stepUntil(std::uint64_t commit_target,
                   CommittedStream &committed);

    /** Run to completion and export/return the stats. */
    EngineStats finishRun(CommittedStream &committed);

    /**
     * Entry point for a forked engine: adopt @p committed (a
     * mid-stream fork positioned exactly where the forked-from run
     * paused) and run this fork's own budget to completion. Must
     * still be inside this fork's warmup, so every measured stat is
     * identical to what an uninterrupted run would have produced.
     */
    EngineStats resumeRun(CommittedStream &committed);

    /**
     * The validation/arming half of resumeRun() without the
     * run-to-completion: after this, a forked engine can be driven
     * with stepUntil()/finishRun() like any other — how the batch
     * runner keeps peeled forks in its lockstep (DESIGN.md §12).
     */
    void armResume(CommittedStream &committed);

    /** Committed branches so far (the fork/snapshot cursor). */
    std::uint64_t committedSoFar() const { return commitIdx; }
    /// @}

  private:
    using Inflight = SpecRecord<EnginePayload>;

    bool critiqueAt(std::size_t idx);
    void critiqueReady();
    void resolveOldest(CommittedStream &committed);
    void exportStats(CommittedStream &committed);

    bool measuring() const { return commitIdx >= cfg.warmupBranches; }

    Program &program;
    ProphetCriticHybrid &hybrid;
    EngineConfig cfg;
    SpecCore<EnginePayload> core;
    SpecCoreObs coreObs;

    std::uint64_t totalBranches = 0;
    std::uint64_t commitIdx = 0;
    std::uint64_t uopsSinceFlush = 0;

    EngineStats stats;
    std::unordered_map<Addr, PerBranchStat> perBranchMap;
};

} // namespace pcbp

#endif // PCBP_SIM_ENGINE_HH
