/**
 * @file
 * The wrong-path-capable branch-prediction engine.
 *
 * This is the accuracy simulator (no timing): it models an in-order
 * speculative front end with a bounded number of in-flight branches.
 * The prophet runs ahead along its own predicted path through the
 * *CFG* — so, when the final prediction of a branch turns out wrong,
 * the future bits the critic consumed were genuinely produced on the
 * wrong path, exactly as §6 of the paper requires. Recovery restores
 * the checkpointed BHR/BOR and redirects fetch; the mispredicted
 * branch itself commits and trains the critic with its critique-time
 * BOR (§3.3).
 *
 * The committed (architectural) path is precomputed: branch
 * behaviors read only committed state, so the correct path is
 * provably independent of the predictor (as in real hardware, where
 * wrong-path execution has no architectural effect).
 */

#ifndef PCBP_SIM_ENGINE_HH
#define PCBP_SIM_ENGINE_HH

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "core/critique.hh"
#include "core/prophet_critic.hh"
#include "sim/btb.hh"
#include "workload/cfg.hh"

namespace pcbp
{

/** Accuracy-engine configuration. */
struct EngineConfig
{
    /** Maximum in-flight branches (models pipeline depth). */
    unsigned pipelineDepth = 24;

    /** Model the BTB of §5 (miss = fall-through, allocate at commit). */
    bool useBtb = true;
    std::size_t btbEntries = 4096;
    unsigned btbWays = 4;

    /**
     * Ablation: feed the critic correct-path outcomes as future bits
     * instead of the prophet's wrong-path predictions. §6 argues this
     * is oracle information a real machine does not have; the
     * ablation bench quantifies the inflation.
     */
    bool oracleFutureBits = false;

    /** Collect per-static-branch statistics (trace explorer). */
    bool collectPerBranch = false;

    /** Committed branches measured (after warmup). */
    std::uint64_t measureBranches = 250000;

    /** Committed branches of warmup before measuring. */
    std::uint64_t warmupBranches = 25000;
};

/** Per-static-branch accuracy record. */
struct PerBranchStat
{
    Addr pc = 0;
    std::uint64_t execs = 0;
    std::uint64_t prophetWrong = 0;
    std::uint64_t finalWrong = 0;
};

/** Counters produced by an engine run (measured window only). */
struct EngineStats
{
    std::uint64_t committedBranches = 0;
    std::uint64_t committedUops = 0;

    /** Final-prediction mispredicts == pipeline flushes. */
    std::uint64_t finalMispredicts = 0;

    /** Prophet-prediction mispredicts on committed branches. */
    std::uint64_t prophetMispredicts = 0;

    /** Committed branches that missed the BTB when fetched. */
    std::uint64_t btbMisses = 0;

    /** Explicit disagree critiques. */
    std::uint64_t criticOverrides = 0;

    /** Prophet predictions flushed from the FTQ by overrides. */
    std::uint64_t squashedPredictions = 0;

    /** Branches/uops squashed by pipeline flushes (wrong path). */
    std::uint64_t wrongPathBranches = 0;
    std::uint64_t wrongPathUops = 0;

    /** Critiques generated with fewer than the configured bits. */
    std::uint64_t partialCritiques = 0;

    /** §7.3 critique distribution. */
    CritiqueCounts critiques;

    /** Distribution of uops between pipeline flushes. */
    Histogram flushDistance{64, 512};

    /** Optional per-static-branch stats, sorted by finalWrong. */
    std::vector<PerBranchStat> perBranch;

    double
    mispPerKuops() const
    {
        return committedUops == 0
                   ? 0.0
                   : 1000.0 * double(finalMispredicts) /
                         double(committedUops);
    }

    double
    mispRate() const
    {
        return committedBranches == 0
                   ? 0.0
                   : double(finalMispredicts) / double(committedBranches);
    }

    double
    prophetMispRate() const
    {
        return committedBranches == 0
                   ? 0.0
                   : double(prophetMispredicts) /
                         double(committedBranches);
    }

    double
    uopsPerFlush() const
    {
        return finalMispredicts == 0
                   ? double(committedUops)
                   : double(committedUops) / double(finalMispredicts);
    }
};

class Engine
{
  public:
    /**
     * @param program The CFG to run (walked architecturally inside).
     * @param hybrid The predictor under test (prophet-only or full
     *        prophet/critic).
     * @param config Engine configuration.
     */
    Engine(Program &program, ProphetCriticHybrid &hybrid,
           const EngineConfig &config);

    /** Run the configured number of branches and return stats. */
    EngineStats run();

  private:
    struct Inflight
    {
        BlockId block = invalidBlock;
        Addr pc = 0;
        std::uint32_t numUops = 0;
        std::uint64_t traceIdx = 0;
        bool btbHit = true;
        bool prophetPred = false;
        bool finalPred = false;
        bool critiqued = false;
        std::optional<CritiqueDecision> decision;
        BranchContext ctx;
    };

    void fetchOne();
    std::vector<bool> futureBitsFor(std::size_t idx) const;
    bool critiqueAt(std::size_t idx);
    void critiqueReady();
    void resolveOldest();

    bool measuring() const { return commitIdx >= cfg.warmupBranches; }

    Program &program;
    ProphetCriticHybrid &hybrid;
    EngineConfig cfg;
    Btb btb;

    std::vector<CommittedBranch> trace;
    std::deque<Inflight> inflight;
    BlockId fetchBlock = 0;
    std::uint64_t specTraceIdx = 0;
    std::uint64_t commitIdx = 0;
    std::uint64_t uopsSinceFlush = 0;

    EngineStats stats;
    std::unordered_map<Addr, PerBranchStat> perBranchMap;
};

} // namespace pcbp

#endif // PCBP_SIM_ENGINE_HH
