#include "sim/ftq.hh"

#include "common/logging.hh"

namespace pcbp
{

Ftq::Ftq(std::size_t capacity) : cap(capacity)
{
    pcbp_assert(capacity >= 1);
}

void
Ftq::push(FtqEntry e)
{
    pcbp_assert(!full(), "pushing into a full FTQ");
    q.push_back(std::move(e));
}

FtqEntry &
Ftq::head()
{
    pcbp_assert(!q.empty());
    return q.front();
}

void
Ftq::popHead()
{
    pcbp_assert(!q.empty());
    q.pop_front();
}

std::optional<std::size_t>
Ftq::oldestUncriticized() const
{
    for (std::size_t i = 0; i < q.size(); ++i)
        if (!q[i].critiqued)
            return i;
    return std::nullopt;
}

std::size_t
Ftq::flushYoungerThan(std::size_t idx)
{
    pcbp_assert(idx < q.size());
    const std::size_t flushed = q.size() - idx - 1;
    q.resize(idx + 1);
    return flushed;
}

std::size_t
Ftq::flushAll()
{
    const std::size_t flushed = q.size();
    q.clear();
    return flushed;
}

} // namespace pcbp
