/**
 * @file
 * Fetch target queue (§5, Fig. 4): the bounded queue that decouples
 * the prophet/critic hybrid from the instruction cache. The hybrid
 * produces predictions into the tail; the cache consumes uops from
 * the head; the critic walks the oldest uncriticized entry. On a
 * disagree critique, only the uncriticized entries are flushed.
 */

#ifndef PCBP_SIM_FTQ_HH
#define PCBP_SIM_FTQ_HH

#include <deque>
#include <optional>

#include "core/prophet_critic.hh"
#include "workload/cfg.hh"

namespace pcbp
{

/** One FTQ entry: the prediction for one fetch block. */
struct FtqEntry
{
    BlockId block = invalidBlock;
    Addr pc = 0;
    std::uint32_t numUops = 0;
    std::uint32_t uopsLeft = 0; //!< not yet consumed by the cache
    std::uint64_t traceIdx = 0;
    Cycle fetchCycle = 0;       //!< cycle the prophet produced it
    bool btbHit = true;
    bool prophetPred = false;
    bool finalPred = false;
    bool critiqued = false;
    std::optional<CritiqueDecision> decision;
    BranchContext ctx;
};

class Ftq
{
  public:
    explicit Ftq(std::size_t capacity);

    bool full() const { return q.size() >= cap; }
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return cap; }

    void push(FtqEntry e);

    FtqEntry &head();
    FtqEntry &at(std::size_t i) { return q[i]; }
    const FtqEntry &at(std::size_t i) const { return q[i]; }

    void popHead();

    /** Index of the oldest uncriticized entry, if any. */
    std::optional<std::size_t> oldestUncriticized() const;

    /**
     * Flush entries younger than @p idx (the §5 FTQ-only flush on a
     * disagree critique). Returns the number flushed.
     */
    std::size_t flushYoungerThan(std::size_t idx);

    /** Flush everything (pipeline mispredict). */
    std::size_t flushAll();

  private:
    std::deque<FtqEntry> q;
    std::size_t cap;
};

} // namespace pcbp

#endif // PCBP_SIM_FTQ_HH
