#include "sim/metrics.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

AggregateResult
aggregate(const std::vector<EngineStats> &runs)
{
    AggregateResult a;
    if (runs.empty())
        return a;
    for (const auto &s : runs) {
        a.mispPerKuops += s.mispPerKuops();
        a.mispRate += s.mispRate();
        a.prophetMispRate += s.prophetMispRate();
        a.committedBranches += s.committedBranches;
        a.committedUops += s.committedUops;
        a.finalMispredicts += s.finalMispredicts;
        a.partialCritiques += s.partialCritiques;
        for (std::size_t c = 0; c < numCritiqueClasses; ++c)
            a.critiques.counts[c] += s.critiques.counts[c];
    }
    const double n = static_cast<double>(runs.size());
    a.mispPerKuops /= n;
    a.mispRate /= n;
    a.prophetMispRate /= n;
    return a;
}

double
pctReduction(double base, double now)
{
    if (base == 0.0)
        return 0.0;
    return 100.0 * (base - now) / base;
}

// --------------------------------------------------- H2P analytics

double
BranchProfile::outcomeEntropy() const
{
    const double p = takenRate();
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

void
H2PProfiler::onCommit(const CommitEvent &e)
{
    if (e.index < skip)
        return;
    ++commits;
    const bool mispredicted = e.finalPred != e.outcome;
    if (mispredicted)
        ++mispredicts;

    BranchProfile &p = perPc[e.pc];
    p.pc = e.pc;
    ++p.execs;
    if (e.outcome)
        ++p.takens;
    if (!e.btbHit)
        ++p.btbMisses;
    if (e.btbHit && e.prophetPred != e.outcome)
        ++p.prophetWrong;
    if (mispredicted)
        ++p.finalWrong;
    if (e.criticOverrode)
        ++p.criticOverrides;

    if (p.hasPrev && p.prevOutcome != e.outcome)
        ++p.transitions;
    p.hasPrev = true;
    p.prevOutcome = e.outcome;
}

std::vector<BranchProfile>
H2PProfiler::profiles() const
{
    std::vector<BranchProfile> out;
    out.reserve(perPc.size());
    for (const auto &kv : perPc)
        out.push_back(kv.second);
    std::sort(out.begin(), out.end(),
              [](const BranchProfile &a, const BranchProfile &b) {
                  return a.pc < b.pc;
              });
    return out;
}

H2PReport
H2PProfiler::report(const H2PConfig &cfg) const
{
    H2PReport r;
    r.branches = commits;
    r.mispredicts = mispredicts;
    r.staticBranches = perPc.size();

    std::vector<BranchProfile> all = profiles();

    std::uint64_t h2p_execs = 0, h2p_misses = 0;
    for (const BranchProfile &p : all) {
        if (p.execs < cfg.minExecs ||
            p.finalAccuracy() >= cfg.accuracyBelow) {
            continue;
        }
        ++r.h2pStatic;
        h2p_execs += p.execs;
        h2p_misses += p.finalWrong;
    }
    if (commits)
        r.h2pExecShare = double(h2p_execs) / double(commits);
    if (mispredicts)
        r.h2pMissShare = double(h2p_misses) / double(mispredicts);

    // Rank every profiled branch by miss volume; ties break on pc so
    // the report is bit-stable.
    std::sort(all.begin(), all.end(),
              [](const BranchProfile &a, const BranchProfile &b) {
                  if (a.finalWrong != b.finalWrong)
                      return a.finalWrong > b.finalWrong;
                  return a.pc < b.pc;
              });

    double cumulative = 0.0;
    for (const BranchProfile &p : all) {
        if (r.top.size() >= cfg.topN)
            break;
        H2PEntry e;
        e.profile = p;
        e.missShare = mispredicts
                          ? double(p.finalWrong) / double(mispredicts)
                          : 0.0;
        cumulative += e.missShare;
        e.cumulativeMissShare = cumulative;
        r.top.push_back(e);
    }
    return r;
}

void
H2PProfiler::reset()
{
    commits = 0;
    mispredicts = 0;
    perPc.clear();
}

namespace
{

std::string
hexPc(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

} // namespace

std::string
H2PReport::render() const
{
    std::ostringstream os;
    os << "H2P report: " << workload << " under " << config << "\n";
    os << "  committed " << branches << " branches, " << mispredicts
       << " mispredicts, " << staticBranches << " static branches\n";
    os << "  H2P set: " << h2pStatic << " static branches, "
       << fmtPercent(h2pExecShare, 1) << " of executions, "
       << fmtPercent(h2pMissShare, 1) << " of mispredicts\n";

    TablePrinter t({"rank", "pc", "execs", "taken", "entropy", "flips",
                    "prophet-miss", "final-miss", "miss-share",
                    "cum-share"});
    int rank = 1;
    for (const H2PEntry &e : top) {
        const BranchProfile &p = e.profile;
        t.addRow({std::to_string(rank++), hexPc(p.pc),
                  std::to_string(p.execs),
                  fmtPercent(p.takenRate(), 1),
                  fmtDouble(p.outcomeEntropy(), 3),
                  fmtPercent(p.transitionRate(), 1),
                  fmtPercent(p.execs ? double(p.prophetWrong) /
                                           double(p.execs)
                                     : 0.0,
                             1),
                  fmtPercent(p.execs ? double(p.finalWrong) /
                                           double(p.execs)
                                     : 0.0,
                             1),
                  fmtPercent(e.missShare, 1),
                  fmtPercent(e.cumulativeMissShare, 1)});
    }
    os << t.str();
    return os.str();
}

void
H2PProfiler::exportStats(StatRegistry &reg, const std::string &prefix,
                         std::size_t max_pcs) const
{
    reg.add(prefix + ".commits", commits);
    reg.add(prefix + ".mispredicts", mispredicts);
    reg.setMax(prefix + ".static_branches", perPc.size());

    // Rank worst-first (finalWrong desc, pc asc) so truncation keeps
    // the branches the H2P analysis cares about, deterministically.
    std::vector<BranchProfile> all = profiles();
    std::sort(all.begin(), all.end(),
              [](const BranchProfile &a, const BranchProfile &b) {
                  if (a.finalWrong != b.finalWrong)
                      return a.finalWrong > b.finalWrong;
                  return a.pc < b.pc;
              });
    if (all.size() > max_pcs)
        all.resize(max_pcs);

    for (const BranchProfile &p : all) {
        const std::string base = prefix + ".pc_" + hexPc(p.pc);
        reg.add(base + ".execs", p.execs);
        reg.add(base + ".takens", p.takens);
        reg.add(base + ".transitions", p.transitions);
        reg.add(base + ".prophet_wrong", p.prophetWrong);
        reg.add(base + ".final_wrong", p.finalWrong);
        reg.add(base + ".critic_overrides", p.criticOverrides);
        reg.add(base + ".btb_misses", p.btbMisses);
    }
}

} // namespace pcbp
