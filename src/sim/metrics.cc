#include "sim/metrics.hh"

#include "common/logging.hh"

namespace pcbp
{

AggregateResult
aggregate(const std::vector<EngineStats> &runs)
{
    AggregateResult a;
    if (runs.empty())
        return a;
    for (const auto &s : runs) {
        a.mispPerKuops += s.mispPerKuops();
        a.mispRate += s.mispRate();
        a.prophetMispRate += s.prophetMispRate();
        a.committedBranches += s.committedBranches;
        a.committedUops += s.committedUops;
        a.finalMispredicts += s.finalMispredicts;
        a.partialCritiques += s.partialCritiques;
        for (std::size_t c = 0; c < numCritiqueClasses; ++c)
            a.critiques.counts[c] += s.critiques.counts[c];
    }
    const double n = static_cast<double>(runs.size());
    a.mispPerKuops /= n;
    a.mispRate /= n;
    a.prophetMispRate /= n;
    return a;
}

double
pctReduction(double base, double now)
{
    if (base == 0.0)
        return 0.0;
    return 100.0 * (base - now) / base;
}

} // namespace pcbp
