/**
 * @file
 * Aggregation of engine statistics across workload sets, matching
 * how the paper reports results (averages over benchmarks, summed
 * critique distributions, percent reductions).
 */

#ifndef PCBP_SIM_METRICS_HH
#define PCBP_SIM_METRICS_HH

#include <string>
#include <vector>

#include "sim/engine.hh"

namespace pcbp
{

/** One workload's result under one configuration. */
struct RunResult
{
    std::string workload;
    std::string config;
    EngineStats stats;
};

/** Aggregate over a workload set. */
struct AggregateResult
{
    /** Arithmetic mean of per-workload misp/Kuops (paper style). */
    double mispPerKuops = 0.0;

    /** Arithmetic mean of per-workload final mispredict rate. */
    double mispRate = 0.0;

    /** Arithmetic mean of per-workload prophet mispredict rate. */
    double prophetMispRate = 0.0;

    /** Summed critique distribution. */
    CritiqueCounts critiques;

    /** Summed raw counters. */
    std::uint64_t committedBranches = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t finalMispredicts = 0;
    std::uint64_t partialCritiques = 0;

    /** Mean uops between flushes (weighted by totals). */
    double
    uopsPerFlush() const
    {
        return finalMispredicts == 0
                   ? double(committedUops)
                   : double(committedUops) / double(finalMispredicts);
    }
};

/** Aggregate a batch of per-workload stats. */
AggregateResult aggregate(const std::vector<EngineStats> &runs);

/** Percent reduction from @p base to @p now (positive = improved). */
double pctReduction(double base, double now);

} // namespace pcbp

#endif // PCBP_SIM_METRICS_HH
