/**
 * @file
 * Aggregation of engine statistics across workload sets, matching
 * how the paper reports results (averages over benchmarks, summed
 * critique distributions, percent reductions) — plus the
 * hard-to-predict (H2P) branch analytics layer.
 *
 * "Branch Prediction Is Not a Solved Problem" (Lin & Tarsa) observes
 * that the misses remaining under strong predictors concentrate in a
 * small set of static H2P branches; Bullseye-style predictors target
 * exactly those. The H2PProfiler taps the simulators' commit path
 * (SpecCore's CommitSink) and accumulates per-static-branch
 * accuracy, outcome entropy, and transition rates; H2PReport ranks
 * the top-miss branches and measures how concentrated the misses
 * are, so any (prophet, critic) configuration can be asked the
 * paper's question branch by branch.
 */

#ifndef PCBP_SIM_METRICS_HH
#define PCBP_SIM_METRICS_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hh"

namespace pcbp
{

/** One workload's result under one configuration. */
struct RunResult
{
    std::string workload;
    std::string config;
    EngineStats stats;
};

/** Aggregate over a workload set. */
struct AggregateResult
{
    /** Arithmetic mean of per-workload misp/Kuops (paper style). */
    double mispPerKuops = 0.0;

    /** Arithmetic mean of per-workload final mispredict rate. */
    double mispRate = 0.0;

    /** Arithmetic mean of per-workload prophet mispredict rate. */
    double prophetMispRate = 0.0;

    /** Summed critique distribution. */
    CritiqueCounts critiques;

    /** Summed raw counters. */
    std::uint64_t committedBranches = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t finalMispredicts = 0;
    std::uint64_t partialCritiques = 0;

    /** Mean uops between flushes (weighted by totals). */
    double
    uopsPerFlush() const
    {
        return finalMispredicts == 0
                   ? double(committedUops)
                   : double(committedUops) / double(finalMispredicts);
    }
};

/** Aggregate a batch of per-workload stats. */
AggregateResult aggregate(const std::vector<EngineStats> &runs);

/** Percent reduction from @p base to @p now (positive = improved). */
double pctReduction(double base, double now);

// ------------------------------------------------- H2P analytics

/** Per-static-branch accounting accumulated at commit. */
struct BranchProfile
{
    Addr pc = 0;
    std::uint64_t execs = 0;
    std::uint64_t takens = 0;
    /** Commits whose outcome differed from the previous commit. */
    std::uint64_t transitions = 0;
    std::uint64_t prophetWrong = 0;
    std::uint64_t finalWrong = 0;
    std::uint64_t criticOverrides = 0;
    std::uint64_t btbMisses = 0;

    /** @name Transition-tracking state (profiler-internal). */
    /// @{
    bool hasPrev = false;
    bool prevOutcome = false;
    /// @}

    double takenRate() const
    {
        return execs ? double(takens) / double(execs) : 0.0;
    }

    /** Binary entropy of the outcome stream, in bits (0..1). */
    double outcomeEntropy() const;

    /** Outcome flips per execution (1.0 = strict alternation). */
    double transitionRate() const
    {
        return execs > 1 ? double(transitions) / double(execs - 1) : 0.0;
    }

    double finalAccuracy() const
    {
        return execs ? 1.0 - double(finalWrong) / double(execs) : 1.0;
    }
};

/** What counts as hard-to-predict for the report. */
struct H2PConfig
{
    /** Minimum dynamic executions for a branch to be classified. */
    std::uint64_t minExecs = 64;

    /** Final accuracy below this marks a branch H2P. */
    double accuracyBelow = 0.99;

    /** Rows in the ranked top-miss table. */
    std::size_t topN = 10;
};

/** One ranked row of the report. */
struct H2PEntry
{
    BranchProfile profile;
    /** This branch's share of all final mispredicts. */
    double missShare = 0.0;
    /** Running share up to and including this row. */
    double cumulativeMissShare = 0.0;
};

/** The classification result for one (workload, config) run. */
struct H2PReport
{
    std::string workload;
    std::string config;

    std::uint64_t branches = 0;       //!< committed branches profiled
    std::uint64_t mispredicts = 0;    //!< final mispredicts
    std::uint64_t staticBranches = 0; //!< distinct PCs seen

    /** Static branches classified H2P under the config. */
    std::uint64_t h2pStatic = 0;
    /** Share of dynamic branches executed by H2P branches. */
    double h2pExecShare = 0.0;
    /** Share of final mispredicts caused by H2P branches. */
    double h2pMissShare = 0.0;

    /** Top-miss branches, by finalWrong descending (then pc). */
    std::vector<H2PEntry> top;

    /** Render the paper-style ASCII table. */
    std::string render() const;
};

/**
 * Commit-path tap (SpecCore CommitSink) accumulating per-branch
 * profiles. Attach through EngineConfig/TimingConfig::commitSink;
 * commits below @p skip_branches (warmup) are ignored.
 */
class H2PProfiler : public CommitSink
{
  public:
    explicit H2PProfiler(std::uint64_t skip_branches = 0)
        : skip(skip_branches)
    {
    }

    void onCommit(const CommitEvent &e) override;

    /** Classify and rank under @p cfg. Labels are the caller's. */
    H2PReport report(const H2PConfig &cfg = {}) const;

    /** Profiles in deterministic (pc-ascending) order. */
    std::vector<BranchProfile> profiles() const;

    /**
     * Export totals plus the top-@p max_pcs branches by final-wrong
     * count into @p reg's sim section — `prefix.pc_<hex>.*` per
     * branch — so H2P per-PC counters appear in the unified stats
     * dump next to the engine's. Deterministic: ties rank by pc.
     */
    void exportStats(StatRegistry &reg,
                     const std::string &prefix = "h2p",
                     std::size_t max_pcs = 64) const;

    std::uint64_t committedBranches() const { return commits; }

    void reset();

  private:
    std::uint64_t skip;
    std::uint64_t commits = 0;
    std::uint64_t mispredicts = 0;
    std::unordered_map<Addr, BranchProfile> perPc;
};

} // namespace pcbp

#endif // PCBP_SIM_METRICS_HH
