#include "sim/spec_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/probes.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

namespace
{

/** Initial checkpoint-arena capacity (grows on demand, stays 2^n). */
constexpr std::size_t kInitialSlabSize = 64;

} // namespace

void
SpecCoreObs::exportTo(StatRegistry &reg,
                      const std::string &prefix) const
{
    reg.add(prefix + ".fetches", fetches);
    reg.add(prefix + ".btb_hits", btbHits);
    reg.add(prefix + ".btb_allocs", btbAllocs);
    reg.add(prefix + ".critiques", critiques);
    reg.add(prefix + ".overrides", overrides);
    reg.add(prefix + ".squashed", squashed);
    reg.add(prefix + ".recoveries", recoveries);
    reg.add(prefix + ".commits", commits);
    reg.add(prefix + ".future_bits_gathered", fbGathered);
    reg.add(prefix + ".partial_gathers", partialGathers);
    reg.add(prefix + ".slab_growths", slabGrowths);
    reg.setMax(prefix + ".queue_peak", queuePeak);
}

template <typename Payload>
SpecCore<Payload>::SpecCore(Program &program_,
                            ProphetCriticHybrid &hybrid_,
                            const SpecCoreConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      btb(config.btbEntries, config.btbWays),
      slab(kInitialSlabSize), hitBits(kInitialSlabSize / 64, 0)
{
}

template <typename Payload>
SpecCore<Payload>::SpecCore(const SpecCore &other, Program &program_,
                            ProphetCriticHybrid &hybrid_,
                            CommitSink *sink)
    : program(program_), hybrid(hybrid_), cfg(other.cfg),
      btb(other.btb), slab(other.slab), headAbs(other.headAbs),
      tailAbs(other.tailAbs), firstUncritAbs(other.firstUncritAbs),
      hitsFetched(other.hitsFetched), hitBits(other.hitBits),
      fetchBlock(other.fetchBlock), specTraceIdx(other.specTraceIdx)
{
    // The oracle stream belongs to the forked-from run and cannot be
    // duplicated from here; oracle-mode cells take the replay path.
    pcbp_assert(!cfg.oracleFutureBits && other.oracle == nullptr,
                "cannot fork an oracle-future-bits core");
    cfg.commitSink = sink;
}

template <typename Payload>
void
SpecCore<Payload>::beginRun(CommittedStream *oracle_,
                            std::uint64_t oracle_limit,
                            BlockId start_block)
{
    pcbp_assert(!cfg.oracleFutureBits || oracle_ != nullptr,
                "oracle future bits need a committed stream");
    oracle = oracle_;
    oracleLimit = oracle_limit;
    fetchBlock = start_block;
    specTraceIdx = 0;
    headAbs = 0;
    tailAbs = 0;
    firstUncritAbs = 0;
    hitsFetched = 0;
    // Not strictly required — gathers never read ordinals >=
    // hitsFetched — but a clean ring keeps forked/reused cores
    // bit-for-bit comparable in memory dumps.
    std::fill(hitBits.begin(), hitBits.end(), 0);
}

template <typename Payload>
void
SpecCore<Payload>::growSlab()
{
    // Re-linearize the live queue into a doubled slab; absolute
    // indices keep their meaning because the new size is still a
    // power of two and every live record lands at the slot its
    // absolute index selects.
    pcbp_obs_inc(obs, slabGrowths);
    std::vector<Record> bigger(slab.size() * 2);
    for (std::size_t abs = headAbs; abs != tailAbs; ++abs) {
        bigger[abs & (bigger.size() - 1)] =
            std::move(slab[abs & (slab.size() - 1)]);
    }
    slab = std::move(bigger);

    // The hit-bit ring is addressed mod the slab size, so every live
    // bit moves: rebuild it from the live records' own (hitsCum - 1,
    // prophetPred) pairs.
    hitBits.assign(slab.size() / 64, 0);
    for (std::size_t abs = headAbs; abs != tailAbs; ++abs) {
        const Record &r = rec(abs);
        if (r.btbHit)
            setHitBit(r.hitsCum - 1, r.prophetPred);
    }
}

template <typename Payload>
typename SpecCore<Payload>::Record &
SpecCore<Payload>::fetchNext()
{
    if (tailAbs - headAbs == slab.size())
        growSlab();

    const BasicBlock &b = program.block(fetchBlock);

    // Reuse the pooled slot in place: no construction, no allocation.
    Record &r = rec(tailAbs);
    r.block = fetchBlock;
    r.pc = b.branchPc;
    r.numUops = b.numUops;
    r.traceIdx = specTraceIdx++;
    r.btbHit = !cfg.useBtb || btb.lookup(r.pc);
    r.critiqued = false;
    r.decision.reset();
    r.payload = Payload{};

    if (r.btbHit) {
        r.prophetPred = hybrid.predictBranch(r.pc, r.ctx);
        r.finalPred = r.prophetPred;
    } else {
        // The front end does not see the branch: implicit
        // fall-through, no history insertion, no critique. Keep a
        // checkpoint of the (unmodified) registers for repair.
        r.prophetPred = false;
        r.finalPred = false;
        r.critiqued = true;
        r.ctx.bhrBefore = hybrid.bhr();
        r.ctx.borBefore = hybrid.bor();
    }

    if (r.btbHit)
        setHitBit(hitsFetched, r.prophetPred);
    hitsFetched += r.btbHit ? 1 : 0;
    r.hitsCum = hitsFetched;

    fetchBlock = program.successor(fetchBlock, r.finalPred);
    ++tailAbs;

    pcbp_obs_inc(obs, fetches);
    pcbp_obs_add(obs, btbHits, r.btbHit ? 1 : 0);
    pcbp_obs_max(obs, queuePeak, tailAbs - headAbs);
    return r;
}

template <typename Payload>
unsigned
SpecCore<Payload>::futureBitsAvailable(std::size_t idx) const
{
    const unsigned want = std::max(1u, hybrid.numFutureBits());
    if (hybrid.numFutureBits() == 0)
        return want;
    // 1 (the entry's own prediction) + the BTB-hitting fetches
    // younger than it, saturated at the requirement — a counter
    // difference instead of a queue walk.
    const std::uint64_t younger_hits =
        hitsFetched - rec(headAbs + idx).hitsCum;
    const std::uint64_t avail = 1 + younger_hits;
    return avail >= want ? want : static_cast<unsigned>(avail);
}

template <typename Payload>
CritiqueOutcome
SpecCore<Payload>::critique(std::size_t idx)
{
    Record &r = rec(headAbs + idx);
    pcbp_dassert(!r.critiqued && r.btbHit);

    const unsigned want = hybrid.numFutureBits();
    fbScratch.clear();
    if (want > 0) {
        if (cfg.oracleFutureBits) {
            // Ablation (§6): correct-path outcomes as future bits.
            // Only meaningful for correct-path branches; wrong-path
            // records are squashed before their critique matters.
            for (std::uint64_t t = r.traceIdx;
                 fbScratch.size() < want && t < oracleLimit; ++t) {
                const CommittedBranch *cb = oracle->at(t);
                if (!cb)
                    break;
                fbScratch.push(cb->taken);
            }
            if (fbScratch.empty())
                fbScratch.push(r.prophetPred);
        } else {
            // Real mode: the prophet's predictions for this branch
            // and the (BTB-identified) branches fetched after it,
            // oldest first. The hit-bit ring already holds exactly
            // those bits contiguously by hit ordinal, so the gather
            // is a two-word window read instead of a queue walk.
            const std::uint64_t start = r.hitsCum - 1;
            const unsigned count = static_cast<unsigned>(
                std::min<std::uint64_t>(want,
                                        hitsFetched - start));
            fbScratch.assign(readHitBits(start), count);
        }
    }

    CritiqueDecision d =
        hybrid.critiqueBranch(r.pc, r.ctx, r.prophetPred, fbScratch);
    r.critiqued = true;
    r.finalPred = d.finalPrediction;

    CritiqueOutcome out;
    out.overrode = d.overrode;
    out.bitsGathered = fbScratch.size();
    r.decision = std::move(d);

    pcbp_obs_inc(obs, critiques);
    pcbp_obs_add(obs, fbGathered, out.bitsGathered);
    pcbp_obs_add(obs, partialGathers,
                 (want > 0 && out.bitsGathered < want) ? 1 : 0);

    if (out.overrode) {
        out.squashed = queueSize() - idx - 1;
        pcbp_obs_inc(obs, overrides);
        pcbp_obs_add(obs, squashed, out.squashed);
#if !defined(NDEBUG) || defined(PCBP_FORCE_DASSERT)
        // Queue-only flush: every younger prediction is uncritiqued
        // (critiques are issued oldest-first), so the flush is
        // confined to the queue (§5).
        for (std::size_t j = idx + 1; j < queueSize(); ++j) {
            const Record &y = rec(headAbs + j);
            pcbp_assert(!y.btbHit || !y.critiqued);
        }
#endif
        tailAbs = headAbs + idx + 1;
        hitsFetched = r.hitsCum;
        if (firstUncritAbs > tailAbs)
            firstUncritAbs = tailAbs;
        hybrid.overrideRedirect(r.ctx, r.finalPred);
        fetchBlock = program.successor(r.block, r.finalPred);
        specTraceIdx = r.traceIdx + 1;
    }
    return out;
}

template <typename Payload>
void
SpecCore<Payload>::recoverAndRedirect(const Record &r, bool outcome)
{
    pcbp_obs_inc(obs, recoveries);
    hybrid.recoverMispredict(r.ctx, outcome);
    fetchBlock = program.successor(r.block, outcome);
    specTraceIdx = r.traceIdx + 1;
}

template <typename Payload>
void
SpecCore<Payload>::commitTrain(const Record &r, bool outcome)
{
    pcbp_obs_inc(obs, commits);
    hybrid.commitBranch(r.pc, r.ctx, r.decision, outcome);
    if (cfg.useBtb && !r.btbHit) {
        btb.allocate(r.pc);
        pcbp_obs_inc(obs, btbAllocs);
    }
    if (cfg.commitSink) {
        CommitEvent e;
        e.index = r.traceIdx;
        e.block = r.block;
        e.pc = r.pc;
        e.numUops = r.numUops;
        e.btbHit = r.btbHit;
        e.prophetPred = r.prophetPred;
        e.finalPred = r.finalPred;
        e.critiqueProvided = r.decision && r.decision->provided;
        e.criticOverrode = r.decision && r.decision->overrode;
        e.outcome = outcome;
        cfg.commitSink->onCommit(e);
    }
}

template <typename Payload>
typename SpecCore<Payload>::Record &
SpecCore<Payload>::front()
{
    pcbp_dassert(!queueEmpty());
    return rec(headAbs);
}

template <typename Payload>
typename SpecCore<Payload>::Record
SpecCore<Payload>::popFront()
{
    pcbp_dassert(!queueEmpty());
    Record r = rec(headAbs);
    ++headAbs;
    if (firstUncritAbs < headAbs)
        firstUncritAbs = headAbs;
    return r;
}

template <typename Payload>
std::optional<std::size_t>
SpecCore<Payload>::oldestUncriticized() const
{
    while (firstUncritAbs < tailAbs && rec(firstUncritAbs).critiqued)
        ++firstUncritAbs;
    if (firstUncritAbs == tailAbs)
        return std::nullopt;
    return firstUncritAbs - headAbs;
}

template <typename Payload>
std::optional<std::size_t>
SpecCore<Payload>::nextUncritiqued(std::size_t from) const
{
    for (std::size_t i = from; i < queueSize(); ++i)
        if (!rec(headAbs + i).critiqued)
            return i;
    return std::nullopt;
}

template class SpecCore<EnginePayload>;
template class SpecCore<FtqPayload>;

} // namespace pcbp
