#include "sim/spec_core.hh"

#include "common/logging.hh"

namespace pcbp
{

template <typename Payload>
SpecCore<Payload>::SpecCore(Program &program_,
                            ProphetCriticHybrid &hybrid_,
                            const SpecCoreConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      btb(config.btbEntries, config.btbWays)
{
}

template <typename Payload>
void
SpecCore<Payload>::beginRun(CommittedStream *oracle_,
                            std::uint64_t oracle_limit,
                            BlockId start_block)
{
    pcbp_assert(!cfg.oracleFutureBits || oracle_ != nullptr,
                "oracle future bits need a committed stream");
    oracle = oracle_;
    oracleLimit = oracle_limit;
    fetchBlock = start_block;
    specTraceIdx = 0;
    q.clear();
}

template <typename Payload>
typename SpecCore<Payload>::Record &
SpecCore<Payload>::fetchNext()
{
    const BasicBlock &b = program.block(fetchBlock);

    Record r;
    r.block = fetchBlock;
    r.pc = b.branchPc;
    r.numUops = b.numUops;
    r.traceIdx = specTraceIdx++;
    r.btbHit = !cfg.useBtb || btb.lookup(r.pc);

    if (r.btbHit) {
        r.prophetPred = hybrid.predictBranch(r.pc, r.ctx);
        r.finalPred = r.prophetPred;
    } else {
        // The front end does not see the branch: implicit
        // fall-through, no history insertion, no critique. Keep a
        // checkpoint of the (unmodified) registers for repair.
        r.prophetPred = false;
        r.finalPred = false;
        r.critiqued = true;
        r.ctx.bhrBefore = hybrid.bhr();
        r.ctx.borBefore = hybrid.bor();
    }

    fetchBlock = program.successor(fetchBlock, r.finalPred);
    q.push_back(std::move(r));
    return q.back();
}

template <typename Payload>
unsigned
SpecCore<Payload>::futureBitsAvailable(std::size_t idx) const
{
    const unsigned want = std::max(1u, hybrid.numFutureBits());
    unsigned avail = hybrid.numFutureBits() == 0 ? want : 1;
    for (std::size_t j = idx + 1; j < q.size() && avail < want; ++j) {
        if (q[j].btbHit)
            ++avail;
    }
    return avail;
}

template <typename Payload>
CritiqueOutcome
SpecCore<Payload>::critique(std::size_t idx)
{
    Record &r = q[idx];
    pcbp_assert(!r.critiqued && r.btbHit);

    const unsigned want = hybrid.numFutureBits();
    fbScratch.clear();
    if (want > 0) {
        if (cfg.oracleFutureBits) {
            // Ablation (§6): correct-path outcomes as future bits.
            // Only meaningful for correct-path branches; wrong-path
            // records are squashed before their critique matters.
            for (std::uint64_t t = r.traceIdx;
                 fbScratch.size() < want && t < oracleLimit; ++t) {
                const CommittedBranch *cb = oracle->at(t);
                if (!cb)
                    break;
                fbScratch.push(cb->taken);
            }
            if (fbScratch.empty())
                fbScratch.push(r.prophetPred);
        } else {
            // Real mode: the prophet's predictions for this branch
            // and the (BTB-identified) branches fetched after it,
            // oldest first.
            fbScratch.push(r.prophetPred);
            for (std::size_t j = idx + 1;
                 j < q.size() && fbScratch.size() < want; ++j) {
                if (q[j].btbHit)
                    fbScratch.push(q[j].prophetPred);
            }
        }
    }

    CritiqueDecision d =
        hybrid.critiqueBranch(r.pc, r.ctx, r.prophetPred, fbScratch);
    r.critiqued = true;
    r.finalPred = d.finalPrediction;

    CritiqueOutcome out;
    out.overrode = d.overrode;
    out.bitsGathered = fbScratch.size();
    r.decision = std::move(d);

    if (out.overrode) {
        out.squashed = q.size() - idx - 1;
        // Queue-only flush: every younger prediction is uncritiqued
        // (critiques are issued oldest-first), so the flush is
        // confined to the queue (§5).
        for (std::size_t j = idx + 1; j < q.size(); ++j)
            pcbp_assert(!q[j].btbHit || !q[j].critiqued);
        q.resize(idx + 1);
        hybrid.overrideRedirect(r.ctx, r.finalPred);
        fetchBlock = program.successor(r.block, r.finalPred);
        specTraceIdx = r.traceIdx + 1;
    }
    return out;
}

template <typename Payload>
void
SpecCore<Payload>::recoverAndRedirect(const Record &r, bool outcome)
{
    hybrid.recoverMispredict(r.ctx, outcome);
    fetchBlock = program.successor(r.block, outcome);
    specTraceIdx = r.traceIdx + 1;
}

template <typename Payload>
void
SpecCore<Payload>::commitTrain(const Record &r, bool outcome)
{
    hybrid.commitBranch(r.pc, r.ctx, r.decision, outcome);
    if (cfg.useBtb && !r.btbHit)
        btb.allocate(r.pc);
    if (cfg.commitSink) {
        CommitEvent e;
        e.index = r.traceIdx;
        e.block = r.block;
        e.pc = r.pc;
        e.numUops = r.numUops;
        e.btbHit = r.btbHit;
        e.prophetPred = r.prophetPred;
        e.finalPred = r.finalPred;
        e.critiqueProvided = r.decision && r.decision->provided;
        e.criticOverrode = r.decision && r.decision->overrode;
        e.outcome = outcome;
        cfg.commitSink->onCommit(e);
    }
}

template <typename Payload>
typename SpecCore<Payload>::Record &
SpecCore<Payload>::front()
{
    pcbp_assert(!q.empty());
    return q.front();
}

template <typename Payload>
typename SpecCore<Payload>::Record
SpecCore<Payload>::popFront()
{
    pcbp_assert(!q.empty());
    Record r = std::move(q.front());
    q.pop_front();
    return r;
}

template <typename Payload>
std::optional<std::size_t>
SpecCore<Payload>::oldestUncriticized() const
{
    for (std::size_t i = 0; i < q.size(); ++i)
        if (!q[i].critiqued)
            return i;
    return std::nullopt;
}

template class SpecCore<EnginePayload>;
template class SpecCore<FtqPayload>;

} // namespace pcbp
