/**
 * @file
 * The shared speculative front end (spec core).
 *
 * Both simulators — the wrong-path accuracy Engine and the
 * cycle-level TimingSim — model the same §3/§5 protocol around the
 * prophet/critic hybrid:
 *
 *   checkpointed predict  -> the prophet predicts a fetch block (or
 *                            the BTB misses and fetch falls through),
 *                            speculation advances down the CFG;
 *   future-bit gather     -> a branch's critique consumes the
 *                            prophet's predictions for it and the
 *                            (BTB-identified) branches after it;
 *   critique / override   -> a disagree critique flushes every
 *                            younger queued prediction and redirects
 *                            the prophet down the other path;
 *   resolve / recover     -> a resolved mispredict repairs the
 *                            checkpointed BHR/BOR and redirects;
 *   commit-train          -> the committed branch trains prophet and
 *                            critic (critique-time BOR, §3.3) and
 *                            allocates its BTB entry.
 *
 * SpecCore owns that protocol once: the speculation queue of
 * in-flight SpecRecords (the Engine's whole pipeline, the
 * TimingSim's FTQ), the BTB, the speculative fetch pointer, and a
 * reusable future-bit scratch buffer so the hot critique path does
 * no heap allocation. The queue is a power-of-two ring-buffer arena:
 * records — each carrying its two-register checkpoint — live in a
 * slab that is allocated once and reused in place, so pushing,
 * popping, and override-flushing a branch are index arithmetic under
 * a mask, never allocation (the slab only grows, rarely, when a
 * caller exceeds its previous high-water queue depth). Each record
 * also carries a running count of BTB-hitting fetches, which turns
 * the per-critique "how many future bits could I gather" question
 * from a queue walk into a subtraction. What differs per simulator —
 * when to fetch,
 * when the critic gets bandwidth, what leaves the queue into a
 * backing instruction window, and which cycles anything costs — is
 * caller policy layered on these primitives. Per-model state rides
 * along in the Payload type parameter. See DESIGN.md §4.
 *
 * Ownership and lifetime: a SpecCore borrows everything it is
 * constructed over — the Program, the ProphetCriticHybrid, and the
 * optional CommitSink are owned by the caller and must outlive the
 * core; the core owns only its queue, BTB tables, and scratch
 * buffers. One core drives one simulation on one thread.
 *
 * Determinism contract: given the same program, predictor state, and
 * call sequence, every SpecCore operation is bit-reproducible — no
 * clocks, RNG draws, or allocation-dependent behavior on the
 * protocol path. Commit events fire strictly in commit order
 * (warmup included; consumers filter), which is what the
 * differential tests and the sweep/report byte-determinism
 * guarantees are built on.
 */

#ifndef PCBP_SIM_SPEC_CORE_HH
#define PCBP_SIM_SPEC_CORE_HH

#include <optional>
#include <vector>

#include "common/future_bits.hh"
#include "core/prophet_critic.hh"
#include "sim/btb.hh"
#include "sim/committed_stream.hh"
#include "workload/cfg.hh"

namespace pcbp
{

class StatRegistry;

/**
 * Plain counter slab for one SpecCore, owned by the simulator that
 * owns the core and attached via attachObs(). Probes on the hot
 * fetch/critique/commit paths increment these through the
 * `pcbp_obs_*` macros (obs/probes.hh): a null-checked plain-member
 * increment by default, stripped entirely under `-DPCBP_OBS=0`.
 * Everything here is a pure function of the simulated work, so the
 * counters land in the stats registry's deterministic sim section.
 */
struct SpecCoreObs
{
    std::uint64_t fetches = 0;        //!< fetchNext() calls
    std::uint64_t btbHits = 0;        //!< fetches that hit the BTB
    std::uint64_t btbAllocs = 0;      //!< commit-time BTB allocations
    std::uint64_t critiques = 0;      //!< critique() calls
    std::uint64_t overrides = 0;      //!< disagree critiques
    std::uint64_t squashed = 0;       //!< queue records override-flushed
    std::uint64_t recoveries = 0;     //!< resolved-mispredict repairs
    std::uint64_t commits = 0;        //!< commitTrain() calls
    std::uint64_t fbGathered = 0;     //!< future bits consumed, total
    std::uint64_t partialGathers = 0; //!< critiques short of the want
    std::uint64_t slabGrowths = 0;    //!< checkpoint-arena doublings
    std::uint64_t queuePeak = 0;      //!< max queue depth observed

    /** Accumulate into @p reg's sim section under `prefix.*`. */
    void exportTo(StatRegistry &reg, const std::string &prefix) const;
};

/**
 * One in-flight speculated branch, shared by both simulators; the
 * payload carries per-model extras (nothing for the accuracy engine,
 * cache-consumption state for the timing model's FTQ).
 */
template <typename Payload>
struct SpecRecord
{
    BlockId block = invalidBlock;
    Addr pc = 0;
    std::uint32_t numUops = 0;
    std::uint64_t traceIdx = 0;
    bool btbHit = true;
    bool prophetPred = false;
    bool finalPred = false;
    bool critiqued = false;
    std::optional<CritiqueDecision> decision;
    BranchContext ctx;
    Payload payload{};

    /**
     * Running count of BTB-hitting fetches up to and including this
     * record (arena-internal): the future bits gatherable behind
     * queue entry i are a difference of two of these counters
     * instead of a walk over the younger entries.
     */
    std::uint64_t hitsCum = 0;
};

/** The accuracy engine needs nothing beyond the shared record. */
struct EnginePayload
{
};

/** Timing-model FTQ extras: cache consumption progress and age. */
struct FtqPayload
{
    std::uint32_t uopsLeft = 0; //!< uops not yet consumed by the cache
    Cycle fetchCycle = 0;       //!< cycle the prophet produced it
};

/**
 * One committed branch, as observed at the commit-train point — the
 * shared tap both simulators feed. Everything downstream of commit
 * (H2P analytics, differential tests) consumes these events instead
 * of poking simulator internals.
 */
struct CommitEvent
{
    /** Commit-order position (== the committed stream index). */
    std::uint64_t index = 0;
    BlockId block = invalidBlock;
    Addr pc = 0;
    std::uint32_t numUops = 0;
    bool btbHit = true;
    /** The prophet's prediction (false on a BTB miss: fall-through). */
    bool prophetPred = false;
    /** Final prediction after any critique. */
    bool finalPred = false;
    /** The critic provided an explicit critique for this branch. */
    bool critiqueProvided = false;
    /** The critique overrode the prophet. */
    bool criticOverrode = false;
    /** Architectural outcome. */
    bool outcome = false;
};

/** Receiver of commit events (per-branch analytics, test probes). */
class CommitSink
{
  public:
    virtual ~CommitSink() = default;

    /** Called once per committed branch, in commit order. */
    virtual void onCommit(const CommitEvent &e) = 0;
};

/** Spec-core configuration (the sim-config subset it implements). */
struct SpecCoreConfig
{
    /** Model the BTB of §5 (miss = fall-through, allocate at commit). */
    bool useBtb = true;
    std::size_t btbEntries = 4096;
    unsigned btbWays = 4;

    /**
     * Ablation (§6): feed critiques correct-path outcomes from the
     * committed stream instead of the prophet's wrong-path
     * predictions. Requires an oracle stream in beginRun().
     */
    bool oracleFutureBits = false;

    /**
     * Optional tap on the commit path: commitTrain() reports every
     * committed branch here, in commit order. Not owned; must
     * outlive the core. Null = no reporting.
     */
    CommitSink *commitSink = nullptr;
};

/** What one critique did, for the caller's stats/timing policy. */
struct CritiqueOutcome
{
    /** The critic overrode; younger queue entries were squashed. */
    bool overrode = false;

    /** Queue records flushed by the override. */
    std::size_t squashed = 0;

    /** Future bits the critique actually consumed. */
    unsigned bitsGathered = 0;
};

template <typename Payload>
class SpecCore
{
  public:
    using Record = SpecRecord<Payload>;

    SpecCore(Program &program, ProphetCriticHybrid &hybrid,
             const SpecCoreConfig &config);

    /**
     * Fork (DESIGN.md §11): duplicate @p other's mid-run state — the
     * queue slab with every checkpoint, BTB, fetch pointer, cursors —
     * onto caller-supplied clones of its program and hybrid. The fork
     * borrows @p program and @p hybrid exactly as the primary
     * constructor does. The commit sink is NOT inherited (@p sink
     * replaces it; forks report to their own consumer or to none),
     * nor is the observability slab (attachObs per fork). An oracle
     * stream cannot be duplicated here, so forking an oracle-mode
     * core is refused.
     */
    SpecCore(const SpecCore &other, Program &program,
             ProphetCriticHybrid &hybrid, CommitSink *sink);

    /**
     * Arm the core for a run: clear the queue and point speculative
     * fetch at @p start_block. @p oracle (with records below
     * @p oracle_limit readable) is required iff oracleFutureBits is
     * configured. The BTB deliberately persists across runs, as it
     * always has.
     */
    void beginRun(CommittedStream *oracle, std::uint64_t oracle_limit,
                  BlockId start_block);

    /**
     * Fetch the next speculative block: BTB lookup, checkpointed
     * prophet prediction (or implicit fall-through on a BTB miss),
     * advance fetch down the predicted edge, append to the queue.
     * The caller enforces its own queue bound before calling.
     *
     * @return The queued record (valid until the queue changes), so
     *         callers can fill in payload fields.
     */
    Record &fetchNext();

    /**
     * Future bits obtainable for queue entry @p idx right now: its
     * own prediction plus the predictions of younger BTB-hit entries
     * (saturating at the configured requirement; always "enough"
     * when no future bits are configured).
     */
    unsigned futureBitsAvailable(std::size_t idx) const;

    /**
     * Critique queue entry @p idx with whatever future bits are
     * gathered (fewer than configured is legal, §5). On a disagree
     * critique, flushes every younger queue entry, repairs the
     * speculative registers, and redirects fetch down the critic's
     * edge. Stats and stall cycles are the caller's business.
     */
    CritiqueOutcome critique(std::size_t idx);

    /**
     * Resolved-mispredict recovery (§3.3): repair the speculative
     * registers from @p r's checkpoint with the architectural
     * @p outcome and redirect fetch down the correct edge. The
     * caller squashes its own structures (clearQueue(), window...).
     */
    void recoverAndRedirect(const Record &r, bool outcome);

    /**
     * Commit-time training (§3.2/§3.3): non-speculative prophet and
     * critic update, plus BTB allocation if the branch missed.
     */
    void commitTrain(const Record &r, bool outcome);

    /** @name The speculation queue (engine pipeline / timing FTQ).
     *
     * A power-of-two ring over a slab of pooled records (the
     * checkpoint arena): all four operations below are mask
     * arithmetic, and references stay valid until the next
     * fetchNext() (which may, rarely, grow the slab).
     */
    /// @{
    bool queueEmpty() const { return headAbs == tailAbs; }
    std::size_t queueSize() const { return tailAbs - headAbs; }
    Record &at(std::size_t i) { return rec(headAbs + i); }
    const Record &at(std::size_t i) const { return rec(headAbs + i); }
    Record &front();

    /** Pop the oldest record out of the queue (to commit/consume). */
    Record popFront();

    /**
     * Drop the oldest record without copying it out. The slot (and
     * any front() reference to it) stays valid until the next
     * fetchNext() — the commit path reads the record in place and
     * then drops it, instead of paying popFront()'s by-value copy of
     * the two-register checkpoint per commit.
     */
    void
    dropFront()
    {
        pcbp_dassert(!queueEmpty());
        ++headAbs;
        if (firstUncritAbs < headAbs)
            firstUncritAbs = headAbs;
    }

    /**
     * Index of the oldest uncritiqued entry, if any. Amortized O(1):
     * a cached cursor advances monotonically until the next flush.
     */
    std::optional<std::size_t> oldestUncriticized() const;

    /**
     * Index of the first uncritiqued entry at or after @p from
     * (critique-issue scans resume here after critiquing an entry).
     */
    std::optional<std::size_t> nextUncritiqued(std::size_t from) const;

    /** Drop everything queued (pipeline flush). */
    void
    clearQueue()
    {
        headAbs = tailAbs;
        firstUncritAbs = tailAbs;
    }
    /// @}

    /** Next speculative trace index (diagnostics/tests). */
    std::uint64_t specIndex() const { return specTraceIdx; }

    /**
     * Attach an observability counter slab (caller-owned, may be
     * null to detach). Counting is presentation only — attached or
     * not, simulated behavior is identical.
     */
    void attachObs(SpecCoreObs *o) { obs = o; }

  private:
    Program &program;
    ProphetCriticHybrid &hybrid;
    SpecCoreConfig cfg;
    Btb btb;

    /**
     * The checkpoint arena: a power-of-two slab addressed by
     * absolute record indices under a mask. headAbs..tailAbs are the
     * live queue; indices only ever increase (flushes pull tailAbs
     * back, which re-pools the flushed slots in place).
     */
    std::vector<Record> slab;
    std::size_t headAbs = 0;
    std::size_t tailAbs = 0;

    /** Cached oldest-uncritiqued cursor (absolute; advances lazily). */
    mutable std::size_t firstUncritAbs = 0;

    /** BTB-hitting fetches ever appended (hitsCum baseline). */
    std::uint64_t hitsFetched = 0;

    /**
     * The hit-bit ring: bit (h mod slab.size()) holds the prophet's
     * prediction for the h-th BTB-hitting fetch (h = hitsCum - 1 of
     * the record that produced it). The future-bit gather for a
     * critique is then a two-word window read starting at the
     * critiqued record's own hit ordinal — already in oldest-first
     * FutureBits order — instead of a walk over the younger queue
     * records. Ordinals needed by any gather span at most
     * queueSize() <= slab.size() consecutive values, so live bits
     * never collide mod the ring size; squashes need no cleanup
     * because reclaimed ordinals are rewritten at the next fetch.
     */
    std::vector<std::uint64_t> hitBits;

    CommittedStream *oracle = nullptr;
    std::uint64_t oracleLimit = 0;
    BlockId fetchBlock = 0;
    std::uint64_t specTraceIdx = 0;

    /** Reusable gather buffer: no allocation on the critique path. */
    FutureBits fbScratch;

    /** Observability counters; null (the default) = not counting. */
    SpecCoreObs *obs = nullptr;

    Record &rec(std::size_t abs) { return slab[abs & (slab.size() - 1)]; }
    const Record &
    rec(std::size_t abs) const
    {
        return slab[abs & (slab.size() - 1)];
    }

    /** Record hit ordinal @p ord's prediction in the hit-bit ring. */
    void
    setHitBit(std::uint64_t ord, bool pred)
    {
        const std::size_t pos = ord & (slab.size() - 1);
        const std::uint64_t m = std::uint64_t(1) << (pos & 63);
        if (pred)
            hitBits[pos >> 6] |= m;
        else
            hitBits[pos >> 6] &= ~m;
    }

    /**
     * Read up to 64 ring bits starting at hit ordinal @p start_ord,
     * oldest first in bit 0. Bits past the caller's count are
     * garbage; the caller masks (FutureBits::assign).
     */
    std::uint64_t
    readHitBits(std::uint64_t start_ord) const
    {
        const std::size_t pos = start_ord & (slab.size() - 1);
        const std::size_t wi = pos >> 6;
        const unsigned off = pos & 63;
        std::uint64_t v = hitBits[wi] >> off;
        if (off != 0) {
            v |= hitBits[(wi + 1) & (hitBits.size() - 1)]
                 << (64 - off);
        }
        return v;
    }

    /** Double the slab (record order preserved); stays power-of-two. */
    void growSlab();
};

extern template class SpecCore<EnginePayload>;
extern template class SpecCore<FtqPayload>;

} // namespace pcbp

#endif // PCBP_SIM_SPEC_CORE_HH
