#include "sim/stream_fanout.hh"

#include <algorithm>

namespace pcbp
{

StreamFanout::View &
StreamFanout::addView()
{
    views.emplace_back(std::unique_ptr<View>(new View(*this)));
    return *views.back();
}

StreamFanout::View &
StreamFanout::forkView(const View &parent)
{
    views.emplace_back(std::unique_ptr<View>(new View(parent)));
    return *views.back();
}

bool
StreamFanout::fetch(std::uint64_t idx, CommittedBranch &out)
{
    const CommittedBranch *cb = src.at(idx);
    if (cb == nullptr)
        return false;
    out = *cb;
    if (++sinceTrim >= kTrimInterval) {
        sinceTrim = 0;
        trim();
    }
    return true;
}

void
StreamFanout::trim()
{
    std::uint64_t floor = ~std::uint64_t(0);
    bool live = false;
    for (const std::unique_ptr<View> &v : views) {
        if (!v->retired) {
            floor = std::min(floor, v->cursor);
            live = true;
        }
    }
    if (live)
        src.release(floor);
}

} // namespace pcbp
