/**
 * @file
 * Stream fanout: many independent CommittedStream consumers over one
 * shared producer.
 *
 * Batched execution (DESIGN.md §12) multiplexes several simulations
 * of the *same workload* through one pass over the committed stream:
 * the architectural records are identical for every member, so
 * producing them once — one CFG walk with its behavior evaluation,
 * or one trace decode — and letting each member read at its own pace
 * amortizes production across the whole group and keeps the resident
 * records cache-hot while every member crosses them.
 *
 * A StreamFanout wraps a single source CommittedStream and hands out
 * Views. Each View is itself a CommittedStream whose produceNext()
 * pulls from the shared source by absolute index, so a member
 * simulation drives its View exactly as it would a private stream —
 * same at()/release() sequence, same window growth, same
 * produced/refills/window-peak counters, and backendName() forwards
 * the source's name. A member's stats dump is therefore
 * byte-identical to the dump of a standalone run over a private
 * stream (the batched differential tests pin this).
 *
 * The source's resident window spans from the laggard view to the
 * leader: fetches periodically release everything below the minimum
 * live cursor, so with lockstep driving (bounded chunk per member per
 * round) the shared window stays O(chunk), not O(run length). A view
 * whose run has ended calls retire() so it stops holding the floor.
 *
 * Views can also be forked mid-run (forkView): the child copies the
 * parent's resident window and cursors, making it indistinguishable
 * from a stream that replayed the parent's call sequence — the same
 * contract as the fork constructors of the concrete streams, which is
 * what lets the PR 7 fork seam compose with batching (a fork-group's
 * canonical member runs as a lane and its shorter siblings peel off
 * as new lanes at their snapshot points).
 */

#ifndef PCBP_SIM_STREAM_FANOUT_HH
#define PCBP_SIM_STREAM_FANOUT_HH

#include <memory>
#include <vector>

#include "sim/committed_stream.hh"

namespace pcbp
{

class StreamFanout
{
  public:
    /** One consumer's independent cursor over the shared source. */
    class View : public CommittedStream
    {
      public:
        std::uint64_t length() const override
        {
            return fan.src.length();
        }

        /** Forwarded so member stats dumps match standalone runs. */
        const char *backendName() const override
        {
            return fan.src.backendName();
        }

        /** Host-side counters (e.g.\ trace.store.*) also forward:
         *  the shared source did the actual decode work. */
        void exportHostStats(StatRegistry &reg) const override
        {
            fan.src.exportHostStats(reg);
        }

        /** Drop this view from the shared release floor once its
         *  consumer is done reading (stats stay readable). */
        void retire() { retired = true; }

      protected:
        bool produceNext(CommittedBranch &out) override
        {
            if (!fan.fetch(cursor, out))
                return false;
            ++cursor;
            return true;
        }

      private:
        friend class StreamFanout;

        explicit View(StreamFanout &fan_) : fan(fan_) {}

        /** Fork: same resident window, same cursors (DESIGN.md §11). */
        View(const View &parent)
            : CommittedStream(parent), fan(parent.fan),
              cursor(parent.cursor)
        {
        }

        StreamFanout &fan;
        std::uint64_t cursor = 0; //!< next source index to consume
        bool retired = false;
    };

    /** @p source must outlive the fanout and have no other reader. */
    explicit StreamFanout(CommittedStream &source) : src(source) {}

    StreamFanout(const StreamFanout &) = delete;
    StreamFanout &operator=(const StreamFanout &) = delete;

    /** New view at the start of the stream. */
    View &addView();

    /** New view continuing @p parent's position mid-stream. */
    View &forkView(const View &parent);

    std::size_t numViews() const { return views.size(); }

    /** Records the shared source produced (paid once per group). */
    std::uint64_t sharedProduced() const { return src.produced(); }

    /** Peak resident window of the shared source — the lockstep
     *  cache-residency bound. */
    std::size_t sharedWindowPeak() const { return src.windowPeak(); }

  private:
    friend class View;

    /** Serve record @p idx from the shared source (false = ended). */
    bool fetch(std::uint64_t idx, CommittedBranch &out);

    /** Release source records below the minimum live cursor. */
    void trim();

    /** Fetches between release-floor recomputations. */
    static constexpr std::uint64_t kTrimInterval = 256;

    CommittedStream &src;
    std::vector<std::unique_ptr<View>> views;
    std::uint64_t sinceTrim = 0;
};

} // namespace pcbp

#endif // PCBP_SIM_STREAM_FANOUT_HH
