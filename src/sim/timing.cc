#include "sim/timing.hh"

#include "common/logging.hh"

namespace pcbp
{

TimingSim::TimingSim(Program &program_, ProphetCriticHybrid &hybrid_,
                     const TimingConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      btb(config.btbEntries, config.btbWays), ftq(config.ftqSize)
{
    pcbp_assert(cfg.fetchWidth >= 1 && cfg.retireWidth >= 1);
    pcbp_assert(cfg.prophetBw >= 1 && cfg.criticBw >= 1);
    pcbp_assert(cfg.ftqSize > hybrid.numFutureBits(),
                "FTQ must be deeper than the future-bit count");
}

unsigned
TimingSim::futureBitsAvailable(std::size_t idx) const
{
    const unsigned want = std::max(1u, hybrid.numFutureBits());
    unsigned avail = hybrid.numFutureBits() == 0 ? want : 1;
    for (std::size_t j = idx + 1; j < ftq.size() && avail < want; ++j) {
        if (ftq.at(j).btbHit)
            ++avail;
    }
    return avail;
}

void
TimingSim::critiqueFtqEntry(std::size_t idx, bool partial)
{
    FtqEntry &e = ftq.at(idx);
    pcbp_assert(!e.critiqued && e.btbHit);

    const unsigned want = hybrid.numFutureBits();
    std::vector<bool> fb;
    if (want > 0) {
        fb.reserve(want);
        fb.push_back(e.prophetPred);
        for (std::size_t j = idx + 1; j < ftq.size() && fb.size() < want;
             ++j) {
            if (ftq.at(j).btbHit)
                fb.push_back(ftq.at(j).prophetPred);
        }
        if (partial && fb.size() < want && measuring())
            ++stats.partialCritiques;
    }

    CritiqueDecision d =
        hybrid.critiqueBranch(e.pc, e.ctx, e.prophetPred, fb);
    e.critiqued = true;
    e.finalPred = d.finalPrediction;
    const bool overrode = d.overrode;
    e.decision = std::move(d);

    if (overrode) {
        if (measuring()) {
            ++stats.criticOverrides;
            stats.ftqEntriesFlushedByCritic += ftq.size() - idx - 1;
        }
        ftq.flushYoungerThan(idx);
        hybrid.overrideRedirect(e.ctx, e.finalPred);
        fetchBlock = program.successor(e.block, e.finalPred);
        specTraceIdx = e.traceIdx + 1;
        prophetStalledUntil = now + cfg.redirectPenalty;
    }
}

void
TimingSim::flushPipeline(const WindowBlock &mispredicted, bool outcome)
{
    // Squash everything younger than the mispredicted branch: the
    // tail of the window, plus the whole FTQ (consumed-but-unretired
    // uops were fetched down the wrong path).
    std::uint64_t squashed_uops = 0;
    while (!window.empty() &&
           window.back().traceIdx > mispredicted.traceIdx) {
        squashed_uops += window.back().uops;
        windowUops -= window.back().uops;
        window.pop_back();
    }
    for (std::size_t i = 0; i < ftq.size(); ++i) {
        const FtqEntry &e = ftq.at(i);
        squashed_uops += e.numUops - e.uopsLeft;
    }
    ftq.flushAll();

    if (measuring())
        stats.wrongPathFetchedUops += squashed_uops;

    hybrid.recoverMispredict(mispredicted.ctx, outcome);
    fetchBlock = program.successor(mispredicted.block, outcome);
    specTraceIdx = mispredicted.traceIdx + 1;
    prophetStalledUntil = now + cfg.redirectPenalty;
    cacheStalledUntil = now + cfg.frontEndRefill;
}

void
TimingSim::stepResolve()
{
    for (auto &b : window) {
        if (b.resolved)
            continue;
        if (b.readyCycle > now)
            break; // in-order: younger blocks are not ready either
        if (b.traceIdx >= trace.size())
            break; // speculative past the end of the run
        pcbp_assert(b.traceIdx == resolveIdx,
                    "resolution diverged from the architectural path");
        pcbp_assert(b.block == trace[resolveIdx].block);
        const bool outcome = trace[resolveIdx].taken;
        b.resolved = true;
        ++resolveIdx;
        if (b.finalPred != outcome) {
            if (measuring())
                ++stats.finalMispredicts;
            flushPipeline(b, outcome);
            break; // everything younger is gone
        }
    }
}

void
TimingSim::stepRetire()
{
    unsigned budget = cfg.retireWidth;
    while (budget > 0 && !window.empty() && commitIdx < totalBranches) {
        WindowBlock &b = window.front();
        if (!b.resolved)
            break;
        const std::uint32_t chunk =
            std::min<std::uint32_t>(budget, b.uops - b.retired);
        b.retired += chunk;
        budget -= chunk;
        if (measuring()) {
            stats.committedUops += chunk;
        }
        if (b.retired < b.uops)
            break;

        // Whole block retired: the branch commits.
        pcbp_assert(b.traceIdx == commitIdx);
        const bool outcome = trace[commitIdx].taken;
        hybrid.commitBranch(b.pc, b.ctx, b.decision, outcome);
        if (cfg.useBtb && !b.btbHit)
            btb.allocate(b.pc);
        if (measuring())
            ++stats.committedBranches;
        ++commitIdx;
        if (commitIdx == cfg.warmupBranches)
            measureStartCycle = now;
        windowUops -= b.uops;
        window.pop_front();
    }
}

void
TimingSim::stepCritic()
{
    if (!hybrid.hasCritic())
        return;
    for (unsigned i = 0; i < cfg.criticBw; ++i) {
        const auto idx = ftq.oldestUncriticized();
        if (!idx)
            return;
        const unsigned want = std::max(1u, hybrid.numFutureBits());
        if (futureBitsAvailable(*idx) < want)
            return; // wait for the prophet to run further ahead
        critiqueFtqEntry(*idx, false);
    }
}

void
TimingSim::stepFetch()
{
    unsigned budget = cfg.fetchWidth;
    if (now < cacheStalledUntil)
        return;
    if (ftq.empty()) {
        if (measuring())
            ++stats.ftqEmptyCycles;
        return;
    }
    while (budget > 0 && !ftq.empty()) {
        FtqEntry &e = ftq.head();
        if (windowUops + e.numUops > cfg.windowSize)
            break; // window full
        if (!e.critiqued && e.btbHit && hybrid.hasCritic()) {
            // §5: the cache requires this prediction before the
            // critique gathered all its future bits.
            critiqueFtqEntry(0, true);
        }
        FtqEntry &h = ftq.head(); // critique may have flushed others
        const std::uint32_t chunk =
            std::min<std::uint32_t>(budget, h.uopsLeft);
        h.uopsLeft -= chunk;
        budget -= chunk;
        if (measuring())
            stats.fetchedUops += chunk;
        if (h.uopsLeft > 0)
            break;

        WindowBlock wb;
        wb.block = h.block;
        wb.pc = h.pc;
        wb.uops = h.numUops;
        wb.traceIdx = h.traceIdx;
        wb.readyCycle = now + cfg.resolveDepth;
        wb.btbHit = h.btbHit;
        wb.prophetPred = h.prophetPred;
        wb.finalPred = h.finalPred;
        wb.decision = std::move(h.decision);
        wb.ctx = std::move(h.ctx);
        windowUops += wb.uops;
        window.push_back(std::move(wb));
        ftq.popHead();
    }
}

void
TimingSim::stepProphet()
{
    if (now < prophetStalledUntil)
        return;
    for (unsigned i = 0; i < cfg.prophetBw; ++i) {
        if (ftq.full())
            return;
        const BasicBlock &b = program.block(fetchBlock);
        FtqEntry e;
        e.block = fetchBlock;
        e.pc = b.branchPc;
        e.numUops = b.numUops;
        e.uopsLeft = b.numUops;
        e.traceIdx = specTraceIdx++;
        e.fetchCycle = now;
        e.btbHit = !cfg.useBtb || btb.lookup(e.pc);
        if (e.btbHit) {
            e.prophetPred = hybrid.predictBranch(e.pc, e.ctx);
            e.finalPred = e.prophetPred;
        } else {
            e.prophetPred = false;
            e.finalPred = false;
            e.critiqued = true;
            e.ctx.bhrBefore = hybrid.bhr();
            e.ctx.borBefore = hybrid.bor();
        }
        fetchBlock = program.successor(fetchBlock, e.finalPred);
        ftq.push(std::move(e));
    }
}

TimingStats
TimingSim::run()
{
    const std::uint64_t total = cfg.warmupBranches + cfg.measureBranches;
    totalBranches = total;
    trace = walkProgram(program, total);

    fetchBlock = program.entry();
    specTraceIdx = 0;
    resolveIdx = 0;
    commitIdx = 0;
    now = 0;
    prophetStalledUntil = 0;
    cacheStalledUntil = 0;
    windowUops = 0;
    window.clear();
    stats = TimingStats{};
    measureStartCycle = 0;

    while (commitIdx < total) {
        stepResolve();
        stepRetire();
        stepCritic();
        stepFetch();
        stepProphet();
        ++now;
    }

    stats.cycles = now - measureStartCycle;
    return stats;
}

} // namespace pcbp
