#include "sim/timing.hh"

#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

namespace
{

SpecCoreConfig
coreConfig(const TimingConfig &cfg)
{
    SpecCoreConfig c;
    c.useBtb = cfg.useBtb;
    c.btbEntries = cfg.btbEntries;
    c.btbWays = cfg.btbWays;
    c.commitSink = cfg.commitSink;
    return c;
}

} // namespace

TimingSim::TimingSim(Program &program_, ProphetCriticHybrid &hybrid_,
                     const TimingConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      core(program_, hybrid_, coreConfig(config))
{
    pcbp_assert(cfg.fetchWidth >= 1 && cfg.retireWidth >= 1);
    pcbp_assert(cfg.prophetBw >= 1 && cfg.criticBw >= 1);
    pcbp_assert(cfg.ftqSize > hybrid.numFutureBits(),
                "FTQ must be deeper than the future-bit count");
}

TimingSim::TimingSim(const TimingSim &other, Program &program_,
                     ProphetCriticHybrid &hybrid_,
                     const TimingConfig &config)
    : program(program_), hybrid(hybrid_), cfg(config),
      core(other.core, program_, hybrid_, config.commitSink),
      coreObs(other.coreObs), window(other.window),
      windowUops(other.windowUops), resolveIdx(other.resolveIdx),
      commitIdx(other.commitIdx), now(other.now),
      prophetStalledUntil(other.prophetStalledUntil),
      cacheStalledUntil(other.cacheStalledUntil),
      measureStartCycle(other.measureStartCycle)
{
    // Differing warmup/measure budgets (and per-fork stats/sink
    // plumbing) are the point of forking; anything that shapes the
    // simulated trajectory must match, or the fork would not be
    // equivalent to an uninterrupted run.
    pcbp_assert(cfg.ftqSize == other.cfg.ftqSize &&
                    cfg.fetchWidth == other.cfg.fetchWidth &&
                    cfg.retireWidth == other.cfg.retireWidth &&
                    cfg.prophetBw == other.cfg.prophetBw &&
                    cfg.criticBw == other.cfg.criticBw &&
                    cfg.resolveDepth == other.cfg.resolveDepth &&
                    cfg.windowSize == other.cfg.windowSize &&
                    cfg.redirectPenalty == other.cfg.redirectPenalty &&
                    cfg.frontEndRefill == other.cfg.frontEndRefill &&
                    cfg.useBtb == other.cfg.useBtb &&
                    cfg.btbEntries == other.cfg.btbEntries &&
                    cfg.btbWays == other.cfg.btbWays,
                "fork configuration changes simulated behavior");
    core.attachObs(cfg.statsOut ? &coreObs : nullptr);
}

void
TimingSim::critiqueFtqEntry(std::size_t idx, bool partial)
{
    const CritiqueOutcome out = core.critique(idx);
    if (partial && out.bitsGathered < hybrid.numFutureBits() &&
        measuring()) {
        ++stats.partialCritiques;
    }
    if (out.overrode) {
        if (measuring()) {
            ++stats.criticOverrides;
            stats.ftqEntriesFlushedByCritic += out.squashed;
        }
        prophetStalledUntil = now + cfg.redirectPenalty;
    }
}

void
TimingSim::flushPipeline(const FtqRecord &mispredicted, bool outcome)
{
    // Squash everything younger than the mispredicted branch: the
    // tail of the window, plus the whole FTQ (consumed-but-unretired
    // uops were fetched down the wrong path).
    std::uint64_t squashed_uops = 0;
    while (!window.empty() &&
           window.back().r.traceIdx > mispredicted.traceIdx) {
        squashed_uops += window.back().r.numUops;
        windowUops -= window.back().r.numUops;
        window.pop_back();
    }
    for (std::size_t i = 0; i < core.queueSize(); ++i) {
        const FtqRecord &e = core.at(i);
        squashed_uops += e.numUops - e.payload.uopsLeft;
    }
    core.clearQueue();

    if (measuring())
        stats.wrongPathFetchedUops += squashed_uops;

    core.recoverAndRedirect(mispredicted, outcome);
    prophetStalledUntil = now + cfg.redirectPenalty;
    cacheStalledUntil = now + cfg.frontEndRefill;
}

void
TimingSim::stepResolve(CommittedStream &committed)
{
    for (auto &b : window) {
        if (b.resolved)
            continue;
        if (b.readyCycle > now)
            break; // in-order: younger blocks are not ready either
        if (b.r.traceIdx >= totalBranches)
            break; // speculative past the end of the run
        const CommittedBranch *cb = committed.at(b.r.traceIdx);
        pcbp_assert(cb != nullptr, "committed stream ended mid-run");
        pcbp_assert(b.r.traceIdx == resolveIdx,
                    "resolution diverged from the architectural path");
        pcbp_assert(b.r.block == cb->block);
        const bool outcome = cb->taken;
        b.resolved = true;
        ++resolveIdx;
        if (b.r.finalPred != outcome) {
            if (measuring())
                ++stats.finalMispredicts;
            flushPipeline(b.r, outcome);
            break; // everything younger is gone
        }
    }
}

void
TimingSim::stepRetire(CommittedStream &committed)
{
    unsigned budget = cfg.retireWidth;
    while (budget > 0 && !window.empty() && commitIdx < totalBranches) {
        WindowBlock &b = window.front();
        if (!b.resolved)
            break;
        const std::uint32_t chunk =
            std::min<std::uint32_t>(budget, b.r.numUops - b.retired);
        b.retired += chunk;
        budget -= chunk;
        if (measuring()) {
            stats.committedUops += chunk;
        }
        if (b.retired < b.r.numUops)
            break;

        // Whole block retired: the branch commits.
        pcbp_assert(b.r.traceIdx == commitIdx);
        const CommittedBranch *cb = committed.at(commitIdx);
        pcbp_assert(cb != nullptr, "committed stream ended mid-run");
        core.commitTrain(b.r, cb->taken);
        if (measuring())
            ++stats.committedBranches;
        ++commitIdx;
        if (commitIdx == cfg.warmupBranches)
            measureStartCycle = now;
        windowUops -= b.r.numUops;
        window.pop_front();
        committed.release(commitIdx);
    }
}

void
TimingSim::stepCritic()
{
    if (!hybrid.hasCritic())
        return;
    for (unsigned i = 0; i < cfg.criticBw; ++i) {
        const auto idx = core.oldestUncriticized();
        if (!idx)
            return;
        const unsigned want = std::max(1u, hybrid.numFutureBits());
        if (core.futureBitsAvailable(*idx) < want)
            return; // wait for the prophet to run further ahead
        critiqueFtqEntry(*idx, false);
    }
}

void
TimingSim::stepFetch()
{
    unsigned budget = cfg.fetchWidth;
    if (now < cacheStalledUntil)
        return;
    if (core.queueEmpty()) {
        if (measuring())
            ++stats.ftqEmptyCycles;
        return;
    }
    while (budget > 0 && !core.queueEmpty()) {
        FtqRecord &e = core.front();
        if (windowUops + e.numUops > cfg.windowSize)
            break; // window full
        if (!e.critiqued && e.btbHit && hybrid.hasCritic()) {
            // §5: the cache requires this prediction before the
            // critique gathered all its future bits.
            critiqueFtqEntry(0, true);
        }
        FtqRecord &h = core.front(); // critique may have flushed others
        const std::uint32_t chunk =
            std::min<std::uint32_t>(budget, h.payload.uopsLeft);
        h.payload.uopsLeft -= chunk;
        budget -= chunk;
        if (measuring())
            stats.fetchedUops += chunk;
        if (h.payload.uopsLeft > 0)
            break;

        WindowBlock wb;
        wb.readyCycle = now + cfg.resolveDepth;
        wb.r = core.popFront();
        windowUops += wb.r.numUops;
        window.push_back(std::move(wb));
    }
}

void
TimingSim::stepProphet()
{
    if (now < prophetStalledUntil)
        return;
    for (unsigned i = 0; i < cfg.prophetBw; ++i) {
        if (core.queueSize() >= cfg.ftqSize)
            return; // FTQ full
        FtqRecord &e = core.fetchNext();
        e.payload.uopsLeft = e.numUops;
        e.payload.fetchCycle = now;
    }
}

TimingStats
TimingSim::run()
{
    ProgramWalkStream stream(program,
                             cfg.warmupBranches + cfg.measureBranches);
    return run(stream);
}

TimingStats
TimingSim::run(CommittedStream &committed)
{
    beginRun(committed);
    return finishRun(committed);
}

void
TimingSim::beginRun(CommittedStream &committed)
{
    totalBranches = std::min(cfg.warmupBranches + cfg.measureBranches,
                             committed.length());

    const CommittedBranch *first = committed.at(0);
    coreObs = SpecCoreObs{};
    core.attachObs(cfg.statsOut ? &coreObs : nullptr);
    core.beginRun(nullptr, 0,
                  first ? first->block : program.entry());
    resolveIdx = 0;
    commitIdx = 0;
    now = 0;
    prophetStalledUntil = 0;
    cacheStalledUntil = 0;
    windowUops = 0;
    window.clear();
    stats = TimingStats{};
    measureStartCycle = 0;
}

bool
TimingSim::stepUntil(std::uint64_t commit_target,
                     CommittedStream &committed)
{
    while (commitIdx < totalBranches && commitIdx < commit_target) {
        stepResolve(committed);
        stepRetire(committed);
        stepCritic();
        stepFetch();
        stepProphet();
        ++now;
    }
    return commitIdx < totalBranches;
}

void
TimingSim::armResume(CommittedStream &committed)
{
    totalBranches = std::min(cfg.warmupBranches + cfg.measureBranches,
                             committed.length());
    // Every measured counter gates on measuring(), and the measured
    // clock starts the cycle commitIdx reaches warmupBranches —
    // neither has fired while the snapshot is still inside warmup, so
    // the fork reproduces an uninterrupted run's stats exactly.
    pcbp_assert(commitIdx < cfg.warmupBranches,
                "fork past the start of its measured window");
    pcbp_assert(timingForkable(cfg),
                "forked a cell whose budget does not cover the window");
    pcbp_assert(committed.produced() <= totalBranches,
                "forked stream ahead of this fork's budget");
}

TimingStats
TimingSim::resumeRun(CommittedStream &committed)
{
    armResume(committed);
    return finishRun(committed);
}

TimingStats
TimingSim::finishRun(CommittedStream &committed)
{
    stepUntil(totalBranches, committed);

    stats.cycles = now - measureStartCycle;
    if (cfg.statsOut)
        exportStats(committed);
    return stats;
}

void
TimingSim::exportStats(CommittedStream &committed)
{
    StatRegistry &reg = *cfg.statsOut;

    reg.add("timing.cycles", stats.cycles);
    reg.add("timing.committed_uops", stats.committedUops);
    reg.add("timing.committed_branches", stats.committedBranches);
    reg.add("timing.final_mispredicts", stats.finalMispredicts);
    reg.add("timing.fetched_uops", stats.fetchedUops);
    reg.add("timing.wrong_path_fetched_uops",
            stats.wrongPathFetchedUops);
    reg.add("timing.critic_overrides", stats.criticOverrides);
    reg.add("timing.ftq_flushed_by_critic",
            stats.ftqEntriesFlushedByCritic);
    reg.add("timing.partial_critiques", stats.partialCritiques);
    reg.add("timing.ftq_empty_cycles", stats.ftqEmptyCycles);

    coreObs.exportTo(reg, "core");

    reg.add(std::string("stream.backend.") + committed.backendName(), 1);
    reg.add("stream.refills", committed.refills());
    reg.add("stream.produced", committed.produced());
    reg.setMax("stream.window_peak", committed.windowPeak());
    committed.exportHostStats(reg);

    hybrid.exportStats(reg, "predictor");
}

} // namespace pcbp
