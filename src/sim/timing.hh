/**
 * @file
 * Cycle-level decoupled front-end + simplified back-end timing model
 * (§5 implementation, Table 2 parameters).
 *
 * Front end: the prophet produces up to 2 predictions/cycle into a
 * 32-entry FTQ; the critic critiques 1 prediction/cycle (oldest
 * uncriticized first) once its future bits are available, flushing
 * uncriticized FTQ entries and redirecting the prophet on a
 * disagreement; the cache consumes 6 uops/cycle from criticized head
 * entries (forcing a partial critique when it reaches an
 * uncriticized one, as §5 describes).
 *
 * The speculative protocol (checkpointed predict, future-bit gather,
 * critique/override, recover, commit-train) is the shared SpecCore
 * (sim/spec_core.hh); the FTQ is its speculation queue, bounded by
 * ftqSize here. This file adds only the clock: bandwidths, the
 * instruction window, and resolve/retire latency. The committed path
 * arrives through a CommittedStream with a pipeline-bounded resident
 * window, so run length does not affect memory.
 *
 * Back end: consumed blocks enter a 2048-uop window; every uop
 * becomes ready resolveDepth (30) cycles after it is fetched
 * (modeling the Pentium 4-derived pipeline depth); retirement is
 * in-order at 6 uops/cycle; a branch resolves when ready, and a
 * final-prediction mispredict flushes everything younger plus the
 * whole FTQ.
 *
 * Simplifications versus the paper's simulator (documented in
 * DESIGN.md §2): ideal caches and no data-dependence stalls, so
 * absolute uPC is higher than the paper's, but the branch-mispredict
 * exposure that drives the uPC deltas of Figs. 9-10 is modeled
 * directly.
 */

#ifndef PCBP_SIM_TIMING_HH
#define PCBP_SIM_TIMING_HH

#include <deque>

#include "core/prophet_critic.hh"
#include "sim/committed_stream.hh"
#include "sim/spec_core.hh"
#include "workload/cfg.hh"

namespace pcbp
{

/** Timing-model configuration (defaults from Table 2, doubled P4). */
struct TimingConfig
{
    std::size_t ftqSize = 32;
    unsigned fetchWidth = 6;   //!< uops consumed from the FTQ per cycle
    unsigned retireWidth = 6;  //!< uops retired per cycle
    unsigned prophetBw = 2;    //!< prophet predictions per cycle
    unsigned criticBw = 1;     //!< critiques per cycle
    unsigned resolveDepth = 30; //!< fetch-to-resolve latency (cycles)
    std::size_t windowSize = 2048; //!< instruction window (uops)
    unsigned redirectPenalty = 1;  //!< prophet restart delay (cycles)
    /**
     * Cycles after a pipeline flush before the cache consumes again,
     * modeling front-end refill depth. Gives the critic time to
     * critique the FTQ head after a restart, as in a real pipeline.
     */
    unsigned frontEndRefill = 12;

    bool useBtb = true;
    std::size_t btbEntries = 4096;
    unsigned btbWays = 4;

    /**
     * Optional commit-path tap (H2P analytics, differential tests):
     * receives every committed branch in commit order, warmup
     * included. Not owned; must outlive the simulator.
     */
    CommitSink *commitSink = nullptr;

    std::uint64_t measureBranches = 100000;
    std::uint64_t warmupBranches = 10000;

    /**
     * Optional stats registry: when set, the run exports timing.*,
     * core.*, stream.* and predictor.* counters into it at end of
     * run (see EngineConfig::statsOut). Not owned; null = off.
     */
    StatRegistry *statsOut = nullptr;
};

/** Counters from a timing run (measured window only). */
struct TimingStats
{
    Cycle cycles = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t finalMispredicts = 0;

    /** Uops consumed by the cache, correct and wrong path. */
    std::uint64_t fetchedUops = 0;

    /** Fetched uops later squashed by a pipeline flush. */
    std::uint64_t wrongPathFetchedUops = 0;

    std::uint64_t criticOverrides = 0;
    std::uint64_t ftqEntriesFlushedByCritic = 0;
    std::uint64_t partialCritiques = 0;

    /** Cycles the cache wanted a prediction but the FTQ was empty. */
    std::uint64_t ftqEmptyCycles = 0;

    double
    upc() const
    {
        return cycles == 0 ? 0.0
                           : double(committedUops) / double(cycles);
    }

    double
    uopsPerFlush() const
    {
        return finalMispredicts == 0
                   ? double(committedUops)
                   : double(committedUops) / double(finalMispredicts);
    }
};

class TimingSim
{
  public:
    TimingSim(Program &program, ProphetCriticHybrid &hybrid,
              const TimingConfig &config);

    /**
     * Fork (DESIGN.md §11): duplicate @p other's mid-run state — FTQ
     * and BTB (via the spec core), instruction window, clock, stall
     * deadlines, cursors — onto @p program and @p hybrid, which must
     * be clone()s of @p other's at the same point. @p config supplies
     * this fork's own warmup/measure budget, stats registry, and
     * commit sink; everything that shapes simulated behavior (widths,
     * latencies, FTQ/window/BTB geometry) must match @p other's.
     * Continue with resumeRun().
     */
    TimingSim(const TimingSim &other, Program &program,
              ProphetCriticHybrid &hybrid, const TimingConfig &config);

    /** Run over the program's own committed walk (streamed). */
    TimingStats run();

    /** Run against an explicit committed stream (trace replay). */
    TimingStats run(CommittedStream &committed);

    /** @name Split-phase execution (fork-based sweeps, DESIGN.md §11)
     *
     * run(committed) == beginRun(); stepUntil(...); finishRun();.
     * Pauses land on cycle boundaries, so a stop is "at least N
     * commits" rather than exactly N: up to retireWidth branches can
     * commit per cycle, and the chain runner accounts for that margin
     * when it picks snapshot targets.
     */
    /// @{

    /** Arm a run over @p committed (resets clock, cursors, stats). */
    void beginRun(CommittedStream &committed);

    /**
     * Advance whole cycles until at least @p commit_target branches
     * have committed (or the run ends). Stops at a cycle boundary
     * with committedSoFar() in [commit_target,
     * commit_target + retireWidth - 1]. @return false once the run
     * ended.
     */
    bool stepUntil(std::uint64_t commit_target,
                   CommittedStream &committed);

    /** Run to completion and export/return the stats. */
    TimingStats finishRun(CommittedStream &committed);

    /**
     * Entry point for a forked simulator: adopt @p committed (a
     * mid-stream fork positioned exactly where the forked-from run
     * paused) and run this fork's own budget to completion. Must
     * still be inside this fork's warmup; the chain runner
     * additionally guarantees measureBranches covers the window
     * lookahead (see timingForkable()).
     */
    TimingStats resumeRun(CommittedStream &committed);

    /**
     * The validation/arming half of resumeRun() without the
     * run-to-completion: after this, a forked simulator can be driven
     * with stepUntil()/finishRun() like any other — how the batch
     * runner keeps peeled forks in its lockstep (DESIGN.md §12).
     */
    void armResume(CommittedStream &committed);

    /** Committed branches so far (the fork/snapshot cursor). */
    std::uint64_t committedSoFar() const { return commitIdx; }
    /// @}

  private:
    using FtqRecord = SpecRecord<FtqPayload>;

    /** A consumed fetch block waiting in the instruction window. */
    struct WindowBlock
    {
        FtqRecord r;
        std::uint32_t retired = 0;
        Cycle readyCycle = 0;
        bool resolved = false;
    };

    void stepResolve(CommittedStream &committed);
    void stepRetire(CommittedStream &committed);
    void stepCritic();
    void stepFetch();
    void stepProphet();

    void critiqueFtqEntry(std::size_t idx, bool partial);
    void flushPipeline(const FtqRecord &mispredicted, bool outcome);
    void exportStats(CommittedStream &committed);

    bool measuring() const { return commitIdx >= cfg.warmupBranches; }

    Program &program;
    ProphetCriticHybrid &hybrid;
    TimingConfig cfg;
    SpecCore<FtqPayload> core;
    SpecCoreObs coreObs;

    std::deque<WindowBlock> window;
    std::size_t windowUops = 0;

    std::uint64_t resolveIdx = 0; //!< next trace index to resolve
    std::uint64_t commitIdx = 0;  //!< next trace index to retire
    Cycle now = 0;
    Cycle prophetStalledUntil = 0;
    Cycle cacheStalledUntil = 0;
    std::uint64_t totalBranches = 0;

    TimingStats stats;
    Cycle measureStartCycle = 0;
};

/**
 * Whether a timing cell with this budget may be forked mid-run
 * (DESIGN.md §11). stepResolve stops at speculative blocks past the
 * run's branch budget, so a short-budget run can diverge from a
 * longer canonical one while the instruction window is still inside
 * warmup lookahead; covering the window depth (>= 1 uop per block)
 * plus one retire burst makes the trajectories provably identical up
 * to any in-warmup snapshot. Short-measure cells take the replay
 * path instead.
 */
inline bool
timingForkable(const TimingConfig &cfg)
{
    return cfg.measureBranches >= cfg.windowSize + cfg.retireWidth;
}

} // namespace pcbp

#endif // PCBP_SIM_TIMING_HH
