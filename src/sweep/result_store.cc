#include "sweep/result_store.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

namespace
{

/**
 * Minimal extraction from the store's own flat JSONL lines (string /
 * integer / flat-array fields only — not a general JSON parser).
 * Never throws or aborts: any malformed field latches failed(), so
 * callers can treat a torn line (crash mid-append) as recoverable.
 */
class FieldReader
{
  public:
    explicit FieldReader(const std::string &line) : line(line) {}

    bool failed() const { return bad; }

    std::string
    getString(const char *field)
    {
        const std::size_t at = pos(field);
        if (bad || line[at] != '"')
            return fail<std::string>();
        std::string out;
        for (std::size_t i = at + 1; i < line.size(); ++i) {
            if (line[i] == '\\' && i + 1 < line.size())
                out += line[++i];
            else if (line[i] == '"')
                return out;
            else
                out += line[i];
        }
        return fail<std::string>(); // unterminated
    }

    std::uint64_t
    getUint(const char *field)
    {
        std::size_t at = pos(field);
        if (bad)
            return 0;
        return number(at);
    }

    /**
     * Like getUint, but an absent field yields @p fallback instead
     * of failure — for fields added after stores already existed on
     * disk (a present-but-garbled value still fails). Keeps the
     * resume compatibility the cell-key suffix design promises.
     */
    std::uint64_t
    getUintOr(const char *field, std::uint64_t fallback)
    {
        if (bad)
            return 0;
        std::size_t at = find(field);
        if (at == std::string::npos)
            return fallback;
        return number(at);
    }

    /**
     * Flat object of "path":integer pairs. Absent field = empty
     * (stores predate the stats block); a present-but-garbled
     * object fails.
     */
    std::vector<std::pair<std::string, std::uint64_t>>
    getStatsObject(const char *field)
    {
        using Out = std::vector<std::pair<std::string, std::uint64_t>>;
        if (bad)
            return Out();
        std::size_t at = find(field);
        if (at == std::string::npos)
            return Out();
        if (line[at] != '{')
            return fail<Out>();
        Out out;
        ++at;
        while (!bad && at < line.size() && line[at] != '}') {
            if (line[at] != '"')
                return fail<Out>();
            const std::size_t close = line.find('"', at + 1);
            if (close == std::string::npos)
                return fail<Out>();
            std::string path = line.substr(at + 1, close - at - 1);
            at = close + 1;
            if (at >= line.size() || line[at] != ':')
                return fail<Out>();
            ++at;
            const std::uint64_t v = number(at);
            if (bad)
                return fail<Out>();
            out.emplace_back(std::move(path), v);
            if (at < line.size() && line[at] == ',')
                ++at;
        }
        if (at >= line.size() || line[at] != '}')
            return fail<Out>();
        return out;
    }

    std::vector<std::uint64_t>
    getArray(const char *field)
    {
        std::size_t at = pos(field);
        if (bad || line[at] != '[')
            return fail<std::vector<std::uint64_t>>();
        std::vector<std::uint64_t> out;
        ++at;
        while (!bad && at < line.size() && line[at] != ']') {
            out.push_back(number(at));
            if (at < line.size() && line[at] == ',')
                ++at;
        }
        if (at >= line.size() || line[at] != ']')
            return fail<std::vector<std::uint64_t>>();
        return out;
    }

  private:
    template <typename T>
    T
    fail()
    {
        bad = true;
        return T();
    }

    /** Digit run at @p at (advanced past it); empty run = failure. */
    std::uint64_t
    number(std::size_t &at)
    {
        std::uint64_t v = 0;
        bool any = false;
        while (at < line.size() && line[at] >= '0' &&
               line[at] <= '9') {
            v = v * 10 + std::uint64_t(line[at] - '0');
            ++at;
            any = true;
        }
        if (!any)
            return fail<std::uint64_t>();
        return v;
    }

    /** Index just past `"field":`, or npos when absent. */
    std::size_t
    find(const char *field)
    {
        const std::string needle =
            std::string("\"") + field + "\":";
        const auto at = line.find(needle);
        if (at == std::string::npos)
            return std::string::npos;
        // Fields are always followed by a value character, so this
        // index is in range unless the line is torn (then the value
        // reader trips on it).
        return at + needle.size() < line.size() ? at + needle.size()
                                                : std::string::npos;
    }

    /** Like find(), but absence is a failure. */
    std::size_t
    pos(const char *field)
    {
        const std::size_t at = find(field);
        return at == std::string::npos ? fail<std::size_t>() : at;
    }

    const std::string &line;
    bool bad = false;
};

} // namespace

// -------------------------------------------------------- CellResult

namespace
{

/** The cell-coordinate columns shared by both run kinds. */
CellResult
cellCoordinates(const SweepCell &cell)
{
    CellResult r;
    r.key = cell.key();
    r.hash = cell.hash();
    r.workload = cell.workload->name;
    r.suite = cell.workload->suite;
    r.prophet = prophetKindName(cell.spec.prophet) + ":" +
                budgetName(cell.spec.prophetBudget);
    r.critic = cell.spec.critic
                   ? criticKindName(*cell.spec.critic) + ":" +
                         budgetName(cell.spec.criticBudget)
                   : "none";
    r.futureBits = cell.spec.critic ? cell.spec.futureBits : 0;
    r.speculativeHistory = cell.spec.speculativeHistory;
    r.repairHistory = cell.spec.repairHistory;
    r.filterTagBits = cell.spec.filterTagBits;
    r.oracleFutureBits = cell.oracleFutureBits;
    r.timing = cell.timing;
    r.measureBranches = cell.measureBranches;
    return r;
}

} // namespace

CellResult
CellResult::fromRun(const SweepCell &cell, const EngineStats &stats)
{
    CellResult r = cellCoordinates(cell);
    pcbp_assert(!cell.timing,
                "timing cells persist through fromTimingRun");

    r.committedBranches = stats.committedBranches;
    r.committedUops = stats.committedUops;
    r.finalMispredicts = stats.finalMispredicts;
    r.prophetMispredicts = stats.prophetMispredicts;
    r.btbMisses = stats.btbMisses;
    r.criticOverrides = stats.criticOverrides;
    r.squashedPredictions = stats.squashedPredictions;
    r.wrongPathBranches = stats.wrongPathBranches;
    r.wrongPathUops = stats.wrongPathUops;
    r.partialCritiques = stats.partialCritiques;
    r.critiques = stats.critiques;
    return r;
}

CellResult
CellResult::fromTimingRun(const SweepCell &cell,
                          const TimingStats &stats)
{
    CellResult r = cellCoordinates(cell);
    pcbp_assert(cell.timing,
                "accuracy cells persist through fromRun");

    r.committedBranches = stats.committedBranches;
    r.committedUops = stats.committedUops;
    r.finalMispredicts = stats.finalMispredicts;
    r.criticOverrides = stats.criticOverrides;
    r.squashedPredictions = stats.ftqEntriesFlushedByCritic;
    r.wrongPathUops = stats.wrongPathFetchedUops;
    r.partialCritiques = stats.partialCritiques;
    r.cycles = stats.cycles;
    r.fetchedUops = stats.fetchedUops;
    return r;
}

EngineStats
CellResult::toEngineStats() const
{
    EngineStats s;
    s.committedBranches = committedBranches;
    s.committedUops = committedUops;
    s.finalMispredicts = finalMispredicts;
    s.prophetMispredicts = prophetMispredicts;
    s.btbMisses = btbMisses;
    s.criticOverrides = criticOverrides;
    s.squashedPredictions = squashedPredictions;
    s.wrongPathBranches = wrongPathBranches;
    s.wrongPathUops = wrongPathUops;
    s.partialCritiques = partialCritiques;
    s.critiques = critiques;
    return s;
}

TimingStats
CellResult::toTimingStats() const
{
    TimingStats s;
    s.cycles = cycles;
    s.committedUops = committedUops;
    s.committedBranches = committedBranches;
    s.finalMispredicts = finalMispredicts;
    s.fetchedUops = fetchedUops;
    s.wrongPathFetchedUops = wrongPathUops;
    s.criticOverrides = criticOverrides;
    s.ftqEntriesFlushedByCritic = squashedPredictions;
    s.partialCritiques = partialCritiques;
    return s;
}

std::string
CellResult::toJson() const
{
    std::ostringstream os;
    os << "{\"key\":\"" << jsonEscape(key) << "\""
       << ",\"hash\":" << hash
       << ",\"workload\":\"" << jsonEscape(workload) << "\""
       << ",\"suite\":\"" << jsonEscape(suite) << "\""
       << ",\"prophet\":\"" << jsonEscape(prophet) << "\""
       << ",\"critic\":\"" << jsonEscape(critic) << "\""
       << ",\"future_bits\":" << futureBits
       << ",\"spec_history\":" << (speculativeHistory ? 1 : 0)
       << ",\"repair_history\":" << (repairHistory ? 1 : 0)
       << ",\"filter_tag_bits\":" << filterTagBits
       << ",\"oracle\":" << (oracleFutureBits ? 1 : 0)
       << ",\"timing\":" << (timing ? 1 : 0)
       << ",\"measure_branches\":" << measureBranches
       << ",\"committed_branches\":" << committedBranches
       << ",\"committed_uops\":" << committedUops
       << ",\"final_mispredicts\":" << finalMispredicts
       << ",\"prophet_mispredicts\":" << prophetMispredicts
       << ",\"btb_misses\":" << btbMisses
       << ",\"critic_overrides\":" << criticOverrides
       << ",\"squashed_predictions\":" << squashedPredictions
       << ",\"wrong_path_branches\":" << wrongPathBranches
       << ",\"wrong_path_uops\":" << wrongPathUops
       << ",\"partial_critiques\":" << partialCritiques
       << ",\"cycles\":" << cycles
       << ",\"fetched_uops\":" << fetchedUops
       << ",\"critiques\":[";
    for (std::size_t c = 0; c < numCritiqueClasses; ++c)
        os << (c ? "," : "") << critiques.counts[c];
    os << "]";
    // Trailing optional block: emitted only when the sweep collected
    // per-cell stats, so legacy lines stay byte-identical.
    if (!stats.empty()) {
        os << ",\"stats\":{";
        for (std::size_t i = 0; i < stats.size(); ++i) {
            os << (i ? "," : "") << "\"" << jsonEscape(stats[i].first)
               << "\":" << stats[i].second;
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

CellResult
CellResult::fromJson(const std::string &line)
{
    CellResult r;
    if (!tryFromJson(line, r))
        pcbp_fatal("result store: malformed line: ", line);
    return r;
}

bool
CellResult::tryFromJson(const std::string &line, CellResult &r)
{
    FieldReader in(line);
    r.key = in.getString("key");
    r.hash = in.getUint("hash");
    r.workload = in.getString("workload");
    r.suite = in.getString("suite");
    r.prophet = in.getString("prophet");
    r.critic = in.getString("critic");
    r.futureBits = static_cast<unsigned>(in.getUint("future_bits"));
    r.speculativeHistory = in.getUint("spec_history") != 0;
    r.repairHistory = in.getUint("repair_history") != 0;
    // Post-introduction fields (timing mode, ablation axes): absent
    // in stores written before they existed, whose cells are all
    // accuracy-mode with default knobs — exactly the fallbacks.
    r.filterTagBits =
        static_cast<unsigned>(in.getUintOr("filter_tag_bits", 0));
    r.oracleFutureBits = in.getUintOr("oracle", 0) != 0;
    r.timing = in.getUintOr("timing", 0) != 0;
    r.measureBranches = in.getUint("measure_branches");
    r.committedBranches = in.getUint("committed_branches");
    r.committedUops = in.getUint("committed_uops");
    r.finalMispredicts = in.getUint("final_mispredicts");
    r.prophetMispredicts = in.getUint("prophet_mispredicts");
    r.btbMisses = in.getUint("btb_misses");
    r.criticOverrides = in.getUint("critic_overrides");
    r.squashedPredictions = in.getUint("squashed_predictions");
    r.wrongPathBranches = in.getUint("wrong_path_branches");
    r.wrongPathUops = in.getUint("wrong_path_uops");
    r.partialCritiques = in.getUint("partial_critiques");
    r.cycles = in.getUintOr("cycles", 0);
    r.fetchedUops = in.getUintOr("fetched_uops", 0);
    const auto crit = in.getArray("critiques");
    r.stats = in.getStatsObject("stats");
    if (in.failed() || crit.size() != numCritiqueClasses)
        return false;
    for (std::size_t c = 0; c < numCritiqueClasses; ++c)
        r.critiques.counts[c] = crit[c];
    return true;
}

// ------------------------------------------------------- ResultStore

ResultStore::ResultStore(std::string path) : filePath(std::move(path))
{
    std::string content;
    {
        std::ifstream in(filePath, std::ios::binary);
        if (!in)
            return; // first run: file appears on the first put()
        std::ostringstream os;
        os << in.rdbuf();
        content = os.str();
    }
    if (content.empty())
        return;

    // Every line put() writes is newline-terminated, so bytes after
    // the last newline are an interrupted append — even when they
    // happen to parse (a write torn exactly at the newline): keeping
    // such a line would make the next append concatenate onto it and
    // merge two records into one corrupt line.
    const bool terminated = content.back() == '\n';

    std::vector<std::string> lines;
    std::size_t at = 0;
    while (at < content.size()) {
        const std::size_t nl = content.find('\n', at);
        if (nl == std::string::npos) {
            lines.push_back(content.substr(at));
            break;
        }
        lines.push_back(content.substr(at, nl - at));
        at = nl + 1;
    }

    std::uint64_t valid_bytes = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        const bool last = i + 1 == lines.size();
        CellResult r;
        const bool torn =
            (last && !terminated) ||
            (!line.empty() && !CellResult::tryFromJson(line, r));
        if (torn) {
            // A torn final line is what a kill mid-append leaves
            // behind; drop it (and truncate, so the next append
            // doesn't concatenate onto the torn bytes) and the cell
            // simply reruns. Torn bytes followed by further valid
            // lines mean real corruption — refuse to guess.
            if (!last)
                pcbp_fatal("result store ", filePath, ":", i + 1,
                           ": malformed line: ", line);
            pcbp_warn("result store ", filePath,
                      ": dropping torn final line (interrupted "
                      "write); the cell will rerun");
            ++tornDrops;
            truncateFile(valid_bytes);
            return;
        }
        valid_bytes += line.size() + 1;
        if (line.empty())
            continue;
        if (index.count(r.key)) {
            pcbp_warn("result store ", filePath, ":", i + 1,
                      ": duplicate key ignored: ", r.key);
            ++dupDrops;
            continue;
        }
        ++replayedLines;
        index.emplace(r.key, results.size());
        results.push_back(std::move(r));
    }
}

void
ResultStore::truncateFile(std::uint64_t valid_bytes)
{
    std::error_code ec;
    std::filesystem::resize_file(filePath, valid_bytes, ec);
    if (ec)
        pcbp_fatal("result store: cannot truncate ", filePath, ": ",
                   ec.message());
}

bool
ResultStore::has(const std::string &key) const
{
    return index.count(key) != 0;
}

const CellResult *
ResultStore::find(const std::string &key) const
{
    const auto it = index.find(key);
    return it == index.end() ? nullptr : &results[it->second];
}

EngineStats
ResultStore::statsFor(const SweepCell &cell) const
{
    const CellResult *r = find(cell.key());
    if (!r)
        pcbp_fatal("result store: no result for cell ", cell.key());
    if (r->timing)
        pcbp_fatal("result store: cell ", cell.key(),
                   " holds timing stats; use timingStatsFor");
    return r->toEngineStats();
}

TimingStats
ResultStore::timingStatsFor(const SweepCell &cell) const
{
    const CellResult *r = find(cell.key());
    if (!r)
        pcbp_fatal("result store: no result for cell ", cell.key());
    if (!r->timing)
        pcbp_fatal("result store: cell ", cell.key(),
                   " holds accuracy stats; use statsFor");
    return r->toTimingStats();
}

void
ResultStore::put(CellResult r)
{
    if (index.count(r.key))
        pcbp_fatal("result store: duplicate put for key ", r.key);
    if (!filePath.empty()) {
        std::ofstream out(filePath, std::ios::app);
        if (!out)
            pcbp_fatal("result store: cannot append to ", filePath);
        out << r.toJson() << "\n";
        out.flush();
        if (!out)
            pcbp_fatal("result store: write to ", filePath, " failed");
    }
    ++putCount;
    index.emplace(r.key, results.size());
    results.push_back(std::move(r));
}

void
ResultStore::exportStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.setHost(prefix + ".replayed", replayedLines);
    reg.setHost(prefix + ".torn_drops", tornDrops);
    reg.setHost(prefix + ".dup_drops", dupDrops);
    reg.setHost(prefix + ".puts", putCount);
    reg.setHost(prefix + ".cells", results.size());
}

std::string
ResultStore::exportCsv(const std::vector<CellResult> &results)
{
    std::ostringstream os;
    os << "workload,suite,prophet,critic,future_bits,spec_history,"
          "repair_history,filter_tag_bits,oracle,mode,"
          "measure_branches,committed_branches,"
          "committed_uops,final_mispredicts,prophet_mispredicts,"
          "misp_per_kuops,misp_rate,prophet_misp_rate,btb_misses,"
          "critic_overrides,squashed_predictions,wrong_path_branches,"
          "wrong_path_uops,partial_critiques,cycles,fetched_uops,upc";
    for (std::size_t c = 0; c < numCritiqueClasses; ++c)
        os << ","
           << critiqueClassName(static_cast<CritiqueClass>(c));
    os << "\n";
    for (const auto &r : results) {
        const EngineStats s = r.toEngineStats();
        os << r.workload << ',' << r.suite << ',' << r.prophet << ','
           << r.critic << ',' << r.futureBits << ','
           << (r.speculativeHistory ? 1 : 0) << ','
           << (r.repairHistory ? 1 : 0) << ',' << r.filterTagBits
           << ',' << (r.oracleFutureBits ? 1 : 0) << ','
           << (r.timing ? "timing" : "accuracy") << ','
           << r.measureBranches
           << ',' << r.committedBranches << ',' << r.committedUops
           << ',' << r.finalMispredicts << ',' << r.prophetMispredicts
           << ',' << fmtDouble(s.mispPerKuops(), 6) << ','
           << fmtDouble(s.mispRate(), 6) << ','
           << fmtDouble(s.prophetMispRate(), 6) << ',' << r.btbMisses
           << ',' << r.criticOverrides << ',' << r.squashedPredictions
           << ',' << r.wrongPathBranches << ',' << r.wrongPathUops
           << ',' << r.partialCritiques << ',' << r.cycles << ','
           << r.fetchedUops << ',' << fmtDouble(r.upc(), 6);
        for (std::size_t c = 0; c < numCritiqueClasses; ++c)
            os << ',' << r.critiques.counts[c];
        os << "\n";
    }
    return os.str();
}

std::string
ResultStore::exportJson(const std::vector<CellResult> &results)
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i)
        os << "  " << results[i].toJson()
           << (i + 1 < results.size() ? "," : "") << "\n";
    os << "]\n";
    return os.str();
}

} // namespace pcbp
