/**
 * @file
 * Append-only, resumable store of sweep cell results.
 *
 * One JSONL line per completed cell, keyed by the cell's canonical
 * content key (plus its FNV-1a hash for quick external joins). On
 * construction the store replays an existing file, so a re-run of
 * the same sweep skips every completed cell and computes only the
 * delta — interrupting a 10,000-cell grid costs just the in-flight
 * cells.
 *
 * All persisted statistics are integers, so the file and the CSV /
 * JSON exports are byte-stable across runs and across `--jobs`
 * settings (the runner appends in cell order).
 */

#ifndef PCBP_SWEEP_RESULT_STORE_HH
#define PCBP_SWEEP_RESULT_STORE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hh"
#include "sim/timing.hh"
#include "sweep/sweep_spec.hh"

namespace pcbp
{

/** One completed cell, as persisted. */
struct CellResult
{
    std::string key;
    std::uint64_t hash = 0;

    // Denormalized cell coordinates, for exports.
    std::string workload;
    std::string suite;
    std::string prophet;      // "perceptron:8KB"
    std::string critic;       // "t.gshare:8KB" or "none"
    unsigned futureBits = 0;
    bool speculativeHistory = true;
    bool repairHistory = true;
    unsigned filterTagBits = 0;  // 0 = Table-3 default
    bool oracleFutureBits = false;
    bool timing = false;         // timing-model cell (uPC counters)
    std::uint64_t measureBranches = 0;

    // The persisted subset of EngineStats (everything aggregate()
    // and the exports consume). Timing cells fill the shared subset
    // (committed*/finalMispredicts/criticOverrides/...) plus the
    // cycle counters below.
    std::uint64_t committedBranches = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t finalMispredicts = 0;
    std::uint64_t prophetMispredicts = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t criticOverrides = 0;
    std::uint64_t squashedPredictions = 0;
    std::uint64_t wrongPathBranches = 0;
    std::uint64_t wrongPathUops = 0;
    std::uint64_t partialCritiques = 0;
    CritiqueCounts critiques;

    // Timing-model counters (zero for accuracy cells).
    std::uint64_t cycles = 0;
    std::uint64_t fetchedUops = 0;

    /**
     * Optional per-cell observability scalars (StatRegistry
     * simScalars(), path-sorted) — populated only when the sweep ran
     * with per-cell stats enabled. Serialized as a trailing "stats"
     * object *after* every legacy field, and only when non-empty, so
     * stores written without the flag remain byte-identical and old
     * stores parse (absent = empty).
     */
    std::vector<std::pair<std::string, std::uint64_t>> stats;

    /** Build from a finished accuracy-engine cell run. */
    static CellResult fromRun(const SweepCell &cell,
                              const EngineStats &stats);

    /** Build from a finished timing-model cell run. */
    static CellResult fromTimingRun(const SweepCell &cell,
                                    const TimingStats &stats);

    /** Uops per cycle (timing cells; 0 for accuracy cells). */
    double upc() const
    {
        return cycles == 0 ? 0.0
                           : double(committedUops) / double(cycles);
    }

    /** Rehydrate the persisted counters into an EngineStats. */
    EngineStats toEngineStats() const;

    /** Rehydrate a timing cell's counters into a TimingStats. */
    TimingStats toTimingStats() const;

    /** One JSONL line (no trailing newline). */
    std::string toJson() const;

    /** Parse one JSONL line (fatal on malformed input). */
    static CellResult fromJson(const std::string &line);

    /** Non-fatal parse; returns false on malformed input. */
    static bool tryFromJson(const std::string &line, CellResult &out);
};

class ResultStore
{
  public:
    /** In-memory store (nothing persisted). */
    ResultStore() = default;

    /**
     * Persistent store: replays @p path if it exists; put() appends
     * to it (creating it on first write).
     */
    explicit ResultStore(std::string path);

    /** True if a result for this content key exists. */
    bool has(const std::string &key) const;

    /** Lookup by content key; nullptr if absent. */
    const CellResult *find(const std::string &key) const;

    /**
     * Engine stats for an accuracy cell (fatal if absent — run the
     * sweep first — or if the cell ran under the timing model).
     */
    EngineStats statsFor(const SweepCell &cell) const;

    /** Timing stats for a timing cell (fatal if absent/accuracy). */
    TimingStats timingStatsFor(const SweepCell &cell) const;

    /** Record a result: appends to the file and the in-memory view. */
    void put(CellResult r);

    std::size_t size() const { return results.size(); }

    /** All results, in insertion (= file) order. */
    const std::vector<CellResult> &all() const { return results; }

    /** The backing file path ("" for in-memory stores). */
    const std::string &path() const { return filePath; }

    /** CSV export of @p results, header first. */
    static std::string exportCsv(const std::vector<CellResult> &results);

    /** JSON-array export of @p results. */
    static std::string exportJson(
        const std::vector<CellResult> &results);

    /**
     * Export store health counters (lines replayed on open, torn
     * and duplicate lines dropped, cells appended) into @p reg's
     * host section under `prefix.*`.
     */
    void exportStats(StatRegistry &reg,
                     const std::string &prefix = "store") const;

  private:
    void truncateFile(std::uint64_t valid_bytes);

    std::string filePath;
    std::vector<CellResult> results;
    std::unordered_map<std::string, std::size_t> index;

    // Open/append health counters (exportStats).
    std::uint64_t replayedLines = 0;
    std::uint64_t tornDrops = 0;
    std::uint64_t dupDrops = 0;
    std::uint64_t putCount = 0;
};

} // namespace pcbp

#endif // PCBP_SWEEP_RESULT_STORE_HH
