#include "sweep/runner.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

namespace
{

/**
 * A schedulable piece of a sweep: either one cell on the replay path
 * (one full simulation) or a fork chain — every pending cell of one
 * fork group, executed as a single canonical simulation plus a clone
 * per earlier snapshot point (DESIGN.md §11).
 */
struct SweepUnit
{
    std::vector<std::size_t> members; //!< indices into `pending`
    bool chain = false;

    /**
     * Batch mode: the members partitioned into fork groups, each a
     * list of indices into `members` (multi-member groups fork
     * inside the batch; the rest are singleton lanes). Non-empty
     * exactly when this unit is a batched (workload, mode) pass.
     */
    std::vector<std::vector<std::size_t>> batchGroups;
};

/** Whether a whole fork group may take the chain path. */
bool
chainable(const std::vector<const SweepCell *> &group)
{
    if (group.size() < 2)
        return false; // nothing shared; replay is the same work
    for (const SweepCell *cell : group) {
        if (cell->oracleFutureBits)
            return false; // the oracle stream cannot be forked
        if (cell->warmupBranches < 1)
            return false;
        if (cell->timing && !timingForkable(cell->timingConfig()))
            return false;
    }
    return true;
}

/**
 * Partition the pending cells into units. Grouping is by
 * forkGroupKey(), so only cells that are provably prefixes of the
 * same simulation ever chain; everything else replays unchanged.
 */
std::vector<SweepUnit>
planUnits(const std::vector<const SweepCell *> &pending, bool fork)
{
    std::vector<SweepUnit> units;
    if (!fork) {
        for (std::size_t i = 0; i < pending.size(); ++i)
            units.push_back({{i}, false});
        return units;
    }

    std::vector<std::string> group_order;
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const std::string key = pending[i]->forkGroupKey();
        auto [it, inserted] = groups.try_emplace(key);
        if (inserted)
            group_order.push_back(key);
        it->second.push_back(i);
    }

    for (const std::string &key : group_order) {
        const std::vector<std::size_t> &members = groups[key];
        std::vector<const SweepCell *> cells;
        for (const std::size_t i : members)
            cells.push_back(pending[i]);
        if (chainable(cells)) {
            units.push_back({members, true, {}});
        } else {
            for (const std::size_t i : members)
                units.push_back({{i}, false, {}});
        }
    }
    return units;
}

/**
 * Batch-mode planning: one unit per (workload, mode) pair — a single
 * lockstep pass over that workload's shared stream — with the unit's
 * members partitioned into fork groups by forkGroupKey(). Chainable
 * groups stay together (they fork inside the batch); everything else
 * splits into unrestricted singleton lanes.
 */
std::vector<SweepUnit>
planBatchUnits(const std::vector<const SweepCell *> &pending)
{
    std::vector<std::string> unit_order;
    std::map<std::string, std::vector<std::size_t>> parts;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const std::string key = pending[i]->workload->name +
                                (pending[i]->timing ? "|t" : "|a");
        auto [it, inserted] = parts.try_emplace(key);
        if (inserted)
            unit_order.push_back(key);
        it->second.push_back(i);
    }

    std::vector<SweepUnit> units;
    for (const std::string &ukey : unit_order) {
        SweepUnit unit;
        unit.members = parts[ukey];

        std::vector<std::string> group_order;
        std::map<std::string, std::vector<std::size_t>> groups;
        for (std::size_t j = 0; j < unit.members.size(); ++j) {
            const std::string key =
                pending[unit.members[j]]->forkGroupKey();
            auto [it, inserted] = groups.try_emplace(key);
            if (inserted)
                group_order.push_back(key);
            it->second.push_back(j);
        }
        for (const std::string &key : group_order) {
            const std::vector<std::size_t> &g = groups[key];
            std::vector<const SweepCell *> cells;
            for (const std::size_t j : g)
                cells.push_back(pending[unit.members[j]]);
            if (chainable(cells)) {
                unit.batchGroups.push_back(g);
            } else {
                for (const std::size_t j : g)
                    unit.batchGroups.push_back({j});
            }
        }
        units.push_back(std::move(unit));
    }
    return units;
}

} // namespace

SweepRunSummary
runSweep(const SweepSpec &spec, ResultStore &store,
         const SweepRunOptions &opt)
{
    SweepRunSummary summary;
    const std::vector<SweepCell> cells = spec.cells();
    summary.totalCells = cells.size();

    std::vector<const SweepCell *> pending;
    for (const SweepCell &cell : cells) {
        if (store.has(cell.key())) {
            ++summary.skippedCells;
            continue;
        }
        if (opt.maxCells && pending.size() >= opt.maxCells)
            continue;
        pending.push_back(&cell);
    }
    summary.executedCells = pending.size();

    // Fork-execution host counters (zero when forking is off or no
    // group shares a warmup prefix).
    std::uint64_t fork_groups = 0;
    std::uint64_t fork_snapshots = 0;
    std::uint64_t fork_cells_forked = 0;
    std::uint64_t fork_warmup_saved = 0;

    // Batch-execution host counters (populated only in batch mode).
    std::uint64_t batch_units = 0;
    std::uint64_t batch_groups = 0;
    std::uint64_t batch_members = 0;
    std::uint64_t batch_snapshots = 0;
    std::uint64_t batch_warmup_saved = 0;
    std::uint64_t batch_stream_saved = 0;
    std::uint64_t batch_window_peak = 0;

    // add (not set): a repro run funnels many sweeps into one
    // registry. The caller owns store.exportStats (a store can back
    // several sweeps; exporting it here would double-count).
    const auto exportRunStats = [&](const ThreadPool *pool) {
        if (!opt.stats)
            return;
        opt.stats->addHost("sweep.cells_total", summary.totalCells);
        opt.stats->addHost("sweep.cells_skipped",
                           summary.skippedCells);
        opt.stats->addHost("sweep.cells_executed",
                           summary.executedCells);
        opt.stats->addHost("sweep.fork.groups", fork_groups);
        opt.stats->addHost("sweep.fork.snapshots", fork_snapshots);
        opt.stats->addHost("sweep.fork.cells_forked",
                           fork_cells_forked);
        opt.stats->addHost("sweep.fork.warmup_branches_saved",
                           fork_warmup_saved);
        if (opt.batch) {
            opt.stats->addHost("sweep.batch.units", batch_units);
            opt.stats->addHost("sweep.batch.groups", batch_groups);
            opt.stats->addHost("sweep.batch.members", batch_members);
            opt.stats->addHost("sweep.batch.snapshots",
                               batch_snapshots);
            opt.stats->addHost("sweep.batch.warmup_branches_saved",
                               batch_warmup_saved);
            // Committed records members consumed minus records the
            // shared source actually produced: the CFG walks / trace
            // decodes the fanout amortized away.
            opt.stats->addHost("sweep.batch.stream_records_saved",
                               batch_stream_saved);
            opt.stats->setHostMax("sweep.batch.source_window_peak",
                                  batch_window_peak);
        }
        if (pool)
            pool->exportStats(*opt.stats);
    };

    if (pending.empty()) {
        exportRunStats(nullptr);
        return summary;
    }

    // Workers drop finished cells into `results`; the flush cursor
    // advances over the completed prefix so the store only ever sees
    // results in cell order, whatever order the pool finishes them.
    std::vector<CellResult> results(pending.size());
    std::vector<bool> done(pending.size(), false);
    std::size_t cursor = 0;
    std::mutex flushMutex;

    const bool collect = opt.stats != nullptr || opt.cellStats;
    const std::vector<SweepUnit> units =
        opt.batch ? planBatchUnits(pending)
                  : planUnits(pending, opt.fork);

    ThreadPool pool(opt.jobs);
    if (opt.tracer) {
        for (unsigned w = 0; w < pool.numWorkers(); ++w)
            opt.tracer->nameThread(w, "worker" + std::to_string(w));
    }

    pool.parallelFor(units.size(), [&](std::size_t u,
                                       unsigned worker) {
        const SweepUnit &unit = units[u];
        const SweepCell &first = *pending[unit.members[0]];
        const std::uint64_t spanStart =
            opt.tracer ? opt.tracer->now() : 0;

        // Each cell collects into its own registry — no contention
        // on the simulation path — merged under the flush lock.
        std::vector<StatRegistry> regs(unit.members.size());
        std::vector<CellResult> unitResults(unit.members.size());
        ChainObs chainObs;
        BatchObs batchObs;

        if (!unit.batchGroups.empty()) {
            // One lockstep pass over this (workload, mode)'s shared
            // stream; multi-member groups fork inside it. Results are
            // bit-identical to the chain and replay paths, cell by
            // cell (the batched differential tests pin this).
            if (first.timing) {
                std::vector<HybridSpec> specs;
                std::vector<std::vector<TimingConfig>> groups;
                for (const std::vector<std::size_t> &bg :
                     unit.batchGroups) {
                    specs.push_back(pending[unit.members[bg[0]]]->spec);
                    std::vector<TimingConfig> cfgs;
                    for (const std::size_t j : bg) {
                        TimingConfig tc =
                            pending[unit.members[j]]->timingConfig();
                        if (collect)
                            tc.statsOut = &regs[j];
                        cfgs.push_back(tc);
                    }
                    groups.push_back(std::move(cfgs));
                }
                const auto stats = runTimingBatch(
                    *first.workload, specs, groups, &batchObs);
                for (std::size_t g = 0; g < unit.batchGroups.size();
                     ++g) {
                    const std::vector<std::size_t> &bg =
                        unit.batchGroups[g];
                    for (std::size_t j = 0; j < bg.size(); ++j) {
                        unitResults[bg[j]] = CellResult::fromTimingRun(
                            *pending[unit.members[bg[j]]],
                            stats[g][j]);
                    }
                }
            } else {
                std::vector<HybridSpec> specs;
                std::vector<std::vector<EngineConfig>> groups;
                for (const std::vector<std::size_t> &bg :
                     unit.batchGroups) {
                    specs.push_back(pending[unit.members[bg[0]]]->spec);
                    std::vector<EngineConfig> cfgs;
                    for (const std::size_t j : bg) {
                        EngineConfig ec =
                            pending[unit.members[j]]->engineConfig();
                        if (collect)
                            ec.statsOut = &regs[j];
                        cfgs.push_back(ec);
                    }
                    groups.push_back(std::move(cfgs));
                }
                const auto stats = runAccuracyBatch(
                    *first.workload, specs, groups, &batchObs);
                for (std::size_t g = 0; g < unit.batchGroups.size();
                     ++g) {
                    const std::vector<std::size_t> &bg =
                        unit.batchGroups[g];
                    for (std::size_t j = 0; j < bg.size(); ++j) {
                        unitResults[bg[j]] = CellResult::fromRun(
                            *pending[unit.members[bg[j]]],
                            stats[g][j]);
                    }
                }
            }
        } else if (unit.chain) {
            // One canonical simulation; every other member is a
            // mid-warmup fork of it (DESIGN.md §11). Bit-identical
            // to the replay path below, cell by cell.
            if (first.timing) {
                std::vector<TimingConfig> cfgs;
                cfgs.reserve(unit.members.size());
                for (std::size_t j = 0; j < unit.members.size(); ++j) {
                    TimingConfig tc =
                        pending[unit.members[j]]->timingConfig();
                    if (collect)
                        tc.statsOut = &regs[j];
                    cfgs.push_back(tc);
                }
                const std::vector<TimingStats> stats = runTimingChain(
                    *first.workload, first.spec, cfgs, &chainObs);
                for (std::size_t j = 0; j < unit.members.size(); ++j) {
                    unitResults[j] = CellResult::fromTimingRun(
                        *pending[unit.members[j]], stats[j]);
                }
            } else {
                std::vector<EngineConfig> cfgs;
                cfgs.reserve(unit.members.size());
                for (std::size_t j = 0; j < unit.members.size(); ++j) {
                    EngineConfig ec =
                        pending[unit.members[j]]->engineConfig();
                    if (collect)
                        ec.statsOut = &regs[j];
                    cfgs.push_back(ec);
                }
                const std::vector<EngineStats> stats =
                    runAccuracyChain(*first.workload, first.spec, cfgs,
                                     &chainObs);
                for (std::size_t j = 0; j < unit.members.size(); ++j) {
                    unitResults[j] = CellResult::fromRun(
                        *pending[unit.members[j]], stats[j]);
                }
            }
        } else if (first.timing) {
            TimingConfig tc = first.timingConfig();
            if (collect)
                tc.statsOut = &regs[0];
            unitResults[0] = CellResult::fromTimingRun(
                first, runTiming(*first.workload, first.spec, tc));
        } else {
            EngineConfig ec = first.engineConfig();
            if (collect)
                ec.statsOut = &regs[0];
            unitResults[0] = CellResult::fromRun(
                first, runAccuracy(*first.workload, first.spec, ec));
        }

        if (opt.cellStats) {
            for (std::size_t j = 0; j < unit.members.size(); ++j)
                unitResults[j].stats = regs[j].simScalars();
        }
        if (opt.tracer) {
            const bool batched = !unit.batchGroups.empty();
            const std::string name =
                batched ? first.workload->name +
                              (first.timing ? "|timing" : "|accuracy")
                : unit.chain ? first.forkGroupKey()
                             : first.key();
            opt.tracer->record(name,
                               batched      ? "batch"
                               : unit.chain ? "chain"
                                            : "cell",
                               worker, spanStart, opt.tracer->now());
        }

        std::lock_guard<std::mutex> lk(flushMutex);
        if (opt.stats) {
            for (const StatRegistry &reg : regs)
                opt.stats->merge(reg);
        }
        if (unit.chain) {
            ++fork_groups;
            fork_snapshots += chainObs.snapshots;
            fork_cells_forked += unit.members.size() - 1;
            fork_warmup_saved += chainObs.warmupBranchesSaved;
        }
        if (!unit.batchGroups.empty()) {
            ++batch_units;
            batch_groups += batchObs.groups;
            batch_members += batchObs.members;
            batch_snapshots += batchObs.snapshots;
            batch_warmup_saved += batchObs.warmupBranchesSaved;
            batch_stream_saved +=
                batchObs.memberDemand - batchObs.sourceProduced;
            batch_window_peak = std::max<std::uint64_t>(
                batch_window_peak, batchObs.sourceWindowPeak);
        }
        for (std::size_t j = 0; j < unit.members.size(); ++j) {
            results[unit.members[j]] = std::move(unitResults[j]);
            done[unit.members[j]] = true;
        }
        while (cursor < pending.size() && done[cursor]) {
            store.put(results[cursor]);
            if (opt.onCellDone)
                opt.onCellDone(*pending[cursor], results[cursor]);
            ++cursor;
        }
    });

    exportRunStats(&pool);
    return summary;
}

AggregateResult
aggregateCells(const ResultStore &store,
               const std::vector<SweepCell> &cells,
               const std::function<bool(const SweepCell &)> &pred)
{
    std::vector<EngineStats> runs;
    for (const SweepCell &cell : cells)
        if (pred(cell))
            runs.push_back(store.statsFor(cell));
    if (runs.empty())
        pcbp_fatal("aggregateCells: no cells matched");
    return aggregate(runs);
}

double
meanUpcCells(const ResultStore &store,
             const std::vector<SweepCell> &cells,
             const std::function<bool(const SweepCell &)> &pred)
{
    std::vector<TimingStats> runs;
    for (const SweepCell &cell : cells)
        if (pred(cell))
            runs.push_back(store.timingStatsFor(cell));
    if (runs.empty())
        pcbp_fatal("meanUpcCells: no cells matched");
    return meanUpc(runs);
}

} // namespace pcbp
