#include "sweep/runner.hh"

#include <mutex>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"

namespace pcbp
{

SweepRunSummary
runSweep(const SweepSpec &spec, ResultStore &store,
         const SweepRunOptions &opt)
{
    SweepRunSummary summary;
    const std::vector<SweepCell> cells = spec.cells();
    summary.totalCells = cells.size();

    std::vector<const SweepCell *> pending;
    for (const SweepCell &cell : cells) {
        if (store.has(cell.key())) {
            ++summary.skippedCells;
            continue;
        }
        if (opt.maxCells && pending.size() >= opt.maxCells)
            continue;
        pending.push_back(&cell);
    }
    summary.executedCells = pending.size();

    // add (not set): a repro run funnels many sweeps into one
    // registry. The caller owns store.exportStats (a store can back
    // several sweeps; exporting it here would double-count).
    const auto exportRunStats = [&](const ThreadPool *pool) {
        if (!opt.stats)
            return;
        opt.stats->addHost("sweep.cells_total", summary.totalCells);
        opt.stats->addHost("sweep.cells_skipped",
                           summary.skippedCells);
        opt.stats->addHost("sweep.cells_executed",
                           summary.executedCells);
        if (pool)
            pool->exportStats(*opt.stats);
    };

    if (pending.empty()) {
        exportRunStats(nullptr);
        return summary;
    }

    // Workers drop finished cells into `results`; the flush cursor
    // advances over the completed prefix so the store only ever sees
    // results in cell order, whatever order the pool finishes them.
    std::vector<CellResult> results(pending.size());
    std::vector<bool> done(pending.size(), false);
    std::size_t cursor = 0;
    std::mutex flushMutex;

    const bool collect = opt.stats != nullptr || opt.cellStats;

    ThreadPool pool(opt.jobs);
    if (opt.tracer) {
        for (unsigned w = 0; w < pool.numWorkers(); ++w)
            opt.tracer->nameThread(w, "worker" + std::to_string(w));
    }

    pool.parallelFor(pending.size(), [&](std::size_t i,
                                         unsigned worker) {
        const SweepCell &cell = *pending[i];
        const std::uint64_t spanStart =
            opt.tracer ? opt.tracer->now() : 0;

        // Each cell collects into its own registry — no contention
        // on the simulation path — merged under the flush lock.
        StatRegistry cellReg;
        CellResult result;
        if (cell.timing) {
            TimingConfig tc = cell.timingConfig();
            if (collect)
                tc.statsOut = &cellReg;
            result = CellResult::fromTimingRun(
                cell,
                runTiming(*cell.workload, cell.spec, tc));
        } else {
            EngineConfig ec = cell.engineConfig();
            if (collect)
                ec.statsOut = &cellReg;
            result = CellResult::fromRun(
                cell,
                runAccuracy(*cell.workload, cell.spec, ec));
        }
        if (opt.cellStats)
            result.stats = cellReg.simScalars();
        if (opt.tracer) {
            opt.tracer->record(cell.key(), "cell", worker, spanStart,
                               opt.tracer->now());
        }

        std::lock_guard<std::mutex> lk(flushMutex);
        if (opt.stats)
            opt.stats->merge(cellReg);
        results[i] = std::move(result);
        done[i] = true;
        while (cursor < pending.size() && done[cursor]) {
            store.put(results[cursor]);
            if (opt.onCellDone)
                opt.onCellDone(*pending[cursor], results[cursor]);
            ++cursor;
        }
    });

    exportRunStats(&pool);
    return summary;
}

AggregateResult
aggregateCells(const ResultStore &store,
               const std::vector<SweepCell> &cells,
               const std::function<bool(const SweepCell &)> &pred)
{
    std::vector<EngineStats> runs;
    for (const SweepCell &cell : cells)
        if (pred(cell))
            runs.push_back(store.statsFor(cell));
    if (runs.empty())
        pcbp_fatal("aggregateCells: no cells matched");
    return aggregate(runs);
}

double
meanUpcCells(const ResultStore &store,
             const std::vector<SweepCell> &cells,
             const std::function<bool(const SweepCell &)> &pred)
{
    std::vector<TimingStats> runs;
    for (const SweepCell &cell : cells)
        if (pred(cell))
            runs.push_back(store.timingStatsFor(cell));
    if (runs.empty())
        pcbp_fatal("meanUpcCells: no cells matched");
    return meanUpc(runs);
}

} // namespace pcbp
