#include "sweep/runner.hh"

#include <mutex>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace pcbp
{

SweepRunSummary
runSweep(const SweepSpec &spec, ResultStore &store,
         const SweepRunOptions &opt)
{
    SweepRunSummary summary;
    const std::vector<SweepCell> cells = spec.cells();
    summary.totalCells = cells.size();

    std::vector<const SweepCell *> pending;
    for (const SweepCell &cell : cells) {
        if (store.has(cell.key())) {
            ++summary.skippedCells;
            continue;
        }
        if (opt.maxCells && pending.size() >= opt.maxCells)
            continue;
        pending.push_back(&cell);
    }
    summary.executedCells = pending.size();
    if (pending.empty())
        return summary;

    // Workers drop finished cells into `results`; the flush cursor
    // advances over the completed prefix so the store only ever sees
    // results in cell order, whatever order the pool finishes them.
    std::vector<CellResult> results(pending.size());
    std::vector<bool> done(pending.size(), false);
    std::size_t cursor = 0;
    std::mutex flushMutex;

    ThreadPool pool(opt.jobs);
    pool.parallelFor(pending.size(), [&](std::size_t i) {
        const SweepCell &cell = *pending[i];
        CellResult result =
            cell.timing
                ? CellResult::fromTimingRun(
                      cell, runTiming(*cell.workload, cell.spec,
                                      cell.timingConfig()))
                : CellResult::fromRun(
                      cell, runAccuracy(*cell.workload, cell.spec,
                                        cell.engineConfig()));

        std::lock_guard<std::mutex> lk(flushMutex);
        results[i] = std::move(result);
        done[i] = true;
        while (cursor < pending.size() && done[cursor]) {
            store.put(results[cursor]);
            if (opt.onCellDone)
                opt.onCellDone(*pending[cursor], results[cursor]);
            ++cursor;
        }
    });

    return summary;
}

AggregateResult
aggregateCells(const ResultStore &store,
               const std::vector<SweepCell> &cells,
               const std::function<bool(const SweepCell &)> &pred)
{
    std::vector<EngineStats> runs;
    for (const SweepCell &cell : cells)
        if (pred(cell))
            runs.push_back(store.statsFor(cell));
    if (runs.empty())
        pcbp_fatal("aggregateCells: no cells matched");
    return aggregate(runs);
}

double
meanUpcCells(const ResultStore &store,
             const std::vector<SweepCell> &cells,
             const std::function<bool(const SweepCell &)> &pred)
{
    std::vector<TimingStats> runs;
    for (const SweepCell &cell : cells)
        if (pred(cell))
            runs.push_back(store.timingStatsFor(cell));
    if (runs.empty())
        pcbp_fatal("meanUpcCells: no cells matched");
    return meanUpc(runs);
}

} // namespace pcbp
