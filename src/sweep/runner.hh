/**
 * @file
 * Sweep execution: shards individual (config, workload) cells across
 * a work-stealing thread pool and persists results through the
 * ResultStore.
 *
 * Determinism contract: results are bit-identical regardless of
 * `jobs`. Every cell builds its own program (seeded by the workload
 * recipe) and predictor, so execution order cannot leak between
 * cells; and completed cells are flushed to the store strictly in
 * cell order (a worker finishing cell 7 before cell 3 waits in a
 * buffer until 3..6 land), so the JSONL file — and therefore every
 * export — is byte-identical too.
 *
 * Resume contract: cells whose content key is already in the store
 * are skipped, so re-running an interrupted sweep computes only the
 * missing delta.
 */

#ifndef PCBP_SWEEP_RUNNER_HH
#define PCBP_SWEEP_RUNNER_HH

#include <functional>

#include "sweep/result_store.hh"
#include "sweep/sweep_spec.hh"

namespace pcbp
{

class SpanTracer;
class StatRegistry;

struct SweepRunOptions
{
    /** Worker count (incl. caller); 0 = one per hardware thread. */
    unsigned jobs = 0;

    /**
     * Stop after this many newly-executed cells (0 = no limit).
     * Lets callers simulate interruption and lets the CLI spread a
     * huge sweep across invocations.
     */
    std::size_t maxCells = 0;

    /** Per-cell progress callback (invoked in flush order). */
    std::function<void(const SweepCell &, const CellResult &)>
        onCellDone;

    /**
     * Run-wide stats registry: every executed cell's sim counters
     * are merged into it (merge is commutative, so the dump stays
     * `--jobs`-independent), plus sweep/pool host counters at the
     * end (added, so sequential sweeps accumulate). The store is
     * NOT exported here — the store's owner calls
     * ResultStore::exportStats itself, under the prefix it wants.
     * Not owned; null = no collection.
     */
    StatRegistry *stats = nullptr;

    /**
     * Also embed each cell's own sim scalars into its persisted
     * CellResult (the opt-in `stats` block). Off by default: stores
     * written without it stay byte-identical to earlier versions.
     */
    bool cellStats = false;

    /** Span tracer: one "cell" span per executed cell ("chain" span
     *  per fork chain), tagged with the worker that ran it. Not
     *  owned; null = no tracing. */
    SpanTracer *tracer = nullptr;

    /**
     * Fork-based execution (DESIGN.md §11): cells that differ only
     * in run lengths (same workload, predictor recipe, and mode —
     * equal SweepCell::forkGroupKey()) share one simulation, cloned
     * at each shorter cell's snapshot point, so every shared warmup
     * prefix is simulated once. Stores, exports, and stats stay
     * bit-identical with forking on or off (and across `jobs`);
     * off forces the one-full-simulation-per-cell replay path.
     */
    bool fork = true;

    /**
     * Batched execution (DESIGN.md §12): all pending cells of one
     * (workload, mode) pair run as a single lockstep pass over a
     * shared committed stream — the workload's CFG walk or trace
     * decode is paid once for the whole pass, and the shared record
     * window stays cache-resident while every cell crosses it. Fork
     * groups still fork inside the pass (each shorter member peels
     * off its group's canonical lane at its snapshot point, exactly
     * the `fork` seam), and cells the chain path must exclude
     * (oracle, zero-warmup, short-measure timing) ride as
     * independent single lanes instead of being excluded. Stores,
     * exports, and per-cell stats stay bit-identical with batching
     * on or off. Supersedes `fork` unit planning when set.
     */
    bool batch = false;
};

struct SweepRunSummary
{
    std::size_t totalCells = 0;    ///< cells in the spec's grid
    std::size_t skippedCells = 0;  ///< already present in the store
    std::size_t executedCells = 0; ///< newly computed this run
};

/**
 * Run @p spec against @p store; see the determinism contract above.
 * Cells of a `mode = timing` grid run through the cycle-level
 * TimingSim instead of the accuracy engine; both kinds persist as
 * CellResults in the same store.
 */
SweepRunSummary runSweep(const SweepSpec &spec, ResultStore &store,
                         const SweepRunOptions &opt = {});

/**
 * Aggregate the stored stats of every cell matching @p pred — how
 * the ported figure benches slice a grid into table rows (fatal if
 * nothing matches or a matching cell was never run).
 */
AggregateResult aggregateCells(
    const ResultStore &store, const std::vector<SweepCell> &cells,
    const std::function<bool(const SweepCell &)> &pred);

/**
 * Arithmetic mean of per-cell uPC over every timing cell matching
 * @p pred (fatal if nothing matches or a matching cell was never
 * run) — how the timing figures (Figs. 9-10) slice their grids.
 */
double meanUpcCells(
    const ResultStore &store, const std::vector<SweepCell> &cells,
    const std::function<bool(const SweepCell &)> &pred);

} // namespace pcbp

#endif // PCBP_SWEEP_RUNNER_HH
