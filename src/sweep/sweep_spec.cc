#include "sweep/sweep_spec.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace pcbp
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(s);
    while (std::getline(is, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::uint64_t
parseUint(const std::string &s, int lineno, const char *key)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        pcbp_fatal("sweep: line ", lineno, ": bad value '", s,
                   "' for '", key, "' (expected a non-negative "
                   "integer)");
    return std::stoull(s);
}

bool
parseOnOff(const std::string &s, const char *key)
{
    if (s == "on" || s == "true" || s == "1")
        return true;
    if (s == "off" || s == "false" || s == "0")
        return false;
    pcbp_fatal("sweep: bad value '", s, "' for '", key,
               "' (expected on/off)");
}

std::string
criticAxisName(const std::optional<CriticKind> &c)
{
    return c ? criticKindName(*c) : "none";
}

bool
criticHasFilter(const std::optional<CriticKind> &c)
{
    return c && (*c == CriticKind::TaggedGshare ||
                 *c == CriticKind::FilteredPerceptron);
}

} // namespace

// --------------------------------------------------------- SweepCell

std::string
SweepCell::key() const
{
    return keyImpl(true);
}

std::string
SweepCell::forkGroupKey() const
{
    return keyImpl(false);
}

std::string
SweepCell::keyImpl(bool with_run_lengths) const
{
    std::ostringstream os;
    os << "w=" << workload->name
       << ";p=" << prophetKindName(spec.prophet)
       << ";pb=" << budgetName(spec.prophetBudget)
       << ";c=" << criticAxisName(spec.critic)
       << ";cb=" << (spec.critic ? budgetName(spec.criticBudget) : "-")
       << ";fb=" << (spec.critic ? spec.futureBits : 0)
       << ";sh=" << (spec.speculativeHistory ? 1 : 0)
       << ";rh=" << (spec.repairHistory ? 1 : 0);
    if (with_run_lengths)
        os << ";mb=" << measureBranches << ";wb=" << warmupBranches;
    // Non-default knobs append so plain accuracy-grid keys (and
    // stores written before these knobs existed) are unchanged.
    if (spec.filterTagBits)
        os << ";tb=" << spec.filterTagBits;
    if (oracleFutureBits)
        os << ";ofb=1";
    if (timing)
        os << ";md=t";
    return os.str();
}

std::uint64_t
SweepCell::hash() const
{
    // FNV-1a, 64-bit.
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : key()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

EngineConfig
SweepCell::engineConfig() const
{
    EngineConfig cfg = engineConfigFor(*workload);
    cfg.measureBranches = measureBranches;
    cfg.warmupBranches = warmupBranches;
    cfg.oracleFutureBits = oracleFutureBits;
    return cfg;
}

TimingConfig
SweepCell::timingConfig() const
{
    TimingConfig cfg = timingConfigFor(*workload);
    cfg.measureBranches = measureBranches;
    cfg.warmupBranches = warmupBranches;
    return cfg;
}

// --------------------------------------------------------- SweepSpec

SweepSpec
SweepSpec::parse(const std::string &text)
{
    SweepSpec spec;
    std::set<std::string> seen;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            pcbp_fatal("sweep: line ", lineno, ": expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (!seen.insert(key).second)
            pcbp_fatal("sweep: line ", lineno, ": duplicate key '", key,
                       "'");
        const auto items = splitList(value);
        if (items.empty())
            pcbp_fatal("sweep: line ", lineno, ": empty value for '",
                       key, "'");

        if (key == "name") {
            spec.name = value;
        } else if (key == "prophet") {
            spec.axes.prophets.clear();
            for (const auto &s : items)
                spec.axes.prophets.push_back(parseProphetKind(s));
        } else if (key == "prophet_budget") {
            spec.axes.prophetBudgets.clear();
            for (const auto &s : items)
                spec.axes.prophetBudgets.push_back(parseBudget(s));
        } else if (key == "critic") {
            spec.axes.critics.clear();
            for (const auto &s : items)
                spec.axes.critics.push_back(
                    s == "none" ? std::nullopt
                                : std::optional<CriticKind>(
                                      parseCriticKind(s)));
        } else if (key == "critic_budget") {
            spec.axes.criticBudgets.clear();
            for (const auto &s : items)
                spec.axes.criticBudgets.push_back(parseBudget(s));
        } else if (key == "future_bits") {
            spec.axes.futureBits.clear();
            for (const auto &s : items)
                spec.axes.futureBits.push_back(static_cast<unsigned>(
                    parseUint(s, lineno, "future_bits")));
        } else if (key == "spec_history") {
            spec.axes.speculativeHistory.clear();
            for (const auto &s : items)
                spec.axes.speculativeHistory.push_back(
                    parseOnOff(s, "spec_history"));
        } else if (key == "repair_history") {
            spec.axes.repairHistory.clear();
            for (const auto &s : items)
                spec.axes.repairHistory.push_back(
                    parseOnOff(s, "repair_history"));
        } else if (key == "filter_tag_bits") {
            spec.axes.filterTagBits.clear();
            for (const auto &s : items)
                spec.axes.filterTagBits.push_back(static_cast<unsigned>(
                    parseUint(s, lineno, "filter_tag_bits")));
        } else if (key == "oracle") {
            spec.axes.oracleFutureBits.clear();
            for (const auto &s : items)
                spec.axes.oracleFutureBits.push_back(
                    parseOnOff(s, "oracle"));
        } else if (key == "mode") {
            if (value == "timing")
                spec.timing = true;
            else if (value == "accuracy")
                spec.timing = false;
            else
                pcbp_fatal("sweep: line ", lineno, ": bad value '",
                           value, "' for 'mode' (expected "
                           "accuracy/timing)");
        } else if (key == "branches") {
            spec.branches = parseUint(value, lineno, "branches");
        } else if (key == "warmup") {
            spec.warmups.clear();
            for (const auto &s : items)
                spec.warmups.push_back(parseUint(s, lineno, "warmup"));
        } else if (key == "workloads") {
            spec.workloads = items;
        } else {
            pcbp_fatal("sweep: line ", lineno, ": unknown key '", key,
                       "' (known: name, prophet, prophet_budget, "
                       "critic, critic_budget, future_bits, "
                       "spec_history, repair_history, filter_tag_bits, "
                       "oracle, mode, branches, warmup, workloads)");
        }
    }
    if (spec.workloads.empty())
        pcbp_fatal("sweep: no workloads");
    return spec;
}

SweepSpec
SweepSpec::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        pcbp_fatal("sweep: cannot read spec file '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return parse(os.str());
}

std::string
SweepSpec::serialize() const
{
    auto join = [](const std::vector<std::string> &items) {
        std::string s;
        for (const auto &i : items) {
            if (!s.empty())
                s += ", ";
            s += i;
        }
        return s;
    };

    std::vector<std::string> prophets, pbudgets, critics, cbudgets, fbs,
        shs, rhs, tbs, oracles;
    for (const auto k : axes.prophets)
        prophets.push_back(prophetKindName(k));
    for (const auto b : axes.prophetBudgets)
        pbudgets.push_back(budgetName(b));
    for (const auto &c : axes.critics)
        critics.push_back(criticAxisName(c));
    for (const auto b : axes.criticBudgets)
        cbudgets.push_back(budgetName(b));
    for (const auto f : axes.futureBits)
        fbs.push_back(std::to_string(f));
    for (const bool v : axes.speculativeHistory)
        shs.push_back(v ? "on" : "off");
    for (const bool v : axes.repairHistory)
        rhs.push_back(v ? "on" : "off");
    for (const auto t : axes.filterTagBits)
        tbs.push_back(std::to_string(t));
    for (const bool v : axes.oracleFutureBits)
        oracles.push_back(v ? "on" : "off");

    std::ostringstream os;
    os << "name = " << name << "\n"
       << "prophet = " << join(prophets) << "\n"
       << "prophet_budget = " << join(pbudgets) << "\n"
       << "critic = " << join(critics) << "\n"
       << "critic_budget = " << join(cbudgets) << "\n"
       << "future_bits = " << join(fbs) << "\n"
       << "spec_history = " << join(shs) << "\n"
       << "repair_history = " << join(rhs) << "\n"
       << "filter_tag_bits = " << join(tbs) << "\n"
       << "oracle = " << join(oracles) << "\n";
    if (timing)
        os << "mode = timing\n";
    if (branches)
        os << "branches = " << branches << "\n";
    if (!warmups.empty()) {
        std::vector<std::string> wbs;
        for (const auto wb : warmups)
            wbs.push_back(std::to_string(wb));
        os << "warmup = " << join(wbs) << "\n";
    }
    os << "workloads = " << join(workloads) << "\n";
    return os.str();
}

std::vector<const Workload *>
SweepSpec::resolveWorkloads() const
{
    std::vector<const Workload *> out;
    auto push = [&](const Workload *w) {
        if (std::find(out.begin(), out.end(), w) == out.end())
            out.push_back(w);
    };
    for (const auto &sel : workloads) {
        if (sel == "AVG") {
            for (const Workload *w : avgSet())
                push(w);
            continue;
        }
        if (sel == "ALL") {
            for (const auto &w : allWorkloads())
                push(&w);
            continue;
        }
        bool is_suite = false;
        for (const auto &w : allWorkloads())
            is_suite |= w.suite == sel;
        if (is_suite) {
            for (const Workload *w : suiteWorkloads(sel))
                push(w);
            continue;
        }
        push(&workloadByName(sel));
    }
    return out;
}

std::vector<SweepCell>
SweepSpec::cells() const
{
    const auto set = resolveWorkloads();
    if (set.empty())
        pcbp_fatal("sweep '", name, "': workload selectors resolve to "
                   "nothing");

    const SweepAxes &a = axes;
    const std::size_t dims[9] = {
        a.prophets.size(),      a.prophetBudgets.size(),
        a.critics.size(),       a.criticBudgets.size(),
        a.futureBits.size(),    a.speculativeHistory.size(),
        a.repairHistory.size(), a.filterTagBits.size(),
        a.oracleFutureBits.size(),
    };
    std::size_t num_configs = 1;
    for (const std::size_t d : dims) {
        if (d == 0)
            pcbp_fatal("sweep '", name, "': empty axis");
        num_configs *= d;
    }

    std::vector<SweepCell> out;
    std::set<std::string> dedup;
    for (std::size_t ci = 0; ci < num_configs; ++ci) {
        // Odometer over the axes, last axis fastest.
        std::size_t sub[9];
        std::size_t rem = ci;
        for (int d = 8; d >= 0; --d) {
            sub[d] = rem % dims[d];
            rem /= dims[d];
        }

        HybridSpec spec;
        spec.prophet = a.prophets[sub[0]];
        spec.prophetBudget = a.prophetBudgets[sub[1]];
        spec.critic = a.critics[sub[2]];
        spec.criticBudget = a.criticBudgets[sub[3]];
        spec.futureBits = spec.critic ? a.futureBits[sub[4]] : 0;
        spec.speculativeHistory = a.speculativeHistory[sub[5]];
        spec.repairHistory = a.repairHistory[sub[6]];
        // Only filtered critics have tags to resize; only critiqued
        // runs can consume oracle bits. Collapsing the axes here
        // (with key-level dedup below) keeps inapplicable grid
        // points from multiplying into duplicate cells.
        spec.filterTagBits =
            criticHasFilter(spec.critic) ? a.filterTagBits[sub[7]] : 0;
        const bool oracle =
            spec.critic && a.oracleFutureBits[sub[8]];
        if (oracle && timing)
            pcbp_fatal("sweep '", name, "': the oracle axis requires "
                       "the accuracy engine (mode = accuracy)");

        for (const Workload *w : set) {
            SweepCell base;
            base.spec = spec;
            base.workload = w;
            base.timing = timing;
            base.oracleFutureBits = oracle;
            if (branches) {
                base.measureBranches = std::max<std::uint64_t>(
                    std::uint64_t(double(branches) * benchScale()),
                    1000);
                base.warmupBranches = std::max<std::uint64_t>(
                    base.measureBranches / 10, 100);
            } else if (timing) {
                const TimingConfig cfg = timingConfigFor(*w);
                base.measureBranches = cfg.measureBranches;
                base.warmupBranches = cfg.warmupBranches;
            } else {
                const EngineConfig cfg = engineConfigFor(*w);
                base.measureBranches = cfg.measureBranches;
                base.warmupBranches = cfg.warmupBranches;
            }
            // The warmup axis expands innermost: cells differing only
            // in warmup sit adjacently and share a fork group.
            std::vector<std::uint64_t> wbs;
            if (warmups.empty()) {
                wbs.push_back(base.warmupBranches);
            } else {
                for (const std::uint64_t wb : warmups)
                    wbs.push_back(std::max<std::uint64_t>(
                        std::uint64_t(double(wb) * benchScale()), 100));
            }
            for (const std::uint64_t wb : wbs) {
                SweepCell cell = base;
                cell.warmupBranches = wb;
                // Collapsed axes (baseline rows, unfiltered critics,
                // scale-flattened warmups) produce equal keys; dedup
                // keeps the first cell.
                if (!dedup.insert(cell.key()).second)
                    continue;
                cell.index = out.size();
                out.push_back(std::move(cell));
            }
        }
    }
    return out;
}

} // namespace pcbp
