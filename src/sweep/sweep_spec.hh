/**
 * @file
 * Declarative experiment grids.
 *
 * Every headline result in the paper (Fig. 5-10, Table 4) is a
 * cartesian grid — predictors x budgets x future bits x workloads. A
 * SweepSpec names that grid once, either programmatically or in a
 * small dependency-free text format:
 *
 *     name          = fig7-16kb
 *     prophet       = gshare, 2Bc-gskew, perceptron
 *     prophet_budget = 8KB
 *     critic        = none, f.perceptron, t.gshare
 *     critic_budget = 8KB
 *     future_bits   = 8
 *     workloads     = AVG
 *
 * Lists are comma-separated; '#' starts a comment. Workload
 * selectors resolve, in order: AVG (the 14-workload basket), ALL
 * (every registered workload), a suite name (INT00, ..., FIG5, GCC),
 * or an individual workload name — including trace:<path>, which
 * sweeps over a recorded PCBPTRC1 committed stream (suites.hh).
 *
 * The expansion into SweepCells is deterministic, and each cell
 * carries a canonical content key — the unit of resume in the
 * ResultStore and of scheduling in the runner.
 */

#ifndef PCBP_SWEEP_SWEEP_SPEC_HH
#define PCBP_SWEEP_SWEEP_SPEC_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/driver.hh"

namespace pcbp
{

/** One (configuration, workload) grid point. */
struct SweepCell
{
    /** Position in the spec's expansion order. */
    std::size_t index = 0;

    HybridSpec spec;
    const Workload *workload = nullptr;

    /** Engine run lengths, after overrides and PCBP_BENCH_SCALE. */
    std::uint64_t measureBranches = 0;
    std::uint64_t warmupBranches = 0;

    /**
     * Canonical content key, e.g.
     * "w=unzip;p=perceptron;pb=8KB;c=t.gshare;cb=8KB;fb=8;sh=1;rh=1;
     *  mb=300000;wb=30000". Two cells with equal keys compute the
     * same result; the key changes whenever anything that affects
     * the simulation (including run lengths) changes.
     */
    std::string key() const;

    /** 64-bit FNV-1a hash of key(). */
    std::uint64_t hash() const;

    /** Engine configuration for this cell. */
    EngineConfig engineConfig() const;
};

/** The grid axes; empty axes take single-value defaults. */
struct SweepAxes
{
    std::vector<ProphetKind> prophets{ProphetKind::Perceptron};
    std::vector<Budget> prophetBudgets{Budget::B8KB};
    /** nullopt = prophet-alone baseline row. */
    std::vector<std::optional<CriticKind>> critics{
        CriticKind::TaggedGshare};
    std::vector<Budget> criticBudgets{Budget::B8KB};
    std::vector<unsigned> futureBits{8};
    std::vector<bool> speculativeHistory{true};
    std::vector<bool> repairHistory{true};
};

class SweepSpec
{
  public:
    std::string name = "sweep";
    SweepAxes axes;

    /** Workload selectors, resolved lazily by cells(). */
    std::vector<std::string> workloads{"AVG"};

    /**
     * Override measured branches per cell (warmup = a tenth);
     * 0 keeps each workload's own default. PCBP_BENCH_SCALE applies
     * either way.
     */
    std::uint64_t branches = 0;

    /** Parse the text format (fatal with a message on bad input). */
    static SweepSpec parse(const std::string &text);

    /** Parse a spec file (fatal if unreadable). */
    static SweepSpec parseFile(const std::string &path);

    /** Emit the text format; parse(serialize()) round-trips. */
    std::string serialize() const;

    /**
     * Expand the grid in deterministic order (config-major, workload
     * fastest). Baseline rows (critic = none) collapse the critic
     * budget and future-bit axes so no duplicate cells appear.
     */
    std::vector<SweepCell> cells() const;

    /** Resolved workload list (selector order, deduplicated). */
    std::vector<const Workload *> resolveWorkloads() const;
};

} // namespace pcbp

#endif // PCBP_SWEEP_SWEEP_SPEC_HH
