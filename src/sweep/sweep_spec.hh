/**
 * @file
 * Declarative experiment grids.
 *
 * Every headline result in the paper (Fig. 5-10, Table 4) is a
 * cartesian grid — predictors x budgets x future bits x workloads. A
 * SweepSpec names that grid once, either programmatically or in a
 * small dependency-free text format:
 *
 *     name          = fig7-16kb
 *     prophet       = gshare, 2Bc-gskew, perceptron
 *     prophet_budget = 8KB
 *     critic        = none, f.perceptron, t.gshare
 *     critic_budget = 8KB
 *     future_bits   = 8
 *     workloads     = AVG
 *
 * Lists are comma-separated; '#' starts a comment. Workload
 * selectors resolve, in order: AVG (the 14-workload basket), ALL
 * (every registered workload), a suite name (INT00, ..., FIG5, GCC),
 * or an individual workload name — including trace:<path>, which
 * sweeps over a recorded PCBPTRC1 committed stream (suites.hh).
 *
 * A grid runs on the accuracy engine by default; `mode = timing`
 * runs every cell through the cycle-level timing model instead
 * (Figs. 9-10: uPC, fetched uops). The §4/§6 ablation axes —
 * `filter_tag_bits` (critic filter tag width, 0 = Table-3 default)
 * and `oracle` (feed the critic correct-path future bits) — make
 * the ablation benches declarative too.
 *
 * The expansion into SweepCells is deterministic, and each cell
 * carries a canonical content key — the unit of resume in the
 * ResultStore and of scheduling in the runner.
 */

#ifndef PCBP_SWEEP_SWEEP_SPEC_HH
#define PCBP_SWEEP_SWEEP_SPEC_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/driver.hh"

namespace pcbp
{

/**
 * One (configuration, workload) grid point.
 *
 * A cell is a value object: it borrows its Workload from the global
 * registry (whose entries live for the process) and owns everything
 * else, so cells can be copied and executed on any thread. Executing
 * a cell builds a private program and predictor from the recipe, so
 * no state leaks between cells whatever the execution order — the
 * basis of the runner's determinism contract.
 */
struct SweepCell
{
    /** Position in the spec's expansion order. */
    std::size_t index = 0;

    HybridSpec spec;
    const Workload *workload = nullptr;

    /** Run the timing model instead of the accuracy engine. */
    bool timing = false;

    /** Feed oracle (correct-path) future bits — §6 ablation. */
    bool oracleFutureBits = false;

    /** Engine run lengths, after overrides and PCBP_BENCH_SCALE. */
    std::uint64_t measureBranches = 0;
    std::uint64_t warmupBranches = 0;

    /**
     * Canonical content key, e.g.
     * "w=unzip;p=perceptron;pb=8KB;c=t.gshare;cb=8KB;fb=8;sh=1;rh=1;
     *  mb=300000;wb=30000". Two cells with equal keys compute the
     * same result; the key changes whenever anything that affects
     * the simulation (including run lengths) changes. Non-default
     * knobs (timing mode, oracle bits, tag-width override) append
     * suffixes (";md=t", ";ofb=1", ";tb=N"), so keys of plain
     * accuracy grids — and stores already on disk — are unchanged.
     */
    std::string key() const;

    /** 64-bit FNV-1a hash of key(). */
    std::uint64_t hash() const;

    /**
     * key() minus the run-length fields (mb=, wb=). Cells sharing a
     * fork-group key run the *same simulation* — workload, predictor
     * recipe, mode — and differ only in where warmup ends and how
     * far the measured window runs, so they are prefix-chained runs
     * of one canonical simulation: the runner simulates the longest
     * once and forks cloned state into the others (DESIGN.md §11).
     */
    std::string forkGroupKey() const;

    /** Engine configuration for this cell (accuracy cells). */
    EngineConfig engineConfig() const;

    /** Timing configuration for this cell (timing cells). */
    TimingConfig timingConfig() const;

  private:
    std::string keyImpl(bool with_run_lengths) const;
};

/** The grid axes; empty axes take single-value defaults. */
struct SweepAxes
{
    std::vector<ProphetKind> prophets{ProphetKind::Perceptron};
    std::vector<Budget> prophetBudgets{Budget::B8KB};
    /** nullopt = prophet-alone baseline row. */
    std::vector<std::optional<CriticKind>> critics{
        CriticKind::TaggedGshare};
    std::vector<Budget> criticBudgets{Budget::B8KB};
    std::vector<unsigned> futureBits{8};
    std::vector<bool> speculativeHistory{true};
    std::vector<bool> repairHistory{true};
    /** Critic filter tag width; 0 = Table-3 default (§4 ablation). */
    std::vector<unsigned> filterTagBits{0};
    /** Oracle future bits on/off (§6 ablation; accuracy mode only). */
    std::vector<bool> oracleFutureBits{false};
};

class SweepSpec
{
  public:
    std::string name = "sweep";
    SweepAxes axes;

    /** Workload selectors, resolved lazily by cells(). */
    std::vector<std::string> workloads{"AVG"};

    /**
     * Run every cell through the cycle-level timing model instead of
     * the accuracy engine (text format: `mode = timing`). Incompatible
     * with the oracle axis, which only the engine implements.
     */
    bool timing = false;

    /**
     * Override measured branches per cell (warmup = a tenth);
     * 0 keeps each workload's own default (for timing grids, the
     * workload's timing budget). PCBP_BENCH_SCALE applies either way.
     */
    std::uint64_t branches = 0;

    /**
     * Warmup axis (text format: `warmup = 5000, 10000, ...`):
     * absolute warmup branch counts, each expanding into its own
     * cell per configuration (PCBP_BENCH_SCALE applies, floored at
     * 100). Empty keeps the derived default (a tenth of the measured
     * budget, or the workload's own). The warmup-sensitivity figure
     * and the fork benches sweep this axis; its cells differ only in
     * run lengths, so they share one forked simulation per
     * configuration (DESIGN.md §11).
     */
    std::vector<std::uint64_t> warmups;

    /** Parse the text format (fatal with a message on bad input). */
    static SweepSpec parse(const std::string &text);

    /** Parse a spec file (fatal if unreadable). */
    static SweepSpec parseFile(const std::string &path);

    /** Emit the text format; parse(serialize()) round-trips. */
    std::string serialize() const;

    /**
     * Expand the grid in deterministic order (config-major, workload
     * fastest). Axes that cannot affect a row collapse so no
     * duplicate cells appear: baseline rows (critic = none) collapse
     * the critic budget, future-bit, tag-width, and oracle axes, and
     * unfiltered critics collapse the tag-width axis (no tags).
     */
    std::vector<SweepCell> cells() const;

    /** Resolved workload list (selector order, deduplicated). */
    std::vector<const Workload *> resolveWorkloads() const;
};

} // namespace pcbp

#endif // PCBP_SWEEP_SWEEP_SPEC_HH
