#include "workload/behavior.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcbp
{

// ---------------------------------------------------------------- Biased

BiasedBehavior::BiasedBehavior(double p, std::uint64_t seed_)
    : prob(p), seed(seed_), rng(seed_)
{
    pcbp_assert(p >= 0.0 && p <= 1.0);
}

bool
BiasedBehavior::nextOutcome(const ArchContext &)
{
    return rng.nextBool(prob);
}

void
BiasedBehavior::reset()
{
    rng = Rng(seed);
}

std::string
BiasedBehavior::describe() const
{
    return "biased(" + std::to_string(prob) + ")";
}

// ------------------------------------------------------------------ Loop

LoopBehavior::LoopBehavior(unsigned period_) : period(period_)
{
    pcbp_assert(period >= 2, "loop period must be >= 2");
}

bool
LoopBehavior::nextOutcome(const ArchContext &)
{
    ++count;
    if (count == period) {
        count = 0;
        return false; // loop exit
    }
    return true; // loop back
}

void
LoopBehavior::reset()
{
    count = 0;
}

std::string
LoopBehavior::describe() const
{
    return "loop(" + std::to_string(period) + ")";
}

// --------------------------------------------------------------- Pattern

PatternBehavior::PatternBehavior(std::vector<bool> pattern_, double noise_,
                                 std::uint64_t seed_)
    : pattern(std::move(pattern_)), noise(noise_), seed(seed_), rng(seed_)
{
    pcbp_assert(!pattern.empty());
}

bool
PatternBehavior::nextOutcome(const ArchContext &)
{
    bool out = pattern[cursor];
    cursor = (cursor + 1) % pattern.size();
    if (noise > 0.0 && rng.nextBool(noise))
        out = !out;
    return out;
}

void
PatternBehavior::reset()
{
    cursor = 0;
    rng = Rng(seed);
}

std::string
PatternBehavior::describe() const
{
    std::string s = "pattern(";
    for (bool b : pattern)
        s.push_back(b ? 'T' : 'N');
    return s + ")";
}

// ----------------------------------------------------------- LocalParity

LocalParityBehavior::LocalParityBehavior(unsigned width_, double noise_,
                                         std::uint64_t seed_)
    : width(width_), noise(noise_), seed(seed_), rng(seed_)
{
    pcbp_assert(width >= 1 && width <= 63);
}

bool
LocalParityBehavior::nextOutcome(const ArchContext &)
{
    const std::uint64_t window = own & maskBits(width);
    bool out = (__builtin_popcountll(window) % 2 == 0);
    if (noise > 0.0 && rng.nextBool(noise))
        out = !out;
    own = (own << 1) | (out ? 1 : 0);
    return out;
}

void
LocalParityBehavior::reset()
{
    own = 0;
    rng = Rng(seed);
}

std::string
LocalParityBehavior::describe() const
{
    return "local-parity(" + std::to_string(width) + ")";
}

// ---------------------------------------------------------- GlobalParity

GlobalParityBehavior::GlobalParityBehavior(unsigned lag_, unsigned width_,
                                           bool invert_, double noise_,
                                           std::uint64_t seed_)
    : lag(lag_), width(width_), invert(invert_), noise(noise_),
      seed(seed_), rng(seed_)
{
    pcbp_assert(width >= 1);
    pcbp_assert(lag + width <= HistoryRegister::capacity);
}

bool
GlobalParityBehavior::nextOutcome(const ArchContext &ctx)
{
    unsigned ones = 0;
    for (unsigned i = 0; i < width; ++i)
        ones += ctx.committed.bit(lag + i) ? 1 : 0;
    bool out = (ones % 2 == 1) != invert;
    if (noise > 0.0 && rng.nextBool(noise))
        out = !out;
    return out;
}

void
GlobalParityBehavior::reset()
{
    rng = Rng(seed);
}

std::string
GlobalParityBehavior::describe() const
{
    return "global-parity(lag=" + std::to_string(lag) + ",w=" +
           std::to_string(width) + ")";
}

// ------------------------------------------------------------- GlobalXor

GlobalXorBehavior::GlobalXorBehavior(unsigned lag_a, unsigned lag_b,
                                     bool invert_, double noise_,
                                     std::uint64_t seed_)
    : lagA(lag_a), lagB(lag_b), invert(invert_), noise(noise_),
      seed(seed_), rng(seed_)
{
    pcbp_assert(lagA != lagB);
    pcbp_assert(lagA < HistoryRegister::capacity &&
                lagB < HistoryRegister::capacity);
}

bool
GlobalXorBehavior::nextOutcome(const ArchContext &ctx)
{
    bool out =
        (ctx.committed.bit(lagA) != ctx.committed.bit(lagB)) != invert;
    if (noise > 0.0 && rng.nextBool(noise))
        out = !out;
    return out;
}

void
GlobalXorBehavior::reset()
{
    rng = Rng(seed);
}

std::string
GlobalXorBehavior::describe() const
{
    return "global-xor(" + std::to_string(lagA) + "," +
           std::to_string(lagB) + ")";
}

// ------------------------------------------------------------ GlobalEcho

GlobalEchoBehavior::GlobalEchoBehavior(unsigned lag_, bool invert_,
                                       double noise_, std::uint64_t seed_)
    : lag(lag_), invert(invert_), noise(noise_), seed(seed_), rng(seed_)
{
    pcbp_assert(lag < HistoryRegister::capacity);
}

bool
GlobalEchoBehavior::nextOutcome(const ArchContext &ctx)
{
    bool out = ctx.committed.bit(lag) != invert;
    if (noise > 0.0 && rng.nextBool(noise))
        out = !out;
    return out;
}

void
GlobalEchoBehavior::reset()
{
    rng = Rng(seed);
}

std::string
GlobalEchoBehavior::describe() const
{
    return "global-echo(lag=" + std::to_string(lag) +
           (invert ? ",inv" : "") + ")";
}

// ------------------------------------------------------------ PhaseClock

PhaseClock::PhaseClock(const PhaseClockSpec &spec_)
    : spec(spec_), rng(spec_.seed ^ 0x9ca5eULL)
{
    pcbp_assert(spec.lo >= 1 && spec.lo <= spec.hi);
    nextBoundary = static_cast<std::uint64_t>(
        rng.nextRange(spec.lo, spec.hi));
}

bool
PhaseClock::phaseAt(std::uint64_t t)
{
    while (t >= nextBoundary) {
        phase = !phase;
        nextBoundary += static_cast<std::uint64_t>(
            rng.nextRange(spec.lo, spec.hi));
    }
    return phase;
}

void
PhaseClock::reset()
{
    rng = Rng(spec.seed ^ 0x9ca5eULL);
    phase = false;
    nextBoundary = static_cast<std::uint64_t>(
        rng.nextRange(spec.lo, spec.hi));
}

// ----------------------------------------------------------- PhaseReveal

PhaseRevealBehavior::PhaseRevealBehavior(const PhaseClockSpec &clock_,
                                         double fidelity_,
                                         std::uint64_t seed_)
    : clock(clock_), fidelity(fidelity_), seed(seed_), rng(seed_)
{
    pcbp_assert(fidelity >= 0.5 && fidelity <= 1.0);
}

bool
PhaseRevealBehavior::nextOutcome(const ArchContext &ctx)
{
    const bool ph = clock.phaseAt(ctx.commitIndex);
    return rng.nextBool(fidelity) ? ph : !ph;
}

void
PhaseRevealBehavior::reset()
{
    clock.reset();
    rng = Rng(seed);
}

std::string
PhaseRevealBehavior::describe() const
{
    return "phase-reveal(" + std::to_string(fidelity) + ")";
}

// -------------------------------------------------------------- PhaseXor

PhaseXorBehavior::PhaseXorBehavior(const PhaseClockSpec &clock_,
                                   std::vector<bool> pattern_,
                                   double noise_, std::uint64_t seed_)
    : clock(clock_), pattern(std::move(pattern_)), noise(noise_),
      seed(seed_), rng(seed_)
{
    pcbp_assert(!pattern.empty());
}

bool
PhaseXorBehavior::nextOutcome(const ArchContext &ctx)
{
    const bool ph = clock.phaseAt(ctx.commitIndex);
    bool out = ph != pattern[cursor];
    cursor = (cursor + 1) % pattern.size();
    if (noise > 0.0 && rng.nextBool(noise))
        out = !out;
    return out;
}

void
PhaseXorBehavior::reset()
{
    clock.reset();
    cursor = 0;
    rng = Rng(seed);
}

std::string
PhaseXorBehavior::describe() const
{
    return "phase-xor(p=" + std::to_string(pattern.size()) + ")";
}

// ------------------------------------------------------------ PhasedLoop

PhasedLoopBehavior::PhasedLoopBehavior(const PhaseClockSpec &clock_,
                                       unsigned period_a,
                                       unsigned period_b)
    : clock(clock_), periodA(period_a), periodB(period_b),
      curPeriod(period_a)
{
    pcbp_assert(period_a >= 2 && period_b >= 2);
    pcbp_assert(period_a != period_b,
                "a phased loop needs distinct trip counts");
}

bool
PhasedLoopBehavior::nextOutcome(const ArchContext &ctx)
{
    if (count == 0) {
        // Sample the phase at loop entry so one visit is coherent.
        curPeriod = clock.phaseAt(ctx.commitIndex) ? periodB : periodA;
    }
    ++count;
    if (count >= curPeriod) {
        count = 0;
        return false; // exit
    }
    return true; // loop back
}

void
PhasedLoopBehavior::reset()
{
    clock.reset();
    curPeriod = periodA;
    count = 0;
}

std::string
PhasedLoopBehavior::describe() const
{
    return "phased-loop(" + std::to_string(periodA) + "/" +
           std::to_string(periodB) + ")";
}

// ---------------------------------------------------------------- Phased

PhasedBehavior::PhasedBehavior(unsigned period_lo, unsigned period_hi,
                               double bias_a, double bias_b,
                               std::uint64_t seed_)
    : periodLo(period_lo), periodHi(period_hi), biasA(bias_a),
      biasB(bias_b), seed(seed_), rng(seed_)
{
    pcbp_assert(period_lo >= 1 && period_lo <= period_hi);
    rollPhaseLength();
}

void
PhasedBehavior::rollPhaseLength()
{
    remaining = static_cast<unsigned>(
        rng.nextRange(periodLo, periodHi));
}

bool
PhasedBehavior::nextOutcome(const ArchContext &)
{
    if (remaining == 0) {
        inA = !inA;
        rollPhaseLength();
    } else {
        --remaining;
    }
    return rng.nextBool(inA ? biasA : biasB);
}

void
PhasedBehavior::reset()
{
    rng = Rng(seed);
    inA = true;
    rollPhaseLength();
}

std::string
PhasedBehavior::describe() const
{
    return "phased(" + std::to_string(periodLo) + ".." +
           std::to_string(periodHi) + ")";
}

} // namespace pcbp
