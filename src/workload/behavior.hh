/**
 * @file
 * Branch behavior models for the synthetic workload substrate.
 *
 * A BranchBehavior generates the architectural outcome stream of one
 * static branch. Outcomes may depend on the branch's own private
 * state (loop counters, pattern cursors, RNG streams) and on the
 * *committed* global outcome history — never on speculative state —
 * so the architectural path of a program is independent of the
 * predictor driving it (exactly as in real hardware, where wrong
 * paths have no architectural effect).
 *
 * The models span the axes that matter for prophet/critic behavior:
 *  - Biased / Lfsr-random: unpredictable noise (stresses the filter);
 *  - Loop / Pattern: classic easy branches;
 *  - LocalParity: needs long per-branch history;
 *  - GlobalParity / GlobalEcho: correlation at a configurable lag —
 *    beyond the prophet's history length the prophet systematically
 *    fails while relay branches at smaller lags leak the missing
 *    information into the prophet's *predictions*, i.e.\ into the
 *    critic's future bits;
 *  - Phased: slow hidden mode switches producing mispredict bursts.
 */

#ifndef PCBP_WORKLOAD_BEHAVIOR_HH
#define PCBP_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/history_register.hh"
#include "common/rng.hh"

namespace pcbp
{

/** Committed architectural context visible to behavior models. */
struct ArchContext
{
    /** Outcomes of all previously committed branches (bit 0 newest). */
    const HistoryRegister &committed;
    /** Number of branches committed so far. */
    std::uint64_t commitIndex;
};

class BranchBehavior;
using BranchBehaviorPtr = std::unique_ptr<BranchBehavior>;

class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /** Produce the next architectural outcome and advance state. */
    virtual bool nextOutcome(const ArchContext &ctx) = 0;

    /** Restore initial state (for re-walking a program). */
    virtual void reset() = 0;

    /**
     * Deep copy, mid-stream state included: the clone's outcome
     * sequence continues exactly where this behavior's would. The
     * fork seam of the sweep runner (DESIGN.md §11) relies on this.
     */
    virtual BranchBehaviorPtr clone() const = 0;

    /** Short description, e.g.\ "loop(7)". */
    virtual std::string describe() const = 0;
};

/** Bernoulli: taken with probability @p p, from a private stream. */
class BiasedBehavior : public BranchBehavior
{
  public:
    BiasedBehavior(double p, std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<BiasedBehavior>(*this);
    }
    std::string describe() const override;

  private:
    double prob;
    std::uint64_t seed;
    Rng rng;
};

/** Loop-back branch: taken (period-1) times, then not-taken. */
class LoopBehavior : public BranchBehavior
{
  public:
    explicit LoopBehavior(unsigned period);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<LoopBehavior>(*this);
    }
    std::string describe() const override;

  private:
    unsigned period;
    unsigned count = 0;
};

/** Repeating fixed pattern, with optional noise flips. */
class PatternBehavior : public BranchBehavior
{
  public:
    PatternBehavior(std::vector<bool> pattern, double noise,
                    std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<PatternBehavior>(*this);
    }
    std::string describe() const override;

  private:
    std::vector<bool> pattern;
    double noise;
    std::uint64_t seed;
    std::size_t cursor = 0;
    Rng rng;
};

/**
 * Outcome = parity of the branch's own last @p width outcomes,
 * inverted, with noise. Self-referential, so it produces a rich but
 * deterministic local sequence of period > width.
 */
class LocalParityBehavior : public BranchBehavior
{
  public:
    LocalParityBehavior(unsigned width, double noise, std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<LocalParityBehavior>(*this);
    }
    std::string describe() const override;

  private:
    unsigned width;
    double noise;
    std::uint64_t seed;
    std::uint64_t own = 0; // branch's own outcome history, bit 0 newest
    Rng rng;
};

/**
 * Outcome = parity of committed global outcomes [lag, lag+width),
 * XOR invert, with noise. With lag+width beyond the prophet's
 * history length the prophet cannot learn it.
 */
class GlobalParityBehavior : public BranchBehavior
{
  public:
    GlobalParityBehavior(unsigned lag, unsigned width, bool invert,
                         double noise, std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<GlobalParityBehavior>(*this);
    }
    std::string describe() const override;

  private:
    unsigned lag;
    unsigned width;
    bool invert;
    double noise;
    std::uint64_t seed;
    Rng rng;
};

/**
 * Outcome = XOR of the committed outcomes at two arbitrary lags,
 * XOR invert, with noise. The workhorse of echo chains with several
 * consumers: XOR of two balanced bits is not linearly separable, so
 * no perceptron learns it, and two consumers reading different lag
 * pairs stay mutually unpredictable.
 */
class GlobalXorBehavior : public BranchBehavior
{
  public:
    GlobalXorBehavior(unsigned lag_a, unsigned lag_b, bool invert,
                      double noise, std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<GlobalXorBehavior>(*this);
    }
    std::string describe() const override;

  private:
    unsigned lagA, lagB;
    bool invert;
    double noise;
    std::uint64_t seed;
    Rng rng;
};

/**
 * Outcome = committed global outcome @p lag branches ago, XOR
 * invert, with noise. A "relay": at small lags it is easy for the
 * prophet, and its prediction then carries the lagged bit into the
 * critic's future window.
 */
class GlobalEchoBehavior : public BranchBehavior
{
  public:
    GlobalEchoBehavior(unsigned lag, bool invert, double noise,
                       std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<GlobalEchoBehavior>(*this);
    }
    std::string describe() const override;

  private:
    unsigned lag;
    bool invert;
    double noise;
    std::uint64_t seed;
    Rng rng;
};

/**
 * A deterministic global phase clock: time (commit index) is split
 * into windows of pseudo-random length in [lo, hi], and the phase
 * bit flips each window. Two behaviors constructed with the same
 * spec see exactly the same phase — this is how a program-wide
 * hidden mode is shared across branches without shared mutable
 * state.
 */
struct PhaseClockSpec
{
    std::uint64_t seed = 1;
    unsigned lo = 500;
    unsigned hi = 3000;
};

/**
 * Cursor over a PhaseClockSpec. phaseAt() must be called with
 * non-decreasing commit indices (amortized O(1)).
 */
class PhaseClock
{
  public:
    explicit PhaseClock(const PhaseClockSpec &spec);

    /** Phase bit at commit index @p t (t non-decreasing). */
    bool phaseAt(std::uint64_t t);

    void reset();

  private:
    PhaseClockSpec spec;
    Rng rng;
    std::uint64_t nextBoundary = 0;
    bool phase = false;
};

/**
 * Phase revealer: outcome = current phase with probability
 * @p fidelity. Easy for any adaptive predictor *within* a phase —
 * which means the prophet's prediction for it leaks the current
 * phase into the critic's future bits.
 */
class PhaseRevealBehavior : public BranchBehavior
{
  public:
    PhaseRevealBehavior(const PhaseClockSpec &clock, double fidelity,
                        std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<PhaseRevealBehavior>(*this);
    }
    std::string describe() const override;

  private:
    PhaseClock clock;
    double fidelity;
    std::uint64_t seed;
    Rng rng;
};

/**
 * Phase consumer: outcome = phase XOR (a repeating local pattern
 * bit), plus noise. Hard for the prophet — its tables see an
 * unstable mixture — but trivially decodable by a critic that can
 * see both the pattern (in its history bits) and the phase (in the
 * future bits, via a revealer's prediction).
 */
class PhaseXorBehavior : public BranchBehavior
{
  public:
    PhaseXorBehavior(const PhaseClockSpec &clock,
                     std::vector<bool> pattern, double noise,
                     std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<PhaseXorBehavior>(*this);
    }
    std::string describe() const override;

  private:
    PhaseClock clock;
    std::vector<bool> pattern;
    double noise;
    std::uint64_t seed;
    std::size_t cursor = 0;
    Rng rng;
};

/**
 * A loop-back branch whose trip count depends on the current phase
 * (periodA in phase 0, periodB in phase 1). Because the block is hot
 * (it executes period times per visit), any adaptive prophet learns
 * the current trip pattern within a couple of visits — so the
 * prophet's predictions for the loop iterations are a *fresh* phase
 * signature, delivered to colder phase-dependent branches through
 * their future bits. This is the paper's bimodal-adaptation channel
 * in distilled form.
 */
class PhasedLoopBehavior : public BranchBehavior
{
  public:
    PhasedLoopBehavior(const PhaseClockSpec &clock, unsigned period_a,
                       unsigned period_b);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<PhasedLoopBehavior>(*this);
    }
    std::string describe() const override;

  private:
    PhaseClock clock;
    unsigned periodA, periodB;
    unsigned curPeriod;
    unsigned count = 0;
};

/**
 * Hidden two-mode process: the branch is strongly biased one way,
 * and the bias flips at random intervals drawn from
 * [period_lo, period_hi]. Models program phase changes.
 */
class PhasedBehavior : public BranchBehavior
{
  public:
    PhasedBehavior(unsigned period_lo, unsigned period_hi,
                   double bias_a, double bias_b, std::uint64_t seed);
    bool nextOutcome(const ArchContext &ctx) override;
    void reset() override;
    BranchBehaviorPtr clone() const override
    {
        return std::make_unique<PhasedBehavior>(*this);
    }
    std::string describe() const override;

  private:
    void rollPhaseLength();

    unsigned periodLo, periodHi;
    double biasA, biasB;
    std::uint64_t seed;
    Rng rng;
    bool inA = true;
    unsigned remaining = 0;
};

} // namespace pcbp

#endif // PCBP_WORKLOAD_BEHAVIOR_HH
