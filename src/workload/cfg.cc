#include "workload/cfg.hh"

#include "common/logging.hh"

namespace pcbp
{

Program::Program(std::string name) : progName(std::move(name))
{
}

BlockId
Program::addBlock(BasicBlock block)
{
    blocks.push_back(std::move(block));
    return static_cast<BlockId>(blocks.size() - 1);
}

void
Program::validate() const
{
    pcbp_assert(!blocks.empty(), "program '", progName, "' has no blocks");
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const auto &b = blocks[i];
        pcbp_assert(b.takenTarget < blocks.size(),
                    "block ", i, " taken target out of range");
        pcbp_assert(b.fallthroughTarget < blocks.size(),
                    "block ", i, " fallthrough target out of range");
        pcbp_assert(b.behavior != nullptr, "block ", i, " has no behavior");
        pcbp_assert(b.numUops >= 1, "block ", i, " has no uops");
        // Equal taken/fallthrough targets are allowed: they model a
        // conditional branch around nothing (straight-line relays in
        // echo chains). Wrong-path divergence comes from the blocks
        // where targets differ.
    }
}

const BasicBlock &
Program::block(BlockId id) const
{
    pcbp_dassert(id < blocks.size());
    return blocks[id];
}

BasicBlock &
Program::blockMut(BlockId id)
{
    pcbp_assert(id < blocks.size());
    return blocks[id];
}

BlockId
Program::successor(BlockId id, bool taken) const
{
    const BasicBlock &b = block(id);
    return taken ? b.takenTarget : b.fallthroughTarget;
}

bool
Program::evalOutcome(BlockId id)
{
    pcbp_dassert(id < blocks.size());
    const ArchContext ctx{committed, commits};
    const bool taken = blocks[id].behavior->nextOutcome(ctx);
    committed.shiftIn(taken);
    ++commits;
    return taken;
}

void
Program::resetWalk()
{
    committed.reset();
    commits = 0;
    for (auto &b : blocks)
        b.behavior->reset();
}

Program
Program::clone() const
{
    Program out(progName);
    out.blocks.reserve(blocks.size());
    for (const auto &b : blocks) {
        BasicBlock copy;
        copy.branchPc = b.branchPc;
        copy.numUops = b.numUops;
        copy.takenTarget = b.takenTarget;
        copy.fallthroughTarget = b.fallthroughTarget;
        copy.behavior = b.behavior ? b.behavior->clone() : nullptr;
        out.blocks.push_back(std::move(copy));
    }
    out.committed = committed;
    out.commits = commits;
    return out;
}

std::vector<CommittedBranch>
walkProgram(Program &program, std::uint64_t num_branches)
{
    program.validate();
    program.resetWalk();
    std::vector<CommittedBranch> out;
    out.reserve(num_branches);
    BlockId cur = program.entry();
    for (std::uint64_t i = 0; i < num_branches; ++i) {
        const BasicBlock &b = program.block(cur);
        const bool taken = program.evalOutcome(cur);
        out.push_back({cur, b.branchPc, taken, b.numUops});
        cur = program.successor(cur, taken);
    }
    return out;
}

} // namespace pcbp
