/**
 * @file
 * The program model: a control flow graph of basic blocks, each
 * ending in one conditional branch whose architectural outcome is
 * produced by a BranchBehavior. The CFG is what lets the simulator
 * actually walk wrong paths (§6 of the paper: future bits must come
 * from really going down the wrong path, which a linear trace cannot
 * provide).
 */

#ifndef PCBP_WORKLOAD_CFG_HH
#define PCBP_WORKLOAD_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/history_register.hh"
#include "common/types.hh"
#include "workload/behavior.hh"

namespace pcbp
{

/** One basic block: some uops, then a conditional branch. */
struct BasicBlock
{
    /** Address of the terminating conditional branch. */
    Addr branchPc = 0;
    /** Micro-ops in the block, including the branch uop. */
    std::uint32_t numUops = 1;
    /** Successor when the branch is taken. */
    BlockId takenTarget = invalidBlock;
    /** Successor when the branch falls through. */
    BlockId fallthroughTarget = invalidBlock;
    /** Architectural outcome generator. */
    BranchBehaviorPtr behavior;
};

/**
 * A synthetic program. Owns its blocks and the architectural walker
 * state (committed global history) used by behavior evaluation.
 */
class Program
{
  public:
    explicit Program(std::string name);

    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    /** Append a block; returns its id. */
    BlockId addBlock(BasicBlock block);

    /** Check every target is valid and every behavior present. */
    void validate() const;

    const std::string &name() const { return progName; }
    std::size_t numBlocks() const { return blocks.size(); }
    const BasicBlock &block(BlockId id) const;

    /** Mutable access, for builders fixing up targets. */
    BasicBlock &blockMut(BlockId id);
    BlockId entry() const { return 0; }

    /** Successor of @p id for direction @p taken. */
    BlockId successor(BlockId id, bool taken) const;

    /**
     * Architectural step: evaluate the outcome of the branch ending
     * @p id, advance committed history, and return the outcome.
     * Must be called in commit order only.
     */
    bool evalOutcome(BlockId id);

    /** Committed global outcome history (bit 0 newest). */
    const HistoryRegister &committedHistory() const { return committed; }

    /** Number of architectural evaluations so far. */
    std::uint64_t commitCount() const { return commits; }

    /** Reset the walker and all behavior state. */
    void resetWalk();

    /**
     * Deep copy, mid-walk state included: blocks (behaviors cloned),
     * committed history, and the commit counter. The clone's
     * architectural walk continues exactly where this program's
     * would — the fork seam of the sweep runner (DESIGN.md §11).
     */
    Program clone() const;

  private:
    std::string progName;
    std::vector<BasicBlock> blocks;
    HistoryRegister committed;
    std::uint64_t commits = 0;
};

/** One committed branch of a program walk. */
struct CommittedBranch
{
    BlockId block;
    Addr pc;
    bool taken;
    std::uint32_t numUops;
};

/**
 * Walk the program architecturally for @p num_branches branches from
 * the entry block, resetting behavior state first. The committed
 * path is independent of any predictor (behaviors read only
 * committed state), so the walk can be precomputed exactly.
 */
std::vector<CommittedBranch> walkProgram(Program &program,
                                         std::uint64_t num_branches);

} // namespace pcbp

#endif // PCBP_WORKLOAD_CFG_HH
