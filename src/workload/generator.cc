#include "workload/generator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pcbp
{

namespace
{

constexpr Addr baseAddr = 0x400000;
constexpr Addr blockStride = 16;

Addr
pcOf(std::size_t block_id)
{
    return baseAddr + block_id * blockStride;
}

/** Draw a filler behavior from the recipe mixture. */
BranchBehaviorPtr
drawFiller(const WorkloadRecipe &r, Rng &rng, double bias_lo,
           double bias_hi)
{
    const double total = r.wBiased + r.wLoop + r.wPattern +
                         r.wLocalParity + r.wPhased + r.wNoise +
                         r.wGlobalParity;
    pcbp_assert(total > 0.0, "empty filler mixture");
    double x = rng.nextDouble() * total;

    if ((x -= r.wBiased) < 0) {
        // Either strongly taken or strongly not-taken.
        double p = bias_lo + rng.nextDouble() * (bias_hi - bias_lo);
        if (rng.nextBool(0.5))
            p = 1.0 - p;
        return std::make_unique<BiasedBehavior>(p, rng.next());
    }
    if ((x -= r.wLoop) < 0) {
        const unsigned period = static_cast<unsigned>(
            rng.nextRange(r.loopLo, r.loopHi));
        return std::make_unique<LoopBehavior>(std::max(2u, period));
    }
    if ((x -= r.wPattern) < 0) {
        const unsigned len = static_cast<unsigned>(
            rng.nextRange(r.patLenLo, r.patLenHi));
        std::vector<bool> pat(std::max(2u, len));
        for (std::size_t i = 0; i < pat.size(); ++i)
            pat[i] = rng.nextBool(0.5);
        return std::make_unique<PatternBehavior>(std::move(pat),
                                                 r.patNoise, rng.next());
    }
    if ((x -= r.wLocalParity) < 0) {
        const unsigned w = static_cast<unsigned>(
            rng.nextRange(r.lparWidthLo, r.lparWidthHi));
        return std::make_unique<LocalParityBehavior>(w, r.lparNoise,
                                                     rng.next());
    }
    if ((x -= r.wPhased) < 0) {
        return std::make_unique<PhasedBehavior>(
            r.phasedLo, r.phasedHi, r.phasedBiasA, r.phasedBiasB,
            rng.next());
    }
    if ((x -= r.wNoise) < 0)
        return std::make_unique<BiasedBehavior>(r.noiseBias, rng.next());
    const unsigned lag = static_cast<unsigned>(
        rng.nextRange(r.gparLagLo, r.gparLagHi));
    const unsigned w = static_cast<unsigned>(
        rng.nextRange(r.gparWidthLo, r.gparWidthHi));
    return std::make_unique<GlobalParityBehavior>(
        lag, w, rng.nextBool(0.5), r.gparNoise, rng.next());
}

} // namespace

Program
generateProgram(const WorkloadRecipe &recipe)
{
    pcbp_assert(recipe.targetBlocks >= 8, "program too small");
    pcbp_assert(recipe.minUops >= 1 &&
                recipe.minUops <= recipe.maxUops);
    Rng rng(recipe.seed ^ 0x5eedf00dULL);
    Program prog(recipe.name);

    // One phase clock per program, shared by all phase chains.
    PhaseClockSpec phase_clock;
    phase_clock.seed = recipe.seed ^ 0x9ca5ec10cULL;
    phase_clock.lo = recipe.phaseClockLo;
    phase_clock.hi = recipe.phaseClockHi;

    // Motif sizing for even placement. An echo chain is two source
    // blocks, a straight spacer, consumer + arms, gap fillers, and
    // two relays; a phase chain is consumer + arms + loop body.
    const unsigned chain_len =
        2 + recipe.chainLagHi + 3 + recipe.chainGapHi + 2;
    const unsigned pchain_len = 5;
    const unsigned motif_len = std::max(chain_len, pchain_len);
    const unsigned want_motifs = recipe.numChains + recipe.numPhaseChains;
    const unsigned motifs =
        std::min<unsigned>(want_motifs,
                           recipe.targetBlocks / (motif_len + 2));
    const unsigned motif_every =
        motifs > 0 ? std::max(1u, recipe.targetBlocks / motifs) : 0;

    unsigned motifs_placed = 0;
    unsigned echo_placed = 0;

    // Filler segment state: fillers are grouped into small inner
    // loops (segment + latch) so branches re-execute at realistic
    // rates and pattern/local content stays within history reach.
    std::size_t seg_start = 0;
    unsigned seg_len = 0;
    unsigned seg_fill = 0;
    unsigned seg_entropy_slot = 0;

    auto draw_uops = [&]() {
        return static_cast<std::uint32_t>(
            rng.nextRange(recipe.minUops, recipe.maxUops));
    };

    while (prog.numBlocks() < recipe.targetBlocks) {
        const std::size_t i = prog.numBlocks();

        const bool place_motif =
            motifs_placed < motifs && motif_every > 0 &&
            i >= static_cast<std::size_t>(motifs_placed) * motif_every &&
            i + motif_len + 1 < recipe.targetBlocks &&
            seg_fill == 0; // never split a filler segment

        if (place_motif) {
            ++motifs_placed;
            // Interleave echo chains and phase chains proportionally.
            const bool echo_turn =
                recipe.numChains > 0 &&
                (recipe.numPhaseChains == 0 ||
                 echo_placed * want_motifs <
                     recipe.numChains * motifs_placed);

            std::size_t at = i;
            auto straight = [&](BranchBehaviorPtr beh) {
                BasicBlock b;
                b.branchPc = pcOf(at);
                b.numUops = draw_uops();
                b.takenTarget = static_cast<BlockId>(at + 1);
                b.fallthroughTarget = static_cast<BlockId>(at + 1);
                b.behavior = std::move(beh);
                prog.addBlock(std::move(b));
                ++at;
            };
            auto diamond = [&](BranchBehaviorPtr beh) {
                // consumer with opposite-bias arms; merge after.
                BasicBlock s;
                s.branchPc = pcOf(at);
                s.numUops = draw_uops();
                s.takenTarget = static_cast<BlockId>(at + 1);
                s.fallthroughTarget = static_cast<BlockId>(at + 2);
                s.behavior = std::move(beh);
                prog.addBlock(std::move(s));
                ++at;
                for (int arm = 0; arm < 2; ++arm) {
                    BasicBlock a;
                    a.branchPc = pcOf(at);
                    a.numUops = draw_uops();
                    a.takenTarget =
                        static_cast<BlockId>(at + (arm ? 1 : 2));
                    a.fallthroughTarget = a.takenTarget;
                    a.behavior = std::make_unique<BiasedBehavior>(
                        arm == 0 ? recipe.armBiasHi : recipe.armBiasLo,
                        rng.next());
                    prog.addBlock(std::move(a));
                    ++at;
                }
            };

            if (!echo_turn) {
                // Phase chain: a cold phase consumer, diamond arms,
                // then an inner loop holding a phase revealer whose
                // outcomes keep the phase visible in the deep BOR
                // history of the next consumers.
                diamond(std::make_unique<PhaseRevealBehavior>(
                    phase_clock,
                    std::max(0.5, 1.0 - recipe.phaseNoise), rng.next()));

                BasicBlock rv;
                rv.branchPc = pcOf(at);
                rv.numUops = draw_uops();
                rv.takenTarget = static_cast<BlockId>(at + 1);
                rv.fallthroughTarget = static_cast<BlockId>(at + 1);
                rv.behavior = std::make_unique<PhaseRevealBehavior>(
                    phase_clock, 0.98, rng.next());
                prog.addBlock(std::move(rv));
                ++at;

                BasicBlock lt;
                lt.branchPc = pcOf(at);
                lt.numUops = draw_uops();
                lt.takenTarget = static_cast<BlockId>(at - 1);
                lt.fallthroughTarget = static_cast<BlockId>(at + 1);
                lt.behavior = std::make_unique<LoopBehavior>(
                    std::max(2u, recipe.phaseInnerTrips));
                prog.addBlock(std::move(lt));
                ++at;

                // Outer latch: repeat the whole chain so the
                // consumer is hot enough to train the critic.
                BasicBlock ol;
                ol.branchPc = pcOf(at);
                ol.numUops = draw_uops();
                ol.takenTarget = static_cast<BlockId>(i);
                ol.fallthroughTarget = static_cast<BlockId>(at + 1);
                ol.behavior = std::make_unique<LoopBehavior>(
                    std::max(2u, recipe.phaseChainTrips));
                prog.addBlock(std::move(ol));
                continue;
            }

            ++echo_placed;
            // Echo chain: two mid-bias sources, a straight quiet
            // spacer of m blocks (so the source bits sit at lags
            // [m, m+1] of the consumer — beyond an 18-bit BOR
            // critic's history window at any future-bit count, but
            // inside a 28-bit perceptron prophet's window, where
            // only their XOR is unlearnable), the consumer, arms, an
            // optional gap, and two echo relays that re-expose the
            // source bits to the prophet — and therefore, via its
            // predictions, to the critic's future bits.
            const unsigned m = static_cast<unsigned>(
                rng.nextRange(recipe.chainLagLo, recipe.chainLagHi));
            unsigned gap = static_cast<unsigned>(rng.nextRange(
                recipe.chainGapLo, recipe.chainGapHi));
            if (m + 1 + gap + 3 > 27)
                gap = 27 - m - 4;

            // Sources (committed order: src1 then src0).
            straight(std::make_unique<BiasedBehavior>(
                recipe.chainSrcBias, rng.next()));
            straight(std::make_unique<BiasedBehavior>(
                recipe.chainSrcBias, rng.next()));
            // Quiet spacer.
            for (unsigned k = 0; k + 1 < m; ++k) {
                double bias = 0.92 + 0.07 * rng.nextDouble();
                if (rng.nextBool(0.5))
                    bias = 1.0 - bias;
                straight(std::make_unique<BiasedBehavior>(bias,
                                                          rng.next()));
            }
            // Consumer: src0 sits at lag m-1... the spacer has m-1
            // blocks, so src0 = lag m-1+0? Lags: src0 committed
            // m-1 blocks before the consumer => lag m-1; src1 => m.
            diamond(std::make_unique<GlobalXorBehavior>(
                m - 1, m, rng.nextBool(0.5), recipe.chainNoise,
                rng.next()));
            // Gap fillers delay the relays' entry into the critique
            // window (need gap+4 future bits).
            for (unsigned k = 0; k < gap; ++k) {
                double bias = 0.92 + 0.07 * rng.nextDouble();
                if (rng.nextBool(0.5))
                    bias = 1.0 - bias;
                straight(std::make_unique<BiasedBehavior>(bias,
                                                          rng.next()));
            }
            // Relays: r1 commits gap+2 after the consumer, r2 one
            // later.
            straight(std::make_unique<GlobalEchoBehavior>(
                (m - 1) + gap + 2, rng.nextBool(0.5), recipe.chainNoise,
                rng.next()));
            straight(std::make_unique<GlobalEchoBehavior>(
                m + gap + 3, rng.nextBool(0.5), recipe.chainNoise,
                rng.next()));

            // Outer latch: repeat the whole chain so the consumer is
            // hot enough for the critic's contexts to recur.
            BasicBlock ol;
            ol.branchPc = pcOf(at);
            ol.numUops = draw_uops();
            ol.takenTarget = static_cast<BlockId>(i);
            ol.fallthroughTarget = static_cast<BlockId>(at + 1);
            ol.behavior = std::make_unique<LoopBehavior>(
                std::max(2u, recipe.chainTrips));
            prog.addBlock(std::move(ol));
            continue;
        }

        // Occasional one-shot straight filler with a mid bias:
        // cold, context-diverse history entropy.
        if (seg_fill == 0 && rng.nextBool(recipe.oneShotFrac)) {
            BasicBlock os;
            os.branchPc = pcOf(i);
            os.numUops = draw_uops();
            os.takenTarget = static_cast<BlockId>(i + 1);
            os.fallthroughTarget = static_cast<BlockId>(i + 1);
            double p = recipe.oneShotBiasLo +
                       rng.nextDouble() *
                           (recipe.oneShotBiasHi - recipe.oneShotBiasLo);
            if (rng.nextBool(0.5))
                p = 1.0 - p;
            os.behavior = std::make_unique<BiasedBehavior>(p, rng.next());
            prog.addBlock(std::move(os));
            continue;
        }

        // Filler block inside a segment (a small inner loop).
        if (seg_fill == 0) {
            seg_start = i;
            seg_len = static_cast<unsigned>(rng.nextRange(3, 8));
            if (i + seg_len + 2 >= recipe.targetBlocks)
                seg_len = 2; // tail segment, keep it tiny
            seg_entropy_slot = static_cast<unsigned>(
                rng.nextRange(0, seg_len - 1));
        }

        if (seg_fill == seg_len) {
            // Latch: loop back over the segment. Trip counts are
            // drawn from a skewed distribution so a minority of hot
            // segments dominates dynamic execution, as in real
            // programs.
            unsigned trips;
            const double hot = rng.nextDouble();
            if (hot < 0.70)
                trips = static_cast<unsigned>(rng.nextRange(2, 4));
            else if (hot < 0.92)
                trips = static_cast<unsigned>(rng.nextRange(6, 12));
            else
                trips = static_cast<unsigned>(rng.nextRange(16, 48));
            BasicBlock lt;
            lt.branchPc = pcOf(i);
            lt.numUops = draw_uops();
            lt.takenTarget = static_cast<BlockId>(seg_start);
            lt.fallthroughTarget = static_cast<BlockId>(i + 1);
            lt.behavior = std::make_unique<LoopBehavior>(trips);
            prog.addBlock(std::move(lt));
            seg_fill = 0;
            continue;
        }

        BasicBlock b;
        b.branchPc = pcOf(i);
        b.numUops = draw_uops();
        b.fallthroughTarget = static_cast<BlockId>(i + 1);
        if (seg_fill == seg_entropy_slot) {
            // One mid-bias entropy member per segment: its outcomes
            // decorrelate the (pc, BOR) contexts of its neighbors,
            // so filter entries allocated on their random
            // mispredicts rarely fire again.
            const double p_ent =
                0.88 + 0.05 * rng.nextDouble();
            b.behavior = std::make_unique<BiasedBehavior>(
                rng.nextBool(0.5) ? p_ent : 1.0 - p_ent, rng.next());
        } else {
            b.behavior = drawFiller(recipe, rng, recipe.segBiasLo,
                                    recipe.segBiasHi);
        }
        const bool is_loop =
            b.behavior->describe().rfind("loop", 0) == 0;
        if (is_loop) {
            b.takenTarget = static_cast<BlockId>(i); // self loop
        } else if (rng.nextBool(0.3)) {
            // Short forward skip inside the segment.
            b.takenTarget = static_cast<BlockId>(
                std::min<std::size_t>(i + 2, seg_start + seg_len));
        } else {
            b.takenTarget = static_cast<BlockId>(i + 1);
        }
        prog.addBlock(std::move(b));
        ++seg_fill;
    }

    // Wrap every target that ran off the end back to block 0 (the
    // program is one big outer loop).
    const std::size_t n = prog.numBlocks();
    for (std::size_t id = 0; id < n; ++id) {
        auto &b = prog.blockMut(static_cast<BlockId>(id));
        if (b.fallthroughTarget >= n)
            b.fallthroughTarget = 0;
        if (b.takenTarget >= n)
            b.takenTarget = 0;
    }

    prog.validate();
    return prog;
}

} // namespace pcbp
