/**
 * @file
 * Synthetic program generator.
 *
 * A WorkloadRecipe describes a program as a weighted mixture of
 * filler blocks (biased, loop, pattern, local-parity, phased, and
 * pure-noise branches) plus a number of *echo-chain motifs* — the
 * construction that gives future bits genuine information content:
 *
 *   s:    hard branch whose outcome is (the parity of) committed
 *         global outcome bits at lag L, chosen near or beyond the
 *         prophet's history length;
 *   armT/armF: a diamond after s with opposite strong biases, so the
 *         prophet's predicted path after s carries a wrong-path
 *         signature (Fig. 2 of the paper);
 *   r_j:  relay branches that echo the same deep bits at lags the
 *         prophet *can* learn. The prophet's predictions for the
 *         relays — which become the critic's future bits — thereby
 *         re-encode history that has already slid out of the
 *         critic's own (short) BOR history window. This is the
 *         compression channel §8 of the paper describes.
 *
 * Everything is deterministic given the recipe seed.
 */

#ifndef PCBP_WORKLOAD_GENERATOR_HH
#define PCBP_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <string>

#include "workload/cfg.hh"

namespace pcbp
{

/** Parameters describing one synthetic program. */
struct WorkloadRecipe
{
    std::string name = "anon";
    std::uint64_t seed = 1;

    /** Approximate static footprint (blocks ~= static branches). */
    unsigned targetBlocks = 300;

    /** Uops per block, uniform range (branch uop included). */
    unsigned minUops = 4;
    unsigned maxUops = 22;

    /** @name Filler mixture weights (need not sum to anything). */
    /// @{
    double wBiased = 2.0;
    double wLoop = 2.0;
    double wPattern = 1.0;
    double wLocalParity = 0.5;
    double wPhased = 0.5;
    double wNoise = 0.5;
    /**
     * Short-lag global parity branches: XOR of two-ish recent
     * committed bits. Unlearnable by perceptrons (not linearly
     * separable), slow for table prophets under context churn, but
     * fixable by a table critic whose BOR *history* window still
     * covers the source bits — i.e., exactly the content that
     * regresses when future bits displace history (§7.1).
     */
    double wGlobalParity = 0.0;
    /// @}

    /** @name Filler parameters. */
    /// @{
    double biasLo = 0.75, biasHi = 0.99;
    unsigned loopLo = 3, loopHi = 20;
    unsigned patLenLo = 2, patLenHi = 4;
    double patNoise = 0.01;
    unsigned lparWidthLo = 2, lparWidthHi = 3;
    double lparNoise = 0.02;
    unsigned phasedLo = 200, phasedHi = 2500;
    double phasedBiasA = 0.92, phasedBiasB = 0.10;
    double noiseBias = 0.5;
    unsigned gparLagLo = 4, gparLagHi = 9;
    unsigned gparWidthLo = 2, gparWidthHi = 2;
    double gparNoise = 0.02;
    /// @}

    /** @name Echo-chain motifs (critic fodder). */
    /// @{
    unsigned numChains = 10;
    /**
     * The consumer XORs two *natural* committed-history bits at lags
     * [lagA, lagA+spread]. Lags must be >= 18 so the sources are
     * invisible to an 18-bit BOR critic's history at every
     * future-bit count; the relays that re-expose them must stay at
     * lag <= 27 to be learnable by a 28-bit-history perceptron
     * prophet, which bounds lagA + spread + gap + 3 <= 27.
     */
    unsigned chainLagLo = 18, chainLagHi = 20;
    /** Lag distance between the two source bits (1 or 2). */
    unsigned chainSpreadLo = 1, chainSpreadHi = 2;
    /**
     * Quiet filler blocks between the arms and the relays. The
     * relays enter the consumer's critique window only from
     * gap + 4 future bits, so mixing gaps spreads the critic's
     * gains across future-bit counts (the Fig. 5 ramp).
     */
    unsigned chainGapLo = 0, chainGapHi = 4;
    /**
     * Bias of the chain's two source blocks. Mid biases (~0.65-0.75)
     * leave the XOR consumer around 60/40 — enough fixable mass for
     * the critic — while keeping the sources' own mispredict floor
     * moderate.
     */
    double chainSrcBias = 0.68;
    /** Noise on consumers and relays. */
    double chainNoise = 0.01;
    /**
     * The whole chain is an inner loop executing this many times per
     * outer pass, so consumers are hot enough for the critic's
     * contexts to recur and train quickly.
     */
    unsigned chainTrips = 4;
    /** Strong arm biases (taken-arm uses hi, fallthrough-arm lo). */
    double armBiasHi = 0.97, armBiasLo = 0.03;
    /// @}

    /** @name Phase-chain motifs (adaptation/self-echo channel). */
    /// @{
    /**
     * Chains of: a cold phase consumer (outcome = the program-wide
     * hidden phase), diamond arms, then an inner loop whose body
     * holds a phase revealer. Because the revealer repeats inside
     * the loop, its own outcome re-enters the history window, so
     * from the second iteration on *any* history predictor predicts
     * it with the current phase — a fresh phase signature that
     * reaches the consumer's critique through the future bits,
     * while the consumer's own predictor state is stale by design
     * (it executes only once per outer pass). All chains in a
     * program share one phase clock.
     */
    unsigned numPhaseChains = 6;
    unsigned phaseClockLo = 400, phaseClockHi = 2500;
    double phaseNoise = 0.02;
    /** Inner-loop trip count (revealer instances per pass). */
    unsigned phaseInnerTrips = 5;
    /** Outer trips of the whole phase chain (consumer heat). */
    unsigned phaseChainTrips = 3;
    /// @}

    /** @name Filler structure. */
    /// @{
    /**
     * Fillers live in small inner-loop segments (hot, so patterns
     * and local content are within history reach); in-segment
     * branches draw from [segBiasLo, segBiasHi] to keep the
     * repeated-context mispredict floor low. A fraction of fillers
     * are one-shot straight blocks with mid biases, providing
     * history entropy at diverse contexts.
     */
    double segBiasLo = 0.95, segBiasHi = 0.995;
    double oneShotFrac = 0.15;
    double oneShotBiasLo = 0.80, oneShotBiasHi = 0.90;
    /// @}

    /** @name CFG shape. */
    /// @{
    /** Probability a filler block's taken edge is a back edge. */
    double backEdgeProb = 0.30;
    unsigned maxForwardSkip = 8;
    unsigned maxBackSkip = 12;
    /// @}
};

/** Build the program described by @p recipe. */
Program generateProgram(const WorkloadRecipe &recipe);

} // namespace pcbp

#endif // PCBP_WORKLOAD_GENERATOR_HH
