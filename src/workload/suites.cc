#include "workload/suites.hh"

#include <algorithm>
#include <deque>
#include <mutex>

#include "common/logging.hh"
#include "workload/trace.hh"

namespace pcbp
{

namespace
{

/** Base recipe shared by all workloads; fields overridden below. */
WorkloadRecipe
base(const std::string &name, std::uint64_t seed)
{
    WorkloadRecipe r;
    r.name = name;
    r.seed = seed;
    // Global defaults tuned so prophet-alone accuracy lands in the
    // paper's 90-95% band: quiet biased/loop filler, a little noise.
    r.wBiased = 2.5;
    r.wLoop = 0.8;
    r.wPattern = 1.0;
    r.wLocalParity = 0.25;
    r.wPhased = 0.3;
    r.wNoise = 0.08;
    r.biasLo = 0.85;
    r.biasHi = 0.99;
    return r;
}

Workload
make(const std::string &name, const std::string &suite,
     WorkloadRecipe recipe, std::uint64_t branches = 250000)
{
    Workload w;
    w.name = name;
    w.suite = suite;
    w.recipe = std::move(recipe);
    w.simBranches = branches;
    w.warmupBranches = branches / 10;
    return w;
}

std::vector<Workload>
buildRegistry()
{
    std::vector<Workload> ws;

    // ------------------------------------------------ Fig. 5 set
    // Prophet for Fig. 5 is an 8KB perceptron (28-bit history);
    // critic an 8KB tagged gshare (18-bit BOR). The echo-chain
    // consumers are fixed once the relays enter the critique window
    // (the last consumer from ~4 future bits, the first from ~9), so
    // chain depth and mix shape the future-bit response.

    {
        // unzip: mispredict rate keeps dropping as future bits grow.
        // Deep three-consumer chains dominate the fixable content.
        auto r = base("unzip", 11);
        r.targetBlocks = 420;
        r.numChains = 24;
        r.chainLagLo = 18;
        r.chainLagHi = 19;
        r.chainSpreadLo = 1;
        r.chainSpreadHi = 1;
        r.chainGapLo = 0;
        r.chainGapHi = 5;
        r.numPhaseChains = 0;
        r.wNoise = 0.1;
        ws.push_back(make("unzip", "FIG5", r, 300000));
    }
    {
        // premiere: most of the gain arrives with the first couple
        // of future bits (phase information enters through the deep
        // BOR history) and high counts slowly give it back.
        auto r = base("premiere", 12);
        r.targetBlocks = 420;
        r.numChains = 0;
        r.numPhaseChains = 12;
        r.phaseClockLo = 250;
        r.phaseClockHi = 900;
        r.phaseInnerTrips = 5;
        r.wPhased = 0.4;
        r.wNoise = 0.15;
        ws.push_back(make("premiere", "FIG5", r, 300000));
    }
    {
        // msvc7: improves to 8 future bits, then regresses — two-
        // consumer chains (fixed from ~4-7 bits) plus phase chains
        // and short-lag parity content that need the critic's
        // history window.
        auto r = base("msvc7", 13);
        r.targetBlocks = 540;
        r.numChains = 12;
        r.chainGapLo = 1;
        r.chainGapHi = 4;
        r.numPhaseChains = 6;
        r.wGlobalParity = 0.5;
        r.gparLagLo = 6;
        r.gparLagHi = 9;
        r.wNoise = 0.15;
        ws.push_back(make("msvc7", "FIG5", r, 300000));
    }
    {
        // flash: best near 4 future bits — single-consumer chains
        // (fixed from ~4 bits) plus a lot of low-bit content that
        // dies when future bits displace the history window.
        auto r = base("flash", 14);
        r.targetBlocks = 460;
        r.numChains = 8;
        r.chainGapLo = 0;
        r.chainGapHi = 0;
        r.numPhaseChains = 8;
        r.phaseClockLo = 200;
        r.phaseClockHi = 700;
        r.wGlobalParity = 1.2;
        r.gparLagLo = 5;
        r.gparLagHi = 8;
        r.wNoise = 0.12;
        ws.push_back(make("flash", "FIG5", r, 300000));
    }
    {
        // facerec: FP-style, mostly easy, insensitive to future bits.
        auto r = base("facerec", 15);
        r.targetBlocks = 160;
        r.minUops = 10;
        r.maxUops = 34;
        r.numChains = 1;
        r.numPhaseChains = 0;
        r.wBiased = 3.0;
        r.wLoop = 3.0;
        r.biasLo = 0.93;
        r.biasHi = 0.997;
        r.loopLo = 8;
        r.loopHi = 40;
        r.wNoise = 0.1;
        r.wLocalParity = 0.1;
        r.wPhased = 0.1;
        ws.push_back(make("facerec", "FIG5", r, 300000));
    }
    {
        // tpcc: server-style, large footprint, heavy noise; only the
        // first future bit helps, more bits slightly hurt.
        auto r = base("tpcc", 16);
        r.targetBlocks = 4200;
        r.numChains = 0;
        r.numPhaseChains = 3;
        r.wNoise = 0.25;
        r.wPhased = 0.8;
        r.phasedLo = 100;
        r.phasedHi = 600;
        r.phasedBiasA = 0.88;
        r.phasedBiasB = 0.18;
        r.wPattern = 0.6;
        r.oneShotFrac = 0.3;
        ws.push_back(make("tpcc", "FIG5", r, 300000));
    }

    // ------------------------------------------------ gcc (headline)
    {
        auto r = base("gcc", 21);
        r.targetBlocks = 2600;
        r.numChains = 4;
        r.numPhaseChains = 28;
        r.phaseClockLo = 250;
        r.phaseClockHi = 1000;
        r.wGlobalParity = 0.4;
        r.wNoise = 0.12;
        r.wPhased = 0.3;
        ws.push_back(make("gcc", "GCC", r, 300000));
    }

    // ------------------------------------------------ Suites
    // Two representatives per suite; together they form the AVG set.

    {
        // INT00: control-heavy integer codes, big critic gains.
        auto r = base("int.crafty", 31);
        r.targetBlocks = 900;
        r.numChains = 8;
        r.numPhaseChains = 6;
        r.wGlobalParity = 0.35;
        r.wNoise = 0.25;
        ws.push_back(make("int.crafty", "INT00", r));

        auto r2 = base("int.parser", 32);
        r2.targetBlocks = 1300;
        r2.numChains = 6;
        r2.numPhaseChains = 8;
        r2.wLocalParity = 0.6;
        r2.wGlobalParity = 0.3;
        r2.wNoise = 0.25;
        ws.push_back(make("int.parser", "INT00", r2));
    }
    {
        // FP00: loop-dominated, long blocks, very predictable.
        auto r = base("fp.ammp", 41);
        r.targetBlocks = 150;
        r.minUops = 12;
        r.maxUops = 40;
        r.numChains = 1;
        r.numPhaseChains = 1;
        r.wBiased = 3.5;
        r.wLoop = 4.0;
        r.loopLo = 10;
        r.loopHi = 50;
        r.biasLo = 0.94;
        r.biasHi = 0.998;
        r.wNoise = 0.05;
        r.wLocalParity = 0.05;
        r.wPhased = 0.1;
        ws.push_back(make("fp.ammp", "FP00", r));

        auto r2 = base("fp.swim", 42);
        r2.targetBlocks = 100;
        r2.minUops = 14;
        r2.maxUops = 44;
        r2.numChains = 1;
        r2.numPhaseChains = 0;
        r2.wBiased = 3.0;
        r2.wLoop = 5.0;
        r2.loopLo = 16;
        r2.loopHi = 64;
        r2.biasLo = 0.95;
        r2.biasHi = 0.999;
        r2.wNoise = 0.03;
        r2.wPattern = 1.5;
        r2.wLocalParity = 0.0;
        r2.wPhased = 0.05;
        ws.push_back(make("fp.swim", "FP00", r2));
    }
    {
        // WEB: request-phase behavior plus some deep chains.
        auto r = base("web.jbb", 51);
        r.targetBlocks = 1500;
        r.numChains = 3;
        r.numPhaseChains = 12;
        r.phaseClockLo = 250;
        r.phaseClockHi = 1200;
        r.wPhased = 0.8;
        r.wNoise = 0.25;
        ws.push_back(make("web.jbb", "WEB", r));

        auto r2 = base("web.mark", 52);
        r2.targetBlocks = 1100;
        r2.numChains = 5;
        r2.numPhaseChains = 8;
        r2.wPhased = 0.6;
        r2.wNoise = 0.25;
        r2.wGlobalParity = 0.25;
        ws.push_back(make("web.mark", "WEB", r2));
    }
    {
        // MM: media kernels — loops and patterns, some hard content.
        auto r = base("mm.mpeg", 61);
        r.targetBlocks = 380;
        r.minUops = 8;
        r.maxUops = 28;
        r.numChains = 4;
        r.numPhaseChains = 2;
        r.wLoop = 3.0;
        r.wPattern = 2.0;
        r.loopLo = 4;
        r.loopHi = 28;
        r.wNoise = 0.15;
        ws.push_back(make("mm.mpeg", "MM", r));

        auto r2 = base("mm.speech", 62);
        r2.targetBlocks = 560;
        r2.numChains = 6;
        r2.numPhaseChains = 3;
        r2.wLocalParity = 0.5;
        r2.wNoise = 0.25;
        ws.push_back(make("mm.speech", "MM", r2));
    }
    {
        // PROD: office productivity — big mixed footprints.
        auto r = base("prod.sysmark", 71);
        r.targetBlocks = 2200;
        r.numChains = 5;
        r.numPhaseChains = 10;
        r.wPhased = 0.7;
        r.wNoise = 0.25;
        r.wGlobalParity = 0.25;
        ws.push_back(make("prod.sysmark", "PROD", r));

        auto r2 = base("prod.winstone", 72);
        r2.targetBlocks = 2800;
        r2.numChains = 4;
        r2.numPhaseChains = 8;
        r2.wPhased = 0.6;
        r2.wNoise = 0.25;
        ws.push_back(make("prod.winstone", "PROD", r2));
    }
    {
        // SERV: transaction processing — huge footprint, noisy.
        auto r = base("serv.tpcc", 81);
        r.targetBlocks = 4200;
        r.numChains = 0;
        r.numPhaseChains = 3;
        r.wNoise = 0.25;
        r.wPhased = 0.8;
        r.phasedLo = 120;
        r.phasedHi = 700;
        r.phasedBiasA = 0.88;
        r.phasedBiasB = 0.18;
        r.oneShotFrac = 0.3;
        ws.push_back(make("serv.tpcc", "SERV", r));

        auto r2 = base("serv.timesten", 82);
        r2.targetBlocks = 3000;
        r2.numChains = 2;
        r2.numPhaseChains = 6;
        r2.wNoise = 0.25;
        r2.wPhased = 0.8;
        ws.push_back(make("serv.timesten", "SERV", r2));
    }
    {
        // WS: workstation — CAD/Verilog, regular with hard kernels.
        auto r = base("ws.cad", 91);
        r.targetBlocks = 760;
        r.numChains = 7;
        r.numPhaseChains = 3;
        r.wLoop = 2.4;
        r.wLocalParity = 0.6;
        r.wNoise = 0.2;
        ws.push_back(make("ws.cad", "WS", r));

        auto r2 = base("ws.verilog", 92);
        r2.targetBlocks = 1000;
        r2.numChains = 6;
        r2.numPhaseChains = 4;
        r2.wPattern = 1.8;
        r2.wGlobalParity = 0.4;
        r2.wNoise = 0.2;
        ws.push_back(make("ws.verilog", "WS", r2));
    }

    return ws;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> registry = buildRegistry();
    return registry;
}

namespace
{

/** Comma-join the registry's workload (or suite) names. */
std::string
knownNames(bool suites)
{
    std::string joined;
    std::vector<std::string> seen;
    for (const auto &w : allWorkloads()) {
        const std::string &n = suites ? w.suite : w.name;
        if (std::find(seen.begin(), seen.end(), n) != seen.end())
            continue;
        seen.push_back(n);
        if (!joined.empty())
            joined += ", ";
        joined += n;
    }
    return joined;
}

} // namespace

namespace
{

/**
 * Trace workloads are registered on first lookup, keyed by the full
 * "trace:<path>" name. A deque keeps Workload addresses stable (the
 * driver and sweep layers hold const Workload*), and the mutex makes
 * concurrent lookups from pooled workers safe.
 */
const Workload &
traceWorkload(const std::string &name)
{
    static std::mutex mtx;
    static std::deque<Workload> registry;
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &w : registry)
        if (w.name == name)
            return w;

    const std::string path = name.substr(std::string("trace:").size());
    const std::uint64_t count = traceFileCount(path);
    if (count == 0)
        pcbp_fatal("trace workload '", path, "' has no records");

    Workload w;
    w.name = name;
    w.suite = "TRACE";
    w.tracePath = path;
    // Default run length: the whole file, with a tenth as warmup.
    w.warmupBranches = count / 10;
    w.simBranches = count - w.warmupBranches;
    registry.push_back(std::move(w));
    return registry.back();
}

} // namespace

const Workload &
workloadByName(const std::string &name)
{
    if (name.rfind("trace:", 0) == 0)
        return traceWorkload(name);
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    pcbp_fatal("unknown workload '", name, "' (available: ",
               knownNames(false), ")");
}

std::vector<const Workload *>
suiteWorkloads(const std::string &suite)
{
    std::vector<const Workload *> out;
    for (const auto &w : allWorkloads())
        if (w.suite == suite)
            out.push_back(&w);
    if (out.empty())
        pcbp_fatal("unknown suite '", suite, "' (available: ",
                   knownNames(true), ")");
    return out;
}

const std::vector<std::string> &
allSuites()
{
    static const std::vector<std::string> suites = {
        "INT00", "FP00", "WEB", "MM", "PROD", "SERV", "WS",
    };
    return suites;
}

std::vector<const Workload *>
avgSet()
{
    std::vector<const Workload *> out;
    for (const auto &suite : allSuites())
        for (const Workload *w : suiteWorkloads(suite))
            out.push_back(w);
    return out;
}

std::vector<const Workload *>
fig5Set()
{
    std::vector<const Workload *> out;
    for (const char *name :
         {"unzip", "premiere", "msvc7", "flash", "facerec", "tpcc"})
        out.push_back(&workloadByName(name));
    return out;
}

Program
buildProgram(const Workload &w)
{
    if (!w.tracePath.empty())
        return reconstructProgramFromTrace(w.tracePath, w.name);
    return generateProgram(w.recipe);
}

} // namespace pcbp
