/**
 * @file
 * Named benchmark registry: synthetic analogues of the paper's
 * benchmark suites (Table 1) and of the individually-plotted
 * benchmarks (Fig. 5: unzip, premiere, msvc7, flash, facerec, tpcc)
 * plus gcc for the headline numbers.
 *
 * The recipes are tuned so that prophet-alone accuracy lands in the
 * paper's 90-95% band (higher for FP00, lower for SERV) and so the
 * per-benchmark future-bit response reproduces the qualitative
 * shapes of Fig. 5. See DESIGN.md §3 for the substitution rationale.
 *
 * Beyond the synthetic registry, `trace:<path>` names a recorded
 * committed-branch trace as a workload (suite "TRACE"): the CFG is
 * reconstructed from the file and the committed stream is replayed
 * from it. The path may hold a flat PCBPTRC1 file or the compressed
 * indexed PCBPTRC2 store — consumers sniff the magic — see
 * DESIGN.md §5/§13 and tools/pcbp_trace.cc.
 */

#ifndef PCBP_WORKLOAD_SUITES_HH
#define PCBP_WORKLOAD_SUITES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace pcbp
{

/** A named benchmark: a recipe plus simulation lengths. */
struct Workload
{
    std::string name;
    std::string suite;
    WorkloadRecipe recipe;
    /** Committed branches to measure (before PCBP_BENCH_SCALE). */
    std::uint64_t simBranches = 250000;
    /** Committed branches of warmup before stats collection. */
    std::uint64_t warmupBranches = 25000;
    /**
     * Non-empty for trace workloads: path of the trace file
     * (either format) that provides the committed stream (the
     * recipe is unused then).
     */
    std::string tracePath;
};

/** Every registered workload. */
const std::vector<Workload> &allWorkloads();

/**
 * Find by name (fatal if unknown, listing the known names).
 * `trace:<path>` registers (and caches) a trace-file workload whose
 * run length defaults to the file's record count.
 */
const Workload &workloadByName(const std::string &name);

/**
 * All workloads of a suite (INT00, FP00, WEB, MM, PROD, SERV, WS,
 * plus FIG5 and GCC); fatal if unknown, listing the known suites.
 */
std::vector<const Workload *> suiteWorkloads(const std::string &suite);

/** The suite names, in the paper's order. */
const std::vector<std::string> &allSuites();

/**
 * The fixed AVG basket (two workloads per suite, 14 total) over
 * which benches report averages.
 */
std::vector<const Workload *> avgSet();

/** The six benchmarks plotted in Fig. 5, in the paper's order. */
std::vector<const Workload *> fig5Set();

/** Build the program for a workload. */
Program buildProgram(const Workload &w);

} // namespace pcbp

#endif // PCBP_WORKLOAD_SUITES_HH
