#include "workload/trace.hh"

#include <cstdio>
#include <cstring>
#include <set>

#include "common/logging.hh"

namespace pcbp
{

namespace
{

constexpr char magic[8] = {'P', 'C', 'B', 'P', 'T', 'R', 'C', '1'};

void
putU32(std::FILE *f, std::uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = (v >> (8 * i)) & 0xff;
    std::fwrite(b, 1, 4, f);
}

void
putU64(std::FILE *f, std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = (v >> (8 * i)) & 0xff;
    std::fwrite(b, 1, 8, f);
}

std::uint32_t
getU32(std::FILE *f)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, f) != 4)
        pcbp_fatal("trace file truncated");
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint64_t
getU64(std::FILE *f)
{
    unsigned char b[8];
    if (std::fread(b, 1, 8, f) != 8)
        pcbp_fatal("trace file truncated");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

} // namespace

void
saveTrace(const std::string &path,
          const std::vector<CommittedBranch> &trace)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        pcbp_fatal("cannot open '", path, "' for writing");
    std::fwrite(magic, 1, sizeof(magic), f);
    putU64(f, trace.size());
    for (const auto &r : trace) {
        putU32(f, r.block);
        putU64(f, r.pc);
        unsigned char taken = r.taken ? 1 : 0;
        std::fwrite(&taken, 1, 1, f);
        putU32(f, r.numUops);
    }
    std::fclose(f);
}

std::vector<CommittedBranch>
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        pcbp_fatal("cannot open '", path, "' for reading");
    char got[8];
    if (std::fread(got, 1, 8, f) != 8 ||
        std::memcmp(got, magic, 8) != 0) {
        std::fclose(f);
        pcbp_fatal("'", path, "' is not a pcbp trace");
    }
    const std::uint64_t n = getU64(f);
    std::vector<CommittedBranch> trace;
    trace.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        CommittedBranch r;
        r.block = getU32(f);
        r.pc = getU64(f);
        unsigned char taken;
        if (std::fread(&taken, 1, 1, f) != 1)
            pcbp_fatal("trace file truncated");
        r.taken = taken != 0;
        r.numUops = getU32(f);
        trace.push_back(r);
    }
    std::fclose(f);
    return trace;
}

TraceSummary
summarizeTrace(const std::vector<CommittedBranch> &trace)
{
    TraceSummary s;
    std::set<Addr> pcs;
    for (const auto &r : trace) {
        ++s.branches;
        s.uops += r.numUops;
        if (r.taken)
            ++s.takenBranches;
        pcs.insert(r.pc);
    }
    s.staticBranches = pcs.size();
    return s;
}

} // namespace pcbp
