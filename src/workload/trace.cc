#include "workload/trace.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include "common/logging.hh"
#include "workload/behavior.hh"
#include "workload/trace2.hh"

namespace pcbp
{

namespace tracefmt
{

namespace
{

void
putLe(unsigned char *out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

std::uint64_t
getLe(const unsigned char *in, int bytes)
{
    std::uint64_t v = 0;
    for (int i = bytes - 1; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

} // namespace

void
encodeRecord(const CommittedBranch &r, unsigned char *out)
{
    putLe(out, r.block, 4);
    putLe(out + 4, r.pc, 8);
    out[12] = r.taken ? 1 : 0;
    putLe(out + 13, r.numUops, 4);
}

CommittedBranch
decodeRecord(const unsigned char *in)
{
    CommittedBranch r;
    r.block = static_cast<BlockId>(getLe(in, 4));
    r.pc = getLe(in + 4, 8);
    r.taken = in[12] != 0;
    r.numUops = static_cast<std::uint32_t>(getLe(in + 13, 4));
    return r;
}

} // namespace tracefmt

std::FILE *
tryOpenTraceFile(const std::string &path, std::uint64_t &count,
                 std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open '" + path + "' for reading";
        return nullptr;
    }
    unsigned char header[tracefmt::headerBytes];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
        std::fclose(f);
        error = "'" + path + "' is shorter than a trace header";
        return nullptr;
    }
    if (std::memcmp(header, tracefmt::magic, 8) != 0) {
        std::fclose(f);
        error = "'" + path + "' is not a pcbp trace (bad magic)";
        return nullptr;
    }
    count = 0;
    for (int i = 7; i >= 0; --i)
        count = (count << 8) | header[8 + i];

    // Validate the header count against the bytes actually present,
    // so a corrupted count is an immediate, precise error instead of
    // a surprise mid-scan. filesystem::file_size (not ftell, whose
    // long return truncates >2GiB traces on 32-bit-long platforms).
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    const std::uint64_t body =
        ec || size < tracefmt::headerBytes
            ? 0
            : std::uint64_t(size) - tracefmt::headerBytes;
    if (body / tracefmt::recordBytes < count) {
        std::fclose(f);
        error = "'" + path + "' is truncated: header promises " +
                std::to_string(count) + " records, file holds " +
                std::to_string(body / tracefmt::recordBytes);
        return nullptr;
    }
    return f;
}

std::FILE *
openTraceFile(const std::string &path, std::uint64_t &count)
{
    std::string error;
    std::FILE *f = tryOpenTraceFile(path, count, error);
    if (!f)
        pcbp_fatal(error);
    return f;
}

bool
tryScanTraceFile(const std::string &path,
                 const std::function<void(const CommittedBranch &)> &fn,
                 std::string &error)
{
    if (isTrace2File(path))
        return tryScanTrace2File(path, fn, error);

    std::uint64_t n = 0;
    std::FILE *f = tryOpenTraceFile(path, n, error);
    if (!f)
        return false;

    constexpr std::size_t chunkRecords = 4096;
    std::vector<unsigned char> buf(chunkRecords * tracefmt::recordBytes);
    std::uint64_t remaining = n;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, chunkRecords));
        if (std::fread(buf.data(), tracefmt::recordBytes, want, f) !=
            want) {
            std::fclose(f);
            error = "trace file '" + path + "' truncated mid-scan";
            return false;
        }
        for (std::size_t i = 0; i < want; ++i) {
            fn(tracefmt::decodeRecord(buf.data() +
                                      i * tracefmt::recordBytes));
        }
        remaining -= want;
    }
    std::fclose(f);
    return true;
}

void
scanTraceFile(const std::string &path,
              const std::function<void(const CommittedBranch &)> &fn)
{
    std::string error;
    if (!tryScanTraceFile(path, fn, error))
        pcbp_fatal(error);
}

TraceWriter::TraceWriter(const std::string &path_) : path(path_)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        pcbp_fatal("cannot open '", path, "' for writing");
    unsigned char header[tracefmt::headerBytes] = {};
    std::memcpy(header, tracefmt::magic, 8);
    // Count is patched by finish(); zero until then.
    if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header))
        pcbp_fatal("write error on '", path, "'");
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::append(const CommittedBranch &r)
{
    pcbp_assert(file != nullptr, "appending to a finished TraceWriter");
    unsigned char rec[tracefmt::recordBytes];
    tracefmt::encodeRecord(r, rec);
    if (std::fwrite(rec, 1, sizeof(rec), file) != sizeof(rec))
        pcbp_fatal("write error on '", path, "'");
    ++count;
}

void
TraceWriter::finish()
{
    if (!file)
        return;
    unsigned char cnt[8];
    for (int i = 0; i < 8; ++i)
        cnt[i] = (count >> (8 * i)) & 0xff;
    if (std::fseek(file, 8, SEEK_SET) != 0 ||
        std::fwrite(cnt, 1, 8, file) != 8 || std::fclose(file) != 0) {
        file = nullptr;
        pcbp_fatal("write error on '", path, "'");
    }
    file = nullptr;
}

void
saveTrace(const std::string &path,
          const std::vector<CommittedBranch> &trace)
{
    TraceWriter w(path);
    for (const auto &r : trace)
        w.append(r);
    w.finish();
}

std::vector<CommittedBranch>
loadTrace(const std::string &path)
{
    std::vector<CommittedBranch> trace;
    trace.reserve(traceFileCount(path));
    scanTraceFile(path, [&](const CommittedBranch &r) {
        trace.push_back(r);
    });
    return trace;
}

std::uint64_t
traceFileCount(const std::string &path)
{
    if (isTrace2File(path))
        return Trace2Reader::open(path)->recordCount();
    std::uint64_t n = 0;
    std::FILE *f = openTraceFile(path, n);
    std::fclose(f);
    return n;
}

TraceSummary
summarizeTrace(const std::vector<CommittedBranch> &trace)
{
    TraceSummary s;
    std::set<Addr> pcs;
    for (const auto &r : trace) {
        ++s.branches;
        s.uops += r.numUops;
        if (r.taken)
            ++s.takenBranches;
        pcs.insert(r.pc);
    }
    s.staticBranches = pcs.size();
    return s;
}

TraceSummary
summarizeTraceFile(const std::string &path)
{
    TraceSummary s;
    std::set<Addr> pcs;
    scanTraceFile(path, [&](const CommittedBranch &r) {
        ++s.branches;
        s.uops += r.numUops;
        if (r.taken)
            ++s.takenBranches;
        pcs.insert(r.pc);
    });
    s.staticBranches = pcs.size();
    return s;
}

Program
reconstructProgramFromTrace(const std::string &path,
                            const std::string &name)
{
    if (traceFileCount(path) == 0)
        pcbp_fatal("trace '", path, "' is empty; nothing to reconstruct");

    struct BlockInfo
    {
        bool seen = false;
        Addr pc = 0;
        std::uint32_t numUops = 1;
        BlockId takenTarget = invalidBlock;
        BlockId fallthroughTarget = invalidBlock;
        std::uint64_t execs = 0;
        std::uint64_t takens = 0;
    };
    std::vector<BlockInfo> info;
    constexpr std::size_t maxBlocks = std::size_t(1) << 24;

    auto infoFor = [&](BlockId id) -> BlockInfo & {
        if (id >= info.size()) {
            if (id >= maxBlocks)
                pcbp_fatal("trace '", path, "' block id ", id,
                           " exceeds the reconstruction limit");
            info.resize(id + 1);
        }
        return info[id];
    };

    bool havePrev = false;
    CommittedBranch prev{};
    scanTraceFile(path, [&](const CommittedBranch &r) {
        BlockInfo &b = infoFor(r.block);
        b.seen = true;
        b.pc = r.pc;
        b.numUops = std::max<std::uint32_t>(r.numUops, 1);
        ++b.execs;
        if (r.taken)
            ++b.takens;
        if (havePrev) {
            BlockInfo &p = infoFor(prev.block);
            BlockId &edge =
                prev.taken ? p.takenTarget : p.fallthroughTarget;
            if (edge == invalidBlock)
                edge = r.block;
            // A conflicting successor would mean the trace was not
            // produced by a deterministic CFG walk; keep the first
            // edge so replay fails loudly at the walk assertion
            // rather than silently diverging.
        }
        havePrev = true;
        prev = r;
    });

    Program prog(name);
    for (std::size_t id = 0; id < info.size(); ++id) {
        BlockInfo &b = info[id];
        BasicBlock blk;
        if (!b.seen) {
            // Filler for an id hole: harmless self-loop, never on
            // the committed path.
            blk.branchPc = 0xf1110000 + Addr(id) * 16;
            blk.numUops = 1;
            blk.takenTarget = static_cast<BlockId>(id);
            blk.fallthroughTarget = static_cast<BlockId>(id);
            blk.behavior = std::make_unique<BiasedBehavior>(
                0.5, std::uint64_t(id) + 1);
            prog.addBlock(std::move(blk));
            continue;
        }
        // An unexercised direction falls back to the exercised one
        // (or self if the block only appears as the last record).
        if (b.takenTarget == invalidBlock)
            b.takenTarget = b.fallthroughTarget != invalidBlock
                                ? b.fallthroughTarget
                                : static_cast<BlockId>(id);
        if (b.fallthroughTarget == invalidBlock)
            b.fallthroughTarget = b.takenTarget;
        blk.branchPc = b.pc;
        blk.numUops = b.numUops;
        blk.takenTarget = b.takenTarget;
        blk.fallthroughTarget = b.fallthroughTarget;
        blk.behavior = std::make_unique<BiasedBehavior>(
            b.execs ? double(b.takens) / double(b.execs) : 0.5,
            std::uint64_t(id) + 1);
        prog.addBlock(std::move(blk));
    }
    prog.validate();
    return prog;
}

} // namespace pcbp
