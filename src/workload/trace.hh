/**
 * @file
 * Committed-branch trace record/replay.
 *
 * A trace is the committed (correct-path) branch stream of a program
 * walk. Traces are useful for conventional predictor evaluation and
 * for regression tests — but, exactly as §6 of the paper argues, a
 * linear trace *cannot* drive a prophet/critic hybrid faithfully:
 * the future bits must be produced by really walking the wrong path
 * through the CFG. Feeding correct-path outcomes as future bits
 * gives the critic oracle information (see bench/ablations, which
 * quantifies the inflation).
 */

#ifndef PCBP_WORKLOAD_TRACE_HH
#define PCBP_WORKLOAD_TRACE_HH

#include <string>
#include <vector>

#include "workload/cfg.hh"

namespace pcbp
{

/**
 * Write a committed trace to a binary file.
 *
 * Format: 16-byte header ("PCBPTRC1" + count), then one record per
 * branch: u32 block, u64 pc, u8 taken, u32 uops (packed
 * little-endian).
 */
void saveTrace(const std::string &path,
               const std::vector<CommittedBranch> &trace);

/** Read a trace written by saveTrace (fatal on format errors). */
std::vector<CommittedBranch> loadTrace(const std::string &path);

/**
 * Statistics of a committed trace: branch/uop counts, taken rate,
 * distinct static branches.
 */
struct TraceSummary
{
    std::uint64_t branches = 0;
    std::uint64_t uops = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t staticBranches = 0;

    double takenRate() const
    {
        return branches ? double(takenBranches) / double(branches) : 0.0;
    }

    double uopsPerBranch() const
    {
        return branches ? double(uops) / double(branches) : 0.0;
    }
};

/** Summarize a trace. */
TraceSummary summarizeTrace(const std::vector<CommittedBranch> &trace);

} // namespace pcbp

#endif // PCBP_WORKLOAD_TRACE_HH
