/**
 * @file
 * Committed-branch trace record/replay (the PCBPTRC1 format).
 *
 * A trace is the committed (correct-path) branch stream of a program
 * walk. Traces are useful for conventional predictor evaluation, for
 * regression tests, and — replayed through a TraceFileStream
 * (sim/committed_stream.hh) against a CFG reconstructed with
 * reconstructProgramFromTrace() — as a workload class of their own
 * (`trace:<path>` in the registry). Note, exactly as §6 of the paper
 * argues, that a linear trace *cannot* by itself drive a
 * prophet/critic hybrid faithfully: the future bits must be produced
 * by really walking the wrong path through a CFG. Feeding
 * correct-path outcomes as future bits gives the critic oracle
 * information (see bench/ablations, which quantifies the inflation).
 *
 * Format (see DESIGN.md §5): 16-byte header ("PCBPTRC1" magic + u64
 * record count), then one 17-byte record per branch: u32 block,
 * u64 pc, u8 taken, u32 uops, all little-endian.
 *
 * PCBPTRC1 is the flat *interchange* format; workload/trace2.hh adds
 * PCBPTRC2, the block-compressed indexed store. The generic entry
 * points below (tryScanTraceFile, scanTraceFile, traceFileCount, and
 * everything built on them) sniff the magic and handle either format
 * transparently, so `trace:<path>` consumers never care which one
 * they were given.
 */

#ifndef PCBP_WORKLOAD_TRACE_HH
#define PCBP_WORKLOAD_TRACE_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "workload/cfg.hh"

namespace pcbp
{

/** @name PCBPTRC1 wire format, shared by writer, loader, streams. */
/// @{
namespace tracefmt
{

constexpr char magic[8] = {'P', 'C', 'B', 'P', 'T', 'R', 'C', '1'};
constexpr std::size_t headerBytes = 16;
constexpr std::size_t recordBytes = 17;

/** Encode one record into @p out (recordBytes bytes). */
void encodeRecord(const CommittedBranch &r, unsigned char *out);

/** Decode one record from @p in (recordBytes bytes). */
CommittedBranch decodeRecord(const unsigned char *in);

} // namespace tracefmt
/// @}

/**
 * Open a trace file, validate the magic, and leave the handle
 * positioned at the first record; @p count receives the header's
 * record count. Fatal on unreadable or non-trace files; the caller
 * owns (and closes) the handle.
 */
std::FILE *openTraceFile(const std::string &path, std::uint64_t &count);

/**
 * Non-fatal openTraceFile: nullptr on an unreadable, short, or
 * wrong-magic file, with a description in @p error. The header's
 * record count is additionally checked against the file's actual
 * size, so a corrupted count (bit flip, torn write) is rejected here
 * instead of surfacing as a read error mid-scan.
 */
std::FILE *tryOpenTraceFile(const std::string &path,
                            std::uint64_t &count, std::string &error);

/**
 * One chunked pass over every record of a trace file of either
 * format (magic-sniffed), in order — the shared reader under
 * summaries and CFG reconstruction (O(chunk) memory; fatal on
 * truncation).
 */
void scanTraceFile(const std::string &path,
                   const std::function<void(const CommittedBranch &)> &fn);

/**
 * Non-fatal scanTraceFile: false (with @p error filled) on
 * unreadable, corrupt-magic, or truncated files, without invoking
 * @p fn past the corruption. The fuzz/property tests drive random
 * garbage through this entry point; CLI paths keep the fatal
 * wrapper.
 */
bool tryScanTraceFile(
    const std::string &path,
    const std::function<void(const CommittedBranch &)> &fn,
    std::string &error);

/**
 * Streaming trace writer: append records one at a time (buffered,
 * chunked), then finish() patches the record count into the header.
 * The destructor finishes automatically; construction and I/O errors
 * are fatal.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const CommittedBranch &r);

    /** Flush, patch the header count, and close. Idempotent. */
    void finish();

    std::uint64_t written() const { return count; }

  private:
    std::string path;
    std::FILE *file = nullptr;
    std::uint64_t count = 0;
};

/** Write a committed trace to a binary file (TraceWriter loop). */
void saveTrace(const std::string &path,
               const std::vector<CommittedBranch> &trace);

/** Read a trace written by saveTrace (fatal on format errors). */
std::vector<CommittedBranch> loadTrace(const std::string &path);

/** Record count from a trace file's header, either format (fatal on
 *  bad files). */
std::uint64_t traceFileCount(const std::string &path);

/**
 * Statistics of a committed trace: branch/uop counts, taken rate,
 * distinct static branches.
 */
struct TraceSummary
{
    std::uint64_t branches = 0;
    std::uint64_t uops = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t staticBranches = 0;

    double takenRate() const
    {
        return branches ? double(takenBranches) / double(branches) : 0.0;
    }

    double uopsPerBranch() const
    {
        return branches ? double(uops) / double(branches) : 0.0;
    }
};

/** Summarize a trace. */
TraceSummary summarizeTrace(const std::vector<CommittedBranch> &trace);

/** Summarize a trace file in one chunked pass (O(chunk) memory). */
TraceSummary summarizeTraceFile(const std::string &path);

/**
 * Rebuild a Program from a trace file so the trace can drive the
 * speculative simulators: block ids, branch PCs and uop counts come
 * from the records; successor edges are learned from consecutive
 * records. Edges never exercised by the trace fall back to the
 * block's other successor (a branch around nothing), so wrong-path
 * walks stay inside the CFG; behaviors are fitted per-block biased
 * coins (matching each block's observed taken rate), used only if
 * the reconstructed program is walked synthetically — replay itself
 * takes outcomes from the trace. One chunked pass, O(static blocks)
 * memory.
 */
Program reconstructProgramFromTrace(const std::string &path,
                                    const std::string &name);

} // namespace pcbp

#endif // PCBP_WORKLOAD_TRACE_HH
