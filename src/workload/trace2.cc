#include "workload/trace2.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "workload/trace.hh"

namespace pcbp
{

namespace
{

void
putLe(unsigned char *out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

std::uint64_t
getLe(const unsigned char *in, int bytes)
{
    std::uint64_t v = 0;
    for (int i = bytes - 1; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(0x80 | (v & 0x7f)));
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

/**
 * Bounds-checked LEB128 read from @p base[pos..end): false on
 * overrun or on a varint longer than the 10 bytes a u64 can need
 * (the cap keeps corrupt high-bit runs from walking the mapping).
 */
bool
readVarint(const unsigned char *base, std::uint64_t end,
           std::uint64_t &pos, std::uint64_t &out)
{
    out = 0;
    for (int i = 0; i < 10; ++i) {
        if (pos >= end)
            return false;
        const unsigned char b = base[pos++];
        out |= std::uint64_t(b & 0x7f) << (7 * i);
        if (!(b & 0x80))
            return true;
    }
    return false;
}

std::uint64_t
zigzag(std::int64_t d)
{
    return (std::uint64_t(d) << 1) ^ std::uint64_t(d >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return std::int64_t(z >> 1) ^ -std::int64_t(z & 1);
}

std::uint64_t
blocksFor(std::uint64_t count, std::uint32_t per_block)
{
    return count / per_block + (count % per_block ? 1 : 0);
}

} // namespace

// ------------------------------------------------------------- writer

Trace2Writer::Trace2Writer(const std::string &path_,
                           std::uint32_t records_per_block)
    : path(path_), blockRecords(records_per_block)
{
    pcbp_assert(blockRecords >= 1 &&
                    blockRecords <= trace2fmt::maxBlockRecords,
                "records-per-block out of range");
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        pcbp_fatal("cannot open '", path, "' for writing");
    unsigned char header[trace2fmt::headerBytes] = {};
    std::memcpy(header, trace2fmt::magic, 8);
    putLe(header + 8, trace2fmt::version, 4);
    putLe(header + 12, blockRecords, 4);
    // Record count and index offset are patched by finish().
    if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header))
        pcbp_fatal("write error on '", path, "'");
    pending.reserve(blockRecords);
}

Trace2Writer::~Trace2Writer()
{
    finish();
}

void
Trace2Writer::append(const CommittedBranch &r)
{
    pcbp_assert(file != nullptr, "appending to a finished Trace2Writer");
    pending.push_back(r);
    ++count;
    if (pending.size() >= blockRecords)
        flushBlock();
}

void
Trace2Writer::flushBlock()
{
    if (pending.empty())
        return;
    const std::size_t n = pending.size();

    encoded.clear();
    // Outcome bitstream: bit j of byte j/8 (LSB first) = taken.
    encoded.resize((n + 7) / 8, 0);
    for (std::size_t j = 0; j < n; ++j) {
        if (pending[j].taken)
            encoded[j / 8] |= static_cast<unsigned char>(1u << (j % 8));
    }
    // Record stream: delta-coded block ids with a per-record
    // exception flag for records whose (pc, uops) disagree with the
    // first-seen dictionary entry (zero exceptions for traces that
    // are genuine CFG walks).
    std::int64_t prev_id = 0;
    for (std::size_t j = 0; j < n; ++j) {
        const CommittedBranch &r = pending[j];
        const auto fit =
            dict.emplace(r.block, std::make_pair(r.pc, r.numUops));
        const bool exception = fit.first->second.first != r.pc ||
                               fit.first->second.second != r.numUops;
        const std::int64_t id = std::int64_t(r.block);
        putVarint(encoded, (zigzag(id - prev_id) << 1) |
                               std::uint64_t(exception));
        if (exception) {
            putVarint(encoded, r.pc);
            putVarint(encoded, r.numUops);
        }
        prev_id = id;
    }

    unsigned char head[8];
    putLe(head, encoded.size(), 4); // payload bytes past the descriptor
    putLe(head + 4, n, 4);          // record count
    if (std::fwrite(head, 1, sizeof(head), file) != sizeof(head) ||
        std::fwrite(encoded.data(), 1, encoded.size(), file) !=
            encoded.size()) {
        pcbp_fatal("write error on '", path, "'");
    }
    blockOffsets.push_back(nextOffset);
    nextOffset += sizeof(head) + encoded.size();
    pending.clear();
}

void
Trace2Writer::finish()
{
    if (!file)
        return;
    flushBlock();
    const std::uint64_t index_offset = nextOffset;

    encoded.clear();
    const auto appendMagic = [&](const char (&m)[8]) {
        for (const char c : m)
            encoded.push_back(static_cast<unsigned char>(c));
    };
    appendMagic(trace2fmt::indexMagic);
    unsigned char scratch[8];
    putLe(scratch, dict.size(), 4);
    encoded.insert(encoded.end(), scratch, scratch + 4);
    // Dictionary entries by ascending id: first id absolute, the
    // rest as (always >= 1) deltas.
    std::uint64_t prev_id = 0;
    bool first = true;
    for (const auto &[id, meta] : dict) {
        putVarint(encoded, first ? std::uint64_t(id)
                                 : std::uint64_t(id) - prev_id);
        putVarint(encoded, meta.first);
        putVarint(encoded, meta.second);
        prev_id = id;
        first = false;
    }
    putLe(scratch, blockOffsets.size(), 4);
    encoded.insert(encoded.end(), scratch, scratch + 4);
    for (const std::uint64_t off : blockOffsets) {
        putLe(scratch, off, 8);
        encoded.insert(encoded.end(), scratch, scratch + 8);
    }
    putLe(scratch, count, 8); // record-count echo
    encoded.insert(encoded.end(), scratch, scratch + 8);
    appendMagic(trace2fmt::endMagic);

    unsigned char patch[16];
    putLe(patch, count, 8);
    putLe(patch + 8, index_offset, 8);
    if (std::fwrite(encoded.data(), 1, encoded.size(), file) !=
            encoded.size() ||
        std::fseek(file, 16, SEEK_SET) != 0 ||
        std::fwrite(patch, 1, sizeof(patch), file) != sizeof(patch) ||
        std::fclose(file) != 0) {
        file = nullptr;
        pcbp_fatal("write error on '", path, "'");
    }
    file = nullptr;
}

// ------------------------------------------------------------- reader

Trace2Reader::~Trace2Reader()
{
    if (map)
        ::munmap(const_cast<unsigned char *>(map), mapBytes);
}

std::shared_ptr<const Trace2Reader>
Trace2Reader::tryOpen(const std::string &path, std::string &error)
{
    const auto fail = [&](const std::string &what) {
        error = "'" + path + "' " + what;
        return nullptr;
    };

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "cannot open '" + path + "' for reading";
        return nullptr;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return fail("is not statable");
    }
    const std::uint64_t size = std::uint64_t(st.st_size);
    if (size < trace2fmt::headerBytes + trace2fmt::footerMinBytes) {
        ::close(fd);
        return fail("is shorter than a PCBPTRC2 header and footer");
    }
    void *mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapped == MAP_FAILED)
        return fail("cannot be memory-mapped");

    // From here on the mapping must be released on every early exit.
    std::shared_ptr<Trace2Reader> r(new Trace2Reader());
    r->path = path;
    r->map = static_cast<const unsigned char *>(mapped);
    r->mapBytes = size;
    const unsigned char *m = r->map;

    if (std::memcmp(m, trace2fmt::magic, 8) != 0)
        return fail("is not a pcbp v2 trace (bad magic)");
    r->fileVersion = std::uint32_t(getLe(m + 8, 4));
    if (r->fileVersion != trace2fmt::version) {
        return fail("has unsupported PCBPTRC2 version " +
                    std::to_string(r->fileVersion));
    }
    r->blockRecords = std::uint32_t(getLe(m + 12, 4));
    if (r->blockRecords < 1 ||
        r->blockRecords > trace2fmt::maxBlockRecords)
        return fail("has an out-of-range records-per-block");
    r->count = getLe(m + 16, 8);
    r->indexOffset = getLe(m + 24, 8);
    if (r->indexOffset < trace2fmt::headerBytes ||
        r->indexOffset > size - trace2fmt::footerMinBytes)
        return fail("has an index offset outside the file");

    const std::uint64_t num_blocks =
        blocksFor(r->count, r->blockRecords);
    // Every block costs at least its 8-byte descriptor, which bounds
    // a corrupt record count before anything is allocated from it.
    if (num_blocks > (r->indexOffset - trace2fmt::headerBytes) / 8)
        return fail("promises more records than its blocks can hold");

    // Footer: dictionary, block index, count echo, end magic — all
    // bounds-checked against the mapping and required to consume the
    // file exactly.
    std::uint64_t pos = r->indexOffset;
    if (std::memcmp(m + pos, trace2fmt::indexMagic, 8) != 0)
        return fail("has a corrupt footer (bad index magic)");
    pos += 8;
    const std::uint64_t static_count = getLe(m + pos, 4);
    pos += 4;
    std::uint64_t prev_id = 0;
    for (std::uint64_t i = 0; i < static_count; ++i) {
        std::uint64_t id_field = 0, pc = 0, uops = 0;
        if (!readVarint(m, size, pos, id_field) ||
            !readVarint(m, size, pos, pc) ||
            !readVarint(m, size, pos, uops))
            return fail("has a truncated static-branch dictionary");
        const std::uint64_t id =
            i == 0 ? id_field : prev_id + id_field;
        if ((i > 0 && id_field == 0) || id > 0xffffffffull ||
            uops > 0xffffffffull)
            return fail("has a corrupt static-branch dictionary");
        r->dict.emplace(BlockId(id),
                        std::make_pair(Addr(pc), std::uint32_t(uops)));
        prev_id = id;
    }
    if (pos + 4 > size)
        return fail("has a truncated footer");
    const std::uint64_t footer_blocks = getLe(m + pos, 4);
    pos += 4;
    if (footer_blocks != num_blocks)
        return fail("has an index that disagrees with its header");
    if (pos + 8 * num_blocks + 16 != size)
        return fail("has a footer of the wrong size");
    r->blockOffsets.reserve(num_blocks);
    std::uint64_t prev_off = 0;
    for (std::uint64_t b = 0; b < num_blocks; ++b) {
        const std::uint64_t off = getLe(m + pos, 8);
        pos += 8;
        if (off < trace2fmt::headerBytes || off + 8 > r->indexOffset ||
            (b == 0 ? off != trace2fmt::headerBytes
                    : off <= prev_off))
            return fail("has a corrupt block index");
        r->blockOffsets.push_back(off);
        prev_off = off;
    }
    if (getLe(m + pos, 8) != r->count)
        return fail("has a record count echo mismatch (torn write)");
    pos += 8;
    if (std::memcmp(m + pos, trace2fmt::endMagic, 8) != 0)
        return fail("has a corrupt footer (bad end magic)");
    return r;
}

std::shared_ptr<const Trace2Reader>
Trace2Reader::open(const std::string &path)
{
    std::string error;
    auto r = tryOpen(path, error);
    if (!r)
        pcbp_fatal(error);
    return r;
}

std::uint32_t
Trace2Reader::blockLength(std::uint64_t b) const
{
    pcbp_assert(b < blockOffsets.size(), "block index out of range");
    const std::uint64_t start = b * blockRecords;
    return std::uint32_t(
        std::min<std::uint64_t>(blockRecords, count - start));
}

bool
Trace2Reader::tryDecodeBlock(std::uint64_t b,
                             std::vector<CommittedBranch> &out,
                             std::string &error) const
{
    out.clear();
    const auto fail = [&](const std::string &what) {
        out.clear();
        error = "'" + path + "' block " + std::to_string(b) + " " +
                what;
        return false;
    };

    const std::uint64_t off = blockOffsets[b];
    const std::uint64_t payload = getLe(map + off, 4);
    const std::uint32_t n = std::uint32_t(getLe(map + off + 4, 4));
    if (n != blockLength(b))
        return fail("has the wrong record count");
    if (payload > indexOffset - off - 8)
        return fail("overruns the block region");
    const std::uint64_t end = off + 8 + payload;
    const std::uint64_t outcome_base = off + 8;
    const std::uint64_t outcome_bytes = (std::uint64_t(n) + 7) / 8;
    if (outcome_bytes > payload)
        return fail("is too short for its outcome bitstream");

    out.reserve(n);
    std::uint64_t pos = outcome_base + outcome_bytes;
    std::int64_t prev_id = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
        std::uint64_t v = 0;
        if (!readVarint(map, end, pos, v))
            return fail("is truncated mid-record (torn write)");
        const std::int64_t id = prev_id + unzigzag(v >> 1);
        if (id < 0 || id > 0xffffffffll)
            return fail("decodes an out-of-range block id");
        CommittedBranch r;
        r.block = BlockId(id);
        r.taken =
            (map[outcome_base + j / 8] >> (j % 8)) & 1;
        if (v & 1) {
            std::uint64_t pc = 0, uops = 0;
            if (!readVarint(map, end, pos, pc) ||
                !readVarint(map, end, pos, uops) ||
                uops > 0xffffffffull)
                return fail("has a corrupt record exception");
            r.pc = pc;
            r.numUops = std::uint32_t(uops);
        } else {
            const auto it = dict.find(r.block);
            if (it == dict.end())
                return fail("references a block id missing from the "
                            "static dictionary");
            r.pc = it->second.first;
            r.numUops = it->second.second;
        }
        out.push_back(r);
        prev_id = id;
    }
    if (pos != end)
        return fail("does not consume its declared bytes (torn "
                    "write)");
    return true;
}

void
Trace2Reader::decodeBlock(std::uint64_t b,
                          std::vector<CommittedBranch> &out) const
{
    std::string error;
    if (!tryDecodeBlock(b, out, error))
        pcbp_fatal(error);
}

Trace2Info
Trace2Reader::info() const
{
    Trace2Info i;
    i.version = fileVersion;
    i.recordsPerBlock = blockRecords;
    i.recordCount = count;
    i.numBlocks = blockOffsets.size();
    i.staticBranches = dict.size();
    i.fileBytes = mapBytes;
    i.indexBytes = mapBytes - indexOffset;
    return i;
}

// ---------------------------------------------------------- dispatch

bool
isTrace2File(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    unsigned char m[8];
    const bool v2 = std::fread(m, 1, 8, f) == 8 &&
                    std::memcmp(m, trace2fmt::magic, 8) == 0;
    std::fclose(f);
    return v2;
}

bool
tryScanTrace2File(const std::string &path,
                  const std::function<void(const CommittedBranch &)> &fn,
                  std::string &error)
{
    const auto reader = Trace2Reader::tryOpen(path, error);
    if (!reader)
        return false;
    std::vector<CommittedBranch> block;
    for (std::uint64_t b = 0; b < reader->numBlocks(); ++b) {
        if (!reader->tryDecodeBlock(b, block, error))
            return false;
        for (const CommittedBranch &r : block)
            fn(r);
    }
    return true;
}

std::uint64_t
convertTraceFile(const std::string &in, const std::string &out,
                 bool to_v2, std::uint32_t records_per_block)
{
    // scanTraceFile sniffs the input's magic, so both directions —
    // and a same-format rewrite — share this one loop.
    if (to_v2) {
        Trace2Writer w(out, records_per_block);
        scanTraceFile(in,
                      [&](const CommittedBranch &r) { w.append(r); });
        w.finish();
        return w.written();
    }
    TraceWriter w(out);
    scanTraceFile(in, [&](const CommittedBranch &r) { w.append(r); });
    w.finish();
    return w.written();
}

std::string
renderTraceInfo(const std::string &path)
{
    char line[128];
    std::string s;
    const auto kv = [&](const char *key, const char *fmt, auto value) {
        std::snprintf(line, sizeof(line),
                      (std::string("%s ") + fmt + "\n").c_str(), key,
                      value);
        s += line;
    };

    if (!isTrace2File(path)) {
        const std::uint64_t n = traceFileCount(path);
        const std::uint64_t bytes =
            tracefmt::headerBytes + n * tracefmt::recordBytes;
        kv("format", "%s", "pcbptrc1");
        kv("records", "%" PRIu64, n);
        kv("file_bytes", "%" PRIu64, bytes);
        kv("bytes_per_record", "%.3f",
           n ? double(bytes) / double(n) : 0.0);
        return s;
    }

    const Trace2Info i = Trace2Reader::open(path)->info();
    const std::uint64_t v1_bytes =
        tracefmt::headerBytes + i.recordCount * tracefmt::recordBytes;
    kv("format", "%s", "pcbptrc2");
    kv("version", "%u", i.version);
    kv("records", "%" PRIu64, i.recordCount);
    kv("records_per_block", "%u", i.recordsPerBlock);
    kv("blocks", "%" PRIu64, i.numBlocks);
    kv("static_branches", "%" PRIu64, i.staticBranches);
    kv("file_bytes", "%" PRIu64, i.fileBytes);
    kv("index_bytes", "%" PRIu64, i.indexBytes);
    kv("bytes_per_record", "%.3f",
       i.recordCount ? double(i.fileBytes) / double(i.recordCount)
                     : 0.0);
    kv("v1_bytes", "%" PRIu64, v1_bytes);
    kv("ratio_vs_v1", "%.2f",
       i.fileBytes ? double(v1_bytes) / double(i.fileBytes) : 0.0);
    return s;
}

} // namespace pcbp
