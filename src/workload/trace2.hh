/**
 * @file
 * PCBPTRC2: block-compressed, indexed, mmap-able committed-branch
 * traces.
 *
 * PCBPTRC1 (workload/trace.hh) spends a flat 17 bytes per branch, so
 * a billion-branch real trace costs ~17 GB and reaching branch N
 * means decoding every branch before it. PCBPTRC2 keeps the same
 * record model — (block, pc, taken, uops) per committed branch — but
 * stores it as fixed-size, *independently decodable* blocks of
 * delta/varint-coded records plus an outcome bitstream, a static
 * branch dictionary shared by all blocks, and a footer index mapping
 * branch ordinal -> block file offset. The result is typically
 * 4-14x smaller than PCBPTRC1 and O(1) to seek: ordinal / block
 * records names the block, the index names its bytes, and at most
 * one block is decoded to land on any branch — which is what makes
 * fork-based mid-trace warmup cheap on real traces (DESIGN.md §11).
 *
 * PCBPTRC1 stays the interchange format: conversion is lossless in
 * both directions (convertTraceFile), and every `trace:<path>`
 * consumer sniffs the magic and opens either format transparently.
 * Full wire spec: DESIGN.md §13.
 */

#ifndef PCBP_WORKLOAD_TRACE2_HH
#define PCBP_WORKLOAD_TRACE2_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/cfg.hh"

namespace pcbp
{

/** @name PCBPTRC2 wire format, shared by writer, reader, streams. */
/// @{
namespace trace2fmt
{

constexpr char magic[8] = {'P', 'C', 'B', 'P', 'T', 'R', 'C', '2'};
constexpr char indexMagic[8] = {'P', 'C', 'B', 'P', 'I', 'D', 'X', '2'};
constexpr char endMagic[8] = {'P', 'C', 'B', 'P', 'E', 'N', 'D', '2'};
constexpr std::uint32_t version = 1;

/** magic(8) + version(4) + recordsPerBlock(4) + recordCount(8) +
 *  indexOffset(8) + reserved(8). */
constexpr std::size_t headerBytes = 40;

/** Smallest possible footer: indexMagic + staticCount(4) +
 *  numBlocks(4) + recordCount echo(8) + endMagic. */
constexpr std::size_t footerMinBytes = 32;

constexpr std::uint32_t defaultBlockRecords = 4096;
constexpr std::uint32_t maxBlockRecords = 1u << 20;

} // namespace trace2fmt
/// @}

/** Parsed identity of a PCBPTRC2 file (the `pcbp_trace info` view). */
struct Trace2Info
{
    std::uint32_t version = 0;
    std::uint32_t recordsPerBlock = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t numBlocks = 0;
    std::uint64_t staticBranches = 0; //!< static-dictionary entries
    std::uint64_t fileBytes = 0;
    std::uint64_t indexBytes = 0; //!< footer (dict + index) bytes
};

/**
 * Read-only, mmap-backed view of a PCBPTRC2 file: the parsed header
 * and footer (static dictionary + block index) plus per-block decode.
 * Immutable after open, so concurrent readers — and the stream forks
 * of DESIGN.md §11 — share one mapping through a shared_ptr.
 *
 * tryOpen() validates everything reachable without decoding blocks:
 * magic, version, geometry, footer bounds, index monotonicity, and
 * the record-count echo. Block payloads are validated on decode
 * (tryDecodeBlock), where a torn or corrupted block is a non-fatal
 * error, never a crash or out-of-bounds read.
 */
class Trace2Reader
{
  public:
    ~Trace2Reader();

    Trace2Reader(const Trace2Reader &) = delete;
    Trace2Reader &operator=(const Trace2Reader &) = delete;

    /** nullptr on any malformed file, with a description in
     *  @p error. */
    static std::shared_ptr<const Trace2Reader>
    tryOpen(const std::string &path, std::string &error);

    /** Fatal wrapper over tryOpen (CLI / stream construction). */
    static std::shared_ptr<const Trace2Reader>
    open(const std::string &path);

    std::uint64_t recordCount() const { return count; }
    std::uint32_t recordsPerBlock() const { return blockRecords; }
    std::uint64_t numBlocks() const { return blockOffsets.size(); }
    std::uint64_t mappedBytes() const { return mapBytes; }
    const std::string &filePath() const { return path; }
    Trace2Info info() const;

    /** Block holding branch ordinal @p ordinal. */
    std::uint64_t
    blockOfOrdinal(std::uint64_t ordinal) const
    {
        return ordinal / blockRecords;
    }

    /** Records block @p b holds (the last block may be short). */
    std::uint32_t blockLength(std::uint64_t b) const;

    /**
     * Decode block @p b into @p out (cleared first). False, with
     * @p error filled and @p out cleared, on a corrupt payload —
     * bounds overrun, record-count mismatch, dictionary miss, or a
     * payload that does not consume exactly its declared bytes (the
     * torn-write detector).
     */
    bool tryDecodeBlock(std::uint64_t b,
                        std::vector<CommittedBranch> &out,
                        std::string &error) const;

    /** Fatal wrapper over tryDecodeBlock (stream hot path). */
    void decodeBlock(std::uint64_t b,
                     std::vector<CommittedBranch> &out) const;

  private:
    Trace2Reader() = default;

    std::string path;
    const unsigned char *map = nullptr;
    std::uint64_t mapBytes = 0;

    std::uint32_t fileVersion = 0;
    std::uint32_t blockRecords = 0;
    std::uint64_t count = 0;
    std::uint64_t indexOffset = 0;

    std::vector<std::uint64_t> blockOffsets;
    /** Static dictionary: blockId -> (pc, uops). */
    std::unordered_map<BlockId, std::pair<Addr, std::uint32_t>> dict;
};

/**
 * Streaming PCBPTRC2 writer: append records one at a time; blocks
 * are encoded and flushed every recordsPerBlock records, the footer
 * (dictionary + index) is written by finish(), which then patches
 * the header's record count and index offset. The destructor
 * finishes automatically; construction and I/O errors are fatal —
 * the mirror of TraceWriter's contract.
 */
class Trace2Writer
{
  public:
    explicit Trace2Writer(
        const std::string &path,
        std::uint32_t records_per_block = trace2fmt::defaultBlockRecords);
    ~Trace2Writer();

    Trace2Writer(const Trace2Writer &) = delete;
    Trace2Writer &operator=(const Trace2Writer &) = delete;

    void append(const CommittedBranch &r);

    /** Flush the tail block, write the footer, patch the header, and
     *  close. Idempotent. */
    void finish();

    std::uint64_t written() const { return count; }

  private:
    void flushBlock();

    std::string path;
    std::FILE *file = nullptr;
    std::uint64_t count = 0;
    std::uint32_t blockRecords = 0;
    std::vector<CommittedBranch> pending;
    std::vector<unsigned char> encoded; //!< reused encode scratch
    std::vector<std::uint64_t> blockOffsets;
    std::uint64_t nextOffset = trace2fmt::headerBytes;
    /** First-seen (pc, uops) per block id; ordered so the footer
     *  dictionary is written (and delta-coded) by ascending id. */
    std::map<BlockId, std::pair<Addr, std::uint32_t>> dict;
};

/** True when the file starts with the PCBPTRC2 magic (false on
 *  unreadable or short files — never an error). */
bool isTrace2File(const std::string &path);

/**
 * One indexed pass over every record, in order — the PCBPTRC2 mirror
 * of tryScanTraceFile: false (with @p error) on malformed files,
 * without invoking @p fn past the corruption.
 */
bool tryScanTrace2File(
    const std::string &path,
    const std::function<void(const CommittedBranch &)> &fn,
    std::string &error);

/**
 * Losslessly convert between trace formats, sniffing the input's
 * magic: @p to_v2 selects the output format (records_per_block is
 * ignored when writing PCBPTRC1). Returns the record count written.
 * Fatal on malformed input; O(block) memory.
 */
std::uint64_t convertTraceFile(
    const std::string &in, const std::string &out, bool to_v2,
    std::uint32_t records_per_block = trace2fmt::defaultBlockRecords);

/**
 * Deterministic `key value` lines describing a trace file of either
 * format (the `pcbp_trace info` body; schema pinned by
 * tests/golden/trace_info_schema.txt). The path itself is not
 * embedded, so output depends only on the file's bytes.
 */
std::string renderTraceInfo(const std::string &path);

} // namespace pcbp

#endif // PCBP_WORKLOAD_TRACE2_HH
