/**
 * @file
 * Tests for the perf subsystem (src/perf/) and the hot-path
 * optimization pass it measures:
 *
 *  - the BENCH_*.json schema is pinned by a golden built from fixed
 *    fake measurements (so the golden is byte-deterministic) and the
 *    parser round-trips what the writer emits;
 *  - `compare` regression-threshold logic: within-threshold drops
 *    pass, beyond-threshold drops gate, improvements and one-sided
 *    benchmarks never gate, incomparable runs are flagged;
 *  - the registry executes: a real (tiny) measurement produces sane
 *    numbers;
 *  - the checkpoint-arena SpecCore stays event-identical to the seed
 *    protocol: the commit-event stream of a hybrid engine run is
 *    pinned by a golden, and a deeper-than-the-initial-slab pipeline
 *    (forcing ring growth + wraparound) stays deterministic.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "perf/bench_report.hh"
#include "sim/driver.hh"

namespace pcbp
{
namespace
{

void
expectMatchesGolden(const std::string &rendered, const char *stem)
{
    const std::string path =
        std::string(PCBP_TEST_GOLDEN_DIR) + "/" + stem;
    if (std::getenv("PCBP_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with PCBP_UPDATE_GOLDEN=1 to create)";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(rendered, os.str()) << "golden drift in " << stem;
}

/** A BenchResult with fixed fake numbers (schema tests only). */
BenchResult
fakeResult(const std::string &name, const std::string &group,
           double ns_median, std::uint64_t items)
{
    BenchResult r;
    r.name = name;
    r.group = group;
    r.unit = "item";
    r.m.repeats = 5;
    r.m.itemsPerRep = items;
    r.m.nsMedian = ns_median;
    r.m.nsMin = ns_median * 0.9;
    r.m.nsMax = ns_median * 1.25;
    r.m.cyclesMedian = ns_median * 2.0;
    return r;
}

BenchRun
fakeRun(std::vector<BenchResult> results)
{
    BenchRun run;
    run.name = "fake";
    run.quick = false;
    run.scale = 1.0;
    run.repeats = 5;
    run.results = std::move(results);
    return run;
}

TEST(BenchReport, JsonSchemaGolden)
{
    const BenchRun run = fakeRun({
        fakeResult("engine.hybrid_tgshare", "engine", 5.0e8, 1550000),
        fakeResult("pred.\"quoted\"", "predictor", 2.5e7, 2000000),
    });
    expectMatchesGolden(benchRunToJson(run), "bench_schema.json");
}

TEST(BenchReport, MarkdownSummaryGolden)
{
    const BenchRun run = fakeRun(
        {fakeResult("engine.hybrid_tgshare", "engine", 5.0e8, 1550000)});
    expectMatchesGolden(benchRunTable(run).toMarkdown(),
                        "bench_summary.md");
}

TEST(BenchReport, JsonRoundTrips)
{
    const BenchRun run = fakeRun({
        fakeResult("engine.hybrid_tgshare", "engine", 5.0e8, 1550000),
        fakeResult("pred.gshare", "predictor", 2.5e7, 2000000),
        // Escaped quotes/backslashes must survive the round trip.
        fakeResult("pred.\"q\\uoted\"", "predictor", 1.0e7, 500000),
    });
    const BenchRun parsed = benchRunFromJson(benchRunToJson(run));
    ASSERT_EQ(parsed.results.size(), run.results.size());
    EXPECT_EQ(parsed.name, "fake");
    EXPECT_FALSE(parsed.quick);
    EXPECT_DOUBLE_EQ(parsed.scale, 1.0);
    EXPECT_EQ(parsed.repeats, 5u);
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        EXPECT_EQ(parsed.results[i].name, run.results[i].name);
        EXPECT_EQ(parsed.results[i].group, run.results[i].group);
        EXPECT_EQ(parsed.results[i].unit, run.results[i].unit);
        EXPECT_EQ(parsed.results[i].m.itemsPerRep,
                  run.results[i].m.itemsPerRep);
        EXPECT_DOUBLE_EQ(parsed.results[i].m.nsMedian,
                         run.results[i].m.nsMedian);
    }
}

TEST(BenchReport, RejectsUnknownSchema)
{
    EXPECT_DEATH(
        benchRunFromJson("{\"schema\": \"pcbp-bench-9\", \"name\": "
                         "\"x\", \"benchmarks\": []}"),
        "unsupported schema");
}

TEST(BenchCompare, ThresholdLogic)
{
    // Baseline 100 Mitems/s; current rows at -5%, -15%, and +20%.
    const BenchRun base = fakeRun({
        fakeResult("a", "g", 1.0e9, 100000000),
        fakeResult("b", "g", 1.0e9, 100000000),
        fakeResult("c", "g", 1.0e9, 100000000),
    });
    const BenchRun cur = fakeRun({
        fakeResult("a", "g", 1.0e9 / 0.95, 100000000),
        fakeResult("b", "g", 1.0e9 / 0.85, 100000000),
        fakeResult("c", "g", 1.0e9 / 1.20, 100000000),
    });

    const BenchComparison cmp = compareBenchRuns(base, cur, 0.10);
    EXPECT_FALSE(cmp.incomparable);
    ASSERT_EQ(cmp.deltas.size(), 3u);

    EXPECT_NEAR(cmp.deltas[0].delta, -0.05, 1e-9);
    EXPECT_FALSE(cmp.deltas[0].regression); // within threshold
    EXPECT_NEAR(cmp.deltas[1].delta, -0.15, 1e-9);
    EXPECT_TRUE(cmp.deltas[1].regression); // beyond threshold
    EXPECT_NEAR(cmp.deltas[2].delta, 0.20, 1e-9);
    EXPECT_FALSE(cmp.deltas[2].regression); // improvement
    EXPECT_TRUE(cmp.regressed);

    // A tighter threshold flips the -5% row too.
    EXPECT_TRUE(compareBenchRuns(base, cur, 0.04).deltas[0].regression);
    // A looser one passes everything.
    EXPECT_FALSE(compareBenchRuns(base, cur, 0.20).regressed);
}

TEST(BenchCompare, OneSidedBenchmarksNeverGate)
{
    const BenchRun base =
        fakeRun({fakeResult("gone", "g", 1.0e9, 1000)});
    const BenchRun cur = fakeRun({fakeResult("new", "g", 1.0e9, 1000)});
    const BenchComparison cmp = compareBenchRuns(base, cur, 0.10);
    EXPECT_FALSE(cmp.regressed);
    ASSERT_EQ(cmp.deltas.size(), 2u);
    EXPECT_TRUE(cmp.deltas[0].missingBaseline); // "new"
    EXPECT_TRUE(cmp.deltas[1].missingCurrent);  // "gone"
}

TEST(BenchCompare, JsonSummaryIncludesOneSidedBenchmarks)
{
    // "kept" is on both sides (a regression at -15%), "gone" only in
    // the baseline, "new" only in the current run. The JSON summary
    // must carry all three — the one-sided rows used to exist only
    // as stderr lines, which a CI artifact can't capture.
    const BenchRun base = fakeRun({
        fakeResult("kept", "g", 1.0e9, 100000000),
        fakeResult("gone", "g", 1.0e9, 1000),
    });
    const BenchRun cur = fakeRun({
        fakeResult("kept", "g", 1.0e9 / 0.85, 100000000),
        fakeResult("new", "g", 1.0e9, 1000),
    });
    const BenchComparison cmp = compareBenchRuns(base, cur, 0.10);
    const std::string json = benchComparisonToJson(cmp, 0.10);

    EXPECT_NE(json.find("\"schema\": \"pcbp-bench-compare-1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mismatched\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"regressed\": true"), std::string::npos);
    // Both one-sided rows are present and flagged.
    EXPECT_NE(json.find("\"name\": \"new\", \"baseline\": 0.000"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"gone\""), std::string::npos);
    EXPECT_NE(json.find("\"missing_baseline\": true"),
              std::string::npos);
    EXPECT_NE(json.find("\"missing_current\": true"),
              std::string::npos);

    // The full document is schema-pinned by a golden (fixed fake
    // numbers keep it byte-deterministic).
    expectMatchesGolden(json, "bench_compare_schema.json");
}

TEST(BenchCompare, MismatchedModesAreFlagged)
{
    BenchRun base = fakeRun({fakeResult("a", "g", 1.0e9, 1000)});
    BenchRun cur = base;
    cur.quick = true;
    EXPECT_TRUE(compareBenchRuns(base, cur, 0.10).incomparable);
    cur.quick = base.quick;
    cur.scale = 0.5;
    EXPECT_TRUE(compareBenchRuns(base, cur, 0.10).incomparable);
    EXPECT_FALSE(compareBenchRuns(base, base, 0.10).incomparable);
}

TEST(BenchRegistry, TinyMeasurementRuns)
{
    BenchContext ctx;
    ctx.quick = true;
    ctx.repeats = 1;
    const BenchResult r = runBench(benchByName("pred.gshare"), ctx);
    EXPECT_EQ(r.group, "predictor");
    EXPECT_GT(r.m.itemsPerRep, 0u);
    EXPECT_GT(r.m.nsMedian, 0.0);
    EXPECT_GT(r.m.throughput(), 0.0);
    EXPECT_EQ(r.m.nsMin, r.m.nsMax); // one repetition
}

TEST(BenchRegistry, FilterAndLookup)
{
    EXPECT_FALSE(benchesMatching("").empty());
    EXPECT_EQ(benchesMatching("engine.hybrid").size(), 2u);
    // Comma-separated filters match any listed substring.
    EXPECT_EQ(benchesMatching("engine.hybrid,timing.").size(), 3u);
    EXPECT_EQ(benchByName("engine.hybrid_tgshare").group, "engine");
    EXPECT_DEATH(benchByName("engine.nope"), "unknown benchmark");
}

/** Records every commit event into a deterministic FNV-1a hash. */
class HashingSink : public CommitSink
{
  public:
    void
    onCommit(const CommitEvent &e) override
    {
        mix(e.index);
        mix(e.block);
        mix(e.pc);
        mix(e.numUops);
        mix((std::uint64_t(e.btbHit) << 5) |
            (std::uint64_t(e.prophetPred) << 4) |
            (std::uint64_t(e.finalPred) << 3) |
            (std::uint64_t(e.critiqueProvided) << 2) |
            (std::uint64_t(e.criticOverrode) << 1) |
            std::uint64_t(e.outcome));
        ++events;
    }

    std::uint64_t hash = 1469598103934665603ULL;
    std::uint64_t events = 0;

  private:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 1099511628211ULL;
        }
    }
};

/**
 * The checkpoint-arena SpecCore must produce the exact commit-event
 * stream the seed protocol produced (the golden was recorded against
 * the seed-equivalent engine; see DESIGN.md §9).
 */
TEST(ArenaRegression, HybridCommitEventsMatchSeedGolden)
{
    const Workload &w = workloadByName("mm.mpeg");
    HashingSink sink;
    EngineConfig cfg;
    cfg.warmupBranches = 2000;
    cfg.measureBranches = 20000;
    cfg.commitSink = &sink;
    const EngineStats st = runAccuracy(
        w,
        hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg);

    std::ostringstream os;
    os << "workload=" << w.name << "\n"
       << "events=" << sink.events << "\n"
       << "event_hash=" << sink.hash << "\n"
       << "finalMispredicts=" << st.finalMispredicts << "\n"
       << "criticOverrides=" << st.criticOverrides << "\n"
       << "squashedPredictions=" << st.squashedPredictions << "\n";
    expectMatchesGolden(os.str(), "bench_arena_events.txt");
}

/**
 * A pipeline deeper than the arena's initial slab forces growth and
 * ring wraparound mid-run; the run must complete and stay
 * bit-deterministic.
 */
TEST(ArenaRegression, DeepPipelineGrowsSlabDeterministically)
{
    const Workload &w = workloadByName("int.crafty");
    EngineConfig cfg;
    cfg.pipelineDepth = 100; // > the 64-record initial slab
    cfg.warmupBranches = 500;
    cfg.measureBranches = 5000;

    const HybridSpec spec =
        hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    const EngineStats a = runAccuracy(w, spec, cfg);
    const EngineStats b = runAccuracy(w, spec, cfg);

    EXPECT_EQ(a.committedBranches, 5000u);
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.wrongPathUops, b.wrongPathUops);
}

} // namespace
} // namespace pcbp
