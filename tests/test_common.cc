/**
 * @file
 * Unit tests for the common substrate: bit utilities, saturating
 * counters, history registers, RNG, and statistics helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bit_utils.hh"
#include "common/history_register.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

namespace pcbp
{
namespace
{

// ------------------------------------------------------------ bit utils

TEST(BitUtils, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(64), ~std::uint64_t(0));
    EXPECT_EQ(maskBits(65), ~std::uint64_t(0));
}

TEST(BitUtils, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitUtils, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4096), 12u);
}

TEST(BitUtils, FoldBitsPreservesLowBitsForShortValues)
{
    EXPECT_EQ(foldBits(0x5, 8), 0x5u);
    EXPECT_EQ(foldBits(0x5, 64), 0x5u);
}

TEST(BitUtils, FoldBitsXorsChunks)
{
    // 0xAB in the high byte and 0xCD in the low byte fold to XOR.
    EXPECT_EQ(foldBits(0xABCD, 8), 0xABu ^ 0xCDu);
    EXPECT_EQ(foldBits(0xFFFF, 8), 0u);
}

TEST(BitUtils, FoldBitsZeroWidth)
{
    EXPECT_EQ(foldBits(0x1234, 0), 0u);
}

TEST(BitUtils, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Avalanche sanity: flipping one input bit flips many output bits.
    const std::uint64_t d = mix64(42) ^ mix64(42 ^ 1);
    EXPECT_GT(__builtin_popcountll(d), 10);
}

TEST(BitUtils, SkewHIsBijectiveOverSmallDomains)
{
    for (unsigned n : {2u, 3u, 8u, 11u}) {
        std::set<std::uint64_t> seen;
        const std::uint64_t domain = std::uint64_t(1) << n;
        for (std::uint64_t v = 0; v < domain; ++v) {
            const std::uint64_t h = skewH(v, n);
            EXPECT_LT(h, domain);
            seen.insert(h);
        }
        EXPECT_EQ(seen.size(), domain) << "n=" << n;
    }
}

TEST(BitUtils, SkewHInvInvertsSkewH)
{
    for (unsigned n : {2u, 5u, 13u}) {
        const std::uint64_t domain = std::uint64_t(1) << n;
        for (std::uint64_t v = 0; v < domain; ++v) {
            EXPECT_EQ(skewHInv(skewH(v, n), n), v) << "n=" << n;
            EXPECT_EQ(skewH(skewHInv(v, n), n), v) << "n=" << n;
        }
    }
}

// ----------------------------------------------------------- SatCounter

TEST(SatCounter, TwoBitDefaultPredictsNotTakenAtZero)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, HysteresisNeedsTwoFlips)
{
    SatCounter c(2, 3); // strongly taken
    c.update(false);
    EXPECT_TRUE(c.taken()) << "one not-taken must not flip";
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, SetWeak)
{
    SatCounter c(2, 0);
    c.setWeak(true);
    EXPECT_TRUE(c.taken());
    EXPECT_FALSE(c.saturated());
    c.setWeak(false);
    EXPECT_FALSE(c.taken());
    EXPECT_FALSE(c.saturated());
}

TEST(SatCounter, ThreeBitMidpoint)
{
    SatCounter c(3, 4);
    EXPECT_TRUE(c.taken());
    c.set(3);
    EXPECT_FALSE(c.taken());
    EXPECT_EQ(c.maxValue(), 7u);
}

// ------------------------------------------------------ HistoryRegister

TEST(HistoryRegister, StartsClear)
{
    HistoryRegister h;
    for (unsigned i = 0; i < HistoryRegister::capacity; ++i)
        EXPECT_FALSE(h.bit(i));
}

TEST(HistoryRegister, ShiftInOrder)
{
    HistoryRegister h;
    h.shiftIn(true);
    h.shiftIn(false);
    h.shiftIn(true);
    // Youngest first: T N T
    EXPECT_TRUE(h.bit(0));
    EXPECT_FALSE(h.bit(1));
    EXPECT_TRUE(h.bit(2));
    EXPECT_EQ(h.low(3), 0b101u);
}

TEST(HistoryRegister, ShiftAcrossWordBoundary)
{
    HistoryRegister h;
    // Insert 70 bits: bit i (from the end) is i%3==0.
    for (int i = 69; i >= 0; --i)
        h.shiftIn(i % 3 == 0);
    for (unsigned i = 0; i < 70; ++i)
        EXPECT_EQ(h.bit(i), i % 3 == 0) << i;
}

TEST(HistoryRegister, ShiftOutUndoesShiftIn)
{
    HistoryRegister h;
    for (int i = 0; i < 100; ++i)
        h.shiftIn(i % 7 < 3);
    HistoryRegister snapshot = h;
    h.shiftIn(true);
    h.shiftOut();
    EXPECT_EQ(h, snapshot);
}

TEST(HistoryRegister, WindowReadsMiddleBits)
{
    HistoryRegister h;
    for (int i = 15; i >= 0; --i)
        h.shiftIn(i < 8); // youngest 8 bits set, next 8 clear
    EXPECT_EQ(h.low(8), 0xffu);
    EXPECT_EQ(h.window(8, 8), 0x00u);
    EXPECT_EQ(h.window(4, 8), 0x0fu);
}

TEST(HistoryRegister, WindowAcrossWordBoundary)
{
    HistoryRegister h;
    for (int i = 0; i < 128; ++i)
        h.shiftIn(i % 2 == 0);
    // Bits alternate; any 2-bit window is 01 or 10.
    const std::uint64_t w = h.window(60, 8);
    EXPECT_TRUE(w == 0x55u || w == 0xaau) << std::hex << w;
}

TEST(HistoryRegister, CapacityDropsOldest)
{
    HistoryRegister h;
    h.shiftIn(true);
    for (unsigned i = 0; i < HistoryRegister::capacity - 1; ++i)
        h.shiftIn(false);
    EXPECT_TRUE(h.bit(HistoryRegister::capacity - 1));
    h.shiftIn(false);
    EXPECT_FALSE(h.bit(HistoryRegister::capacity - 1));
}

TEST(HistoryRegister, EqualityAndCopy)
{
    HistoryRegister a, b;
    for (int i = 0; i < 50; ++i) {
        a.shiftIn(i % 3 == 1);
        b.shiftIn(i % 3 == 1);
    }
    EXPECT_EQ(a, b);
    b.shiftIn(true);
    EXPECT_NE(a, b);
    HistoryRegister c = a;
    EXPECT_EQ(c, a);
}

TEST(HistoryRegister, SetBit)
{
    HistoryRegister h;
    h.setBit(5, true);
    h.setBit(100, true);
    EXPECT_TRUE(h.bit(5));
    EXPECT_TRUE(h.bit(100));
    h.setBit(5, false);
    EXPECT_FALSE(h.bit(5));
    EXPECT_TRUE(h.bit(100));
}

TEST(HistoryRegister, ToStringYoungestLast)
{
    HistoryRegister h;
    h.shiftIn(true);
    h.shiftIn(false);
    EXPECT_EQ(h.toString(2), "TN"); // oldest first, youngest last
}

TEST(HistoryRegister, FoldedLowMatchesManualFold)
{
    HistoryRegister h;
    for (int i = 0; i < 30; ++i)
        h.shiftIn((i * 7 + 3) % 5 < 2);
    EXPECT_EQ(h.foldedLow(30, 12), foldBits(h.low(30), 12));
}

// ------------------------------------------------------------------ Rng

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= a.next() != b.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.nextRange(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(5);
    Rng child = a.fork();
    // The child stream must not replay the parent stream.
    Rng a2(5);
    a2.fork();
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= child.next() != a2.next();
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------- Stats

TEST(Histogram, MeanAndCount)
{
    Histogram h(10, 10);
    h.sample(5);
    h.sample(15);
    h.sample(25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(10, 4);
    h.sample(1000);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(10), h.percentile(50));
    EXPECT_LE(h.percentile(50), h.percentile(90));
    EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
}

TEST(Histogram, Reset)
{
    Histogram h(10, 4);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatSet, SetGetAdd)
{
    StatSet s;
    s.set("a", 1.5);
    s.add("a", 0.5);
    s.add("b", 2.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("b"), 2.0);
    EXPECT_TRUE(s.has("a"));
    EXPECT_FALSE(s.has("zzz"));
    EXPECT_EQ(s.all().size(), 2u);
}

TEST(TablePrinter, FormatsAligned)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("| name "), std::string::npos);
    EXPECT_NE(s.find("| longer |"), std::string::npos);
}

TEST(Format, FmtDoubleAndPercent)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.1234, 1), "12.3%");
}

} // namespace
} // namespace pcbp
