/**
 * @file
 * Tests for the JRS confidence estimator and the Grunwald
 * one-future-bit enhancement (paper §2): confidence must separate
 * accurate predictions from risky ones, and the future bit must
 * sharpen the separation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/confidence.hh"
#include "predictors/factory.hh"
#include "predictors/gshare.hh"

namespace pcbp
{
namespace
{

TEST(JrsConfidence, StartsLowAndBuildsUp)
{
    JrsConfidence c(1024, 4, 8, false, 8);
    HistoryRegister h;
    EXPECT_FALSE(c.highConfidence(0x1000, h, true));
    for (int i = 0; i < 8; ++i)
        c.update(0x1000, h, true, true);
    EXPECT_TRUE(c.highConfidence(0x1000, h, true));
}

TEST(JrsConfidence, OneMissResets)
{
    JrsConfidence c(1024, 4, 8, false, 8);
    HistoryRegister h;
    for (int i = 0; i < 15; ++i)
        c.update(0x1000, h, true, true);
    ASSERT_TRUE(c.highConfidence(0x1000, h, true));
    c.update(0x1000, h, true, false);
    EXPECT_FALSE(c.highConfidence(0x1000, h, true))
        << "resetting counters clear on a single miss";
}

TEST(JrsConfidence, FutureBitSplitsContexts)
{
    // With the future bit, taken- and not-taken-predictions of the
    // same (pc, history) use different counters.
    JrsConfidence c(1024, 4, 8, true, 4);
    HistoryRegister h;
    for (int i = 0; i < 8; ++i)
        c.update(0x1000, h, true, true);
    EXPECT_TRUE(c.highConfidence(0x1000, h, true));
    EXPECT_FALSE(c.highConfidence(0x1000, h, false));
}

TEST(JrsConfidence, SizeBits)
{
    JrsConfidence c(2048, 4, 10, false, 8);
    EXPECT_EQ(c.sizeBits(), 2048u * 4);
}

TEST(JrsConfidence, ResetClears)
{
    JrsConfidence c(256, 4, 8, false, 4);
    HistoryRegister h;
    for (int i = 0; i < 8; ++i)
        c.update(0x2000, h, false, true);
    c.reset();
    EXPECT_FALSE(c.highConfidence(0x2000, h, false));
}

/**
 * Drive a gshare predictor over a mixed easy/hard stream and check
 * that high-confidence predictions are substantially more accurate
 * than low-confidence ones — the estimator's purpose.
 */
double
coverageGap(bool use_future_bit)
{
    Gshare pred(4096, 12);
    JrsConfidence conf(4096, 4, 12, use_future_bit, 8);
    Rng rng(77);
    HistoryRegister h;

    std::uint64_t hi_n = 0, hi_c = 0, lo_n = 0, lo_c = 0;
    for (int i = 0; i < 40000; ++i) {
        // Two interleaved branches: an easy alternator and a hard
        // biased-random one.
        const bool hard = i % 2 == 0;
        const Addr pc = hard ? 0x1000 : 0x2000;
        const bool outcome =
            hard ? rng.nextBool(0.7) : (i / 2) % 2 == 0;

        const bool p = pred.predict(pc, h);
        const bool correct = p == outcome;
        if (i > 10000) {
            if (conf.highConfidence(pc, h, p)) {
                ++hi_n;
                hi_c += correct;
            } else {
                ++lo_n;
                lo_c += correct;
            }
        }
        conf.update(pc, h, p, correct);
        pred.update(pc, h, outcome);
        h.shiftIn(outcome);
    }
    EXPECT_GT(hi_n, 100u);
    EXPECT_GT(lo_n, 100u);
    const double hi_acc = double(hi_c) / double(hi_n);
    const double lo_acc = double(lo_c) / double(lo_n);
    return hi_acc - lo_acc;
}

TEST(JrsConfidence, HighConfidenceIsMoreAccurate)
{
    EXPECT_GT(coverageGap(false), 0.1)
        << "confidence must separate accurate from risky predictions";
}

TEST(JrsConfidence, FutureBitHelpsOrMatches)
{
    // Grunwald et al.: one future bit improves estimation; demand at
    // least no degradation on this stream.
    EXPECT_GE(coverageGap(true), coverageGap(false) - 0.02);
}

} // namespace
} // namespace pcbp
