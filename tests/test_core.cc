/**
 * @file
 * Unit tests for the prophet/critic core: BOR semantics, the tag
 * filter of §4, the two critic designs, critique classification, and
 * the hybrid's checkpoint/repair event protocol.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/bor.hh"
#include "core/critic.hh"
#include "core/critique.hh"
#include "core/filtered_perceptron.hh"
#include "core/presets.hh"
#include "core/prophet_critic.hh"
#include "core/tag_filter.hh"
#include "core/tagged_gshare.hh"
#include "predictors/static_pred.hh"

namespace pcbp
{
namespace
{

// -------------------------------------------------------------------- BOR

TEST(Bor, CritiqueViewAppendsFutureBitsYoungestLast)
{
    HistoryRegister before;
    before.shiftIn(true); // history bit
    const HistoryRegister view =
        buildCritiqueBor(before, {false, true, true});
    // Youngest = last future bit.
    EXPECT_TRUE(view.bit(0));
    EXPECT_TRUE(view.bit(1));
    EXPECT_FALSE(view.bit(2)); // the branch's own prediction
    EXPECT_TRUE(view.bit(3));  // original history
}

TEST(Bor, EmptyFutureBitsIsIdentity)
{
    HistoryRegister before;
    before.shiftIn(true);
    before.shiftIn(false);
    EXPECT_EQ(buildCritiqueBor(before, {}), before);
}

// -------------------------------------------------------------- TagFilter

HistoryRegister
borOf(std::uint64_t bits, unsigned n)
{
    HistoryRegister h;
    for (unsigned i = n; i-- > 0;)
        h.shiftIn((bits >> i) & 1);
    return h;
}

TEST(TagFilter, MissThenAllocateThenHit)
{
    TagFilter f(64, 4, 10, 18);
    const HistoryRegister bor = borOf(0x2a5a5, 18);
    EXPECT_FALSE(f.probe(0x4000, bor).hit);
    f.allocate(0x4000, bor);
    EXPECT_TRUE(f.probe(0x4000, bor).hit);
}

TEST(TagFilter, DistinguishesBorValues)
{
    TagFilter f(64, 4, 10, 18);
    f.allocate(0x4000, borOf(0x00001, 18));
    EXPECT_FALSE(f.probe(0x4000, borOf(0x00002, 18)).hit)
        << "a different BOR value is a different context";
}

TEST(TagFilter, DistinguishesAddresses)
{
    TagFilter f(64, 4, 10, 18);
    const HistoryRegister bor = borOf(0x15555, 18);
    f.allocate(0x4000, bor);
    EXPECT_FALSE(f.probe(0x8770, bor).hit);
}

TEST(TagFilter, LruEvictsOldest)
{
    // 1 set x 2 ways: the third allocation evicts the LRU entry.
    TagFilter f(1, 2, 10, 18);
    const auto bor_a = borOf(0x1, 18);
    const auto bor_b = borOf(0x2, 18);
    const auto bor_c = borOf(0x4, 18);
    f.allocate(0x1000, bor_a);
    f.allocate(0x2000, bor_b);
    // Touch A so B becomes LRU.
    f.touch(f.probe(0x1000, bor_a).entry);
    f.allocate(0x3000, bor_c);
    EXPECT_TRUE(f.probe(0x1000, bor_a).hit);
    EXPECT_FALSE(f.probe(0x2000, bor_b).hit) << "B was LRU";
    EXPECT_TRUE(f.probe(0x3000, bor_c).hit);
}

TEST(TagFilter, SizeBitsCountsTagsValidLru)
{
    TagFilter f(64, 4, 10, 18);
    // 256 entries x (1 valid + 10 tag + 2 lru-rank)
    EXPECT_EQ(f.sizeBits(), 256u * 13);
}

TEST(TagFilter, ResetClears)
{
    TagFilter f(64, 4, 10, 18);
    const auto bor = borOf(0x3, 18);
    f.allocate(0x1000, bor);
    f.reset();
    EXPECT_FALSE(f.probe(0x1000, bor).hit);
}

// ----------------------------------------------------------- TaggedGshare

TEST(TaggedGshare, MissMeansImplicitAgree)
{
    TaggedGshare t(64, 6, 10, 18);
    EXPECT_FALSE(t.critique(0x1000, borOf(0x7, 18)).provided);
}

TEST(TaggedGshare, AllocatesOnlyOnMispredict)
{
    TaggedGshare t(64, 6, 10, 18);
    const auto bor = borOf(0x13, 18);
    t.train(0x1000, bor, true, /*mispredicted=*/false);
    EXPECT_FALSE(t.critique(0x1000, bor).provided)
        << "correctly predicted misses must not allocate";
    t.train(0x1000, bor, true, /*mispredicted=*/true);
    const auto c = t.critique(0x1000, bor);
    EXPECT_TRUE(c.provided);
    EXPECT_TRUE(c.taken) << "counter initialized toward the outcome";
}

TEST(TaggedGshare, CounterRetrainsOnHits)
{
    TaggedGshare t(64, 6, 10, 18);
    const auto bor = borOf(0x13, 18);
    t.train(0x1000, bor, false, true); // allocate toward not-taken
    EXPECT_FALSE(t.critique(0x1000, bor).taken);
    t.train(0x1000, bor, true, false); // hit: retrain toward taken
    t.train(0x1000, bor, true, false);
    EXPECT_TRUE(t.critique(0x1000, bor).taken);
}

TEST(TaggedGshare, LearnsContextMapping)
{
    // Context bits determine the outcome: after training, the critic
    // should decode it (the mechanism behind chain fixing).
    TaggedGshare t(1024, 6, 10, 18);
    Rng rng(3);
    int correct = 0, measured = 0;
    for (int i = 0; i < 6000; ++i) {
        const std::uint64_t ctx = rng.nextBelow(16);
        const auto bor = borOf(ctx, 18);
        const bool outcome = (ctx & 1) != ((ctx >> 1) & 1);
        const auto c = t.critique(0x5000, bor);
        if (i > 2000 && c.provided) {
            ++measured;
            correct += c.taken == outcome;
        }
        // Treat "prophet" as always-not-taken: mispredict == outcome.
        t.train(0x5000, bor, outcome, outcome);
    }
    ASSERT_GT(measured, 500);
    EXPECT_GT(double(correct) / measured, 0.9);
}

TEST(TaggedGshare, Table3Geometry)
{
    auto c = makeCritic(CriticKind::TaggedGshare, Budget::B8KB);
    EXPECT_EQ(c->borBits(), 18u);
    // 1024 sets x 6 ways x (2 ctr + 1 valid + 10 tag + 3 lru) bits.
    EXPECT_NEAR(double(c->sizeBytes()), 1024 * 6 * 16 / 8.0, 16.0);
}

// ----------------------------------------------------- FilteredPerceptron

TEST(FilteredPerceptron, FilterGatesThePerceptron)
{
    FilteredPerceptron f(64, 17, 64, 3, 10, 18);
    const auto bor = borOf(0x55, 18);
    EXPECT_FALSE(f.critique(0x1000, bor).provided);
    f.train(0x1000, bor, true, true); // allocate
    EXPECT_TRUE(f.critique(0x1000, bor).provided);
}

TEST(FilteredPerceptron, LearnsFutureBitCopy)
{
    // Outcome equals BOR bit 2 — a single perceptron weight.
    FilteredPerceptron f(64, 17, 256, 3, 10, 18);
    Rng rng(9);
    int correct = 0, measured = 0;
    for (int i = 0; i < 8000; ++i) {
        const auto bor = borOf(rng.nextBelow(64), 18);
        const bool outcome = bor.bit(2);
        const auto c = f.critique(0x2000, bor);
        if (i > 4000 && c.provided) {
            ++measured;
            correct += c.taken == outcome;
        }
        f.train(0x2000, bor, outcome, !c.provided || c.taken != outcome);
    }
    ASSERT_GT(measured, 200);
    EXPECT_GT(double(correct) / measured, 0.85);
}

TEST(FilteredPerceptron, BorBitsIsMaxOfParts)
{
    FilteredPerceptron f(64, 24, 64, 3, 10, 18);
    EXPECT_EQ(f.borBits(), 24u);
    FilteredPerceptron g(64, 13, 64, 3, 10, 18);
    EXPECT_EQ(g.borBits(), 18u);
}

// -------------------------------------------------------- UnfilteredCritic

TEST(UnfilteredCritic, AlwaysProvides)
{
    UnfilteredCritic u(std::make_unique<StaticPredictor>(true));
    EXPECT_TRUE(u.critique(0x1, borOf(0, 18)).provided);
    EXPECT_TRUE(u.critique(0x1, borOf(0, 18)).taken);
}

// --------------------------------------------------------------- Critique

TEST(Critique, Classification)
{
    EXPECT_EQ(classifyCritique(true, true, true),
              CritiqueClass::CorrectAgree);
    EXPECT_EQ(classifyCritique(true, true, false),
              CritiqueClass::CorrectDisagree);
    EXPECT_EQ(classifyCritique(false, true, true),
              CritiqueClass::IncorrectAgree);
    EXPECT_EQ(classifyCritique(false, true, false),
              CritiqueClass::IncorrectDisagree);
    EXPECT_EQ(classifyCritique(true, false, false),
              CritiqueClass::CorrectNone);
    EXPECT_EQ(classifyCritique(false, false, true),
              CritiqueClass::IncorrectNone);
}

TEST(Critique, CountsTotals)
{
    CritiqueCounts c;
    c.record(CritiqueClass::CorrectAgree);
    c.record(CritiqueClass::CorrectAgree);
    c.record(CritiqueClass::IncorrectDisagree);
    c.record(CritiqueClass::CorrectNone);
    EXPECT_EQ(c.explicitTotal(), 3u);
    EXPECT_EQ(c.noneTotal(), 1u);
    EXPECT_EQ(c.total(), 4u);
}

// ------------------------------------------------------------------ Hybrid

TEST(Hybrid, SpeculativeInsertionAndCheckpoint)
{
    HybridConfig cfg;
    cfg.numFutureBits = 4;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(true),
                          makeCritic(CriticKind::TaggedGshare,
                                     Budget::B2KB),
                          cfg);
    BranchContext ctx;
    const HistoryRegister before = h.bhr();
    const bool pred = h.predictBranch(0x1000, ctx);
    EXPECT_TRUE(pred);
    EXPECT_EQ(ctx.bhrBefore, before);
    EXPECT_TRUE(h.bhr().bit(0)) << "prediction speculatively inserted";
    EXPECT_TRUE(h.bor().bit(0));
}

TEST(Hybrid, RecoverRestoresAndInsertsOutcome)
{
    HybridConfig cfg;
    cfg.numFutureBits = 2;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(true),
                          nullptr, cfg);
    BranchContext ctx;
    h.predictBranch(0x1000, ctx); // inserts T
    BranchContext ctx2;
    h.predictBranch(0x1010, ctx2); // inserts T
    h.recoverMispredict(ctx, false);
    EXPECT_FALSE(h.bhr().bit(0)) << "outcome N inserted after restore";
    EXPECT_EQ(h.bhr().window(1, 10), ctx.bhrBefore.low(10))
        << "older history restored";
}

TEST(Hybrid, OverrideInsertsFinalPrediction)
{
    HybridConfig cfg;
    cfg.numFutureBits = 2;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(true),
                          makeCritic(CriticKind::TaggedGshare,
                                     Budget::B2KB),
                          cfg);
    BranchContext ctx;
    h.predictBranch(0x1000, ctx);
    h.overrideRedirect(ctx, false);
    EXPECT_FALSE(h.bhr().bit(0));
    EXPECT_FALSE(h.bor().bit(0));
}

TEST(Hybrid, NoCriticMeansProphetPrediction)
{
    HybridConfig cfg;
    cfg.numFutureBits = 0;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(false),
                          nullptr, cfg);
    BranchContext ctx;
    const bool pred = h.predictBranch(0x1000, ctx);
    const auto d = h.critiqueBranch(0x1000, ctx, pred, {});
    EXPECT_FALSE(d.provided);
    EXPECT_FALSE(d.overrode);
    EXPECT_EQ(d.finalPrediction, pred);
}

TEST(Hybrid, ZeroFutureBitsUsesHistoryOnlyBor)
{
    HybridConfig cfg;
    cfg.numFutureBits = 0;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(true),
                          makeCritic(CriticKind::TaggedGshare,
                                     Budget::B2KB),
                          cfg);
    BranchContext ctx;
    const bool pred = h.predictBranch(0x1000, ctx);
    const auto d = h.critiqueBranch(0x1000, ctx, pred, {});
    EXPECT_EQ(d.borAtCritique, ctx.borBefore)
        << "conventional-hybrid mode: no future bits in the view";
}

TEST(Hybrid, CritiqueUsesSuppliedFutureBits)
{
    HybridConfig cfg;
    cfg.numFutureBits = 3;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(true),
                          makeCritic(CriticKind::TaggedGshare,
                                     Budget::B2KB),
                          cfg);
    BranchContext ctx;
    const bool pred = h.predictBranch(0x1000, ctx);
    const auto d = h.critiqueBranch(0x1000, ctx, pred,
                                    {pred, false, true});
    EXPECT_TRUE(d.borAtCritique.bit(0));  // youngest = last future bit
    EXPECT_FALSE(d.borAtCritique.bit(1));
    EXPECT_EQ(d.borAtCritique.bit(2), pred);
}

TEST(Hybrid, CriticLearnsToOverrideAtCommit)
{
    // Static prophet always says taken; the branch is always
    // not-taken in a fixed context. After training, the critic must
    // override.
    HybridConfig cfg;
    cfg.numFutureBits = 1;
    ProphetCriticHybrid h(std::make_unique<StaticPredictor>(true),
                          makeCritic(CriticKind::TaggedGshare,
                                     Budget::B2KB),
                          cfg);
    bool overrode = false;
    for (int i = 0; i < 10; ++i) {
        BranchContext ctx;
        const bool pred = h.predictBranch(0x1000, ctx);
        const auto d = h.critiqueBranch(0x1000, ctx, pred, {pred});
        if (d.overrode) {
            overrode = true;
            h.overrideRedirect(ctx, d.finalPrediction);
        }
        const bool outcome = false;
        h.commitBranch(0x1000, ctx, d, outcome);
        if (d.finalPrediction != outcome)
            h.recoverMispredict(ctx, outcome);
    }
    EXPECT_TRUE(overrode) << "critic never learned to disagree";
}

TEST(Hybrid, NameAndSize)
{
    auto h = makeHybrid(ProphetKind::Perceptron, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 8);
    EXPECT_NE(h->name().find("perceptron"), std::string::npos);
    EXPECT_NE(h->name().find("t.gshare"), std::string::npos);
    EXPECT_NE(h->name().find("8fb"), std::string::npos);
    EXPECT_GT(h->sizeBytes(), 12u * 1024);
    EXPECT_LT(h->sizeBytes(), 24u * 1024);
}

TEST(Presets, CriticKindsRoundTrip)
{
    for (CriticKind k : {CriticKind::TaggedGshare,
                         CriticKind::FilteredPerceptron,
                         CriticKind::UnfilteredPerceptron,
                         CriticKind::UnfilteredGshare})
        EXPECT_EQ(parseCriticKind(criticKindName(k)), k);
}

TEST(Presets, AllCriticsConstructAtAllBudgets)
{
    for (CriticKind k : {CriticKind::TaggedGshare,
                         CriticKind::FilteredPerceptron,
                         CriticKind::UnfilteredPerceptron,
                         CriticKind::UnfilteredGshare}) {
        for (Budget b : {Budget::B2KB, Budget::B8KB, Budget::B32KB}) {
            auto c = makeCritic(k, b);
            ASSERT_NE(c, nullptr);
            EXPECT_GT(c->borBits(), 0u);
        }
    }
}

} // namespace
} // namespace pcbp
