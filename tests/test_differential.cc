/**
 * @file
 * Differential tests over the whole predictor registry.
 *
 * PR 2 pinned Engine/TimingSim stream-backend equivalence for a few
 * hand-picked configurations; these tests generalize that contract
 * to every factory-registered prophet (including TAGE) and every
 * critic kind, on randomized CFG workloads across seeds, using the
 * commit-path tap (CommitSink) to compare entire commit-order event
 * streams rather than aggregate counters:
 *
 * - per simulator, the streamed CFG walk and the precomputed-vector
 *   backend must produce bit-identical commit-order predictions and
 *   outcomes;
 * - the committed (architectural) path must be *predictor-invariant*
 *   and *simulator-invariant*: any predictor, either simulator, same
 *   (block, pc, outcome, uops) sequence as the plain program walk.
 *
 * Deliberately NOT asserted: commit-order predictions equal between
 * Engine and TimingSim. They are not — commit-time training reaches
 * the tables at different fetch-to-commit lags in the two pipelines,
 * so individual predictions legitimately differ; only the
 * architectural path is shared.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "obs/stat_registry.hh"
#include "sim/driver.hh"
#include "workload/generator.hh"
#include "workload/trace.hh"

namespace pcbp
{
namespace
{

/** Commit-order event recording tap. */
struct RecordingSink : CommitSink
{
    std::vector<CommitEvent> events;

    void onCommit(const CommitEvent &e) override { events.push_back(e); }
};

/** A small randomized CFG workload; deterministic per seed. */
WorkloadRecipe
randomRecipe(std::uint64_t seed)
{
    WorkloadRecipe r;
    r.name = "diff-" + std::to_string(seed);
    r.seed = seed;
    r.targetBlocks = 120 + unsigned(seed % 7) * 30;
    r.numChains = 4;
    r.numPhaseChains = 2;
    return r;
}

void
expectSameEvents(const std::vector<CommitEvent> &a,
                 const std::vector<CommitEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].index, b[i].index) << "at commit " << i;
        ASSERT_EQ(a[i].block, b[i].block) << "at commit " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "at commit " << i;
        ASSERT_EQ(a[i].numUops, b[i].numUops) << "at commit " << i;
        ASSERT_EQ(a[i].btbHit, b[i].btbHit) << "at commit " << i;
        ASSERT_EQ(a[i].prophetPred, b[i].prophetPred)
            << "at commit " << i;
        ASSERT_EQ(a[i].finalPred, b[i].finalPred) << "at commit " << i;
        ASSERT_EQ(a[i].critiqueProvided, b[i].critiqueProvided)
            << "at commit " << i;
        ASSERT_EQ(a[i].criticOverrode, b[i].criticOverrode)
            << "at commit " << i;
        ASSERT_EQ(a[i].outcome, b[i].outcome) << "at commit " << i;
    }
}

/** Engine run over the streamed walk, events recorded. */
std::vector<CommitEvent>
engineStreamedEvents(const WorkloadRecipe &recipe, const HybridSpec &spec,
                     const EngineConfig &cfg)
{
    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink sink;
    EngineConfig c = cfg;
    c.commitSink = &sink;
    Engine(p, *h, c).run();
    return std::move(sink.events);
}

/** Engine run over the precomputed-vector backend, events recorded. */
std::vector<CommitEvent>
enginePrecomputedEvents(const WorkloadRecipe &recipe,
                        const HybridSpec &spec, const EngineConfig &cfg)
{
    Program pw = generateProgram(recipe);
    PrecomputedStream pre(
        walkProgram(pw, cfg.warmupBranches + cfg.measureBranches));
    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink sink;
    EngineConfig c = cfg;
    c.commitSink = &sink;
    Engine(p, *h, c).run(pre);
    return std::move(sink.events);
}

EngineConfig
smallEngine()
{
    EngineConfig cfg;
    cfg.measureBranches = 6000;
    cfg.warmupBranches = 600;
    return cfg;
}

// --------------------------------------------- backend equivalence

/**
 * The registry-wide generalization of the PR 2 equivalence tests:
 * for every factory-registered prophet, the streamed and precomputed
 * committed-stream backends must yield bit-identical commit-order
 * prediction/outcome streams.
 */
TEST(Differential, EngineBackendsAgreeForEveryProphet)
{
    for (const ProphetKind kind : allProphetKinds()) {
        for (const std::uint64_t seed : {11u, 29u}) {
            const WorkloadRecipe recipe = randomRecipe(seed);
            const HybridSpec spec = prophetAlone(kind, Budget::B2KB);
            const EngineConfig cfg = smallEngine();

            const auto streamed =
                engineStreamedEvents(recipe, spec, cfg);
            const auto precomputed =
                enginePrecomputedEvents(recipe, spec, cfg);

            SCOPED_TRACE(prophetKindName(kind) + " seed " +
                         std::to_string(seed));
            ASSERT_EQ(streamed.size(),
                      cfg.warmupBranches + cfg.measureBranches);
            expectSameEvents(streamed, precomputed);
        }
    }
}

/** Same contract for every critic kind riding on two prophets. */
TEST(Differential, EngineBackendsAgreeForEveryCritic)
{
    for (const CriticKind critic : allCriticKinds()) {
        for (const ProphetKind prophet :
             {ProphetKind::Gshare, ProphetKind::Tage}) {
            const WorkloadRecipe recipe = randomRecipe(43);
            const HybridSpec spec = hybridSpec(
                prophet, Budget::B2KB, critic, Budget::B2KB, 8);
            const EngineConfig cfg = smallEngine();

            const auto streamed =
                engineStreamedEvents(recipe, spec, cfg);
            const auto precomputed =
                enginePrecomputedEvents(recipe, spec, cfg);

            SCOPED_TRACE(criticKindName(critic) + " on " +
                         prophetKindName(prophet));
            expectSameEvents(streamed, precomputed);
        }
    }
}

/** The timing model honors the same backend contract, registry-wide. */
TEST(Differential, TimingBackendsAgreeForEveryProphet)
{
    for (const ProphetKind kind : allProphetKinds()) {
        const WorkloadRecipe recipe = randomRecipe(17);
        const HybridSpec spec = prophetAlone(kind, Budget::B2KB);
        TimingConfig cfg;
        cfg.measureBranches = 2500;
        cfg.warmupBranches = 250;

        RecordingSink streamed_sink;
        {
            Program p = generateProgram(recipe);
            auto h = spec.build();
            TimingConfig c = cfg;
            c.commitSink = &streamed_sink;
            TimingSim(p, *h, c).run();
        }
        RecordingSink pre_sink;
        {
            Program pw = generateProgram(recipe);
            PrecomputedStream pre(walkProgram(
                pw, cfg.warmupBranches + cfg.measureBranches));
            Program p = generateProgram(recipe);
            auto h = spec.build();
            TimingConfig c = cfg;
            c.commitSink = &pre_sink;
            TimingSim(p, *h, c).run(pre);
        }

        SCOPED_TRACE(prophetKindName(kind));
        expectSameEvents(streamed_sink.events, pre_sink.events);
    }
}

// --------------------------------------- architectural invariance

/**
 * The committed path is independent of the predictor under test and
 * of the simulator driving it: for every registered prophet, both
 * simulators must commit exactly the plain program walk.
 */
TEST(Differential, ArchitecturalPathIsPredictorAndSimulatorInvariant)
{
    const WorkloadRecipe recipe = randomRecipe(7);
    constexpr std::uint64_t branches = 4000;

    Program pw = generateProgram(recipe);
    const auto walk = walkProgram(pw, branches);

    EngineConfig ecfg;
    ecfg.measureBranches = branches - 400;
    ecfg.warmupBranches = 400;
    TimingConfig tcfg;
    tcfg.measureBranches = branches - 400;
    tcfg.warmupBranches = 400;

    for (const ProphetKind kind : allProphetKinds()) {
        SCOPED_TRACE(prophetKindName(kind));
        const HybridSpec spec = prophetAlone(kind, Budget::B2KB);

        RecordingSink engine_sink;
        {
            Program p = generateProgram(recipe);
            auto h = spec.build();
            EngineConfig c = ecfg;
            c.commitSink = &engine_sink;
            Engine(p, *h, c).run();
        }
        RecordingSink timing_sink;
        {
            Program p = generateProgram(recipe);
            auto h = spec.build();
            TimingConfig c = tcfg;
            c.commitSink = &timing_sink;
            TimingSim(p, *h, c).run();
        }

        ASSERT_EQ(engine_sink.events.size(), branches);
        ASSERT_EQ(timing_sink.events.size(), branches);
        for (std::uint64_t i = 0; i < branches; ++i) {
            for (const auto *sink : {&engine_sink, &timing_sink}) {
                const CommitEvent &e = sink->events[i];
                ASSERT_EQ(e.index, i);
                ASSERT_EQ(e.block, walk[i].block) << "at commit " << i;
                ASSERT_EQ(e.pc, walk[i].pc) << "at commit " << i;
                ASSERT_EQ(e.outcome, walk[i].taken)
                    << "at commit " << i;
                ASSERT_EQ(e.numUops, walk[i].numUops)
                    << "at commit " << i;
            }
        }
    }
}

/**
 * Determinism across repeated runs: same recipe, same predictor,
 * same events — the property the sweep store's content keys rely on.
 */
TEST(Differential, RepeatedRunsAreBitIdentical)
{
    for (const ProphetKind kind :
         {ProphetKind::Tage, ProphetKind::Perceptron}) {
        const WorkloadRecipe recipe = randomRecipe(5);
        const HybridSpec spec =
            hybridSpec(kind, Budget::B4KB, CriticKind::TaggedGshare,
                       Budget::B4KB, 8);
        const EngineConfig cfg = smallEngine();
        const auto a = engineStreamedEvents(recipe, spec, cfg);
        const auto b = engineStreamedEvents(recipe, spec, cfg);
        SCOPED_TRACE(prophetKindName(kind));
        expectSameEvents(a, b);
    }
}

// --------------------------------------- batched-vs-scalar layer

/**
 * The batched execution mode (DESIGN.md §12) claims full
 * equivalence: a cell run as a lane of runAccuracyBatch produces the
 * same commit-order event stream AND the same --stats-out dump —
 * stream counters included — as a standalone runAccuracy of that
 * cell. The tests below pin this for every registry predictor kind,
 * at batch widths 1/4/8, over both the CFG-walk and trace-file
 * backends, with mixed run lengths, oracle members, and fork groups
 * riding inside the batch.
 */

/** An ad-hoc workload over a randomized CFG (not registry-bound). */
Workload
localWorkload(std::uint64_t seed)
{
    Workload w;
    w.name = "diff-batch-" + std::to_string(seed);
    w.suite = "TEST";
    w.recipe = randomRecipe(seed);
    w.simBranches = 5000;
    w.warmupBranches = 500;
    return w;
}

struct ScalarRef
{
    std::vector<CommitEvent> events;
    std::string statsJson;
};

/** Standalone (scalar-path) run: the reference a lane must match. */
ScalarRef
scalarEngineRef(const Workload &w, const HybridSpec &spec,
                EngineConfig cfg)
{
    RecordingSink sink;
    StatRegistry reg;
    cfg.commitSink = &sink;
    cfg.statsOut = &reg;
    runAccuracy(w, spec, cfg);
    return {std::move(sink.events), reg.toJson()};
}

/**
 * Run @p specs/@p cfgs as singleton lanes of runAccuracyBatch in
 * width-sized calls and require every member's events and stats dump
 * to be byte-identical to its scalar reference.
 */
void
expectBatchMatchesScalar(const Workload &w,
                         const std::vector<HybridSpec> &specs,
                         const std::vector<EngineConfig> &cfgs,
                         const std::vector<ScalarRef> &refs,
                         std::size_t width)
{
    for (std::size_t start = 0; start < specs.size(); start += width) {
        const std::size_t n = std::min(width, specs.size() - start);
        std::vector<RecordingSink> sinks(n);
        std::vector<StatRegistry> regs(n);
        std::vector<HybridSpec> bspecs;
        std::vector<std::vector<EngineConfig>> groups;
        for (std::size_t j = 0; j < n; ++j) {
            EngineConfig c = cfgs[start + j];
            c.commitSink = &sinks[j];
            c.statsOut = &regs[j];
            bspecs.push_back(specs[start + j]);
            groups.push_back({c});
        }
        runAccuracyBatch(w, bspecs, groups);
        for (std::size_t j = 0; j < n; ++j) {
            SCOPED_TRACE("member " + std::to_string(start + j) +
                         " of width-" + std::to_string(width) +
                         " batch");
            expectSameEvents(sinks[j].events, refs[start + j].events);
            EXPECT_EQ(regs[j].toJson(), refs[start + j].statsJson)
                << "stats dump diverged from the scalar run";
        }
    }
}

/**
 * Every registry prophet and every critic kind, multiplexed through
 * shared-stream batches at widths 1, 4, and 8: commit events and
 * stats dumps byte-identical to the scalar path.
 */
TEST(BatchedDifferential, EveryRegistryKindMatchesScalarAtWidths148)
{
    const Workload w = localWorkload(101);

    std::vector<HybridSpec> specs;
    for (const ProphetKind kind : allProphetKinds())
        specs.push_back(prophetAlone(kind, Budget::B2KB));
    for (const CriticKind critic : allCriticKinds())
        specs.push_back(hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                                   critic, Budget::B2KB, 8));

    EngineConfig base;
    base.measureBranches = 4500;
    base.warmupBranches = 500;
    const std::vector<EngineConfig> cfgs(specs.size(), base);

    std::vector<ScalarRef> refs;
    for (const HybridSpec &s : specs)
        refs.push_back(scalarEngineRef(w, s, base));

    for (const std::size_t width : {1u, 4u, 8u}) {
        SCOPED_TRACE("width " + std::to_string(width));
        expectBatchMatchesScalar(w, specs, cfgs, refs, width);
    }
}

/**
 * Lanes with different budgets (leader/laggard fanout paths) and an
 * oracle-future-bits member: each still matches its scalar run.
 */
TEST(BatchedDifferential, MixedRunLengthsAndOracleMatchScalar)
{
    const Workload w = localWorkload(59);

    std::vector<HybridSpec> specs;
    std::vector<EngineConfig> cfgs;

    const auto add = [&](const HybridSpec &s, std::uint64_t warm,
                         std::uint64_t meas, bool oracle) {
        EngineConfig c;
        c.warmupBranches = warm;
        c.measureBranches = meas;
        c.oracleFutureBits = oracle;
        specs.push_back(s);
        cfgs.push_back(c);
    };

    const HybridSpec hybrid =
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);
    add(hybrid, 200, 1700, false);
    add(hybrid, 500, 4500, false);
    add(hybrid, 500, 4500, true); // oracle ablation lane
    add(prophetAlone(ProphetKind::Tage, Budget::B2KB), 350, 3000,
        false);
    add(hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                   CriticKind::FilteredPerceptron, Budget::B2KB, 12),
        100, 900, false);

    std::vector<ScalarRef> refs;
    for (std::size_t i = 0; i < specs.size(); ++i)
        refs.push_back(scalarEngineRef(w, specs[i], cfgs[i]));

    expectBatchMatchesScalar(w, specs, cfgs, refs, specs.size());
}

/**
 * Fork groups riding inside a batch (the PR 7 seam composed with the
 * shared stream): a warmup-axis group peels its shorter members off
 * the canonical lane mid-flight, and every member's stats dump must
 * equal both its standalone run and the chain path.
 */
TEST(BatchedDifferential, ForkGroupsInsideBatchMatchChainAndScalar)
{
    const Workload w = localWorkload(57);
    const HybridSpec grouped =
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);

    std::vector<EngineConfig> group;
    for (const std::uint64_t warm : {300ull, 900ull, 1500ull}) {
        EngineConfig c;
        c.warmupBranches = warm;
        c.measureBranches = 3600;
        group.push_back(c);
    }
    const HybridSpec loner =
        prophetAlone(ProphetKind::GSkew, Budget::B2KB);
    EngineConfig loner_cfg;
    loner_cfg.warmupBranches = 400;
    loner_cfg.measureBranches = 4000;

    // Scalar references (no sinks: a multi-member group forks).
    std::vector<std::string> ref_json;
    for (const EngineConfig &c : group) {
        StatRegistry reg;
        EngineConfig rc = c;
        rc.statsOut = &reg;
        runAccuracy(w, grouped, rc);
        ref_json.push_back(reg.toJson());
    }
    StatRegistry loner_ref_reg;
    {
        EngineConfig rc = loner_cfg;
        rc.statsOut = &loner_ref_reg;
        runAccuracy(w, loner, rc);
    }

    // Chain path.
    {
        std::vector<StatRegistry> regs(group.size());
        std::vector<EngineConfig> cfgs = group;
        for (std::size_t j = 0; j < cfgs.size(); ++j)
            cfgs[j].statsOut = &regs[j];
        runAccuracyChain(w, grouped, cfgs);
        for (std::size_t j = 0; j < regs.size(); ++j)
            EXPECT_EQ(regs[j].toJson(), ref_json[j])
                << "chain member " << j;
    }

    // Batch path: the fork group plus an unrelated singleton lane.
    {
        std::vector<StatRegistry> regs(group.size());
        StatRegistry loner_reg;
        std::vector<EngineConfig> cfgs = group;
        for (std::size_t j = 0; j < cfgs.size(); ++j)
            cfgs[j].statsOut = &regs[j];
        EngineConfig lc = loner_cfg;
        lc.statsOut = &loner_reg;
        BatchObs obs;
        runAccuracyBatch(w, {grouped, loner}, {cfgs, {lc}}, &obs);
        for (std::size_t j = 0; j < regs.size(); ++j)
            EXPECT_EQ(regs[j].toJson(), ref_json[j])
                << "batched member " << j;
        EXPECT_EQ(loner_reg.toJson(), loner_ref_reg.toJson());
        EXPECT_EQ(obs.groups, 2u);
        EXPECT_EQ(obs.members, 4u);
        EXPECT_EQ(obs.snapshots, 2u)
            << "two shorter members peel off the canonical lane";
        EXPECT_GT(obs.memberDemand, obs.sourceProduced)
            << "the shared source must be produced once, read many";
    }
}

/** The timing model honors the batch contract too. */
TEST(BatchedDifferential, TimingLanesMatchScalar)
{
    const Workload w = localWorkload(23);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);
    const HybridSpec alone =
        prophetAlone(ProphetKind::Perceptron, Budget::B2KB);

    std::vector<TimingConfig> group;
    for (const std::uint64_t warm : {300ull, 700ull}) {
        TimingConfig c;
        c.warmupBranches = warm;
        c.measureBranches = 3500;
        group.push_back(c);
    }
    TimingConfig loner_cfg;
    loner_cfg.warmupBranches = 250;
    loner_cfg.measureBranches = 2500;

    std::vector<std::string> ref_json;
    for (const TimingConfig &c : group) {
        StatRegistry reg;
        TimingConfig rc = c;
        rc.statsOut = &reg;
        runTiming(w, spec, rc);
        ref_json.push_back(reg.toJson());
    }
    StatRegistry loner_ref;
    {
        TimingConfig rc = loner_cfg;
        rc.statsOut = &loner_ref;
        runTiming(w, alone, rc);
    }

    std::vector<StatRegistry> regs(group.size());
    StatRegistry loner_reg;
    std::vector<TimingConfig> cfgs = group;
    for (std::size_t j = 0; j < cfgs.size(); ++j)
        cfgs[j].statsOut = &regs[j];
    TimingConfig lc = loner_cfg;
    lc.statsOut = &loner_reg;
    runTimingBatch(w, {spec, alone}, {cfgs, {lc}});
    for (std::size_t j = 0; j < regs.size(); ++j)
        EXPECT_EQ(regs[j].toJson(), ref_json[j])
            << "timing batch member " << j;
    EXPECT_EQ(loner_reg.toJson(), loner_ref.toJson());
}

/** The trace-file backend: batch lanes replaying one shared trace
 *  decode match standalone trace replays byte for byte. */
TEST(BatchedDifferential, TraceBackendMatchesScalar)
{
    const Workload w = localWorkload(83);
    Program p = buildProgram(w);
    const std::string path =
        testing::TempDir() + "diff_batch.pcbptrc";
    saveTrace(path, walkProgram(p, 8000));

    const Workload &tw = workloadByName("trace:" + path);

    std::vector<HybridSpec> specs = {
        prophetAlone(ProphetKind::Gshare, Budget::B2KB),
        prophetAlone(ProphetKind::Perceptron, Budget::B2KB),
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8),
        hybridSpec(ProphetKind::Tage, Budget::B2KB,
                   CriticKind::FilteredPerceptron, Budget::B2KB, 8),
    };
    EngineConfig base;
    base.warmupBranches = 800;
    base.measureBranches = 7200;
    const std::vector<EngineConfig> cfgs(specs.size(), base);

    std::vector<ScalarRef> refs;
    for (const HybridSpec &s : specs)
        refs.push_back(scalarEngineRef(tw, s, base));

    for (const std::size_t width : {1u, 4u}) {
        SCOPED_TRACE("width " + std::to_string(width));
        expectBatchMatchesScalar(tw, specs, cfgs, refs, width);
    }
    std::remove(path.c_str());
}

// ---------------------------------------- trace-format equivalence

/**
 * PCBPTRC2 must be invisible to every predictor in the registry: the
 * same committed stream replayed from the v1 flat file
 * (TraceFileStream) and from the v2 compressed store
 * (CompressedTraceStream) yields bit-identical commit-order event
 * streams and stats. Full StatRegistry JSON is deliberately NOT
 * compared — the stream.backend.* sim tag and the host-only
 * trace.store.* counters legitimately differ between backends; the
 * contract is on everything the *predictors* can see.
 */
struct TraceFormatPair
{
    std::string v1;
    std::string v2;

    explicit TraceFormatPair(std::uint64_t seed, std::uint64_t branches)
    {
        v1 = testing::TempDir() + "diff_fmt_" + std::to_string(seed) +
             ".pcbptrc";
        v2 = v1 + "2";
        Program p = generateProgram(randomRecipe(seed));
        saveTrace(v1, walkProgram(p, branches));
        convertTraceFile(v1, v2, true, 512);
    }

    ~TraceFormatPair()
    {
        std::remove(v1.c_str());
        std::remove(v2.c_str());
    }
};

std::pair<std::vector<CommitEvent>, EngineStats>
engineTraceEvents(const std::string &trace_path, const HybridSpec &spec,
                  const EngineConfig &cfg)
{
    Program p = reconstructProgramFromTrace(trace_path, "diff-fmt");
    auto h = spec.build();
    RecordingSink sink;
    EngineConfig c = cfg;
    c.commitSink = &sink;
    auto stream = openTraceStream(trace_path);
    const EngineStats st = Engine(p, *h, c).run(*stream);
    return {std::move(sink.events), st};
}

void
expectSameEngineStats(const EngineStats &a, const EngineStats &b)
{
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.prophetMispredicts, b.prophetMispredicts);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.squashedPredictions, b.squashedPredictions);
    EXPECT_EQ(a.wrongPathBranches, b.wrongPathBranches);
    EXPECT_EQ(a.wrongPathUops, b.wrongPathUops);
    EXPECT_EQ(a.partialCritiques, b.partialCritiques);
}

TEST(Trace2Differential, EveryProphetAgreesAcrossTraceFormats)
{
    const TraceFormatPair t(171, 7000);
    const EngineConfig cfg = smallEngine();
    for (const ProphetKind kind : allProphetKinds()) {
        SCOPED_TRACE("prophet " + prophetKindName(kind));
        auto [e1, s1] = engineTraceEvents(t.v1, prophetAlone(kind, Budget::B2KB), cfg);
        auto [e2, s2] = engineTraceEvents(t.v2, prophetAlone(kind, Budget::B2KB), cfg);
        expectSameEvents(e1, e2);
        expectSameEngineStats(s1, s2);
    }
}

TEST(Trace2Differential, EveryCriticAgreesAcrossTraceFormats)
{
    const TraceFormatPair t(173, 7000);
    const EngineConfig cfg = smallEngine();
    for (const CriticKind critic : allCriticKinds()) {
        SCOPED_TRACE("critic " + criticKindName(critic));
        const HybridSpec spec =
            hybridSpec(ProphetKind::Perceptron, Budget::B2KB, critic,
                       Budget::B2KB, 8);
        auto [e1, s1] = engineTraceEvents(t.v1, spec, cfg);
        auto [e2, s2] = engineTraceEvents(t.v2, spec, cfg);
        expectSameEvents(e1, e2);
        expectSameEngineStats(s1, s2);
    }
}

TEST(Trace2Differential, TimingAgreesAcrossTraceFormats)
{
    const TraceFormatPair t(179, 5000);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Tage, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);
    TimingConfig cfg;
    cfg.warmupBranches = 400;
    cfg.measureBranches = 4000;

    const auto timingRun = [&](const std::string &path) {
        Program p = reconstructProgramFromTrace(path, "diff-fmt-t");
        auto h = spec.build();
        auto stream = openTraceStream(path);
        return TimingSim(p, *h, cfg).run(*stream);
    };
    const TimingStats a = timingRun(t.v1);
    const TimingStats b = timingRun(t.v2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.fetchedUops, b.fetchedUops);
    EXPECT_EQ(a.wrongPathFetchedUops, b.wrongPathFetchedUops);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.ftqEntriesFlushedByCritic, b.ftqEntriesFlushedByCritic);
    EXPECT_EQ(a.partialCritiques, b.partialCritiques);
    EXPECT_EQ(a.ftqEmptyCycles, b.ftqEmptyCycles);
}

/** The batched engine on a `trace:` workload backed by a v2 store
 *  matches scalar replays of the same store — compression composes
 *  with SIMD lanes, not just the scalar path. */
TEST(Trace2Differential, BatchedTraceBackendMatchesScalarOnV2)
{
    const TraceFormatPair t(181, 8000);
    const Workload &tw = workloadByName("trace:" + t.v2);

    std::vector<HybridSpec> specs = {
        prophetAlone(ProphetKind::Gshare, Budget::B2KB),
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8),
    };
    EngineConfig base;
    base.warmupBranches = 800;
    base.measureBranches = 7200;
    const std::vector<EngineConfig> cfgs(specs.size(), base);

    std::vector<ScalarRef> refs;
    for (const HybridSpec &s : specs)
        refs.push_back(scalarEngineRef(tw, s, base));
    for (const std::size_t width : {1u, 4u}) {
        SCOPED_TRACE("width " + std::to_string(width));
        expectBatchMatchesScalar(tw, specs, cfgs, refs, width);
    }
}

} // namespace
} // namespace pcbp
