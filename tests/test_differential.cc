/**
 * @file
 * Differential tests over the whole predictor registry.
 *
 * PR 2 pinned Engine/TimingSim stream-backend equivalence for a few
 * hand-picked configurations; these tests generalize that contract
 * to every factory-registered prophet (including TAGE) and every
 * critic kind, on randomized CFG workloads across seeds, using the
 * commit-path tap (CommitSink) to compare entire commit-order event
 * streams rather than aggregate counters:
 *
 * - per simulator, the streamed CFG walk and the precomputed-vector
 *   backend must produce bit-identical commit-order predictions and
 *   outcomes;
 * - the committed (architectural) path must be *predictor-invariant*
 *   and *simulator-invariant*: any predictor, either simulator, same
 *   (block, pc, outcome, uops) sequence as the plain program walk.
 *
 * Deliberately NOT asserted: commit-order predictions equal between
 * Engine and TimingSim. They are not — commit-time training reaches
 * the tables at different fetch-to-commit lags in the two pipelines,
 * so individual predictions legitimately differ; only the
 * architectural path is shared.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "workload/generator.hh"

namespace pcbp
{
namespace
{

/** Commit-order event recording tap. */
struct RecordingSink : CommitSink
{
    std::vector<CommitEvent> events;

    void onCommit(const CommitEvent &e) override { events.push_back(e); }
};

/** A small randomized CFG workload; deterministic per seed. */
WorkloadRecipe
randomRecipe(std::uint64_t seed)
{
    WorkloadRecipe r;
    r.name = "diff-" + std::to_string(seed);
    r.seed = seed;
    r.targetBlocks = 120 + unsigned(seed % 7) * 30;
    r.numChains = 4;
    r.numPhaseChains = 2;
    return r;
}

void
expectSameEvents(const std::vector<CommitEvent> &a,
                 const std::vector<CommitEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].index, b[i].index) << "at commit " << i;
        ASSERT_EQ(a[i].block, b[i].block) << "at commit " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "at commit " << i;
        ASSERT_EQ(a[i].numUops, b[i].numUops) << "at commit " << i;
        ASSERT_EQ(a[i].btbHit, b[i].btbHit) << "at commit " << i;
        ASSERT_EQ(a[i].prophetPred, b[i].prophetPred)
            << "at commit " << i;
        ASSERT_EQ(a[i].finalPred, b[i].finalPred) << "at commit " << i;
        ASSERT_EQ(a[i].critiqueProvided, b[i].critiqueProvided)
            << "at commit " << i;
        ASSERT_EQ(a[i].criticOverrode, b[i].criticOverrode)
            << "at commit " << i;
        ASSERT_EQ(a[i].outcome, b[i].outcome) << "at commit " << i;
    }
}

/** Engine run over the streamed walk, events recorded. */
std::vector<CommitEvent>
engineStreamedEvents(const WorkloadRecipe &recipe, const HybridSpec &spec,
                     const EngineConfig &cfg)
{
    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink sink;
    EngineConfig c = cfg;
    c.commitSink = &sink;
    Engine(p, *h, c).run();
    return std::move(sink.events);
}

/** Engine run over the precomputed-vector backend, events recorded. */
std::vector<CommitEvent>
enginePrecomputedEvents(const WorkloadRecipe &recipe,
                        const HybridSpec &spec, const EngineConfig &cfg)
{
    Program pw = generateProgram(recipe);
    PrecomputedStream pre(
        walkProgram(pw, cfg.warmupBranches + cfg.measureBranches));
    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink sink;
    EngineConfig c = cfg;
    c.commitSink = &sink;
    Engine(p, *h, c).run(pre);
    return std::move(sink.events);
}

EngineConfig
smallEngine()
{
    EngineConfig cfg;
    cfg.measureBranches = 6000;
    cfg.warmupBranches = 600;
    return cfg;
}

// --------------------------------------------- backend equivalence

/**
 * The registry-wide generalization of the PR 2 equivalence tests:
 * for every factory-registered prophet, the streamed and precomputed
 * committed-stream backends must yield bit-identical commit-order
 * prediction/outcome streams.
 */
TEST(Differential, EngineBackendsAgreeForEveryProphet)
{
    for (const ProphetKind kind : allProphetKinds()) {
        for (const std::uint64_t seed : {11u, 29u}) {
            const WorkloadRecipe recipe = randomRecipe(seed);
            const HybridSpec spec = prophetAlone(kind, Budget::B2KB);
            const EngineConfig cfg = smallEngine();

            const auto streamed =
                engineStreamedEvents(recipe, spec, cfg);
            const auto precomputed =
                enginePrecomputedEvents(recipe, spec, cfg);

            SCOPED_TRACE(prophetKindName(kind) + " seed " +
                         std::to_string(seed));
            ASSERT_EQ(streamed.size(),
                      cfg.warmupBranches + cfg.measureBranches);
            expectSameEvents(streamed, precomputed);
        }
    }
}

/** Same contract for every critic kind riding on two prophets. */
TEST(Differential, EngineBackendsAgreeForEveryCritic)
{
    for (const CriticKind critic : allCriticKinds()) {
        for (const ProphetKind prophet :
             {ProphetKind::Gshare, ProphetKind::Tage}) {
            const WorkloadRecipe recipe = randomRecipe(43);
            const HybridSpec spec = hybridSpec(
                prophet, Budget::B2KB, critic, Budget::B2KB, 8);
            const EngineConfig cfg = smallEngine();

            const auto streamed =
                engineStreamedEvents(recipe, spec, cfg);
            const auto precomputed =
                enginePrecomputedEvents(recipe, spec, cfg);

            SCOPED_TRACE(criticKindName(critic) + " on " +
                         prophetKindName(prophet));
            expectSameEvents(streamed, precomputed);
        }
    }
}

/** The timing model honors the same backend contract, registry-wide. */
TEST(Differential, TimingBackendsAgreeForEveryProphet)
{
    for (const ProphetKind kind : allProphetKinds()) {
        const WorkloadRecipe recipe = randomRecipe(17);
        const HybridSpec spec = prophetAlone(kind, Budget::B2KB);
        TimingConfig cfg;
        cfg.measureBranches = 2500;
        cfg.warmupBranches = 250;

        RecordingSink streamed_sink;
        {
            Program p = generateProgram(recipe);
            auto h = spec.build();
            TimingConfig c = cfg;
            c.commitSink = &streamed_sink;
            TimingSim(p, *h, c).run();
        }
        RecordingSink pre_sink;
        {
            Program pw = generateProgram(recipe);
            PrecomputedStream pre(walkProgram(
                pw, cfg.warmupBranches + cfg.measureBranches));
            Program p = generateProgram(recipe);
            auto h = spec.build();
            TimingConfig c = cfg;
            c.commitSink = &pre_sink;
            TimingSim(p, *h, c).run(pre);
        }

        SCOPED_TRACE(prophetKindName(kind));
        expectSameEvents(streamed_sink.events, pre_sink.events);
    }
}

// --------------------------------------- architectural invariance

/**
 * The committed path is independent of the predictor under test and
 * of the simulator driving it: for every registered prophet, both
 * simulators must commit exactly the plain program walk.
 */
TEST(Differential, ArchitecturalPathIsPredictorAndSimulatorInvariant)
{
    const WorkloadRecipe recipe = randomRecipe(7);
    constexpr std::uint64_t branches = 4000;

    Program pw = generateProgram(recipe);
    const auto walk = walkProgram(pw, branches);

    EngineConfig ecfg;
    ecfg.measureBranches = branches - 400;
    ecfg.warmupBranches = 400;
    TimingConfig tcfg;
    tcfg.measureBranches = branches - 400;
    tcfg.warmupBranches = 400;

    for (const ProphetKind kind : allProphetKinds()) {
        SCOPED_TRACE(prophetKindName(kind));
        const HybridSpec spec = prophetAlone(kind, Budget::B2KB);

        RecordingSink engine_sink;
        {
            Program p = generateProgram(recipe);
            auto h = spec.build();
            EngineConfig c = ecfg;
            c.commitSink = &engine_sink;
            Engine(p, *h, c).run();
        }
        RecordingSink timing_sink;
        {
            Program p = generateProgram(recipe);
            auto h = spec.build();
            TimingConfig c = tcfg;
            c.commitSink = &timing_sink;
            TimingSim(p, *h, c).run();
        }

        ASSERT_EQ(engine_sink.events.size(), branches);
        ASSERT_EQ(timing_sink.events.size(), branches);
        for (std::uint64_t i = 0; i < branches; ++i) {
            for (const auto *sink : {&engine_sink, &timing_sink}) {
                const CommitEvent &e = sink->events[i];
                ASSERT_EQ(e.index, i);
                ASSERT_EQ(e.block, walk[i].block) << "at commit " << i;
                ASSERT_EQ(e.pc, walk[i].pc) << "at commit " << i;
                ASSERT_EQ(e.outcome, walk[i].taken)
                    << "at commit " << i;
                ASSERT_EQ(e.numUops, walk[i].numUops)
                    << "at commit " << i;
            }
        }
    }
}

/**
 * Determinism across repeated runs: same recipe, same predictor,
 * same events — the property the sweep store's content keys rely on.
 */
TEST(Differential, RepeatedRunsAreBitIdentical)
{
    for (const ProphetKind kind :
         {ProphetKind::Tage, ProphetKind::Perceptron}) {
        const WorkloadRecipe recipe = randomRecipe(5);
        const HybridSpec spec =
            hybridSpec(kind, Budget::B4KB, CriticKind::TaggedGshare,
                       Budget::B4KB, 8);
        const EngineConfig cfg = smallEngine();
        const auto a = engineStreamedEvents(recipe, spec, cfg);
        const auto b = engineStreamedEvents(recipe, spec, cfg);
        SCOPED_TRACE(prophetKindName(kind));
        expectSameEvents(a, b);
    }
}

} // namespace
} // namespace pcbp
