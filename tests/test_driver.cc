/**
 * @file
 * Tests for the experiment driver and metrics layer: spec building,
 * aggregation math, parallel set runs, and a handful of deeper
 * mechanism checks that sit naturally at this level.
 */

#include <gtest/gtest.h>

#include "predictors/gskew.hh"
#include "sim/driver.hh"

namespace pcbp
{
namespace
{

// ------------------------------------------------------------- HybridSpec

TEST(HybridSpec, LabelsAreReadable)
{
    const auto alone = prophetAlone(ProphetKind::GSkew, Budget::B16KB);
    EXPECT_EQ(alone.label(), "16KB 2Bc-gskew");

    const auto hyb = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                                CriticKind::TaggedGshare, Budget::B8KB,
                                8);
    EXPECT_EQ(hyb.label(), "8KB perceptron + 8KB t.gshare");
}

TEST(HybridSpec, BuildRespectsCriticPresence)
{
    const auto alone = prophetAlone(ProphetKind::Gshare, Budget::B4KB);
    EXPECT_FALSE(alone.build()->hasCritic());

    const auto hyb = hybridSpec(ProphetKind::Gshare, Budget::B4KB,
                                CriticKind::FilteredPerceptron,
                                Budget::B4KB, 4);
    auto built = hyb.build();
    EXPECT_TRUE(built->hasCritic());
    EXPECT_EQ(built->numFutureBits(), 4u);
}

TEST(HybridSpec, ProphetAloneHasZeroFutureBits)
{
    const auto alone = prophetAlone(ProphetKind::Gshare, Budget::B4KB);
    EXPECT_EQ(alone.build()->numFutureBits(), 0u);
}

TEST(HybridSpec, AblationKnobsReachTheHybrid)
{
    auto spec = prophetAlone(ProphetKind::Gshare, Budget::B4KB);
    spec.speculativeHistory = false;
    auto h = spec.build();
    // With retired-only update, predictBranch must not advance the
    // registers.
    BranchContext ctx;
    h->predictBranch(0x1000, ctx);
    EXPECT_EQ(h->bhr(), ctx.bhrBefore);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, AggregateAveragesRatesAndSumsCounters)
{
    EngineStats a, b;
    a.committedBranches = 1000;
    a.committedUops = 10000;
    a.finalMispredicts = 100; // 10 misp/Kuops
    b.committedBranches = 1000;
    b.committedUops = 10000;
    b.finalMispredicts = 300; // 30 misp/Kuops
    const AggregateResult agg = aggregate({a, b});
    EXPECT_DOUBLE_EQ(agg.mispPerKuops, 20.0);
    EXPECT_EQ(agg.finalMispredicts, 400u);
    EXPECT_EQ(agg.committedUops, 20000u);
    EXPECT_DOUBLE_EQ(agg.uopsPerFlush(), 50.0);
}

TEST(Metrics, AggregateEmptyIsZero)
{
    const AggregateResult agg = aggregate({});
    EXPECT_DOUBLE_EQ(agg.mispPerKuops, 0.0);
    EXPECT_EQ(agg.committedBranches, 0u);
}

TEST(Metrics, PctReduction)
{
    EXPECT_DOUBLE_EQ(pctReduction(10.0, 5.0), 50.0);
    EXPECT_DOUBLE_EQ(pctReduction(10.0, 12.0), -20.0);
    EXPECT_DOUBLE_EQ(pctReduction(0.0, 1.0), 0.0);
}

TEST(Metrics, AggregateSumsCritiques)
{
    EngineStats a, b;
    a.critiques.record(CritiqueClass::CorrectAgree);
    a.critiques.record(CritiqueClass::IncorrectDisagree);
    b.critiques.record(CritiqueClass::CorrectAgree);
    const AggregateResult agg = aggregate({a, b});
    EXPECT_EQ(agg.critiques.get(CritiqueClass::CorrectAgree), 2u);
    EXPECT_EQ(agg.critiques.get(CritiqueClass::IncorrectDisagree), 1u);
}

// ----------------------------------------------------------------- runSet

TEST(RunSet, ParallelMatchesSequential)
{
    // runSet farms workloads across threads; results must equal
    // individual runs exactly (everything is deterministic).
    std::vector<const Workload *> set = {&workloadByName("fp.swim"),
                                         &workloadByName("mm.mpeg")};
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);
    const auto results = runSet(set, spec);
    ASSERT_EQ(results.size(), 2u);
    for (std::size_t i = 0; i < set.size(); ++i) {
        const EngineStats solo = runAccuracy(*set[i], spec);
        EXPECT_EQ(results[i].finalMispredicts, solo.finalMispredicts)
            << set[i]->name;
        EXPECT_EQ(results[i].committedUops, solo.committedUops);
    }
}

TEST(RunSet, EngineConfigForScalesWithWorkload)
{
    const Workload &w = workloadByName("unzip");
    const EngineConfig cfg = engineConfigFor(w);
    EXPECT_EQ(cfg.measureBranches, w.simBranches);
    EXPECT_EQ(cfg.warmupBranches, w.warmupBranches);
}

// --------------------------------------------- deeper mechanism checks

TEST(Mechanism, GskewPartialUpdateSparesDisagreeingBanks)
{
    // On a correct majority prediction, a bank that voted against the
    // outcome is left alone (partial update).
    GSkew g(1024, 10);
    HistoryRegister h;
    // Train all banks strongly taken at one context.
    for (int i = 0; i < 8; ++i)
        g.update(0x4000, h, true);
    const auto before = g.banks(0x4000, h);
    ASSERT_TRUE(before.final_);
    // One not-taken outcome: mispredict -> full re-education moves
    // every direction bank one step. A second taken outcome is then
    // correct and must NOT strengthen banks that said not-taken.
    g.update(0x4000, h, false);
    g.update(0x4000, h, true);
    const auto after = g.banks(0x4000, h);
    EXPECT_TRUE(after.final_) << "still predicts taken overall";
}

TEST(Mechanism, UnfilteredCriticTrainsEveryCommit)
{
    // The unfiltered adapter updates its inner predictor on every
    // commit, so a bias flips after enough opposite outcomes even
    // without mispredict-gated allocation.
    auto critic = makeCritic(CriticKind::UnfilteredGshare, Budget::B2KB);
    HistoryRegister bor;
    for (int i = 0; i < 8; ++i)
        critic->train(0x5000, bor, true, false); // never "mispredicted"
    EXPECT_TRUE(critic->critique(0x5000, bor).taken);
    for (int i = 0; i < 8; ++i)
        critic->train(0x5000, bor, false, false);
    EXPECT_FALSE(critic->critique(0x5000, bor).taken);
}

TEST(Mechanism, OracleFutureBitsComeFromTheTrace)
{
    // In oracle mode with a fully-biased program, the critic's BOR
    // future bits equal the architectural outcomes; with a prophet
    // that is always wrong, the oracle critic can still learn the
    // (constant) context -> outcome mapping.
    Program p("oracle");
    BasicBlock a;
    a.branchPc = 0x1000;
    a.numUops = 10;
    a.takenTarget = 0;
    a.fallthroughTarget = 0;
    a.behavior = std::make_unique<BiasedBehavior>(1.0, 1);
    p.addBlock(std::move(a));
    p.validate();

    HybridConfig hc;
    hc.numFutureBits = 4;
    ProphetCriticHybrid hybrid(
        makeProphet(ProphetKind::AlwaysNotTaken, Budget::B2KB),
        makeCritic(CriticKind::TaggedGshare, Budget::B2KB), hc);
    EngineConfig cfg;
    cfg.oracleFutureBits = true;
    cfg.measureBranches = 3000;
    cfg.warmupBranches = 500;
    Engine e(p, hybrid, cfg);
    const EngineStats st = e.run();
    // The prophet is always wrong; the oracle-fed critic fixes
    // almost everything after warmup.
    EXPECT_LT(st.mispRate(), 0.05);
}

TEST(Mechanism, CriticFixesWhatProphetCannotOnChainWorkload)
{
    // End-to-end guard used by the benches: on the chain-heavy unzip
    // analogue, 12 future bits must beat 1 future bit.
    const Workload &w = workloadByName("unzip");
    EngineConfig cfg = engineConfigFor(w);
    cfg.measureBranches = 60000;
    cfg.warmupBranches = 10000;
    const double fb1 =
        runAccuracy(w,
                    hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                               CriticKind::TaggedGshare, Budget::B8KB,
                               1),
                    cfg)
            .mispPerKuops();
    const double fb12 =
        runAccuracy(w,
                    hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                               CriticKind::TaggedGshare, Budget::B8KB,
                               12),
                    cfg)
            .mispPerKuops();
    EXPECT_LT(fb12, fb1);
}

TEST(Mechanism, FlushDistanceHistogramTracksMispredicts)
{
    const Workload &w = workloadByName("serv.tpcc");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B4KB);
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    const EngineStats st = runAccuracy(w, spec, cfg);
    ASSERT_GT(st.finalMispredicts, 0u);
    EXPECT_EQ(st.flushDistance.count(), st.finalMispredicts);
    EXPECT_GT(st.flushDistance.mean(), 0.0);
    EXPECT_LE(st.flushDistance.percentile(50),
              st.flushDistance.percentile(95));
}

} // namespace
} // namespace pcbp
