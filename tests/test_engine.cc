/**
 * @file
 * Unit tests for the wrong-path accuracy engine and the BTB: event
 * ordering, statistics accounting, recovery invariants, and the §5
 * FTQ-flush semantics.
 */

#include <gtest/gtest.h>

#include "predictors/static_pred.hh"
#include "sim/btb.hh"
#include "sim/driver.hh"
#include "sim/engine.hh"

namespace pcbp
{
namespace
{

/** Two-block program: block 0 alternates, block 1 always taken. */
Program
tinyProgram()
{
    Program p("tiny");
    BasicBlock a;
    a.branchPc = 0x1000;
    a.numUops = 10;
    a.takenTarget = 1;
    a.fallthroughTarget = 1;
    a.behavior =
        std::make_unique<PatternBehavior>(std::vector<bool>{true, false},
                                          0.0, 1);
    p.addBlock(std::move(a));
    BasicBlock b;
    b.branchPc = 0x1010;
    b.numUops = 10;
    b.takenTarget = 0;
    b.fallthroughTarget = 0;
    b.behavior = std::make_unique<BiasedBehavior>(1.0, 2);
    p.addBlock(std::move(b));
    p.validate();
    return p;
}

// -------------------------------------------------------------------- BTB

TEST(Btb, MissThenAllocateThenHit)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x4000));
    btb.allocate(0x4000);
    EXPECT_TRUE(btb.lookup(0x4000));
}

TEST(Btb, LruReplacementWithinSet)
{
    Btb btb(8, 4); // 2 sets x 4 ways
    // Five pcs mapping to set 0 (pc>>2 & 1 == 0).
    const Addr pcs[] = {0x000, 0x010, 0x020, 0x030, 0x040};
    for (Addr pc : pcs)
        btb.allocate(pc);
    EXPECT_FALSE(btb.lookup(pcs[0])) << "oldest entry evicted";
    for (int i = 1; i < 5; ++i)
        EXPECT_TRUE(btb.lookup(pcs[i]));
}

TEST(Btb, ReallocateRefreshes)
{
    Btb btb(8, 4);
    const Addr pcs[] = {0x000, 0x010, 0x020, 0x030};
    for (Addr pc : pcs)
        btb.allocate(pc);
    btb.allocate(pcs[0]); // refresh LRU position
    btb.allocate(0x040);  // evicts pcs[1] now
    EXPECT_TRUE(btb.lookup(pcs[0]));
    EXPECT_FALSE(btb.lookup(pcs[1]));
}

TEST(Btb, Reset)
{
    Btb btb(64, 4);
    btb.allocate(0x4000);
    btb.reset();
    EXPECT_FALSE(btb.lookup(0x4000));
}

// ----------------------------------------------------------------- Engine

TEST(Engine, CommitsExactlyConfiguredBranches)
{
    Program p = tinyProgram();
    auto hybrid = prophetAlone(ProphetKind::Gshare, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.measureBranches = 5000;
    cfg.warmupBranches = 500;
    EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_EQ(st.committedBranches, 5000u);
    EXPECT_EQ(st.committedUops, 50000u);
}

TEST(Engine, PerfectPredictorNeverFlushes)
{
    // Block 1 is always taken, block 0 alternates; gshare learns both
    // perfectly after warmup.
    Program p = tinyProgram();
    auto hybrid = prophetAlone(ProphetKind::Gshare, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.measureBranches = 5000;
    cfg.warmupBranches = 2000;
    EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_EQ(st.finalMispredicts, 0u);
    EXPECT_EQ(st.mispPerKuops(), 0.0);
}

TEST(Engine, AlwaysWrongPredictorFlushesEverywhere)
{
    // Always-not-taken against an always-taken branch pair: block 1
    // is always taken, block 0 alternates -> 75% mispredicts.
    Program p = tinyProgram();
    auto hybrid =
        prophetAlone(ProphetKind::AlwaysNotTaken, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.measureBranches = 4000;
    cfg.warmupBranches = 400;
    EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_NEAR(st.mispRate(), 0.75, 0.01);
    // Every mispredict flushes the pipeline and squashes wrong-path
    // work fetched behind it.
    EXPECT_GT(st.wrongPathUops, 0u);
    EXPECT_GT(st.wrongPathBranches, 0u);
}

TEST(Engine, UopsPerFlushMatchesRates)
{
    Program p = tinyProgram();
    auto hybrid =
        prophetAlone(ProphetKind::AlwaysNotTaken, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.measureBranches = 4000;
    cfg.warmupBranches = 400;
    EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_NEAR(st.uopsPerFlush(),
                double(st.committedUops) / double(st.finalMispredicts),
                1e-9);
    EXPECT_EQ(st.flushDistance.count(), st.finalMispredicts);
}

TEST(Engine, BtbMissesFallThroughAndAllocate)
{
    // Always-taken branches with a cold BTB: the first encounter of
    // each block mispredicts (fall-through), then the BTB entry
    // exists and the prophet takes over.
    Program p = tinyProgram();
    auto hybrid =
        prophetAlone(ProphetKind::AlwaysTaken, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.measureBranches = 1000;
    cfg.warmupBranches = 0; // count from the very start
    EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_GE(st.btbMisses, 1u);
    EXPECT_LE(st.btbMisses, 4u) << "both blocks allocate quickly";
}

TEST(Engine, DisablingBtbRemovesMisses)
{
    Program p = tinyProgram();
    auto hybrid = prophetAlone(ProphetKind::Gshare, Budget::B2KB).build();
    EngineConfig cfg;
    cfg.useBtb = false;
    cfg.measureBranches = 1000;
    cfg.warmupBranches = 0;
    EngineStats st = Engine(p, *hybrid, cfg).run();
    EXPECT_EQ(st.btbMisses, 0u);
}

TEST(Engine, CriticOverridesAreCounted)
{
    const Workload &w = workloadByName("int.crafty");
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    EngineConfig cfg;
    cfg.measureBranches = 40000;
    cfg.warmupBranches = 4000;
    Program p = buildProgram(w);
    auto h = spec.build();
    EngineStats st = Engine(p, *h, cfg).run();
    EXPECT_GT(st.criticOverrides, 0u);
    // Explicit critiques recorded at commit include all overrides
    // that survived to commit; squashed ones may exceed commits, so
    // only sanity-check the magnitude.
    const auto disagrees =
        st.critiques.get(CritiqueClass::CorrectDisagree) +
        st.critiques.get(CritiqueClass::IncorrectDisagree);
    EXPECT_GT(disagrees, 0u);
    EXPECT_GT(st.squashedPredictions, 0u)
        << "overrides flush younger FTQ predictions";
}

TEST(Engine, CritiqueDistributionCoversCommits)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 4);
    EngineConfig cfg;
    cfg.measureBranches = 30000;
    cfg.warmupBranches = 3000;
    Program p = buildProgram(w);
    auto h = spec.build();
    EngineStats st = Engine(p, *h, cfg).run();
    // Every committed BTB-hit branch gets exactly one critique
    // classification.
    EXPECT_EQ(st.critiques.total(),
              st.committedBranches - st.btbMisses);
}

TEST(Engine, PartialCritiquesRareAtEightBits)
{
    // §5: with 8 future bits, the cache needing a prediction before
    // the critique is ready is rare (<0.1% in the paper).
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);
    EngineConfig cfg;
    cfg.measureBranches = 30000;
    cfg.warmupBranches = 3000;
    Program p = buildProgram(w);
    auto h = spec.build();
    EngineStats st = Engine(p, *h, cfg).run();
    EXPECT_LT(double(st.partialCritiques) / double(st.committedBranches),
              0.02);
}

TEST(Engine, PipelineDepthMustExceedFutureBits)
{
    Program p = tinyProgram();
    auto h = hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                        CriticKind::TaggedGshare, Budget::B2KB, 12)
                 .build();
    EngineConfig cfg;
    cfg.pipelineDepth = 8;
    EXPECT_DEATH(Engine(p, *h, cfg),
                 "pipeline depth must exceed the future-bit count");
}

TEST(Engine, DeeperPipelineSameAccuracyShape)
{
    // Depth changes update timing slightly but not the big picture.
    const Workload &w = workloadByName("fp.swim");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);
    EngineConfig a = engineConfigFor(w);
    a.measureBranches = 30000;
    EngineConfig b = a;
    b.pipelineDepth = 48;
    Program p1 = buildProgram(w);
    auto h1 = spec.build();
    const double ra = Engine(p1, *h1, a).run().mispRate();
    Program p2 = buildProgram(w);
    auto h2 = spec.build();
    const double rb = Engine(p2, *h2, b).run().mispRate();
    EXPECT_NEAR(ra, rb, 0.01);
}

TEST(Engine, PerBranchStatsSumToTotals)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    cfg.collectPerBranch = true;
    Program p = buildProgram(w);
    auto h = spec.build();
    EngineStats st = Engine(p, *h, cfg).run();
    std::uint64_t execs = 0, wrong = 0;
    for (const auto &pb : st.perBranch) {
        execs += pb.execs;
        wrong += pb.finalWrong;
    }
    EXPECT_EQ(execs, st.committedBranches);
    EXPECT_EQ(wrong, st.finalMispredicts);
}

TEST(Engine, WrongPathUopsScaleWithMispredicts)
{
    const Workload &w = workloadByName("serv.tpcc");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;

    Program p1 = buildProgram(w);
    auto good = prophetAlone(ProphetKind::Perceptron,
                             Budget::B32KB).build();
    EngineStats gs = Engine(p1, *good, cfg).run();

    Program p2 = buildProgram(w);
    auto bad = prophetAlone(ProphetKind::AlwaysTaken,
                            Budget::B2KB).build();
    EngineStats bs = Engine(p2, *bad, cfg).run();

    EXPECT_GT(bs.finalMispredicts, gs.finalMispredicts);
    EXPECT_GT(bs.wrongPathUops, gs.wrongPathUops);
}

} // namespace
} // namespace pcbp
