/**
 * @file
 * Tests for the extension predictors the paper points at: Seznec's
 * redundant-history skewed perceptron (§9) and the Loh-Henry fusion
 * hybrid (§2), plus their factory integration and their use as
 * prophets in the full engine.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictors/bimodal.hh"
#include "predictors/factory.hh"
#include "predictors/fusion.hh"
#include "predictors/gshare.hh"
#include "predictors/perceptron.hh"
#include "predictors/skewed_perceptron.hh"
#include "sim/driver.hh"

namespace pcbp
{
namespace
{

template <typename NextOutcome>
double
trainAndMeasure(DirectionPredictor &pred, NextOutcome &&next,
                int warmup = 3000, int measure = 4000,
                Addr pc = 0x401000)
{
    HistoryRegister hist;
    int correct = 0;
    for (int i = 0; i < warmup + measure; ++i) {
        const bool outcome = next(i, hist);
        const bool p = pred.predict(pc, hist);
        if (i >= warmup && p == outcome)
            ++correct;
        pred.update(pc, hist, outcome);
        hist.shiftIn(outcome);
    }
    return double(correct) / measure;
}

// ------------------------------------------------------ SkewedPerceptron

TEST(SkewedPerceptron, LearnsLongHistoryEcho)
{
    SkewedPerceptron p(64, 40);
    const double acc = trainAndMeasure(
        p, [](int, const HistoryRegister &h) { return h.bit(35); });
    EXPECT_GT(acc, 0.95);
}

TEST(SkewedPerceptron, LearnsBias)
{
    SkewedPerceptron p(64, 28);
    const double acc = trainAndMeasure(
        p, [](int i, const HistoryRegister &) { return i % 8 != 0; });
    EXPECT_GT(acc, 0.85);
}

TEST(SkewedPerceptron, CannotLearnXorEither)
{
    // Still a linear model: XOR of balanced bits stays out of reach.
    SkewedPerceptron p(64, 28);
    Rng rng(5);
    HistoryRegister hist;
    int correct = 0;
    const int warmup = 4000, measure = 6000;
    for (int i = 0; i < warmup + measure; ++i) {
        const bool outcome = hist.bit(20) != hist.bit(21);
        if (i >= warmup && p.predict(0x1000, hist) == outcome)
            ++correct;
        p.update(0x1000, hist, outcome);
        hist.shiftIn(rng.nextBool(0.5));
    }
    EXPECT_LT(double(correct) / measure, 0.62);
}

TEST(SkewedPerceptron, RedundancyResistsAddressAliasing)
{
    // Two strongly-opposite branches that collide in the
    // address-only bank (same pc modulo rows) still separate
    // through the hashed banks. History is held constant to isolate
    // address aliasing (the hashed banks fold history into their
    // index, so varying it would probe capacity, not aliasing).
    SkewedPerceptron p(64, 12);
    HistoryRegister h;
    h.shiftIn(true);
    h.shiftIn(false);
    const Addr a = 0x1000, b = 0x1000 + 16 * 64; // same row in bank 0
    for (int i = 0; i < 400; ++i) {
        p.update(a, h, true);
        p.update(b, h, false);
    }
    EXPECT_TRUE(p.predict(a, h));
    EXPECT_FALSE(p.predict(b, h));

    // A plain perceptron of the same row count cannot separate them.
    Perceptron flat(64, 12);
    for (int i = 0; i < 400; ++i) {
        flat.update(a, h, true);
        flat.update(b, h, false);
    }
    EXPECT_EQ(flat.predict(a, h), flat.predict(b, h))
        << "the non-redundant perceptron should alias these";
}

TEST(SkewedPerceptron, OutputMatchesPrediction)
{
    SkewedPerceptron p(32, 16);
    HistoryRegister h;
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(p.predict(0x2000, h), p.output(0x2000, h) >= 0);
        p.update(0x2000, h, i % 3 != 0);
        h.shiftIn(i % 3 != 0);
    }
}

// ----------------------------------------------------------------- Fusion

TEST(Fusion, LearnsWhichComponentToTrustPerContext)
{
    std::vector<DirectionPredictorPtr> comps;
    comps.push_back(std::make_unique<Bimodal>(1024));
    comps.push_back(std::make_unique<Gshare>(4096, 12));
    FusionHybrid f(std::move(comps), 4096);

    // Branch that alternates: the gshare component gets it, the
    // bimodal flip-flops; fusion should learn to follow gshare.
    const double acc = trainAndMeasure(
        f, [](int i, const HistoryRegister &) { return i % 2 == 0; });
    EXPECT_GT(acc, 0.9);
}

TEST(Fusion, BeatsWorstComponent)
{
    std::vector<DirectionPredictorPtr> comps;
    comps.push_back(std::make_unique<Bimodal>(1024));
    comps.push_back(std::make_unique<Gshare>(4096, 12));
    FusionHybrid f(std::move(comps), 4096);
    Bimodal worst(1024);

    auto gen = [](int i, const HistoryRegister &) {
        return (i % 3) != 0;
    };
    const double facc = trainAndMeasure(f, gen);
    const double wacc = trainAndMeasure(worst, gen);
    EXPECT_GT(facc, wacc);
}

TEST(Fusion, SizeIncludesComponentsAndTable)
{
    std::vector<DirectionPredictorPtr> comps;
    comps.push_back(std::make_unique<Bimodal>(1024));
    comps.push_back(std::make_unique<Gshare>(4096, 12));
    FusionHybrid f(std::move(comps), 4096);
    EXPECT_EQ(f.sizeBits(), 1024u * 2 + 4096u * 2 + 4096u * 2);
    EXPECT_EQ(f.historyLength(), 12u);
}

// ---------------------------------------------------------------- Factory

TEST(ExtensionFactory, KindsRoundTrip)
{
    EXPECT_EQ(parseProphetKind("skewed-perceptron"),
              ProphetKind::SkewedPerceptron);
    EXPECT_EQ(parseProphetKind("fusion"), ProphetKind::Fusion);
}

TEST(ExtensionFactory, BudgetMatched)
{
    for (Budget b : {Budget::B2KB, Budget::B8KB, Budget::B32KB}) {
        for (ProphetKind k :
             {ProphetKind::SkewedPerceptron, ProphetKind::Fusion}) {
            auto p = makeProphet(k, b);
            EXPECT_GT(p->sizeBytes(), budgetBytes(b) / 4)
                << prophetKindName(k);
            EXPECT_LT(p->sizeBytes(), budgetBytes(b) * 2)
                << prophetKindName(k);
        }
    }
}

// ------------------------------------------------- end-to-end as prophets

TEST(ExtensionProphets, RunInEngineAndPredictWell)
{
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg;
    cfg.measureBranches = 15000;
    cfg.warmupBranches = 3000;
    for (ProphetKind k :
         {ProphetKind::SkewedPerceptron, ProphetKind::Fusion}) {
        Program p = buildProgram(w);
        auto h = prophetAlone(k, Budget::B8KB).build();
        const EngineStats st = Engine(p, *h, cfg).run();
        EXPECT_LT(st.mispRate(), 0.25) << prophetKindName(k);
    }
}

TEST(ExtensionProphets, WorkAsProphetInFullHybrid)
{
    // Sec. 9 of the paper: "microarchitects should experiment with
    // using different predictors as prophets and critics" — the
    // skewed perceptron is a drop-in prophet here.
    const Workload &w = workloadByName("unzip");
    EngineConfig cfg;
    cfg.measureBranches = 40000;
    cfg.warmupBranches = 8000;
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::SkewedPerceptron, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 8)
                 .build();
    const EngineStats st = Engine(p, *h, cfg).run();
    EXPECT_GT(st.criticOverrides, 0u);
    EXPECT_LT(st.mispRate(), 0.25);
}

} // namespace
} // namespace pcbp
