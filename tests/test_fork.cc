/**
 * @file
 * Fork/clone equivalence tests (DESIGN.md §11).
 *
 * The fork-based sweep executor rests on one claim: cloning a
 * mid-warmup simulation — program behaviors, predictor, spec core,
 * committed stream — and resuming the clone produces *bit-identical*
 * results to an uninterrupted run. These tests pin that claim
 * registry-wide and at full event granularity:
 *
 * - for every factory prophet and every critic kind, on both
 *   simulators, a run forked at an arbitrary in-warmup branch must
 *   reproduce the uninterrupted run's commit-order event stream
 *   (canonical prefix + fork suffix, event by event) and its final
 *   stats, field by field;
 * - the equivalence must survive checkpoint-slab growth (pipeline
 *   deeper than the slab's initial capacity) and recovery-heavy
 *   configurations (weak prophet, frequent flushes around the fork
 *   point);
 * - the chain drivers (runAccuracyChain / runTimingChain) must equal
 *   per-cell driver runs, and the sweep runner's stores must be
 *   byte-identical with forking on or off, at any job count.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sweep/runner.hh"
#include "workload/generator.hh"
#include "workload/trace.hh"
#include "workload/trace2.hh"

namespace pcbp
{
namespace
{

/** Commit-order event recording tap. */
struct RecordingSink : CommitSink
{
    std::vector<CommitEvent> events;

    void onCommit(const CommitEvent &e) override { events.push_back(e); }
};

/** A small randomized CFG workload; deterministic per seed. */
WorkloadRecipe
forkRecipe(std::uint64_t seed)
{
    WorkloadRecipe r;
    r.name = "fork-" + std::to_string(seed);
    r.seed = seed;
    r.targetBlocks = 140 + unsigned(seed % 5) * 25;
    r.numChains = 4;
    r.numPhaseChains = 2;
    return r;
}

void
expectSameEvents(const std::vector<CommitEvent> &a,
                 const std::vector<CommitEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].index, b[i].index) << "at commit " << i;
        ASSERT_EQ(a[i].block, b[i].block) << "at commit " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "at commit " << i;
        ASSERT_EQ(a[i].numUops, b[i].numUops) << "at commit " << i;
        ASSERT_EQ(a[i].btbHit, b[i].btbHit) << "at commit " << i;
        ASSERT_EQ(a[i].prophetPred, b[i].prophetPred)
            << "at commit " << i;
        ASSERT_EQ(a[i].finalPred, b[i].finalPred) << "at commit " << i;
        ASSERT_EQ(a[i].critiqueProvided, b[i].critiqueProvided)
            << "at commit " << i;
        ASSERT_EQ(a[i].criticOverrode, b[i].criticOverrode)
            << "at commit " << i;
        ASSERT_EQ(a[i].outcome, b[i].outcome) << "at commit " << i;
    }
}

void
expectSameStats(const EngineStats &a, const EngineStats &b)
{
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.prophetMispredicts, b.prophetMispredicts);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.squashedPredictions, b.squashedPredictions);
    EXPECT_EQ(a.wrongPathBranches, b.wrongPathBranches);
    EXPECT_EQ(a.wrongPathUops, b.wrongPathUops);
    EXPECT_EQ(a.partialCritiques, b.partialCritiques);
    for (const CritiqueClass cls :
         {CritiqueClass::CorrectAgree, CritiqueClass::CorrectDisagree,
          CritiqueClass::IncorrectAgree,
          CritiqueClass::IncorrectDisagree, CritiqueClass::CorrectNone,
          CritiqueClass::IncorrectNone})
        EXPECT_EQ(a.critiques.get(cls), b.critiques.get(cls));
    EXPECT_EQ(a.flushDistance.count(), b.flushDistance.count());
    EXPECT_EQ(a.flushDistance.buckets(), b.flushDistance.buckets());
}

void
expectSameStats(const TimingStats &a, const TimingStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.fetchedUops, b.fetchedUops);
    EXPECT_EQ(a.wrongPathFetchedUops, b.wrongPathFetchedUops);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.ftqEntriesFlushedByCritic,
              b.ftqEntriesFlushedByCritic);
    EXPECT_EQ(a.partialCritiques, b.partialCritiques);
    EXPECT_EQ(a.ftqEmptyCycles, b.ftqEmptyCycles);
}

/** Uninterrupted engine run: full event stream + stats. */
std::pair<std::vector<CommitEvent>, EngineStats>
engineStraight(const WorkloadRecipe &recipe, const HybridSpec &spec,
               EngineConfig cfg)
{
    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink sink;
    cfg.commitSink = &sink;
    const EngineStats st = Engine(p, *h, cfg).run();
    return {std::move(sink.events), st};
}

/**
 * The same run, but paused at commit @p fork_at (inside warmup),
 * forked — program, predictor, stream, engine all cloned — and
 * finished on the clone. Returns the canonical prefix concatenated
 * with the fork's suffix, plus the fork's stats.
 */
std::pair<std::vector<CommitEvent>, EngineStats>
engineForked(const WorkloadRecipe &recipe, const HybridSpec &spec,
             EngineConfig cfg, std::uint64_t fork_at)
{
    const std::uint64_t total =
        cfg.warmupBranches + cfg.measureBranches;

    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink canon_sink;
    EngineConfig canon_cfg = cfg;
    canon_cfg.commitSink = &canon_sink;
    Engine canon(p, *h, canon_cfg);
    ProgramWalkStream stream(p, total);
    canon.beginRun(stream);
    canon.stepUntil(fork_at, stream);
    EXPECT_EQ(canon.committedSoFar(), fork_at);

    Program fork_prog = p.clone();
    auto fork_hybrid = h->clone();
    RecordingSink fork_sink;
    EngineConfig fork_cfg = cfg;
    fork_cfg.commitSink = &fork_sink;
    ProgramWalkStream fork_stream(stream, fork_prog, total);
    Engine fork(canon, fork_prog, *fork_hybrid, fork_cfg);
    const EngineStats st = fork.resumeRun(fork_stream);

    std::vector<CommitEvent> events = std::move(canon_sink.events);
    events.insert(events.end(), fork_sink.events.begin(),
                  fork_sink.events.end());
    return {std::move(events), st};
}

/** Uninterrupted timing run: full event stream + stats. */
std::pair<std::vector<CommitEvent>, TimingStats>
timingStraight(const WorkloadRecipe &recipe, const HybridSpec &spec,
               TimingConfig cfg)
{
    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink sink;
    cfg.commitSink = &sink;
    const TimingStats st = TimingSim(p, *h, cfg).run();
    return {std::move(sink.events), st};
}

/**
 * Timing analogue of engineForked. The pause lands on a cycle
 * boundary at or past @p fork_target (stepUntil can overshoot by up
 * to retireWidth-1 commits), so the target keeps that margin inside
 * warmup, exactly as the chain driver does.
 */
std::pair<std::vector<CommitEvent>, TimingStats>
timingForked(const WorkloadRecipe &recipe, const HybridSpec &spec,
             TimingConfig cfg, std::uint64_t fork_target)
{
    const std::uint64_t total =
        cfg.warmupBranches + cfg.measureBranches;

    Program p = generateProgram(recipe);
    auto h = spec.build();
    RecordingSink canon_sink;
    TimingConfig canon_cfg = cfg;
    canon_cfg.commitSink = &canon_sink;
    TimingSim canon(p, *h, canon_cfg);
    ProgramWalkStream stream(p, total);
    canon.beginRun(stream);
    canon.stepUntil(fork_target, stream);
    EXPECT_GE(canon.committedSoFar(), fork_target);
    EXPECT_LT(canon.committedSoFar(), cfg.warmupBranches);

    Program fork_prog = p.clone();
    auto fork_hybrid = h->clone();
    RecordingSink fork_sink;
    TimingConfig fork_cfg = cfg;
    fork_cfg.commitSink = &fork_sink;
    ProgramWalkStream fork_stream(stream, fork_prog, total);
    TimingSim fork(canon, fork_prog, *fork_hybrid, fork_cfg);
    const TimingStats st = fork.resumeRun(fork_stream);

    std::vector<CommitEvent> events = std::move(canon_sink.events);
    events.insert(events.end(), fork_sink.events.begin(),
                  fork_sink.events.end());
    return {std::move(events), st};
}

EngineConfig
smallEngine()
{
    EngineConfig cfg;
    cfg.measureBranches = 4000;
    cfg.warmupBranches = 600;
    return cfg;
}

TimingConfig
smallTiming()
{
    TimingConfig cfg;
    // Must clear the forkability floor (measure >= window + retire).
    cfg.measureBranches = 4000;
    cfg.warmupBranches = 600;
    return cfg;
}

// --------------------------------------------- registry-wide forks

/**
 * Every factory prophet, forked at arbitrary in-warmup points
 * (immediately after the first commit, mid-warmup, and at the last
 * possible snapshot): event streams and stats bit-identical to the
 * uninterrupted run.
 */
TEST(Fork, EngineMatchesUninterruptedForEveryProphet)
{
    for (const ProphetKind kind : allProphetKinds()) {
        const WorkloadRecipe recipe = forkRecipe(31);
        const HybridSpec spec = prophetAlone(kind, Budget::B2KB);
        const EngineConfig cfg = smallEngine();
        const auto [ref_events, ref_stats] =
            engineStraight(recipe, spec, cfg);

        for (const std::uint64_t fork_at : {1ull, 317ull, 599ull}) {
            SCOPED_TRACE(prophetKindName(kind) + " fork@" +
                         std::to_string(fork_at));
            const auto [events, stats] =
                engineForked(recipe, spec, cfg, fork_at);
            expectSameEvents(events, ref_events);
            expectSameStats(stats, ref_stats);
        }
    }
}

/** Every critic kind riding on two prophets, same contract. */
TEST(Fork, EngineMatchesUninterruptedForEveryCritic)
{
    for (const CriticKind critic : allCriticKinds()) {
        for (const ProphetKind prophet :
             {ProphetKind::Gshare, ProphetKind::Tage}) {
            const WorkloadRecipe recipe = forkRecipe(32);
            const HybridSpec spec = hybridSpec(
                prophet, Budget::B2KB, critic, Budget::B2KB, 8);
            const EngineConfig cfg = smallEngine();

            SCOPED_TRACE(criticKindName(critic) + " on " +
                         prophetKindName(prophet));
            const auto [ref_events, ref_stats] =
                engineStraight(recipe, spec, cfg);
            const auto [events, stats] =
                engineForked(recipe, spec, cfg, 211);
            expectSameEvents(events, ref_events);
            expectSameStats(stats, ref_stats);
        }
    }
}

/** The timing model honors the same contract, registry-wide. */
TEST(Fork, TimingMatchesUninterruptedForEveryProphet)
{
    for (const ProphetKind kind : allProphetKinds()) {
        const WorkloadRecipe recipe = forkRecipe(33);
        const HybridSpec spec = prophetAlone(kind, Budget::B2KB);
        const TimingConfig cfg = smallTiming();
        ASSERT_TRUE(timingForkable(cfg));
        const auto [ref_events, ref_stats] =
            timingStraight(recipe, spec, cfg);

        for (const std::uint64_t target : {37ull, 500ull}) {
            SCOPED_TRACE(prophetKindName(kind) + " target " +
                         std::to_string(target));
            const auto [events, stats] =
                timingForked(recipe, spec, cfg, target);
            expectSameEvents(events, ref_events);
            expectSameStats(stats, ref_stats);
        }
    }
}

/** Timing hybrid (critic overrides + FTQ flushes around the fork). */
TEST(Fork, TimingMatchesUninterruptedForHybrid)
{
    const WorkloadRecipe recipe = forkRecipe(34);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);
    const TimingConfig cfg = smallTiming();
    const auto [ref_events, ref_stats] =
        timingStraight(recipe, spec, cfg);
    const auto [events, stats] = timingForked(recipe, spec, cfg, 433);
    expectSameEvents(events, ref_events);
    expectSameStats(stats, ref_stats);
}

// ----------------------------------------------------- stress cases

/**
 * Checkpoint-slab growth: a pipeline deeper than the spec core's
 * initial slab capacity forces mid-run reallocation; forking after
 * the growth must still be exact (absolute indices survive the
 * copy).
 */
TEST(Fork, SurvivesCheckpointSlabGrowth)
{
    const WorkloadRecipe recipe = forkRecipe(35);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B2KB,
                   CriticKind::TaggedGshare, Budget::B2KB, 8);
    EngineConfig cfg = smallEngine();
    cfg.pipelineDepth = 96; // > the initial 64-entry slab
    const auto [ref_events, ref_stats] =
        engineStraight(recipe, spec, cfg);
    for (const std::uint64_t fork_at : {5ull, 480ull}) {
        SCOPED_TRACE("fork@" + std::to_string(fork_at));
        const auto [events, stats] =
            engineForked(recipe, spec, cfg, fork_at);
        expectSameEvents(events, ref_events);
        expectSameStats(stats, ref_stats);
    }
}

/**
 * Recovery-heavy forking: a tiny prophet on a phase-churning
 * workload flushes constantly, so snapshots routinely land with
 * in-flight wrong-path state; the clone must reproduce every
 * recovery.
 */
TEST(Fork, SurvivesRecoveryHeavyWorkload)
{
    WorkloadRecipe recipe = forkRecipe(36);
    recipe.numPhaseChains = 6; // churn: phases invalidate history
    const HybridSpec spec =
        hybridSpec(ProphetKind::Gshare, Budget::B2KB,
                   CriticKind::FilteredPerceptron, Budget::B2KB, 12);
    const EngineConfig cfg = smallEngine();
    const auto [ref_events, ref_stats] =
        engineStraight(recipe, spec, cfg);
    for (const std::uint64_t fork_at : {63ull, 599ull}) {
        SCOPED_TRACE("fork@" + std::to_string(fork_at));
        const auto [events, stats] =
            engineForked(recipe, spec, cfg, fork_at);
        expectSameEvents(events, ref_events);
        expectSameStats(stats, ref_stats);
    }
}

// -------------------------------------------------- chain drivers

/** runAccuracyChain == one runAccuracy per config, stats equal. */
TEST(Fork, AccuracyChainMatchesIndividualRuns)
{
    const Workload &w = workloadByName("int.crafty");
    const HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    std::vector<EngineConfig> configs;
    for (const std::uint64_t wb : {500ull, 1500ull, 3000ull}) {
        EngineConfig cfg;
        cfg.warmupBranches = wb;
        cfg.measureBranches = 2000;
        configs.push_back(cfg);
    }

    ChainObs obs;
    const std::vector<EngineStats> chained =
        runAccuracyChain(w, spec, configs, &obs);
    EXPECT_EQ(obs.snapshots, configs.size() - 1);
    EXPECT_GT(obs.warmupBranchesSaved, 0u);

    ASSERT_EQ(chained.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        expectSameStats(chained[i], runAccuracy(w, spec, configs[i]));
    }
}

/** runTimingChain == one runTiming per config, stats equal. */
TEST(Fork, TimingChainMatchesIndividualRuns)
{
    const Workload &w = workloadByName("mm.mpeg");
    const HybridSpec spec =
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    std::vector<TimingConfig> configs;
    for (const std::uint64_t wb : {800ull, 2400ull}) {
        TimingConfig cfg;
        cfg.warmupBranches = wb;
        cfg.measureBranches = 4000;
        ASSERT_TRUE(timingForkable(cfg));
        configs.push_back(cfg);
    }

    ChainObs obs;
    const std::vector<TimingStats> chained =
        runTimingChain(w, spec, configs, &obs);
    EXPECT_EQ(obs.snapshots, configs.size() - 1);

    ASSERT_EQ(chained.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        expectSameStats(chained[i], runTiming(w, spec, configs[i]));
    }
}

// ------------------------------------------------- runner parity

/**
 * The end-to-end contract the executor advertises: the persisted
 * store of a shared-warmup grid is byte-identical with forking on or
 * off, at any job count — accuracy and timing grids alike.
 */
TEST(Fork, SweepStoreBytesIdenticalForkVsReplay)
{
    for (const bool timing : {false, true}) {
        SweepSpec spec;
        spec.name = timing ? "fork-parity-t" : "fork-parity-a";
        spec.timing = timing;
        spec.axes.prophets = {ProphetKind::Gshare};
        spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
        spec.workloads = {"mm.mpeg", "web.jbb"};
        spec.branches = timing ? 4000 : 3000;
        spec.warmups = {400, 900, 1400};

        auto runWith = [&](bool fork, unsigned jobs) {
            ResultStore store;
            SweepRunOptions opt;
            opt.fork = fork;
            opt.jobs = jobs;
            runSweep(spec, store, opt);
            return ResultStore::exportJson(store.all());
        };

        SCOPED_TRACE(timing ? "timing" : "accuracy");
        const std::string replay = runWith(false, 1);
        EXPECT_EQ(runWith(true, 1), replay);
        EXPECT_EQ(runWith(true, 4), replay);
    }
}

// -------------------------------------- compressed-trace workloads

/** Record a CFG walk, keep it in both formats; paths live for the
 *  whole process because workloadByName caches `trace:` entries. */
struct RecordedTracePair
{
    std::string v1;
    std::string v2;

    RecordedTracePair(std::uint64_t seed, std::uint64_t branches)
    {
        v1 = testing::TempDir() + "fork_trace_" + std::to_string(seed) +
             ".pcbptrc";
        v2 = v1 + "2";
        Program p = generateProgram(forkRecipe(seed));
        saveTrace(v1, walkProgram(p, branches));
        convertTraceFile(v1, v2, true, 256);
    }
};

/**
 * The chain driver's fork seam on a PCBPTRC2 workload: a shared
 * warmup ladder over CompressedTraceStream forks (shared mmap
 * reader, copied decode cursor) must equal per-cell linear replays —
 * and the whole ladder must be format-invariant against the same
 * chain on the v1 flat file.
 */
TEST(Fork, AccuracyChainMatchesIndividualRunsOnCompressedTrace)
{
    const RecordedTracePair t(61, 6000);
    const HybridSpec spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    std::vector<EngineConfig> configs;
    for (const std::uint64_t wb : {500ull, 1500ull, 3000ull}) {
        EngineConfig cfg;
        cfg.warmupBranches = wb;
        cfg.measureBranches = 2000;
        configs.push_back(cfg);
    }

    const Workload &w2 = workloadByName("trace:" + t.v2);
    ChainObs obs;
    const std::vector<EngineStats> chained =
        runAccuracyChain(w2, spec, configs, &obs);
    EXPECT_EQ(obs.snapshots, configs.size() - 1);
    EXPECT_GT(obs.warmupBranchesSaved, 0u);

    const Workload &w1 = workloadByName("trace:" + t.v1);
    const std::vector<EngineStats> chained_v1 =
        runAccuracyChain(w1, spec, configs);

    ASSERT_EQ(chained.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        expectSameStats(chained[i], runAccuracy(w2, spec, configs[i]));
        expectSameStats(chained[i], chained_v1[i]);
    }
}

/** Same seam through the timing chain. */
TEST(Fork, TimingChainMatchesIndividualRunsOnCompressedTrace)
{
    const RecordedTracePair t(67, 7000);
    const Workload &w = workloadByName("trace:" + t.v2);
    const HybridSpec spec =
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    std::vector<TimingConfig> configs;
    for (const std::uint64_t wb : {800ull, 2400ull}) {
        TimingConfig cfg;
        cfg.warmupBranches = wb;
        cfg.measureBranches = 4000;
        ASSERT_TRUE(timingForkable(cfg));
        configs.push_back(cfg);
    }

    ChainObs obs;
    const std::vector<TimingStats> chained =
        runTimingChain(w, spec, configs, &obs);
    EXPECT_EQ(obs.snapshots, configs.size() - 1);

    ASSERT_EQ(chained.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        expectSameStats(chained[i], runTiming(w, spec, configs[i]));
    }
}

/**
 * The sweep executor end to end on a compressed trace: persisted
 * ResultStore bytes identical with forking on or off, at any job
 * count — and identical to the same sweep over the v1 file modulo
 * the workload name embedded in the store keys.
 */
TEST(Fork, SweepStoreBytesIdenticalForkVsReplayOnCompressedTrace)
{
    const RecordedTracePair t(71, 5000);
    SweepSpec spec;
    spec.name = "fork-parity-trc2";
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.workloads = {"trace:" + t.v2};
    spec.branches = 2500;
    spec.warmups = {400, 900, 1400};

    auto runWith = [&](bool fork, unsigned jobs) {
        ResultStore store;
        SweepRunOptions opt;
        opt.fork = fork;
        opt.jobs = jobs;
        runSweep(spec, store, opt);
        return ResultStore::exportJson(store.all());
    };

    const std::string replay = runWith(false, 1);
    EXPECT_EQ(runWith(true, 1), replay);
    EXPECT_EQ(runWith(true, 4), replay);
}

/**
 * Index-seeded replay: a stream opened at an arbitrary ordinal via
 * the footer index must emit exactly the linear stream's tail —
 * record for record, across both formats — while touching only the
 * blocks the tail actually spans.
 */
TEST(Fork, SeekSeededStreamMatchesLinearReplayTail)
{
    const RecordedTracePair t(73, 4000);
    const auto full = loadTrace(t.v1);
    ASSERT_EQ(full.size(), 4000u);

    for (const std::uint64_t ordinal : {0ull, 1ull, 255ull, 256ull,
                                        1000ull, 3999ull}) {
        SCOPED_TRACE("ordinal " + std::to_string(ordinal));
        for (const std::string &path : {t.v1, t.v2}) {
            auto s = openTraceStreamAt(path, ordinal);
            ASSERT_EQ(s->length(), full.size());
            for (std::uint64_t i = ordinal; i < full.size(); ++i) {
                const CommittedBranch *r = s->at(i);
                ASSERT_NE(r, nullptr) << path << " record " << i;
                ASSERT_EQ(r->block, full[std::size_t(i)].block);
                ASSERT_EQ(r->pc, full[std::size_t(i)].pc);
                ASSERT_EQ(r->taken, full[std::size_t(i)].taken);
                ASSERT_EQ(r->numUops, full[std::size_t(i)].numUops);
                s->release(i + 1);
            }
            EXPECT_EQ(s->at(full.size()), nullptr);
        }

        // The compressed tail pays only for the blocks it spans
        // (rpb 256 at conversion): one decode per touched block, no
        // scan of the prefix.
        CompressedTraceStream c(t.v2, ordinal);
        for (std::uint64_t i = ordinal; i < full.size(); ++i) {
            ASSERT_NE(c.at(i), nullptr);
            c.release(i + 1);
        }
        EXPECT_EQ(c.blocksDecoded(),
                  (full.size() + 255) / 256 - ordinal / 256);
        EXPECT_EQ(c.seeks(), 1u);
    }
}

} // namespace
} // namespace pcbp
