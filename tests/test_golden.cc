/**
 * @file
 * Golden regression tests: every component of this library is
 * bit-deterministic, so a handful of exact end-to-end values pin the
 * whole stack (generator, behaviors, predictors, engine, timing
 * model). If any of these change, something in the pipeline changed
 * behavior — intentionally or not — and the repro goldens
 * (tests/golden/repro_quick/) plus any published REPRO.md must be
 * regenerated.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/driver.hh"

namespace pcbp
{
namespace
{

/**
 * Compare @p rendered against the committed golden file @p stem in
 * tests/golden/. Regenerate with PCBP_UPDATE_GOLDEN=1 (then review
 * the diff and commit it).
 */
void
expectMatchesGolden(const std::string &rendered, const char *stem)
{
    const std::string path =
        std::string(PCBP_TEST_GOLDEN_DIR) + "/" + stem;
    if (std::getenv("PCBP_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with PCBP_UPDATE_GOLDEN=1 to create)";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(rendered, os.str()) << "golden drift in " << stem;
}

TEST(Golden, AccuracyEngineHybridOnMmMpeg)
{
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    const EngineStats st = runAccuracy(
        w,
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg);
    EXPECT_EQ(st.finalMispredicts, 1561u);
    EXPECT_EQ(st.committedUops, 370209u);
    EXPECT_EQ(st.criticOverrides, 644u);
    EXPECT_EQ(st.critiques.get(CritiqueClass::CorrectAgree), 6017u);
}

TEST(Golden, AccuracyEngineProphetAloneOnFpSwim)
{
    const Workload &w = workloadByName("fp.swim");
    EngineConfig cfg;
    cfg.measureBranches = 10000;
    cfg.warmupBranches = 1000;
    const EngineStats st = runAccuracy(
        w, prophetAlone(ProphetKind::GSkew, Budget::B16KB), cfg);
    EXPECT_EQ(st.finalMispredicts, 640u);
    EXPECT_EQ(st.committedUops, 273827u);
    EXPECT_EQ(st.btbMisses, 61u);
}

TEST(Golden, TageProphetAloneOnIntCrafty)
{
    const Workload &w = workloadByName("int.crafty");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    const EngineStats st = runAccuracy(
        w, prophetAlone(ProphetKind::Tage, Budget::B8KB), cfg);
    EXPECT_EQ(st.finalMispredicts, 2130u);
    EXPECT_EQ(st.committedUops, 277394u);
    EXPECT_EQ(st.prophetMispredicts, 1713u);
    EXPECT_EQ(st.btbMisses, 628u);
}

TEST(Golden, TageAsProphetInHybridOnServTpcc)
{
    const Workload &w = workloadByName("serv.tpcc");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    const EngineStats st = runAccuracy(
        w,
        hybridSpec(ProphetKind::Tage, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg);
    EXPECT_EQ(st.finalMispredicts, 2816u);
    EXPECT_EQ(st.committedUops, 274397u);
    EXPECT_EQ(st.criticOverrides, 1003u);
    EXPECT_EQ(st.critiques.get(CritiqueClass::CorrectAgree), 2107u);
}

TEST(Golden, H2PReportOnIntCraftyUnderTage)
{
    const Workload &w = workloadByName("int.crafty");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    H2PConfig hcfg;
    hcfg.topN = 8;
    const H2PReport r = runH2P(
        w, prophetAlone(ProphetKind::Tage, Budget::B8KB), cfg, hcfg);
    expectMatchesGolden(r.render(), "h2p_int_crafty_tage.txt");
}

TEST(Golden, H2PReportOnServTpccUnderHybrid)
{
    const Workload &w = workloadByName("serv.tpcc");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    H2PConfig hcfg;
    hcfg.topN = 8;
    const H2PReport r = runH2P(
        w,
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg, hcfg);
    expectMatchesGolden(r.render(), "h2p_serv_tpcc_hybrid.txt");
}

TEST(Golden, TimingModelHybridOnWebJbb)
{
    const Workload &w = workloadByName("web.jbb");
    TimingConfig cfg;
    cfg.measureBranches = 8000;
    cfg.warmupBranches = 800;
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 4)
                 .build();
    const TimingStats st = TimingSim(p, *h, cfg).run();
    EXPECT_EQ(st.cycles, 103110u);
    EXPECT_EQ(st.committedUops, 96568u);
    EXPECT_EQ(st.finalMispredicts, 2102u);
}

} // namespace
} // namespace pcbp
