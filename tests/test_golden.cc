/**
 * @file
 * Golden regression tests: every component of this library is
 * bit-deterministic, so a handful of exact end-to-end values pin the
 * whole stack (generator, behaviors, predictors, engine, timing
 * model). If any of these change, something in the pipeline changed
 * behavior — intentionally or not — and EXPERIMENTS.md numbers must
 * be regenerated.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"

namespace pcbp
{
namespace
{

TEST(Golden, AccuracyEngineHybridOnMmMpeg)
{
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg;
    cfg.measureBranches = 20000;
    cfg.warmupBranches = 2000;
    const EngineStats st = runAccuracy(
        w,
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg);
    EXPECT_EQ(st.finalMispredicts, 1561u);
    EXPECT_EQ(st.committedUops, 370209u);
    EXPECT_EQ(st.criticOverrides, 644u);
    EXPECT_EQ(st.critiques.get(CritiqueClass::CorrectAgree), 6017u);
}

TEST(Golden, AccuracyEngineProphetAloneOnFpSwim)
{
    const Workload &w = workloadByName("fp.swim");
    EngineConfig cfg;
    cfg.measureBranches = 10000;
    cfg.warmupBranches = 1000;
    const EngineStats st = runAccuracy(
        w, prophetAlone(ProphetKind::GSkew, Budget::B16KB), cfg);
    EXPECT_EQ(st.finalMispredicts, 640u);
    EXPECT_EQ(st.committedUops, 273827u);
    EXPECT_EQ(st.btbMisses, 61u);
}

TEST(Golden, TimingModelHybridOnWebJbb)
{
    const Workload &w = workloadByName("web.jbb");
    TimingConfig cfg;
    cfg.measureBranches = 8000;
    cfg.warmupBranches = 800;
    Program p = buildProgram(w);
    auto h = hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                        CriticKind::TaggedGshare, Budget::B8KB, 4)
                 .build();
    const TimingStats st = TimingSim(p, *h, cfg).run();
    EXPECT_EQ(st.cycles, 103110u);
    EXPECT_EQ(st.committedUops, 96568u);
    EXPECT_EQ(st.finalMispredicts, 2102u);
}

} // namespace
} // namespace pcbp
