/**
 * @file
 * Integration tests: distilled programs that exercise the
 * prophet/critic mechanism end to end through the wrong-path engine,
 * checking that each information channel the paper relies on
 * actually works in this implementation.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/driver.hh"
#include "sim/engine.hh"
#include "workload/cfg.hh"
#include "workload/generator.hh"

namespace pcbp
{
namespace
{

/** Engine config for small deterministic tests. */
EngineConfig
testConfig(std::uint64_t measure = 60000, std::uint64_t warmup = 20000)
{
    EngineConfig cfg;
    cfg.measureBranches = measure;
    cfg.warmupBranches = warmup;
    return cfg;
}

/**
 * A distilled echo-chain program:
 *
 *   f0..f1: biased filler (mild entropy)
 *   e0,e1:  two independent 50/50 entropy sources
 *   s:      XOR (parity) of the two entropy bits from two iterations
 *           ago — genuinely unlearnable for a perceptron (XOR is not
 *           linearly separable) even though the bits are inside its
 *           history window
 *   armT/armF: opposite strong biases (wrong-path signature)
 *   r1,r2:  echo relays exposing s's source bits at lags the prophet
 *           *can* learn (each is a single-bit copy)
 *
 * laid out exactly like the generator's chain motif. The program has
 * 9 blocks but only 8 commits per iteration (one arm executes), so
 * with L = 18 and W = 2, s reads the entropy bits e1, e0 from two
 * iterations back.
 */
Program
chainProgram(unsigned L, unsigned W, double chain_noise = 0.0)
{
    Program p("chain-test");
    auto filler = [&](BlockId id, double bias, std::uint64_t seed) {
        BasicBlock b;
        b.branchPc = 0x1000 + id * 16;
        b.numUops = 10;
        b.takenTarget = static_cast<BlockId>(id + 1);
        b.fallthroughTarget = static_cast<BlockId>(id + 1);
        b.behavior = std::make_unique<BiasedBehavior>(bias, seed);
        p.addBlock(std::move(b));
        return id + 1;
    };

    BlockId id = 0;
    id = filler(id, 0.85, 101);
    id = filler(id, 0.20, 102);
    id = filler(id, 0.50, 103); // entropy source e0
    id = filler(id, 0.50, 104); // entropy source e1

    // s: hard branch.
    BasicBlock s;
    s.branchPc = 0x1000 + id * 16;
    s.numUops = 10;
    s.takenTarget = static_cast<BlockId>(id + 1);
    s.fallthroughTarget = static_cast<BlockId>(id + 2);
    s.behavior =
        std::make_unique<GlobalParityBehavior>(L, W, false, chain_noise,
                                               105);
    p.addBlock(std::move(s));
    ++id;

    // Arms.
    for (int arm = 0; arm < 2; ++arm) {
        BasicBlock a;
        a.branchPc = 0x1000 + id * 16;
        a.numUops = 10;
        a.takenTarget = static_cast<BlockId>(id + (arm == 0 ? 2 : 1));
        a.fallthroughTarget = a.takenTarget;
        a.behavior = std::make_unique<BiasedBehavior>(
            arm == 0 ? 0.95 : 0.05, 106 + arm);
        p.addBlock(std::move(a));
        ++id;
    }

    // Relays r1, r2 with the lag alignment of the generator: r_j
    // commits j+1 branches after s; relay lag L + reveal + (j+1).
    for (unsigned j = 1; j <= 2; ++j) {
        BasicBlock r;
        r.branchPc = 0x1000 + id * 16;
        r.numUops = 10;
        r.takenTarget = static_cast<BlockId>(id + 1);
        r.fallthroughTarget = static_cast<BlockId>(id + 1);
        const unsigned reveal = std::min(W - 1, j - 1);
        r.behavior = std::make_unique<GlobalEchoBehavior>(
            L + reveal + (j + 1), false, chain_noise, 108 + j);
        p.addBlock(std::move(r));
        ++id;
    }

    // Wrap around.
    p.blockMut(static_cast<BlockId>(p.numBlocks() - 1)).takenTarget = 0;
    p.blockMut(static_cast<BlockId>(p.numBlocks() - 1)).fallthroughTarget =
        0;
    p.validate();
    return p;
}

/** Final mispredict rate of a spec on a program. */
double
mispRateOf(Program &prog, const HybridSpec &spec, const EngineConfig &cfg)
{
    auto hybrid = spec.build();
    Engine engine(prog, *hybrid, cfg);
    return engine.run().mispRate();
}

TEST(ChainChannel, RelaysAreLearnableByPerceptronProphet)
{
    // The relays' echo lags are within the 8KB perceptron's 28-bit
    // history, so a prophet alone should predict them (and the easy
    // fillers) well; only s and the 50/50 fillers stay hard.
    Program prog = chainProgram(16, 2);
    auto cfg = testConfig();
    cfg.collectPerBranch = true;

    auto hybrid = prophetAlone(ProphetKind::Perceptron,
                               Budget::B8KB).build();
    Engine engine(prog, *hybrid, cfg);
    EngineStats st = engine.run();

    // Locate the relay pcs (blocks 7 and 8) in per-branch stats.
    double relay_wrong = 0, relay_execs = 0;
    double s_wrong = 0, s_execs = 0;
    for (const auto &pb : st.perBranch) {
        if (pb.pc == 0x1000 + 7 * 16 || pb.pc == 0x1000 + 8 * 16) {
            relay_wrong += double(pb.prophetWrong);
            relay_execs += double(pb.execs);
        }
        if (pb.pc == 0x1000 + 4 * 16) {
            s_wrong += double(pb.prophetWrong);
            s_execs += double(pb.execs);
        }
    }
    ASSERT_GT(relay_execs, 0);
    ASSERT_GT(s_execs, 0);
    EXPECT_LT(relay_wrong / relay_execs, 0.10)
        << "prophet failed to learn the echo relays";
    EXPECT_GT(s_wrong / s_execs, 0.35)
        << "the parity branch should be hard for the prophet";
}

/** Per-branch stats of s (block 4, pc 0x1040) under a spec. */
PerBranchStat
hardBranchStats(const HybridSpec &spec)
{
    Program prog = chainProgram(16, 2);
    EngineConfig cfg = testConfig();
    cfg.collectPerBranch = true;
    auto hybrid = spec.build();
    Engine engine(prog, *hybrid, cfg);
    EngineStats st = engine.run();
    for (const auto &pb : st.perBranch)
        if (pb.pc == 0x1000 + 4 * 16)
            return pb;
    return {};
}

TEST(ChainChannel, FutureBitsUnlockTheHardBranch)
{
    // With enough future bits the critic sees the relays'
    // predictions, which determine s's outcome; the hybrid should
    // fix most of s's mispredicts. With 1 future bit it cannot
    // (the relays' predictions are not in the BOR yet, and the
    // source bits are outside the critic's history window).
    const PerBranchStat fb1 = hardBranchStats(
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 1));
    const PerBranchStat fb8 = hardBranchStats(
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8));

    ASSERT_GT(fb1.execs, 0u);
    ASSERT_GT(fb8.execs, 0u);
    // The prophet stays near-chance on s in both runs.
    EXPECT_GT(double(fb8.prophetWrong) / double(fb8.execs), 0.35);
    // 8 future bits fix most of s's mispredicts; 1 future bit can't.
    EXPECT_LT(double(fb8.finalWrong), 0.6 * double(fb8.prophetWrong))
        << "8 future bits should fix the hard branch";
    EXPECT_GT(double(fb1.finalWrong), 0.8 * double(fb1.prophetWrong))
        << "1 future bit should not be able to fix the hard branch";
}

/**
 * Distilled phase chain: a long outer loop (so the consumer is
 * *cold* — its own previous outcome is far outside any history
 * window), a phase consumer, diamond arms, and an inner loop whose
 * body holds a phase revealer. The revealer's self-echo keeps its
 * predictions fresh; the consumer's critique reads them as future
 * bits.
 */
Program
phaseProgram()
{
    Program p("phase-test");
    PhaseClockSpec clock;
    clock.seed = 77;
    clock.lo = 200;
    clock.hi = 600;

    Rng rng(4242);
    auto add = [&](BranchBehaviorPtr beh) {
        const BlockId id = static_cast<BlockId>(p.numBlocks());
        BasicBlock b;
        b.branchPc = 0x2000 + id * 16;
        b.numUops = 10;
        b.takenTarget = static_cast<BlockId>(id + 1);
        b.fallthroughTarget = static_cast<BlockId>(id + 1);
        b.behavior = std::move(beh);
        p.addBlock(std::move(b));
        return id;
    };

    // Quiet filler blocks make the outer pass long enough that the
    // consumer's own history is invisible to a 13-bit prophet, while
    // contributing almost no mispredicts of their own.
    for (int i = 0; i < 12; ++i) {
        add(std::make_unique<BiasedBehavior>(
            rng.nextBool(0.5) ? 0.99 : 0.01, rng.next()));
    }

    // Consumer with diamond arms.
    const BlockId s =
        add(std::make_unique<PhaseRevealBehavior>(clock, 0.99, 901));
    const BlockId arm_t =
        add(std::make_unique<BiasedBehavior>(0.95, 902));
    const BlockId arm_f =
        add(std::make_unique<BiasedBehavior>(0.05, 903));
    // Inner loop: revealer + latch looping 5 times.
    const BlockId rev =
        add(std::make_unique<PhaseRevealBehavior>(clock, 0.98, 904));
    const BlockId latch = add(std::make_unique<LoopBehavior>(5));

    p.blockMut(s).takenTarget = arm_t;
    p.blockMut(s).fallthroughTarget = arm_f;
    p.blockMut(arm_t).takenTarget = rev;
    p.blockMut(arm_t).fallthroughTarget = rev;
    p.blockMut(arm_f).takenTarget = rev;
    p.blockMut(arm_f).fallthroughTarget = rev;
    p.blockMut(latch).takenTarget = rev; // back edge
    p.blockMut(latch).fallthroughTarget = 0;
    p.validate();
    return p;
}

TEST(PhaseChannel, DeepBorHistoryUnlocksColdConsumer)
{
    // The phase information reaches the critic through its BOR
    // *history*: the previous pass's revealer outcomes sit at lags
    // 13-21 of the consumer — deeper than the 13-bit gskew prophet
    // can see, but inside the critic's 18-bit BOR window when few
    // future bits are in use. (Future bits carry only prophet-state
    // information, so at high counts the channel closes — the
    // history-loss tradeoff of §7.1 in distilled form.)
    const auto cfg = testConfig(80000, 20000);
    Program p1 = phaseProgram();
    const double alone = mispRateOf(
        p1, prophetAlone(ProphetKind::GSkew, Budget::B8KB), cfg);
    Program p2 = phaseProgram();
    const double fb2 = mispRateOf(
        p2,
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 2),
        cfg);
    Program p3 = phaseProgram();
    const double fb8 = mispRateOf(
        p3,
        hybridSpec(ProphetKind::GSkew, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg);

    EXPECT_LT(fb2, alone * 0.95)
        << "phase chain not exploited (alone=" << alone
        << ", fb2=" << fb2 << ")";
    EXPECT_LT(fb2, fb8)
        << "this channel must work through history bits, which 8 "
           "future bits displace";
}

TEST(Engine, DeterministicAcrossRuns)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                                 CriticKind::TaggedGshare, Budget::B8KB,
                                 8);
    EngineConfig cfg = testConfig(30000, 5000);
    Program p1 = buildProgram(w);
    Program p2 = buildProgram(w);
    auto h1 = spec.build();
    auto h2 = spec.build();
    EngineStats a = Engine(p1, *h1, cfg).run();
    EngineStats b = Engine(p2, *h2, cfg).run();
    EXPECT_EQ(a.finalMispredicts, b.finalMispredicts);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.criticOverrides, b.criticOverrides);
    EXPECT_EQ(a.critiques.total(), b.critiques.total());
}

TEST(Engine, CommittedPathIndependentOfPredictor)
{
    // The same workload must commit the same uops and branches under
    // any predictor (architectural path independence).
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg = testConfig(30000, 5000);

    Program p1 = buildProgram(w);
    auto h1 = prophetAlone(ProphetKind::AlwaysTaken,
                           Budget::B2KB).build();
    EngineStats a = Engine(p1, *h1, cfg).run();

    Program p2 = buildProgram(w);
    auto h2 = hybridSpec(ProphetKind::Perceptron, Budget::B32KB,
                         CriticKind::FilteredPerceptron, Budget::B32KB,
                         12)
                  .build();
    EngineStats b = Engine(p2, *h2, cfg).run();

    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.committedUops, b.committedUops);
}

TEST(Engine, CriticNeverHurtsMuchOnAverageSet)
{
    // Sanity guard while tuning: across the mm.mpeg workload the
    // hybrid at 8 future bits should beat the prophet alone at equal
    // *prophet* size (the paper's minimum claim, Fig. 6).
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg = testConfig();
    Program p1 = buildProgram(w);
    auto alone = prophetAlone(ProphetKind::Perceptron, Budget::B8KB);
    auto h1 = alone.build();
    const double base = Engine(p1, *h1, cfg).run().mispRate();

    Program p2 = buildProgram(w);
    auto spec = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                           CriticKind::TaggedGshare, Budget::B8KB, 8);
    auto h2 = spec.build();
    const double hyb = Engine(p2, *h2, cfg).run().mispRate();

    EXPECT_LT(hyb, base) << "adding a critic must reduce mispredicts";
}

TEST(Engine, OracleFutureBitsInflateAccuracy)
{
    // §6: trace-driven (oracle) future bits give the critic
    // information it cannot have; the measured mispredict rate must
    // be at least as good as the real wrong-path rate.
    const Workload &w = workloadByName("int.crafty");
    const auto spec = hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                                 CriticKind::TaggedGshare, Budget::B8KB,
                                 8);
    EngineConfig real_cfg = testConfig();
    EngineConfig oracle_cfg = testConfig();
    oracle_cfg.oracleFutureBits = true;

    Program p1 = buildProgram(w);
    auto h1 = spec.build();
    const double real = Engine(p1, *h1, real_cfg).run().mispRate();

    Program p2 = buildProgram(w);
    auto h2 = spec.build();
    const double oracle = Engine(p2, *h2, oracle_cfg).run().mispRate();

    EXPECT_LT(oracle, real * 1.05)
        << "oracle future bits should never be clearly worse";
}

TEST(Engine, BtbMissesAllocatedAndRare)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);
    EngineConfig cfg = testConfig();
    Program p = buildProgram(w);
    auto h = spec.build();
    EngineStats st = Engine(p, *h, cfg).run();
    // ~300 static branches and a 4096-entry BTB: after warmup the
    // steady-state BTB miss rate must be tiny.
    EXPECT_LT(double(st.btbMisses) / double(st.committedBranches),
              0.001);
}

} // namespace
} // namespace pcbp
