/**
 * @file
 * Long-run smoke (ctest label: slow): ten million committed branches
 * through the streaming core, asserting the committed-stream window
 * — the only structure whose size could scale with run length —
 * stays bounded by the pipeline, so memory is independent of branch
 * count. The precomputed-vector path this replaced would have
 * allocated ~170MB here (and ~17GB at a billion branches); the
 * stream holds a few dozen records.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "sim/committed_stream.hh"
#include "sim/driver.hh"
#include "workload/trace.hh"
#include "workload/trace2.hh"

namespace pcbp
{
namespace
{

TEST(LongRun, TenMillionBranchesConstantMemory)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);

    EngineConfig cfg;
    cfg.warmupBranches = 100000;
    cfg.measureBranches = 9900000;

    Program p = buildProgram(w);
    auto h = spec.build();
    Engine engine(p, *h, cfg);
    ProgramWalkStream stream(p, 10000000);
    const EngineStats st = engine.run(stream);

    EXPECT_EQ(st.committedBranches, 9900000u);
    EXPECT_GT(st.committedUops, st.committedBranches);
    // O(pipeline) resident stream: the window never grew past
    // pipeline depth + lookahead, over a 10M-branch run.
    EXPECT_LE(stream.windowPeak(),
              std::size_t(cfg.pipelineDepth) + 8 + 1);
}

TEST(LongRun, HybridMillionBranchesBoundedWindow)
{
    const Workload &w = workloadByName("serv.tpcc");
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    EngineConfig cfg;
    cfg.warmupBranches = 50000;
    cfg.measureBranches = 950000;

    Program p = buildProgram(w);
    auto h = spec.build();
    Engine engine(p, *h, cfg);
    ProgramWalkStream stream(p, 1000000);
    const EngineStats st = engine.run(stream);

    EXPECT_EQ(st.committedBranches, 950000u);
    EXPECT_GT(st.criticOverrides, 0u);
    EXPECT_LE(stream.windowPeak(),
              std::size_t(cfg.pipelineDepth) + 8 + 1);
}

/**
 * The PCBPTRC2 acceptance criterion at full scale: a ten-million-
 * branch recorded trace compresses at least 4x against the v1 flat
 * file, and the footer index makes any seek O(1) — one block decode
 * to land anywhere in 10M records, checked at both ends and the
 * middle of the file. Recording and conversion both stream, so this
 * test's memory stays O(block), not O(trace).
 */
TEST(LongRun, TenMillionBranchTraceCompressesAndSeeksO1)
{
    const std::string v1 =
        testing::TempDir() + "longrun_10m.pcbptrc";
    const std::string v2 = v1 + "2";
    constexpr std::uint64_t kBranches = 10000000;

    const Workload &w = workloadByName("mm.mpeg");
    Program p = buildProgram(w);
    {
        TraceWriter rec(v1);
        ProgramWalkStream stream(p, kBranches);
        for (std::uint64_t i = 0; i < kBranches; ++i) {
            const CommittedBranch *r = stream.at(i);
            ASSERT_NE(r, nullptr);
            rec.append(*r);
            stream.release(i + 1);
        }
        rec.finish();
        ASSERT_EQ(rec.written(), kBranches);
    }

    ASSERT_EQ(convertTraceFile(v1, v2, true), kBranches);
    const auto reader = Trace2Reader::open(v2);
    const Trace2Info info = reader->info();
    EXPECT_EQ(info.recordCount, kBranches);
    const std::uint64_t v1_bytes =
        tracefmt::headerBytes + kBranches * tracefmt::recordBytes;
    EXPECT_GE(double(v1_bytes) / double(info.fileBytes), 4.0)
        << "v2 is only " << info.fileBytes << " bytes vs " << v1_bytes;

    // O(1) landing anywhere in the 10M records: exactly one block
    // decode each, wherever the ordinal lives.
    for (const std::uint64_t ordinal :
         {std::uint64_t(0), kBranches / 2, kBranches - 1}) {
        CompressedTraceStream s(v2, ordinal);
        ASSERT_NE(s.at(ordinal), nullptr) << "ordinal " << ordinal;
        EXPECT_EQ(s.blocksDecoded(), 1u) << "ordinal " << ordinal;
    }

    // Spot-check the seeded tail against a fresh walk of the same
    // program: the index lands on the true records, not just *some*
    // block.
    {
        Program q = buildProgram(w);
        ProgramWalkStream ref(q, kBranches);
        const std::uint64_t ordinal = kBranches - 5000;
        for (std::uint64_t i = 0; i < ordinal; ++i) {
            ASSERT_NE(ref.at(i), nullptr);
            ref.release(i + 1);
        }
        CompressedTraceStream s(v2, ordinal);
        for (std::uint64_t i = ordinal; i < kBranches; ++i) {
            const CommittedBranch *a = ref.at(i);
            const CommittedBranch *b = s.at(i);
            ASSERT_NE(a, nullptr);
            ASSERT_NE(b, nullptr);
            ASSERT_EQ(a->block, b->block) << "record " << i;
            ASSERT_EQ(a->pc, b->pc) << "record " << i;
            ASSERT_EQ(a->taken, b->taken) << "record " << i;
            ASSERT_EQ(a->numUops, b->numUops) << "record " << i;
            ref.release(i + 1);
            s.release(i + 1);
        }
    }
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

} // namespace
} // namespace pcbp
