/**
 * @file
 * Long-run smoke (ctest label: slow): ten million committed branches
 * through the streaming core, asserting the committed-stream window
 * — the only structure whose size could scale with run length —
 * stays bounded by the pipeline, so memory is independent of branch
 * count. The precomputed-vector path this replaced would have
 * allocated ~170MB here (and ~17GB at a billion branches); the
 * stream holds a few dozen records.
 */

#include <gtest/gtest.h>

#include "sim/committed_stream.hh"
#include "sim/driver.hh"

namespace pcbp
{
namespace
{

TEST(LongRun, TenMillionBranchesConstantMemory)
{
    const Workload &w = workloadByName("mm.mpeg");
    const auto spec = prophetAlone(ProphetKind::Gshare, Budget::B8KB);

    EngineConfig cfg;
    cfg.warmupBranches = 100000;
    cfg.measureBranches = 9900000;

    Program p = buildProgram(w);
    auto h = spec.build();
    Engine engine(p, *h, cfg);
    ProgramWalkStream stream(p, 10000000);
    const EngineStats st = engine.run(stream);

    EXPECT_EQ(st.committedBranches, 9900000u);
    EXPECT_GT(st.committedUops, st.committedBranches);
    // O(pipeline) resident stream: the window never grew past
    // pipeline depth + lookahead, over a 10M-branch run.
    EXPECT_LE(stream.windowPeak(),
              std::size_t(cfg.pipelineDepth) + 8 + 1);
}

TEST(LongRun, HybridMillionBranchesBoundedWindow)
{
    const Workload &w = workloadByName("serv.tpcc");
    const auto spec =
        hybridSpec(ProphetKind::Perceptron, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8);

    EngineConfig cfg;
    cfg.warmupBranches = 50000;
    cfg.measureBranches = 950000;

    Program p = buildProgram(w);
    auto h = spec.build();
    Engine engine(p, *h, cfg);
    ProgramWalkStream stream(p, 1000000);
    const EngineStats st = engine.run(stream);

    EXPECT_EQ(st.committedBranches, 950000u);
    EXPECT_GT(st.criticOverrides, 0u);
    EXPECT_LE(stream.windowPeak(),
              std::size_t(cfg.pipelineDepth) + 8 + 1);
}

} // namespace
} // namespace pcbp
