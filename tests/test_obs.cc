/**
 * @file
 * Tests for the observability subsystem (src/obs/): the hierarchical
 * StatRegistry's merge/dump semantics, the `--jobs`-independence of
 * sim-section dumps, the Perfetto span tracer's event ordering and
 * B/E nesting, the per-cell stats block's store compatibility, the
 * mutex-guarded log sink under thread-pool concurrency, and the
 * progress heartbeat.
 *
 * The ObsValidate tests double as the CI artifact validators: point
 * PCBP_OBS_VALIDATE_STATS / PCBP_OBS_VALIDATE_TRACE at files written
 * by `--stats-out` / `--trace-out` and they schema-check them (they
 * skip when the variables are unset).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/probes.hh"
#include "obs/progress.hh"
#include "obs/span_trace.hh"
#include "obs/stat_registry.hh"
#include "sim/driver.hh"
#include "sim/metrics.hh"
#include "sweep/runner.hh"

namespace pcbp
{
namespace
{

// ----------------------------------------------------- StatRegistry

TEST(StatRegistry, ScalarKindsAndMerge)
{
    StatRegistry a;
    a.add("x.count", 3);
    a.add("x.count", 2);
    a.setMax("x.peak", 7);
    a.setMax("x.peak", 4); // lower: must not regress the max
    EXPECT_EQ(a.simValue("x.count"), 5u);
    EXPECT_EQ(a.simValue("x.peak"), 7u);
    EXPECT_EQ(a.simValue("missing"), 0u);

    StatRegistry b;
    b.add("x.count", 10);
    b.setMax("x.peak", 6);
    b.add("y.only_b", 1);

    a.merge(b);
    EXPECT_EQ(a.simValue("x.count"), 15u); // Sum adds
    EXPECT_EQ(a.simValue("x.peak"), 7u);   // Max keeps larger
    EXPECT_EQ(a.simValue("y.only_b"), 1u); // absent entries appear
}

TEST(StatRegistry, MergeIsCommutative)
{
    // The property runSweep's run-wide dump relies on: cells merge
    // in completion order, which --jobs changes.
    auto make = [](std::uint64_t seed) {
        StatRegistry r;
        r.add("a", seed);
        r.add("b", seed * 3);
        r.setMax("peak", seed * 7 % 13);
        Histogram h(4, 8);
        h.sample(seed % 30);
        h.sample((seed * 5) % 30);
        r.hist("dist", h);
        return r;
    };
    StatRegistry ab = make(2);
    ab.merge(make(9));
    StatRegistry ba = make(9);
    ba.merge(make(2));
    EXPECT_EQ(ab.simJson(), ba.simJson());
}

TEST(StatRegistry, JsonShapeAndOrdering)
{
    StatRegistry r;
    r.add("zeta", 1);
    r.add("alpha", 2);
    r.setHost("wall_ns", 123);
    Histogram h(2, 4);
    h.sample(3);
    r.hist("flush", h);

    const std::string js = r.toJson();
    EXPECT_EQ(js.rfind("{\"schema\":\"pcbp-stats-1\",\"sim\":{", 0),
              0u);
    // Lexicographic key order inside sections.
    EXPECT_LT(js.find("\"alpha\":2"), js.find("\"zeta\":1"));
    EXPECT_NE(js.find("\"host\":{\"wall_ns\":123}"),
              std::string::npos);
    EXPECT_NE(js.find("\"hist\":{"), std::string::npos);

    // simJson drops the host section entirely.
    EXPECT_EQ(r.simJson().find("wall_ns"), std::string::npos);
}

TEST(StatRegistry, WriteFilesEmitsJsonAndMarkdown)
{
    StatRegistry r;
    r.add("core.commits", 42);
    const std::string path =
        testing::TempDir() + "pcbp_obs_stats.json";
    r.writeFiles(path);

    std::ifstream js(path), md(path + ".md");
    ASSERT_TRUE(js);
    ASSERT_TRUE(md);
    std::ostringstream jb, mb;
    jb << js.rdbuf();
    mb << md.rdbuf();
    EXPECT_NE(jb.str().find("\"core.commits\":42"),
              std::string::npos);
    EXPECT_NE(mb.str().find("core.commits"), std::string::npos);
    std::remove(path.c_str());
    std::remove((path + ".md").c_str());
}

// --------------------------------------------- engine + core export

TEST(ObsExport, EngineStatsMatchRegistryCounters)
{
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg;
    cfg.warmupBranches = 1000;
    cfg.measureBranches = 10000;
    StatRegistry reg;
    cfg.statsOut = &reg;
    const EngineStats st = runAccuracy(
        w,
        hybridSpec(ProphetKind::Gshare, Budget::B8KB,
                   CriticKind::TaggedGshare, Budget::B8KB, 8),
        cfg);

    EXPECT_EQ(reg.simValue("engine.committed_branches"),
              st.committedBranches);
    EXPECT_EQ(reg.simValue("engine.final_mispredicts"),
              st.finalMispredicts);
    EXPECT_EQ(reg.simValue("engine.critic_overrides"),
              st.criticOverrides);
    // Core protocol counters: commits include warmup; every commit
    // was fetched first.
    EXPECT_EQ(reg.simValue("core.commits"),
              cfg.warmupBranches + cfg.measureBranches);
    EXPECT_GE(reg.simValue("core.fetches"),
              reg.simValue("core.commits"));
    EXPECT_GT(reg.simValue("core.critiques"), 0u);
    EXPECT_GT(reg.simValue("core.queue_peak"), 0u);
    // Stream/identity and predictor config stats.
    EXPECT_EQ(reg.simValue("stream.backend.program_walk"), 1u);
    EXPECT_GT(reg.simValue("predictor.prophet.size_bits"), 0u);
    EXPECT_GT(reg.simValue("predictor.critic.size_bits"), 0u);
}

TEST(ObsExport, DisabledRegistryChangesNothing)
{
    const Workload &w = workloadByName("int.crafty");
    EngineConfig cfg;
    cfg.warmupBranches = 500;
    cfg.measureBranches = 5000;
    const HybridSpec spec =
        prophetAlone(ProphetKind::Gshare, Budget::B8KB);

    const EngineStats plain = runAccuracy(w, spec, cfg);
    StatRegistry reg;
    cfg.statsOut = &reg;
    const EngineStats observed = runAccuracy(w, spec, cfg);

    // Observability must never perturb simulation results.
    EXPECT_EQ(plain.finalMispredicts, observed.finalMispredicts);
    EXPECT_EQ(plain.committedUops, observed.committedUops);
    EXPECT_FALSE(reg.empty());
}

TEST(ObsExport, H2PProfilerExportsPerPcSection)
{
    const Workload &w = workloadByName("mm.mpeg");
    EngineConfig cfg;
    cfg.warmupBranches = 500;
    cfg.measureBranches = 8000;
    H2PProfiler profiler(cfg.warmupBranches);
    cfg.commitSink = &profiler;
    StatRegistry reg;
    cfg.statsOut = &reg;
    runAccuracy(w, prophetAlone(ProphetKind::Gshare, Budget::B8KB),
                cfg);

    profiler.exportStats(reg, "h2p", 4);
    EXPECT_EQ(reg.simValue("h2p.commits"), cfg.measureBranches);
    EXPECT_GT(reg.simValue("h2p.mispredicts"), 0u);
    EXPECT_GT(reg.simValue("h2p.static_branches"), 0u);
    // Bounded per-PC export: count distinct pc groups via the execs
    // stat — at most max_pcs of them.
    const std::string js = reg.simJson();
    std::size_t pcs = 0, pos = 0;
    const std::string needle = ".execs\":";
    while ((pos = js.find(needle, pos)) != std::string::npos) {
        ++pcs;
        pos += needle.size();
    }
    EXPECT_GE(pcs, 1u);
    EXPECT_LE(pcs, 4u);
}

// ------------------------------------------------ sweep determinism

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "obs-grid";
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {std::nullopt, CriticKind::TaggedGshare};
    spec.workloads = {"mm.mpeg", "int.crafty"};
    spec.branches = 4000;
    return spec;
}

TEST(ObsSweep, SimDumpIsJobsIndependent)
{
    auto runWith = [&](unsigned jobs) {
        ResultStore store;
        StatRegistry reg;
        SweepRunOptions opt;
        opt.jobs = jobs;
        opt.stats = &reg;
        runSweep(tinySpec(), store, opt);
        return reg.simJson();
    };
    const std::string one = runWith(1);
    const std::string four = runWith(4);
    EXPECT_EQ(one, four);
    EXPECT_NE(one.find("engine.committed_branches"),
              std::string::npos);
}

TEST(ObsSweep, CollectionKeepsStoreBytesIdentical)
{
    // Stats collection on (but the per-cell block off) must not
    // change a single persisted byte.
    const std::string p1 = testing::TempDir() + "pcbp_obs_plain.jsonl";
    const std::string p2 = testing::TempDir() + "pcbp_obs_stats.jsonl";
    std::remove(p1.c_str());
    std::remove(p2.c_str());
    {
        ResultStore store(p1);
        SweepRunOptions opt;
        opt.jobs = 2;
        runSweep(tinySpec(), store, opt);
    }
    {
        ResultStore store(p2);
        StatRegistry reg;
        SpanTracer tracer;
        SweepRunOptions opt;
        opt.jobs = 2;
        opt.stats = &reg;
        opt.tracer = &tracer;
        runSweep(tinySpec(), store, opt);
        EXPECT_EQ(tracer.size(), 4u); // one span per executed cell
    }
    std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
    std::ostringstream b1, b2;
    b1 << f1.rdbuf();
    b2 << f2.rdbuf();
    EXPECT_EQ(b1.str(), b2.str());
    EXPECT_FALSE(b1.str().empty());
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(ObsSweep, ForkCountersLandInHostSection)
{
    // A three-step warmup ladder over one config is one fork group:
    // the canonical (largest-warmup) cell runs, the other two fork
    // off it at their own warmup boundary (wb-1 for the accuracy
    // engine), so every counter here is exact and deterministic.
    SweepSpec spec;
    spec.name = "obs-fork";
    spec.axes.prophets = {ProphetKind::Gshare};
    spec.axes.critics = {CriticKind::TaggedGshare};
    spec.workloads = {"mm.mpeg"};
    spec.branches = 2000;
    spec.warmups = {400, 800, 1200};

    auto hostJson = [&](bool fork) {
        ResultStore store;
        StatRegistry reg;
        SweepRunOptions opt;
        opt.jobs = 2;
        opt.stats = &reg;
        opt.fork = fork;
        runSweep(spec, store, opt);
        return reg.toJson();
    };

    const std::string on = hostJson(true);
    EXPECT_NE(on.find("\"sweep.fork.groups\":1"), std::string::npos)
        << on;
    EXPECT_NE(on.find("\"sweep.fork.snapshots\":2"),
              std::string::npos);
    EXPECT_NE(on.find("\"sweep.fork.cells_forked\":2"),
              std::string::npos);
    EXPECT_NE(on.find("\"sweep.fork.warmup_branches_saved\":1198"),
              std::string::npos);

    // Forking off: the keys stay in the schema, pinned to zero.
    const std::string off = hostJson(false);
    EXPECT_NE(off.find("\"sweep.fork.groups\":0"), std::string::npos)
        << off;
    EXPECT_NE(off.find("\"sweep.fork.snapshots\":0"),
              std::string::npos);
    EXPECT_NE(off.find("\"sweep.fork.cells_forked\":0"),
              std::string::npos);
    EXPECT_NE(off.find("\"sweep.fork.warmup_branches_saved\":0"),
              std::string::npos);
}

TEST(ObsSweep, CellStatsBlockRoundTripsAndStaysOptional)
{
    ResultStore store;
    StatRegistry reg;
    SweepRunOptions opt;
    opt.jobs = 1;
    opt.stats = &reg;
    opt.cellStats = true;
    std::vector<CellResult> seen;
    opt.onCellDone = [&](const SweepCell &, const CellResult &r) {
        seen.push_back(r);
    };
    runSweep(tinySpec(), store, opt);
    ASSERT_EQ(seen.size(), 4u);

    for (const CellResult &r : seen) {
        ASSERT_FALSE(r.stats.empty());
        const std::string line = r.toJson();
        // The stats object trails every legacy field.
        EXPECT_LT(line.find("\"critiques\":"),
                  line.find("\"stats\":{"));
        CellResult back;
        ASSERT_TRUE(CellResult::tryFromJson(line, back));
        EXPECT_EQ(back.stats, r.stats);
        EXPECT_EQ(back.toJson(), line);
    }

    // Flag off: no stats key, and a legacy line (no stats field)
    // still parses with an empty block.
    CellResult bare = seen[0];
    bare.stats.clear();
    const std::string line = bare.toJson();
    EXPECT_EQ(line.find("\"stats\""), std::string::npos);
    CellResult back;
    ASSERT_TRUE(CellResult::tryFromJson(line, back));
    EXPECT_TRUE(back.stats.empty());
}

// ------------------------------------------------------- span trace

/**
 * Walk a pcbp-trace-1 document: timestamps non-decreasing, and per
 * tid every E matches the name of the most recent unclosed B (the
 * nesting property Perfetto needs to build flame graphs).
 */
void
checkTraceDocument(const std::string &js)
{
    ASSERT_NE(js.find("\"traceEvents\":["), std::string::npos);
    ASSERT_NE(js.find("\"schema\":\"pcbp-trace-1\""),
              std::string::npos);

    std::map<unsigned, std::vector<std::string>> stacks;
    double lastTs = -1.0;
    std::istringstream is(js);
    std::string line;
    while (std::getline(is, line)) {
        const bool isB = line.find("\"ph\":\"B\"") != std::string::npos;
        const bool isE = line.find("\"ph\":\"E\"") != std::string::npos;
        if (!isB && !isE)
            continue;

        auto field = [&](const char *key) {
            const std::size_t k = line.find(key);
            EXPECT_NE(k, std::string::npos) << line;
            return k + std::string(key).size();
        };
        const std::size_t n0 = field("\"name\":\"");
        const std::string name =
            line.substr(n0, line.find('"', n0) - n0);
        const std::size_t t0 = field("\"tid\":");
        const unsigned tid =
            unsigned(std::strtoul(line.c_str() + t0, nullptr, 10));
        const std::size_t s0 = field("\"ts\":");
        const double ts = std::atof(line.c_str() + s0);

        EXPECT_GE(ts, lastTs) << "unsorted event: " << line;
        lastTs = ts;

        auto &stack = stacks[tid];
        if (isB) {
            stack.push_back(name);
        } else {
            ASSERT_FALSE(stack.empty())
                << "E without open B on tid " << tid << ": " << line;
            EXPECT_EQ(stack.back(), name)
                << "non-nesting E on tid " << tid;
            stack.pop_back();
        }
    }
    for (const auto &kv : stacks)
        EXPECT_TRUE(kv.second.empty())
            << "unclosed B events on tid " << kv.first;
}

TEST(SpanTrace, EventsSortAndNest)
{
    SpanTracer t;
    t.nameThread(0, "main");
    t.nameThread(1, "worker1");
    // Nested on tid 0; overlapping across tids; shared boundary.
    t.record("outer", "test", 0, 100, 900);
    t.record("inner", "test", 0, 200, 500);
    t.record("inner2", "test", 0, 500, 900); // ties with inner E/outer E
    t.record("other", "test", 1, 50, 400);
    t.record("clamped", "test", 1, 600, 10); // end < start: clamps
    EXPECT_EQ(t.size(), 5u);

    const std::string js = t.toJson();
    EXPECT_NE(js.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(js.find("\"worker1\""), std::string::npos);
    checkTraceDocument(js);
}

TEST(SpanTrace, RenamingThreadDoesNotDuplicateMetadata)
{
    SpanTracer t;
    t.nameThread(0, "first");
    t.nameThread(0, "second"); // e.g. runSweep once per figure
    const std::string js = t.toJson();
    EXPECT_EQ(js.find("\"first\""), std::string::npos);
    std::size_t metas = 0, pos = 0;
    while ((pos = js.find("thread_name", pos)) != std::string::npos) {
        ++metas;
        ++pos;
    }
    EXPECT_EQ(metas, 1u);
}

TEST(SpanTrace, SweepTraceIsValidAndWorkerTagged)
{
    ResultStore store;
    SpanTracer tracer;
    SweepRunOptions opt;
    opt.jobs = 2;
    opt.tracer = &tracer;
    runSweep(tinySpec(), store, opt);

    const std::string js = tracer.toJson();
    checkTraceDocument(js);
    EXPECT_NE(js.find("\"cat\":\"cell\""), std::string::npos);
}

// -------------------------------------------------- logging + pool

TEST(ObsLogging, SinkLinesStayAtomicUnderThreadPool)
{
    ScopedLogCapture capture;
    ThreadPool pool(4);
    pool.parallelFor(200, [&](std::size_t i) {
        logRawLine("line-" + std::to_string(i % 7) + "-suffix");
    });
    const auto lines = capture.lines();
    ASSERT_EQ(lines.size(), 200u);
    for (const std::string &l : lines) {
        // Each captured line must be exactly one emitted message —
        // never an interleaving of two.
        EXPECT_EQ(l.rfind("line-", 0), 0u) << l;
        EXPECT_EQ(l.substr(l.size() - 7), "-suffix") << l;
    }
}

TEST(ObsThreadPool, ExportStatsAccountsEveryTask)
{
    ThreadPool pool(3);
    for (int round = 0; round < 4; ++round)
        pool.parallelFor(50, [](std::size_t) {});

    StatRegistry reg;
    pool.exportStats(reg);
    const std::string js = reg.toJson();
    EXPECT_NE(js.find("\"pool.workers\":3"), std::string::npos);
    EXPECT_NE(js.find("\"pool.batches\":4"), std::string::npos);
    EXPECT_NE(js.find("\"pool.tasks\":200"), std::string::npos);
    // Host-only: the sim section must stay empty.
    EXPECT_NE(js.find("\"sim\":{}"), std::string::npos);
}

TEST(ObsThreadPool, WorkerAwareOverloadReportsValidWorker)
{
    ThreadPool pool(3);
    std::vector<unsigned> worker(64, 999);
    pool.parallelFor(
        worker.size(),
        std::function<void(std::size_t, unsigned)>(
            [&](std::size_t i, unsigned w) { worker[i] = w; }));
    for (unsigned w : worker)
        EXPECT_LT(w, 3u);
}

// --------------------------------------------------------- progress

TEST(ObsProgress, HeartbeatLinesAndFinalSummary)
{
    if (logLevel() < LogLevel::Info)
        GTEST_SKIP() << "PCBP_LOG_LEVEL filters progress output";
    ScopedLogCapture capture;
    ProgressMeter meter(3, "cells", 0); // interval 0: every tick
    meter.tick(1000);
    meter.tick(1000);
    meter.tick(2000);
    meter.finish();

    const auto lines = capture.lines();
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0].rfind("progress: 1/3 cells (33%)", 0), 0u)
        << lines[0];
    EXPECT_NE(lines[0].find("branches/s"), std::string::npos);
    EXPECT_NE(lines[0].find("ETA"), std::string::npos);
    // The final cell and finish() report 100% and no ETA.
    EXPECT_EQ(lines[2].rfind("progress: 3/3 cells (100%)", 0), 0u);
    EXPECT_EQ(lines[2].find("ETA"), std::string::npos);
    EXPECT_NE(lines[3].find("| done"), std::string::npos);
    EXPECT_EQ(meter.done(), 3u);
}

TEST(ObsProgress, ResumedUnitsCountTowardCompletion)
{
    if (logLevel() < LogLevel::Info)
        GTEST_SKIP() << "PCBP_LOG_LEVEL filters progress output";
    ScopedLogCapture capture;
    ProgressMeter meter(10, "cells", 0);
    meter.setResumed(9);
    meter.tick(500); // completes the grid: must emit despite throttle
    const auto lines = capture.lines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].rfind("progress: 10/10 cells (100%)", 0), 0u);
    EXPECT_EQ(meter.done(), 10u);
}

TEST(ObsProgress, ThrottleSuppressesIntermediateTicks)
{
    if (logLevel() < LogLevel::Info)
        GTEST_SKIP() << "PCBP_LOG_LEVEL filters progress output";
    ScopedLogCapture capture;
    // Huge interval: only the first tick (lastEmit==0) and the
    // grid-completing tick may emit.
    ProgressMeter meter(5, "cells", 3600 * 1000);
    for (int i = 0; i < 5; ++i)
        meter.tick(100);
    const auto lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].rfind("progress: 1/5", 0), 0u);
    EXPECT_EQ(lines[1].rfind("progress: 5/5", 0), 0u);
}

// ------------------------------------------------------ obs probes

TEST(ObsProbes, NullCountersAreIgnored)
{
    // The hot-path contract: a detached component (obs == nullptr)
    // must tolerate every probe macro.
    struct Counters
    {
        std::uint64_t n = 0;
        std::uint64_t peak = 0;
    } c;
    Counters *obs = nullptr;
    pcbp_obs_inc(obs, n);
    pcbp_obs_add(obs, n, 5);
    pcbp_obs_max(obs, peak, 9);
    obs = &c;
    pcbp_obs_inc(obs, n);
    pcbp_obs_add(obs, n, 5);
    pcbp_obs_max(obs, peak, 9);
    pcbp_obs_max(obs, peak, 2);
    EXPECT_EQ(c.n, 6u);
    EXPECT_EQ(c.peak, 9u);
}

// ------------------------------------------------- golden + schema

void
expectMatchesGolden(const std::string &rendered, const char *stem)
{
    const std::string path =
        std::string(PCBP_TEST_GOLDEN_DIR) + "/" + stem;
    if (std::getenv("PCBP_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with PCBP_UPDATE_GOLDEN=1 to create)";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(rendered, os.str()) << "golden drift in " << stem;
}

TEST(ObsGolden, SweepStatsSimDump)
{
    // Pins the full deterministic dump of a small two-workload grid:
    // stat names, section shape, and every counter value. Drift here
    // means either the schema or the simulation changed.
    ResultStore store;
    StatRegistry reg;
    SweepRunOptions opt;
    opt.jobs = 2;
    opt.stats = &reg;
    runSweep(tinySpec(), store, opt);
    expectMatchesGolden(reg.simJson() + "\n", "obs/sweep_stats.json");
}

// ------------------------------------- CI artifact schema validators

std::string
slurpEnvFile(const char *var)
{
    const char *path = std::getenv(var);
    if (!path || !*path)
        return "";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << var << " points at unreadable " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(ObsValidate, StatsArtifact)
{
    const std::string js = slurpEnvFile("PCBP_OBS_VALIDATE_STATS");
    if (js.empty())
        GTEST_SKIP() << "PCBP_OBS_VALIDATE_STATS not set";
    EXPECT_EQ(js.rfind("{\"schema\":\"pcbp-stats-1\",\"sim\":{", 0),
              0u);
    EXPECT_NE(js.find("\"host\":{"), std::string::npos);
    // A real run always exports these.
    EXPECT_NE(js.find("engine.committed_branches"),
              std::string::npos);
    EXPECT_EQ(js.back(), '\n');
}

TEST(ObsValidate, TraceArtifact)
{
    const std::string js = slurpEnvFile("PCBP_OBS_VALIDATE_TRACE");
    if (js.empty())
        GTEST_SKIP() << "PCBP_OBS_VALIDATE_TRACE not set";
    checkTraceDocument(js);
}

} // namespace
} // namespace pcbp
