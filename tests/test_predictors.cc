/**
 * @file
 * Unit tests for the predictor zoo: each predictor must learn the
 * behavior class it is designed for, report its storage honestly,
 * and match the paper's Table 3 configurations through the factory.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictors/bimodal.hh"
#include "predictors/factory.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/local_predictor.hh"
#include "predictors/perceptron.hh"
#include "predictors/static_pred.hh"
#include "predictors/tage.hh"
#include "predictors/tournament.hh"
#include "predictors/two_level.hh"
#include "predictors/yags.hh"

namespace pcbp
{
namespace
{

/** Run a predictor over a generated outcome stream; return accuracy. */
template <typename NextOutcome>
double
trainAndMeasure(DirectionPredictor &pred, NextOutcome &&next,
                int warmup = 2000, int measure = 4000,
                Addr pc = 0x401000)
{
    HistoryRegister hist;
    int correct = 0;
    for (int i = 0; i < warmup + measure; ++i) {
        const bool outcome = next(i, hist);
        const bool p = pred.predict(pc, hist);
        if (i >= warmup && p == outcome)
            ++correct;
        pred.update(pc, hist, outcome);
        hist.shiftIn(outcome);
    }
    return double(correct) / measure;
}

// ---------------------------------------------------------------- Bimodal

TEST(Bimodal, LearnsBias)
{
    Bimodal b(1024);
    const double acc = trainAndMeasure(
        b, [](int i, const HistoryRegister &) { return i % 10 != 0; });
    EXPECT_GT(acc, 0.85);
}

TEST(Bimodal, CannotLearnAlternation)
{
    Bimodal b(1024);
    const double acc = trainAndMeasure(
        b, [](int i, const HistoryRegister &) { return i % 2 == 0; });
    EXPECT_LT(acc, 0.6) << "bimodal has no history";
}

TEST(Bimodal, SizeBits)
{
    EXPECT_EQ(Bimodal(1024).sizeBits(), 2048u);
    EXPECT_EQ(Bimodal(1024, 3).sizeBits(), 3072u);
}

TEST(Bimodal, SeparatesBranchesByAddress)
{
    Bimodal b(1024);
    HistoryRegister h;
    for (int i = 0; i < 100; ++i) {
        b.update(0x1000, h, true);
        b.update(0x1010, h, false); // distinct table index
    }
    EXPECT_TRUE(b.predict(0x1000, h));
    EXPECT_FALSE(b.predict(0x1010, h));
}

// ----------------------------------------------------------------- Gshare

TEST(Gshare, LearnsAlternation)
{
    Gshare g(32768, 15);
    const double acc = trainAndMeasure(
        g, [](int i, const HistoryRegister &) { return i % 2 == 0; });
    EXPECT_GT(acc, 0.95);
}

TEST(Gshare, LearnsHistoryCorrelation)
{
    // Outcome = outcome 3 branches ago.
    Gshare g(32768, 15);
    Rng rng(7);
    std::vector<bool> past = {true, false, true};
    const double acc = trainAndMeasure(
        g, [&](int, const HistoryRegister &h) {
            const bool out = h.bit(2);
            (void)past;
            (void)rng;
            return out;
        });
    EXPECT_GT(acc, 0.9);
}

TEST(Gshare, SizeMatchesTable3)
{
    // 8KB gshare: 32K entries x 2 bits = 8KB.
    auto g = makeProphet(ProphetKind::Gshare, Budget::B8KB);
    EXPECT_EQ(g->sizeBytes(), 8u * 1024);
    EXPECT_EQ(g->historyLength(), 15u);
}

TEST(Gshare, Table3HistoryLengths)
{
    const unsigned expect[] = {13, 14, 15, 16, 17};
    int i = 0;
    for (Budget b : {Budget::B2KB, Budget::B4KB, Budget::B8KB,
                     Budget::B16KB, Budget::B32KB}) {
        auto g = makeProphet(ProphetKind::Gshare, b);
        EXPECT_EQ(g->historyLength(), expect[i]);
        EXPECT_EQ(g->sizeBytes(), budgetBytes(b));
        ++i;
    }
}

// --------------------------------------------------------------- TwoLevel

TEST(TwoLevel, LearnsShortPattern)
{
    TwoLevel t(6, 10);
    const double acc = trainAndMeasure(
        t, [](int i, const HistoryRegister &) { return (i % 3) != 0; });
    EXPECT_GT(acc, 0.95);
}

TEST(TwoLevel, SizeBits)
{
    EXPECT_EQ(TwoLevel(4, 10).sizeBits(), (1u << 14) * 2);
}

// ------------------------------------------------------------- Perceptron

TEST(Perceptron, LearnsSingleBitEcho)
{
    // Outcome = history bit 20: one weight suffices.
    Perceptron p(128, 28);
    const double acc = trainAndMeasure(
        p, [](int, const HistoryRegister &h) { return h.bit(20); });
    EXPECT_GT(acc, 0.97);
}

TEST(Perceptron, CannotLearnXor)
{
    // XOR of two balanced bits is not linearly separable.
    Perceptron p(128, 28);
    Rng rng(3);
    // Drive history with random bits; outcome = h20 ^ h21.
    HistoryRegister hist;
    int correct = 0;
    const int warmup = 4000, measure = 6000;
    for (int i = 0; i < warmup + measure; ++i) {
        const bool outcome = hist.bit(20) != hist.bit(21);
        const bool pr = p.predict(0x1000, hist);
        if (i >= warmup && pr == outcome)
            ++correct;
        p.update(0x1000, hist, outcome);
        hist.shiftIn(rng.nextBool(0.5));
    }
    EXPECT_LT(double(correct) / measure, 0.62);
}

TEST(Perceptron, LearnsLongHistoryEcho)
{
    // The perceptron's signature advantage: correlation at lag 50,
    // far beyond any counter-table scheme in this repo.
    Perceptron p(128, 57);
    const double acc = trainAndMeasure(
        p, [](int, const HistoryRegister &h) { return h.bit(50); });
    EXPECT_GT(acc, 0.95);
}

TEST(Perceptron, ThresholdFormula)
{
    Perceptron p(113, 17);
    EXPECT_EQ(p.threshold(), int(1.93 * 17 + 14));
}

TEST(Perceptron, Table3Budgets)
{
    // 113 perceptrons x 18 8-bit weights = 2034 bytes (~2KB).
    auto p = makeProphet(ProphetKind::Perceptron, Budget::B2KB);
    EXPECT_NEAR(double(p->sizeBytes()), 2048.0, 64.0);
    auto p32 = makeProphet(ProphetKind::Perceptron, Budget::B32KB);
    EXPECT_EQ(p32->historyLength(), 57u);
}

// ------------------------------------------------------------------ GSkew

TEST(GSkew, LearnsBiasAndPattern)
{
    GSkew g(8192, 13);
    const double bias_acc = trainAndMeasure(
        g, [](int i, const HistoryRegister &) { return i % 16 != 0; });
    EXPECT_GT(bias_acc, 0.9);

    GSkew g2(8192, 13);
    const double alt_acc = trainAndMeasure(
        g2, [](int i, const HistoryRegister &) { return i % 2 == 0; });
    EXPECT_GT(alt_acc, 0.95);
}

TEST(GSkew, MetaSelectsBimodalForBiasUnderAliasing)
{
    // Two branches, both strongly biased but opposite: the BIM bank
    // separates them by address even when G0/G1 alias.
    GSkew g(64, 13);
    HistoryRegister h;
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
        g.update(0x1000 + 16 * (i % 7), h, true);
        g.update(0x2000 + 16 * (i % 7), h, false);
        h.shiftIn(rng.nextBool(0.5));
    }
    int right = 0;
    for (int i = 0; i < 100; ++i) {
        right += g.predict(0x1000 + 16 * (i % 7), h) ? 1 : 0;
        right += !g.predict(0x2000 + 16 * (i % 7), h) ? 1 : 0;
        h.shiftIn(rng.nextBool(0.5));
    }
    EXPECT_GT(right, 170);
}

TEST(GSkew, SizeMatchesTable3)
{
    // 8KB 2Bc-gskew: 4 banks x 8K entries x 2 bits = 8KB.
    auto g = makeProphet(ProphetKind::GSkew, Budget::B8KB);
    EXPECT_EQ(g->sizeBytes(), 8u * 1024);
    EXPECT_EQ(g->historyLength(), 13u);
}

TEST(GSkew, BankViewConsistent)
{
    GSkew g(1024, 12);
    HistoryRegister h;
    for (int i = 0; i < 50; ++i)
        h.shiftIn(i % 3 == 0);
    const auto v = g.banks(0x1234, h);
    const int votes = int(v.bim) + int(v.g0) + int(v.g1);
    EXPECT_EQ(v.majority, votes >= 2);
    EXPECT_EQ(v.final_, v.useMajority ? v.majority : v.bim);
    EXPECT_EQ(g.predict(0x1234, h), v.final_);
}

// ------------------------------------------------------------------- YAGS

TEST(Yags, LearnsBiasWithExceptions)
{
    // Mostly-taken branch with a history-dependent exception.
    Yags y(4096, 1024, 8, 12);
    const double acc = trainAndMeasure(
        y, [](int, const HistoryRegister &h) {
            return !(h.bit(0) && h.bit(1) && h.bit(2));
        });
    EXPECT_GT(acc, 0.85);
}

TEST(Yags, SizeAccountsForTags)
{
    Yags y(4096, 1024, 8, 12);
    // choice 4096*2 + 2*1024*(1+8+2) bits
    EXPECT_EQ(y.sizeBits(), 4096u * 2 + 2048u * 11);
}

// ------------------------------------------------------------------ Local

TEST(LocalPredictor, LearnsSelfPattern)
{
    // Period-4 self pattern needs only local history.
    LocalPredictor l(1024, 10);
    const double acc = trainAndMeasure(
        l, [](int i, const HistoryRegister &) { return i % 4 != 0; });
    EXPECT_GT(acc, 0.95);
}

TEST(LocalPredictor, SizeBits)
{
    LocalPredictor l(1024, 10);
    EXPECT_EQ(l.sizeBits(), 1024u * 10 + 1024u * 2);
}

// ------------------------------------------------------------- Tournament

TEST(Tournament, BeatsBothComponentsOnMixedContent)
{
    // A bimodal-friendly branch and a history-friendly branch: the
    // chooser should route each to the right component.
    auto make_tournament = [] {
        return Tournament(std::make_unique<Bimodal>(1024),
                          std::make_unique<Gshare>(4096, 12), 1024);
    };
    Tournament t = make_tournament();
    HistoryRegister h;
    int correct = 0;
    const int warmup = 4000, measure = 4000;
    for (int i = 0; i < warmup + measure; ++i) {
        // pc A: biased; pc B: alternating (distinct chooser rows).
        // Each branch is predicted and trained with the same history.
        const bool out_a = (i % 13) != 0;
        const bool out_b = (i % 2) == 0;
        if (i >= warmup)
            correct += t.predict(0xA000, h) == out_a;
        t.update(0xA000, h, out_a);
        h.shiftIn(out_a);
        if (i >= warmup)
            correct += t.predict(0xA010, h) == out_b;
        t.update(0xA010, h, out_b);
        h.shiftIn(out_b);
    }
    EXPECT_GT(double(correct) / (2 * measure), 0.9);
}

// ----------------------------------------------------------------- Static

TEST(StaticPredictor, FixedDirections)
{
    StaticPredictor t(true), n(false);
    HistoryRegister h;
    EXPECT_TRUE(t.predict(0x1, h));
    EXPECT_FALSE(n.predict(0x1, h));
    EXPECT_EQ(t.sizeBits(), 0u);
}

// ---------------------------------------------------------------- Factory

TEST(Factory, ParsesSpecs)
{
    auto p = makeProphet("gshare:16KB");
    EXPECT_EQ(p->name(), "gshare-16KB");
    auto q = makeProphet("perceptron");
    EXPECT_EQ(q->historyLength(), 28u); // default budget 8KB
}

TEST(Factory, AllKindsConstructAtAllBudgets)
{
    for (ProphetKind k : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron, ProphetKind::Bimodal,
                          ProphetKind::TwoLevel, ProphetKind::Yags,
                          ProphetKind::Local, ProphetKind::Tournament}) {
        for (Budget b : {Budget::B2KB, Budget::B4KB, Budget::B8KB,
                         Budget::B16KB, Budget::B32KB}) {
            auto p = makeProphet(k, b);
            ASSERT_NE(p, nullptr);
            // Budget-matched within 2x either way (tag/LRU overheads
            // and rounding are documented).
            EXPECT_GT(p->sizeBytes(), budgetBytes(b) / 4)
                << prophetKindName(k) << " " << budgetName(b);
            EXPECT_LT(p->sizeBytes(), budgetBytes(b) * 2)
                << prophetKindName(k) << " " << budgetName(b);
        }
    }
}

TEST(Factory, BudgetRoundTrip)
{
    for (Budget b : {Budget::B2KB, Budget::B4KB, Budget::B8KB,
                     Budget::B16KB, Budget::B32KB})
        EXPECT_EQ(parseBudget(budgetName(b)), b);
}

TEST(Factory, KindRoundTrip)
{
    for (ProphetKind k : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron, ProphetKind::Yags})
        EXPECT_EQ(parseProphetKind(prophetKindName(k)), k);
}

// ------------------------------------------------------------------- TAGE

TageConfig
tageConfigSmall()
{
    TageConfig cfg;
    cfg.baseEntries = 1024;
    for (unsigned i = 0; i < 4; ++i) {
        TageTableConfig tc;
        tc.entries = 512;
        tc.tagBits = 8;
        tc.historyLength = 4u << i; // 4, 8, 16, 32
        cfg.tables.push_back(tc);
    }
    return cfg;
}

TEST(Tage, LearnsBias)
{
    Tage t(tageConfigSmall());
    const double acc = trainAndMeasure(
        t, [](int i, const HistoryRegister &) { return i % 10 != 0; });
    EXPECT_GT(acc, 0.85);
}

TEST(Tage, LearnsShortPattern)
{
    Tage t(tageConfigSmall());
    const double acc = trainAndMeasure(
        t, [](int i, const HistoryRegister &) { return i % 2 == 0; });
    EXPECT_GT(acc, 0.95);
}

TEST(Tage, LearnsDeepHistoryBeyondGshareReach)
{
    // 16-taken/16-not-taken blocks: every 15-bit window inside a run
    // is saturated (all-T or all-N), so the 8KB gshare cannot see
    // the upcoming transition and drops ~2-4 predictions per period;
    // TAGE's longer geometric tables disambiguate the run position
    // completely.
    auto runs = [](int i, const HistoryRegister &) {
        return (i / 16) % 2 == 0;
    };
    auto tage = makeProphet(ProphetKind::Tage, Budget::B8KB);
    const double tage_acc = trainAndMeasure(*tage, runs, 4000, 4000);
    EXPECT_GT(tage_acc, 0.99);

    auto gshare = makeProphet(ProphetKind::Gshare, Budget::B8KB);
    const double gshare_acc = trainAndMeasure(*gshare, runs, 4000, 4000);
    EXPECT_GT(tage_acc, gshare_acc + 0.05)
        << "the geometric tables must buy real deep-history reach";
}

TEST(Tage, SizeBitsMatchesGeometry)
{
    TageConfig cfg;
    cfg.baseEntries = 1024;
    for (unsigned i = 0; i < 3; ++i) {
        TageTableConfig tc;
        tc.entries = 256;
        tc.tagBits = 8;
        tc.historyLength = 5 * (i + 1);
        cfg.tables.push_back(tc);
    }
    const Tage t(cfg);
    // base 1024*2 + 3 tables of 256*(3 ctr + 2 useful + 8 tag).
    EXPECT_EQ(t.sizeBits(), 1024u * 2 + 3u * 256 * 13);
    EXPECT_EQ(t.historyLength(), 15u);
    EXPECT_EQ(t.numTables(), 3u);
}

TEST(Tage, FactoryBudgetsFitAndGrow)
{
    std::size_t prev = 0;
    for (Budget b : {Budget::B2KB, Budget::B4KB, Budget::B8KB,
                     Budget::B16KB, Budget::B32KB}) {
        auto t = makeProphet(ProphetKind::Tage, b);
        EXPECT_LE(t->sizeBytes(), budgetBytes(b))
            << budgetName(b) << " config over budget";
        EXPECT_GT(t->sizeBits(), prev) << "budgets must grow";
        prev = t->sizeBits();
        EXPECT_LE(t->historyLength(), HistoryRegister::capacity);
    }
}

TEST(Tage, UsefulnessAgingKeepsAllocatorAlive)
{
    // A tiny TAGE with aggressive aging must keep adapting across a
    // behavior change (entries allocated for phase A age out and get
    // reclaimed for phase B).
    TageConfig cfg;
    cfg.baseEntries = 256;
    for (unsigned i = 0; i < 3; ++i) {
        TageTableConfig tc;
        tc.entries = 128;
        tc.tagBits = 8;
        tc.historyLength = 4 << i;
        cfg.tables.push_back(tc);
    }
    cfg.usefulResetPeriod = 512;
    Tage t(cfg);
    HistoryRegister h;
    // Phase A: alternation keyed off history.
    for (int i = 0; i < 3000; ++i) {
        const bool outcome = i % 2 == 0;
        t.update(0x2000, h, outcome);
        h.shiftIn(outcome);
    }
    // Phase B: period-3 pattern; must relearn to high accuracy.
    int correct = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool outcome = i % 3 == 0;
        if (i >= 2000 && t.predict(0x2000, h) == outcome)
            ++correct;
        t.update(0x2000, h, outcome);
        h.shiftIn(outcome);
    }
    EXPECT_GT(double(correct) / 2000, 0.9);
}

TEST(Tage, RegisteredInFactoryAndRegistry)
{
    EXPECT_EQ(parseProphetKind("tage"), ProphetKind::Tage);
    EXPECT_EQ(prophetKindName(ProphetKind::Tage), "tage");
    bool found = false;
    for (ProphetKind k : allProphetKinds())
        found |= k == ProphetKind::Tage;
    EXPECT_TRUE(found);
    auto p = makeProphet("tage:16KB");
    EXPECT_EQ(p->name().rfind("tage", 0), 0u);
}

// ----------------------------------------------------- update determinism

TEST(AllPredictors, PredictIsSideEffectFreeAtCommitGranularity)
{
    // Calling predict twice with the same inputs yields the same
    // answer (no hidden speculative state inside predictors).
    for (ProphetKind k : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron, ProphetKind::Yags,
                          ProphetKind::Bimodal, ProphetKind::TwoLevel}) {
        auto p = makeProphet(k, Budget::B4KB);
        HistoryRegister h;
        Rng rng(11);
        for (int i = 0; i < 500; ++i) {
            const Addr pc = 0x1000 + 16 * rng.nextBelow(64);
            const bool a = p->predict(pc, h);
            const bool b = p->predict(pc, h);
            EXPECT_EQ(a, b) << prophetKindName(k);
            const bool outcome = rng.nextBool(0.7);
            p->update(pc, h, outcome);
            h.shiftIn(outcome);
        }
    }
}

TEST(AllPredictors, ResetRestoresInitialPredictions)
{
    for (ProphetKind k : {ProphetKind::Gshare, ProphetKind::GSkew,
                          ProphetKind::Perceptron, ProphetKind::Yags}) {
        auto p = makeProphet(k, Budget::B4KB);
        auto q = makeProphet(k, Budget::B4KB);
        HistoryRegister h;
        Rng rng(13);
        for (int i = 0; i < 300; ++i) {
            const Addr pc = 0x1000 + 16 * rng.nextBelow(64);
            const bool outcome = rng.nextBool(0.5);
            p->update(pc, h, outcome);
            h.shiftIn(outcome);
        }
        p->reset();
        HistoryRegister fresh;
        for (int i = 0; i < 50; ++i) {
            const Addr pc = 0x1000 + 16 * i;
            EXPECT_EQ(p->predict(pc, fresh), q->predict(pc, fresh))
                << prophetKindName(k);
        }
    }
}

} // namespace
} // namespace pcbp
